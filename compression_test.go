package byteslice_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"byteslice"
)

// compressibleInts builds a sorted (hence highly compressible) int column's
// values plus a second, noisy sequence that should stay raw.
func compressibleInts(n int) (sorted, noisy []int64) {
	rng := rand.New(rand.NewSource(42))
	sorted = make([]int64, n)
	noisy = make([]int64, n)
	v := int64(0)
	for i := 0; i < n; i++ {
		v += int64(rng.Intn(3))
		sorted[i] = v
		noisy[i] = int64(rng.Intn(1 << 20))
	}
	return sorted, noisy
}

// TestWithCompressionOption: the column option routes low-entropy ByteSlice
// columns into the compressed layout and leaves the decision observable.
func TestWithCompressionOption(t *testing.T) {
	sorted, noisy := compressibleInts(20000)
	sc, err := byteslice.NewIntColumn("sorted", sorted, 0, 1<<20, byteslice.WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Compressed() || sc.Format() != byteslice.FormatByteSliceC {
		t.Fatalf("sorted column: compressed=%v format=%s, want compressed ByteSliceC", sc.Compressed(), sc.Format())
	}
	st := sc.CompressionStats()
	if st.Ratio <= 1 || st.Bytes >= st.RawBytes || st.Blocks == 0 {
		t.Fatalf("sorted column stats look wrong: %+v", st)
	}

	nc, err := byteslice.NewIntColumn("noisy", noisy, 0, 1<<20-1, byteslice.WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	if nc.Compressed() {
		t.Fatalf("noisy column compressed (stats %+v), want raw fallback", nc.CompressionStats())
	}
	if nc.Format() != byteslice.FormatByteSlice {
		t.Fatalf("noisy column format %s, want ByteSlice fallback", nc.Format())
	}

	// The option must not override an explicit non-ByteSlice format.
	vc, err := byteslice.NewIntColumn("v", sorted, 0, 1<<20,
		byteslice.WithFormat(byteslice.FormatVBP), byteslice.WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	if vc.Format() != byteslice.FormatVBP {
		t.Fatalf("explicit VBP column became %s", vc.Format())
	}
}

// compressionTables builds one raw and one compressed copy of the same
// table: a sorted int column (compresses), a clustered decimal column, a
// string column and a nullable int column.
func compressionTables(t *testing.T, n int) (raw, comp *byteslice.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	sorted := make([]int64, n)
	decs := make([]float64, n)
	strs := make([]string, n)
	nullable := make([]int64, n)
	words := []string{"alder", "birch", "cedar", "elm", "fir", "gum", "hazel"}
	v := int64(0)
	var nulls []int
	for i := 0; i < n; i++ {
		v += int64(rng.Intn(3))
		sorted[i] = v
		decs[i] = float64((i/500)*10) + float64(rng.Intn(8))
		strs[i] = words[i%len(words)]
		nullable[i] = int64(i % 977)
		if i%53 == 0 {
			nulls = append(nulls, i)
		}
	}
	build := func(opts ...byteslice.ColumnOption) *byteslice.Table {
		t.Helper()
		withNulls := append(append([]byteslice.ColumnOption{}, opts...), byteslice.WithNulls(nulls))
		sc, err := byteslice.NewIntColumn("sorted", sorted, 0, 1<<20, opts...)
		if err != nil {
			t.Fatal(err)
		}
		dc, err := byteslice.NewDecimalColumn("dec", decs, 0, float64((n/500)*10+8), 1, opts...)
		if err != nil {
			t.Fatal(err)
		}
		st, err := byteslice.NewStringColumn("word", strs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		nu, err := byteslice.NewIntColumn("nullable", nullable, 0, 1000, withNulls...)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := byteslice.NewTable(sc, dc, st, nu)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	return build(), build(byteslice.WithCompression())
}

func sameRows(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompressedQueriesMatchRaw: every facade entry point — filters over
// all operators (including NULL columns and multi-predicate strategies),
// projections, ordering and aggregates — returns identical results on raw
// and compressed tables.
func TestCompressedQueriesMatchRaw(t *testing.T) {
	raw, comp := compressionTables(t, 30000)

	filters := [][]byteslice.Filter{
		{byteslice.IntFilter("sorted", byteslice.Le, 5000)},
		{byteslice.IntFilter("sorted", byteslice.Between, 2000, 9000)},
		{byteslice.IntFilter("sorted", byteslice.Eq, 123)},
		{byteslice.IntFilter("sorted", byteslice.Ne, 123)},
		{byteslice.IntFilter("sorted", byteslice.Gt, 1<<19)},
		{byteslice.DecimalFilter("dec", byteslice.Ge, 100)},
		{byteslice.IntFilter("nullable", byteslice.Lt, 500)},
		{
			byteslice.IntFilter("sorted", byteslice.Ge, 1000),
			byteslice.StringFilter("word", byteslice.Eq, "cedar"),
		},
		{
			byteslice.IntFilter("sorted", byteslice.Lt, 20000),
			byteslice.IntFilter("nullable", byteslice.Ge, 100),
			byteslice.DecimalFilter("dec", byteslice.Le, 400),
		},
	}
	for fi, fs := range filters {
		rr, err := raw.Filter(fs)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := comp.Filter(fs)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(rr.Rows(), cr.Rows()) {
			t.Fatalf("filter %d: raw %d rows, compressed %d rows diverge", fi, rr.Count(), cr.Count())
		}
		if len(fs) > 1 {
			ra, err := raw.FilterAny(fs)
			if err != nil {
				t.Fatal(err)
			}
			ca, err := comp.FilterAny(fs)
			if err != nil {
				t.Fatal(err)
			}
			if !sameRows(ra.Rows(), ca.Rows()) {
				t.Fatalf("filterAny %d diverges", fi)
			}
		}
	}

	sel := []byteslice.Filter{byteslice.IntFilter("sorted", byteslice.Between, 3000, 12000)}
	rr, err := raw.Filter(sel)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := comp.Filter(sel)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cr.Explain(), "compressed") {
		t.Fatalf("compressed plan explain lacks the compression annotation:\n%s", cr.Explain())
	}

	rRows, rVals, err := raw.ProjectInt("sorted", rr)
	if err != nil {
		t.Fatal(err)
	}
	cRows, cVals, err := comp.ProjectInt("sorted", cr)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(rRows, cRows) || len(rVals) != len(cVals) {
		t.Fatal("projection rows diverge")
	}
	for i := range rVals {
		if rVals[i] != cVals[i] {
			t.Fatalf("projection value %d: raw %d compressed %d", i, rVals[i], cVals[i])
		}
	}

	ro, err := raw.OrderBy("nullable", rr)
	if err != nil {
		t.Fatal(err)
	}
	co, err := comp.OrderBy("nullable", cr)
	if err != nil {
		t.Fatal(err)
	}
	rn, _ := raw.Column("nullable")
	cn, _ := comp.Column("nullable")
	if len(ro) != len(co) {
		t.Fatalf("orderby lengths diverge: %d vs %d", len(ro), len(co))
	}
	for i := range ro {
		// Radix and comparison sorts may order equal keys differently
		// between the two tables; compare the sorted key sequence.
		rv, _ := rn.LookupInt(nil, int(ro[i]))
		cv, _ := cn.LookupInt(nil, int(co[i]))
		if rv != cv {
			t.Fatalf("orderby key %d: raw %d compressed %d", i, rv, cv)
		}
	}

	for _, res := range []*byteslice.Result{nil, rr} {
		cres := res
		if res != nil {
			cres = cr
		}
		rs, rc, err := raw.SumInt("sorted", res)
		if err != nil {
			t.Fatal(err)
		}
		cs, ccount, err := comp.SumInt("sorted", cres)
		if err != nil {
			t.Fatal(err)
		}
		if rs != cs || rc != ccount {
			t.Fatalf("sum diverges: raw %d/%d compressed %d/%d", rs, rc, cs, ccount)
		}
		rmin, rok, err := raw.MinInt("nullable", res)
		if err != nil {
			t.Fatal(err)
		}
		cmin, cok, err := comp.MinInt("nullable", cres)
		if err != nil {
			t.Fatal(err)
		}
		if rmin != cmin || rok != cok {
			t.Fatalf("min diverges: raw %d/%v compressed %d/%v", rmin, rok, cmin, cok)
		}
		rmax, _, err := raw.MaxInt("sorted", res)
		if err != nil {
			t.Fatal(err)
		}
		cmax, _, err := comp.MaxInt("sorted", cres)
		if err != nil {
			t.Fatal(err)
		}
		if rmax != cmax {
			t.Fatalf("max diverges: raw %d compressed %d", rmax, cmax)
		}
	}
}

// TestTableWithCompression: the table-level rebuild compresses eligible
// columns, leaves others alone, rejects unknown names, and the rebuilt
// table answers queries identically.
func TestTableWithCompression(t *testing.T) {
	raw, _ := compressionTables(t, 8192)
	comp, err := raw.WithCompression()
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := comp.Column("sorted")
	if !sc.Compressed() {
		t.Fatal("sorted column did not compress through Table.WithCompression")
	}
	f := []byteslice.Filter{byteslice.IntFilter("sorted", byteslice.Le, 2000)}
	rr, err := raw.Filter(f)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := comp.Filter(f)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(rr.Rows(), cr.Rows()) {
		t.Fatal("table-level compression changed filter results")
	}

	one, err := raw.WithCompression("sorted")
	if err != nil {
		t.Fatal(err)
	}
	oc, _ := one.Column("sorted")
	if !oc.Compressed() {
		t.Fatal("named column did not compress")
	}
	od, _ := one.Column("dec")
	if od.Compressed() {
		t.Fatal("unnamed column was compressed")
	}
	if _, err := raw.WithCompression("missing"); err == nil {
		t.Fatal("unknown column name accepted")
	}
	// Idempotent: recompressing keeps already-compressed columns.
	again, err := comp.WithCompression()
	if err != nil {
		t.Fatal(err)
	}
	ac, _ := again.Column("sorted")
	if !ac.Compressed() {
		t.Fatal("recompression dropped the compressed layout")
	}
}

// TestCompressedPersistRoundTrip: compressed columns serialise through the
// v2 stream and rebuild into the same deterministic layout with identical
// values, including the NULL vector.
func TestCompressedPersistRoundTrip(t *testing.T) {
	_, comp := compressionTables(t, 12000)
	var buf bytes.Buffer
	if _, err := comp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := byteslice.ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := comp.Column("sorted")
	if !want.Compressed() {
		t.Fatal("precondition: sorted column should be compressed")
	}
	g, err := got.Column("sorted")
	if err != nil {
		t.Fatal(err)
	}
	if g.Format() != want.Format() {
		t.Fatalf("format %s after round trip, want %s", g.Format(), want.Format())
	}
	for i := 0; i < comp.Len(); i++ {
		if g.LookupCode(nil, i) != want.LookupCode(nil, i) {
			t.Fatalf("row %d diverges after round trip", i)
		}
	}
	gn, err := got.Column("nullable")
	if err != nil {
		t.Fatal(err)
	}
	wn, _ := comp.Column("nullable")
	if gn.NullCount() != wn.NullCount() {
		t.Fatalf("null count %d after round trip, want %d", gn.NullCount(), wn.NullCount())
	}
}
