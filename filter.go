package byteslice

import (
	"fmt"

	"byteslice/internal/layout"
)

// Filter is one column-scalar predicate of a query. Build filters with
// IntFilter, DecimalFilter, StringFilter or CodeFilter; the constants are
// translated into the column's code domain when the filter is evaluated,
// including constants outside the domain (which may decide the filter
// trivially, e.g. v < min selects nothing).
type Filter struct {
	Col string

	setInt  func(*Column) (layout.Predicate, *bool, error)
	setDec  func(*Column) (layout.Predicate, *bool, error)
	setStr  func(*Column) (layout.Predicate, *bool, error)
	setCode func(*Column) (layout.Predicate, *bool, error)
}

// position locates a native constant relative to a column's code domain.
type position struct {
	state int // -1 below the domain, 0 inside, +1 above
	code  uint32
}

var (
	trivTrue  = true
	trivFalse = false
)

// rangePred builds the code predicate for a comparison given the operand
// positions, or decides it trivially.
func rangePred(op Op, p1, p2 position, max uint32) (layout.Predicate, *bool, error) {
	switch op {
	case Lt, Le:
		if p1.state < 0 {
			return layout.Predicate{}, &trivFalse, nil
		}
		if p1.state > 0 {
			return layout.Predicate{}, &trivTrue, nil
		}
		return layout.Predicate{Op: op, C1: p1.code}, nil, nil
	case Gt, Ge:
		if p1.state > 0 {
			return layout.Predicate{}, &trivFalse, nil
		}
		if p1.state < 0 {
			return layout.Predicate{}, &trivTrue, nil
		}
		return layout.Predicate{Op: op, C1: p1.code}, nil, nil
	case Eq:
		if p1.state != 0 {
			return layout.Predicate{}, &trivFalse, nil
		}
		return layout.Predicate{Op: Eq, C1: p1.code}, nil, nil
	case Ne:
		if p1.state != 0 {
			return layout.Predicate{}, &trivTrue, nil
		}
		return layout.Predicate{Op: Ne, C1: p1.code}, nil, nil
	case Between:
		if p1.state > 0 || p2.state < 0 {
			return layout.Predicate{}, &trivFalse, nil
		}
		lo, hi := uint32(0), max
		if p1.state == 0 {
			lo = p1.code
		}
		if p2.state == 0 {
			hi = p2.code
		}
		if lo > hi {
			return layout.Predicate{}, &trivFalse, nil
		}
		return layout.Predicate{Op: Between, C1: lo, C2: hi}, nil, nil
	}
	return layout.Predicate{}, nil, fmt.Errorf("byteslice: unknown operator %v", op)
}

func operandCount(op Op) int {
	if op == Between {
		return 2
	}
	return 1
}

// IntFilter filters an integer column: IntFilter("qty", Lt, 24) or
// IntFilter("qty", Between, 10, 20).
func IntFilter(col string, op Op, operands ...int64) Filter {
	return Filter{Col: col, setInt: func(c *Column) (layout.Predicate, *bool, error) {
		if len(operands) != operandCount(op) {
			return layout.Predicate{}, nil, fmt.Errorf("byteslice: %v on %s needs %d operands, got %d", op, col, operandCount(op), len(operands))
		}
		pos := func(v int64) position {
			lo, hi := c.ints.Min(), c.ints.Max()
			if v < lo {
				return position{state: -1}
			}
			if v > hi {
				return position{state: 1}
			}
			return position{code: c.ints.EncodeClamped(v)}
		}
		p1 := pos(operands[0])
		p2 := p1
		if op == Between {
			p2 = pos(operands[1])
		}
		return rangePred(op, p1, p2, c.maxCode())
	}}
}

// DecimalFilter filters a decimal column. Constants are rounded to the
// column's precision before comparison.
func DecimalFilter(col string, op Op, operands ...float64) Filter {
	return Filter{Col: col, setDec: func(c *Column) (layout.Predicate, *bool, error) {
		if len(operands) != operandCount(op) {
			return layout.Predicate{}, nil, fmt.Errorf("byteslice: %v on %s needs %d operands, got %d", op, col, operandCount(op), len(operands))
		}
		pos := func(v float64) position {
			lo, hi := c.decs.Min(), c.decs.Max()
			if v < lo {
				return position{state: -1}
			}
			if v > hi {
				return position{state: 1}
			}
			return position{code: c.decs.EncodeClamped(v)}
		}
		p1 := pos(operands[0])
		p2 := p1
		if op == Between {
			p2 = pos(operands[1])
		}
		return rangePred(op, p1, p2, c.maxCode())
	}}
}

// StringFilter filters a dictionary-encoded string column. Constants need
// not be dictionary members: range comparisons use the dictionary's order,
// and equality with an absent string selects nothing.
func StringFilter(col string, op Op, operands ...string) Filter {
	return Filter{Col: col, setStr: func(c *Column) (layout.Predicate, *bool, error) {
		if len(operands) != operandCount(op) {
			return layout.Predicate{}, nil, fmt.Errorf("byteslice: %v on %s needs %d operands, got %d", op, col, operandCount(op), len(operands))
		}
		card := uint32(c.dict.Cardinality())
		switch op {
		case Eq, Ne:
			code, err := c.dict.Encode(operands[0])
			if err != nil {
				if op == Eq {
					return layout.Predicate{}, &trivFalse, nil
				}
				return layout.Predicate{}, &trivTrue, nil
			}
			return layout.Predicate{Op: op, C1: code}, nil, nil
		case Lt, Le, Gt, Ge:
			// lb is the code of the smallest dictionary entry ≥ s.
			lb := c.dict.EncodeLowerBound(operands[0])
			member := false
			if lb < card {
				member = c.dict.Decode(lb) == operands[0]
			}
			switch op {
			case Lt:
				if lb == 0 {
					return layout.Predicate{}, &trivFalse, nil
				}
				if lb >= card {
					return layout.Predicate{}, &trivTrue, nil
				}
				return layout.Predicate{Op: Lt, C1: lb}, nil, nil
			case Le:
				if member {
					return layout.Predicate{Op: Le, C1: lb}, nil, nil
				}
				if lb == 0 {
					return layout.Predicate{}, &trivFalse, nil
				}
				if lb >= card {
					return layout.Predicate{}, &trivTrue, nil
				}
				return layout.Predicate{Op: Lt, C1: lb}, nil, nil
			case Gt:
				if member {
					return layout.Predicate{Op: Gt, C1: lb}, nil, nil
				}
				if lb >= card {
					return layout.Predicate{}, &trivFalse, nil
				}
				return layout.Predicate{Op: Ge, C1: lb}, nil, nil
			default: // Ge
				if lb >= card {
					return layout.Predicate{}, &trivFalse, nil
				}
				return layout.Predicate{Op: Ge, C1: lb}, nil, nil
			}
		case Between:
			lo := c.dict.EncodeLowerBound(operands[0])
			if lo >= card {
				return layout.Predicate{}, &trivFalse, nil
			}
			ub := c.dict.EncodeLowerBound(operands[1])
			hiMember := ub < card && c.dict.Decode(ub) == operands[1]
			hi := ub
			if !hiMember {
				if ub == 0 {
					return layout.Predicate{}, &trivFalse, nil
				}
				hi = ub - 1
			}
			if lo > hi {
				return layout.Predicate{}, &trivFalse, nil
			}
			return layout.Predicate{Op: Between, C1: lo, C2: hi}, nil, nil
		}
		return layout.Predicate{}, nil, fmt.Errorf("byteslice: unknown operator %v", op)
	}}
}

// CodeFilter filters a raw code column with already-encoded constants.
func CodeFilter(col string, op Op, operands ...uint32) Filter {
	return Filter{Col: col, setCode: func(c *Column) (layout.Predicate, *bool, error) {
		if len(operands) != operandCount(op) {
			return layout.Predicate{}, nil, fmt.Errorf("byteslice: %v on %s needs %d operands, got %d", op, col, operandCount(op), len(operands))
		}
		pos := func(v uint32) position {
			if v > c.maxCode() {
				return position{state: 1}
			}
			return position{code: v}
		}
		p1 := pos(operands[0])
		p2 := p1
		if op == Between {
			p2 = pos(operands[1])
		}
		return rangePred(op, p1, p2, c.maxCode())
	}}
}
