package byteslice_test

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"byteslice"
)

func roundTripTable(t *testing.T, tbl *byteslice.Table, opts ...byteslice.ColumnOption) *byteslice.Table {
	t.Helper()
	var buf bytes.Buffer
	n, err := tbl.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := byteslice.ReadTable(&buf, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(60, 60)) //nolint:gosec
	n := 1500
	ints := make([]int64, n)
	decs := make([]float64, n)
	strs := make([]string, n)
	codes := make([]uint32, n)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := 0; i < n; i++ {
		ints[i] = int64(rng.IntN(10000)) - 5000
		decs[i] = float64(rng.IntN(100000)) / 100
		strs[i] = words[rng.IntN(len(words))]
		codes[i] = uint32(rng.IntN(1 << 13))
	}
	ic, err := byteslice.NewIntColumn("i", ints, -5000, 5000, byteslice.WithNulls([]int{3, 77, 1499}))
	if err != nil {
		t.Fatal(err)
	}
	dc, err := byteslice.NewDecimalColumn("d", decs, 0, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := byteslice.NewStringColumn("s", strs, byteslice.WithFormat(byteslice.FormatHBP))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := byteslice.NewCodeColumn("c", codes, 13, byteslice.WithFormat(byteslice.FormatVBP))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := byteslice.NewTable(ic, dc, sc, cc)
	if err != nil {
		t.Fatal(err)
	}

	got := roundTripTable(t, tbl)
	if got.Len() != n {
		t.Fatalf("rows = %d", got.Len())
	}
	gi, _ := got.Column("i")
	gd, _ := got.Column("d")
	gs, _ := got.Column("s")
	gc, _ := got.Column("c")
	if gs.Format() != byteslice.FormatHBP || gc.Format() != byteslice.FormatVBP ||
		gi.Format() != byteslice.FormatByteSlice {
		t.Fatalf("formats not preserved: %s %s %s", gi.Format(), gs.Format(), gc.Format())
	}
	if !gi.Nullable() || gi.NullCount() != 3 || !gi.IsNull(77) {
		t.Fatal("nulls not preserved")
	}
	for i := 0; i < n; i++ {
		if v, _ := gi.LookupInt(nil, i); v != ints[i] {
			t.Fatalf("int row %d: %d vs %d", i, v, ints[i])
		}
		if v, _ := gd.LookupDecimal(nil, i); v != decs[i] {
			t.Fatalf("decimal row %d: %v vs %v", i, v, decs[i])
		}
		if v, _ := gs.LookupString(nil, i); v != strs[i] {
			t.Fatalf("string row %d: %q vs %q", i, v, strs[i])
		}
		if v := gc.LookupCode(nil, i); v != codes[i] {
			t.Fatalf("code row %d: %d vs %d", i, v, codes[i])
		}
	}

	// Queries behave identically after the round trip.
	f := []byteslice.Filter{
		byteslice.IntFilter("i", byteslice.Between, -100, 400),
		byteslice.StringFilter("s", byteslice.Ne, "beta"),
	}
	want, err := tbl.Filter(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := got.Filter(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != want.Count() {
		t.Fatalf("filter after round trip: %d vs %d", res.Count(), want.Count())
	}
}

func TestPersistFormatOverride(t *testing.T) {
	col := intColumn(t, "v", []int64{1, 2, 3}, 0, 10, byteslice.WithFormat(byteslice.FormatBitPacked))
	tbl, _ := byteslice.NewTable(col)
	got := roundTripTable(t, tbl, byteslice.WithFormat(byteslice.FormatByteSlice))
	c, _ := got.Column("v")
	if c.Format() != byteslice.FormatByteSlice {
		t.Fatalf("override ignored: %s", c.Format())
	}
	if v, _ := c.LookupInt(nil, 2); v != 3 {
		t.Fatalf("value lost: %d", v)
	}
}

func TestPersistRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOPE"),
		[]byte("BSLC\xff\xff"), // bad version
		[]byte("BSLC\x01\x00\x00\x00\x00\x00"),
	}
	for i, c := range cases {
		if _, err := byteslice.ReadTable(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
	// Truncated valid stream.
	col := intColumn(t, "v", []int64{1, 2, 3, 4, 5, 6, 7, 8}, 0, 10)
	tbl, _ := byteslice.NewTable(col)
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 12, len(full) / 2, len(full) - 3} {
		if _, err := byteslice.ReadTable(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestPersistQuickProperty round-trips randomly shaped tables and verifies
// every value, null and format survives.
func TestPersistQuickProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	prop := func(seed uint64, nRaw uint16, fmtIdx uint8) bool {
		rng := rand.New(rand.NewPCG(seed, seed^1)) //nolint:gosec
		n := int(nRaw)%300 + 1
		format := byteslice.Formats()[int(fmtIdx)%len(byteslice.Formats())]

		ints := make([]int64, n)
		strs := make([]string, n)
		var nulls []int
		words := []string{"aa", "bb", "cc", "dd"}
		for i := 0; i < n; i++ {
			ints[i] = int64(rng.IntN(5000)) - 2500
			strs[i] = words[rng.IntN(len(words))]
			if rng.IntN(7) == 0 {
				nulls = append(nulls, i)
			}
		}
		ic, err := byteslice.NewIntColumn("i", ints, -2500, 2500,
			byteslice.WithFormat(format), byteslice.WithNulls(nulls))
		if err != nil {
			return false
		}
		sc, err := byteslice.NewStringColumn("s", strs, byteslice.WithFormat(format))
		if err != nil {
			return false
		}
		tbl, err := byteslice.NewTable(ic, sc)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := tbl.WriteTo(&buf); err != nil {
			return false
		}
		got, err := byteslice.ReadTable(&buf)
		if err != nil || got.Len() != n {
			return false
		}
		gi, _ := got.Column("i")
		gs, _ := got.Column("s")
		if gi.Format() != format || gi.NullCount() != len(nulls) {
			return false
		}
		for i := 0; i < n; i++ {
			vi, _ := gi.LookupInt(nil, i)
			vs, _ := gs.LookupString(nil, i)
			if vi != ints[i] || vs != strs[i] || gi.IsNull(i) != contains(nulls, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
