package byteslice

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVColumn describes how one CSV field maps to a column.
type CSVColumn struct {
	// Name is the column name; it must match a header field when the CSV
	// has a header, otherwise columns bind by position.
	Name string
	// Kind selects the value type (KindInt, KindDecimal or KindString).
	Kind Kind
	// Digits is the decimal precision (KindDecimal only).
	Digits int
	// Nullable treats empty fields as NULL; otherwise empty fields error
	// (for string columns an empty string is only NULL when Nullable).
	Nullable bool
}

// CSVOptions configures ReadCSV.
type CSVOptions struct {
	// Header indicates the first record names the fields; columns are then
	// matched by name (extra fields are ignored).
	Header bool
	// Comma is the field delimiter (default ',').
	Comma rune
	// Format selects the storage layout for every column.
	Format Format
}

// ReadCSV loads CSV data into a table: values are parsed per the schema,
// integer and decimal domains are inferred from the data, string columns
// build their dictionary from the data, and each column is encoded and
// formatted. Empty fields of nullable columns become NULL rows.
func ReadCSV(r io.Reader, schema []CSVColumn, opts CSVOptions) (*Table, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("%w: empty CSV schema", ErrSchema)
	}
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = true

	// Bind schema columns to field indices.
	fieldOf := make([]int, len(schema))
	for i := range fieldOf {
		fieldOf[i] = i
	}
	if opts.Header {
		header, err := cr.Read()
		if err != nil {
			return nil, fmt.Errorf("byteslice: reading CSV header: %w", err)
		}
		byName := make(map[string]int, len(header))
		for i, h := range header {
			byName[h] = i
		}
		for i, c := range schema {
			idx, ok := byName[c.Name]
			if !ok {
				return nil, fmt.Errorf("%w: CSV has no column %q (header %v)", ErrSchema, c.Name, header)
			}
			fieldOf[i] = idx
		}
	}

	// Accumulate raw fields; domains are inferred after the full read.
	raw := make([][]string, len(schema))
	nullRows := make([][]int, len(schema))
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("byteslice: reading CSV row %d: %w", row, err)
		}
		for i, c := range schema {
			if fieldOf[i] >= len(rec) {
				return nil, fmt.Errorf("%w: row %d has %d fields, column %q wants field %d", ErrSchema, row, len(rec), c.Name, fieldOf[i])
			}
			v := rec[fieldOf[i]]
			if v == "" && c.Nullable {
				nullRows[i] = append(nullRows[i], row)
			}
			raw[i] = append(raw[i], v)
		}
		row++
	}
	if row == 0 {
		return nil, fmt.Errorf("%w: CSV has no data rows", ErrSchema)
	}

	cols := make([]*Column, 0, len(schema))
	for i, c := range schema {
		colOpts := []ColumnOption{WithNulls(nullRows[i])}
		if opts.Format != "" {
			colOpts = append(colOpts, WithFormat(opts.Format))
		}
		isNull := make(map[int]bool, len(nullRows[i]))
		for _, r := range nullRows[i] {
			isNull[r] = true
		}
		col, err := buildCSVColumn(c, raw[i], isNull, colOpts)
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
	}
	return NewTable(cols...)
}

func buildCSVColumn(c CSVColumn, raw []string, isNull map[int]bool, opts []ColumnOption) (*Column, error) {
	switch c.Kind {
	case KindInt:
		vals := make([]int64, len(raw))
		var min, max int64
		first := true
		for r, s := range raw {
			if isNull[r] {
				continue
			}
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("byteslice: column %q row %d: %w", c.Name, r, err)
			}
			vals[r] = v
			if first || v < min {
				min = v
			}
			if first || v > max {
				max = v
			}
			first = false
		}
		if first {
			min, max = 0, 0
		}
		// NULL placeholders must be in the domain.
		for r := range isNull {
			vals[r] = min
		}
		return NewIntColumn(c.Name, vals, min, max, opts...)

	case KindDecimal:
		vals := make([]float64, len(raw))
		var min, max float64
		first := true
		for r, s := range raw {
			if isNull[r] {
				continue
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("byteslice: column %q row %d: %w", c.Name, r, err)
			}
			vals[r] = v
			if first || v < min {
				min = v
			}
			if first || v > max {
				max = v
			}
			first = false
		}
		if first {
			min, max = 0, 0
		}
		for r := range isNull {
			vals[r] = min
		}
		return NewDecimalColumn(c.Name, vals, min, max, c.Digits, opts...)

	case KindString:
		vals := make([]string, len(raw))
		copy(vals, raw)
		return NewStringColumn(c.Name, vals, opts...)
	}
	return nil, fmt.Errorf("byteslice: column %q: unsupported CSV kind %v", c.Name, c.Kind)
}
