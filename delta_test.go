package byteslice_test

import (
	"math/rand/v2"
	"testing"

	"byteslice"
)

func deltaFixture(t *testing.T) *byteslice.DeltaTable {
	t.Helper()
	qty := intColumn(t, "qty", []int64{5, 50, 7}, 0, 100)
	mode, err := byteslice.NewStringColumn("mode", []string{"AIR", "SHIP", "AIR"})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := byteslice.NewTable(qty, mode)
	if err != nil {
		t.Fatal(err)
	}
	return byteslice.NewDeltaTable(tbl)
}

func TestDeltaAppendAndFilter(t *testing.T) {
	d := deltaFixture(t)
	if d.Len() != 3 || d.DeltaLen() != 0 {
		t.Fatalf("fresh delta: len %d/%d", d.Len(), d.DeltaLen())
	}
	rows := []map[string]any{
		{"qty": int64(60), "mode": "SHIP"},
		{"qty": int64(2), "mode": "AIR"},
		{"qty": nil, "mode": "SHIP"},
	}
	for _, r := range rows {
		if err := d.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != 6 || d.DeltaLen() != 3 {
		t.Fatalf("after appends: len %d/%d", d.Len(), d.DeltaLen())
	}

	// qty ≥ 50 matches base row 1 and delta row 0 (row number 3).
	res, err := d.Filter([]byteslice.Filter{byteslice.IntFilter("qty", byteslice.Ge, 50)})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rows()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("rows = %v, want [1 3]", got)
	}

	// Conjunction spanning base and delta, with the NULL qty row excluded.
	res, err = d.Filter([]byteslice.Filter{
		byteslice.IntFilter("qty", byteslice.Lt, 100), // trivially true — except for NULLs
		byteslice.StringFilter("mode", byteslice.Eq, "SHIP"),
	})
	if err != nil {
		t.Fatal(err)
	}
	got = res.Rows()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("conjunction rows = %v, want [1 3]", got)
	}

	// Disjunction.
	res, err = d.FilterAny([]byteslice.Filter{
		byteslice.IntFilter("qty", byteslice.Lt, 5),
		byteslice.StringFilter("mode", byteslice.Eq, "SHIP"),
	})
	if err != nil {
		t.Fatal(err)
	}
	got = res.Rows()
	if len(got) != 4 || got[0] != 1 || got[1] != 3 || got[2] != 4 || got[3] != 5 {
		t.Fatalf("disjunction rows = %v, want [1 3 4 5]", got)
	}
}

func TestDeltaAppendValidation(t *testing.T) {
	d := deltaFixture(t)
	cases := []map[string]any{
		{"qty": int64(5)},                        // missing column
		{"qty": int64(5), "mode": "AIR", "x": 1}, // extra column
		{"qty": int64(999), "mode": "AIR"},       // out of domain
		{"qty": "five", "mode": "AIR"},           // wrong type
		{"qty": int64(5), "mode": "TRUCK"},       // not in dictionary
		{"qty": int64(5), "mode": 7},             // wrong type
	}
	for i, r := range cases {
		if err := d.AppendRow(r); err == nil {
			t.Fatalf("case %d: bad row accepted", i)
		}
	}
	if d.DeltaLen() != 0 {
		t.Fatalf("failed appends must not leave partial rows: %d", d.DeltaLen())
	}
}

func TestDeltaMerge(t *testing.T) {
	d := deltaFixture(t)
	check(t, d.AppendRow(map[string]any{"qty": int64(60), "mode": "SHIP"}))
	check(t, d.AppendRow(map[string]any{"qty": nil, "mode": "AIR"}))

	merged, err := d.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 5 {
		t.Fatalf("merged len = %d", merged.Len())
	}
	qty, _ := merged.Column("qty")
	if v, _ := qty.LookupInt(nil, 3); v != 60 {
		t.Fatalf("merged row 3 qty = %d", v)
	}
	if !qty.IsNull(4) || qty.NullCount() != 1 {
		t.Fatal("merged nulls wrong")
	}
	mode, _ := merged.Column("mode")
	if s, _ := mode.LookupString(nil, 3); s != "SHIP" {
		t.Fatalf("merged row 3 mode = %q", s)
	}

	// Queries on the merged table equal queries on the delta view.
	f := []byteslice.Filter{byteslice.IntFilter("qty", byteslice.Ge, 7)}
	want, err := d.Filter(f)
	check(t, err)
	got, err := merged.Filter(f)
	check(t, err)
	wr, gr := want.Rows(), got.Rows()
	if len(wr) != len(gr) {
		t.Fatalf("merged query differs: %v vs %v", gr, wr)
	}
	for i := range wr {
		if wr[i] != gr[i] {
			t.Fatalf("merged query differs at %d: %v vs %v", i, gr, wr)
		}
	}

	// Merge with a format override.
	asVBP, err := d.Merge(byteslice.WithFormat(byteslice.FormatVBP))
	check(t, err)
	c, _ := asVBP.Column("qty")
	if c.Format() != byteslice.FormatVBP {
		t.Fatalf("override ignored: %s", c.Format())
	}
}

func check(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeltaModelProperty runs a random sequence of appends, queries and
// merges against a plain-Go model of the table.
func TestDeltaModelProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(120, 120)) //nolint:gosec
	type row struct {
		v      int64
		vNull  bool
		tagIdx int
	}
	tags := []string{"x", "y", "z"}

	// The base rows cover the whole tag vocabulary (a string column's
	// dictionary is fixed at build time, so appends must reuse it).
	baseVals := []int64{10, 20, 30, 40, 50, 60}
	baseTags := []string{"x", "y", "x", "z", "y", "z"}
	var model []row
	for i := range baseVals {
		ti := 0
		for j, s := range tags {
			if s == baseTags[i] {
				ti = j
			}
		}
		model = append(model, row{baseVals[i], false, ti})
	}
	vCol := intColumn(t, "v", baseVals, 0, 1000)
	tCol, err := byteslice.NewStringColumn("tag", baseTags)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := byteslice.NewTable(vCol, tCol)
	if err != nil {
		t.Fatal(err)
	}
	d := byteslice.NewDeltaTable(tbl)

	verify := func(step int) {
		c := int64(rng.IntN(1000))
		tag := tags[rng.IntN(len(tags))]
		res, err := d.Filter([]byteslice.Filter{
			byteslice.IntFilter("v", byteslice.Le, c),
			byteslice.StringFilter("tag", byteslice.Eq, tag),
		})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want := 0
		for _, r := range model {
			if !r.vNull && r.v <= c && tags[r.tagIdx] == tag {
				want++
			}
		}
		if res.Count() != want {
			t.Fatalf("step %d: count %d, want %d (c=%d tag=%s)", step, res.Count(), want, c, tag)
		}
	}

	for step := 0; step < 300; step++ {
		switch rng.IntN(10) {
		case 0, 1, 2, 3, 4, 5: // append
			r := row{v: int64(rng.IntN(1000)), vNull: rng.IntN(10) == 0, tagIdx: rng.IntN(len(tags))}
			vals := map[string]any{"v": r.v, "tag": tags[r.tagIdx]}
			if r.vNull {
				vals["v"] = nil
			}
			if err := d.AppendRow(vals); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			model = append(model, r)
		case 6, 7, 8: // query
			verify(step)
		case 9: // merge
			merged, err := d.Merge()
			if err != nil {
				t.Fatalf("step %d merge: %v", step, err)
			}
			d = byteslice.NewDeltaTable(merged)
		}
	}
	verify(9999)
	if d.Len() != len(model) {
		t.Fatalf("final length %d, want %d", d.Len(), len(model))
	}
}
