package byteslice

import (
	"fmt"

	"byteslice/internal/bitvec"

	"byteslice/internal/encoding"
	"byteslice/internal/kernel"
	"byteslice/internal/layout"
	"byteslice/internal/obs"
)

// Kind is a column's native value type.
type Kind int

// Column kinds.
const (
	KindInt Kind = iota
	KindDecimal
	KindString
	KindCode
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindDecimal:
		return "decimal"
	case KindString:
		return "string"
	case KindCode:
		return "code"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Column is an immutable, encoded, formatted column of values.
type Column struct {
	name string
	kind Kind
	data layout.Layout

	ints *encoding.IntEncoder
	decs *encoding.DecimalEncoder
	dict *encoding.Dictionary

	// nulls marks NULL rows (nil when the column has none); see nulls.go.
	nulls *bitvec.Vector

	// hist is the build-time equi-width histogram driving selectivity
	// estimates (histogram.go).
	hist *histogram

	// wl accumulates the column's lifetime scan/lookup row counters — the
	// input to the planner's layout decision (plan.LayoutWins). Held by
	// pointer so facade-level column copies (re-layout, recompression)
	// keep feeding the same counters.
	wl *obs.ColumnWorkload
}

// ColumnOption customises column construction.
type ColumnOption func(*columnConfig)

type columnConfig struct {
	format   Format
	nullRows []int
	zoneMaps bool
	compress bool
}

// WithFormat selects the storage layout (default: ByteSlice).
func WithFormat(f Format) ColumnOption {
	return func(c *columnConfig) { c.format = f }
}

// WithCompression enables the build-time compression decision on a
// ByteSlice column: the codes are encoded into frame-of-reference/delta
// blocks (FormatByteSliceC) when the planner's bytes-moved model prices
// the compressed fused scan below the raw SWAR scan — typically on
// sorted, clustered or otherwise low-entropy columns — and stay in the
// raw ByteSlice layout when compression would not pay. Ignored when a
// non-ByteSlice format is selected explicitly.
func WithCompression() ColumnOption {
	return func(c *columnConfig) { c.compress = true }
}

// builder resolves the layout constructor for this configuration: the
// compression decision applies only to the default ByteSlice format.
func (cfg columnConfig) builder() (layout.Builder, error) {
	if cfg.compress && (cfg.format == "" || cfg.format == FormatByteSlice) {
		return builderFor(FormatByteSliceC)
	}
	return builderFor(cfg.format)
}

// WithZoneMaps builds per-segment first-byte zone maps on ByteSlice
// columns: scans resolve segments whose zone already decides the predicate
// without touching the data — most effective on sorted or clustered
// columns (date-ordered fact tables). Ignored for other formats.
func WithZoneMaps() ColumnOption {
	return func(c *columnConfig) { c.zoneMaps = true }
}

func applyOpts(opts []ColumnOption) columnConfig {
	var cfg columnConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// finish applies post-build column options (zone maps) and attaches the
// workload counters.
func (cfg columnConfig) finish(c *Column, err error) (*Column, error) {
	if err != nil {
		return nil, err
	}
	if cfg.zoneMaps {
		if bs, ok := byteSliceOf(c.data); ok {
			bs.BuildZoneMaps()
		}
	}
	c.wl = &obs.ColumnWorkload{}
	return c, nil
}

// NewIntColumn builds an integer column over the closed domain [min, max]
// using frame-of-reference encoding. Every value must lie in the domain;
// filter constants may not.
func NewIntColumn(name string, values []int64, min, max int64, opts ...ColumnOption) (*Column, error) {
	cfg := applyOpts(opts)
	build, err := cfg.builder()
	if err != nil {
		return nil, err
	}
	enc, err := encoding.NewIntEncoder(min, max)
	if err != nil {
		return nil, err
	}
	codes := make([]uint32, len(values))
	for i, v := range values {
		c, err := enc.Encode(v)
		if err != nil {
			return nil, fmt.Errorf("column %s row %d: %w", name, i, err)
		}
		codes[i] = c
	}
	nulls, err := buildNulls(cfg.nullRows, len(codes))
	if err != nil {
		return nil, err
	}
	return cfg.finish(&Column{nulls: nulls, name: name, kind: KindInt, ints: enc,
		hist: buildHistogram(codes, maxCodeFor(enc.Width())),
		data: build(codes, enc.Width(), arena)}, nil)
}

// NewDecimalColumn builds a fixed-precision decimal column over [min, max]
// with the given number of decimal digits, scaled to integer codes.
func NewDecimalColumn(name string, values []float64, min, max float64, digits int, opts ...ColumnOption) (*Column, error) {
	cfg := applyOpts(opts)
	build, err := cfg.builder()
	if err != nil {
		return nil, err
	}
	enc, err := encoding.NewDecimalEncoder(min, max, digits)
	if err != nil {
		return nil, err
	}
	codes := make([]uint32, len(values))
	for i, v := range values {
		c, err := enc.Encode(v)
		if err != nil {
			return nil, fmt.Errorf("column %s row %d: %w", name, i, err)
		}
		codes[i] = c
	}
	nulls, err := buildNulls(cfg.nullRows, len(codes))
	if err != nil {
		return nil, err
	}
	return cfg.finish(&Column{nulls: nulls, name: name, kind: KindDecimal, decs: enc,
		hist: buildHistogram(codes, maxCodeFor(enc.Width())),
		data: build(codes, enc.Width(), arena)}, nil)
}

// NewStringColumn builds a string column with an order-preserving sorted
// dictionary built from the values themselves: string range predicates
// translate directly to code range predicates.
func NewStringColumn(name string, values []string, opts ...ColumnOption) (*Column, error) {
	cfg := applyOpts(opts)
	build, err := cfg.builder()
	if err != nil {
		return nil, err
	}
	dict := encoding.NewDictionary(values)
	codes := make([]uint32, len(values))
	for i, v := range values {
		c, err := dict.Encode(v)
		if err != nil {
			return nil, fmt.Errorf("column %s row %d: %w", name, i, err)
		}
		codes[i] = c
	}
	nulls, err := buildNulls(cfg.nullRows, len(codes))
	if err != nil {
		return nil, err
	}
	return cfg.finish(&Column{nulls: nulls, name: name, kind: KindString, dict: dict,
		hist: buildHistogram(codes, maxCodeFor(dict.Width())),
		data: build(codes, dict.Width(), arena)}, nil)
}

// NewCodeColumn builds a column from pre-encoded k-bit codes (for callers
// that manage their own encoding).
func NewCodeColumn(name string, codes []uint32, k int, opts ...ColumnOption) (*Column, error) {
	cfg := applyOpts(opts)
	build, err := cfg.builder()
	if err != nil {
		return nil, err
	}
	if k < 1 || k > 32 {
		return nil, fmt.Errorf("byteslice: column %s: width %d out of range [1,32]", name, k)
	}
	for i, c := range codes {
		if k < 32 && c >= 1<<uint(k) {
			return nil, fmt.Errorf("byteslice: column %s row %d: code %d exceeds width %d", name, i, c, k)
		}
	}
	nulls, err := buildNulls(cfg.nullRows, len(codes))
	if err != nil {
		return nil, err
	}
	return cfg.finish(&Column{nulls: nulls, name: name, kind: KindCode,
		hist: buildHistogram(codes, maxCodeFor(k)),
		data: build(codes, k, arena)}, nil)
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Kind returns the column's native value kind.
func (c *Column) Kind() Kind { return c.kind }

// Len returns the number of rows.
func (c *Column) Len() int { return c.data.Len() }

// Width returns the encoded code width in bits.
func (c *Column) Width() int { return c.data.Width() }

// Format returns the storage layout name.
func (c *Column) Format() Format { return Format(c.data.Name()) }

// SizeBytes returns the formatted in-memory footprint.
func (c *Column) SizeBytes() uint64 { return c.data.SizeBytes() }

// Compressed reports whether the column is stored in the compressed
// FOR/delta block layout (FormatByteSliceC; see WithCompression).
func (c *Column) Compressed() bool {
	_, ok := compressedOf(c.data)
	return ok
}

// CompressionStats describes a column's storage for inspection tooling:
// its layout, footprint against the equivalent raw ByteSlice layout, and —
// for compressed columns — the block-mode mix driving the fused scan's
// fast paths.
type CompressionStats struct {
	// Format is the column's storage layout name.
	Format Format
	// Blocks, DeltaBlocks and Uniform1 count the column's 512-code blocks,
	// the delta-encoded ones, and the FOR blocks on the no-decode 1-byte
	// direct-compare path (all zero for uncompressed layouts).
	Blocks, DeltaBlocks, Uniform1 int
	// RawBytes is the raw ByteSlice footprint of the same codes; Bytes is
	// the column's actual footprint; Ratio is RawBytes/Bytes.
	RawBytes, Bytes uint64
	Ratio           float64
	// BytesPerRow and PruneEst are the compressed scan cost-model inputs:
	// compressed bytes moved per row and the estimated block prune rate.
	BytesPerRow float64
	PruneEst    float64
}

// CompressionStats summarises the column's storage layout.
func (c *Column) CompressionStats() CompressionStats {
	s := CompressionStats{
		Format:      c.Format(),
		RawBytes:    c.SizeBytes(),
		Bytes:       c.SizeBytes(),
		Ratio:       1,
		BytesPerRow: float64((c.Width() + 7) / 8),
	}
	if cc, ok := compressedOf(c.data); ok {
		cs := cc.ColumnStats()
		s.Blocks, s.DeltaBlocks, s.Uniform1 = cs.Blocks, cs.DeltaBlocks, cs.Uniform1
		s.RawBytes, s.Bytes, s.Ratio = cs.RawBytes, cs.CompBytes, cs.Ratio
		s.BytesPerRow, s.PruneEst = cs.BytesPerRow, cs.PruneEst
	}
	return s
}

// HasZoneMaps reports whether the column carries per-segment zone maps
// (built via WithZoneMaps on a ByteSlice column).
func (c *Column) HasZoneMaps() bool {
	bs, ok := byteSliceOf(c.data)
	return ok && bs.HasZoneMaps()
}

// LookupCode reconstructs the stored code of row i (the raw lookup the
// paper benchmarks). The profile may be nil, in which case HBP columns
// take the native single-load kernel instead of the modelled engine.
func (c *Column) LookupCode(p *Profile, i int) uint32 {
	c.wl.AddLookupRows(1)
	if p == nil {
		if h, ok := hbpOf(c.data); ok {
			return kernel.LookupHBP(h, i)
		}
		if bs, ok := byteSliceOf(c.data); ok {
			return kernel.Lookup(bs, i)
		}
	}
	return c.data.Lookup(p.engine(), i)
}

// Workload reports the column's lifetime access counters: rows examined
// by predicate scans and rows materialised by point lookups. The planner
// turns the ratio into the layout decision (see Table.AutoLayout).
func (c *Column) Workload() (scanRows, lookupRows int64) {
	s := c.wl.Snapshot()
	return s.ScanRows, s.LookupRows
}

// LookupInt decodes row i of an integer column.
func (c *Column) LookupInt(p *Profile, i int) (int64, error) {
	if c.kind != KindInt {
		return 0, fmt.Errorf("byteslice: column %s is %s, not int", c.name, c.kind)
	}
	return c.ints.Decode(c.LookupCode(p, i)), nil
}

// LookupDecimal decodes row i of a decimal column.
func (c *Column) LookupDecimal(p *Profile, i int) (float64, error) {
	if c.kind != KindDecimal {
		return 0, fmt.Errorf("byteslice: column %s is %s, not decimal", c.name, c.kind)
	}
	return c.decs.Decode(c.LookupCode(p, i)), nil
}

// LookupString decodes row i of a string column.
func (c *Column) LookupString(p *Profile, i int) (string, error) {
	if c.kind != KindString {
		return "", fmt.Errorf("byteslice: column %s is %s, not string", c.name, c.kind)
	}
	return c.dict.Decode(c.LookupCode(p, i)), nil
}

// maxCode returns the largest code of the column's domain.
func (c *Column) maxCode() uint32 { return maxCodeFor(c.data.Width()) }

func maxCodeFor(k int) uint32 {
	if k == 32 {
		return ^uint32(0)
	}
	return 1<<uint(k) - 1
}

// predicate translates a filter's native constants into a code predicate,
// or a trivial constant when the filter is decided by the domain alone.
func (c *Column) predicate(f Filter) (layout.Predicate, *bool, error) {
	switch c.kind {
	case KindInt:
		if f.setInt == nil {
			return layout.Predicate{}, nil, fmt.Errorf("byteslice: column %s is int; use IntFilter", c.name)
		}
		return f.setInt(c)
	case KindDecimal:
		if f.setDec == nil {
			return layout.Predicate{}, nil, fmt.Errorf("byteslice: column %s is decimal; use DecimalFilter", c.name)
		}
		return f.setDec(c)
	case KindString:
		if f.setStr == nil {
			return layout.Predicate{}, nil, fmt.Errorf("byteslice: column %s is string; use StringFilter", c.name)
		}
		return f.setStr(c)
	case KindCode:
		if f.setCode == nil {
			return layout.Predicate{}, nil, fmt.Errorf("byteslice: column %s is code; use CodeFilter", c.name)
		}
		return f.setCode(c)
	}
	return layout.Predicate{}, nil, fmt.Errorf("byteslice: column %s has unknown kind", c.name)
}
