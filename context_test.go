package byteslice_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	bs "byteslice"
	"byteslice/internal/kernel"
)

// ctxTable builds a native (unprofiled) table big enough that every query
// spans many kernel cancellation batches.
func ctxTable(t *testing.T, n int) *bs.Table {
	t.Helper()
	vals := make([]int64, n)
	amounts := make([]float64, n)
	for i := range vals {
		vals[i] = int64(i % 1000)
		amounts[i] = float64(i%500) / 10
	}
	c1, err := bs.NewIntColumn("v", vals, 0, 999)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := bs.NewDecimalColumn("amt", amounts, 0, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := bs.NewTable(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestQueryContextCancel: a cancelled context stops a parallel native scan
// early. The kernel batch hook stands in for a stuck segment source — it
// blocks every worker until cancellation, so a scan that ignored the
// context would hang, and one that polled it only at the end would run all
// batches.
func TestQueryContextCancel(t *testing.T) {
	tab := ctxTable(t, 1<<19)
	ctx, cancel := context.WithCancel(context.Background())
	var batches atomic.Int32
	started := make(chan struct{}, 1)
	kernel.BatchHook = func(int, int) {
		batches.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
	}
	defer func() { kernel.BatchHook = nil }()

	type out struct {
		res *bs.Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := tab.Filter([]bs.Filter{bs.IntFilter("v", bs.Lt, 500)}, bs.WithContext(ctx))
		done <- out{res, err}
	}()
	<-started
	cancel()
	got := <-done
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("Filter err = %v, want context.Canceled", got.err)
	}
	if got.res != nil {
		t.Fatal("cancelled Filter still returned a result")
	}
	// Far fewer batches than the full scan (the column has thousands).
	if n := int(batches.Load()); n > 64 {
		t.Fatalf("%d batches ran after cancellation", n)
	}
}

// TestQueryContextPreCancelled: every query entry point refuses to start
// under an already-cancelled context.
func TestQueryContextPreCancelled(t *testing.T) {
	tab := ctxTable(t, 1<<12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := bs.WithContext(ctx)
	f := []bs.Filter{bs.IntFilter("v", bs.Lt, 500)}

	if _, err := tab.Filter(f, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("Filter: %v", err)
	}
	if _, err := tab.Query(bs.Leaf(bs.IntFilter("v", bs.Lt, 500)), opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("Query: %v", err)
	}
	if _, _, err := tab.SumInt("v", nil, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("SumInt: %v", err)
	}
	if _, _, err := tab.MinInt("v", nil, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("MinInt: %v", err)
	}
	if _, _, err := tab.SumIntWhere("v", bs.IntFilter("v", bs.Lt, 500), opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("SumIntWhere: %v", err)
	}
	if _, err := tab.SumIntBy("v", "v", nil, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("SumIntBy: %v", err)
	}

	res, err := tab.Filter(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tab.ProjectInt("v", res, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("ProjectInt: %v", err)
	}
	if _, err := tab.OrderBy("v", res, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("OrderBy: %v", err)
	}
}

// TestQueryWorkerPanicIsError: a panic inside a kernel worker surfaces as
// a query error wrapping ErrQueryFault and naming the failing segment
// range — the process does not crash.
func TestQueryWorkerPanicIsError(t *testing.T) {
	tab := ctxTable(t, 1<<16)
	kernel.BatchHook = func(int, int) { panic("injected kernel bug") }
	defer func() { kernel.BatchHook = nil }()

	_, err := tab.Filter([]bs.Filter{bs.IntFilter("v", bs.Lt, 500)})
	if !errors.Is(err, bs.ErrQueryFault) {
		t.Fatalf("Filter err = %v, want ErrQueryFault", err)
	}
	if !strings.Contains(err.Error(), "segments [") {
		t.Fatalf("error %q does not name the failing segment range", err)
	}

	if _, _, err := tab.SumInt("v", nil); !errors.Is(err, bs.ErrQueryFault) {
		t.Fatalf("SumInt err = %v, want ErrQueryFault", err)
	}
	if _, _, err := tab.MaxIntWhere("v", bs.IntFilter("v", bs.Lt, 500)); !errors.Is(err, bs.ErrQueryFault) {
		t.Fatalf("MaxIntWhere err = %v, want ErrQueryFault", err)
	}
}

// TestQueryContextLiveIsNoop: attaching a live context changes nothing
// about results.
func TestQueryContextLiveIsNoop(t *testing.T) {
	tab := ctxTable(t, 1<<14+7)
	f := []bs.Filter{bs.IntFilter("v", bs.Lt, 500)}
	plain, err := tab.Filter(f)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := tab.Filter(f, bs.WithContext(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Count() != withCtx.Count() {
		t.Fatalf("count with ctx %d, without %d", withCtx.Count(), plain.Count())
	}
	sum1, n1, err := tab.SumInt("v", plain)
	if err != nil {
		t.Fatal(err)
	}
	sum2, n2, err := tab.SumInt("v", withCtx, bs.WithContext(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if sum1 != sum2 || n1 != n2 {
		t.Fatalf("SumInt with ctx (%d, %d), without (%d, %d)", sum2, n2, sum1, n1)
	}
}
