package byteslice

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"byteslice/internal/encoding"
)

// Table persistence. The on-disk representation stores each column's
// metadata (kind, format, encoder parameters, NULL rows) together with its
// raw codes; loading re-encodes nothing and rebuilds the storage layout
// deterministically from the codes — the formats themselves are derived
// data, exactly as a column store would rebuild them when mapping a
// snapshot back into memory.
//
// Format (all integers little-endian):
//
//	magic "BSLC" | version u16 | columns u32 | rows u64
//	per column:
//	  name | kind u8 | format | width u8
//	  encoder params (kind-specific)
//	  nulls u64 + that many u64 row numbers
//	  rows × u32 codes
//
// Strings are length-prefixed (u32).

const (
	persistMagic   = "BSLC"
	persistVersion = 1
)

// WriteTo serialises the table. It returns the number of bytes written.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	put := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }
	putStr := func(s string) error {
		if err := put(uint32(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(cw, s)
		return err
	}

	if _, err := io.WriteString(cw, persistMagic); err != nil {
		return cw.n, err
	}
	if err := put(uint16(persistVersion)); err != nil {
		return cw.n, err
	}
	if err := put(uint32(len(t.cols))); err != nil {
		return cw.n, err
	}
	if err := put(uint64(t.n)); err != nil {
		return cw.n, err
	}

	for _, c := range t.cols {
		if err := putStr(c.name); err != nil {
			return cw.n, err
		}
		if err := put(uint8(c.kind)); err != nil {
			return cw.n, err
		}
		if err := putStr(string(c.Format())); err != nil {
			return cw.n, err
		}
		if err := put(uint8(c.Width())); err != nil {
			return cw.n, err
		}
		switch c.kind {
		case KindInt:
			if err := put(c.ints.Min()); err != nil {
				return cw.n, err
			}
			if err := put(c.ints.Max()); err != nil {
				return cw.n, err
			}
		case KindDecimal:
			if err := put(c.decs.Min()); err != nil {
				return cw.n, err
			}
			if err := put(c.decs.Max()); err != nil {
				return cw.n, err
			}
			if err := put(uint8(c.decs.Digits())); err != nil {
				return cw.n, err
			}
		case KindString:
			vals := c.dict.Values()
			if err := put(uint32(len(vals))); err != nil {
				return cw.n, err
			}
			for _, s := range vals {
				if err := putStr(s); err != nil {
					return cw.n, err
				}
			}
		case KindCode:
			// Width alone suffices.
		}

		var nullRows []int32
		if c.nulls != nil {
			nullRows = c.nulls.Positions(nil)
		}
		if err := put(uint64(len(nullRows))); err != nil {
			return cw.n, err
		}
		for _, r := range nullRows {
			if err := put(uint64(r)); err != nil {
				return cw.n, err
			}
		}

		for i := 0; i < t.n; i++ {
			if err := put(c.data.Lookup(nilProfile.engine(), i)); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// nilProfile lets persistence reuse the engine plumbing without metrics.
var nilProfile *Profile

// ReadTable deserialises a table written by WriteTo, rebuilding every
// column in the requested format (pass no option to restore the formats
// recorded in the stream).
func ReadTable(r io.Reader, opts ...ColumnOption) (*Table, error) {
	br := bufio.NewReader(r)
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	getStr := func() (string, error) {
		var n uint32
		if err := get(&n); err != nil {
			return "", err
		}
		if n > 1<<24 {
			return "", fmt.Errorf("byteslice: implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("byteslice: bad magic %q", magic)
	}
	var version uint16
	if err := get(&version); err != nil {
		return nil, err
	}
	if version != persistVersion {
		return nil, fmt.Errorf("byteslice: unsupported version %d", version)
	}
	var ncols uint32
	var nrows uint64
	if err := get(&ncols); err != nil {
		return nil, err
	}
	if err := get(&nrows); err != nil {
		return nil, err
	}
	if ncols == 0 || ncols > 1<<16 || nrows > 1<<40 {
		return nil, fmt.Errorf("byteslice: implausible shape %d×%d", ncols, nrows)
	}

	override := applyOpts(opts)
	cols := make([]*Column, 0, ncols)
	for ci := uint32(0); ci < ncols; ci++ {
		name, err := getStr()
		if err != nil {
			return nil, err
		}
		var kind uint8
		if err := get(&kind); err != nil {
			return nil, err
		}
		formatStr, err := getStr()
		if err != nil {
			return nil, err
		}
		var width uint8
		if err := get(&width); err != nil {
			return nil, err
		}
		format := Format(formatStr)
		if override.format != "" {
			format = override.format
		}

		var intMin, intMax int64
		var decMin, decMax float64
		var decDigits uint8
		var vocab []string
		switch Kind(kind) {
		case KindInt:
			if err := get(&intMin); err != nil {
				return nil, err
			}
			if err := get(&intMax); err != nil {
				return nil, err
			}
		case KindDecimal:
			if err := get(&decMin); err != nil {
				return nil, err
			}
			if err := get(&decMax); err != nil {
				return nil, err
			}
			if err := get(&decDigits); err != nil {
				return nil, err
			}
		case KindString:
			var card uint32
			if err := get(&card); err != nil {
				return nil, err
			}
			if card > 1<<24 {
				return nil, fmt.Errorf("byteslice: implausible dictionary size %d", card)
			}
			vocab = make([]string, card)
			for i := range vocab {
				if vocab[i], err = getStr(); err != nil {
					return nil, err
				}
			}
		case KindCode:
		default:
			return nil, fmt.Errorf("byteslice: unknown column kind %d", kind)
		}

		var nullCount uint64
		if err := get(&nullCount); err != nil {
			return nil, err
		}
		if nullCount > nrows {
			return nil, fmt.Errorf("byteslice: %d nulls in %d rows", nullCount, nrows)
		}
		nullRows := make([]int, nullCount)
		for i := range nullRows {
			var r uint64
			if err := get(&r); err != nil {
				return nil, err
			}
			if r >= nrows {
				return nil, fmt.Errorf("byteslice: null row %d out of range", r)
			}
			nullRows[i] = int(r)
		}

		codes := make([]uint32, nrows)
		if err := get(codes); err != nil {
			return nil, err
		}

		col, err := rebuildColumn(name, Kind(kind), format, int(width), codes,
			intMin, intMax, decMin, decMax, int(decDigits), vocab, nullRows)
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
	}
	return NewTable(cols...)
}

// rebuildColumn reconstructs a column directly from its stored codes and
// encoder parameters, avoiding native-value round trips (which would have
// to special-case NULL placeholder rows).
func rebuildColumn(name string, kind Kind, format Format, width int, codes []uint32,
	intMin, intMax int64, decMin, decMax float64, decDigits int,
	vocab []string, nullRows []int) (*Column, error) {

	build, err := builderFor(format)
	if err != nil {
		return nil, err
	}
	nulls, err := buildNulls(nullRows, len(codes))
	if err != nil {
		return nil, err
	}
	checkCodes := func(k int) error {
		if k < 1 || k > 32 {
			return fmt.Errorf("byteslice: column %s: bad width %d", name, k)
		}
		if k == 32 {
			return nil
		}
		for i, c := range codes {
			if c >= 1<<uint(k) {
				return fmt.Errorf("byteslice: column %s row %d: code %d exceeds width %d", name, i, c, k)
			}
		}
		return nil
	}

	switch kind {
	case KindInt:
		enc, err := encoding.NewIntEncoder(intMin, intMax)
		if err != nil {
			return nil, err
		}
		if err := checkCodes(enc.Width()); err != nil {
			return nil, err
		}
		return &Column{nulls: nulls, name: name, kind: KindInt, ints: enc,
			hist: buildHistogram(codes, maxCodeFor(enc.Width())),
			data: build(codes, enc.Width(), arena)}, nil
	case KindDecimal:
		enc, err := encoding.NewDecimalEncoder(decMin, decMax, decDigits)
		if err != nil {
			return nil, err
		}
		if err := checkCodes(enc.Width()); err != nil {
			return nil, err
		}
		return &Column{nulls: nulls, name: name, kind: KindDecimal, decs: enc,
			hist: buildHistogram(codes, maxCodeFor(enc.Width())),
			data: build(codes, enc.Width(), arena)}, nil
	case KindString:
		dict := encoding.NewDictionary(vocab)
		if dict.Cardinality() != len(vocab) {
			return nil, fmt.Errorf("byteslice: column %s: stored vocabulary has duplicates", name)
		}
		for i, c := range codes {
			if int(c) >= dict.Cardinality() {
				return nil, fmt.Errorf("byteslice: column %s row %d: code %d outside dictionary", name, i, c)
			}
		}
		return &Column{nulls: nulls, name: name, kind: KindString, dict: dict,
			hist: buildHistogram(codes, maxCodeFor(dict.Width())),
			data: build(codes, dict.Width(), arena)}, nil
	case KindCode:
		if err := checkCodes(width); err != nil {
			return nil, err
		}
		return &Column{nulls: nulls, name: name, kind: KindCode,
			hist: buildHistogram(codes, maxCodeFor(width)),
			data: build(codes, width, arena)}, nil
	}
	return nil, fmt.Errorf("byteslice: unknown kind %v", kind)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
