package byteslice

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"byteslice/internal/compress"
	"byteslice/internal/encoding"
	"byteslice/internal/obs"
)

// Table persistence. The on-disk representation stores each column's
// metadata (kind, format, encoder parameters, NULL rows) together with its
// raw codes; loading re-encodes nothing and rebuilds the storage layout
// deterministically from the codes — the formats themselves are derived
// data, exactly as a column store would rebuild them when mapping a
// snapshot back into memory.
//
// Format v2 (all integers little-endian) frames every section with a tag,
// an explicit length and a CRC32-C of the payload, so torn writes, bit
// flips and truncation are detected structurally instead of surfacing as
// garbage tables:
//
//	magic "BSLC" | version u16 = 2
//	section 'T':  tag u8 | len u64 | payload | crc32c u32
//	  payload: columns u32 | rows u64
//	per column:
//	  section 'M': tag u8 | len u64 | payload | crc32c u32
//	    payload: name | kind u8 | format | width u8
//	             encoder params (kind-specific)
//	             nulls u64 + that many u64 row numbers
//	  section 'C': tag u8 | len u64 (= 4·rows) | rows × u32 codes | crc32c u32
//
// Strings are length-prefixed (u32). Readers never trust a declared length
// for allocation: payloads stream in bounded chunks, so a forged header
// cannot trigger a multi-gigabyte allocation before the stream runs dry.
//
// Version 1 streams (the same fields without framing or checksums) are
// still readable; WriteTo always produces version 2.

const (
	persistMagic = "BSLC"
	persistV1    = 1
	persistV2    = 2

	secTable = 'T' // table header section
	secMeta  = 'M' // per-column metadata section
	secCodes = 'C' // per-column codes section

	// ioChunk bounds every streaming read/write and allocation step: a
	// reader's memory grows only as real bytes arrive, never by a header's
	// claim.
	ioChunk = 64 << 10

	maxPersistCols   = 1 << 16
	maxPersistRows   = 1 << 40
	maxPersistString = 1 << 24
	maxPersistDict   = 1 << 24
	// maxMetaSection caps a metadata section: name, format, dictionary and
	// NULL-row list all live there, so 2 GiB is far beyond any legitimate
	// column while still cheap to reject.
	maxMetaSection = 1 << 31
)

// Snapshot error sentinels. Every structural defect a reader detects —
// bad magic, checksum mismatch, truncated or oversized sections, values
// inconsistent with their declared encoding — wraps ErrCorrupt, and an
// unknown format version wraps ErrVersion, so callers can classify
// failures with errors.Is without parsing messages.
var (
	ErrCorrupt = errors.New("byteslice: corrupt snapshot")
	ErrVersion = errors.New("byteslice: unsupported snapshot version")
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// fill reads exactly len(b) bytes, reporting a premature end of stream as
// corruption (a torn or truncated snapshot) and passing real I/O errors
// through unchanged.
func fill(r io.Reader, b []byte) error {
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return corruptf("unexpected end of stream")
		}
		return err
	}
	return nil
}

// WriteTo serialises the table in format v2. It returns the number of
// bytes written.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}

	if _, err := io.WriteString(cw, persistMagic); err != nil {
		return cw.n, err
	}
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], persistV2)
	if _, err := cw.Write(ver[:]); err != nil {
		return cw.n, err
	}

	var hdr payloadBuf
	hdr.u32(uint32(len(t.cols)))
	hdr.u64(uint64(t.n))
	if err := writeSection(cw, secTable, hdr.Bytes()); err != nil {
		return cw.n, err
	}

	for _, c := range t.cols {
		if err := writeSection(cw, secMeta, columnMeta(c)); err != nil {
			return cw.n, err
		}
		if err := writeCodesSection(cw, c, t.n); err != nil {
			return cw.n, err
		}
	}
	return cw.n, bw.Flush()
}

// payloadBuf builds a section payload in memory (sections other than the
// streamed codes are small: a header or one column's metadata).
type payloadBuf struct{ bytes.Buffer }

func (p *payloadBuf) u8(v byte) { p.WriteByte(v) }
func (p *payloadBuf) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	p.Write(b[:])
}
func (p *payloadBuf) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	p.Write(b[:])
}
func (p *payloadBuf) i64(v int64)   { p.u64(uint64(v)) }
func (p *payloadBuf) f64(v float64) { p.u64(math.Float64bits(v)) }
func (p *payloadBuf) str(s string)  { p.u32(uint32(len(s))); p.WriteString(s) }

// columnMeta serialises one column's metadata payload.
func columnMeta(c *Column) []byte {
	var p payloadBuf
	p.str(c.name)
	p.u8(uint8(c.kind))
	p.str(string(c.Format()))
	p.u8(uint8(c.Width()))
	switch c.kind {
	case KindInt:
		p.i64(c.ints.Min())
		p.i64(c.ints.Max())
	case KindDecimal:
		p.f64(c.decs.Min())
		p.f64(c.decs.Max())
		p.u8(uint8(c.decs.Digits()))
	case KindString:
		vals := c.dict.Values()
		p.u32(uint32(len(vals)))
		for _, s := range vals {
			p.str(s)
		}
	case KindCode:
		// Width alone suffices.
	}
	var nullRows []int32
	if c.nulls != nil {
		nullRows = c.nulls.Positions(nil)
	}
	p.u64(uint64(len(nullRows)))
	for _, r := range nullRows {
		p.u64(uint64(r))
	}
	return p.Bytes()
}

// writeSection frames one buffered payload: tag, length, payload, CRC32-C.
func writeSection(cw *countingWriter, tag byte, payload []byte) error {
	var hdr [9]byte
	hdr[0] = tag
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(payload)))
	if _, err := cw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := cw.Write(payload); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.Checksum(payload, castagnoli))
	_, err := cw.Write(tail[:])
	return err
}

// writeCodesSection streams one column's codes without materialising the
// payload: the length is known up front (4 bytes per row) and the checksum
// accumulates chunk by chunk.
func writeCodesSection(cw *countingWriter, c *Column, n int) error {
	var hdr [9]byte
	hdr[0] = secCodes
	binary.LittleEndian.PutUint64(hdr[1:], uint64(n)*4)
	if _, err := cw.Write(hdr[:]); err != nil {
		return err
	}
	crc := crc32.New(castagnoli)
	buf := make([]byte, 0, ioChunk)
	emit := func(v uint32) error {
		var word [4]byte
		binary.LittleEndian.PutUint32(word[:], v)
		buf = append(buf, word[:]...)
		if len(buf) == ioChunk {
			crc.Write(buf)
			if _, err := cw.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
		return nil
	}
	if cc, ok := compressedOf(c.data); ok {
		// Compressed columns stream block by block: each 512-code block
		// decodes once instead of paying a per-row partial decode.
		var block [compress.BlockCodes]uint32
		for b := 0; b < cc.Blocks(); b++ {
			rows := cc.DecodeBlock(b, &block)
			for _, v := range block[:rows] {
				if err := emit(v); err != nil {
					return err
				}
			}
		}
	} else {
		e := nilProfile.engine()
		for i := 0; i < n; i++ {
			if err := emit(c.data.Lookup(e, i)); err != nil {
				return err
			}
		}
	}
	if len(buf) > 0 {
		crc.Write(buf)
		if _, err := cw.Write(buf); err != nil {
			return err
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := cw.Write(tail[:])
	return err
}

// nilProfile lets persistence reuse the engine plumbing without metrics.
var nilProfile *Profile

// ReadTable deserialises a table written by WriteTo, rebuilding every
// column in the requested format (pass no option to restore the formats
// recorded in the stream). It reads both the current checksummed format
// (v2) and legacy v1 streams. Structural defects are reported as errors
// wrapping ErrCorrupt; an unknown version wraps ErrVersion. ReadTable
// never allocates more memory than the stream actually delivers, so a
// corrupt header cannot trigger an outsized allocation.
func ReadTable(r io.Reader, opts ...ColumnOption) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if err := fill(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != persistMagic {
		return nil, corruptf("bad magic %q", magic)
	}
	var verb [2]byte
	if err := fill(br, verb[:]); err != nil {
		return nil, err
	}
	switch version := binary.LittleEndian.Uint16(verb[:]); version {
	case persistV1:
		return readTableV1(br, opts)
	case persistV2:
		return readTableV2(br, opts)
	default:
		return nil, fmt.Errorf("%w: %d", ErrVersion, version)
	}
}

// checkShape validates the table header fields shared by both versions.
func checkShape(ncols uint32, nrows uint64) error {
	if ncols == 0 || ncols > maxPersistCols || nrows > maxPersistRows {
		return corruptf("implausible shape %d×%d", ncols, nrows)
	}
	return nil
}

// columnSpec carries one column's parsed metadata between the version-
// specific parsers and the shared rebuild step.
type columnSpec struct {
	name           string
	kind           Kind
	format         Format
	width          int
	intMin, intMax int64
	decMin, decMax float64
	decDigits      int
	vocab          []string
	nullRows       []int
}

// rebuild reconstructs the column, classifying every rebuild failure as
// corruption: the stream's own parameters could not reproduce a valid
// column.
func (s *columnSpec) rebuild(codes []uint32, override columnConfig) (*Column, error) {
	format := s.format
	if override.format != "" {
		format = override.format
	}
	col, err := rebuildColumn(s.name, s.kind, format, s.width, codes,
		s.intMin, s.intMax, s.decMin, s.decMax, s.decDigits, s.vocab, s.nullRows)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	col.wl = &obs.ColumnWorkload{}
	return col, nil
}

// ---------------------------------------------------------------------------
// Version 2 reader: framed, checksummed, streaming.

func readTableV2(br *bufio.Reader, opts []ColumnOption) (*Table, error) {
	chunk := make([]byte, ioChunk)
	hdr, err := readSection(br, secTable, 12, chunk)
	if err != nil {
		return nil, err
	}
	h := metaBuf{b: hdr}
	ncols, err := h.u32()
	if err != nil {
		return nil, err
	}
	nrows, err := h.u64()
	if err != nil {
		return nil, err
	}
	if err := h.done(); err != nil {
		return nil, err
	}
	if err := checkShape(ncols, nrows); err != nil {
		return nil, err
	}

	override := applyOpts(opts)
	cols := make([]*Column, 0, min(uint64(ncols), 1024))
	for ci := uint32(0); ci < ncols; ci++ {
		meta, err := readSection(br, secMeta, maxMetaSection, chunk)
		if err != nil {
			return nil, err
		}
		spec, err := parseColumnMeta(meta, nrows)
		if err != nil {
			return nil, err
		}
		codes, err := readCodesSection(br, nrows, chunk)
		if err != nil {
			return nil, err
		}
		col, err := spec.rebuild(codes, override)
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
	}
	tbl, err := NewTable(cols...)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return tbl, nil
}

// readSection reads one framed section with a buffered payload, verifying
// tag, length bound and checksum. The payload accumulates in ioChunk steps
// so a forged length fails at the first missing byte, not after a huge
// allocation.
func readSection(br *bufio.Reader, tag byte, maxLen uint64, chunk []byte) ([]byte, error) {
	var hdr [9]byte
	if err := fill(br, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != tag {
		return nil, corruptf("section tag %q, want %q", hdr[0], tag)
	}
	ln := binary.LittleEndian.Uint64(hdr[1:])
	if ln > maxLen {
		return nil, corruptf("section %q length %d exceeds limit %d", tag, ln, maxLen)
	}
	crc := crc32.New(castagnoli)
	payload := make([]byte, 0, min(ln, uint64(len(chunk))))
	for remaining := ln; remaining > 0; {
		n := min(remaining, uint64(len(chunk)))
		buf := chunk[:n]
		if err := fill(br, buf); err != nil {
			return nil, err
		}
		crc.Write(buf)
		payload = append(payload, buf...)
		remaining -= n
	}
	var tail [4]byte
	if err := fill(br, tail[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(tail[:]) != crc.Sum32() {
		return nil, corruptf("section %q checksum mismatch", tag)
	}
	return payload, nil
}

// readCodesSection streams one column's codes: the framed length must
// equal 4·rows exactly, and codes decode chunk by chunk while the checksum
// accumulates, so memory grows only with bytes actually read.
func readCodesSection(br *bufio.Reader, nrows uint64, chunk []byte) ([]uint32, error) {
	var hdr [9]byte
	if err := fill(br, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != secCodes {
		return nil, corruptf("section tag %q, want %q", hdr[0], byte(secCodes))
	}
	ln := binary.LittleEndian.Uint64(hdr[1:])
	if ln != nrows*4 {
		return nil, corruptf("codes section length %d, want %d", ln, nrows*4)
	}
	crc := crc32.New(castagnoli)
	codes := make([]uint32, 0, min(nrows, uint64(len(chunk))/4))
	for remaining := ln; remaining > 0; {
		n := min(remaining, uint64(len(chunk)))
		buf := chunk[:n]
		if err := fill(br, buf); err != nil {
			return nil, err
		}
		crc.Write(buf)
		for i := 0; i+4 <= len(buf); i += 4 {
			codes = append(codes, binary.LittleEndian.Uint32(buf[i:]))
		}
		remaining -= n
	}
	var tail [4]byte
	if err := fill(br, tail[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(tail[:]) != crc.Sum32() {
		return nil, corruptf("codes section checksum mismatch")
	}
	return codes, nil
}

// metaBuf parses a verified metadata payload; every overrun is corruption.
type metaBuf struct {
	b   []byte
	off int
}

func (m *metaBuf) take(n int) ([]byte, error) {
	if n < 0 || len(m.b)-m.off < n {
		return nil, corruptf("metadata section truncated")
	}
	b := m.b[m.off : m.off+n]
	m.off += n
	return b, nil
}

func (m *metaBuf) u8() (byte, error) {
	b, err := m.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (m *metaBuf) u32() (uint32, error) {
	b, err := m.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (m *metaBuf) u64() (uint64, error) {
	b, err := m.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (m *metaBuf) i64() (int64, error) {
	v, err := m.u64()
	return int64(v), err
}

func (m *metaBuf) f64() (float64, error) {
	v, err := m.u64()
	return math.Float64frombits(v), err
}

func (m *metaBuf) str() (string, error) {
	n, err := m.u32()
	if err != nil {
		return "", err
	}
	if n > maxPersistString {
		return "", corruptf("implausible string length %d", n)
	}
	b, err := m.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (m *metaBuf) done() error {
	if m.off != len(m.b) {
		return corruptf("%d trailing bytes in section", len(m.b)-m.off)
	}
	return nil
}

// parseColumnMeta decodes one column's metadata payload.
func parseColumnMeta(payload []byte, nrows uint64) (*columnSpec, error) {
	m := metaBuf{b: payload}
	spec := &columnSpec{}
	var err error
	if spec.name, err = m.str(); err != nil {
		return nil, err
	}
	kind, err := m.u8()
	if err != nil {
		return nil, err
	}
	spec.kind = Kind(kind)
	formatStr, err := m.str()
	if err != nil {
		return nil, err
	}
	spec.format = Format(formatStr)
	width, err := m.u8()
	if err != nil {
		return nil, err
	}
	spec.width = int(width)

	switch spec.kind {
	case KindInt:
		if spec.intMin, err = m.i64(); err != nil {
			return nil, err
		}
		if spec.intMax, err = m.i64(); err != nil {
			return nil, err
		}
	case KindDecimal:
		if spec.decMin, err = m.f64(); err != nil {
			return nil, err
		}
		if spec.decMax, err = m.f64(); err != nil {
			return nil, err
		}
		digits, err := m.u8()
		if err != nil {
			return nil, err
		}
		spec.decDigits = int(digits)
	case KindString:
		card, err := m.u32()
		if err != nil {
			return nil, err
		}
		if card > maxPersistDict {
			return nil, corruptf("implausible dictionary size %d", card)
		}
		spec.vocab = make([]string, 0, min(uint64(card), 4096))
		for i := uint32(0); i < card; i++ {
			s, err := m.str()
			if err != nil {
				return nil, err
			}
			spec.vocab = append(spec.vocab, s)
		}
	case KindCode:
	default:
		return nil, corruptf("unknown column kind %d", kind)
	}

	nullCount, err := m.u64()
	if err != nil {
		return nil, err
	}
	if nullCount > nrows {
		return nil, corruptf("%d nulls in %d rows", nullCount, nrows)
	}
	spec.nullRows = make([]int, 0, min(nullCount, ioChunk/8))
	for i := uint64(0); i < nullCount; i++ {
		r, err := m.u64()
		if err != nil {
			return nil, err
		}
		if r >= nrows {
			return nil, corruptf("null row %d out of range", r)
		}
		spec.nullRows = append(spec.nullRows, int(r))
	}
	if err := m.done(); err != nil {
		return nil, err
	}
	return spec, nil
}

// ---------------------------------------------------------------------------
// Version 1 reader: the legacy unframed stream, kept for compatibility and
// hardened the same way — bounded chunked allocation, ErrCorrupt wrapping.

func readTableV1(br *bufio.Reader, opts []ColumnOption) (*Table, error) {
	get := func(v any) error {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return corruptf("unexpected end of stream")
			}
			return err
		}
		return nil
	}
	getStr := func() (string, error) {
		var n uint32
		if err := get(&n); err != nil {
			return "", err
		}
		if n > maxPersistString {
			return "", corruptf("implausible string length %d", n)
		}
		buf := make([]byte, n)
		if err := fill(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	var ncols uint32
	var nrows uint64
	if err := get(&ncols); err != nil {
		return nil, err
	}
	if err := get(&nrows); err != nil {
		return nil, err
	}
	if err := checkShape(ncols, nrows); err != nil {
		return nil, err
	}

	override := applyOpts(opts)
	chunk := make([]byte, ioChunk)
	cols := make([]*Column, 0, min(uint64(ncols), 1024))
	for ci := uint32(0); ci < ncols; ci++ {
		spec := &columnSpec{}
		var err error
		if spec.name, err = getStr(); err != nil {
			return nil, err
		}
		var kind uint8
		if err := get(&kind); err != nil {
			return nil, err
		}
		spec.kind = Kind(kind)
		formatStr, err := getStr()
		if err != nil {
			return nil, err
		}
		spec.format = Format(formatStr)
		var width uint8
		if err := get(&width); err != nil {
			return nil, err
		}
		spec.width = int(width)

		switch spec.kind {
		case KindInt:
			if err := get(&spec.intMin); err != nil {
				return nil, err
			}
			if err := get(&spec.intMax); err != nil {
				return nil, err
			}
		case KindDecimal:
			if err := get(&spec.decMin); err != nil {
				return nil, err
			}
			if err := get(&spec.decMax); err != nil {
				return nil, err
			}
			var digits uint8
			if err := get(&digits); err != nil {
				return nil, err
			}
			spec.decDigits = int(digits)
		case KindString:
			var card uint32
			if err := get(&card); err != nil {
				return nil, err
			}
			if card > maxPersistDict {
				return nil, corruptf("implausible dictionary size %d", card)
			}
			spec.vocab = make([]string, 0, min(uint64(card), 4096))
			for i := uint32(0); i < card; i++ {
				s, err := getStr()
				if err != nil {
					return nil, err
				}
				spec.vocab = append(spec.vocab, s)
			}
		case KindCode:
		default:
			return nil, corruptf("unknown column kind %d", kind)
		}

		var nullCount uint64
		if err := get(&nullCount); err != nil {
			return nil, err
		}
		if nullCount > nrows {
			return nil, corruptf("%d nulls in %d rows", nullCount, nrows)
		}
		spec.nullRows = make([]int, 0, min(nullCount, ioChunk/8))
		for i := uint64(0); i < nullCount; i++ {
			var r uint64
			if err := get(&r); err != nil {
				return nil, err
			}
			if r >= nrows {
				return nil, corruptf("null row %d out of range", r)
			}
			spec.nullRows = append(spec.nullRows, int(r))
		}

		// Codes stream in bounded chunks (v1 has no framing, so truncation
		// surfaces as a short read partway through).
		codes := make([]uint32, 0, min(nrows, ioChunk/4))
		for remaining := nrows * 4; remaining > 0; {
			n := min(remaining, uint64(len(chunk)))
			buf := chunk[:n]
			if err := fill(br, buf); err != nil {
				return nil, err
			}
			for i := 0; i+4 <= len(buf); i += 4 {
				codes = append(codes, binary.LittleEndian.Uint32(buf[i:]))
			}
			remaining -= n
		}

		col, err := spec.rebuild(codes, override)
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
	}
	tbl, err := NewTable(cols...)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return tbl, nil
}

// writeToV1 serialises the table in the legacy v1 stream layout. It exists
// so tests and fuzz seeds can exercise the v1 read-compatibility path
// against freshly built tables; production writes always use v2.
func (t *Table) writeToV1(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	put := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }
	putStr := func(s string) error {
		if err := put(uint32(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(cw, s)
		return err
	}

	if _, err := io.WriteString(cw, persistMagic); err != nil {
		return cw.n, err
	}
	if err := put(uint16(persistV1)); err != nil {
		return cw.n, err
	}
	if err := put(uint32(len(t.cols))); err != nil {
		return cw.n, err
	}
	if err := put(uint64(t.n)); err != nil {
		return cw.n, err
	}

	for _, c := range t.cols {
		if err := putStr(c.name); err != nil {
			return cw.n, err
		}
		if err := put(uint8(c.kind)); err != nil {
			return cw.n, err
		}
		if err := putStr(string(c.Format())); err != nil {
			return cw.n, err
		}
		if err := put(uint8(c.Width())); err != nil {
			return cw.n, err
		}
		switch c.kind {
		case KindInt:
			if err := put(c.ints.Min()); err != nil {
				return cw.n, err
			}
			if err := put(c.ints.Max()); err != nil {
				return cw.n, err
			}
		case KindDecimal:
			if err := put(c.decs.Min()); err != nil {
				return cw.n, err
			}
			if err := put(c.decs.Max()); err != nil {
				return cw.n, err
			}
			if err := put(uint8(c.decs.Digits())); err != nil {
				return cw.n, err
			}
		case KindString:
			vals := c.dict.Values()
			if err := put(uint32(len(vals))); err != nil {
				return cw.n, err
			}
			for _, s := range vals {
				if err := putStr(s); err != nil {
					return cw.n, err
				}
			}
		case KindCode:
		}

		var nullRows []int32
		if c.nulls != nil {
			nullRows = c.nulls.Positions(nil)
		}
		if err := put(uint64(len(nullRows))); err != nil {
			return cw.n, err
		}
		for _, r := range nullRows {
			if err := put(uint64(r)); err != nil {
				return cw.n, err
			}
		}

		for i := 0; i < t.n; i++ {
			if err := put(c.data.Lookup(nilProfile.engine(), i)); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, bw.Flush()
}

// rebuildColumn reconstructs a column directly from its stored codes and
// encoder parameters, avoiding native-value round trips (which would have
// to special-case NULL placeholder rows).
func rebuildColumn(name string, kind Kind, format Format, width int, codes []uint32,
	intMin, intMax int64, decMin, decMax float64, decDigits int,
	vocab []string, nullRows []int) (*Column, error) {

	build, err := builderFor(format)
	if err != nil {
		return nil, err
	}
	nulls, err := buildNulls(nullRows, len(codes))
	if err != nil {
		return nil, err
	}
	checkCodes := func(k int) error {
		if k < 1 || k > 32 {
			return corruptf("column %s: bad width %d", name, k)
		}
		if k == 32 {
			return nil
		}
		for i, c := range codes {
			if c >= 1<<uint(k) {
				return corruptf("column %s row %d: code %d exceeds width %d", name, i, c, k)
			}
		}
		return nil
	}

	switch kind {
	case KindInt:
		enc, err := encoding.NewIntEncoder(intMin, intMax)
		if err != nil {
			return nil, err
		}
		if err := checkCodes(enc.Width()); err != nil {
			return nil, err
		}
		return &Column{nulls: nulls, name: name, kind: KindInt, ints: enc,
			hist: buildHistogram(codes, maxCodeFor(enc.Width())),
			data: build(codes, enc.Width(), arena)}, nil
	case KindDecimal:
		enc, err := encoding.NewDecimalEncoder(decMin, decMax, decDigits)
		if err != nil {
			return nil, err
		}
		if err := checkCodes(enc.Width()); err != nil {
			return nil, err
		}
		return &Column{nulls: nulls, name: name, kind: KindDecimal, decs: enc,
			hist: buildHistogram(codes, maxCodeFor(enc.Width())),
			data: build(codes, enc.Width(), arena)}, nil
	case KindString:
		dict := encoding.NewDictionary(vocab)
		if dict.Cardinality() != len(vocab) {
			return nil, corruptf("column %s: stored vocabulary has duplicates", name)
		}
		for i, c := range codes {
			if int(c) >= dict.Cardinality() {
				return nil, corruptf("column %s row %d: code %d outside dictionary", name, i, c)
			}
		}
		return &Column{nulls: nulls, name: name, kind: KindString, dict: dict,
			hist: buildHistogram(codes, maxCodeFor(dict.Width())),
			data: build(codes, dict.Width(), arena)}, nil
	case KindCode:
		if err := checkCodes(width); err != nil {
			return nil, err
		}
		return &Column{nulls: nulls, name: name, kind: KindCode,
			hist: buildHistogram(codes, maxCodeFor(width)),
			data: build(codes, width, arena)}, nil
	}
	return nil, corruptf("unknown kind %v", kind)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
