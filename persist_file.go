package byteslice

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Durable file snapshots. SaveFile follows the classic crash-atomic
// protocol — write to a temporary file in the target directory, fsync the
// file, rename over the target, fsync the directory — so a crash at any
// point leaves either the previous snapshot or the new one, never a
// half-written hybrid. LoadFile reads a snapshot back; combined with the
// checksummed v2 stream format, a snapshot that survives rename but was
// torn by hardware is detected at load, not silently queried.

// saveWriterHook lets the fault-injection tests interpose on the byte
// stream between WriteTo and the temporary file, simulating ENOSPC, short
// writes and crashes at exact offsets. It is nil outside tests.
var saveWriterHook func(io.Writer) io.Writer

// SaveFile atomically writes the table's snapshot to path: the bytes land
// in a temporary file in the same directory, are fsynced, and replace path
// with a single rename. On any error the target file is left untouched and
// the temporary file is removed.
func (t *Table) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".bslc-*.tmp")
	if err != nil {
		return fmt.Errorf("byteslice: save %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()        //nolint:errcheck // already failing
			os.Remove(tmpName) //nolint:errcheck // best-effort cleanup
		}
	}()

	w := io.Writer(tmp)
	if saveWriterHook != nil {
		w = saveWriterHook(tmp)
	}
	if _, err = t.WriteTo(w); err != nil {
		return fmt.Errorf("byteslice: save %s: %w", path, err)
	}
	// The data must be on disk before the rename publishes it: a rename
	// that survives a crash while the content didn't would leave a torn
	// (though detectable, thanks to the checksums) snapshot.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("byteslice: save %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("byteslice: save %s: %w", path, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("byteslice: save %s: %w", path, err)
	}
	// Persist the rename itself; without the directory fsync the new entry
	// may not survive a power cut. Some platforms refuse to fsync
	// directories — degrade gracefully there.
	if d, derr := os.Open(dir); derr == nil {
		if serr := d.Sync(); serr == nil || isSyncUnsupported(serr) {
			err = d.Close()
		} else {
			d.Close() //nolint:errcheck // sync error takes precedence
			err = serr
		}
		if err != nil {
			return fmt.Errorf("byteslice: save %s: sync dir: %w", path, err)
		}
	}
	return nil
}

// isSyncUnsupported reports fsync errors that mean "not supported here"
// rather than "your data is gone" (directories on some filesystems).
func isSyncUnsupported(err error) bool {
	for _, target := range []error{os.ErrInvalid} {
		if err == target {
			return true
		}
	}
	pe, ok := err.(*os.PathError)
	return ok && (pe.Err.Error() == "invalid argument" || pe.Err.Error() == "operation not supported")
}

// LoadFile reads a snapshot written by SaveFile (or any WriteTo stream on
// disk), rebuilding every column like ReadTable. Corruption and version
// errors wrap ErrCorrupt / ErrVersion.
func LoadFile(path string, opts ...ColumnOption) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("byteslice: load %s: %w", path, err)
	}
	defer f.Close() //nolint:errcheck // read-only
	t, err := ReadTable(f, opts...)
	if err != nil {
		return nil, fmt.Errorf("byteslice: load %s: %w", path, err)
	}
	return t, nil
}
