package byteslice_test

import (
	"testing"

	"byteslice"
)

// nullsTable: v = [10, 20, 30, 40, 50] with rows 1 and 3 NULL,
//
//	w = [1, 2, 3, 4, 5] with no NULLs.
func nullsTable(t *testing.T) (*byteslice.Table, *byteslice.Column) {
	t.Helper()
	v, err := byteslice.NewIntColumn("v", []int64{10, 20, 30, 40, 50}, 0, 100,
		byteslice.WithNulls([]int{1, 3}))
	if err != nil {
		t.Fatal(err)
	}
	w, err := byteslice.NewIntColumn("w", []int64{1, 2, 3, 4, 5}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := byteslice.NewTable(v, w)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, v
}

func TestNullMetadata(t *testing.T) {
	_, v := nullsTable(t)
	if !v.Nullable() || v.NullCount() != 2 {
		t.Fatalf("Nullable=%v NullCount=%d", v.Nullable(), v.NullCount())
	}
	if !v.IsNull(1) || !v.IsNull(3) || v.IsNull(0) {
		t.Fatal("IsNull wrong")
	}
}

func TestNullsExcludedFromScans(t *testing.T) {
	tbl, _ := nullsTable(t)
	// v ≥ 20 matches rows 1..4 by value, but 1 and 3 are NULL.
	res, err := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Ge, 20)})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 || rows[0] != 2 || rows[1] != 4 {
		t.Fatalf("rows = %v, want [2 4]", rows)
	}
	// Ne must also exclude NULLs: v ≠ 30 is true for 10, NULL, NULL, 50.
	res, _ = tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Ne, 30)})
	if got := res.Rows(); len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("Ne rows = %v, want [0 4]", got)
	}
}

func TestNullsInConjunctionAllStrategies(t *testing.T) {
	tbl, _ := nullsTable(t)
	filters := []byteslice.Filter{
		byteslice.IntFilter("w", byteslice.Ge, 2),  // rows 1..4
		byteslice.IntFilter("v", byteslice.Le, 40), // rows 0..3 by value, NULLs out ⇒ {0,2}
	}
	for _, s := range []byteslice.Strategy{byteslice.StrategyBaseline, byteslice.StrategyColumnFirst, byteslice.StrategyPredicateFirst} {
		res, err := tbl.Filter(filters, byteslice.WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows(); len(got) != 1 || got[0] != 2 {
			t.Fatalf("strategy %d: rows = %v, want [2]", s, got)
		}
	}
}

func TestNullsInDisjunctionAllStrategies(t *testing.T) {
	tbl, _ := nullsTable(t)
	filters := []byteslice.Filter{
		byteslice.IntFilter("v", byteslice.Ge, 40), // {3,4} by value → {4} after NULLs
		byteslice.IntFilter("w", byteslice.Eq, 2),  // {1}
	}
	for _, s := range []byteslice.Strategy{byteslice.StrategyBaseline, byteslice.StrategyColumnFirst, byteslice.StrategyPredicateFirst} {
		res, err := tbl.FilterAny(filters, byteslice.WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
			t.Fatalf("strategy %d: rows = %v, want [1 4]", s, got)
		}
	}
	// Reversed order exercises the nullable column as the pipelined one.
	rev := []byteslice.Filter{filters[1], filters[0]}
	res, err := tbl.FilterAny(rev, byteslice.WithStrategy(byteslice.StrategyColumnFirst))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("reversed disjunction rows = %v", got)
	}
}

// TestNullsWithTrivialFilters pins the three-valued-logic corner: a
// trivially true predicate on a nullable column still excludes its NULLs.
func TestNullsWithTrivialFilters(t *testing.T) {
	tbl, _ := nullsTable(t)
	// v < 1000 is trivially true over the domain — but rows 1,3 are NULL.
	res, err := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Lt, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows(); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("trivially-true rows = %v, want [0 2 4]", got)
	}
	// In a disjunction it must not short-circuit to "everything" either.
	res, err = tbl.FilterAny([]byteslice.Filter{
		byteslice.IntFilter("v", byteslice.Lt, 1000),
		byteslice.IntFilter("w", byteslice.Eq, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Count(); got != 4 { // {0,2,4} ∪ {1}
		t.Fatalf("disjunction count = %d, want 4", got)
	}
	// Trivially false on a nullable column still annihilates an AND.
	res, _ = tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("v", byteslice.Lt, -5),
		byteslice.IntFilter("w", byteslice.Ge, 0),
	})
	if res.Count() != 0 {
		t.Fatalf("trivially-false AND count = %d", res.Count())
	}
	// A non-nullable trivially-true filter still short-circuits an OR.
	res, _ = tbl.FilterAny([]byteslice.Filter{
		byteslice.IntFilter("w", byteslice.Ge, 0),
		byteslice.IntFilter("v", byteslice.Eq, 30),
	})
	if res.Count() != 5 {
		t.Fatalf("non-nullable trivially-true OR count = %d", res.Count())
	}
}

func TestNullsMixedWithTrivialOnly(t *testing.T) {
	tbl, _ := nullsTable(t)
	// Only a trivially-true nullable filter: result = non-NULL rows.
	res, err := tbl.FilterAny([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Ge, -100)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 3 {
		t.Fatalf("count = %d, want 3", res.Count())
	}
}

func TestWithNullsValidation(t *testing.T) {
	if _, err := byteslice.NewIntColumn("v", []int64{1}, 0, 10, byteslice.WithNulls([]int{5})); err == nil {
		t.Fatal("out-of-range null row should error")
	}
	if _, err := byteslice.NewIntColumn("v", []int64{1}, 0, 10, byteslice.WithNulls([]int{-1})); err == nil {
		t.Fatal("negative null row should error")
	}
	c, err := byteslice.NewIntColumn("v", []int64{1, 2}, 0, 10, byteslice.WithNulls(nil))
	if err != nil || c.Nullable() {
		t.Fatal("empty null set should mean not nullable")
	}
}
