package byteslice

import (
	"context"
	"errors"
	"net/http"
	"time"

	"byteslice/internal/obs"
)

// Query observability surface. Native (unprofiled) evaluations collect
// per-stage statistics by default — segments scanned, zone-map pruning,
// the byte-level early-stop depth histogram, bytes touched, worker count
// and per-batch wall times — and surface them three ways:
//
//   - Result.Stats() returns the typed QueryStats snapshot, and
//     Result.Explain() appends the executed-stage rendering below the
//     planner's decision ("explain analyze");
//   - every evaluation folds into the process-wide registry, exported via
//     expvar under the "byteslice" key and servable standalone through
//     ObsHandler();
//   - WithTracer attaches span start/end hooks per plan stage.
//
// WithObservability(false) disables per-query collection, putting the
// kernels back on their uninstrumented monolithic loops (measured <2%
// from the always-off path; see obs_overhead_test.go). Modelled
// (WithProfile) queries never collect here — their evidence is the
// profile's modelled counters.

// QueryStats is the per-query statistics snapshot returned by
// Result.Stats(); see the field docs in internal/obs.
type QueryStats = obs.QueryStats

// StageStats is one executed plan stage's statistics.
type StageStats = obs.StageStats

// HistSnapshot is a point-in-time copy of a duration histogram.
type HistSnapshot = obs.HistSnapshot

// HistBucket is one non-empty bucket of a HistSnapshot.
type HistBucket = obs.HistBucket

// RegistrySnapshot is the process-wide counters' JSON shape.
type RegistrySnapshot = obs.RegistrySnapshot

// Tracer observes span start/end per plan stage; see internal/obs.Tracer.
type Tracer = obs.Tracer

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc = obs.TracerFunc

// WithObservability enables (the default for native queries) or disables
// per-query statistics collection. Disabled queries skip all per-segment
// accounting; only Result.Stats() returning nil and the process-wide
// query counter distinguish them from the pre-observability engine.
func WithObservability(enabled bool) QueryOption {
	return func(c *queryConfig) { c.noObs = !enabled }
}

// WithTracer attaches span hooks to the evaluation: StartSpan fires when
// a plan stage begins and the returned func when it ends. Spans fire only
// while observability is enabled.
func WithTracer(tr Tracer) QueryOption {
	return func(c *queryConfig) { c.tracer = tr }
}

// ObsHandler returns an http.Handler serving the process-wide query
// statistics as indented JSON — the same snapshot expvar publishes under
// "byteslice", for callers that mount their own mux.
func ObsHandler() http.Handler { return obs.Default.Handler() }

// StatsSnapshot returns the process-wide registry snapshot: query,
// fault and cancellation counts, aggregate segment/byte counters,
// planner-strategy tallies and the query wall-time histogram.
func StatsSnapshot() RegistrySnapshot { return obs.Default.Snapshot() }

// obsQuery returns the live collector for this evaluation, or nil when
// observability is off (modelled path, or WithObservability(false)).
func (c *queryConfig) obsQuery() *obs.Query {
	if c.native() && !c.noObs {
		return obs.NewQuery()
	}
	return nil
}

// stage opens one plan stage: it registers a Stage on q, starts the
// tracer span, and returns the stage plus a close func recording the
// stage's wall time. With q == nil both returns are no-ops (st == nil
// keeps the kernels uninstrumented).
func (c *queryConfig) stage(q *obs.Query, name, kind string) (*obs.Stage, func()) {
	if q == nil {
		return nil, func() {}
	}
	st := q.NewStage(name, kind)
	var endSpan func()
	if c.tracer != nil {
		endSpan = c.tracer.StartSpan(name)
	}
	t0 := time.Now()
	return st, func() {
		st.SetWallNs(time.Since(t0).Nanoseconds())
		if endSpan != nil {
			endSpan()
		}
	}
}

// aggStage opens a self-contained single-stage collector for an
// aggregate entry point (sum, min/max, fused scan-aggregate): the stage
// feeds the process-wide registry when the returned finish runs. Both
// returns are no-ops when observability is off.
func (c *queryConfig) aggStage(name, kind string) (*obs.Stage, func(err error)) {
	q := c.obsQuery()
	if q == nil {
		return nil, func(error) {}
	}
	t0 := time.Now()
	st, done := c.stage(q, name, kind)
	return st, func(err error) {
		done()
		finishQuery(q, t0, err)
	}
}

// finishQuery closes the collector: total wall time, fault/cancellation
// classification, and the fold into the process-wide registry. Safe with
// q == nil.
func finishQuery(q *obs.Query, t0 time.Time, err error) {
	if q == nil {
		return
	}
	q.AddWallNs(time.Since(t0).Nanoseconds())
	switch {
	case err == nil:
	case errors.Is(err, ErrQueryFault):
		q.RecordPanic()
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		q.RecordCancel()
	}
	obs.Default.RecordQuery(q.Snapshot())
}
