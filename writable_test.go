package byteslice_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"byteslice"
	"byteslice/internal/faultio"
	"byteslice/internal/ingest"
)

// ingestFixture builds a small base table (int + string columns) and the
// native-value rows the tests append to it.
func ingestFixture(t *testing.T, opts ...byteslice.IngestOption) (*byteslice.IngestTable, string) {
	t.Helper()
	dir := t.TempDir()
	tbl := ingestBase(t)
	it, err := byteslice.CreateIngest(dir, tbl, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { it.Close() }) //nolint:errcheck // second close is a no-op
	return it, dir
}

func ingestBase(t *testing.T) *byteslice.Table {
	t.Helper()
	qty := intColumn(t, "qty", []int64{5, 50, 7}, 0, 100)
	mode, err := byteslice.NewStringColumn("mode", []string{"AIR", "SHIP", "AIR"})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := byteslice.NewTable(qty, mode)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// ingestRow returns the i-th deterministic appended row.
func ingestRow(i int) map[string]any {
	modes := []string{"AIR", "SHIP"}
	row := map[string]any{"qty": int64(i % 100), "mode": modes[i%2]}
	if i%7 == 3 {
		row["qty"] = nil
	}
	return row
}

// checkIngestRows asserts the table holds the base rows plus rows
// ingestRow(0..appended), via a full filter and a count probe.
func checkIngestRows(t *testing.T, it *byteslice.IngestTable, appended int) {
	t.Helper()
	if it.Len() != 3+appended {
		t.Fatalf("Len = %d, want %d", it.Len(), 3+appended)
	}
	// qty ≥ 50: base row 1, plus appended rows with i%100 >= 50 and no NULL.
	want := []int32{1}
	for i := 0; i < appended; i++ {
		if i%7 != 3 && i%100 >= 50 {
			want = append(want, int32(3+i))
		}
	}
	res, err := it.Filter([]byteslice.Filter{byteslice.IntFilter("qty", byteslice.Ge, 50)})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rows()
	if len(got) != len(want) {
		t.Fatalf("qty>=50: %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("qty>=50 row[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// NULL qty rows never match, even trivially-true predicates.
	res, err = it.Filter([]byteslice.Filter{byteslice.IntFilter("qty", byteslice.Ge, 0)})
	if err != nil {
		t.Fatal(err)
	}
	nulls := 0
	for i := 0; i < appended; i++ {
		if i%7 == 3 {
			nulls++
		}
	}
	if res.Count() != 3+appended-nulls {
		t.Fatalf("qty>=0 count = %d, want %d", res.Count(), 3+appended-nulls)
	}
}

func TestIngestAppendQueryReopen(t *testing.T) {
	it, dir := ingestFixture(t, byteslice.WithSealRows(8))
	const n = 30
	for i := 0; i < n; i++ {
		if err := it.Append(ingestRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	checkIngestRows(t, it, n)
	if it.Epoch() != 1 || it.DeltaLen() != n {
		t.Fatalf("epoch %d delta %d", it.Epoch(), it.DeltaLen())
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	// Every acknowledged append survives a clean reopen.
	it2, err := byteslice.OpenIngest(dir, byteslice.WithSealRows(8))
	if err != nil {
		t.Fatal(err)
	}
	defer it2.Close() //nolint:errcheck // read-mostly
	checkIngestRows(t, it2, n)

	// And appending continues where the log left off.
	if err := it2.Append(ingestRow(n)); err != nil {
		t.Fatal(err)
	}
	checkIngestRows(t, it2, n+1)
}

func TestIngestMergeAdvancesEpoch(t *testing.T) {
	it, dir := ingestFixture(t, byteslice.WithSealRows(8), byteslice.WithAutoMerge(false))
	const n = 20
	for i := 0; i < n; i++ {
		if err := it.Append(ingestRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := it.MergeNow(); err != nil {
		t.Fatal(err)
	}
	checkIngestRows(t, it, n)
	if it.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", it.Epoch())
	}
	// The merge covered the sealed segments; the tail (< sealRows) rode
	// the WAL rotation and stays unmerged.
	if d := it.DeltaLen(); d != n%8 {
		t.Fatalf("delta after merge = %d, want %d", d, n%8)
	}
	if it.Base().Len() != 3+n-n%8 {
		t.Fatalf("base len = %d", it.Base().Len())
	}
	// Old epoch artifacts are gone; new ones exist.
	for _, f := range []string{"base-1.bslc", "wal-1.log"} {
		if _, err := os.Stat(filepath.Join(dir, f)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s still present after merge", f)
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	it2, err := byteslice.OpenIngest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer it2.Close() //nolint:errcheck // read-mostly
	checkIngestRows(t, it2, n)
	if it2.Epoch() != 2 {
		t.Fatalf("reopened epoch = %d, want 2", it2.Epoch())
	}
}

func TestIngestAppendValidation(t *testing.T) {
	it, _ := ingestFixture(t)
	cases := []map[string]any{
		{"qty": int64(1)},                        // missing column
		{"qty": int64(1), "mode": "AIR", "x": 1}, // extra column
		{"qty": "oops", "mode": "AIR"},           // wrong type
		{"qty": int64(999), "mode": "AIR"},       // out of domain
		{"qty": int64(1), "mode": "TRUCK"},       // outside dictionary
	}
	for i, vals := range cases {
		if err := it.Append(vals); err == nil {
			t.Fatalf("case %d: bad row accepted", i)
		}
	}
	// Failed appends are atomic: nothing was retained.
	if it.Len() != 3 || it.DeltaLen() != 0 {
		t.Fatalf("after rejected appends: len %d delta %d", it.Len(), it.DeltaLen())
	}
	if err := it.Append(ingestRow(0)); err != nil {
		t.Fatal(err)
	}
}

func TestIngestClosed(t *testing.T) {
	it, _ := ingestFixture(t)
	if err := it.Append(ingestRow(0)); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := it.Append(ingestRow(1)); !errors.Is(err, byteslice.ErrTableClosed) {
		t.Fatalf("append after close = %v", err)
	}
	if err := it.MergeNow(); !errors.Is(err, byteslice.ErrTableClosed) {
		t.Fatalf("merge after close = %v", err)
	}
	// Queries keep working on the last published view.
	checkIngestRows(t, it, 1)
}

func TestIngestContextCancel(t *testing.T) {
	it, _ := ingestFixture(t, byteslice.WithSealRows(1<<20)) // keep rows in the tail
	for i := 0; i < 50; i++ {
		if err := it.Append(ingestRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := it.Filter(
		[]byteslice.Filter{byteslice.IntFilter("qty", byteslice.Ge, 50)},
		byteslice.WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ingest filter = %v", err)
	}
}

// TestIngestBackpressure: when merging cannot proceed (every snapshot
// save fails), appends keep succeeding until the delta bound, then fail
// with ErrBackpressure; once the fault clears and a merge lands, appends
// resume.
func TestIngestBackpressure(t *testing.T) {
	it, _ := ingestFixture(t, byteslice.WithSealRows(4), byteslice.WithDeltaBound(12), byteslice.WithAutoMerge(false))
	// The hook function stays installed for the table's whole lifetime and
	// gates on an atomic, so the background merger never races a hook swap.
	var failing atomic.Bool
	failing.Store(true)
	byteslice.SetSaveWriterHook(func(w io.Writer) io.Writer {
		if failing.Load() {
			return &faultio.Writer{W: w, FailAt: 0}
		}
		return w
	})
	defer func() {
		it.Close() //nolint:errcheck // stops the merger before the hook goes away
		byteslice.SetSaveWriterHook(nil)
	}()
	var backpressured int
	for i := 0; i < 20; i++ {
		err := it.Append(ingestRow(i))
		switch {
		case err == nil:
		case errors.Is(err, byteslice.ErrBackpressure):
			backpressured++
			if it.MergeNow() == nil {
				t.Fatal("merge succeeded with failing snapshot writes")
			}
		default:
			t.Fatal(err)
		}
	}
	if backpressured != 20-12 {
		t.Fatalf("backpressured %d of 20 appends, want %d", backpressured, 8)
	}
	if it.DeltaLen() != 12 {
		t.Fatalf("delta = %d, want the bound 12", it.DeltaLen())
	}
	// Clear the fault: merge succeeds, the bound opens up, appends resume.
	failing.Store(false)
	if err := it.MergeNow(); err != nil {
		t.Fatal(err)
	}
	if err := it.Append(ingestRow(100)); err != nil {
		t.Fatal(err)
	}
	if it.Epoch() < 2 {
		t.Fatalf("epoch = %d after recovery merge", it.Epoch())
	}
}

// copyDir snapshots an ingest directory — the crash tests use it to
// freeze on-disk state at exact fault points.
func copyDir(t testing.TB, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// ingestTemplate builds a sealed ingest directory once: base + 30
// appended rows with sealRows 8 (3 sealed segments + 6 tail rows).
func ingestTemplate(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	it, err := byteslice.CreateIngest(dir, ingestBase(t), byteslice.WithSealRows(8), byteslice.WithAutoMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := it.Append(ingestRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// reopenTemplate opens a copy of the template and asserts all 30 rows.
func reopenAndCheck(t *testing.T, dir string, wantEpoch uint64) {
	t.Helper()
	it, err := byteslice.OpenIngest(dir, byteslice.WithSealRows(8), byteslice.WithAutoMerge(false))
	if err != nil {
		t.Fatalf("recovery open failed: %v", err)
	}
	defer it.Close() //nolint:errcheck // read-only
	if it.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch = %d, want %d", it.Epoch(), wantEpoch)
	}
	checkIngestRows(t, it, 30)
}

// crashWriter injects a fault at a byte offset and snapshots the ingest
// directory at that exact moment — the bytes a crash would have left.
type crashWriter struct {
	w       io.Writer
	failAt  int64
	written int64
	dir     string
	crash   *string // set to the snapshot path when the fault fires
	tb      testing.TB
}

func (c *crashWriter) Write(p []byte) (int, error) {
	if c.written+int64(len(p)) > c.failAt && *c.crash == "" {
		keep := c.failAt - c.written
		if keep > 0 {
			if n, err := c.w.Write(p[:keep]); err != nil {
				return n, err
			}
		}
		*c.crash = copyDir(c.tb, c.dir)
		return int(keep), fmt.Errorf("crash injected at offset %d: %w", c.failAt, faultio.ErrInjected)
	}
	n, err := c.w.Write(p)
	c.written += int64(n)
	return n, err
}

// TestIngestCrashDuringMergeSweep drives a merge into a write fault at
// every byte offset of each artifact the epoch switch writes — the new
// base snapshot, the rotated WAL, the manifest — snapshotting the
// directory at the exact fault point. Recovering from every snapshot
// must yield the previous epoch with all 30 acknowledged rows; and the
// failed merge must leave the live table consistent and retryable.
func TestIngestCrashDuringMergeSweep(t *testing.T) {
	template := ingestTemplate(t)

	// Probe each stream's full length with a successful merge.
	var baseLen, walLen, manLen int64
	{
		dir := copyDir(t, template)
		it, err := byteslice.OpenIngest(dir, byteslice.WithSealRows(8), byteslice.WithAutoMerge(false))
		if err != nil {
			t.Fatal(err)
		}
		count := func(n *int64) func(io.Writer) io.Writer {
			return func(w io.Writer) io.Writer {
				*n = 0
				return &countingWriter{w: w, n: n}
			}
		}
		byteslice.SetSaveWriterHook(count(&baseLen))
		ingest.WriterHook = count(&walLen)
		ingest.ManifestWriterHook = count(&manLen)
		err = it.MergeNow()
		byteslice.SetSaveWriterHook(nil)
		ingest.WriterHook = nil
		ingest.ManifestWriterHook = nil
		if err != nil {
			t.Fatal(err)
		}
		it.Close() //nolint:errcheck // probe only
		reopenAndCheck(t, dir, 2)
	}
	if baseLen == 0 || walLen == 0 || manLen == 0 {
		t.Fatalf("probe lengths: base %d wal %d manifest %d", baseLen, walLen, manLen)
	}

	type target struct {
		name    string
		length  int64
		install func(hook func(io.Writer) io.Writer)
	}
	targets := []target{
		{"base-snapshot", baseLen, func(h func(io.Writer) io.Writer) { byteslice.SetSaveWriterHook(h) }},
		{"wal-rotation", walLen, func(h func(io.Writer) io.Writer) { ingest.WriterHook = h }},
		{"manifest", manLen, func(h func(io.Writer) io.Writer) { ingest.ManifestWriterHook = h }},
	}
	defer func() {
		byteslice.SetSaveWriterHook(nil)
		ingest.WriterHook = nil
		ingest.ManifestWriterHook = nil
	}()
	for _, tgt := range targets {
		t.Run(tgt.name, func(t *testing.T) {
			// Sweep every offset of the small artifacts; stride the base
			// snapshot (a few KB) so the sweep stays tractable while still
			// crossing every frame and section boundary region.
			step := int64(1)
			if tgt.length > 512 {
				step = tgt.length / 512
			}
			offsets := make([]int64, 0, tgt.length/step+2)
			for off := int64(0); off < tgt.length; off += step {
				offsets = append(offsets, off)
			}
			if last := tgt.length - 1; offsets[len(offsets)-1] != last {
				offsets = append(offsets, last)
			}
			for _, off := range offsets {
				dir := copyDir(t, template)
				it, err := byteslice.OpenIngest(dir, byteslice.WithSealRows(8), byteslice.WithAutoMerge(false))
				if err != nil {
					t.Fatalf("offset %d: open: %v", off, err)
				}
				crash := ""
				tgt.install(func(w io.Writer) io.Writer {
					return &crashWriter{w: w, failAt: off, dir: dir, crash: &crash, tb: t}
				})
				err = it.MergeNow()
				tgt.install(nil)
				if err == nil {
					it.Close() //nolint:errcheck // cleanup
					t.Fatalf("%s offset %d: merge succeeded through the fault", tgt.name, off)
				}
				if crash == "" {
					it.Close() //nolint:errcheck // cleanup
					t.Fatalf("%s offset %d: fault never fired", tgt.name, off)
				}
				// The crash image recovers to the previous epoch.
				reopenAndCheck(t, crash, 1)
				// The live table survived the failed merge too: still
				// queryable, still appendable, and a retry commits.
				checkIngestRows(t, it, 30)
				if err := it.MergeNow(); err != nil {
					t.Fatalf("%s offset %d: retry merge: %v", tgt.name, off, err)
				}
				checkIngestRows(t, it, 30)
				if it.Epoch() != 2 {
					t.Fatalf("%s offset %d: epoch %d after retry", tgt.name, off, it.Epoch())
				}
				it.Close() //nolint:errcheck // per-offset instance
			}
		})
	}
}

type countingWriter struct {
	w io.Writer
	n *int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	*c.n += int64(n)
	return n, err
}

// TestIngestWALFaultSweep corrupts the on-disk WAL of a sealed ingest
// directory at every byte offset (truncate and bit-flip): OpenIngest
// must either recover a clean prefix of the appended rows or fail with a
// typed error — never panic, never invent or reorder rows.
func TestIngestWALFaultSweep(t *testing.T) {
	template := ingestTemplate(t)
	m, err := ingest.ReadManifest(template)
	if err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(template, m.WAL))
	if err != nil {
		t.Fatal(err)
	}

	check := func(what string, mutate func(dst string)) {
		t.Helper()
		dir := copyDir(t, template)
		mutate(filepath.Join(dir, m.WAL))
		it, err := byteslice.OpenIngest(dir, byteslice.WithSealRows(8), byteslice.WithAutoMerge(false))
		if err != nil {
			if !errors.Is(err, ingest.ErrCorrupt) && !errors.Is(err, ingest.ErrVersion) &&
				!errors.Is(err, ingest.ErrMismatch) {
				t.Fatalf("%s: error %v is not typed", what, err)
			}
			return
		}
		defer it.Close() //nolint:errcheck // read-only
		// Replay succeeded: whatever came back must be a clean prefix.
		n := it.Len() - 3
		if n < 0 || n > 30 {
			t.Fatalf("%s: %d delta rows recovered from 30", what, n)
		}
		checkIngestRows(t, it, n)
	}

	for off := 0; off <= len(walBytes); off++ {
		off := off
		check(fmt.Sprintf("truncate@%d", off), func(path string) {
			if err := os.WriteFile(path, walBytes[:off], 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
	for off := 0; off < len(walBytes); off++ {
		off := off
		check(fmt.Sprintf("flip@%d", off), func(path string) {
			if err := os.WriteFile(path, faultio.Flip(walBytes, off, 0x20), 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestIngestStress runs the full pipeline under load: one appender,
// a background merger (aggressive thresholds), and concurrent readers
// that must always observe a consistent view — monotonically growing,
// never torn. Run with -race this is the publication-safety proof.
func TestIngestStress(t *testing.T) {
	it, _ := ingestFixture(t,
		byteslice.WithSealRows(16),
		byteslice.WithDeltaBound(1<<20),
		byteslice.WithSyncedAppends(false))
	const (
		readers = 4
		rows    = 2000
	)
	var appended atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Always-true predicate (modulo NULLs): the matched set
				// must grow monotonically and rows must stay stable.
				res, err := it.Filter([]byteslice.Filter{byteslice.IntFilter("qty", byteslice.Ge, 0)})
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if res.Count() < last {
					t.Errorf("reader: matched rows went backwards: %d -> %d", last, res.Count())
					return
				}
				last = res.Count()
				// Base rows are immutable: row 1 (qty 50, SHIP) always matches.
				if !res.Contains(1) {
					t.Error("reader: base row vanished")
					return
				}
			}
		}()
	}

	for i := 0; i < rows; i++ {
		if err := it.Append(ingestRow(i)); err != nil {
			t.Fatal(err)
		}
		appended.Add(1)
		if i%256 == 255 {
			if err := it.MergeNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	checkIngestRows(t, it, rows)
	merges, panics, lastErr := it.MergeStats()
	_ = merges
	if panics != 0 || lastErr != nil {
		t.Fatalf("merger: %d panics, lastErr %v", panics, lastErr)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIngestMatrix drives every column kind through every storage format
// and NULL pattern end to end: build base → CreateIngest → Append (with
// NULLs) → query → MergeNow → query → reopen → query.
func TestIngestMatrix(t *testing.T) {
	const n = 37
	nullEvery := map[string]int{"none": 0, "sparse": 7, "dense": 2}
	formats := append(byteslice.Formats(), byteslice.FormatByteSliceC)
	for _, format := range formats {
		for patName, every := range nullEvery {
			t.Run(fmt.Sprintf("%s/%s", format, patName), func(t *testing.T) {
				cols, _ := matrixColumns(t, n, format, nil)
				base, err := byteslice.NewTable(cols...)
				if err != nil {
					t.Fatal(err)
				}
				dir := t.TempDir()
				it, err := byteslice.CreateIngest(dir, base, byteslice.WithSealRows(8), byteslice.WithAutoMerge(false))
				if err != nil {
					t.Fatal(err)
				}
				defer func() { it.Close() }() //nolint:errcheck // closes the latest instance; double close ok
				words := []string{"ant", "bee", "cat", "dog"}
				const appended = 21
				for i := 0; i < appended; i++ {
					row := map[string]any{
						"i": int64(i - 100),
						"d": float64(i%70) / 8,
						"s": words[i%len(words)],
						"c": uint32(i * 3 % 512),
					}
					if every > 0 && i%every == 0 {
						row["i"] = nil
						row["d"] = nil
					}
					if err := it.Append(row); err != nil {
						t.Fatal(err)
					}
				}

				wantMatches := func() []int32 {
					// i ≥ -90 over appended rows: i-100 >= -90 → i >= 10, non-NULL.
					var want []int32
					for i := 0; i < appended; i++ {
						if every > 0 && i%every == 0 {
							continue
						}
						if i-100 >= -90 {
							want = append(want, int32(n+i))
						}
					}
					return want
				}
				checkMatches := func(stage string) {
					t.Helper()
					res, err := it.Filter([]byteslice.Filter{
						byteslice.IntFilter("i", byteslice.Ge, -90),
						byteslice.IntFilter("i", byteslice.Lt, -50),
					})
					if err != nil {
						t.Fatalf("%s: %v", stage, err)
					}
					var want []int32
					for _, r := range wantMatches() {
						i := int(r) - n
						if i-100 < -50 {
							want = append(want, r)
						}
					}
					// Base rows matching the range too.
					var baseWant []int32
					for i := 0; i < n; i++ {
						v := int64(i*11%400) - 200
						if v >= -90 && v < -50 {
							baseWant = append(baseWant, int32(i))
						}
					}
					want = append(baseWant, want...)
					got := res.Rows()
					if len(got) != len(want) {
						t.Fatalf("%s: %d matches, want %d", stage, len(got), len(want))
					}
					for j := range got {
						if got[j] != want[j] {
							t.Fatalf("%s: row[%d] = %d, want %d", stage, j, got[j], want[j])
						}
					}
					// String and code predicates cross the same rows.
					sres, err := it.FilterAny([]byteslice.Filter{
						byteslice.StringFilter("s", byteslice.Eq, "bee"),
						byteslice.CodeFilter("c", byteslice.Eq, 0),
					})
					if err != nil {
						t.Fatalf("%s strings: %v", stage, err)
					}
					if sres.Count() == 0 {
						t.Fatalf("%s strings: no matches", stage)
					}
				}

				checkMatches("pre-merge")
				if err := it.MergeNow(); err != nil {
					t.Fatal(err)
				}
				checkMatches("post-merge")
				if it.Epoch() != 2 {
					t.Fatalf("epoch = %d", it.Epoch())
				}
				if err := it.Close(); err != nil {
					t.Fatal(err)
				}
				it, err = byteslice.OpenIngest(dir, byteslice.WithSealRows(8), byteslice.WithAutoMerge(false))
				if err != nil {
					t.Fatal(err)
				}
				checkMatches("reopened")
			})
		}
	}
}

// TestIngestObsStages: the delta tail scan lands as a stage in the
// query's collector, and ingest counters reach the registry snapshot.
func TestIngestObsStages(t *testing.T) {
	it, _ := ingestFixture(t, byteslice.WithSealRows(1<<20))
	for i := 0; i < 10; i++ {
		if err := it.Append(ingestRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := it.Filter([]byteslice.Filter{byteslice.IntFilter("qty", byteslice.Ge, 50)})
	if err != nil {
		t.Fatal(err)
	}
	qs := res.Stats()
	if qs == nil {
		t.Fatal("no stats on native ingest query")
	}
	found := false
	for _, st := range qs.Stages {
		if st.Name == "scan(delta)" && st.Kind == "delta" && st.Rows == 10 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no scan(delta) stage in %+v", qs.Stages)
	}
	snap := byteslice.StatsSnapshot()
	if snap.Ingest.AppendedRows == 0 || snap.Ingest.DeltaRows == 0 {
		t.Fatalf("ingest registry counters missing: %+v", snap.Ingest)
	}
}

// TestIngestMergerRecovers: a transient merge fault is retried by the
// background merger until it lands, without losing rows.
func TestIngestMergerRecovers(t *testing.T) {
	it, _ := ingestFixture(t, byteslice.WithSealRows(4), byteslice.WithDeltaBound(8), byteslice.WithAutoMerge(false))
	var fails atomic.Int32
	fails.Store(3)
	defer func() {
		it.Close() //nolint:errcheck // stops the merger before the hook goes away
		byteslice.SetSaveWriterHook(nil)
	}()
	byteslice.SetSaveWriterHook(func(w io.Writer) io.Writer {
		if fails.Add(-1) >= 0 {
			return &faultio.Writer{W: w, FailAt: 16}
		}
		return w
	})
	for i := 0; i < 8; i++ {
		if err := it.Append(ingestRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The bound is hit; backpressure wakes the background merger, which
	// fails three times and then succeeds.
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := it.Append(ingestRow(8))
		if err == nil {
			break
		}
		if !errors.Is(err, byteslice.ErrBackpressure) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("merger never recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	checkIngestRows(t, it, 9)
	if it.Epoch() < 2 {
		t.Fatalf("epoch = %d, want a merge", it.Epoch())
	}
}
