package byteslice_test

import (
	"strings"
	"testing"

	"byteslice"
)

const sampleCSV = `city,temp,rain_mm
Melbourne,35,1.2
Sydney,28,0.0
Perth,,12.5
Hobart,7,3.75
`

func TestReadCSVWithHeader(t *testing.T) {
	schema := []byteslice.CSVColumn{
		{Name: "city", Kind: byteslice.KindString},
		{Name: "temp", Kind: byteslice.KindInt, Nullable: true},
		{Name: "rain_mm", Kind: byteslice.KindDecimal, Digits: 2},
	}
	tbl, err := byteslice.ReadCSV(strings.NewReader(sampleCSV), schema, byteslice.CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 4 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	temp, _ := tbl.Column("temp")
	if !temp.Nullable() || !temp.IsNull(2) {
		t.Fatal("empty field should be NULL")
	}
	if v, _ := temp.LookupInt(nil, 0); v != 35 {
		t.Fatalf("temp[0] = %d", v)
	}
	rain, _ := tbl.Column("rain_mm")
	if v, _ := rain.LookupDecimal(nil, 3); v != 3.75 {
		t.Fatalf("rain[3] = %v", v)
	}
	city, _ := tbl.Column("city")
	if s, _ := city.LookupString(nil, 1); s != "Sydney" {
		t.Fatalf("city[1] = %q", s)
	}

	// A query over the loaded table.
	res, err := tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("temp", byteslice.Gt, 10),
		byteslice.DecimalFilter("rain_mm", byteslice.Lt, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("rows = %v, want [0 1]", got)
	}
}

func TestReadCSVColumnSubsetAndOrder(t *testing.T) {
	// Schema picks two of three columns, in a different order.
	schema := []byteslice.CSVColumn{
		{Name: "rain_mm", Kind: byteslice.KindDecimal, Digits: 1},
		{Name: "city", Kind: byteslice.KindString},
	}
	tbl, err := byteslice.ReadCSV(strings.NewReader(sampleCSV), schema,
		byteslice.CSVOptions{Header: true, Format: byteslice.FormatHBP})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := tbl.Column("city")
	if c.Format() != byteslice.FormatHBP {
		t.Fatalf("format = %s", c.Format())
	}
	if _, err := tbl.Column("temp"); err == nil {
		t.Fatal("unselected column should not exist")
	}
}

func TestReadCSVHeaderless(t *testing.T) {
	data := "1;alpha\n2;beta\n3;alpha\n"
	schema := []byteslice.CSVColumn{
		{Name: "id", Kind: byteslice.KindInt},
		{Name: "tag", Kind: byteslice.KindString},
	}
	tbl, err := byteslice.ReadCSV(strings.NewReader(data), schema, byteslice.CSVOptions{Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Filter([]byteslice.Filter{byteslice.StringFilter("tag", byteslice.Eq, "alpha")})
	if err != nil || res.Count() != 2 {
		t.Fatalf("count = %d (%v)", res.Count(), err)
	}
	id, _ := tbl.Column("id")
	if id.Width() != 2 { // domain [1,3]: 3 values
		t.Fatalf("inferred width = %d", id.Width())
	}
}

func TestReadCSVErrors(t *testing.T) {
	schema := []byteslice.CSVColumn{{Name: "x", Kind: byteslice.KindInt}}
	cases := []string{
		"",                  // no rows
		"x\n",               // header only
		"x\nnot_a_number\n", // parse error
	}
	for i, data := range cases {
		if _, err := byteslice.ReadCSV(strings.NewReader(data), schema, byteslice.CSVOptions{Header: true}); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if _, err := byteslice.ReadCSV(strings.NewReader("a\n1\n"), schema, byteslice.CSVOptions{Header: true}); err == nil {
		t.Fatal("missing header column accepted")
	}
	if _, err := byteslice.ReadCSV(strings.NewReader("1\n"), nil, byteslice.CSVOptions{}); err == nil {
		t.Fatal("empty schema accepted")
	}
	// Non-nullable empty field (encoding/csv skips blank lines, so the
	// empty field needs a second column to be visible).
	if _, err := byteslice.ReadCSV(strings.NewReader("x,y\n,5\n"), schema, byteslice.CSVOptions{Header: true}); err == nil {
		t.Fatal("empty non-nullable field accepted")
	}
	// Unsupported kind.
	bad := []byteslice.CSVColumn{{Name: "x", Kind: byteslice.KindCode}}
	if _, err := byteslice.ReadCSV(strings.NewReader("x\n1\n"), bad, byteslice.CSVOptions{Header: true}); err == nil {
		t.Fatal("code kind accepted")
	}
}
