package byteslice

import (
	"fmt"

	"byteslice/internal/bitvec"
)

// NULL support. The paper notes (§2) that NULL values and three-valued
// logic are handled with the techniques of O'Neil and Quass [33]: a
// presence bitmap per nullable column, combined with the scan's result bit
// vector. Comparisons with NULL are never true (SQL semantics), so a
// filter on a nullable column clears the null rows from its result before
// the complex-predicate combination.

// WithNulls marks the rows at the given indices as NULL. The column stores
// an arbitrary in-domain code for those rows (callers typically use the
// domain minimum); scans and lookups treat them as absent.
func WithNulls(rows []int) ColumnOption {
	return func(c *columnConfig) { c.nullRows = rows }
}

// Nullable reports whether the column has any NULL rows.
func (c *Column) Nullable() bool { return c.nulls != nil }

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool { return c.nulls != nil && c.nulls.Get(i) }

// NullCount returns the number of NULL rows.
func (c *Column) NullCount() int {
	if c.nulls == nil {
		return 0
	}
	return c.nulls.Count()
}

// buildNulls materialises the option's null set for a column of n rows.
func buildNulls(rows []int, n int) (*bitvec.Vector, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	nv := bitvec.New(n)
	for _, r := range rows {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("byteslice: null row %d out of range [0,%d)", r, n)
		}
		nv.Set(r, true)
	}
	return nv, nil
}

// applyNulls clears a filter result's bits for rows that are NULL in the
// filtered column (comparison with NULL is not true).
func applyNulls(res *bitvec.Vector, c *Column) {
	if c.nulls != nil {
		res.AndNot(c.nulls)
	}
}
