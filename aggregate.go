package byteslice

import (
	"fmt"
	"sort"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/kernel"
	"byteslice/internal/layout"
)

// Aggregates over columns, optionally restricted to a filter Result.
// ByteSlice columns aggregate with SIMD directly on the byte slices
// (masked SAD sums, slice-wise min/max tournaments — see
// internal/core/aggregate.go); other formats fall back to per-row lookups.
// Without a profile, the native SWAR kernels in internal/kernel run
// instead of the modelled engine. NULL rows of the aggregated column are
// always excluded, matching SQL.

// aggMask builds the effective row mask: the result's rows (or all rows)
// minus the column's NULLs. Returns nil when every row participates.
func (t *Table) aggMask(c *Column, res *Result) *bitvec.Vector {
	if res == nil && c.nulls == nil {
		return nil
	}
	m := bitvec.New(t.n)
	if res != nil {
		m.Or(res.bv)
	} else {
		m.Fill()
	}
	applyNulls(m, c)
	return m
}

// aggColumn resolves and validates the aggregated column.
func (t *Table) aggColumn(name string, kind Kind) (*Column, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	if c.kind != kind {
		return nil, fmt.Errorf("byteslice: column %s is %s, not %s", name, c.kind, kind)
	}
	return c, nil
}

// sumCodes computes (Σ codes, row count) over the mask. ByteSlice columns
// aggregate with SIMD; without a profile the native SWAR kernel runs
// instead of the modelled engine, chunked across workers when the query is
// parallel.
func (t *Table) sumCodes(c *Column, mask *bitvec.Vector, cfg *queryConfig) (uint64, int, error) {
	if cc, ok := compressedOf(c.data); ok && cfg.native() {
		st, finish := cfg.aggStage("sum("+c.Name()+")", "sum")
		sum, count, err := kernel.ParallelSumCompressedObs(cfg.ctx, cc, mask, cfg.nativeWorkers(cc.Segments()), st)
		err = queryErr(err)
		finish(err)
		return sum, count, err
	}
	if bs, ok := byteSliceOf(c.data); ok {
		if cfg.native() {
			st, finish := cfg.aggStage("sum("+c.Name()+")", "sum")
			sum, count, err := kernel.ParallelSumObs(cfg.ctx, bs, mask, cfg.nativeWorkers(bs.Segments()), st)
			err = queryErr(err)
			finish(err)
			return sum, count, err
		}
		sum, count := bs.Sum(cfg.profile.engine(), mask)
		return sum, count, nil
	}
	e := cfg.profile.engine()
	var sum uint64
	count := 0
	for i := 0; i < t.n; i++ {
		if i%8192 == 0 {
			if err := cfg.ctxErr(); err != nil {
				return 0, 0, err
			}
		}
		if mask != nil && !mask.Get(i) {
			continue
		}
		sum += uint64(c.data.Lookup(e, i))
		count++
	}
	return sum, count, nil
}

// extremeCode computes min or max of the codes over the mask, dispatching
// like sumCodes.
func (t *Table) extremeCode(c *Column, mask *bitvec.Vector, cfg *queryConfig, isMin bool) (uint32, bool, error) {
	if cc, ok := compressedOf(c.data); ok && cfg.native() {
		name := "max(" + c.Name() + ")"
		if isMin {
			name = "min(" + c.Name() + ")"
		}
		st, finish := cfg.aggStage(name, "extreme")
		v, found, err := kernel.ParallelExtremeCompressedObs(cfg.ctx, cc, mask, isMin, cfg.nativeWorkers(cc.Segments()), st)
		err = queryErr(err)
		finish(err)
		return v, found, err
	}
	if bs, ok := byteSliceOf(c.data); ok {
		if cfg.native() {
			name := "max(" + c.Name() + ")"
			if isMin {
				name = "min(" + c.Name() + ")"
			}
			st, finish := cfg.aggStage(name, "extreme")
			v, found, err := kernel.ParallelExtremeObs(cfg.ctx, bs, mask, isMin, cfg.nativeWorkers(bs.Segments()), st)
			err = queryErr(err)
			finish(err)
			return v, found, err
		}
		e := cfg.profile.engine()
		if isMin {
			v, found := bs.Min(e, mask)
			return v, found, nil
		}
		v, found := bs.Max(e, mask)
		return v, found, nil
	}
	e := cfg.profile.engine()
	var best uint32
	found := false
	for i := 0; i < t.n; i++ {
		if i%8192 == 0 {
			if err := cfg.ctxErr(); err != nil {
				return 0, false, err
			}
		}
		if mask != nil && !mask.Get(i) {
			continue
		}
		v := c.data.Lookup(e, i)
		if !found || (isMin && v < best) || (!isMin && v > best) {
			best = v
			found = true
		}
	}
	return best, found, nil
}

// SumInt sums an integer column over the result's rows (all rows when res
// is nil), excluding NULLs, and also returns the row count (for averages).
func (t *Table) SumInt(col string, res *Result, opts ...QueryOption) (int64, int, error) {
	c, err := t.aggColumn(col, KindInt)
	if err != nil {
		return 0, 0, err
	}
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	sum, count, err := t.sumCodes(c, t.aggMask(c, res), &cfg)
	if err != nil {
		return 0, 0, err
	}
	// Frame of reference: value = min + code.
	return int64(count)*c.ints.Min() + int64(sum), count, nil
}

// SumDecimal sums a decimal column over the result's rows, excluding NULLs.
func (t *Table) SumDecimal(col string, res *Result, opts ...QueryOption) (float64, int, error) {
	c, err := t.aggColumn(col, KindDecimal)
	if err != nil {
		return 0, 0, err
	}
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	sum, count, err := t.sumCodes(c, t.aggMask(c, res), &cfg)
	if err != nil {
		return 0, 0, err
	}
	step := c.decs.Decode(1) - c.decs.Decode(0)
	return float64(count)*c.decs.Min() + float64(sum)*step, count, nil
}

// MinInt returns the minimum of an integer column over the result's rows;
// ok is false when no non-NULL row is selected.
func (t *Table) MinInt(col string, res *Result, opts ...QueryOption) (int64, bool, error) {
	return t.extremeInt(col, res, opts, true)
}

// MaxInt returns the maximum of an integer column over the result's rows.
func (t *Table) MaxInt(col string, res *Result, opts ...QueryOption) (int64, bool, error) {
	return t.extremeInt(col, res, opts, false)
}

func (t *Table) extremeInt(col string, res *Result, opts []QueryOption, isMin bool) (int64, bool, error) {
	c, err := t.aggColumn(col, KindInt)
	if err != nil {
		return 0, false, err
	}
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	code, ok, err := t.extremeCode(c, t.aggMask(c, res), &cfg, isMin)
	if err != nil {
		return 0, false, err
	}
	if !ok {
		return 0, false, nil
	}
	return c.ints.Decode(code), true, nil
}

// MinDecimal returns the minimum of a decimal column over the result's rows.
func (t *Table) MinDecimal(col string, res *Result, opts ...QueryOption) (float64, bool, error) {
	return t.extremeDecimal(col, res, opts, true)
}

// MaxDecimal returns the maximum of a decimal column over the result's rows.
func (t *Table) MaxDecimal(col string, res *Result, opts ...QueryOption) (float64, bool, error) {
	return t.extremeDecimal(col, res, opts, false)
}

func (t *Table) extremeDecimal(col string, res *Result, opts []QueryOption, isMin bool) (float64, bool, error) {
	c, err := t.aggColumn(col, KindDecimal)
	if err != nil {
		return 0, false, err
	}
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	code, ok, err := t.extremeCode(c, t.aggMask(c, res), &cfg, isMin)
	if err != nil {
		return 0, false, err
	}
	if !ok {
		return 0, false, nil
	}
	return c.decs.Decode(code), true, nil
}

// MinString returns the lexicographically smallest string of a dictionary
// column over the result's rows (order-preserving encoding makes this the
// minimum code).
func (t *Table) MinString(col string, res *Result, opts ...QueryOption) (string, bool, error) {
	return t.extremeString(col, res, opts, true)
}

// MaxString returns the lexicographically largest string of a dictionary
// column over the result's rows.
func (t *Table) MaxString(col string, res *Result, opts ...QueryOption) (string, bool, error) {
	return t.extremeString(col, res, opts, false)
}

func (t *Table) extremeString(col string, res *Result, opts []QueryOption, isMin bool) (string, bool, error) {
	c, err := t.aggColumn(col, KindString)
	if err != nil {
		return "", false, err
	}
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	code, ok, err := t.extremeCode(c, t.aggMask(c, res), &cfg, isMin)
	if err != nil {
		return "", false, err
	}
	if !ok {
		return "", false, nil
	}
	return c.dict.Decode(code), true, nil
}

// Fused filter→aggregate entry points: a single-filter WHERE clause plus an
// aggregate over another column, evaluated in one pass by the fused native
// kernels (internal/kernel/fused.go) — no intermediate bit vector is ever
// materialised. The fused path applies when the query is native (no
// profile), the filter is non-trivial, and both columns are null-free
// ByteSlice; anything else transparently falls back to Filter + the
// two-pass aggregate, so results are always identical.

// fusedOperands resolves the fused fast path's inputs. ok is false when the
// two-pass fallback must run instead (never an error by itself).
func (t *Table) fusedOperands(v *Column, f Filter, cfg *queryConfig) (bsF, bsV *core.ByteSlice, pred layout.Predicate, ok bool, err error) {
	fc, err := t.Column(f.Col)
	if err != nil {
		return nil, nil, layout.Predicate{}, false, err
	}
	p, trivial, err := fc.predicate(f)
	if err != nil {
		return nil, nil, layout.Predicate{}, false, err
	}
	if !cfg.native() || trivial != nil || v.nulls != nil || fc.nulls != nil {
		return nil, nil, layout.Predicate{}, false, nil
	}
	bsF, okF := byteSliceOf(fc.data)
	bsV, okV := byteSliceOf(v.data)
	if !okF || !okV {
		return nil, nil, layout.Predicate{}, false, nil
	}
	return bsF, bsV, p, true, nil
}

// SumIntWhere computes SUM(valCol) and the matching row count over the rows
// satisfying the single filter f — the fused one-pass form of
// Filter + SumInt.
func (t *Table) SumIntWhere(valCol string, f Filter, opts ...QueryOption) (int64, int, error) {
	c, err := t.aggColumn(valCol, KindInt)
	if err != nil {
		return 0, 0, err
	}
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	bsF, bsV, pred, ok, err := t.fusedOperands(c, f, &cfg)
	if err != nil {
		return 0, 0, err
	}
	if ok {
		st, finish := cfg.aggStage("scan_sum("+f.Col+"→"+valCol+")", "scan_sum")
		sum, count, err := kernel.ScanSumObs(cfg.ctx, bsF, pred, bsV, cfg.nativeWorkers(bsF.Segments()), st)
		err = queryErr(err)
		finish(err)
		if err != nil {
			return 0, 0, err
		}
		return int64(count)*c.ints.Min() + int64(sum), count, nil
	}
	res, err := t.Filter([]Filter{f}, opts...)
	if err != nil {
		return 0, 0, err
	}
	return t.SumInt(valCol, res, opts...)
}

// SumDecimalWhere is SumIntWhere for decimal value columns.
func (t *Table) SumDecimalWhere(valCol string, f Filter, opts ...QueryOption) (float64, int, error) {
	c, err := t.aggColumn(valCol, KindDecimal)
	if err != nil {
		return 0, 0, err
	}
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	bsF, bsV, pred, ok, err := t.fusedOperands(c, f, &cfg)
	if err != nil {
		return 0, 0, err
	}
	if ok {
		st, finish := cfg.aggStage("scan_sum("+f.Col+"→"+valCol+")", "scan_sum")
		sum, count, err := kernel.ScanSumObs(cfg.ctx, bsF, pred, bsV, cfg.nativeWorkers(bsF.Segments()), st)
		err = queryErr(err)
		finish(err)
		if err != nil {
			return 0, 0, err
		}
		step := c.decs.Decode(1) - c.decs.Decode(0)
		return float64(count)*c.decs.Min() + float64(sum)*step, count, nil
	}
	res, err := t.Filter([]Filter{f}, opts...)
	if err != nil {
		return 0, 0, err
	}
	return t.SumDecimal(valCol, res, opts...)
}

// MinIntWhere returns MIN(valCol) over the rows satisfying f; ok is false
// when no row matches. It is the fused one-pass form of Filter + MinInt.
func (t *Table) MinIntWhere(valCol string, f Filter, opts ...QueryOption) (int64, bool, error) {
	return t.extremeIntWhere(valCol, f, opts, true)
}

// MaxIntWhere returns MAX(valCol) over the rows satisfying f.
func (t *Table) MaxIntWhere(valCol string, f Filter, opts ...QueryOption) (int64, bool, error) {
	return t.extremeIntWhere(valCol, f, opts, false)
}

func (t *Table) extremeIntWhere(valCol string, f Filter, opts []QueryOption, isMin bool) (int64, bool, error) {
	c, err := t.aggColumn(valCol, KindInt)
	if err != nil {
		return 0, false, err
	}
	code, ok, fused, err := t.fusedExtreme(c, f, opts, isMin)
	if err != nil {
		return 0, false, err
	}
	if fused {
		if !ok {
			return 0, false, nil
		}
		return c.ints.Decode(code), true, nil
	}
	res, err := t.Filter([]Filter{f}, opts...)
	if err != nil {
		return 0, false, err
	}
	return t.extremeInt(valCol, res, opts, isMin)
}

// MinDecimalWhere returns MIN(valCol) over the rows satisfying f.
func (t *Table) MinDecimalWhere(valCol string, f Filter, opts ...QueryOption) (float64, bool, error) {
	return t.extremeDecimalWhere(valCol, f, opts, true)
}

// MaxDecimalWhere returns MAX(valCol) over the rows satisfying f.
func (t *Table) MaxDecimalWhere(valCol string, f Filter, opts ...QueryOption) (float64, bool, error) {
	return t.extremeDecimalWhere(valCol, f, opts, false)
}

func (t *Table) extremeDecimalWhere(valCol string, f Filter, opts []QueryOption, isMin bool) (float64, bool, error) {
	c, err := t.aggColumn(valCol, KindDecimal)
	if err != nil {
		return 0, false, err
	}
	code, ok, fused, err := t.fusedExtreme(c, f, opts, isMin)
	if err != nil {
		return 0, false, err
	}
	if fused {
		if !ok {
			return 0, false, nil
		}
		return c.decs.Decode(code), true, nil
	}
	res, err := t.Filter([]Filter{f}, opts...)
	if err != nil {
		return 0, false, err
	}
	return t.extremeDecimal(valCol, res, opts, isMin)
}

// fusedExtreme runs the one-pass filter→extreme kernel; fused is false when
// the caller must fall back to the two-pass path.
func (t *Table) fusedExtreme(c *Column, f Filter, opts []QueryOption, isMin bool) (code uint32, ok, fused bool, err error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	bsF, bsV, pred, fused, err := t.fusedOperands(c, f, &cfg)
	if err != nil || !fused {
		return 0, false, false, err
	}
	st, finish := cfg.aggStage("scan_extreme("+f.Col+"→"+c.Name()+")", "scan_extreme")
	code, ok, err = kernel.ScanExtremeObs(cfg.ctx, bsF, pred, bsV, isMin, cfg.nativeWorkers(bsF.Segments()), st)
	err = queryErr(err)
	finish(err)
	if err != nil {
		return 0, false, false, err
	}
	return code, ok, true, nil
}

// GroupSum is one group of a grouped aggregation.
type GroupSum struct {
	// Key is the group's native value (int64, float64 or string,
	// matching the group-by column's kind).
	Key any
	// Sum and Count aggregate the value column over the group.
	Sum   float64
	Count int
}

// SumIntBy computes SUM(valCol) per distinct value of byCol over the
// result's rows (all rows when res is nil), NULLs of either column
// excluded. For low-cardinality group columns it runs one early-stopping
// equality scan per group value and a masked SIMD sum per group — grouping
// by scanning, which never materialises row lists; wider group columns
// fall back to per-row accumulation. Groups are returned in ascending key
// order and empty groups are omitted.
func (t *Table) SumIntBy(valCol, byCol string, res *Result, opts ...QueryOption) ([]GroupSum, error) {
	v, err := t.aggColumn(valCol, KindInt)
	if err != nil {
		return nil, err
	}
	return t.sumBy(v, byCol, res, opts, func(code uint32) float64 {
		return float64(v.ints.Decode(code))
	})
}

// SumDecimalBy is SumIntBy for decimal value columns.
func (t *Table) SumDecimalBy(valCol, byCol string, res *Result, opts ...QueryOption) ([]GroupSum, error) {
	v, err := t.aggColumn(valCol, KindDecimal)
	if err != nil {
		return nil, err
	}
	return t.sumBy(v, byCol, res, opts, func(code uint32) float64 {
		return v.decs.Decode(code)
	})
}

// groupScanMaxWidth bounds the scan-per-group strategy: beyond 2^10
// distinct group codes, per-row accumulation wins.
const groupScanMaxWidth = 10

func (t *Table) sumBy(v *Column, byCol string, res *Result, opts []QueryOption,
	decode func(uint32) float64) ([]GroupSum, error) {

	g, err := t.Column(byCol)
	if err != nil {
		return nil, err
	}
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	p := cfg.profile
	e := p.engine()

	// Effective mask: result rows minus NULLs of both columns.
	mask := t.aggMask(v, res)
	if g.nulls != nil {
		if mask == nil {
			mask = bitvec.New(t.n)
			mask.Fill()
		}
		applyNulls(mask, g)
	}

	bsVal, valIsBS := byteSliceOf(v.data)
	bsGrp, grpIsBS := byteSliceOf(g.data)

	type agg struct {
		sum   float64
		count int
	}
	groups := map[uint32]*agg{}

	if valIsBS && grpIsBS && g.Width() <= groupScanMaxWidth {
		// Grouping by scanning: one equality scan per candidate group code
		// (early stopping makes misses cheap), one masked SIMD sum each.
		// Unprofiled runs use the native kernels for both.
		groupMask := bitvec.New(t.n)
		for code := uint32(0); code <= g.maxCode(); code++ {
			// One cancellation point per candidate group: each iteration
			// runs a full scan plus a masked sum.
			if err := cfg.ctxErr(); err != nil {
				return nil, err
			}
			if cfg.native() {
				kernel.Scan(bsGrp, layout.Predicate{Op: Eq, C1: code}, groupMask)
			} else {
				bsGrp.Scan(e, layout.Predicate{Op: Eq, C1: code}, groupMask)
			}
			if mask != nil {
				groupMask.And(mask)
			}
			count := groupMask.Count()
			if count == 0 {
				continue
			}
			var codeSum uint64
			if cfg.native() {
				codeSum, _ = kernel.Sum(bsVal, groupMask)
			} else {
				codeSum, _ = bsVal.Sum(e, groupMask)
			}
			// Σ decode(c) = count·decode(0) + (decode(1)−decode(0))·Σc for
			// the affine decoders used here.
			step := decode(1) - decode(0)
			groups[code] = &agg{sum: float64(count)*decode(0) + float64(codeSum)*step, count: count}
		}
	} else {
		for i := 0; i < t.n; i++ {
			if i%8192 == 0 {
				if err := cfg.ctxErr(); err != nil {
					return nil, err
				}
			}
			if mask != nil && !mask.Get(i) {
				continue
			}
			code := g.data.Lookup(e, i)
			a := groups[code]
			if a == nil {
				a = &agg{}
				groups[code] = a
			}
			a.sum += decode(v.data.Lookup(e, i))
			a.count++
		}
	}

	keys := make([]uint32, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]GroupSum, 0, len(keys))
	for _, k := range keys {
		gs := GroupSum{Sum: groups[k].sum, Count: groups[k].count}
		switch g.kind {
		case KindInt:
			gs.Key = g.ints.Decode(k)
		case KindDecimal:
			gs.Key = g.decs.Decode(k)
		case KindString:
			gs.Key = g.dict.Decode(k)
		default:
			gs.Key = k
		}
		out = append(out, gs)
	}
	return out, nil
}
