package byteslice_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"byteslice"
)

// TestPersistRoundTripMatrix round-trips one column of every kind through
// every storage format and NULL pattern, in both the current v2 stream and
// the legacy v1 stream, asserting values and NULL masks survive exactly.
func TestPersistRoundTripMatrix(t *testing.T) {
	const n = 97 // partial final segment
	nullPatterns := map[string][]int{
		"none":   nil,
		"sparse": {0, 13, 96},
		"dense":  denseNulls(n),
	}
	type enc struct {
		name  string
		write func(*byteslice.Table, io.Writer) error
	}
	encodings := []enc{
		{"v2", func(tbl *byteslice.Table, w io.Writer) error { _, err := tbl.WriteTo(w); return err }},
		{"v1", func(tbl *byteslice.Table, w io.Writer) error { _, err := tbl.WriteToV1(w); return err }},
	}

	formats := append(byteslice.Formats(), byteslice.FormatByteSliceC)
	for _, format := range formats {
		for patName, nulls := range nullPatterns {
			for _, e := range encodings {
				name := fmt.Sprintf("%s/%s/%s", format, patName, e.name)
				t.Run(name, func(t *testing.T) {
					col, check := matrixColumns(t, n, format, nulls)
					tbl, err := byteslice.NewTable(col...)
					if err != nil {
						t.Fatal(err)
					}
					var buf bytes.Buffer
					if err := e.write(tbl, &buf); err != nil {
						t.Fatal(err)
					}
					got, err := byteslice.ReadTable(&buf)
					if err != nil {
						t.Fatal(err)
					}
					check(t, got)
				})
			}
		}
	}
}

func denseNulls(n int) []int {
	var nulls []int
	for i := 0; i < n; i += 2 {
		nulls = append(nulls, i)
	}
	return nulls
}

// matrixColumns builds one column per kind in the given format and NULL
// pattern, plus a checker that verifies a round-tripped table against the
// source values.
func matrixColumns(t *testing.T, n int, format byteslice.Format, nulls []int) ([]*byteslice.Column, func(*testing.T, *byteslice.Table)) {
	t.Helper()
	ints := make([]int64, n)
	decs := make([]float64, n)
	strs := make([]string, n)
	codes := make([]uint32, n)
	words := []string{"ant", "bee", "cat", "dog"}
	for i := 0; i < n; i++ {
		ints[i] = int64(i*11%400) - 200
		decs[i] = float64(i%77) / 8
		strs[i] = words[i%len(words)]
		codes[i] = uint32(i * 5 % 512)
	}
	isNull := make(map[int]bool, len(nulls))
	for _, i := range nulls {
		isNull[i] = true
	}

	opts := func() []byteslice.ColumnOption {
		o := []byteslice.ColumnOption{byteslice.WithFormat(format)}
		if len(nulls) > 0 {
			o = append(o, byteslice.WithNulls(nulls))
		}
		return o
	}
	ic, err := byteslice.NewIntColumn("i", ints, -200, 200, opts()...)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := byteslice.NewDecimalColumn("d", decs, 0, 10, 3, opts()...)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := byteslice.NewStringColumn("s", strs, opts()...)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := byteslice.NewCodeColumn("c", codes, 9, opts()...)
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, got *byteslice.Table) {
		t.Helper()
		if got.Len() != n {
			t.Fatalf("rows = %d, want %d", got.Len(), n)
		}
		gi, err := got.Column("i")
		if err != nil {
			t.Fatal(err)
		}
		gd, err := got.Column("d")
		if err != nil {
			t.Fatal(err)
		}
		gs, err := got.Column("s")
		if err != nil {
			t.Fatal(err)
		}
		gc, err := got.Column("c")
		if err != nil {
			t.Fatal(err)
		}
		// ByteSliceC requests go through the build-time compression
		// decision, which may deterministically fall back to raw
		// ByteSlice; either way the round trip must reproduce exactly
		// the layout the source column was built with.
		if gi.Format() != ic.Format() {
			t.Fatalf("format %s, want %s", gi.Format(), ic.Format())
		}
		if gi.NullCount() != len(nulls) {
			t.Fatalf("null count %d, want %d", gi.NullCount(), len(nulls))
		}
		for i := 0; i < n; i++ {
			if gi.IsNull(i) != isNull[i] {
				t.Fatalf("row %d: IsNull = %v, want %v", i, gi.IsNull(i), isNull[i])
			}
			if v, _ := gi.LookupInt(nil, i); v != ints[i] {
				t.Fatalf("int row %d: %d, want %d", i, v, ints[i])
			}
			if v, _ := gd.LookupDecimal(nil, i); v != decs[i] {
				t.Fatalf("decimal row %d: %v, want %v", i, v, decs[i])
			}
			if v, _ := gs.LookupString(nil, i); v != strs[i] {
				t.Fatalf("string row %d: %q, want %q", i, v, strs[i])
			}
			if v := gc.LookupCode(nil, i); v != codes[i] {
				t.Fatalf("code row %d: %d, want %d", i, v, codes[i])
			}
		}
	}
	return []*byteslice.Column{ic, dc, sc, cc}, check
}
