package byteslice_test

import (
	"math/rand/v2"
	"strings"
	"testing"

	"byteslice"
)

// exprFixture builds a three-column table plus the raw values for a
// scalar oracle.
func exprFixture(t *testing.T, n int) (*byteslice.Table, []int64, []int64, []string) {
	t.Helper()
	rng := rand.New(rand.NewPCG(80, 80)) //nolint:gosec
	a := make([]int64, n)
	b := make([]int64, n)
	s := make([]string, n)
	words := []string{"red", "green", "blue", "cyan"}
	for i := 0; i < n; i++ {
		a[i] = int64(rng.IntN(1000))
		b[i] = int64(rng.IntN(1000))
		s[i] = words[rng.IntN(len(words))]
	}
	sc, err := byteslice.NewStringColumn("s", s)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := byteslice.NewTable(
		intColumn(t, "a", a, 0, 999),
		intColumn(t, "b", b, 0, 999),
		sc,
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, a, b, s
}

// TestExprQ19Shape evaluates a Q19-style DNF of conjunctions against a
// scalar oracle.
func TestExprQ19Shape(t *testing.T) {
	tbl, a, b, s := exprFixture(t, 4000)
	expr := byteslice.Any(
		byteslice.AllFilters(
			byteslice.StringFilter("s", byteslice.Eq, "red"),
			byteslice.IntFilter("a", byteslice.Between, 100, 300),
		),
		byteslice.AllFilters(
			byteslice.StringFilter("s", byteslice.Eq, "blue"),
			byteslice.IntFilter("a", byteslice.Between, 200, 400),
			byteslice.IntFilter("b", byteslice.Lt, 500),
		),
	)
	res, err := tbl.Query(expr)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := range a {
		m := (s[i] == "red" && a[i] >= 100 && a[i] <= 300) ||
			(s[i] == "blue" && a[i] >= 200 && a[i] <= 400 && b[i] < 500)
		if m {
			want++
			if !res.Contains(i) {
				t.Fatalf("row %d should match", i)
			}
		}
	}
	if res.Count() != want {
		t.Fatalf("count = %d, want %d", res.Count(), want)
	}
}

// TestExprMixedNesting combines leaves and nested groups under one parent.
func TestExprMixedNesting(t *testing.T) {
	tbl, a, b, s := exprFixture(t, 3000)
	// a < 500 AND (s = "red" OR b ≥ 900) AND b < 950
	expr := byteslice.All(
		byteslice.Leaf(byteslice.IntFilter("a", byteslice.Lt, 500)),
		byteslice.Any(
			byteslice.Leaf(byteslice.StringFilter("s", byteslice.Eq, "red")),
			byteslice.Leaf(byteslice.IntFilter("b", byteslice.Ge, 900)),
		),
		byteslice.Leaf(byteslice.IntFilter("b", byteslice.Lt, 950)),
	)
	for _, strat := range []byteslice.Strategy{byteslice.StrategyBaseline, byteslice.StrategyColumnFirst, byteslice.StrategyPredicateFirst} {
		res, err := tbl.Query(expr, byteslice.WithStrategy(strat))
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i := range a {
			if a[i] < 500 && (s[i] == "red" || b[i] >= 900) && b[i] < 950 {
				want++
			}
		}
		if res.Count() != want {
			t.Fatalf("strategy %d: count = %d, want %d", strat, res.Count(), want)
		}
	}
}

func TestExprSingleLeafAndErrors(t *testing.T) {
	tbl, a, _, _ := exprFixture(t, 500)
	res, err := tbl.Query(byteslice.Leaf(byteslice.IntFilter("a", byteslice.Ge, 500)))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range a {
		if v >= 500 {
			want++
		}
	}
	if res.Count() != want {
		t.Fatalf("leaf query count = %d, want %d", res.Count(), want)
	}

	if _, err := tbl.Query(byteslice.Expr{}); err == nil {
		t.Fatal("empty expression should error")
	}
	if _, err := tbl.Query(byteslice.All()); err == nil {
		t.Fatal("empty AND should error")
	}
	if _, err := tbl.Query(byteslice.Leaf(byteslice.IntFilter("zzz", byteslice.Lt, 1))); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestExprString(t *testing.T) {
	e := byteslice.All(
		byteslice.Leaf(byteslice.IntFilter("a", byteslice.Lt, 1)),
		byteslice.Any(
			byteslice.Leaf(byteslice.IntFilter("b", byteslice.Eq, 2)),
			byteslice.Leaf(byteslice.IntFilter("c", byteslice.Gt, 3)),
		),
	)
	s := e.String()
	for _, want := range []string{"AND", "OR", "a", "b", "c"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
