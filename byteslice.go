// Package byteslice is a main-memory column-store storage engine built
// around the ByteSlice layout of Feng, Lo, Kao and Xu (SIGMOD 2015):
// a byte-level columnar format whose scans exploit 32-way SIMD parallelism
// with byte-granular early stopping, and whose lookups stay as cheap as
// horizontally packed formats.
//
// The package offers:
//
//   - typed columns (integers, fixed-precision decimals, dictionary-encoded
//     strings) that are order-preservingly encoded into fixed-width codes
//     and formatted in one of four storage layouts: ByteSlice (the paper's
//     contribution, the default), and the Bit-Packed, VBP and HBP baselines;
//   - predicate scans (<, ≤, >, ≥, =, ≠, BETWEEN) returning result bit
//     vectors, with conjunctions and disjunctions evaluated with the
//     paper's pipelined strategies;
//   - record lookups decoding matching rows back to native values;
//   - an optional execution profile recording the modelled instruction,
//     branch and memory behaviour of every operation on the emulated
//     SIMD engine (see DESIGN.md for the cost model).
//
// # Quick example
//
//	temp, _ := byteslice.NewIntColumn("temp_c", temps, -40, 60)
//	city, _ := byteslice.NewStringColumn("city", cities)
//	tbl, _ := byteslice.NewTable(temp, city)
//	res, _ := tbl.Filter([]byteslice.Filter{
//		byteslice.IntFilter("temp_c", byteslice.Gt, 30),
//		byteslice.StringFilter("city", byteslice.Eq, "Melbourne"),
//	})
//	rows := res.Rows()
package byteslice

import (
	"fmt"

	"byteslice/internal/cache"
	"byteslice/internal/compress"
	"byteslice/internal/core"
	"byteslice/internal/layout"
	"byteslice/internal/layout/hbp"
	"byteslice/internal/layouts"
	"byteslice/internal/perf"
	"byteslice/internal/simd"
)

// Op is a comparison operator for filters.
type Op = layout.Op

// Comparison operators. Between is inclusive on both ends.
const (
	Lt      = layout.Lt
	Le      = layout.Le
	Gt      = layout.Gt
	Ge      = layout.Ge
	Eq      = layout.Eq
	Ne      = layout.Ne
	Between = layout.Between
)

// Format names a storage layout.
type Format string

// The four storage layouts of the paper's evaluation, plus the compressed
// ByteSlice variant (frame-of-reference/delta blocks with scan-fused
// decode; see WithCompression).
const (
	FormatByteSlice  Format = "ByteSlice"
	FormatBitPacked  Format = "BitPacked"
	FormatVBP        Format = "VBP"
	FormatHBP        Format = "HBP"
	FormatByteSliceC Format = compress.Name
)

// Formats lists all supported formats.
func Formats() []Format {
	out := make([]Format, 0, len(layouts.Names))
	for _, n := range layouts.Names {
		out = append(out, Format(n))
	}
	return out
}

func builderFor(f Format) (layout.Builder, error) {
	if f == "" {
		f = FormatByteSlice
	}
	b, ok := layouts.Builders[string(f)]
	if !ok {
		return nil, fmt.Errorf("byteslice: unknown format %q", f)
	}
	return b, nil
}

// Profile exposes the modelled execution metrics of operations run with it:
// instructions, branch mispredictions, cache behaviour, and the derived
// cycle count of the emulated Haswell-class core.
type Profile struct {
	p *perf.Profile
}

// NewProfile returns a profile with cache modelling enabled.
func NewProfile() *Profile { return &Profile{p: perf.NewProfile()} }

// Cycles is the modelled cycle count accumulated so far.
func (p *Profile) Cycles() float64 { return p.p.Cycles() }

// Instructions is the modelled instruction count accumulated so far.
func (p *Profile) Instructions() uint64 { return p.p.Instructions() }

// Reset clears the accumulated counters (cache contents stay warm).
func (p *Profile) Reset() { p.p.Reset() }

// String summarises the profile.
func (p *Profile) String() string { return p.p.String() }

func (p *Profile) engine() *simd.Engine {
	if p == nil {
		return simd.New(perf.NewProfileNoCache())
	}
	return simd.New(p.p)
}

// Strategy selects how multi-column filters are evaluated (§3.1.2 of the
// paper). The default for ByteSlice tables is the column-first pipelined
// evaluation the paper recommends.
type Strategy int

// Evaluation strategies.
const (
	// StrategyAuto picks column-first for ByteSlice tables and the
	// baseline for other formats, matching the paper's setup.
	StrategyAuto Strategy = iota
	// StrategyBaseline evaluates every predicate independently and
	// combines result bit vectors.
	StrategyBaseline
	// StrategyColumnFirst pipelines each predicate's condensed result into
	// the next column's scan (Algorithm 2).
	StrategyColumnFirst
	// StrategyPredicateFirst evaluates all predicates per 32-row segment,
	// pipelining the uncondensed bank masks (ByteSlice only).
	StrategyPredicateFirst
)

// arena is the process-wide simulated address allocator: every column built
// by this package lives in its own region, as it would in a real process.
var arena = cache.NewArena(64)

// byteSliceOf returns the concrete ByteSlice layout of a column, if any.
func byteSliceOf(l layout.Layout) (*core.ByteSlice, bool) {
	b, ok := l.(*core.ByteSlice)
	return b, ok
}

// compressedOf returns the concrete compressed layout of a column, if any.
func compressedOf(l layout.Layout) (*compress.Column, bool) {
	c, ok := l.(*compress.Column)
	return c, ok
}

// hbpOf returns the concrete HBP layout of a column, if any.
func hbpOf(l layout.Layout) (*hbp.HBP, bool) {
	h, ok := l.(*hbp.HBP)
	return h, ok
}
