package byteslice_test

import (
	"bytes"
	"math/rand"
	"testing"

	"byteslice"
)

// layoutTestTable builds one table per storage layout over the same values
// so queries can be compared across layouts.
func layoutTestTable(t *testing.T, n int, format byteslice.Format) *byteslice.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	price := make([]int64, n)
	qty := make([]int64, n)
	for i := 0; i < n; i++ {
		price[i] = int64(rng.Intn(100000))
		qty[i] = int64(rng.Intn(50))
	}
	var opts []byteslice.ColumnOption
	if format != "" {
		opts = append(opts, byteslice.WithFormat(format))
	}
	pc, err := byteslice.NewIntColumn("price", price, 0, 100000, opts...)
	if err != nil {
		t.Fatal(err)
	}
	qc, err := byteslice.NewIntColumn("qty", qty, 0, 49, opts...)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := byteslice.NewTable(pc, qc)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestHBPDispatchDifferential pins the native HBP query path — filter,
// conjunction, disjunction, projection, ORDER BY — row-identical to the
// same queries on the default ByteSlice layout.
func TestHBPDispatchDifferential(t *testing.T) {
	const n = 20000
	bsT := layoutTestTable(t, n, "")
	hbpT := layoutTestTable(t, n, byteslice.FormatHBP)
	if c, _ := hbpT.Column("price"); c.Format() != byteslice.FormatHBP {
		t.Fatalf("format = %s, want HBP", c.Format())
	}

	queries := [][]byteslice.Filter{
		{byteslice.IntFilter("price", byteslice.Lt, 30000)},
		{byteslice.IntFilter("price", byteslice.Between, 20000, 60000),
			byteslice.IntFilter("qty", byteslice.Ge, 25)},
		{byteslice.IntFilter("price", byteslice.Eq, price0(bsT, t)),
			byteslice.IntFilter("qty", byteslice.Ne, 7)},
	}
	for qi, fs := range queries {
		want, err := bsT.Filter(fs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := hbpT.Filter(fs)
		if err != nil {
			t.Fatal(err)
		}
		wr, gr := want.Rows(), got.Rows()
		if len(wr) != len(gr) {
			t.Fatalf("query %d: %d rows on HBP, want %d", qi, len(gr), len(wr))
		}
		for i := range wr {
			if wr[i] != gr[i] {
				t.Fatalf("query %d row %d: %d != %d", qi, i, gr[i], wr[i])
			}
		}

		wRows, wVals, err := bsT.ProjectInt("price", want)
		if err != nil {
			t.Fatal(err)
		}
		gRows, gVals, err := hbpT.ProjectInt("price", got)
		if err != nil {
			t.Fatal(err)
		}
		if len(wVals) != len(gVals) {
			t.Fatalf("query %d: projection sizes differ", qi)
		}
		for i := range wVals {
			if wRows[i] != gRows[i] || wVals[i] != gVals[i] {
				t.Fatalf("query %d projection %d: (%d,%d) != (%d,%d)", qi, i, gRows[i], gVals[i], wRows[i], wVals[i])
			}
		}

		wOrd, err := bsT.OrderBy("qty", want)
		if err != nil {
			t.Fatal(err)
		}
		gOrd, err := hbpT.OrderBy("qty", got)
		if err != nil {
			t.Fatal(err)
		}
		if len(wOrd) != len(gOrd) {
			t.Fatalf("query %d: order sizes differ", qi)
		}
		for i := range wOrd {
			if wOrd[i] != gOrd[i] {
				t.Fatalf("query %d order %d: %d != %d", qi, i, gOrd[i], wOrd[i])
			}
		}
	}
}

// price0 reads row 0 of price so an Eq filter has a guaranteed match.
func price0(tbl *byteslice.Table, t *testing.T) int64 {
	t.Helper()
	c, err := tbl.Column("price")
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.LookupInt(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestWithLayoutRoundTrip converts a column to HBP and back, checking the
// format tag and query results at each step.
func TestWithLayoutRoundTrip(t *testing.T) {
	tbl := layoutTestTable(t, 5000, "")
	want, err := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("price", byteslice.Lt, 40000)})
	if err != nil {
		t.Fatal(err)
	}

	ht, err := tbl.WithLayout(byteslice.FormatHBP, "price")
	if err != nil {
		t.Fatal(err)
	}
	pc, _ := ht.Column("price")
	qc, _ := ht.Column("qty")
	if pc.Format() != byteslice.FormatHBP || qc.Format() != byteslice.FormatByteSlice {
		t.Fatalf("formats after WithLayout: price=%s qty=%s", pc.Format(), qc.Format())
	}
	got, err := ht.Filter([]byteslice.Filter{byteslice.IntFilter("price", byteslice.Lt, 40000)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != want.Count() {
		t.Fatalf("HBP count %d, want %d", got.Count(), want.Count())
	}

	back, err := ht.WithLayout(byteslice.FormatByteSlice)
	if err != nil {
		t.Fatal(err)
	}
	pc, _ = back.Column("price")
	if pc.Format() != byteslice.FormatByteSlice {
		t.Fatalf("format after round trip: %s", pc.Format())
	}
	got, err = back.Filter([]byteslice.Filter{byteslice.IntFilter("price", byteslice.Lt, 40000)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != want.Count() {
		t.Fatalf("round-trip count %d, want %d", got.Count(), want.Count())
	}

	if _, err := tbl.WithLayout(byteslice.Format("nope")); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := tbl.WithLayout(byteslice.FormatHBP, "absent"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

// TestAutoLayoutFlips drives a lookup-dominated workload into one column
// and a scan-dominated workload into another, then checks AutoLayout moves
// only the lookup-heavy column to HBP — and moves it back once scans
// dominate again.
func TestAutoLayoutFlips(t *testing.T) {
	tbl := layoutTestTable(t, 20000, "")

	// Scans hammer qty; price is only ever materialised via projections.
	res, err := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("qty", byteslice.Lt, 40)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := tbl.ProjectInt("price", res); err != nil {
			t.Fatal(err)
		}
	}
	pc, _ := tbl.Column("price")
	scan, look := pc.Workload()
	if scan != 0 || look == 0 {
		t.Fatalf("price workload scan=%d lookup=%d, want lookup-only", scan, look)
	}

	auto, err := tbl.AutoLayout()
	if err != nil {
		t.Fatal(err)
	}
	pc, _ = auto.Column("price")
	qc, _ := auto.Column("qty")
	if pc.Format() != byteslice.FormatHBP {
		t.Fatalf("lookup-heavy price stayed %s, want HBP", pc.Format())
	}
	if qc.Format() != byteslice.FormatByteSlice {
		t.Fatalf("scan-heavy qty moved to %s, want ByteSlice", qc.Format())
	}

	// The flipped table answers the same queries.
	want, err := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("price", byteslice.Gt, 70000)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := auto.Filter([]byteslice.Filter{byteslice.IntFilter("price", byteslice.Gt, 70000)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != want.Count() {
		t.Fatalf("HBP count %d, want %d", got.Count(), want.Count())
	}

	// Scans now dominate price (shared counters keep accumulating), so the
	// next AutoLayout moves it back to ByteSlice.
	for i := 0; i < 200; i++ {
		if _, err := auto.Filter([]byteslice.Filter{byteslice.IntFilter("price", byteslice.Gt, 70000)}); err != nil {
			t.Fatal(err)
		}
	}
	back, err := auto.AutoLayout()
	if err != nil {
		t.Fatal(err)
	}
	pc, _ = back.Column("price")
	if pc.Format() != byteslice.FormatByteSlice {
		t.Fatalf("scan-heavy price stayed %s, want ByteSlice", pc.Format())
	}

	// With no workload change, AutoLayout is a no-op returning the receiver.
	same, err := back.AutoLayout()
	if err != nil {
		t.Fatal(err)
	}
	if same != back {
		t.Fatal("idle AutoLayout rebuilt the table")
	}
}

// TestChosenLayoutPersists snapshots a re-laid-out table and checks the
// chosen per-column layout — not the build default — comes back from the
// v2 stream, with queries intact.
func TestChosenLayoutPersists(t *testing.T) {
	tbl := layoutTestTable(t, 5000, "")
	ht, err := tbl.WithLayout(byteslice.FormatHBP, "price")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ht.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := byteslice.ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pc, _ := got.Column("price")
	qc, _ := got.Column("qty")
	if pc.Format() != byteslice.FormatHBP || qc.Format() != byteslice.FormatByteSlice {
		t.Fatalf("loaded formats: price=%s qty=%s, want HBP/ByteSlice", pc.Format(), qc.Format())
	}
	want, err := ht.Filter([]byteslice.Filter{byteslice.IntFilter("price", byteslice.Between, 10000, 50000)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := got.Filter([]byteslice.Filter{byteslice.IntFilter("price", byteslice.Between, 10000, 50000)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != want.Count() {
		t.Fatalf("loaded count %d, want %d", res.Count(), want.Count())
	}
}
