package byteslice

import (
	"fmt"
)

// Expr is a boolean combination of filters — arbitrary nesting of AND and
// OR over column-scalar predicates, the shape TPC-H's Q19 takes (§2:
// "conjunctions and disjunctions of predicates can be implemented as
// logical AND and OR operations on these result bit vectors").
//
// Evaluation applies the table's pipelined strategies within each
// innermost homogeneous group (a run of leaves under one AND or OR) and
// combines group results with bit-vector algebra.
type Expr struct {
	// Exactly one of leaf, and, or is set.
	leaf *Filter
	and  []Expr
	or   []Expr
}

// Leaf wraps a single filter.
func Leaf(f Filter) Expr { return Expr{leaf: &f} }

// All is the conjunction of the given expressions.
func All(exprs ...Expr) Expr { return Expr{and: exprs} }

// Any is the disjunction of the given expressions.
func Any(exprs ...Expr) Expr { return Expr{or: exprs} }

// AllFilters is shorthand for All over plain filters.
func AllFilters(filters ...Filter) Expr {
	exprs := make([]Expr, len(filters))
	for i, f := range filters {
		exprs[i] = Leaf(f)
	}
	return All(exprs...)
}

// AnyFilters is shorthand for Any over plain filters.
func AnyFilters(filters ...Filter) Expr {
	exprs := make([]Expr, len(filters))
	for i, f := range filters {
		exprs[i] = Leaf(f)
	}
	return Any(exprs...)
}

// String renders the expression.
func (e Expr) String() string {
	switch {
	case e.leaf != nil:
		return e.leaf.Col
	case e.and != nil:
		return renderGroup("AND", e.and)
	case e.or != nil:
		return renderGroup("OR", e.or)
	}
	return "<empty>"
}

func renderGroup(op string, exprs []Expr) string {
	s := "("
	for i, sub := range exprs {
		if i > 0 {
			s += " " + op + " "
		}
		s += sub.String()
	}
	return s + ")"
}

// filterEvaluator evaluates flat conjunctions and disjunctions of
// filters. Table implements it directly; IngestTable implements it
// through a pinned view (Pin), so boolean trees evaluate identically —
// and over one consistent row set — on immutable and live tables.
type filterEvaluator interface {
	Filter(filters []Filter, opts ...QueryOption) (*Result, error)
	FilterAny(filters []Filter, opts ...QueryOption) (*Result, error)
}

// Query evaluates the expression over the table. The returned Result's
// Explain joins the plans of every homogeneous group the expression split
// into (one plan block per Filter/FilterAny evaluation), and ZoneSkipped
// sums their zone-map pruning.
func (t *Table) Query(e Expr, opts ...QueryOption) (*Result, error) {
	return evalExpr(t, e, opts)
}

func evalExpr(t filterEvaluator, e Expr, opts []QueryOption) (*Result, error) {
	switch {
	case e.leaf != nil:
		return t.Filter([]Filter{*e.leaf}, opts...)

	case e.and != nil, e.or != nil:
		children := e.and
		disjunct := false
		if e.or != nil {
			children = e.or
			disjunct = true
		}
		if len(children) == 0 {
			return nil, fmt.Errorf("byteslice: empty %s group", map[bool]string{false: "AND", true: "OR"}[disjunct])
		}
		// Runs of leaves evaluate together so the pipelined strategies
		// apply; nested groups evaluate recursively and combine.
		var acc *Result
		combine := func(r *Result) {
			if acc == nil {
				acc = r
				return
			}
			if disjunct {
				acc.bv.Or(r.bv)
			} else {
				acc.bv.And(r.bv)
			}
			if r.explain != "" {
				if acc.explain != "" {
					acc.explain += "\n"
				}
				acc.explain += r.explain
			}
			acc.zoneSkipped += r.zoneSkipped
			if r.stats != nil {
				if acc.stats == nil {
					acc.stats = r.stats
				} else {
					acc.stats.Absorb(r.stats)
				}
			}
		}
		var run []Filter
		flush := func() error {
			if len(run) == 0 {
				return nil
			}
			var res *Result
			var err error
			if disjunct {
				res, err = t.FilterAny(run, opts...)
			} else {
				res, err = t.Filter(run, opts...)
			}
			if err != nil {
				return err
			}
			run = nil
			combine(res)
			return nil
		}
		for _, child := range children {
			if child.leaf != nil {
				run = append(run, *child.leaf)
				continue
			}
			if err := flush(); err != nil {
				return nil, err
			}
			res, err := evalExpr(t, child, opts)
			if err != nil {
				return nil, err
			}
			combine(res)
		}
		if err := flush(); err != nil {
			return nil, err
		}
		return acc, nil
	}
	return nil, fmt.Errorf("byteslice: empty expression")
}
