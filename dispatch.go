package byteslice

import (
	"context"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/kernel"
	"byteslice/internal/layout"
	"byteslice/internal/obs"
)

// layoutKernel is one storage layout's native-execution dispatch entry:
// the set of SWAR kernels the facade routes through when no profile is
// attached. Raw ByteSlice, compressed ByteSlice and HBP are peers behind
// this table — table.eval, the projection paths and OrderBy dispatch on
// the column's layout instead of type-switching inline, so adding a
// layout means adding an entry here (plus a builder in internal/layouts
// and a persistence format tag; the registry test in layouts_test.go
// pins all three in sync).
type layoutKernel struct {
	// scanKind labels the obs stage for a plain scan of this layout.
	scanKind func(c *Column) string
	// scan evaluates pred over the whole column into out, returning how
	// many segments metadata pruning resolved without touching data.
	scan func(ctx context.Context, c *Column, pred layout.Predicate, workers int, out *bitvec.Vector, st *obs.Stage) (pruned int, err error)
	// scanPipelined, when non-nil, fuses the running result into the scan
	// (column-first Algorithm 2): segments already decided by prev are
	// skipped. Layouts without a native pipelined kernel leave it nil and
	// run an independent scan combined through the bit vector.
	scanPipelined func(ctx context.Context, c *Column, pred layout.Predicate, prev *bitvec.Vector, disjunct bool, workers int, out *bitvec.Vector, st *obs.Stage) (pruned int, err error)
	// lookupMany gathers the codes of rows (ascending) into codes — the
	// projection / ORDER-BY materialisation path.
	lookupMany func(ctx context.Context, c *Column, rows []int32, codes []uint32, st *obs.Stage) error
	// lookupChunkable reports whether disjoint row ranges may be handed
	// to lookupMany concurrently. Block-decoding layouts keep the whole
	// ascending row list so each block decodes once.
	lookupChunkable bool
	// segments sizes the worker pool: the column's 32-code segment count.
	segments func(c *Column) int
}

// nativeKernels is the layout dispatch table of the native execution
// path, keyed by the layout's format tag.
var nativeKernels = map[Format]*layoutKernel{
	FormatByteSlice: {
		scanKind: func(c *Column) string {
			if bs, _ := byteSliceOf(c.data); bs.HasZoneMaps() {
				return "scan_zoned"
			}
			return "scan"
		},
		scan: func(ctx context.Context, c *Column, pred layout.Predicate, workers int, out *bitvec.Vector, st *obs.Stage) (int, error) {
			bs, _ := byteSliceOf(c.data)
			if bs.HasZoneMaps() {
				return kernel.ParallelScanZonedObs(ctx, bs, pred, workers, out, st)
			}
			return 0, kernel.ParallelScanObs(ctx, bs, pred, workers, out, st)
		},
		scanPipelined: func(ctx context.Context, c *Column, pred layout.Predicate, prev *bitvec.Vector, disjunct bool, workers int, out *bitvec.Vector, st *obs.Stage) (int, error) {
			bs, _ := byteSliceOf(c.data)
			if bs.HasZoneMaps() {
				return kernel.ParallelScanPipelinedZonedObs(ctx, bs, pred, prev, disjunct, workers, out, st)
			}
			return 0, kernel.ParallelScanPipelinedObs(ctx, bs, pred, prev, disjunct, workers, out, st)
		},
		lookupMany: func(ctx context.Context, c *Column, rows []int32, codes []uint32, st *obs.Stage) error {
			bs, _ := byteSliceOf(c.data)
			return kernel.LookupManyObs(ctx, bs, rows, codes, st)
		},
		lookupChunkable: true,
		segments: func(c *Column) int {
			bs, _ := byteSliceOf(c.data)
			return bs.Segments()
		},
	},
	FormatByteSliceC: {
		scanKind: func(c *Column) string { return "scan_compressed" },
		scan: func(ctx context.Context, c *Column, pred layout.Predicate, workers int, out *bitvec.Vector, st *obs.Stage) (int, error) {
			cc, _ := compressedOf(c.data)
			return kernel.ParallelScanCompressedObs(ctx, cc, pred, workers, out, st)
		},
		lookupMany: func(ctx context.Context, c *Column, rows []int32, codes []uint32, st *obs.Stage) error {
			// Rows arrive ascending, so each 512-code block decodes at most
			// once into a stack buffer and serves every row it contains.
			cc, _ := compressedOf(c.data)
			bytes := kernel.LookupManyCompressed(cc, rows, codes)
			if st != nil {
				st.AddRows(int64(len(rows)), bytes)
			}
			return ctxErrOf(ctx)
		},
		segments: func(c *Column) int {
			cc, _ := compressedOf(c.data)
			return cc.Segments()
		},
	},
	FormatHBP: {
		scanKind: func(c *Column) string { return "scan_hbp" },
		scan: func(ctx context.Context, c *Column, pred layout.Predicate, workers int, out *bitvec.Vector, st *obs.Stage) (int, error) {
			h, _ := hbpOf(c.data)
			return 0, kernel.ParallelScanHBPObs(ctx, h, pred, workers, out, st)
		},
		lookupMany: func(ctx context.Context, c *Column, rows []int32, codes []uint32, st *obs.Stage) error {
			h, _ := hbpOf(c.data)
			return kernel.LookupManyHBPObs(ctx, h, rows, codes, st)
		},
		lookupChunkable: true,
		segments: func(c *Column) int {
			return (c.Len() + core.SegmentSize - 1) / core.SegmentSize
		},
	},
}

// nativeKernelOf returns the native dispatch entry for the column's
// layout, or nil when the layout only has a modelled implementation (BP,
// VBP) and must run through the engine.
func nativeKernelOf(c *Column) *layoutKernel {
	return nativeKernels[c.Format()]
}

// ctxErrOf mirrors queryConfig.ctxErr for dispatch entries that finish
// synchronously without an internal cancellation loop.
func ctxErrOf(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// materializeCodes stitches every row's code back out of the column using
// its native lookup kernel (modelled layouts fall back to the engine) —
// the first half of a re-layout. A nil ctx disables cancellation (the
// kernels' usual convention); merge paths forward their caller's ctx so a
// huge rebuild can be abandoned mid-column.
func materializeCodes(ctx context.Context, c *Column) ([]uint32, error) {
	n := c.Len()
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	codes := make([]uint32, n)
	if lk := nativeKernelOf(c); lk != nil {
		if err := lk.lookupMany(ctx, c, rows, codes, nil); err != nil {
			return nil, err
		}
		return codes, nil
	}
	e := (*Profile)(nil).engine()
	for i := range codes {
		codes[i] = c.data.Lookup(e, i)
	}
	return codes, nil
}
