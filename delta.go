package byteslice

import (
	"fmt"

	"byteslice/internal/bitvec"
)

// DeltaTable adds appendability to the read-optimised formats, the way
// main-memory column stores do (the paper's setting stores base data
// compressed and read-mostly; Krueger et al. [28], cited in §2, maintain a
// small write-optimised delta next to it and merge periodically):
//
//   - a sealed base Table holds the bulk of the data in a scan-optimised
//     layout;
//   - appended rows accumulate in a small code-encoded delta, scanned
//     row-at-a-time during queries (the delta is expected to stay small);
//   - Merge folds the delta into a fresh sealed Table, rebuilding the
//     storage layouts.
//
// Row numbers are stable: base rows keep their positions, delta rows
// follow them in append order, and Merge preserves the combined order.
type DeltaTable struct {
	base       *Table
	deltaCodes map[string][]uint32
	deltaNulls map[string][]bool
	deltaLen   int
}

// NewDeltaTable wraps a sealed table for appending.
func NewDeltaTable(base *Table) *DeltaTable {
	d := &DeltaTable{
		base:       base,
		deltaCodes: make(map[string][]uint32, len(base.cols)),
		deltaNulls: make(map[string][]bool, len(base.cols)),
	}
	for _, c := range base.cols {
		d.deltaCodes[c.name] = nil
		d.deltaNulls[c.name] = nil
	}
	return d
}

// Len returns the total number of rows (base + delta).
func (d *DeltaTable) Len() int { return d.base.n + d.deltaLen }

// DeltaLen returns the number of unmerged appended rows.
func (d *DeltaTable) DeltaLen() int { return d.deltaLen }

// Base returns the sealed base table.
func (d *DeltaTable) Base() *Table { return d.base }

// AppendRow appends one row. vals maps column names to native values —
// int64 for integer columns, float64 for decimal, string for string,
// uint32 for code columns — or nil for NULL. Every column must be present.
// Values are encoded immediately, so domain violations fail the append
// atomically (no partial row is retained).
func (d *DeltaTable) AppendRow(vals map[string]any) error {
	if len(vals) != len(d.base.cols) {
		return fmt.Errorf("byteslice: row has %d values, table has %d columns", len(vals), len(d.base.cols))
	}
	codes := make([]uint32, len(d.base.cols))
	nulls := make([]bool, len(d.base.cols))
	for i, c := range d.base.cols {
		v, ok := vals[c.name]
		if !ok {
			return fmt.Errorf("byteslice: row is missing column %s", c.name)
		}
		if v == nil {
			nulls[i] = true
			continue
		}
		code, err := c.encodeValue(v)
		if err != nil {
			return err
		}
		codes[i] = code
	}
	for i, c := range d.base.cols {
		d.deltaCodes[c.name] = append(d.deltaCodes[c.name], codes[i])
		d.deltaNulls[c.name] = append(d.deltaNulls[c.name], nulls[i])
	}
	d.deltaLen++
	return nil
}

// encodeValue encodes one native value for the column, type-checked.
func (c *Column) encodeValue(v any) (uint32, error) {
	switch c.kind {
	case KindInt:
		x, ok := v.(int64)
		if !ok {
			return 0, fmt.Errorf("byteslice: column %s wants int64, got %T", c.name, v)
		}
		return c.ints.Encode(x)
	case KindDecimal:
		x, ok := v.(float64)
		if !ok {
			return 0, fmt.Errorf("byteslice: column %s wants float64, got %T", c.name, v)
		}
		return c.decs.Encode(x)
	case KindString:
		x, ok := v.(string)
		if !ok {
			return 0, fmt.Errorf("byteslice: column %s wants string, got %T", c.name, v)
		}
		code, err := c.dict.Encode(x)
		if err != nil {
			return 0, fmt.Errorf("byteslice: column %s: %w (the dictionary is fixed at build time)", c.name, err)
		}
		return code, nil
	case KindCode:
		x, ok := v.(uint32)
		if !ok {
			return 0, fmt.Errorf("byteslice: column %s wants uint32, got %T", c.name, v)
		}
		if x > c.maxCode() {
			return 0, fmt.Errorf("byteslice: column %s: code %d exceeds width %d", c.name, x, c.Width())
		}
		return x, nil
	}
	return 0, fmt.Errorf("byteslice: unknown kind %v", c.kind)
}

// Filter evaluates the conjunction of the filters over base and delta rows.
// The base is scanned with its storage layouts; the delta row-at-a-time.
func (d *DeltaTable) Filter(filters []Filter, opts ...QueryOption) (*Result, error) {
	return d.eval(filters, false, opts)
}

// FilterAny evaluates the disjunction over base and delta rows.
func (d *DeltaTable) FilterAny(filters []Filter, opts ...QueryOption) (*Result, error) {
	return d.eval(filters, true, opts)
}

func (d *DeltaTable) eval(filters []Filter, disjunct bool, opts []QueryOption) (*Result, error) {
	var baseRes *Result
	var err error
	if disjunct {
		baseRes, err = d.base.FilterAny(filters, opts...)
	} else {
		baseRes, err = d.base.Filter(filters, opts...)
	}
	if err != nil {
		return nil, err
	}
	out := bitvec.New(d.Len())
	out.CopyBits(baseRes.bv)

	// Delta rows: evaluate the resolved predicates row-at-a-time.
	for r := 0; r < d.deltaLen; r++ {
		match := !disjunct
		for _, f := range filters {
			col, err := d.base.Column(f.Col)
			if err != nil {
				return nil, err
			}
			pred, trivial, err := col.predicate(f)
			if err != nil {
				return nil, err
			}
			var m bool
			switch {
			case d.deltaNulls[col.name][r]:
				m = false // comparisons with NULL are never true
			case trivial != nil:
				m = *trivial
			default:
				m = pred.Eval(d.deltaCodes[col.name][r])
			}
			if disjunct {
				match = match || m
			} else {
				match = match && m
			}
		}
		out.Set(d.base.n+r, match)
	}
	return &Result{bv: out}, nil
}

// Merge seals the delta into a new Table (with the base's formats, or the
// override passed via WithFormat) and returns it. The receiver is left
// unchanged; typical use is d = NewDeltaTable(merged).
func (d *DeltaTable) Merge(opts ...ColumnOption) (*Table, error) {
	override := applyOpts(opts)
	cols := make([]*Column, 0, len(d.base.cols))
	for _, c := range d.base.cols {
		total := d.base.n + d.deltaLen
		codes := make([]uint32, total)
		for i := 0; i < d.base.n; i++ {
			codes[i] = c.data.Lookup(nilProfile.engine(), i)
		}
		copy(codes[d.base.n:], d.deltaCodes[c.name])

		var nullRows []int
		if c.nulls != nil {
			for _, r := range c.nulls.Positions(nil) {
				nullRows = append(nullRows, int(r))
			}
		}
		for r, isNull := range d.deltaNulls[c.name] {
			if isNull {
				nullRows = append(nullRows, d.base.n+r)
			}
		}

		format := c.Format()
		if override.format != "" {
			format = override.format
		}
		var (
			col *Column
			err error
		)
		switch c.kind {
		case KindInt:
			col, err = rebuildColumn(c.name, KindInt, format, c.Width(), codes,
				c.ints.Min(), c.ints.Max(), 0, 0, 0, nil, nullRows)
		case KindDecimal:
			col, err = rebuildColumn(c.name, KindDecimal, format, c.Width(), codes,
				0, 0, c.decs.Min(), c.decs.Max(), c.decs.Digits(), nil, nullRows)
		case KindString:
			col, err = rebuildColumn(c.name, KindString, format, c.Width(), codes,
				0, 0, 0, 0, 0, c.dict.Values(), nullRows)
		default:
			col, err = rebuildColumn(c.name, KindCode, format, c.Width(), codes,
				0, 0, 0, 0, 0, nil, nullRows)
		}
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
	}
	return NewTable(cols...)
}
