package byteslice

import (
	"context"
	"fmt"

	"byteslice/internal/bitvec"
	"byteslice/internal/layout"
	"byteslice/internal/obs"
)

// DeltaTable adds appendability to the read-optimised formats, the way
// main-memory column stores do (the paper's setting stores base data
// compressed and read-mostly; Krueger et al. [28], cited in §2, maintain a
// small write-optimised delta next to it and merge periodically):
//
//   - a sealed base Table holds the bulk of the data in a scan-optimised
//     layout;
//   - appended rows accumulate in a small code-encoded delta, scanned
//     row-at-a-time during queries (the delta is expected to stay small);
//   - Merge folds the delta into a fresh sealed Table, rebuilding the
//     storage layouts.
//
// Row numbers are stable: base rows keep their positions, delta rows
// follow them in append order, and Merge preserves the combined order.
type DeltaTable struct {
	base       *Table
	deltaCodes map[string][]uint32
	deltaNulls map[string][]bool
	deltaLen   int
}

// NewDeltaTable wraps a sealed table for appending.
func NewDeltaTable(base *Table) *DeltaTable {
	d := &DeltaTable{
		base:       base,
		deltaCodes: make(map[string][]uint32, len(base.cols)),
		deltaNulls: make(map[string][]bool, len(base.cols)),
	}
	for _, c := range base.cols {
		d.deltaCodes[c.name] = nil
		d.deltaNulls[c.name] = nil
	}
	return d
}

// Len returns the total number of rows (base + delta).
func (d *DeltaTable) Len() int { return d.base.n + d.deltaLen }

// DeltaLen returns the number of unmerged appended rows.
func (d *DeltaTable) DeltaLen() int { return d.deltaLen }

// Base returns the sealed base table.
func (d *DeltaTable) Base() *Table { return d.base }

// AppendRow appends one row. vals maps column names to native values —
// int64 for integer columns, float64 for decimal, string for string,
// uint32 for code columns — or nil for NULL. Every column must be present.
// Values are encoded immediately, so domain violations fail the append
// atomically (no partial row is retained).
func (d *DeltaTable) AppendRow(vals map[string]any) error {
	if len(vals) != len(d.base.cols) {
		return fmt.Errorf("byteslice: row has %d values, table has %d columns", len(vals), len(d.base.cols))
	}
	codes := make([]uint32, len(d.base.cols))
	nulls := make([]bool, len(d.base.cols))
	for i, c := range d.base.cols {
		v, ok := vals[c.name]
		if !ok {
			return fmt.Errorf("byteslice: row is missing column %s", c.name)
		}
		if v == nil {
			nulls[i] = true
			continue
		}
		code, err := c.encodeValue(v)
		if err != nil {
			return err
		}
		codes[i] = code
	}
	for i, c := range d.base.cols {
		d.deltaCodes[c.name] = append(d.deltaCodes[c.name], codes[i])
		d.deltaNulls[c.name] = append(d.deltaNulls[c.name], nulls[i])
	}
	d.deltaLen++
	return nil
}

// encodeValue encodes one native value for the column, type-checked.
func (c *Column) encodeValue(v any) (uint32, error) {
	switch c.kind {
	case KindInt:
		x, ok := v.(int64)
		if !ok {
			return 0, fmt.Errorf("byteslice: column %s wants int64, got %T", c.name, v)
		}
		return c.ints.Encode(x)
	case KindDecimal:
		x, ok := v.(float64)
		if !ok {
			return 0, fmt.Errorf("byteslice: column %s wants float64, got %T", c.name, v)
		}
		return c.decs.Encode(x)
	case KindString:
		x, ok := v.(string)
		if !ok {
			return 0, fmt.Errorf("byteslice: column %s wants string, got %T", c.name, v)
		}
		code, err := c.dict.Encode(x)
		if err != nil {
			return 0, fmt.Errorf("byteslice: column %s: %w (the dictionary is fixed at build time)", c.name, err)
		}
		return code, nil
	case KindCode:
		x, ok := v.(uint32)
		if !ok {
			return 0, fmt.Errorf("byteslice: column %s wants uint32, got %T", c.name, v)
		}
		if x > c.maxCode() {
			return 0, fmt.Errorf("byteslice: column %s: code %d exceeds width %d", c.name, x, c.Width())
		}
		return x, nil
	}
	return 0, fmt.Errorf("byteslice: unknown kind %v", c.kind)
}

// Filter evaluates the conjunction of the filters over base and delta rows.
// The base is scanned with its storage layouts; the delta row-at-a-time.
func (d *DeltaTable) Filter(filters []Filter, opts ...QueryOption) (*Result, error) {
	return d.eval(filters, false, opts)
}

// FilterAny evaluates the disjunction over base and delta rows.
func (d *DeltaTable) FilterAny(filters []Filter, opts ...QueryOption) (*Result, error) {
	return d.eval(filters, true, opts)
}

// deltaPred is a filter resolved once against the base table's encoders
// for row-at-a-time evaluation over unmerged rows: the column (by name
// and by position) and its translated predicate, hoisted out of the
// per-row loop so resolution work — and resolution errors — happen once
// per query, not once per row.
type deltaPred struct {
	idx     int // position in base.cols, for positional code storage
	name    string
	pred    layout.Predicate
	trivial *bool
}

// resolveDeltaPreds translates filters into code space against base's
// encoders. A bad column name or filter constant fails here, up front,
// instead of surfacing (or worse, being swallowed) mid-scan.
func resolveDeltaPreds(base *Table, filters []Filter) ([]deltaPred, error) {
	rs := make([]deltaPred, len(filters))
	for i, f := range filters {
		col, err := base.Column(f.Col)
		if err != nil {
			return nil, err
		}
		pred, trivial, err := col.predicate(f)
		if err != nil {
			return nil, err
		}
		idx := -1
		for j, c := range base.cols {
			if c == col {
				idx = j
				break
			}
		}
		rs[i] = deltaPred{idx: idx, name: col.name, pred: pred, trivial: trivial}
	}
	return rs, nil
}

// evalDeltaRow combines the hoisted predicates over one delta row; code
// fetches the row's (code, isNull) pair for a predicate's column.
func evalDeltaRow(preds []deltaPred, disjunct bool, code func(p deltaPred) (uint32, bool)) bool {
	match := !disjunct
	for _, p := range preds {
		c, isNull := code(p)
		var m bool
		switch {
		case isNull:
			m = false // comparisons with NULL are never true
		case p.trivial != nil:
			m = *p.trivial
		default:
			m = p.pred.Eval(c)
		}
		if disjunct {
			match = match || m
		} else {
			match = match && m
		}
	}
	return match
}

func (d *DeltaTable) eval(filters []Filter, disjunct bool, opts []QueryOption) (*Result, error) {
	var baseRes *Result
	var err error
	if disjunct {
		baseRes, err = d.base.FilterAny(filters, opts...)
	} else {
		baseRes, err = d.base.Filter(filters, opts...)
	}
	if err != nil {
		return nil, err
	}
	out := bitvec.New(d.Len())
	out.CopyBits(baseRes.bv)

	// Delta rows: hoist filter resolution, then evaluate row-at-a-time.
	// The context (WithContext) is observed between row batches, and the
	// scan lands as a stage in the base evaluation's collector, so
	// Result.Stats() shows base and delta together.
	preds, err := resolveDeltaPreds(d.base, filters)
	if err != nil {
		return nil, err
	}
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	st, done := cfg.stage(baseRes.stats, "scan(delta)", "delta")
	defer done()
	for r := 0; r < d.deltaLen; r++ {
		if r%8192 == 0 {
			if err := cfg.ctxErr(); err != nil {
				return nil, err
			}
		}
		match := evalDeltaRow(preds, disjunct, func(p deltaPred) (uint32, bool) {
			return d.deltaCodes[p.name][r], d.deltaNulls[p.name][r]
		})
		out.Set(d.base.n+r, match)
	}
	if st != nil {
		st.AddRows(int64(d.deltaLen), int64(d.deltaLen*5*len(preds)))
	}
	return &Result{bv: out, explain: baseRes.explain, zoneSkipped: baseRes.zoneSkipped, stats: baseRes.stats}, nil
}

// rebuildLike reseals codes into a column sharing c's identity: the same
// name, kind and encoders, the given storage format, zone maps rebuilt
// when c carried them, and c's workload counters shared so the adaptive
// layout decision survives the rebuild instead of restarting cold.
func rebuildLike(c *Column, format Format, codes []uint32, nullRows []int) (*Column, error) {
	var (
		col *Column
		err error
	)
	switch c.kind {
	case KindInt:
		col, err = rebuildColumn(c.name, KindInt, format, c.Width(), codes,
			c.ints.Min(), c.ints.Max(), 0, 0, 0, nil, nullRows)
	case KindDecimal:
		col, err = rebuildColumn(c.name, KindDecimal, format, c.Width(), codes,
			0, 0, c.decs.Min(), c.decs.Max(), c.decs.Digits(), nil, nullRows)
	case KindString:
		col, err = rebuildColumn(c.name, KindString, format, c.Width(), codes,
			0, 0, 0, 0, 0, c.dict.Values(), nullRows)
	default:
		col, err = rebuildColumn(c.name, KindCode, format, c.Width(), codes,
			0, 0, 0, 0, 0, nil, nullRows)
	}
	if err != nil {
		return nil, err
	}
	if c.HasZoneMaps() {
		if bs, ok := byteSliceOf(col.data); ok {
			bs.BuildZoneMaps()
		}
	}
	if col.wl = c.wl; col.wl == nil {
		col.wl = &obs.ColumnWorkload{}
	}
	return col, nil
}

// Merge seals the delta into a new Table (with the base's formats, or the
// override passed via WithFormat) and returns it. The receiver is left
// unchanged; typical use is d = NewDeltaTable(merged).
//
//bsvet:rootctx Merge is the no-cancellation compatibility wrapper; callers wanting cancellation use MergeContext
func (d *DeltaTable) Merge(opts ...ColumnOption) (*Table, error) {
	return d.MergeContext(context.Background(), opts...)
}

// MergeContext is Merge with cancellation: the context is observed
// between columns while materialising and rebuilding, so a huge merge can
// be abandoned mid-build (the receiver is untouched either way). Merged
// columns keep their zone maps and keep feeding the same workload
// counters as their sources.
func (d *DeltaTable) MergeContext(ctx context.Context, opts ...ColumnOption) (*Table, error) {
	override := applyOpts(opts)
	cols := make([]*Column, 0, len(d.base.cols))
	for _, c := range d.base.cols {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		total := d.base.n + d.deltaLen
		baseCodes, err := materializeCodes(ctx, c)
		if err != nil {
			return nil, queryErr(err)
		}
		codes := make([]uint32, total)
		copy(codes, baseCodes)
		copy(codes[d.base.n:], d.deltaCodes[c.name])

		var nullRows []int
		if c.nulls != nil {
			for _, r := range c.nulls.Positions(nil) {
				nullRows = append(nullRows, int(r))
			}
		}
		for r, isNull := range d.deltaNulls[c.name] {
			if isNull {
				nullRows = append(nullRows, d.base.n+r)
			}
		}

		format := c.Format()
		if override.format != "" {
			format = override.format
		}
		col, err := rebuildLike(c, format, codes, nullRows)
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
	}
	return NewTable(cols...)
}
