// Command bsinspect visualises how a handful of values are laid out under
// each storage format — an educational companion to §2 and §3 of the paper.
//
// Usage:
//
//	bsinspect -k 11 -values 1024,129,4,2047
//	bsinspect -k 11 -values 1024,129 -scan "<" -const 129
//	bsinspect -ingest /path/to/ingest-dir
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"byteslice/internal/bitvec"
	"byteslice/internal/compress"
	"byteslice/internal/core"
	"byteslice/internal/ingest"
	"byteslice/internal/kernel"
	"byteslice/internal/layout"
	"byteslice/internal/layout/bp"
	"byteslice/internal/layout/hbp"
	"byteslice/internal/layout/vbp"
	"byteslice/internal/perf"
	"byteslice/internal/plan"
	"byteslice/internal/simd"
)

func main() {
	var (
		k      = flag.Int("k", 11, "code width in bits")
		vals   = flag.String("values", "1024,129,4,2047,0", "comma-separated code values")
		scan   = flag.String("scan", "", "optionally evaluate a predicate: one of < <= > >= = <>")
		konst  = flag.Uint64("const", 0, "predicate constant")
		zones  = flag.Bool("zones", false, "with -scan: show per-segment zone-map verdicts and the cost-based plan")
		compr  = flag.Bool("compression", false, "show the compressed-layout report: block modes, footprints and the build decision")
		lay    = flag.Bool("layout", false, "show the workload-driven layout decision for -scans/-lookups row counts")
		scans  = flag.Int64("scans", 0, "with -layout: scan rows observed on the column")
		looks  = flag.Int64("lookups", 0, "with -layout: lookup rows observed on the column")
		ingDir = flag.String("ingest", "", "inspect an ingest directory: manifest, epoch artifacts and WAL health (non-mutating)")
	)
	flag.Parse()

	if *ingDir != "" {
		report, err := ingestReport(*ingDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsinspect:", err)
			os.Exit(1)
		}
		fmt.Print(report)
		return
	}

	codes, err := parseValues(*vals, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsinspect:", err)
		os.Exit(2)
	}

	fmt.Printf("%d codes of width k=%d bits\n\n", len(codes), *k)
	for i, c := range codes {
		fmt.Printf("  v%-3d = %*b (%d)\n", i+1, *k, c, c)
	}

	bs := core.New(codes, *k, nil)
	fmt.Printf("\n— ByteSlice: %d byte slice(s), %d codes per segment, %d bytes —\n",
		bs.NumSlices(), core.SegmentSize, bs.SizeBytes())
	for j := 0; j < bs.NumSlices(); j++ {
		fmt.Printf("  BS%d:", j+1)
		for i := range codes {
			fmt.Printf(" %08b", bs.SliceByte(j, i))
		}
		fmt.Println()
	}

	v := vbp.New(codes, *k, nil)
	fmt.Printf("\n— VBP: %d-code segments, %d words of 256 bits each, %d bytes —\n",
		vbp.SegmentSize, *k, v.SizeBytes())
	fmt.Printf("  (word Wi holds bit i of every code; bit j of Wi belongs to code j)\n")
	for i := 0; i < *k; i++ {
		fmt.Printf("  W%-3d:", i+1)
		for _, c := range codes {
			fmt.Printf(" %d", c>>uint(*k-1-i)&1)
		}
		fmt.Println()
	}

	h := hbp.New(codes, *k, nil)
	fmt.Printf("\n— HBP: %d-bit fields with delimiter, %d codes per 256-bit word, %d bytes —\n",
		*k+1, h.PerWord(), h.SizeBytes())
	perBank := h.PerWord() / 4
	for b := 0; b*perBank < len(codes); b++ {
		fmt.Printf("  bank %d:", b)
		for s := 0; s < perBank && b*perBank+s < len(codes); s++ {
			fmt.Printf(" [0|%0*b]", *k, codes[b*perBank+s])
		}
		fmt.Println("   (delimiter bit | value, low slots first)")
	}

	b := bp.New(codes, *k, nil)
	fmt.Printf("\n— Bit-Packed: %d bits used, %d bytes allocated —\n", len(codes)**k, b.SizeBytes())

	if *compr {
		fmt.Printf("\n%s", compressionReport(codes, *k))
	}

	if *lay {
		fmt.Printf("\n%s", layoutReport(*k, *scans, *looks))
	}

	if *scan != "" {
		op, err := parseOp(*scan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsinspect:", err)
			os.Exit(2)
		}
		p := layout.Predicate{Op: op, C1: uint32(*konst)}
		prof := perf.NewProfileNoCache()
		out := bitvec.New(len(codes))
		bs.Scan(simd.New(prof), p, out)
		fmt.Printf("\nScan %s on ByteSlice:\n", p)
		for i, c := range codes {
			mark := " "
			if out.Get(i) {
				mark = "✓"
			}
			fmt.Printf("  %s v%-3d = %d\n", mark, i+1, c)
		}
		fmt.Printf("%d of %d match; %s\n", out.Count(), len(codes), prof)
		if *zones {
			fmt.Printf("\n%s", zoneReport(codes, *k, p))
		}
	} else if *zones {
		fmt.Fprintln(os.Stderr, "bsinspect: -zones needs -scan (a predicate to classify segments against)")
		os.Exit(2)
	}
}

// zoneReport renders the zone-map view of the sample column for one
// predicate — each segment's first-byte bounds with its zone verdict, the
// resulting prune rate, and the cost-based planner's Explain for the scan
// (workers pinned to 1 so the output is machine-independent).
func zoneReport(codes []uint32, k int, p layout.Predicate) string {
	var b strings.Builder
	bs := core.New(codes, k, nil)
	bs.BuildZoneMaps()
	mn, mx := bs.ZoneBounds()
	c1, c2 := bs.ZoneFirstBytes(p)
	fmt.Fprintf(&b, "— Zone maps: %d segment(s) of %d codes, first-byte min/max —\n",
		bs.Segments(), core.SegmentSize)
	for seg := 0; seg < bs.Segments(); seg++ {
		verdict := "scan"
		switch d := core.ZoneDecisionBytes(p.Op, mn[seg], mx[seg], c1, c2); {
		case d > 0:
			verdict = "all-match, skipped"
		case d < 0:
			verdict = "no-match, skipped"
		}
		fmt.Fprintf(&b, "  seg %-3d [%3d, %3d] → %s\n", seg, mn[seg], mx[seg], verdict)
	}
	fmt.Fprintf(&b, "  prune rate for %s: %.2f\n\n", p, bs.ZonePruneRate(p))

	// The sample column has no histogram, so the planner sees the exact
	// selectivity of the predicate over the given values.
	out := bitvec.New(len(codes))
	kernel.Scan(bs, p, out)
	d := plan.Plan(
		plan.Query{Rows: len(codes), Segments: bs.Segments(), Workers: 1, MaxWorkers: 1},
		[]plan.Pred{{
			Col:        "values",
			Slices:     bs.NumSlices(),
			Sel:        float64(out.Count()) / float64(len(codes)),
			ZonePrune:  bs.ZonePruneRate(p),
			HasZoneMap: true,
		}})
	b.WriteString(d.Explain())
	b.WriteString("\n")
	return b.String()
}

// layoutReport renders the workload-driven layout decision for a column
// of width k that has served the given scan and lookup row counts: the
// scan:lookup ratio, both layouts' costs under the planner's nanosecond
// terms, and the winner — the same plan.LayoutFor decision that
// Table.AutoLayout applies per column from its observed workload.
func layoutReport(k int, scanRows, lookupRows int64) string {
	var b strings.Builder
	slices := (k + 7) / 8
	d := plan.LayoutFor(slices, scanRows, lookupRows)
	fmt.Fprintf(&b, "— Layout decision: k=%d (%d byte slice(s)), workload %d scan row(s), %d lookup row(s) —\n",
		k, slices, scanRows, lookupRows)
	if lookupRows > 0 {
		fmt.Fprintf(&b, "  scan:lookup ratio %.2f\n", float64(scanRows)/float64(lookupRows))
	} else {
		fmt.Fprintf(&b, "  scan:lookup ratio n/a (no lookups observed; scans keep the default layout)\n")
	}
	fmt.Fprintf(&b, "  ByteSlice est %8.0f ns  (scans priced per 32-code segment, lookups stitch %d slice(s))\n",
		d.ByteSliceNs, slices)
	fmt.Fprintf(&b, "  HBP       est %8.0f ns  (scans word-parallel without early stop, lookups load one bank)\n",
		d.HBPNs)
	chosen := "ByteSlice"
	if d.HBP {
		chosen = "HBP"
	}
	fmt.Fprintf(&b, "  chosen layout: %s\n", chosen)
	return b.String()
}

// compressionReport renders the compressed ByteSlice view of the sample
// column: every 512-code block's mode (frame-of-reference or delta), exact
// bounds and data footprint, the column totals against the raw ByteSlice
// layout, and the bytes-moved model's build-time decision. Everything is a
// pure function of the codes, so the output is machine-independent.
func compressionReport(codes []uint32, k int) string {
	var b strings.Builder
	cc := compress.New(codes, k, nil)
	st := cc.ColumnStats()
	offs := cc.DataOffs()
	fmt.Fprintf(&b, "— Compressed ByteSlice: %d block(s) of %d codes, FOR/delta with per-code length control —\n",
		st.Blocks, compress.BlockCodes)
	for blk := 0; blk < cc.Blocks(); blk++ {
		mode := "for  "
		if cc.BlockDelta(blk) {
			mode = "delta"
		}
		uni := ""
		if !cc.BlockDelta(blk) && cc.BlockUniformLen(blk) == 1 {
			uni = ", uniform 1B (no-decode scan)"
		}
		fmt.Fprintf(&b, "  block %-3d %4d row(s)  %s ref=%-6d bounds [%d, %d]  %d data byte(s)%s\n",
			blk, cc.BlockRows(blk), mode, cc.Refs()[blk], cc.Mins()[blk], cc.Maxs()[blk],
			offs[blk+1]-offs[blk], uni)
	}
	fmt.Fprintf(&b, "  raw ByteSlice %d bytes → compressed %d bytes (ratio %.2fx, %.2f B/row)\n",
		st.RawBytes, st.CompBytes, st.Ratio, st.BytesPerRow)
	fmt.Fprintf(&b, "  block prune estimate %.2f, delta blocks %d/%d, uniform-1 blocks %d/%d\n",
		st.PruneEst, st.DeltaBlocks, st.Blocks, st.Uniform1, st.Blocks)
	decision := "stay raw (bytes-moved model prices the SWAR scan cheaper)"
	if st.Compressed {
		decision = "compress (bytes-moved model prices the fused scan cheaper)"
	}
	fmt.Fprintf(&b, "  decision: %s\n", decision)
	return b.String()
}

// ingestReport renders an ingest directory's durability state without
// mutating it: the manifest's current epoch, each artifact's presence and
// size, and the WAL's frame-level health (clean, torn tail, or corrupt).
func ingestReport(dir string) (string, error) {
	m, err := ingest.ReadManifest(dir)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "— Ingest directory %s —\n", dir)
	fmt.Fprintf(&b, "  manifest: epoch %d, base %s, wal %s\n", m.Epoch, m.Base, m.WAL)

	basePath := filepath.Join(dir, m.Base)
	if fi, err := os.Stat(basePath); err != nil {
		fmt.Fprintf(&b, "  base:     MISSING (%v)\n", err)
	} else {
		fmt.Fprintf(&b, "  base:     %d bytes\n", fi.Size())
	}

	info, err := ingest.Inspect(filepath.Join(dir, m.WAL))
	if err != nil {
		return "", err
	}
	switch {
	case info.Err != nil:
		fmt.Fprintf(&b, "  wal:      CORRUPT at byte %d: %v\n", info.GoodBytes, info.Err)
		fmt.Fprintf(&b, "            %d intact row(s) in the clean prefix\n", info.Rows)
	default:
		fmt.Fprintf(&b, "  wal:      epoch %d over %d base rows, %d appended row(s), %s tail\n",
			info.Epoch, info.BaseRows, info.Rows, info.Tail)
		if info.Tail == "torn" {
			fmt.Fprintf(&b, "            %d/%d bytes intact (%d torn bytes would be truncated on open)\n",
				info.GoodBytes, info.FileBytes, info.FileBytes-info.GoodBytes)
		}
		if info.Epoch != m.Epoch {
			fmt.Fprintf(&b, "            MISMATCH: WAL epoch %d vs manifest epoch %d\n", info.Epoch, m.Epoch)
		}
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	for _, e := range entries {
		name := e.Name()
		if name == ingest.ManifestName || name == m.Base || name == m.WAL {
			continue
		}
		if strings.HasPrefix(name, "base-") || strings.HasPrefix(name, "wal-") || strings.HasSuffix(name, ".tmp") {
			fmt.Fprintf(&b, "  orphan:   %s (unreferenced; removed on next open)\n", name)
		}
	}
	return b.String(), nil
}

func parseValues(s string, k int) ([]uint32, error) {
	parts := strings.Split(s, ",")
	codes := make([]uint32, 0, len(parts))
	max := uint64(1)<<uint(k) - 1
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", p, err)
		}
		if v > max {
			return nil, fmt.Errorf("value %d exceeds %d-bit domain", v, k)
		}
		codes = append(codes, uint32(v))
	}
	if len(codes) == 0 {
		return nil, fmt.Errorf("no values")
	}
	return codes, nil
}

func parseOp(s string) (layout.Op, error) {
	switch s {
	case "<":
		return layout.Lt, nil
	case "<=":
		return layout.Le, nil
	case ">":
		return layout.Gt, nil
	case ">=":
		return layout.Ge, nil
	case "=":
		return layout.Eq, nil
	case "<>", "!=":
		return layout.Ne, nil
	}
	return 0, fmt.Errorf("unknown operator %q", s)
}
