package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"byteslice"
	"byteslice/internal/layout"
)

func TestParseValues(t *testing.T) {
	codes, err := parseValues("1, 2,2047", 11)
	if err != nil || len(codes) != 3 || codes[2] != 2047 {
		t.Fatalf("parseValues = %v (%v)", codes, err)
	}
	for _, bad := range []string{"", "x", "2048", "-1"} {
		if _, err := parseValues(bad, 11); err == nil {
			t.Fatalf("parseValues(%q) accepted", bad)
		}
	}
}

// TestZoneReportGolden pins the -zones rendering: segment verdicts, prune
// rate and the planner's Explain (workers pinned, so machine-independent).
func TestZoneReportGolden(t *testing.T) {
	codes := make([]uint32, 0, 40)
	for i := uint32(0); i < 32; i++ {
		codes = append(codes, i)
	}
	for i := uint32(0); i < 8; i++ {
		codes = append(codes, 1800+i)
	}
	got := zoneReport(codes, 11, layout.Predicate{Op: layout.Lt, C1: 16})
	want := `— Zone maps: 2 segment(s) of 32 codes, first-byte min/max —
  seg 0   [  0,   3] → scan
  seg 1   [225, 225] → no-match, skipped
  prune rate for v < 16: 0.50

plan: 1 predicate(s) over 40 rows (2 segments), conjunction
  order: values(sel=0.400, zone=0.50)
  strategy: column-first (est 14ns; column-first 14ns, predicate-first n/a, baseline 14ns)
  workers: 1 (pinned)
`
	if got != want {
		t.Fatalf("zone report drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestCompressionReportGolden pins the -compression rendering: block modes,
// footprints and the build decision are pure functions of the codes.
func TestCompressionReportGolden(t *testing.T) {
	codes := make([]uint32, 0, 40)
	for i := uint32(0); i < 32; i++ {
		codes = append(codes, i)
	}
	for i := uint32(0); i < 8; i++ {
		codes = append(codes, 1800+i)
	}
	got := compressionReport(codes, 11)
	want := `— Compressed ByteSlice: 1 block(s) of 512 codes, FOR/delta with per-code length control —
  block 0     40 row(s)  delta ref=0      bounds [0, 1807]  513 data byte(s)
  raw ByteSlice 128 bytes → compressed 666 bytes (ratio 0.19x, 16.02 B/row)
  block prune estimate 0.12, delta blocks 1/1, uniform-1 blocks 0/1
  decision: stay raw (bytes-moved model prices the SWAR scan cheaper)
`
	if got != want {
		t.Fatalf("compression report drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// A full block of narrow-span values lands on the uniform-1 fast path
	// and flips the decision to compress.
	low := make([]uint32, 512)
	for i := range low {
		low[i] = 1024 + uint32(i%100)
	}
	lowReport := compressionReport(low, 11)
	if !strings.Contains(lowReport, "uniform-1 blocks 1/1") ||
		!strings.Contains(lowReport, "decision: compress") {
		t.Fatalf("low-entropy report missed the uniform-1 fast path:\n%s", lowReport)
	}
}

// TestLayoutReportGolden pins the -layout rendering: the decision is a
// pure function of width and workload counts, so the output is exact.
func TestLayoutReportGolden(t *testing.T) {
	got := layoutReport(11, 1000, 500)
	want := `— Layout decision: k=11 (2 byte slice(s)), workload 1000 scan row(s), 500 lookup row(s) —
  scan:lookup ratio 2.00
  ByteSlice est     3162 ns  (scans priced per 32-code segment, lookups stitch 2 slice(s))
  HBP       est     5300 ns  (scans word-parallel without early stop, lookups load one bank)
  chosen layout: ByteSlice
`
	if got != want {
		t.Fatalf("layout report drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	got = layoutReport(32, 0, 10000)
	want = `— Layout decision: k=32 (4 byte slice(s)), workload 0 scan row(s), 10000 lookup row(s) —
  scan:lookup ratio 0.00
  ByteSlice est   116000 ns  (scans priced per 32-code segment, lookups stitch 4 slice(s))
  HBP       est    40000 ns  (scans word-parallel without early stop, lookups load one bank)
  chosen layout: HBP
`
	if got != want {
		t.Fatalf("lookup-only layout report drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// No lookups: the ratio is undefined and the default layout stays.
	if !strings.Contains(layoutReport(8, 5000, 0), "ratio n/a (no lookups observed") {
		t.Fatal("zero-lookup report lost the n/a ratio line")
	}
	if !strings.Contains(layoutReport(8, 5000, 0), "chosen layout: ByteSlice") {
		t.Fatal("zero-lookup report should keep ByteSlice")
	}
}

func TestParseOp(t *testing.T) {
	want := map[string]layout.Op{
		"<": layout.Lt, "<=": layout.Le, ">": layout.Gt, ">=": layout.Ge,
		"=": layout.Eq, "<>": layout.Ne, "!=": layout.Ne,
	}
	for s, op := range want {
		got, err := parseOp(s)
		if err != nil || got != op {
			t.Fatalf("parseOp(%q) = %v (%v)", s, got, err)
		}
	}
	if _, err := parseOp("between"); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// TestIngestReport pins the -ingest directory report: a healthy directory,
// a torn WAL tail, and an orphan artifact are all identified, and the
// report never mutates the directory.
func TestIngestReport(t *testing.T) {
	dir := t.TempDir()
	qty, err := byteslice.NewIntColumn("qty", []int64{5, 50, 7}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := byteslice.NewTable(qty)
	if err != nil {
		t.Fatal(err)
	}
	it, err := byteslice.CreateIngest(dir, tbl, byteslice.WithAutoMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := it.Append(map[string]any{"qty": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ingestReport(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"epoch 1", "base-1.bslc", "wal-1.log", "5 appended row(s)", "clean tail"} {
		if !strings.Contains(got, want) {
			t.Fatalf("report missing %q:\n%s", want, got)
		}
	}

	// Tear the WAL tail and drop an orphan: the report flags both, and
	// does not repair anything.
	walPath := filepath.Join(dir, "wal-1.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "base-9.bslc"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = ingestReport(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"torn tail", "orphan:   base-9.bslc"} {
		if !strings.Contains(got, want) {
			t.Fatalf("report missing %q:\n%s", want, got)
		}
	}
	after, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data)-3 {
		t.Fatal("inspection mutated the WAL")
	}
}
