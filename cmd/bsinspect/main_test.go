package main

import (
	"testing"

	"byteslice/internal/layout"
)

func TestParseValues(t *testing.T) {
	codes, err := parseValues("1, 2,2047", 11)
	if err != nil || len(codes) != 3 || codes[2] != 2047 {
		t.Fatalf("parseValues = %v (%v)", codes, err)
	}
	for _, bad := range []string{"", "x", "2048", "-1"} {
		if _, err := parseValues(bad, 11); err == nil {
			t.Fatalf("parseValues(%q) accepted", bad)
		}
	}
}

// TestZoneReportGolden pins the -zones rendering: segment verdicts, prune
// rate and the planner's Explain (workers pinned, so machine-independent).
func TestZoneReportGolden(t *testing.T) {
	codes := make([]uint32, 0, 40)
	for i := uint32(0); i < 32; i++ {
		codes = append(codes, i)
	}
	for i := uint32(0); i < 8; i++ {
		codes = append(codes, 1800+i)
	}
	got := zoneReport(codes, 11, layout.Predicate{Op: layout.Lt, C1: 16})
	want := `— Zone maps: 2 segment(s) of 32 codes, first-byte min/max —
  seg 0   [  0,   3] → scan
  seg 1   [225, 225] → no-match, skipped
  prune rate for v < 16: 0.50

plan: 1 predicate(s) over 40 rows (2 segments), conjunction
  order: values(sel=0.400, zone=0.50)
  strategy: column-first (est 14ns; column-first 14ns, predicate-first n/a, baseline 14ns)
  workers: 1 (pinned)
`
	if got != want {
		t.Fatalf("zone report drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestParseOp(t *testing.T) {
	want := map[string]layout.Op{
		"<": layout.Lt, "<=": layout.Le, ">": layout.Gt, ">=": layout.Ge,
		"=": layout.Eq, "<>": layout.Ne, "!=": layout.Ne,
	}
	for s, op := range want {
		got, err := parseOp(s)
		if err != nil || got != op {
			t.Fatalf("parseOp(%q) = %v (%v)", s, got, err)
		}
	}
	if _, err := parseOp("between"); err == nil {
		t.Fatal("unknown op accepted")
	}
}
