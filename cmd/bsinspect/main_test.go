package main

import (
	"testing"

	"byteslice/internal/layout"
)

func TestParseValues(t *testing.T) {
	codes, err := parseValues("1, 2,2047", 11)
	if err != nil || len(codes) != 3 || codes[2] != 2047 {
		t.Fatalf("parseValues = %v (%v)", codes, err)
	}
	for _, bad := range []string{"", "x", "2048", "-1"} {
		if _, err := parseValues(bad, 11); err == nil {
			t.Fatalf("parseValues(%q) accepted", bad)
		}
	}
}

func TestParseOp(t *testing.T) {
	want := map[string]layout.Op{
		"<": layout.Lt, "<=": layout.Le, ">": layout.Gt, ">=": layout.Ge,
		"=": layout.Eq, "<>": layout.Ne, "!=": layout.Ne,
	}
	for s, op := range want {
		got, err := parseOp(s)
		if err != nil || got != op {
			t.Fatalf("parseOp(%q) = %v (%v)", s, got, err)
		}
	}
	if _, err := parseOp("between"); err == nil {
		t.Fatal("unknown op accepted")
	}
}
