// Command tpch runs the TPC-H selection–projection suite (and optionally
// the skewed and real-data variants) over all four storage layouts,
// printing per-query speed-ups over Bit-Packed and the scan/lookup time
// breakdown — the §4.2 evaluation of the paper.
//
// Usage:
//
//	tpch -rows 200000
//	tpch -skew 1
//	tpch -real
package main

import (
	"flag"
	"fmt"
	"os"

	"byteslice/internal/cache"
	"byteslice/internal/exec"
	"byteslice/internal/layouts"
	"byteslice/internal/perf"
	"byteslice/internal/realdata"
	"byteslice/internal/table"
	"byteslice/internal/tpch"
)

func main() {
	var (
		rows     = flag.Int("rows", 200_000, "wide-table rows")
		skew     = flag.Float64("skew", 0, "Zipf skew factor for the skewed variant (0 = standard)")
		seed     = flag.Uint64("seed", 0xB17E, "generation seed")
		real     = flag.Bool("real", false, "run the ADULT/BASEBALL real-data suites instead")
		validate = flag.Bool("validate", true, "cross-check match counts against the scalar oracle")
	)
	flag.Parse()

	if *real {
		for _, d := range []*realdata.Dataset{realdata.Adult(*seed), realdata.Baseball(*seed)} {
			fmt.Printf("== %s (%d rows) ==\n", d.Name, len(d.Raw[d.Specs[0].Name]))
			runSuite(d.Queries, func(name string) *table.Table {
				return d.Build(layouts.Builders[name], cache.NewArena(64))
			}, len(d.Raw[d.Specs[0].Name]), nil)
		}
		return
	}

	d := tpch.Generate(tpch.Config{Rows: *rows, Skew: *skew, Seed: *seed})
	fmt.Printf("== TPC-H wide table: %d rows, skew %.1f ==\n", *rows, *skew)
	var check func(q tpch.Query, matches int) error
	if *validate {
		check = func(q tpch.Query, matches int) error { return tpch.Validate(d, q, matches) }
	}
	runSuite(tpch.Queries(d), func(name string) *table.Table {
		return d.Build(layouts.Builders[name], cache.NewArena(64))
	}, *rows, check)
}

func runSuite(queries []tpch.Query, build func(string) *table.Table, n int,
	check func(tpch.Query, int) error) {

	results := map[string]map[string]tpch.Result{}
	for _, name := range layouts.Names {
		tb := build(name)
		results[name] = map[string]tpch.Result{}
		for _, q := range queries {
			strategy := exec.Baseline
			if name == "ByteSlice" {
				strategy = exec.ColumnFirst
			}
			res, err := tpch.Run(tb, q, strategy, perf.NewProfile())
			if err != nil {
				fmt.Fprintln(os.Stderr, "tpch:", err)
				os.Exit(1)
			}
			if check != nil {
				if err := check(q, res.Matches); err != nil {
					fmt.Fprintln(os.Stderr, "tpch: validation failed:", err)
					os.Exit(1)
				}
			}
			results[name][q.Name] = res
		}
	}

	fmt.Printf("\n%-6s  %-10s  %12s  %12s  %12s  %9s  %8s\n",
		"query", "layout", "scan c/t", "lookup c/t", "total c/t", "speedup", "matches")
	for _, q := range queries {
		base := results["BitPacked"][q.Name].TotalCycles()
		for _, name := range layouts.Names {
			r := results[name][q.Name]
			fmt.Printf("%-6s  %-10s  %12.4f  %12.4f  %12.4f  %8.2fx  %8d\n",
				q.Name, name,
				r.ScanCycles/float64(n), r.LookupCycles/float64(n),
				r.TotalCycles()/float64(n), base/r.TotalCycles(), r.Matches)
		}
	}
	fmt.Println()
}
