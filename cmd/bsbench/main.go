// Command bsbench regenerates the tables and figures of the ByteSlice
// paper's evaluation (§4 and appendices) on the emulated SIMD engine and
// cost model.
//
// Usage:
//
//	bsbench -list
//	bsbench -exp fig9
//	bsbench -exp all -n 1048576 -rows 200000
//
// Each experiment prints the same rows or series the paper plots; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-versus-reproduction results.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"strings"
	"time"

	"byteslice"
	"byteslice/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (e.g. fig9, table1, headline), or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		n        = flag.Int("n", 0, "micro-benchmark column length (default 1Mi)")
		lookups  = flag.Int("lookups", 0, "random lookups for the lookup experiments (default 100k)")
		rows     = flag.Int("rows", 0, "wide-table rows for the query experiments (default 200k)")
		seed     = flag.Uint64("seed", 0, "data generation seed")
		quick    = flag.Bool("quick", false, "use the fast smoke-test scale")
		widths   = flag.String("widths", "", "comma-separated code widths to sweep")
		format   = flag.String("format", "table", "output format: table or csv")
		jsonOut  = flag.String("json", "", "wall-clock scan benchmark: write native-vs-engine rows/sec per width and worker count to this file (e.g. BENCH_scan.json)")
		preds    = flag.Int("preds", 0, "with -json: also benchmark an N-way conjunction, column-first vs predicate-first")
		zonemaps = flag.Bool("zonemaps", false, "with -json: also benchmark zone-map-pruned scans on sorted and clustered data")
		agg      = flag.Bool("agg", false, "with -json: also benchmark the fused filter→sum kernel vs the two-pass path")
		compr    = flag.Bool("compression", false, "with -json: also benchmark the fused compressed scan vs the raw SWAR scan")
		lookup   = flag.Bool("lookup", false, "with -json: also benchmark batch lookups and ORDER-BY materialisation across the ByteSlice, HBP and compressed layouts")
		snapshot = flag.String("snapshot", "", "benchmark crash-atomic SaveFile/LoadFile on a generated table written to this path")
		ingestAx = flag.Bool("ingest", false, "with -json: also benchmark the write path — WAL-durable append throughput and scan latency while a delta is live")
		stats    = flag.Bool("stats", false, "after the run, print the process-wide query-observability snapshot as JSON")
		serveAx  = flag.Bool("serve", false, "with -json: also benchmark the serving layer — qps and p50/p99 request latency at 1/8/64 concurrent HTTP clients")
		obsServe = flag.String("obs-serve", "", "after the run, serve the observability registry over HTTP on this address (e.g. :8080; /stats and expvar's /debug/vars)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" && *jsonOut == "" && *snapshot == "" && *obsServe == "" {
		fmt.Fprintln(os.Stderr, "bsbench: -exp, -json, -snapshot or -obs-serve is required (try -list)")
		os.Exit(2)
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *lookups > 0 {
		cfg.Lookups = *lookups
	}
	if *rows > 0 {
		cfg.TPCHRows = *rows
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *widths != "" {
		cfg.Widths = cfg.Widths[:0]
		for _, w := range strings.Split(*widths, ",") {
			var k int
			if _, err := fmt.Sscanf(strings.TrimSpace(w), "%d", &k); err != nil || k < 1 || k > 32 {
				fmt.Fprintf(os.Stderr, "bsbench: bad width %q\n", w)
				os.Exit(2)
			}
			cfg.Widths = append(cfg.Widths, k)
		}
	}

	if *snapshot != "" {
		if err := snapshotBench(*snapshot, cfg.N, cfg.Seed); err != nil {
			fmt.Fprintln(os.Stderr, "bsbench:", err)
			os.Exit(1)
		}
		if *exp == "" && *jsonOut == "" {
			finish(*stats, *obsServe)
			return
		}
	}

	if *jsonOut != "" {
		// The wall-clock sweep defaults to the acceptance scenario: a
		// 1M-row column over a few representative widths, native serial
		// and worker-pool scans against the engine path.
		if *widths == "" {
			cfg.Widths = []int{8, 12, 16, 24, 32}
		}
		start := time.Now()
		workerCounts := []int{2, 4, 8}
		res := experiments.ScanBench(cfg, workerCounts)
		if *zonemaps {
			res.Results = append(res.Results, experiments.ZonedScanBench(cfg, workerCounts)...)
		}
		if *agg {
			res.Results = append(res.Results, experiments.AggBench(cfg, workerCounts)...)
		}
		if *compr {
			res.Results = append(res.Results, experiments.CompressedScanBench(cfg, workerCounts)...)
		}
		if *lookup {
			res.Results = append(res.Results, experiments.LookupBench(cfg)...)
		}
		if *preds > 1 {
			res.Results = append(res.Results, experiments.MultiPredBench(cfg, *preds, workerCounts)...)
		}
		if *ingestAx {
			entries, err := ingestBench(cfg.N, cfg.Seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bsbench:", err)
				os.Exit(1)
			}
			res.Results = append(res.Results, entries...)
		}
		if *serveAx {
			entries, err := serveBench(cfg.N, cfg.Seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bsbench:", err)
				os.Exit(1)
			}
			res.Results = append(res.Results, entries...)
		}
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsbench:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bsbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d measurements in %v)\n", *jsonOut, len(res.Results), time.Since(start).Round(time.Millisecond))
		if *exp == "" {
			finish(*stats, *obsServe)
			return
		}
	}

	if *exp == "" { // -stats / -obs-serve with no other work
		finish(*stats, *obsServe)
		return
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		reports, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsbench:", err)
			os.Exit(1)
		}
		for _, r := range reports {
			switch *format {
			case "csv":
				fmt.Print(r.CSV())
				fmt.Println()
			default:
				fmt.Println(r)
			}
		}
		if *format != "csv" {
			fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	finish(*stats, *obsServe)
}

// finish handles the observability flags after the requested work ran:
// -stats prints the process-wide registry snapshot, -obs-serve blocks
// serving it over HTTP (the library's ObsHandler on /stats, plus expvar's
// /debug/vars, which carries the same snapshot under the "byteslice" key).
func finish(stats bool, serve string) {
	if stats {
		buf, err := json.MarshalIndent(byteslice.StatsSnapshot(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsbench:", err)
			os.Exit(1)
		}
		fmt.Println(string(buf))
	}
	if serve != "" {
		mux := http.NewServeMux()
		mux.Handle("/stats", byteslice.ObsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		fmt.Fprintf(os.Stderr, "bsbench: serving observability on %s (/stats, /debug/vars)\n", serve)
		if err := http.ListenAndServe(serve, mux); err != nil {
			fmt.Fprintln(os.Stderr, "bsbench:", err)
			os.Exit(1)
		}
	}
}

// snapshotBench builds an n-row mixed-kind table, saves it crash-atomically
// with SaveFile, loads it back with LoadFile (verifying the checksummed v2
// stream end to end) and reports both durations and the snapshot size.
func snapshotBench(path string, n int, seed uint64) error {
	if n == 0 {
		n = 1 << 20
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15)) //nolint:gosec
	ints := make([]int64, n)
	decs := make([]float64, n)
	strs := make([]string, n)
	words := []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL"}
	for i := 0; i < n; i++ {
		ints[i] = int64(rng.IntN(100000))
		decs[i] = float64(rng.IntN(1000000)) / 100
		strs[i] = words[rng.IntN(len(words))]
	}
	ic, err := byteslice.NewIntColumn("quantity", ints, 0, 100000)
	if err != nil {
		return err
	}
	dc, err := byteslice.NewDecimalColumn("price", decs, 0, 10000, 2)
	if err != nil {
		return err
	}
	sc, err := byteslice.NewStringColumn("mode", strs)
	if err != nil {
		return err
	}
	tbl, err := byteslice.NewTable(ic, dc, sc)
	if err != nil {
		return err
	}

	start := time.Now()
	if err := tbl.SaveFile(path); err != nil {
		return err
	}
	saveDur := time.Since(start)
	info, err := os.Stat(path)
	if err != nil {
		return err
	}

	start = time.Now()
	loaded, err := byteslice.LoadFile(path)
	if err != nil {
		return err
	}
	loadDur := time.Since(start)
	if loaded.Len() != tbl.Len() {
		return fmt.Errorf("snapshot round trip lost rows: %d vs %d", loaded.Len(), tbl.Len())
	}

	// Same query on both tables must agree — a semantic round-trip check
	// beyond the row count, and it populates the observability registry
	// that -stats/-serve report.
	q := []byteslice.Filter{byteslice.IntFilter("quantity", byteslice.Lt, 50000)}
	before, err := tbl.Filter(q)
	if err != nil {
		return err
	}
	after, err := loaded.Filter(q)
	if err != nil {
		return err
	}
	if before.Count() != after.Count() {
		return fmt.Errorf("snapshot round trip changed query result: %d vs %d matches", before.Count(), after.Count())
	}

	mb := float64(info.Size()) / (1 << 20)
	fmt.Printf("snapshot %s: %d rows, %.1f MiB\n", path, n, mb)
	fmt.Printf("  save (write+fsync+rename): %8v  %7.1f MiB/s\n", saveDur.Round(time.Millisecond), mb/saveDur.Seconds())
	fmt.Printf("  load (read+CRC+rebuild):   %8v  %7.1f MiB/s\n", loadDur.Round(time.Millisecond), mb/loadDur.Seconds())
	return nil
}

// ingestBench benchmarks the write path end to end: WAL-durable appends
// into an IngestTable (synced and unsynced), scan latency while an
// unmerged delta is live, and the epoch-switch merge itself. Entries ride
// the ScanBench JSON shape (mode "ingest_*") so benchdiff tracks them
// across commits like every other axis.
func ingestBench(n int, seed uint64) ([]experiments.ScanBenchEntry, error) {
	if n == 0 || n > 1<<18 {
		n = 1 << 18 // append benchmarks are per-row; cap the loop
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xD1B54A32D192ED03)) //nolint:gosec
	baseRows := n / 4
	ints := make([]int64, baseRows)
	for i := range ints {
		ints[i] = int64(rng.IntN(100000))
	}
	ic, err := byteslice.NewIntColumn("quantity", ints, 0, 100000)
	if err != nil {
		return nil, err
	}
	width := ic.Width()

	bench := func(synced bool) (appendNs, scanNs, mergeNs float64, err error) {
		base, err := byteslice.NewTable(ic)
		if err != nil {
			return 0, 0, 0, err
		}
		dir, err := os.MkdirTemp("", "bsbench-ingest-*")
		if err != nil {
			return 0, 0, 0, err
		}
		defer os.RemoveAll(dir) //nolint:errcheck // temp dir
		it, err := byteslice.CreateIngest(dir, base,
			byteslice.WithAutoMerge(false),
			byteslice.WithSyncedAppends(synced),
			byteslice.WithDeltaBound(1<<30))
		if err != nil {
			return 0, 0, 0, err
		}
		defer it.Close() //nolint:errcheck // benchmark table

		rows := n
		if synced {
			rows = min(n, 4096) // per-append fsync: keep the loop sane
		}
		start := time.Now()
		for i := 0; i < rows; i++ {
			if err := it.Append(map[string]any{"quantity": int64(i % 100000)}); err != nil {
				return 0, 0, 0, err
			}
		}
		appendNs = float64(time.Since(start).Nanoseconds()) / float64(rows)

		q := []byteslice.Filter{byteslice.IntFilter("quantity", byteslice.Lt, 50000)}
		const scans = 16
		start = time.Now()
		for i := 0; i < scans; i++ {
			if _, err := it.Filter(q); err != nil {
				return 0, 0, 0, err
			}
		}
		scanNs = float64(time.Since(start).Nanoseconds()) / scans

		start = time.Now()
		if err := it.MergeNow(); err != nil {
			return 0, 0, 0, err
		}
		mergeNs = float64(time.Since(start).Nanoseconds())
		return appendNs, scanNs, mergeNs, nil
	}

	var out []experiments.ScanBenchEntry
	for _, c := range []struct {
		mode   string
		synced bool
	}{{"ingest_append", false}, {"ingest_append_synced", true}} {
		appendNs, scanNs, mergeNs, err := bench(c.synced)
		if err != nil {
			return nil, err
		}
		out = append(out, experiments.ScanBenchEntry{
			Width: width, Path: "native", Workers: 1, Mode: c.mode,
			NsPerScan: appendNs, RowsPerSec: 1e9 / appendNs,
		})
		if !c.synced {
			total := float64(baseRows + n)
			out = append(out,
				experiments.ScanBenchEntry{
					Width: width, Path: "native", Workers: 1, Mode: "ingest_scan_live",
					NsPerScan: scanNs, RowsPerSec: total * 1e9 / scanNs,
				},
				experiments.ScanBenchEntry{
					Width: width, Path: "native", Workers: 1, Mode: "ingest_merge",
					NsPerScan: mergeNs, RowsPerSec: total * 1e9 / mergeNs,
				})
		}
	}
	return out, nil
}
