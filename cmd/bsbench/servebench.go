package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"byteslice"
	"byteslice/internal/experiments"
	"byteslice/internal/obs"
	"byteslice/internal/serve"
)

// serveClientCounts are the concurrency levels the serving benchmark
// sweeps: a lone client, a moderate fan-in, and an overcommitted one.
var serveClientCounts = []int{1, 8, 64}

// serveBenchQueries is the per-level request budget; the predicate
// rotates over serveBenchPredicates distinct thresholds so the workload
// mixes result-cache misses (first touch per predicate) with hits.
const (
	serveBenchQueries    = 1024
	serveBenchPredicates = 128
)

// serveBench measures the serving layer end to end — JSON/HTTP request
// handling, admission, scheduling, the result cache, and the scan under
// it — and reports sustained qps plus mean/p50/p99 request latency at
// each concurrency level. Rows land in benchdiff-understood shape: mode
// "serve_cN", rows_per_sec = qps (the gated number), workers = clients.
func serveBench(n int, seed uint64) ([]experiments.ScanBenchEntry, error) {
	const width = 16
	vals := make([]int64, n)
	rng := seed | 1
	for i := range vals {
		// xorshift keeps the data deterministic without math/rand plumbing.
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		vals[i] = int64(rng % (1 << width))
	}
	col, err := byteslice.NewIntColumn("v", vals, 0, 1<<width)
	if err != nil {
		return nil, err
	}
	tbl, err := byteslice.NewTable(col)
	if err != nil {
		return nil, err
	}

	srv := serve.New(serve.Config{Registry: &obs.Registry{}, MaxInflight: 2 * serveClientCounts[len(serveClientCounts)-1]})
	defer srv.Close() //nolint:errcheck // mem mount holds nothing
	if err := srv.Catalog().MountTable("bench", tbl); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * serveClientCounts[len(serveClientCounts)-1],
		MaxIdleConnsPerHost: 2 * serveClientCounts[len(serveClientCounts)-1],
	}}

	bodies := make([][]byte, serveBenchPredicates)
	for i := range bodies {
		threshold := (i * (1 << width)) / serveBenchPredicates
		bodies[i] = []byte(fmt.Sprintf(`{"table":"bench","where":{"col":"v","op":"ge","args":[%d]}}`, threshold))
	}

	entries := make([]experiments.ScanBenchEntry, 0, len(serveClientCounts))
	for _, clients := range serveClientCounts {
		latencies := make([]time.Duration, serveBenchQueries)
		var next int64
		var mu sync.Mutex
		take := func() int {
			mu.Lock()
			defer mu.Unlock()
			if next >= serveBenchQueries {
				return -1
			}
			i := next
			next++
			return int(i)
		}

		var wg sync.WaitGroup
		var firstErr error
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := take()
					if i < 0 {
						return
					}
					t0 := time.Now()
					resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(bodies[i%serveBenchPredicates]))
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					resp.Body.Close() //nolint:errcheck // status only
					if resp.StatusCode != http.StatusOK {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("serve bench: status %d", resp.StatusCode)
						}
						mu.Unlock()
						return
					}
					latencies[i] = time.Since(t0)
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if firstErr != nil {
			return nil, firstErr
		}

		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var total time.Duration
		for _, l := range latencies {
			total += l
		}
		entries = append(entries, experiments.ScanBenchEntry{
			Width:      width,
			Path:       "native",
			Workers:    clients,
			Mode:       fmt.Sprintf("serve_c%d", clients),
			NsPerScan:  float64(total.Nanoseconds()) / serveBenchQueries,
			RowsPerSec: serveBenchQueries / elapsed.Seconds(),
			P50Ns:      float64(latencies[serveBenchQueries/2].Nanoseconds()),
			P99Ns:      float64(latencies[serveBenchQueries*99/100].Nanoseconds()),
		})
	}
	return entries, nil
}
