// Command benchdiff compares two bsbench -json payloads and fails when
// the current run regresses against the committed baseline.
//
// Usage:
//
//	benchdiff -baseline BENCH_scan.json -current /tmp/bench.json [-threshold 0.25] [-out diff.txt]
//
// Measurements are keyed by (width, path, mode, compression, layout);
// within a
// key the best rows-per-second across worker counts, data distributions
// and predicate counts is compared, so scheduler jitter on one
// configuration doesn't
// fail the gate while a real kernel regression — which slows every
// configuration of the key — does. A key present only in the baseline is
// reported as missing and fails the gate; keys only in the current run
// are reported as new and pass (the baseline is regenerated when
// benchmarks are added).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// entry mirrors the fields of experiments.ScanBenchEntry that the gate
// keys and compares on; unknown fields are ignored so the baseline format
// can grow.
type entry struct {
	Width      int     `json:"width"`
	Path       string  `json:"path"`
	Workers    int     `json:"workers"`
	RowsPerSec float64 `json:"rows_per_sec"`
	Data       string  `json:"data,omitempty"`
	Mode       string  `json:"mode,omitempty"`
	Preds      int     `json:"preds,omitempty"`
	Compress   string  `json:"compression,omitempty"`
	Layout     string  `json:"layout,omitempty"`
}

type payload struct {
	Rows    int     `json:"rows"`
	Results []entry `json:"results"`
}

type key struct {
	Width    int
	Path     string
	Mode     string
	Compress string
	Layout   string
}

func (k key) String() string {
	mode := k.Mode
	if mode == "" {
		mode = "scan"
	}
	// The compression and layout axes render only when set, so keys from
	// payloads predating them keep their exact historical spelling.
	if k.Compress != "" {
		mode += " " + k.Compress
	}
	if k.Layout != "" {
		mode += " " + k.Layout
	}
	return fmt.Sprintf("w%-2d %-6s %s", k.Width, k.Path, mode)
}

// best folds a payload into the per-key maximum rows/sec.
func best(p *payload) map[key]float64 {
	m := make(map[key]float64)
	for _, e := range p.Results {
		k := key{e.Width, e.Path, e.Mode, e.Compress, e.Layout}
		if e.RowsPerSec > m[k] {
			m[k] = e.RowsPerSec
		}
	}
	return m
}

type row struct {
	Key     key
	Base    float64
	Cur     float64
	Delta   float64 // (cur-base)/base; +faster, -slower
	Verdict string
	Failing bool
}

// advisoryMode reports whether a key's mode is in the advisory set:
// compared and rendered, but a regression doesn't fail the gate. Used for
// measurements bound by the runner's hardware rather than the code under
// test (per-append fsync throughput is the CI disk, not a kernel).
func advisoryMode(mode, advisory string) bool {
	if advisory == "" {
		return false
	}
	for _, a := range strings.Split(advisory, ",") {
		if a = strings.TrimSpace(a); a != "" && mode == a {
			return true
		}
	}
	return false
}

// diff compares baseline vs current best-per-key at the given regression
// threshold (0.25 = fail when current is more than 25% slower). Keys whose
// mode is advisory report regressions without failing; a MISSING advisory
// key still fails (the harness broke, not the disk).
func diff(base, cur map[key]float64, threshold float64, advisory string) []row {
	keys := make(map[key]bool)
	for k := range base {
		keys[k] = true
	}
	for k := range cur {
		keys[k] = true
	}
	rows := make([]row, 0, len(keys))
	for k := range keys {
		b, inBase := base[k]
		c, inCur := cur[k]
		r := row{Key: k, Base: b, Cur: c}
		switch {
		case !inCur:
			r.Verdict, r.Failing = "MISSING", true
		case !inBase:
			r.Verdict = "new"
		default:
			r.Delta = (c - b) / b
			switch {
			case r.Delta < -threshold && advisoryMode(k.Mode, advisory):
				r.Verdict = "regressed (advisory)"
			case r.Delta < -threshold:
				r.Verdict, r.Failing = "REGRESSION", true
			default:
				r.Verdict = "ok"
			}
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Failing != b.Failing {
			return a.Failing
		}
		if a.Key.Path != b.Key.Path {
			return a.Key.Path < b.Key.Path
		}
		if a.Key.Mode != b.Key.Mode {
			return a.Key.Mode < b.Key.Mode
		}
		if a.Key.Compress != b.Key.Compress {
			return a.Key.Compress < b.Key.Compress
		}
		if a.Key.Layout != b.Key.Layout {
			return a.Key.Layout < b.Key.Layout
		}
		return a.Key.Width < b.Key.Width
	})
	return rows
}

func render(w io.Writer, rows []row, threshold float64) (failed int) {
	fmt.Fprintf(w, "benchdiff: threshold %.0f%% (best rows/sec per width+path+mode+compression+layout)\n", threshold*100)
	fmt.Fprintf(w, "%-30s %14s %14s %8s  %s\n", "key", "baseline", "current", "delta", "verdict")
	for _, r := range rows {
		delta := "-"
		if r.Base > 0 && r.Cur > 0 {
			delta = fmt.Sprintf("%+.1f%%", r.Delta*100)
		}
		fmt.Fprintf(w, "%-30s %14s %14s %8s  %s\n",
			r.Key, mrows(r.Base), mrows(r.Cur), delta, r.Verdict)
		if r.Failing {
			failed++
		}
	}
	return failed
}

func mrows(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f Mrows/s", v/1e6)
}

func load(path string) (*payload, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p payload
	if err := json.Unmarshal(buf, &p); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(p.Results) == 0 {
		return nil, fmt.Errorf("%s: no measurements", path)
	}
	// A zero or non-finite rows/sec is a harness failure, not a slow run.
	// Left in, a zero baseline either vanishes from best() (the key is
	// never compared) or divides the delta into ±Inf — both silently pass
	// the gate, which is exactly backwards.
	for i, e := range p.Results {
		if math.IsNaN(e.RowsPerSec) || math.IsInf(e.RowsPerSec, 0) || e.RowsPerSec <= 0 {
			return nil, fmt.Errorf("%s: results[%d] (width=%d path=%q mode=%q workers=%d): rows_per_sec %v is not a positive finite measurement",
				path, i, e.Width, e.Path, e.Mode, e.Workers, e.RowsPerSec)
		}
	}
	return &p, nil
}

// run is main minus process concerns, for testing: returns the rendered
// report and the number of failing keys. currentPath may name several
// comma-separated payloads from repeated measurement runs; the per-key
// maximum across all of them is compared, squeezing scheduler jitter out
// of the gate without loosening the threshold.
func run(baselinePath, currentPath string, threshold float64, advisory string) (string, int, error) {
	base, err := load(baselinePath)
	if err != nil {
		return "", 0, err
	}
	cur := make(map[key]float64)
	for _, path := range strings.Split(currentPath, ",") {
		p, err := load(strings.TrimSpace(path))
		if err != nil {
			return "", 0, err
		}
		for k, v := range best(p) {
			if v > cur[k] {
				cur[k] = v
			}
		}
	}
	var sb strings.Builder
	failed := render(&sb, diff(best(base), cur, threshold, advisory), threshold)
	if failed > 0 {
		fmt.Fprintf(&sb, "FAIL: %d key(s) regressed beyond %.0f%%\n", failed, threshold*100)
	} else {
		fmt.Fprintln(&sb, "PASS")
	}
	return sb.String(), failed, nil
}

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_scan.json", "committed baseline payload")
		current   = flag.String("current", "", "freshly measured payload(s) to compare; comma-separated runs fold to their per-key best")
		threshold = flag.Float64("threshold", 0.25, "relative slowdown that fails the gate (0.25 = 25%)")
		advisory  = flag.String("advisory", "", "comma-separated modes whose regressions report without failing (hardware-bound measurements, e.g. ingest_append_synced)")
		out       = flag.String("out", "", "also write the report to this file (CI artifact)")
	)
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}
	report, failed, err := run(*baseline, *current, *threshold, *advisory)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fmt.Print(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
