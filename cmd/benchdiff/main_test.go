package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseline = `{
  "rows": 1048576,
  "results": [
    {"width": 16, "path": "native", "workers": 1, "rows_per_sec": 4.0e9},
    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 9.0e9},
    {"width": 16, "path": "engine", "workers": 1, "rows_per_sec": 2.0e8},
    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 6.0e9, "data": "sorted", "mode": "scan_zoned"}
  ]
}`

// TestDetectsTenfoldSlowdown is the gate's reason to exist: a current run
// where one key collapsed 10x must fail, naming the key.
func TestDetectsTenfoldSlowdown(t *testing.T) {
	current := `{
	  "rows": 1048576,
	  "results": [
	    {"width": 16, "path": "native", "workers": 1, "rows_per_sec": 4.0e8},
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 9.0e8},
	    {"width": 16, "path": "engine", "workers": 1, "rows_per_sec": 2.0e8},
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 6.0e9, "data": "sorted", "mode": "scan_zoned"}
	  ]
	}`
	report, failed, err := run(write(t, "base.json", baseline), write(t, "cur.json", current), 0.25, "")
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Fatalf("failed = %d, want 1\n%s", failed, report)
	}
	if !strings.Contains(report, "REGRESSION") || !strings.Contains(report, "-90.0%") {
		t.Fatalf("report must name the 10x regression:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Fatalf("report must carry the FAIL verdict:\n%s", report)
	}
}

// TestPassesWithinThreshold pins the jitter tolerance: a uniform 20%
// slowdown stays under the 25% gate, and best-of-workers keying means a
// slow single-worker sample is masked by a healthy 4-worker one.
func TestPassesWithinThreshold(t *testing.T) {
	current := `{
	  "rows": 1048576,
	  "results": [
	    {"width": 16, "path": "native", "workers": 1, "rows_per_sec": 1.0e9},
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 7.2e9},
	    {"width": 16, "path": "engine", "workers": 1, "rows_per_sec": 1.7e8},
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 5.0e9, "data": "sorted", "mode": "scan_zoned"}
	  ]
	}`
	report, failed, err := run(write(t, "base.json", baseline), write(t, "cur.json", current), 0.25, "")
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("failed = %d, want 0\n%s", failed, report)
	}
	if !strings.Contains(report, "PASS") {
		t.Fatalf("report must carry PASS:\n%s", report)
	}
}

// TestMissingKeyFails pins that silently dropping a benchmarked
// configuration cannot sneak past the gate.
func TestMissingKeyFails(t *testing.T) {
	current := `{
	  "rows": 1048576,
	  "results": [
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 9.0e9},
	    {"width": 16, "path": "engine", "workers": 1, "rows_per_sec": 2.0e8}
	  ]
	}`
	report, failed, err := run(write(t, "base.json", baseline), write(t, "cur.json", current), 0.25, "")
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 || !strings.Contains(report, "MISSING") {
		t.Fatalf("dropped key must fail as MISSING (failed=%d):\n%s", failed, report)
	}
}

// TestNewKeyPasses pins that adding benchmarks doesn't fail the gate
// before the baseline is regenerated.
func TestNewKeyPasses(t *testing.T) {
	current := `{
	  "rows": 1048576,
	  "results": [
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 9.0e9},
	    {"width": 16, "path": "engine", "workers": 1, "rows_per_sec": 2.0e8},
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 6.0e9, "data": "sorted", "mode": "scan_zoned"},
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 3.0e9, "mode": "multi_column_first", "preds": 3}
	  ]
	}`
	report, failed, err := run(write(t, "base.json", baseline), write(t, "cur.json", current), 0.25, "")
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 || !strings.Contains(report, "new") {
		t.Fatalf("new key must pass and be reported (failed=%d):\n%s", failed, report)
	}
}

// TestMultiRunFold pins the jitter squeeze: a key that dipped 10x in one
// measurement run but recovered in a second passes, because the gate
// compares the per-key best across all -current payloads.
func TestMultiRunFold(t *testing.T) {
	slow := `{
	  "results": [
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 9.0e8},
	    {"width": 16, "path": "engine", "workers": 1, "rows_per_sec": 2.0e8},
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 6.0e9, "data": "sorted", "mode": "scan_zoned"}
	  ]
	}`
	good := `{
	  "results": [
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 8.8e9},
	    {"width": 16, "path": "engine", "workers": 1, "rows_per_sec": 2.0e8},
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 6.0e9, "data": "sorted", "mode": "scan_zoned"}
	  ]
	}`
	currents := write(t, "cur1.json", slow) + "," + write(t, "cur2.json", good)
	report, failed, err := run(write(t, "base.json", baseline), currents, 0.25, "")
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("recovered key must pass with multi-run fold (failed=%d):\n%s", failed, report)
	}
}

// TestCompressionAxisKeysSeparately pins that the raw and compressed arms
// of the same width+path+mode are independent keys: a collapse on the
// compressed arm fails even when the raw arm is healthy, and the key
// rendering names the arm.
func TestCompressionAxisKeysSeparately(t *testing.T) {
	base := `{
	  "rows": 1048576,
	  "results": [
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 9.0e9, "data": "sorted", "mode": "scan", "compression": "raw"},
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 1.4e10, "data": "sorted", "mode": "scan", "compression": "compressed"}
	  ]
	}`
	current := `{
	  "rows": 1048576,
	  "results": [
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 9.1e9, "data": "sorted", "mode": "scan", "compression": "raw"},
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 1.4e9, "data": "sorted", "mode": "scan", "compression": "compressed"}
	  ]
	}`
	report, failed, err := run(write(t, "base.json", base), write(t, "cur.json", current), 0.25, "")
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Fatalf("compressed-arm collapse must fail exactly one key (failed=%d):\n%s", failed, report)
	}
	if !strings.Contains(report, "scan compressed") || !strings.Contains(report, "scan raw") {
		t.Fatalf("report must render both compression arms:\n%s", report)
	}
}

// TestLayoutAxisKeysSeparately pins that the per-layout lookup arms of
// the same width+path+mode are independent keys: an HBP lookup collapse
// fails even when the ByteSlice arm is healthy, the key rendering names
// the layout, and layout-less legacy keys keep their exact spelling.
func TestLayoutAxisKeysSeparately(t *testing.T) {
	base := `{
	  "rows": 1048576,
	  "results": [
	    {"width": 16, "path": "native", "workers": 1, "rows_per_sec": 9.0e9},
	    {"width": 16, "path": "native", "workers": 1, "rows_per_sec": 2.0e7, "mode": "lookup", "layout": "ByteSlice"},
	    {"width": 16, "path": "native", "workers": 1, "rows_per_sec": 6.0e7, "mode": "lookup", "layout": "HBP"}
	  ]
	}`
	current := `{
	  "rows": 1048576,
	  "results": [
	    {"width": 16, "path": "native", "workers": 1, "rows_per_sec": 9.0e9},
	    {"width": 16, "path": "native", "workers": 1, "rows_per_sec": 2.1e7, "mode": "lookup", "layout": "ByteSlice"},
	    {"width": 16, "path": "native", "workers": 1, "rows_per_sec": 6.0e6, "mode": "lookup", "layout": "HBP"}
	  ]
	}`
	report, failed, err := run(write(t, "base.json", base), write(t, "cur.json", current), 0.25, "")
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Fatalf("HBP-arm collapse must fail exactly one key (failed=%d):\n%s", failed, report)
	}
	if !strings.Contains(report, "lookup HBP") || !strings.Contains(report, "lookup ByteSlice") {
		t.Fatalf("report must render both layout arms:\n%s", report)
	}
	if !strings.Contains(report, "w16 native scan ") {
		t.Fatalf("layout-less legacy key must keep its exact spelling:\n%s", report)
	}
}

func TestRejectsEmptyPayload(t *testing.T) {
	if _, _, err := run(write(t, "base.json", baseline), write(t, "cur.json", `{"results": []}`), 0.25, ""); err == nil {
		t.Fatal("empty current payload must be an error, not a pass")
	}
}

// TestRejectsZeroBaseline pins the divide-through-zero hole: a baseline
// row with rows_per_sec 0 must be rejected at load time, not fold into a
// ±Inf delta (or drop out of best()) and silently pass the gate.
func TestRejectsZeroBaseline(t *testing.T) {
	zeroed := `{
	  "rows": 1048576,
	  "results": [
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 0},
	    {"width": 16, "path": "engine", "workers": 1, "rows_per_sec": 2.0e8}
	  ]
	}`
	current := `{
	  "results": [
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": 9.0e9},
	    {"width": 16, "path": "engine", "workers": 1, "rows_per_sec": 2.0e8}
	  ]
	}`
	_, _, err := run(write(t, "base.json", zeroed), write(t, "cur.json", current), 0.25, "")
	if err == nil {
		t.Fatal("zero baseline rows_per_sec must be an error, not a pass")
	}
	if !strings.Contains(err.Error(), "rows_per_sec") || !strings.Contains(err.Error(), "native") {
		t.Fatalf("error must name the field and the offending key: %v", err)
	}
}

// TestRejectsNonFiniteMeasurement covers the same guard on the current
// side with a negative value (JSON cannot carry NaN, but the loader also
// refuses NaN/Inf should the payload format ever grow a path for them).
func TestRejectsNonFiniteMeasurement(t *testing.T) {
	current := `{
	  "results": [
	    {"width": 16, "path": "native", "workers": 4, "rows_per_sec": -1.0},
	    {"width": 16, "path": "engine", "workers": 1, "rows_per_sec": 2.0e8}
	  ]
	}`
	if _, _, err := run(write(t, "base.json", baseline), write(t, "cur.json", current), 0.25, ""); err == nil {
		t.Fatal("negative current rows_per_sec must be an error")
	}
}

// TestAdvisoryModeReportsWithoutFailing: a hardware-bound mode in the
// advisory set renders its regression but doesn't fail the gate, while
// the same regression in a non-advisory mode still does — and an
// advisory key that vanished entirely still fails.
func TestAdvisoryModeReportsWithoutFailing(t *testing.T) {
	base := `{"results": [
		{"width": 16, "path": "native", "workers": 1, "mode": "ingest_append_synced", "rows_per_sec": 10000},
		{"width": 16, "path": "native", "workers": 1, "mode": "ingest_append", "rows_per_sec": 1000000}
	]}`
	current := `{"results": [
		{"width": 16, "path": "native", "workers": 1, "mode": "ingest_append_synced", "rows_per_sec": 1000},
		{"width": 16, "path": "native", "workers": 1, "mode": "ingest_append", "rows_per_sec": 1000000}
	]}`
	report, failed, err := run(write(t, "base.json", base), write(t, "cur.json", current), 0.25, "ingest_append_synced")
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("advisory regression failed the gate:\n%s", report)
	}
	if !strings.Contains(report, "regressed (advisory)") {
		t.Fatalf("advisory regression not reported:\n%s", report)
	}

	// Without the advisory flag the same payload fails.
	_, failed, err = run(write(t, "base2.json", base), write(t, "cur2.json", current), 0.25, "")
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Fatalf("non-advisory regression passed (failed=%d)", failed)
	}

	// A missing advisory key is a broken harness, not a slow disk.
	gone := `{"results": [
		{"width": 16, "path": "native", "workers": 1, "mode": "ingest_append", "rows_per_sec": 1000000}
	]}`
	_, failed, err = run(write(t, "base3.json", base), write(t, "cur3.json", gone), 0.25, "ingest_append_synced")
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Fatalf("missing advisory key passed (failed=%d)", failed)
	}
}
