// bsserve serves ByteSlice tables over JSON/HTTP: snapshot files and
// ingest directories mount into a catalog, queries run behind admission
// control with per-query deadlines and a shared worker pool, and results
// cache per (table version, normalized predicate).
//
// Usage:
//
//	bsserve -snapshot lineitem=t.bslc -ingest events=./events -addr :8080
//
// Mount flags repeat; a bare path mounts under the file's base name.
// Query with:
//
//	curl -s localhost:8080/query -d '{"table":"lineitem","where":{"col":"price","op":"lt","args":[500]}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"byteslice/internal/serve"
)

// mountFlag collects repeatable name=path mount flags.
type mountFlag []struct{ name, path string }

func (m *mountFlag) String() string { return fmt.Sprint(*m) }

func (m *mountFlag) Set(v string) error {
	name, path, found := strings.Cut(v, "=")
	if !found {
		path = v
		name = strings.TrimSuffix(filepath.Base(v), filepath.Ext(v))
	}
	if name == "" || path == "" {
		return fmt.Errorf("mount %q: want name=path", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bsserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var snapshots, ingests mountFlag
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	flag.Var(&snapshots, "snapshot", "mount a .bslc snapshot as name=path (repeatable; bare path uses the base name)")
	flag.Var(&ingests, "ingest", "mount a live ingest directory as name=dir (repeatable)")
	maxInflight := flag.Int("max-inflight", 64, "admitted concurrent queries; more get a typed 429")
	workers := flag.Int("workers", 0, "shared worker-pool size (0 = NumCPU)")
	cacheEntries := flag.Int("cache", 1024, "result-cache entries (negative disables)")
	timeout := flag.Duration("timeout", 2*time.Second, "default per-query deadline")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "cap on requested per-query deadlines")
	explain := flag.Bool("explain", false, "let requests ask for plan/analyze output")
	tenants := flag.Int("tenants", 64, "distinct per-tenant stat buckets before folding into \"other\"")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
	flag.Parse()

	if len(snapshots) == 0 && len(ingests) == 0 {
		return errors.New("nothing to serve: pass at least one -snapshot or -ingest")
	}

	srv := serve.New(serve.Config{
		MaxInflight:    *maxInflight,
		Workers:        *workers,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxTenants:     *tenants,
		Explain:        *explain,
	})
	defer srv.Close()

	for _, m := range snapshots {
		if err := srv.Catalog().MountSnapshot(m.name, m.path); err != nil {
			return err
		}
		fmt.Printf("bsserve: mounted snapshot %q from %s\n", m.name, m.path)
	}
	for _, m := range ingests {
		if err := srv.Catalog().MountIngest(m.name, m.path); err != nil {
			return err
		}
		fmt.Printf("bsserve: mounted ingest %q from %s\n", m.name, m.path)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	// The actual address matters when -addr asks for port 0: tests and
	// scripts parse this line to find the server.
	fmt.Printf("bsserve: serving on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("bsserve: %s, shutting down\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := srv.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	fmt.Println("bsserve: clean shutdown")
	return nil
}
