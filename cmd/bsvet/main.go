// Command bsvet runs the ByteSlice static-analysis suite from
// internal/analysis — hotloop, kernelparity, atomicfield, boundedalloc,
// epochsafe, goroutinelife, ctxflow, and errsentinel — plus the
// compiler-output BCE/escape gate.
//
// Standalone (the common case):
//
//	go run ./cmd/bsvet ./...
//
// Compiler gate (bounds checks and heap escapes in //bsvet:hotloop
// functions, against the committed bsvet.allow):
//
//	go run ./cmd/bsvet -gcflags ./internal/kernel ./internal/core
//
// With -ratchet the gate also hard-fails on allowlist entries that are
// stale (match nothing) or slack (cap above the observed count), so the
// allowlist can only shrink toward what the compiler actually emits:
//
//	go run ./cmd/bsvet -gcflags -ratchet ./internal/kernel
//
// As a go vet tool (unit-checker protocol):
//
//	go build -o /tmp/bsvet ./cmd/bsvet
//	go vet -vettool=/tmp/bsvet ./...
//
// Exit status: 0 clean, 1 operational error, 2 findings.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"byteslice/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet version handshake: `bsvet -V=full` must print a line ending
	// in a content hash so the build cache can fingerprint the tool.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		return printVersion(args[0])
	}
	// go vet capability probe: it asks which vet flags the tool accepts
	// (JSON list) before passing any through. bsvet takes none of them.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}

	fs := flag.NewFlagSet("bsvet", flag.ContinueOnError)
	var (
		checks  = fs.String("checks", "", "comma-separated analyzers to run (default: all)")
		tests   = fs.Bool("tests", true, "also analyze test files")
		gcflags = fs.Bool("gcflags", false, "run the compiler BCE/escape gate instead of the AST analyzers")
		allow   = fs.String("allow", "bsvet.allow", "allowlist file for the -gcflags gate")
		ratchet = fs.Bool("ratchet", false, "fail the -gcflags gate on stale or slack allowlist entries instead of warning")
		dir     = fs.String("C", "", "run in this directory")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()

	// Unit-checker mode: go vet invokes the tool with one *.cfg argument.
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		return runUnit(patterns[0], *checks)
	}

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := analysis.LoadConfig{Dir: *dir, Tests: *tests}

	if *gcflags {
		return runGate(cfg, *allow, *ratchet, patterns)
	}

	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsvet:", err)
		return 1
	}
	pkgs, err := analysis.Load(cfg, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsvet:", err)
		return 1
	}
	bad := false
	for _, p := range pkgs {
		if p.Analyze && p.TypeErr != nil {
			fmt.Fprintf(os.Stderr, "bsvet: %v\n", p.TypeErr)
			bad = true
		}
	}
	if bad {
		return 1
	}
	diags := analysis.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func runGate(cfg analysis.LoadConfig, allow string, ratchet bool, patterns []string) int {
	findings, stale, slack, err := analysis.Gate(cfg, allow, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsvet:", err)
		return 1
	}
	severity := "warning"
	if ratchet {
		severity = "error"
	}
	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "bsvet: %s: stale allowlist entry (prune it): %s\n", severity, s)
	}
	for _, s := range slack {
		fmt.Fprintf(os.Stderr, "bsvet: %s: slack allowlist entry (tighten the cap): %s\n", severity, s)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bsvet: %d compiler diagnostics above the %s caps\n", len(findings), allow)
		return 2
	}
	if ratchet && len(stale)+len(slack) > 0 {
		fmt.Fprintf(os.Stderr, "bsvet: ratchet: %d allowlist entries need pruning or tightening in %s\n", len(stale)+len(slack), allow)
		return 2
	}
	return 0
}

func printVersion(arg string) int {
	if arg != "-V=full" {
		fmt.Println("bsvet version 1")
		return 0
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsvet:", err)
		return 1
	}
	f, err := os.Open(self)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsvet:", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "bsvet:", err)
		return 1
	}
	fmt.Printf("%s version devel buildID=%02x\n", filepath.Base(self), h.Sum(nil))
	return 0
}
