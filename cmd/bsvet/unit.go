package main

import (
	"encoding/json"
	"fmt"
	"os"

	"byteslice/internal/analysis"
)

// unitConfig mirrors the fields of cmd/go's vet .cfg file that bsvet
// consumes (the protocol behind `go vet -vettool`).
type unitConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit executes one compilation unit of the go vet protocol: scan
// this unit's annotation facts (hotloop/sealed/builder/stopper), merge
// facts from dependency .vetx files, ALWAYS write the unit's own .vetx
// (cmd/go requires it, even for fact-only dependency units), and —
// unless VetxOnly — run the analyzers and report.
func runUnit(cfgPath, checks string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsvet:", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "bsvet: %s: %v\n", cfgPath, err)
		return 1
	}

	// Facts visible to this unit: dependencies' tables plus our own.
	// Re-exporting dependency facts makes them transitive, matching how
	// annotated kernels call annotated helpers across packages.
	facts := analysis.NewFacts()
	for _, vetx := range cfg.PackageVetx {
		deps, err := analysis.ReadFactsFile(vetx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsvet:", err)
			return 1
		}
		facts.Merge(deps)
	}

	// Fact-only units (dependencies) never need type information.
	if cfg.VetxOnly {
		own, err := analysis.ScanFilesForFacts(cfg.ImportPath, cfg.GoFiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsvet:", err)
			return 1
		}
		facts.Merge(own)
		return writeVetx(cfg.VetxOutput, facts)
	}

	pkg, err := analysis.CheckFiles(cfg.ImportPath, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsvet:", err)
		return 1
	}
	facts.Merge(pkg.Facts)
	if code := writeVetx(cfg.VetxOutput, facts); code != 0 {
		return code
	}

	if pkg.TypeErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "bsvet:", pkg.TypeErr)
		return 1
	}

	analyzers, err := analysis.ByName(checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsvet:", err)
		return 1
	}
	pkg.Facts = facts // full table, not just this unit's
	diags := analysis.RunAnalyzers([]*analysis.Package{pkg}, analyzers)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func writeVetx(path string, facts *analysis.Facts) int {
	if path == "" {
		return 0
	}
	if err := analysis.WriteFactsFile(path, facts); err != nil {
		fmt.Fprintln(os.Stderr, "bsvet:", err)
		return 1
	}
	return 0
}
