package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles bsvet once per test binary into a temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bsvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build bsvet: %v\n%s", err, out)
	}
	return bin
}

// runTool runs the built binary from the module root.
func runTool(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = "../.." // module root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run bsvet %v: %v\n%s", args, err, out.String())
	}
	return out.String(), code
}

// TestStandaloneCleanTree is the headline invocation from the README:
// the suite must pass on the repository itself.
func TestStandaloneCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes the whole module")
	}
	bin := buildTool(t)
	out, code := runTool(t, bin, "./...")
	if code != 0 {
		t.Fatalf("bsvet ./... = exit %d on clean tree:\n%s", code, out)
	}
}

// TestSeededHotloopAllocationFails covers acceptance criterion (a): a
// fixture introducing an allocation in a //bsvet:hotloop function must
// fail the suite.
func TestSeededHotloopAllocationFails(t *testing.T) {
	bin := buildTool(t)
	out, code := runTool(t, bin, "./internal/analysis/testdata/src/hotloop")
	if code == 0 {
		t.Fatalf("bsvet passed the seeded hotloop fixture:\n%s", out)
	}
	if !strings.Contains(out, "builtin make allocates on the heap") {
		t.Errorf("output does not name the seeded allocation:\n%s", out)
	}
}

// TestSeededMissingCtxVariantFails covers acceptance criterion (b): a
// kernel entry point without its Ctx variant must fail the suite.
func TestSeededMissingCtxVariantFails(t *testing.T) {
	bin := buildTool(t)
	out, code := runTool(t, bin, "./internal/analysis/testdata/src/kernelparity")
	if code == 0 {
		t.Fatalf("bsvet passed the seeded kernelparity fixture:\n%s", out)
	}
	if !strings.Contains(out, "has an Obs variant but no SoloCtx") {
		t.Errorf("output does not name the missing Ctx variant:\n%s", out)
	}
}

// TestSeededFixturesFail runs the suite over each remaining seeded
// fixture and checks the diagnostic class it must surface.
func TestSeededFixturesFail(t *testing.T) {
	bin := buildTool(t)
	cases := []struct {
		fixture string
		needle  string
	}{
		{"epochsafe", "outside a //bsvet:builder function"},
		{"goroutinelife", "has no visible stop path"},
		{"ctxflow", "needs a //bsvet:rootctx annotation"},
		{"errsentinel", "loses its identity"},
	}
	for _, tc := range cases {
		out, code := runTool(t, bin, "./internal/analysis/testdata/src/"+tc.fixture)
		if code == 0 {
			t.Errorf("bsvet passed the seeded %s fixture:\n%s", tc.fixture, out)
			continue
		}
		if !strings.Contains(out, tc.needle) {
			t.Errorf("%s output does not contain %q:\n%s", tc.fixture, tc.needle, out)
		}
	}
}

// TestVettoolCrossPackageFacts proves annotation facts survive the .vetx
// round trip of the go vet protocol: the epochsafe fixture imports a
// dependency package whose //bsvet:sealed annotation go vet only sees
// through the dependency's fact file, and the goroutinelife fixture
// launches a dependency's stopper function, whose evidence must arrive
// the same way (a lost stopper fact would false-positive go lifedep.Run).
func TestVettoolCrossPackageFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet over fixture packages")
	}
	bin := buildTool(t)

	vet := func(pkg string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, pkg)
		cmd.Dir = "../.."
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out, err := vet("./internal/analysis/testdata/src/epochsafe")
	if err == nil {
		t.Fatalf("go vet passed the epochsafe fixture:\n%s", out)
	}
	if !strings.Contains(out, "epochdep.View") {
		t.Errorf("epochsafe vet output lost the cross-package sealed fact (no epochdep.View diagnostic):\n%s", out)
	}
	if !strings.Contains(out, "store to field Count") {
		t.Errorf("epochsafe vet output does not flag the imported-field store:\n%s", out)
	}

	out, err = vet("./internal/analysis/testdata/src/goroutinelife")
	if err == nil {
		t.Fatalf("go vet passed the goroutinelife fixture:\n%s", out)
	}
	if !strings.Contains(out, "lifedep.Orphan") {
		t.Errorf("goroutinelife vet output lost the cross-package orphan:\n%s", out)
	}
	if strings.Contains(out, "lifedep.Run") {
		t.Errorf("goroutinelife vet output false-positives on the imported stopper (lifedep.Run's fact was lost):\n%s", out)
	}
}

// TestGcflagsRatchet seeds an allowlist with one stale and one slack
// entry against the bcegate fixture: a warning-only run exits 0 between
// caps, the -ratchet run exits 2 and names both.
func TestGcflagsRatchet(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()
	allow := filepath.Join(dir, "allow")
	content := "byteslice/internal/analysis/testdata/src/bcegate sumFirst bounds 9\n" +
		"byteslice/internal/analysis/testdata/src/bcegate gone bounds 1\n"
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	out, code := runTool(t, bin, "-gcflags", "-allow", allow,
		"./internal/analysis/testdata/src/bcegate")
	if code != 0 {
		t.Fatalf("warning-mode gate = exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "warning: stale allowlist entry") || !strings.Contains(out, "warning: slack allowlist entry") {
		t.Errorf("warning-mode gate did not report stale and slack entries:\n%s", out)
	}

	out, code = runTool(t, bin, "-gcflags", "-ratchet", "-allow", allow,
		"./internal/analysis/testdata/src/bcegate")
	if code != 2 {
		t.Fatalf("ratchet gate = exit %d; want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "error: stale allowlist entry") || !strings.Contains(out, "gone") {
		t.Errorf("ratchet output does not name the stale entry:\n%s", out)
	}
	if !strings.Contains(out, "error: slack allowlist entry") || !strings.Contains(out, "(observed") {
		t.Errorf("ratchet output does not name the slack entry with its observed count:\n%s", out)
	}
}

// TestGcflagsGateNamesFunctionAndLine runs the compiler gate against
// the seeded bounds-check fixture and checks the report shape.
func TestGcflagsGateNamesFunctionAndLine(t *testing.T) {
	bin := buildTool(t)
	out, code := runTool(t, bin, "-gcflags", "-allow", "/dev/null",
		"./internal/analysis/testdata/src/bcegate")
	if code == 0 {
		t.Fatalf("bsvet -gcflags passed the seeded bounds check:\n%s", out)
	}
	if !strings.Contains(out, "sumFirst") || !strings.Contains(out, "bcegate.go:10") {
		t.Errorf("gate output does not name function and line:\n%s", out)
	}
}

// TestGcflagsGateCleanKernel mirrors the CI gate invocation.
func TestGcflagsGateCleanKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles the kernel packages")
	}
	bin := buildTool(t)
	out, code := runTool(t, bin, "-gcflags",
		"./internal/kernel", "./internal/core", "./internal/bitvec")
	if code != 0 {
		t.Fatalf("gate = exit %d against committed allowlist:\n%s", code, out)
	}
}

// TestVettoolProtocol drives bsvet through go vet itself, exercising
// the -V/-flags handshakes and the .cfg/.vetx unit protocol.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet over kernel packages")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/kernel", "./internal/bitvec")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}

// TestVersionHandshake checks the -V=full fingerprint line cmd/go
// parses before trusting a vettool.
func TestVersionHandshake(t *testing.T) {
	bin := buildTool(t)
	out, code := runTool(t, bin, "-V=full")
	if code != 0 {
		t.Fatalf("-V=full = exit %d", code)
	}
	if !strings.Contains(out, "version") || !strings.Contains(out, "buildID=") {
		t.Errorf("-V=full output %q lacks version/buildID", out)
	}
}
