package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles bsvet once per test binary into a temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bsvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build bsvet: %v\n%s", err, out)
	}
	return bin
}

// runTool runs the built binary from the module root.
func runTool(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = "../.." // module root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run bsvet %v: %v\n%s", args, err, out.String())
	}
	return out.String(), code
}

// TestStandaloneCleanTree is the headline invocation from the README:
// the suite must pass on the repository itself.
func TestStandaloneCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes the whole module")
	}
	bin := buildTool(t)
	out, code := runTool(t, bin, "./...")
	if code != 0 {
		t.Fatalf("bsvet ./... = exit %d on clean tree:\n%s", code, out)
	}
}

// TestSeededHotloopAllocationFails covers acceptance criterion (a): a
// fixture introducing an allocation in a //bsvet:hotloop function must
// fail the suite.
func TestSeededHotloopAllocationFails(t *testing.T) {
	bin := buildTool(t)
	out, code := runTool(t, bin, "./internal/analysis/testdata/src/hotloop")
	if code == 0 {
		t.Fatalf("bsvet passed the seeded hotloop fixture:\n%s", out)
	}
	if !strings.Contains(out, "builtin make allocates on the heap") {
		t.Errorf("output does not name the seeded allocation:\n%s", out)
	}
}

// TestSeededMissingCtxVariantFails covers acceptance criterion (b): a
// kernel entry point without its Ctx variant must fail the suite.
func TestSeededMissingCtxVariantFails(t *testing.T) {
	bin := buildTool(t)
	out, code := runTool(t, bin, "./internal/analysis/testdata/src/kernelparity")
	if code == 0 {
		t.Fatalf("bsvet passed the seeded kernelparity fixture:\n%s", out)
	}
	if !strings.Contains(out, "has an Obs variant but no SoloCtx") {
		t.Errorf("output does not name the missing Ctx variant:\n%s", out)
	}
}

// TestGcflagsGateNamesFunctionAndLine runs the compiler gate against
// the seeded bounds-check fixture and checks the report shape.
func TestGcflagsGateNamesFunctionAndLine(t *testing.T) {
	bin := buildTool(t)
	out, code := runTool(t, bin, "-gcflags", "-allow", "/dev/null",
		"./internal/analysis/testdata/src/bcegate")
	if code == 0 {
		t.Fatalf("bsvet -gcflags passed the seeded bounds check:\n%s", out)
	}
	if !strings.Contains(out, "sumFirst") || !strings.Contains(out, "bcegate.go:10") {
		t.Errorf("gate output does not name function and line:\n%s", out)
	}
}

// TestGcflagsGateCleanKernel mirrors the CI gate invocation.
func TestGcflagsGateCleanKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles the kernel packages")
	}
	bin := buildTool(t)
	out, code := runTool(t, bin, "-gcflags",
		"./internal/kernel", "./internal/core", "./internal/bitvec")
	if code != 0 {
		t.Fatalf("gate = exit %d against committed allowlist:\n%s", code, out)
	}
}

// TestVettoolProtocol drives bsvet through go vet itself, exercising
// the -V/-flags handshakes and the .cfg/.vetx unit protocol.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet over kernel packages")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/kernel", "./internal/bitvec")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}

// TestVersionHandshake checks the -V=full fingerprint line cmd/go
// parses before trusting a vettool.
func TestVersionHandshake(t *testing.T) {
	bin := buildTool(t)
	out, code := runTool(t, bin, "-V=full")
	if code != 0 {
		t.Fatalf("-V=full = exit %d", code)
	}
	if !strings.Contains(out, "version") || !strings.Contains(out, "buildID=") {
		t.Errorf("-V=full output %q lacks version/buildID", out)
	}
}
