package byteslice_test

import (
	"math/bits"
	"testing"
)

// countMatchWords is a micro-fixture mirroring the shape of the kernel's
// result-counting inner loop. It lives in the same package as the
// observability overhead guard so the two enforcement layers cover the
// same loop shape: the //bsvet:hotloop annotation makes the static
// analyzer (and the -gcflags escape gate) reject any allocation,
// interface conversion, or non-annotated call creeping in, while
// TestHotloopFixtureAllocFree pins the same contract dynamically.
//
//bsvet:hotloop
func countMatchWords(words []uint64, mask uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w & mask)
	}
	return n
}

// TestHotloopFixtureAllocFree is the runtime half of the hotloop
// contract: the annotated fixture must complete with zero heap
// allocations, matching what the static analyzer promises.
func TestHotloopFixtureAllocFree(t *testing.T) {
	words := make([]uint64, 1024)
	for i := range words {
		words[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	var sink int
	allocs := testing.AllocsPerRun(100, func() {
		sink = countMatchWords(words, 0x0f0f0f0f0f0f0f0f)
	})
	if allocs != 0 {
		t.Fatalf("//bsvet:hotloop fixture allocated %.0f times per run", allocs)
	}
	if sink == 0 {
		t.Fatal("fixture computed nothing")
	}
}
