package byteslice

import (
	"errors"
	"path/filepath"
	"testing"

	"byteslice/internal/ingest"
)

// TestRowPayloadRoundTrip: encodeRowPayload and decodeRowPayloads are
// inverses over every kind, including NULLs.
func TestRowPayloadRoundTrip(t *testing.T) {
	qty, err := NewIntColumn("qty", []int64{5, 50}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	mode, err := NewStringColumn("mode", []string{"AIR", "SHIP"})
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewTable(qty, mode)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]byte{
		encodeRowPayload([]uint32{7, 1}, []bool{false, false}),
		encodeRowPayload([]uint32{0, 0}, []bool{true, false}),
	}
	codes, nulls, err := decodeRowPayloads(base, rows)
	if err != nil {
		t.Fatal(err)
	}
	if codes[0][0] != 7 || codes[1][0] != 1 || nulls[0][0] || nulls[1][0] {
		t.Fatalf("row 0 decoded as codes %v/%v nulls %v/%v", codes[0][0], codes[1][0], nulls[0][0], nulls[1][0])
	}
	if !nulls[0][1] || codes[0][1] != 0 {
		t.Fatalf("row 1 NULL decoded as code %d null %v", codes[0][1], nulls[0][1])
	}
}

// TestDecodeRowPayloadsRejects: replayed rows that passed their CRC but
// disagree with the schema are corruption, not data.
func TestDecodeRowPayloadsRejects(t *testing.T) {
	qty, err := NewIntColumn("qty", []int64{5, 50}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewTable(qty)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short row":       {0, 7, 0, 0},
		"long row":        {0, 7, 0, 0, 0, 0},
		"bad NULL flag":   {2, 0, 0, 0, 0},
		"NULL with code":  {1, 7, 0, 0, 0},
		"code over width": {0, 0xFF, 0xFF, 0, 0},
	}
	for name, row := range cases {
		if _, _, err := decodeRowPayloads(base, [][]byte{row}); !errors.Is(err, ingest.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestAppendTableRows: the WAL-rotation path for sealed segments a merge
// does not cover re-frames every row — codes and NULLs — losslessly.
func TestAppendTableRows(t *testing.T) {
	qty, err := NewIntColumn("qty", []int64{5, 50, 7}, 0, 100, WithNulls([]int{1}))
	if err != nil {
		t.Fatal(err)
	}
	mode, err := NewStringColumn("mode", []string{"AIR", "SHIP", "AIR"})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := NewTable(qty, mode)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := ingest.Create(path, 1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := appendTableRows(w, seg); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := ingest.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	codes, nulls, err := decodeRowPayloads(seg, rec.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Rows) != 3 {
		t.Fatalf("replayed %d rows, want 3", len(rec.Rows))
	}
	if !nulls[0][1] || nulls[0][0] || nulls[0][2] {
		t.Fatalf("NULL pattern lost: %v", nulls[0])
	}
	// Non-NULL codes survive: decode back through the segment's encoders.
	qcol := seg.cols[0]
	for _, r := range []int{0, 2} {
		wantCodes, err := materializeCodes(nil, qcol)
		if err != nil {
			t.Fatal(err)
		}
		if codes[0][r] != wantCodes[r] {
			t.Fatalf("row %d code = %d, want %d", r, codes[0][r], wantCodes[r])
		}
	}
}
