package byteslice_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"byteslice"
	"byteslice/internal/faultio"
)

// faultTable builds a small reference table covering every column kind,
// a NULL vector and a dictionary — enough that its snapshot exercises all
// section types while staying small enough to sweep byte by byte.
func faultTable(t *testing.T) *byteslice.Table {
	t.Helper()
	n := 100
	ints := make([]int64, n)
	decs := make([]float64, n)
	strs := make([]string, n)
	codes := make([]uint32, n)
	words := []string{"red", "green", "blue"}
	for i := 0; i < n; i++ {
		ints[i] = int64(i*7%500) - 250
		decs[i] = float64(i%90) / 4
		strs[i] = words[i%len(words)]
		codes[i] = uint32(i * 13 % 1024)
	}
	ic, err := byteslice.NewIntColumn("i", ints, -250, 250, byteslice.WithNulls([]int{2, 41}))
	if err != nil {
		t.Fatal(err)
	}
	dc, err := byteslice.NewDecimalColumn("d", decs, 0, 25, 2)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := byteslice.NewStringColumn("s", strs)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := byteslice.NewCodeColumn("c", codes, 10)
	if err != nil {
		t.Fatal(err)
	}
	// A compressed column, so the sweeps also cover ByteSliceC sections.
	sortedVals := make([]int64, n)
	for i := range sortedVals {
		sortedVals[i] = int64(i / 3)
	}
	zc, err := byteslice.NewIntColumn("z", sortedVals, 0, 200, byteslice.WithCompression())
	if err != nil {
		t.Fatal(err)
	}
	if !zc.Compressed() {
		t.Fatal("fault-table column z should take the compressed layout")
	}
	// An HBP column, so the sweeps also cover the lookup-optimised layout
	// a workload-driven re-layout (Table.AutoLayout) can choose.
	hc, err := byteslice.NewCodeColumn("h", codes, 10, byteslice.WithFormat(byteslice.FormatHBP))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := byteslice.NewTable(ic, dc, sc, cc, zc, hc)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// encodeV2 serialises the table in the current stream format.
func encodeV2(t *testing.T, tbl *byteslice.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readNoPanic runs ReadTable under recover, so a corrupt input that panics
// fails the sweep with the offset instead of killing the test binary.
func readNoPanic(t *testing.T, what string, off int, data []byte) (tbl *byteslice.Table, err error) {
	t.Helper()
	defer func() {
		if v := recover(); v != nil {
			t.Fatalf("%s at offset %d: ReadTable panicked: %v", what, off, v)
		}
	}()
	return byteslice.ReadTable(bytes.NewReader(data))
}

// TestFaultSweepTruncate: a v2 snapshot cut at every possible byte offset
// is rejected with ErrCorrupt — never a panic, never a silently short
// table.
func TestFaultSweepTruncate(t *testing.T) {
	full := encodeV2(t, faultTable(t))
	for off := 0; off < len(full); off++ {
		tbl, err := readNoPanic(t, "truncate", off, faultio.Truncate(full, off))
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted (table: %v)", off, len(full), tbl)
		}
		if !errors.Is(err, byteslice.ErrCorrupt) && !errors.Is(err, byteslice.ErrVersion) {
			t.Fatalf("truncation at %d: error %v is not ErrCorrupt/ErrVersion", off, err)
		}
	}
}

// TestFaultSweepBitFlip: flipping any single bit of a v2 snapshot is
// detected — the framing catches structural bytes, the per-section CRC32-C
// catches everything else. No flip may yield a wrong table silently.
func TestFaultSweepBitFlip(t *testing.T) {
	full := encodeV2(t, faultTable(t))
	for _, mask := range []byte{0x01, 0x80} {
		for off := 0; off < len(full); off++ {
			tbl, err := readNoPanic(t, fmt.Sprintf("flip&%#x", mask), off, faultio.Flip(full, off, mask))
			if err == nil {
				t.Fatalf("bit flip (mask %#x) at %d/%d accepted (table: %v)", mask, off, len(full), tbl)
			}
			if !errors.Is(err, byteslice.ErrCorrupt) && !errors.Is(err, byteslice.ErrVersion) {
				t.Fatalf("bit flip at %d: error %v is not ErrCorrupt/ErrVersion", off, err)
			}
		}
	}
}

// TestFaultSweepReadError: an I/O error at every byte offset surfaces as
// that error (wrapping faultio.ErrInjected), not mislabelled as corruption
// and not a panic.
func TestFaultSweepReadError(t *testing.T) {
	full := encodeV2(t, faultTable(t))
	for off := 0; off < len(full); off++ {
		func() {
			defer func() {
				if v := recover(); v != nil {
					t.Fatalf("read fault at offset %d: ReadTable panicked: %v", off, v)
				}
			}()
			_, err := byteslice.ReadTable(&faultio.Reader{R: bytes.NewReader(full), FailAt: int64(off)})
			if err == nil {
				t.Fatalf("read fault at %d/%d accepted", off, len(full))
			}
			if !errors.Is(err, faultio.ErrInjected) {
				t.Fatalf("read fault at %d: error %v does not wrap the injected I/O error", off, err)
			}
		}()
	}
}

// TestFaultSweepWriteError: WriteTo propagates a write failure (hard or
// short, at every byte offset) as an error, never a panic.
func TestFaultSweepWriteError(t *testing.T) {
	tbl := faultTable(t)
	full := encodeV2(t, tbl)
	for _, short := range []bool{false, true} {
		for off := 0; off < len(full); off++ {
			func() {
				defer func() {
					if v := recover(); v != nil {
						t.Fatalf("write fault (short=%v) at offset %d: WriteTo panicked: %v", short, off, v)
					}
				}()
				_, err := tbl.WriteTo(&faultio.Writer{W: io.Discard, FailAt: int64(off), Short: short})
				if err == nil {
					t.Fatalf("write fault (short=%v) at %d/%d not reported", short, off, len(full))
				}
				if !errors.Is(err, faultio.ErrInjected) {
					t.Fatalf("write fault at %d: error %v does not wrap the injected I/O error", off, err)
				}
			}()
		}
	}
}

// TestFaultSweepTruncateV1: the legacy v1 stream has no checksums, but
// truncation at any offset must still produce a clean error, never a panic
// or an unbounded allocation.
func TestFaultSweepTruncateV1(t *testing.T) {
	tbl := faultTable(t)
	var buf bytes.Buffer
	if _, err := tbl.WriteToV1(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for off := 0; off < len(full); off++ {
		if _, err := readNoPanic(t, "v1 truncate", off, faultio.Truncate(full, off)); err == nil {
			t.Fatalf("v1 truncation at %d/%d accepted", off, len(full))
		}
	}
}

// tablesEqualInts compares the "i" column values of two tables.
func tablesEqualInts(t *testing.T, a, b *byteslice.Table) bool {
	t.Helper()
	if a.Len() != b.Len() {
		return false
	}
	ca, err := a.Column("i")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Column("i")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		va, nva := ca.LookupInt(nil, i)
		vb, nvb := cb.LookupInt(nil, i)
		if va != vb || nva != nvb {
			return false
		}
	}
	return true
}

// TestSaveFileCrashAtomic simulates a crash (short write followed by
// failure, like ENOSPC or power loss) at every byte offset of the snapshot
// stream during SaveFile over an existing snapshot, and asserts the
// previous snapshot always remains loadable and intact. A successful
// retry then publishes the new one.
func TestSaveFileCrashAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.bslc")

	oldTbl := faultTable(t)
	if err := oldTbl.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	// A different table, so a torn mix of old and new is distinguishable.
	ints := make([]int64, 64)
	for i := range ints {
		ints[i] = int64(1000 + i)
	}
	ic, err := byteslice.NewIntColumn("i", ints, 1000, 1100)
	if err != nil {
		t.Fatal(err)
	}
	newTbl, err := byteslice.NewTable(ic)
	if err != nil {
		t.Fatal(err)
	}
	streamLen := int64(len(encodeV2(t, newTbl)))

	defer byteslice.SetSaveWriterHook(nil)
	for off := int64(0); off < streamLen; off++ {
		byteslice.SetSaveWriterHook(func(w io.Writer) io.Writer {
			return &faultio.Writer{W: w, FailAt: off, Short: true}
		})
		if err := newTbl.SaveFile(path); err == nil {
			t.Fatalf("crash at offset %d: SaveFile reported success", off)
		}
		loaded, err := byteslice.LoadFile(path)
		if err != nil {
			t.Fatalf("crash at offset %d: previous snapshot unloadable: %v", off, err)
		}
		if !tablesEqualInts(t, loaded, oldTbl) {
			t.Fatalf("crash at offset %d: previous snapshot content changed", off)
		}
	}

	// No stray temp files survive the failed attempts.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "table.bslc" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after failed saves: %v", names)
	}

	// The retry with no fault publishes the new snapshot.
	byteslice.SetSaveWriterHook(nil)
	if err := newTbl.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := byteslice.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tablesEqualInts(t, loaded, newTbl) {
		t.Fatal("new snapshot not visible after successful save")
	}
}

// TestLoadFileMissing: load errors carry the path and the underlying
// cause.
func TestLoadFileMissing(t *testing.T) {
	_, err := byteslice.LoadFile(filepath.Join(t.TempDir(), "absent.bslc"))
	if err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("error %v does not wrap os.ErrNotExist", err)
	}
}
