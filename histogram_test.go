package byteslice_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"byteslice"
)

func TestEstimateSelectivity(t *testing.T) {
	rng := rand.New(rand.NewPCG(90, 90)) //nolint:gosec
	n := 50000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.IntN(10000))
	}
	tbl, _ := byteslice.NewTable(intColumn(t, "v", vals, 0, 9999))

	cases := []struct {
		f    byteslice.Filter
		want float64
	}{
		{byteslice.IntFilter("v", byteslice.Lt, 1000), 0.10},
		{byteslice.IntFilter("v", byteslice.Ge, 9000), 0.10},
		{byteslice.IntFilter("v", byteslice.Between, 2500, 7499), 0.50},
		{byteslice.IntFilter("v", byteslice.Eq, 1234), 0.0001},
		{byteslice.IntFilter("v", byteslice.Ne, 1234), 0.9999},
		{byteslice.IntFilter("v", byteslice.Lt, -5), 0},    // trivially false
		{byteslice.IntFilter("v", byteslice.Lt, 99999), 1}, // trivially true
	}
	for i, c := range cases {
		got, err := tbl.EstimateSelectivity(c.f)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(got-c.want) > 0.03 {
			t.Fatalf("case %d: estimate %.4f, want ≈%.4f", i, got, c.want)
		}
	}
	if _, err := tbl.EstimateSelectivity(byteslice.IntFilter("zzz", byteslice.Lt, 1)); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestEstimateSelectivitySkewed(t *testing.T) {
	// Heavily skewed column: the histogram should see it.
	n := 20000
	vals := make([]int64, n)
	for i := range vals {
		if i%100 == 0 {
			vals[i] = int64(5000 + i%1000)
		} // else 0
	}
	tbl, _ := byteslice.NewTable(intColumn(t, "v", vals, 0, 9999))
	// True selectivity ≈ 0.01. The histogram is equi-width over the CODE
	// domain (14 bits here, so ~256-code buckets) and assumes uniformity
	// within a bucket, so the constant 100 (inside the heavy first bucket)
	// only resolves to bucket granularity — but the estimate must still be
	// far below the skew-blind value (≈ 0.99).
	got, _ := tbl.EstimateSelectivity(byteslice.IntFilter("v", byteslice.Gt, 100))
	if got > 0.7 {
		t.Fatalf("skewed estimate %.4f should be well below the skew-blind 0.99", got)
	}
	// A constant past the heavy bucket resolves accurately.
	got, _ = tbl.EstimateSelectivity(byteslice.IntFilter("v", byteslice.Gt, 300))
	if got > 0.05 {
		t.Fatalf("estimate %.4f past the heavy bucket, want ≈0.01", got)
	}
}

// TestReorderingImprovesPipelining pins the feature's point: with a highly
// selective predicate listed last, the default ordering should cost fewer
// modelled cycles than OrderAsWritten, and produce identical results.
func TestReorderingImprovesPipelining(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 91)) //nolint:gosec
	n := 1 << 18
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = int64(rng.IntN(4096))
		b[i] = int64(rng.IntN(4096))
	}
	tbl, _ := byteslice.NewTable(
		intColumn(t, "a", a, 0, 4095),
		intColumn(t, "b", b, 0, 4095),
	)
	// Written with the unselective predicate first.
	filters := []byteslice.Filter{
		byteslice.IntFilter("a", byteslice.Ge, 100), // ~97.5%
		byteslice.IntFilter("b", byteslice.Lt, 8),   // ~0.2%
	}
	pOrdered := byteslice.NewProfile()
	ordered, err := tbl.Filter(filters, byteslice.WithProfile(pOrdered))
	if err != nil {
		t.Fatal(err)
	}
	pWritten := byteslice.NewProfile()
	written, err := tbl.Filter(filters, byteslice.WithProfile(pWritten),
		byteslice.WithFilterOrder(byteslice.OrderAsWritten))
	if err != nil {
		t.Fatal(err)
	}
	if ordered.Count() != written.Count() {
		t.Fatalf("reordering changed results: %d vs %d", ordered.Count(), written.Count())
	}
	if pOrdered.Cycles() >= pWritten.Cycles() {
		t.Fatalf("reordering should save cycles: %.0f vs %.0f", pOrdered.Cycles(), pWritten.Cycles())
	}

	// Disjunction: the *least* selective predicate should go first.
	or := []byteslice.Filter{
		byteslice.IntFilter("a", byteslice.Lt, 8),    // ~0.2%
		byteslice.IntFilter("b", byteslice.Le, 4000), // ~97.7%
	}
	pOr := byteslice.NewProfile()
	resOr, err := tbl.FilterAny(or, byteslice.WithProfile(pOr))
	if err != nil {
		t.Fatal(err)
	}
	pOrWritten := byteslice.NewProfile()
	resOrW, err := tbl.FilterAny(or, byteslice.WithProfile(pOrWritten),
		byteslice.WithFilterOrder(byteslice.OrderAsWritten))
	if err != nil {
		t.Fatal(err)
	}
	if resOr.Count() != resOrW.Count() {
		t.Fatalf("disjunction reordering changed results")
	}
	if pOr.Cycles() >= pOrWritten.Cycles() {
		t.Fatalf("disjunction reordering should save cycles: %.0f vs %.0f", pOr.Cycles(), pOrWritten.Cycles())
	}
}
