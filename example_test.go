package byteslice_test

import (
	"fmt"
	"log"

	"byteslice"
)

// Example demonstrates the end-to-end flow: typed columns, a filtered
// table, decoded results.
func Example() {
	temps := []int64{12, 35, 28, 41, 7, 33}
	cities := []string{"Melbourne", "Melbourne", "Sydney", "Perth", "Hobart", "Melbourne"}

	temp, err := byteslice.NewIntColumn("temp_c", temps, -40, 60)
	if err != nil {
		log.Fatal(err)
	}
	city, err := byteslice.NewStringColumn("city", cities)
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := byteslice.NewTable(temp, city)
	if err != nil {
		log.Fatal(err)
	}

	res, err := tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("temp_c", byteslice.Gt, 30),
		byteslice.StringFilter("city", byteslice.Eq, "Melbourne"),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows() {
		v, _ := temp.LookupInt(nil, int(row))
		fmt.Printf("row %d: %d°C\n", row, v)
	}
	// Output:
	// row 1: 35°C
	// row 5: 33°C
}

// ExampleTable_FilterAny shows a disjunction with an out-of-domain
// constant that decides one arm trivially.
func ExampleTable_FilterAny() {
	hours := []int64{38, 45, 12, 60, 40}
	col, _ := byteslice.NewIntColumn("hours", hours, 0, 100)
	tbl, _ := byteslice.NewTable(col)

	res, _ := tbl.FilterAny([]byteslice.Filter{
		byteslice.IntFilter("hours", byteslice.Gt, 50),
		byteslice.IntFilter("hours", byteslice.Lt, -5), // below the domain: matches nothing
	})
	fmt.Println(res.Rows())
	// Output:
	// [3]
}

// ExampleTable_SumInt shows filtered SIMD aggregation.
func ExampleTable_SumInt() {
	qty, _ := byteslice.NewIntColumn("qty", []int64{5, 50, 7, 90, 3}, 0, 100)
	tbl, _ := byteslice.NewTable(qty)

	big, _ := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("qty", byteslice.Ge, 10)})
	sum, count, _ := tbl.SumInt("qty", big)
	fmt.Printf("%d units across %d large orders\n", sum, count)
	// Output:
	// 140 units across 2 large orders
}

// ExampleWithNulls shows SQL three-valued filter semantics.
func ExampleWithNulls() {
	// Row 1's value is a placeholder: the row is NULL.
	score, _ := byteslice.NewIntColumn("score", []int64{80, 0, 55}, 0, 100,
		byteslice.WithNulls([]int{1}))
	tbl, _ := byteslice.NewTable(score)

	// score < 90 is true for every non-NULL value, but NULL rows never match.
	res, _ := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("score", byteslice.Lt, 90)})
	fmt.Println(res.Rows(), score.IsNull(1))
	// Output:
	// [0 2] true
}

// ExampleWithFormat compares storage footprints across layouts.
func ExampleWithFormat() {
	vals := make([]int64, 1024)
	for _, f := range byteslice.Formats() {
		col, _ := byteslice.NewIntColumn("v", vals, 0, 2047, byteslice.WithFormat(f)) // 11-bit codes
		fmt.Printf("%s: %d bytes\n", f, col.SizeBytes())
	}
	// Output:
	// BitPacked: 1448 bytes
	// HBP: 1664 bytes
	// VBP: 1408 bytes
	// ByteSlice: 2048 bytes
}
