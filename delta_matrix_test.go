package byteslice_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"byteslice"
)

// TestDeltaMatrix drives every column kind through every storage format
// and NULL pattern end to end on the in-memory DeltaTable: build base →
// AppendRow (with NULLs) → query → Merge → query the sealed result.
func TestDeltaMatrix(t *testing.T) {
	const n = 37
	nullEvery := map[string]int{"none": 0, "sparse": 7, "dense": 2}
	formats := append(byteslice.Formats(), byteslice.FormatByteSliceC)
	for _, format := range formats {
		for patName, every := range nullEvery {
			t.Run(fmt.Sprintf("%s/%s", format, patName), func(t *testing.T) {
				cols, _ := matrixColumns(t, n, format, nil)
				base, err := byteslice.NewTable(cols...)
				if err != nil {
					t.Fatal(err)
				}
				d := byteslice.NewDeltaTable(base)
				words := []string{"ant", "bee", "cat", "dog"}
				const appended = 21
				for i := 0; i < appended; i++ {
					row := map[string]any{
						"i": int64(i - 100),
						"d": float64(i%70) / 8,
						"s": words[i%len(words)],
						"c": uint32(i * 3 % 512),
					}
					if every > 0 && i%every == 0 {
						row["i"] = nil
						row["d"] = nil
					}
					if err := d.AppendRow(row); err != nil {
						t.Fatal(err)
					}
				}

				wantRows := func() []int32 {
					// Base: i*11%400-200 in [-90, -50) → rows 10..13.
					want := []int32{10, 11, 12, 13}
					// Delta: i-100 ≥ -90 → i ≥ 10, non-NULL (< -50 always).
					for i := 10; i < appended; i++ {
						if every > 0 && i%every == 0 {
							continue
						}
						want = append(want, int32(n+i))
					}
					return want
				}
				filters := []byteslice.Filter{
					byteslice.IntFilter("i", byteslice.Ge, -90),
					byteslice.IntFilter("i", byteslice.Lt, -50),
				}
				check := func(stage string, res *byteslice.Result, err error) {
					t.Helper()
					if err != nil {
						t.Fatalf("%s: %v", stage, err)
					}
					got, want := res.Rows(), wantRows()
					if len(got) != len(want) {
						t.Fatalf("%s: %d matches, want %d (%v vs %v)", stage, len(got), len(want), got, want)
					}
					for j := range got {
						if got[j] != want[j] {
							t.Fatalf("%s: row[%d] = %d, want %d", stage, j, got[j], want[j])
						}
					}
				}

				res, err := d.Filter(filters)
				check("pre-merge", res, err)
				sres, err := d.FilterAny([]byteslice.Filter{
					byteslice.StringFilter("s", byteslice.Eq, "bee"),
					byteslice.CodeFilter("c", byteslice.Eq, 0),
				})
				if err != nil || sres.Count() == 0 {
					t.Fatalf("pre-merge strings: %d matches, err %v", sres.Count(), err)
				}

				merged, err := d.Merge()
				if err != nil {
					t.Fatal(err)
				}
				if merged.Len() != n+appended {
					t.Fatalf("merged len = %d", merged.Len())
				}
				res, err = merged.Filter(filters)
				check("post-merge", res, err)
				// The merged table round-trips the NULL pattern: the trivially
				// true range still excludes NULL rows.
				res, err = merged.Filter([]byteslice.Filter{byteslice.IntFilter("i", byteslice.Ge, -200)})
				if err != nil {
					t.Fatal(err)
				}
				nulls := 0
				for i := 0; i < appended; i++ {
					if every > 0 && i%every == 0 {
						nulls++
					}
				}
				if res.Count() != n+appended-nulls {
					t.Fatalf("post-merge NULL count: %d matched, want %d", res.Count(), n+appended-nulls)
				}
			})
		}
	}
}

// TestDeltaFilterBadColumn: predicate resolution failures surface as
// errors up front instead of being silently swallowed per row (the old
// per-row resolution path returned false for every delta row).
func TestDeltaFilterBadColumn(t *testing.T) {
	d := deltaFixture(t)
	if err := d.AppendRow(map[string]any{"qty": int64(60), "mode": "SHIP"}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Filter([]byteslice.Filter{byteslice.IntFilter("nope", byteslice.Ge, 1)}); err == nil {
		t.Fatal("filter on a missing column succeeded")
	}
	// An out-of-dictionary equality constant is trivially false — it
	// matches nothing (base or delta) rather than erroring.
	res, err := d.FilterAny([]byteslice.Filter{byteslice.StringFilter("mode", byteslice.Eq, "TRUCK")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 0 {
		t.Fatalf("out-of-dictionary Eq matched %d rows", res.Count())
	}
}

// TestDeltaContextCancel: the delta-side scan observes WithContext.
func TestDeltaContextCancel(t *testing.T) {
	d := deltaFixture(t)
	for i := 0; i < 10; i++ {
		if err := d.AppendRow(map[string]any{"qty": int64(i), "mode": "AIR"}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := d.Filter(
		[]byteslice.Filter{byteslice.IntFilter("qty", byteslice.Ge, 5)},
		byteslice.WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled delta filter = %v", err)
	}
}

// TestDeltaMergeContextCancel: MergeContext abandons the rebuild.
func TestDeltaMergeContextCancel(t *testing.T) {
	d := deltaFixture(t)
	if err := d.AppendRow(map[string]any{"qty": int64(1), "mode": "AIR"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.MergeContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled merge = %v", err)
	}
	// The receiver is untouched; a clean merge still works.
	if _, err := d.Merge(); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaObsStage: the delta scan lands as a "scan(delta)" stage in
// the query's collector next to the base stages.
func TestDeltaObsStage(t *testing.T) {
	d := deltaFixture(t)
	for i := 0; i < 4; i++ {
		if err := d.AppendRow(map[string]any{"qty": int64(i), "mode": "AIR"}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Filter([]byteslice.Filter{byteslice.IntFilter("qty", byteslice.Ge, 2)})
	if err != nil {
		t.Fatal(err)
	}
	qs := res.Stats()
	if qs == nil {
		t.Fatal("no stats on native delta query")
	}
	found := false
	for _, st := range qs.Stages {
		if st.Name == "scan(delta)" && st.Kind == "delta" && st.Rows == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no scan(delta) stage in %+v", qs.Stages)
	}
}

// TestDeltaMergePreservesZoneMaps: merged columns keep zone maps when
// their sources carried them.
func TestDeltaMergePreservesZoneMaps(t *testing.T) {
	qty := intColumn(t, "qty", []int64{5, 50, 7, 9}, 0, 100, byteslice.WithZoneMaps())
	tbl, err := byteslice.NewTable(qty)
	if err != nil {
		t.Fatal(err)
	}
	d := byteslice.NewDeltaTable(tbl)
	if err := d.AppendRow(map[string]any{"qty": int64(80)}); err != nil {
		t.Fatal(err)
	}
	merged, err := d.Merge()
	if err != nil {
		t.Fatal(err)
	}
	col, err := merged.Column("qty")
	if err != nil {
		t.Fatal(err)
	}
	if !col.HasZoneMaps() {
		t.Fatal("merge dropped zone maps")
	}
	res, err := merged.Filter([]byteslice.Filter{byteslice.IntFilter("qty", byteslice.Ge, 60)})
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.Rows(); len(rows) != 1 || rows[0] != 4 {
		t.Fatalf("rows = %v, want [4]", rows)
	}
}
