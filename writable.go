package byteslice

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"byteslice/internal/bitvec"
	"byteslice/internal/ingest"
	"byteslice/internal/obs"
	"byteslice/internal/plan"
)

// IngestTable is the writable facade over the delta-merge design (§2,
// after Krueger et al.): a single-writer append pipeline whose rows are
// made durable through a CRC-framed write-ahead log before they become
// queryable, accumulated in a small row-at-a-time tail, sealed into
// immutable ByteSlice segments, and periodically merged into a fresh
// read-optimised base epoch by a background merger.
//
// Readers are wait-free: every query loads one atomic epoch-view pointer
// and sees a consistent snapshot — the base epoch, the sealed segments
// and a fixed prefix of the tail — no matter how many appends, seals or
// merges race past it. Writers publish by swapping the pointer; nothing a
// published view references is ever mutated.
//
// Durability is an on-disk directory owned by this table:
//
//	MANIFEST        crash-atomic pointer to the current epoch's artifacts
//	base-<E>.bslc   the epoch's base snapshot (SaveFile format)
//	wal-<E>.log     the epoch's append-only WAL
//
// A merge writes the next epoch's base snapshot, rotates the WAL
// (re-appending the rows the merge does not cover) and swaps the manifest
// atomically, so a crash at any byte of the switch leaves either the old
// complete epoch or the new one — never a mix. OpenIngest replays the
// WAL to the last intact frame: a torn tail (crash mid-append) is
// truncated and replay succeeds with every acknowledged row; a full frame
// that fails its checksum is reported as ErrCorrupt, never papered over.
//
// When merging falls behind, appends keep succeeding until the unmerged
// delta reaches the configured bound, then fail with ErrBackpressure
// until a merge catches up. The background merger recovers panics,
// retries with bounded exponential backoff, and never blocks readers or
// the appender.
type IngestTable struct {
	dir string
	cfg ingestConfig

	// view is the epoch-view pointer readers load; see ingestView. Only
	// Load/Store touch it (publish happens under mu).
	view atomic.Pointer[ingestView]

	// mu serialises the write side: appends, seals, merge commits, close.
	// Queries never take it.
	mu        sync.Mutex
	wal       *ingest.WAL
	tailCodes [][]uint32 // canonical per-column tail arrays (views window them)
	tailNulls [][]bool
	closed    bool

	// mergeMu serialises whole merge attempts (background vs MergeNow).
	mergeMu sync.Mutex
	merger  *ingest.Merger
}

// Typed write-path errors, aliased from internal/ingest so errors.Is
// matches whichever vocabulary the caller imported.
var (
	// ErrBackpressure is returned by Append once the unmerged delta has
	// reached WithDeltaBound and merging hasn't caught up.
	ErrBackpressure = ingest.ErrBackpressure
	// ErrTableClosed is returned by Append and MergeNow after Close.
	ErrTableClosed = ingest.ErrClosed
)

// ErrSchema is returned when input rows do not match the table schema —
// wrong value count, missing or unknown columns, malformed CSV shape.
var ErrSchema = errors.New("byteslice: schema mismatch")

// ingestView is one immutable published snapshot of the table: readers
// load it once and never block. tailCodes/tailNulls are per-column
// (base-column order) windows over the writer's backing arrays, each
// exactly tailLen long; the writer appends beyond every published
// window's length and publishes a longer window afterwards, so no
// published element is ever written again.
type ingestView struct {
	epoch     uint64
	base      *Table
	sealed    []*Table
	tailCodes [][]uint32
	tailNulls [][]bool
	tailLen   int
}

// sealedRows is the row count across the sealed (unmerged) segments.
func (v *ingestView) sealedRows() int {
	n := 0
	for _, s := range v.sealed {
		n += s.n
	}
	return n
}

// deltaRows is the unmerged row count: sealed segments plus tail.
func (v *ingestView) deltaRows() int { return v.sealedRows() + v.tailLen }

// rows is the total row count the view exposes to queries.
func (v *ingestView) rows() int { return v.base.n + v.deltaRows() }

// IngestOption configures CreateIngest / OpenIngest.
type IngestOption func(*ingestConfig)

type ingestConfig struct {
	sealRows   int
	deltaBound int
	autoMerge  bool
	syncEach   bool
	merger     ingest.MergerConfig
}

func ingestDefaults() ingestConfig {
	return ingestConfig{sealRows: 4096, deltaBound: 1 << 18, autoMerge: true, syncEach: true}
}

func applyIngestOpts(opts []IngestOption) ingestConfig {
	cfg := ingestDefaults()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.sealRows < 1 {
		cfg.sealRows = 1
	}
	if cfg.deltaBound < cfg.sealRows {
		cfg.deltaBound = cfg.sealRows
	}
	return cfg
}

// WithSealRows sets how many tail rows accumulate before they are sealed
// into an immutable ByteSlice segment (default 4096). Smaller segments
// cut row-at-a-time tail scanning sooner; larger ones amortise the seal.
func WithSealRows(n int) IngestOption {
	return func(c *ingestConfig) { c.sealRows = n }
}

// WithDeltaBound caps the unmerged delta (sealed segments plus tail, in
// rows; default 262144). At the bound Append fails with ErrBackpressure
// — and triggers a merge — instead of growing the delta without limit
// while the merger is failing or behind.
func WithDeltaBound(n int) IngestOption {
	return func(c *ingestConfig) { c.deltaBound = n }
}

// WithAutoMerge enables (the default) or disables the cost-based merge
// trigger: after each append the plan.ShouldMerge advisory decides
// whether to wake the background merger. Disabled, merges happen only at
// the delta bound or via MergeNow.
func WithAutoMerge(enabled bool) IngestOption {
	return func(c *ingestConfig) { c.autoMerge = enabled }
}

// WithSyncedAppends controls per-append fsync (default true): every
// acknowledged Append is durable before it returns. Disabled, WAL writes
// are batched by the OS and fsynced at seals and merges — faster, but a
// power cut can lose the acknowledged-but-unsynced suffix (never corrupt
// the prefix).
func WithSyncedAppends(enabled bool) IngestOption {
	return func(c *ingestConfig) { c.syncEach = enabled }
}

// baseName / walName are an epoch's artifact filenames.
func baseName(e uint64) string { return fmt.Sprintf("base-%d.bslc", e) }
func walName(e uint64) string  { return fmt.Sprintf("wal-%d.log", e) }

// ingestErr translates an internal/ingest failure into the facade's
// vocabulary: corruption and version failures additionally wrap the
// package-level ErrCorrupt / ErrVersion so either sentinel matches.
func ingestErr(op string, err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ingest.ErrCorrupt):
		return fmt.Errorf("byteslice: %s: %w: %w", op, ErrCorrupt, err)
	case errors.Is(err, ingest.ErrVersion):
		return fmt.Errorf("byteslice: %s: %w: %w", op, ErrVersion, err)
	}
	return fmt.Errorf("byteslice: %s: %w", op, err)
}

// CreateIngest initialises dir as a new ingest directory around base
// (epoch 1: base snapshot, empty WAL, manifest) and returns the writable
// table. dir is created if missing; a directory that already holds a
// manifest is refused — use OpenIngest to resume it.
func CreateIngest(dir string, base *Table, opts ...IngestOption) (*IngestTable, error) {
	cfg := applyIngestOpts(opts)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("byteslice: create ingest: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ingest.ManifestName)); err == nil {
		return nil, fmt.Errorf("byteslice: create ingest: %w: %s already holds an ingest manifest (use OpenIngest)", os.ErrExist, dir)
	}
	const epoch = 1
	if err := base.SaveFile(filepath.Join(dir, baseName(epoch))); err != nil {
		return nil, err
	}
	wal, err := ingest.Create(filepath.Join(dir, walName(epoch)), epoch, uint64(base.Len()), cfg.syncEach)
	if err != nil {
		return nil, ingestErr("create ingest", err)
	}
	m := ingest.Manifest{Epoch: epoch, Base: baseName(epoch), WAL: walName(epoch)}
	if err := ingest.WriteManifest(dir, m); err != nil {
		wal.Close() //nolint:errcheck // already failing
		return nil, ingestErr("create ingest", err)
	}
	return newIngestTable(dir, cfg, base, wal, epoch, nil, nil), nil
}

// OpenIngest resumes an ingest directory: it reads the manifest, loads
// the epoch's base snapshot, replays the WAL to the last intact frame
// (truncating a torn tail) and re-publishes base + replayed rows. A WAL
// frame whose bytes verify wrong fails with ErrCorrupt; a WAL that does
// not belong to the base snapshot fails with ingest.ErrMismatch. Orphan
// artifacts from a crashed epoch switch are removed.
func OpenIngest(dir string, opts ...IngestOption) (*IngestTable, error) {
	cfg := applyIngestOpts(opts)
	m, err := ingest.ReadManifest(dir)
	if err != nil {
		return nil, ingestErr("open ingest "+dir, err)
	}
	base, err := LoadFile(filepath.Join(dir, m.Base))
	if err != nil {
		return nil, err
	}
	wal, rec, err := ingest.Open(filepath.Join(dir, m.WAL), cfg.syncEach)
	if err != nil {
		return nil, ingestErr("open ingest "+dir, err)
	}
	if wal.Epoch() != m.Epoch || wal.BaseRows() != uint64(base.Len()) {
		wal.Close() //nolint:errcheck // already failing
		return nil, fmt.Errorf("byteslice: open ingest %s: %w: WAL (epoch %d, %d base rows) vs manifest epoch %d over %d rows",
			dir, ingest.ErrMismatch, wal.Epoch(), wal.BaseRows(), m.Epoch, base.Len())
	}
	codes, nulls, err := decodeRowPayloads(base, rec.Rows)
	if err != nil {
		wal.Close() //nolint:errcheck // already failing
		return nil, ingestErr("open ingest "+dir, err)
	}
	obs.Default.Ingest.ReplayedRows.Add(int64(len(rec.Rows)))
	obs.Default.Ingest.TruncatedBytes.Add(rec.Truncated)
	t := newIngestTable(dir, cfg, base, wal, m.Epoch, codes, nulls)
	t.cleanOrphans(m)
	return t, nil
}

// newIngestTable assembles the in-memory state, publishes the first view
// (sealing full replayed segments) and starts the background merger.
func newIngestTable(dir string, cfg ingestConfig, base *Table, wal *ingest.WAL, epoch uint64, tailCodes [][]uint32, tailNulls [][]bool) *IngestTable {
	t := &IngestTable{dir: dir, cfg: cfg, wal: wal}
	if tailCodes == nil {
		tailCodes = make([][]uint32, len(base.cols))
		tailNulls = make([][]bool, len(base.cols))
	}
	t.tailCodes, t.tailNulls = tailCodes, tailNulls
	t.mu.Lock()
	t.publishLocked(epoch, base, nil)
	for len(t.tailCodes[0]) >= cfg.sealRows {
		// Replayed rows beyond a full segment seal immediately, so a
		// recovered table queries as fast as the one that crashed.
		if err := t.sealRowsLocked(cfg.sealRows); err != nil {
			break // keep the remainder row-at-a-time; appends still work
		}
	}
	t.mu.Unlock()
	t.merger = ingest.NewMerger(cfg.merger, t.mergeOnce)
	t.syncGauges()
	return t
}

// cleanOrphans removes epoch artifacts the manifest does not reference —
// the debris of a crash mid-epoch-switch — so retried merges can recreate
// them and the directory stays inspectable.
func (t *IngestTable) cleanOrphans(m ingest.Manifest) {
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		keep := name == ingest.ManifestName || name == m.Base || name == m.WAL
		orphan := strings.HasPrefix(name, "base-") && strings.HasSuffix(name, ".bslc") ||
			strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") ||
			strings.HasSuffix(name, ".tmp")
		if !keep && orphan {
			os.Remove(filepath.Join(t.dir, name)) //nolint:errcheck // best-effort
		}
	}
}

// encodeRowPayload frames one row for the WAL: per column (base order),
// a NULL flag byte then the 4-byte little-endian code.
func encodeRowPayload(codes []uint32, nulls []bool) []byte {
	buf := make([]byte, 5*len(codes))
	for i, c := range codes {
		if nulls[i] {
			buf[5*i] = 1
		}
		buf[5*i+1] = byte(c)
		buf[5*i+2] = byte(c >> 8)
		buf[5*i+3] = byte(c >> 16)
		buf[5*i+4] = byte(c >> 24)
	}
	return buf
}

// decodeRowPayloads validates replayed WAL rows against the base table's
// schema and code domains, transposing them into per-column tail arrays.
// Any violation — wrong width, a code outside its column's domain, a
// NULL flag with a non-zero code — wraps ingest.ErrCorrupt: the frame's
// checksum passed, so the log was written by something that disagrees
// with this schema, which must surface rather than decode as garbage.
func decodeRowPayloads(base *Table, rows [][]byte) ([][]uint32, [][]bool, error) {
	ncols := len(base.cols)
	codes := make([][]uint32, ncols)
	nulls := make([][]bool, ncols)
	for r, p := range rows {
		if len(p) != 5*ncols {
			return nil, nil, fmt.Errorf("%w: WAL row %d has %d bytes, schema wants %d", ingest.ErrCorrupt, r, len(p), 5*ncols)
		}
		for i, c := range base.cols {
			flag := p[5*i]
			code := uint32(p[5*i+1]) | uint32(p[5*i+2])<<8 | uint32(p[5*i+3])<<16 | uint32(p[5*i+4])<<24
			switch {
			case flag > 1:
				return nil, nil, fmt.Errorf("%w: WAL row %d column %s: NULL flag %d", ingest.ErrCorrupt, r, c.name, flag)
			case flag == 1 && code != 0:
				return nil, nil, fmt.Errorf("%w: WAL row %d column %s: NULL row carries code %d", ingest.ErrCorrupt, r, c.name, code)
			case flag == 0 && code > c.maxCode():
				return nil, nil, fmt.Errorf("%w: WAL row %d column %s: code %d exceeds width %d", ingest.ErrCorrupt, r, c.name, code, c.Width())
			case flag == 0 && c.kind == KindString && int64(code) >= int64(c.dict.Cardinality()):
				return nil, nil, fmt.Errorf("%w: WAL row %d column %s: code %d outside dictionary", ingest.ErrCorrupt, r, c.name, code)
			}
			codes[i] = append(codes[i], code)
			nulls[i] = append(nulls[i], flag == 1)
		}
	}
	return codes, nulls, nil
}

// Append appends one row: vals maps column names to native values (as
// DeltaTable.AppendRow) or nil for NULL. The row is validated and
// encoded atomically, made durable in the WAL, then published to
// readers; when Append returns nil the row survives a crash. At the
// delta bound it fails with ErrBackpressure and wakes the merger.
func (t *IngestTable) Append(vals map[string]any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("byteslice: append: %w", ErrTableClosed)
	}
	v := t.view.Load()
	if v.deltaRows() >= t.cfg.deltaBound {
		obs.Default.Ingest.Backpressure.Add(1)
		t.merger.Trigger()
		return fmt.Errorf("byteslice: append: %d unmerged delta rows at bound %d: %w",
			v.deltaRows(), t.cfg.deltaBound, ErrBackpressure)
	}
	base := v.base
	if len(vals) != len(base.cols) {
		return fmt.Errorf("%w: row has %d values, table has %d columns", ErrSchema, len(vals), len(base.cols))
	}
	codes := make([]uint32, len(base.cols))
	nulls := make([]bool, len(base.cols))
	for i, c := range base.cols {
		val, ok := vals[c.name]
		if !ok {
			return fmt.Errorf("%w: row is missing column %s", ErrSchema, c.name)
		}
		if val == nil {
			nulls[i] = true
			continue
		}
		code, err := c.encodeValue(val)
		if err != nil {
			return err
		}
		codes[i] = code
	}

	// Durability before visibility: the WAL frame lands (and, with synced
	// appends, reaches disk) before the row is published to readers.
	payload := encodeRowPayload(codes, nulls)
	if err := t.wal.Append(payload); err != nil {
		return fmt.Errorf("byteslice: append: %w", err)
	}
	for i := range t.tailCodes {
		t.tailCodes[i] = append(t.tailCodes[i], codes[i])
		t.tailNulls[i] = append(t.tailNulls[i], nulls[i])
	}
	t.publishLocked(v.epoch, base, v.sealed)
	if len(t.tailCodes[0]) >= t.cfg.sealRows {
		if err := t.sealRowsLocked(len(t.tailCodes[0])); err != nil {
			// The row is durable and published; a failed seal only means
			// it stays on the row-at-a-time path until the next attempt.
			_ = err
		}
	}
	obs.Default.Ingest.AppendedRows.Add(1)
	obs.Default.Ingest.AppendedBytes.Add(int64(len(payload)) + 9)
	obs.Default.Ingest.DeltaRows.Store(int64(t.view.Load().deltaRows()))
	obs.Default.Ingest.WALBytes.Store(t.wal.Size())
	if t.cfg.autoMerge && plan.ShouldMerge(base.n, t.view.Load().deltaRows()) {
		t.merger.Trigger()
	}
	return nil
}

// publishLocked builds and atomically publishes a new view over the
// current canonical tail arrays. Callers hold mu.
func (t *IngestTable) publishLocked(epoch uint64, base *Table, sealed []*Table) {
	n := 0
	if len(t.tailCodes) > 0 {
		n = len(t.tailCodes[0])
	}
	tc := make([][]uint32, len(t.tailCodes))
	tn := make([][]bool, len(t.tailNulls))
	for i := range t.tailCodes {
		tc[i] = t.tailCodes[i][:n:n]
		tn[i] = t.tailNulls[i][:n:n]
	}
	t.view.Store(&ingestView{epoch: epoch, base: base, sealed: sealed, tailCodes: tc, tailNulls: tn, tailLen: n})
}

// sealRowsLocked seals the first n tail rows into an immutable ByteSlice
// segment and publishes the new view. Callers hold mu.
func (t *IngestTable) sealRowsLocked(n int) error {
	v := t.view.Load()
	if n <= 0 || n > len(t.tailCodes[0]) {
		return nil
	}
	cols := make([]*Column, len(v.base.cols))
	for i, c := range v.base.cols {
		var nullRows []int
		for r := 0; r < n; r++ {
			if t.tailNulls[i][r] {
				nullRows = append(nullRows, r)
			}
		}
		col, err := rebuildLike(c, c.Format(), t.tailCodes[i][:n:n], nullRows)
		if err != nil {
			return err
		}
		cols[i] = col
	}
	seg, err := NewTable(cols...)
	if err != nil {
		return err
	}
	for i := range t.tailCodes {
		t.tailCodes[i] = append([]uint32(nil), t.tailCodes[i][n:]...)
		t.tailNulls[i] = append([]bool(nil), t.tailNulls[i][n:]...)
	}
	sealed := make([]*Table, 0, len(v.sealed)+1)
	sealed = append(append(sealed, v.sealed...), seg)
	t.publishLocked(v.epoch, v.base, sealed)
	obs.Default.Ingest.SealedSegments.Add(1)
	return nil
}

// mergeOnce is one merge attempt, the background merger's run function:
// build the next epoch's base off-lock from immutable data (the sealed
// segments; the tail is sealed first when nothing is sealed yet, so a
// forced merge always makes progress), then commit under the writer lock
// — rotate the WAL, re-appending the rows the merge does not cover
// (segments sealed after the snapshot, and the tail), swap the manifest
// atomically and publish the new epoch. A failure at any step leaves the
// previous epoch intact on disk and in memory; the merger retries with
// backoff.
func (t *IngestTable) mergeOnce() error {
	t.mergeMu.Lock()
	defer t.mergeMu.Unlock()

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	v := t.view.Load()
	if len(v.sealed) == 0 && v.tailLen > 0 {
		if err := t.sealRowsLocked(len(t.tailCodes[0])); err != nil {
			t.mu.Unlock()
			return err
		}
		v = t.view.Load()
	}
	covered := len(v.sealed)
	t.mu.Unlock()
	if covered == 0 {
		return nil
	}

	// Off-lock: the base and sealed segments are immutable, so the build
	// races nothing. Appends proceed concurrently; whatever they add
	// lands in segments after `covered` or in the tail, both re-appended
	// into the rotated WAL at commit.
	merged, err := mergeTables(v.base, v.sealed[:covered])
	if err != nil {
		obs.Default.Ingest.MergeFailures.Add(1)
		return err
	}
	newEpoch := v.epoch + 1
	basePath := filepath.Join(t.dir, baseName(newEpoch))
	if err := merged.SaveFile(basePath); err != nil {
		obs.Default.Ingest.MergeFailures.Add(1)
		return err
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		os.Remove(basePath) //nolint:errcheck // best-effort cleanup
		return nil
	}
	err = t.commitMergeLocked(merged, newEpoch, covered)
	if err != nil {
		obs.Default.Ingest.MergeFailures.Add(1)
	}
	return err
}

// commitMergeLocked rotates the WAL and swaps the manifest to publish
// newEpoch, whose base covers the first `covered` sealed segments.
// Callers hold mu. On failure the previous epoch's WAL, base and
// manifest are untouched and the partial new WAL is removed.
func (t *IngestTable) commitMergeLocked(merged *Table, newEpoch uint64, covered int) error {
	walPath := filepath.Join(t.dir, walName(newEpoch))
	os.Remove(walPath) //nolint:errcheck // clear debris of a failed earlier attempt
	nw, err := ingest.Create(walPath, newEpoch, uint64(merged.Len()), t.cfg.syncEach)
	if err != nil {
		return fmt.Errorf("byteslice: merge: %w", err)
	}
	abort := func(err error) error {
		nw.Close()         //nolint:errcheck // already failing
		os.Remove(walPath) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("byteslice: merge: %w", err)
	}
	v := t.view.Load()
	for _, seg := range v.sealed[covered:] {
		if err := appendTableRows(nw, seg); err != nil {
			return abort(err)
		}
	}
	for r := 0; r < len(t.tailCodes[0]); r++ {
		row := make([]uint32, len(t.tailCodes))
		nulls := make([]bool, len(t.tailCodes))
		for i := range t.tailCodes {
			row[i] = t.tailCodes[i][r]
			nulls[i] = t.tailNulls[i][r]
		}
		if err := nw.Append(encodeRowPayload(row, nulls)); err != nil {
			return abort(err)
		}
	}
	if err := nw.Sync(); err != nil {
		return abort(err)
	}
	m := ingest.Manifest{Epoch: newEpoch, Base: baseName(newEpoch), WAL: walName(newEpoch)}
	if err := ingest.WriteManifest(t.dir, m); err != nil {
		return abort(err)
	}

	// The manifest rename committed the switch; everything after is
	// bookkeeping on the now-stale epoch.
	old := t.wal
	t.wal = nw
	remaining := append([]*Table(nil), v.sealed[covered:]...)
	t.publishLocked(newEpoch, merged, remaining)
	oldPath := old.Path()
	old.Close()                                           //nolint:errcheck // stale epoch
	os.Remove(oldPath)                                    //nolint:errcheck // best-effort
	os.Remove(filepath.Join(t.dir, baseName(newEpoch-1))) //nolint:errcheck // best-effort
	obs.Default.Ingest.Merges.Add(1)
	obs.Default.Ingest.Epoch.Store(int64(newEpoch))
	obs.Default.Ingest.DeltaRows.Store(int64(t.view.Load().deltaRows()))
	obs.Default.Ingest.WALBytes.Store(t.wal.Size())
	return nil
}

// mergeTables rebuilds base plus the sealed segments into one fresh
// Table, column by column, preserving each column's format, encoders,
// zone maps and workload counters (rebuildLike).
func mergeTables(base *Table, sealed []*Table) (*Table, error) {
	total := base.n
	for _, s := range sealed {
		total += s.n
	}
	cols := make([]*Column, len(base.cols))
	for i, c := range base.cols {
		codes := make([]uint32, 0, total)
		bc, err := materializeCodes(nil, c) // nil ctx: background merge has no caller to cancel it
		if err != nil {
			return nil, queryErr(err)
		}
		codes = append(codes, bc...)
		var nullRows []int
		if c.nulls != nil {
			for _, r := range c.nulls.Positions(nil) {
				nullRows = append(nullRows, int(r))
			}
		}
		off := base.n
		for _, s := range sealed {
			sc, err := materializeCodes(nil, s.cols[i])
			if err != nil {
				return nil, queryErr(err)
			}
			codes = append(codes, sc...)
			if s.cols[i].nulls != nil {
				for _, r := range s.cols[i].nulls.Positions(nil) {
					nullRows = append(nullRows, off+int(r))
				}
			}
			off += s.n
		}
		col, err := rebuildLike(c, c.Format(), codes, nullRows)
		if err != nil {
			return nil, err
		}
		cols[i] = col
	}
	return NewTable(cols...)
}

// appendTableRows re-frames a sealed segment's rows into a WAL — the
// rotation path for segments a merge does not cover.
func appendTableRows(w *ingest.WAL, seg *Table) error {
	colCodes := make([][]uint32, len(seg.cols))
	for i, c := range seg.cols {
		codes, err := materializeCodes(nil, c)
		if err != nil {
			return queryErr(err)
		}
		colCodes[i] = codes
	}
	row := make([]uint32, len(seg.cols))
	nulls := make([]bool, len(seg.cols))
	for r := 0; r < seg.n; r++ {
		for i := range seg.cols {
			if seg.cols[i].IsNull(r) {
				row[i], nulls[i] = 0, true
			} else {
				row[i], nulls[i] = colCodes[i][r], false
			}
		}
		if err := w.Append(encodeRowPayload(row, nulls)); err != nil {
			return err
		}
	}
	return nil
}

// Filter evaluates the conjunction of the filters over one consistent
// view: the base epoch with its storage layouts, the sealed segments
// with theirs, the tail row-at-a-time. Row numbers are stable across
// appends and merges (base order, then append order). Readers never
// block: concurrent appends, seals and merges affect only later calls.
func (t *IngestTable) Filter(filters []Filter, opts ...QueryOption) (*Result, error) {
	return t.eval(filters, false, opts)
}

// FilterAny evaluates the disjunction over the same consistent view.
func (t *IngestTable) FilterAny(filters []Filter, opts ...QueryOption) (*Result, error) {
	return t.eval(filters, true, opts)
}

// Query evaluates a boolean expression tree over one consistent view,
// exactly as Table.Query does over an immutable table.
func (t *IngestTable) Query(e Expr, opts ...QueryOption) (*Result, error) {
	return t.Pin().Query(e, opts...)
}

// Pinned is one immutable published view of an IngestTable: the epoch's
// base, the sealed segments and a fixed tail prefix. Every query through
// the same Pinned sees exactly the same rows no matter how many appends,
// seals or merges race past it — Epoch and Len are the consistency anchor
// a result cache can key on, because the row set a Pinned exposes is
// fully determined by (Epoch, Len): appends grow Len within an epoch and
// merges bump Epoch without changing Len, and published rows are never
// mutated.
//
//bsvet:sealed
type Pinned struct {
	t *IngestTable
	v *ingestView
}

// Pin captures the table's current published view.
func (t *IngestTable) Pin() Pinned { return Pinned{t: t, v: t.view.Load()} }

// Epoch returns the pinned view's epoch.
func (p Pinned) Epoch() uint64 { return p.v.epoch }

// Len returns the pinned view's total row count.
func (p Pinned) Len() int { return p.v.rows() }

// DeltaLen returns the pinned view's unmerged row count.
func (p Pinned) DeltaLen() int { return p.v.deltaRows() }

// Base returns the pinned epoch's immutable base table — the schema
// authority for resolving filters against this view.
func (p Pinned) Base() *Table { return p.v.base }

// Filter evaluates the conjunction over the pinned view.
func (p Pinned) Filter(filters []Filter, opts ...QueryOption) (*Result, error) {
	return p.t.evalView(p.v, filters, false, opts)
}

// FilterAny evaluates the disjunction over the pinned view.
func (p Pinned) FilterAny(filters []Filter, opts ...QueryOption) (*Result, error) {
	return p.t.evalView(p.v, filters, true, opts)
}

// Query evaluates a boolean expression tree over the pinned view. Unlike
// IngestTable.Query called repeatedly, the sub-evaluations of one
// expression cannot straddle an append or merge: they all see this view.
func (p Pinned) Query(e Expr, opts ...QueryOption) (*Result, error) {
	return evalExpr(p, e, opts)
}

func (t *IngestTable) eval(filters []Filter, disjunct bool, opts []QueryOption) (*Result, error) {
	return t.evalView(t.view.Load(), filters, disjunct, opts)
}

func (t *IngestTable) evalView(v *ingestView, filters []Filter, disjunct bool, opts []QueryOption) (*Result, error) {
	var baseRes *Result
	var err error
	if disjunct {
		baseRes, err = v.base.FilterAny(filters, opts...)
	} else {
		baseRes, err = v.base.Filter(filters, opts...)
	}
	if err != nil {
		return nil, err
	}
	out := bitvec.New(v.rows())
	out.CopyBits(baseRes.bv)

	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}

	// Sealed segments scan with their native layouts. Their evaluations
	// run with per-query observability off so a logical query counts once
	// in the process-wide registry (the base evaluation).
	segOpts := append(append([]QueryOption(nil), opts...), WithObservability(false))
	off := v.base.n
	for _, seg := range v.sealed {
		var segRes *Result
		if disjunct {
			segRes, err = seg.FilterAny(filters, segOpts...)
		} else {
			segRes, err = seg.Filter(filters, segOpts...)
		}
		if err != nil {
			return nil, err
		}
		for _, r := range segRes.bv.Positions(nil) {
			out.Set(off+int(r), true)
		}
		off += seg.n
	}

	// Tail rows: hoisted predicates, row-at-a-time, cancellable.
	preds, err := resolveDeltaPreds(v.base, filters)
	if err != nil {
		return nil, err
	}
	st, done := cfg.stage(baseRes.stats, "scan(delta)", "delta")
	defer done()
	for r := 0; r < v.tailLen; r++ {
		if r%8192 == 0 {
			if err := cfg.ctxErr(); err != nil {
				return nil, err
			}
		}
		match := evalDeltaRow(preds, disjunct, func(p deltaPred) (uint32, bool) {
			return v.tailCodes[p.idx][r], v.tailNulls[p.idx][r]
		})
		out.Set(off+r, match)
	}
	if st != nil {
		st.AddRows(int64(v.tailLen), int64(v.tailLen*5*len(preds)))
	}
	return &Result{bv: out, explain: baseRes.explain, zoneSkipped: baseRes.zoneSkipped, stats: baseRes.stats}, nil
}

// Len returns the total queryable rows (base epoch + unmerged delta).
func (t *IngestTable) Len() int { return t.view.Load().rows() }

// DeltaLen returns the unmerged rows (sealed segments + tail).
func (t *IngestTable) DeltaLen() int { return t.view.Load().deltaRows() }

// Epoch returns the current epoch number.
func (t *IngestTable) Epoch() uint64 { return t.view.Load().epoch }

// Base returns the current epoch's immutable base table.
func (t *IngestTable) Base() *Table { return t.view.Load().base }

// MergeNow runs one synchronous merge attempt (serialised with the
// background merger) and reports its outcome.
func (t *IngestTable) MergeNow() error {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return fmt.Errorf("byteslice: merge: %w", ErrTableClosed)
	}
	return t.mergeOnce()
}

// MergeStats reports the background merger's lifetime successful merges
// and recovered panics, and its last failure (nil after a success).
func (t *IngestTable) MergeStats() (merges, panics int64, lastErr error) {
	return t.merger.Stats()
}

// Close stops the background merger (waiting out an in-flight merge),
// syncs and closes the WAL. Queries keep working on the last published
// view; appends and merges fail with ErrTableClosed.
func (t *IngestTable) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	// Outside mu: the merger's in-flight attempt needs the lock to
	// observe closed and bail.
	t.merger.Close()
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.wal.Close(); err != nil {
		return fmt.Errorf("byteslice: close ingest: %w", err)
	}
	return nil
}

// syncGauges publishes the pipeline's position to the process-wide
// registry (last table wins when several are open).
func (t *IngestTable) syncGauges() {
	v := t.view.Load()
	obs.Default.Ingest.Epoch.Store(int64(v.epoch))
	obs.Default.Ingest.DeltaRows.Store(int64(v.deltaRows()))
	obs.Default.Ingest.WALBytes.Store(t.wal.Size())
}
