package byteslice

import "io"

// Test-only exports: the fault-injection suite needs the legacy v1 writer
// (to exercise read compatibility) and the SaveFile write hook (to
// simulate crashes at exact byte offsets).

// WriteToV1 exposes the legacy v1 stream writer for compatibility tests
// and fuzz seeds.
func (t *Table) WriteToV1(w io.Writer) (int64, error) { return t.writeToV1(w) }

// SetSaveWriterHook interposes fn on SaveFile's byte stream; pass nil to
// restore direct writes. Tests must restore the previous hook when done.
func SetSaveWriterHook(fn func(io.Writer) io.Writer) { saveWriterHook = fn }

// NativeKernelFormats lists the formats with an entry in the native
// kernel dispatch table, so the registry test can assert every
// dispatchable layout also has a builder and a persistence tag.
func NativeKernelFormats() []Format {
	out := make([]Format, 0, len(nativeKernels))
	for f := range nativeKernels {
		out = append(out, f)
	}
	return out
}
