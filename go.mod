module byteslice

go 1.22
