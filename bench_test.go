// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per experiment; see DESIGN.md §4 for the index), plus raw
// wall-clock throughput benches of the emulated scan and lookup kernels.
//
// The per-figure benchmarks report the headline modelled metric of their
// experiment via b.ReportMetric — e.g. BenchmarkFig9Scan reports ByteSlice
// cycles/code at k=12 — so `go test -bench .` doubles as a compact
// reproduction summary. Full tables come from cmd/bsbench.
package byteslice_test

import (
	"strconv"
	"strings"
	"testing"

	"byteslice"
	"byteslice/internal/bitvec"
	"byteslice/internal/cache"
	"byteslice/internal/core"
	"byteslice/internal/datagen"
	"byteslice/internal/experiments"
	"byteslice/internal/kernel"
	"byteslice/internal/layout"
	"byteslice/internal/layouts"
	"byteslice/internal/perf"
	"byteslice/internal/simd"
)

// benchCfg is the scale the per-figure benchmarks run at: large enough for
// stable ratios, small enough that the full bench suite finishes quickly.
func benchCfg() experiments.Config {
	cfg := experiments.Quick()
	cfg.N = 1 << 18
	cfg.Widths = []int{8, 12, 16, 24, 32}
	cfg.TPCHRows = 50_000
	return cfg
}

// runExperiment executes one experiment per iteration and extracts a
// headline metric from its reports with pick.
func runExperiment(b *testing.B, id string, cfg experiments.Config,
	pick func([]*experiments.Report) (string, float64)) {
	b.Helper()
	var name string
	var val float64
	for i := 0; i < b.N; i++ {
		reports, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		name, val = pick(reports)
	}
	b.ReportMetric(val, name)
}

// cellValue parses a numeric report cell (strips x/% suffixes).
func cellValue(b *testing.B, r *experiments.Report, row, col int) float64 {
	b.Helper()
	s := r.Rows[row][col]
	for len(s) > 0 && (s[len(s)-1] == 'x' || s[len(s)-1] == '%') {
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %d,%d = %q: %v", row, col, r.Rows[row][col], err)
	}
	return v
}

func colOf(b *testing.B, r *experiments.Report, name string) int {
	b.Helper()
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	b.Fatalf("no column %q in %v", name, r.Columns)
	return -1
}

func rowOf(b *testing.B, r *experiments.Report, key string) int {
	b.Helper()
	for i, row := range r.Rows {
		if row[0] == key {
			return i
		}
	}
	b.Fatalf("no row %q in %s", key, r.ID)
	return -1
}

func BenchmarkTable1EarlyStop(b *testing.B) {
	runExperiment(b, "table1", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		// Expected bits/code for ByteSlice (paper: 8.94). The cell reads
		// like "8.94 bits/code".
		last := rs[0].Rows[len(rs[0].Rows)-1]
		fields := strings.Fields(last[2])
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			b.Fatal(err)
		}
		return "BSbits/code", v
	})
}

func BenchmarkFig8Lookup(b *testing.B) {
	cfg := benchCfg()
	cfg.Widths = []int{16, 32}
	cfg.Lookups = 20_000
	runExperiment(b, "fig8", cfg, func(rs []*experiments.Report) (string, float64) {
		r := rs[0]
		row := rowOf(b, r, "32")
		return "VBP/BS-lookup-ratio", cellValue(b, r, row, colOf(b, r, "VBP")) /
			cellValue(b, r, row, colOf(b, r, "ByteSlice"))
	})
}

func BenchmarkFig9Scan(b *testing.B) {
	runExperiment(b, "fig9", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0] // cycles, OP <
		return "BScycles/code@k12", cellValue(b, r, rowOf(b, r, "12"), colOf(b, r, "ByteSlice"))
	})
}

func BenchmarkFig10EarlyStop(b *testing.B) {
	runExperiment(b, "fig10", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0]
		row := rowOf(b, r, "32")
		return "ES-speedup@k32", cellValue(b, r, row, colOf(b, r, "ByteSlice w/o ES")) /
			cellValue(b, r, row, colOf(b, r, "ByteSlice"))
	})
}

func BenchmarkFig11Skew(b *testing.B) {
	runExperiment(b, "fig11", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0] // zipf sweep
		return "BScycles/code@zipf2", cellValue(b, r, len(r.Rows)-1, colOf(b, r, "ByteSlice"))
	})
}

func BenchmarkFig12Conjunction(b *testing.B) {
	runExperiment(b, "fig12", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0]
		return "CFcycles/tuple@0.1%", cellValue(b, r, len(r.Rows)-1, colOf(b, r, "BS(Column-First)"))
	})
}

func BenchmarkFig13Threads(b *testing.B) {
	cfg := benchCfg()
	cfg.Widths = []int{8, 16, 24}
	runExperiment(b, "fig13", cfg, func(rs []*experiments.Report) (string, float64) {
		r := rs[0]
		return "BScodes/cycle@8t", cellValue(b, r, len(r.Rows)-1, colOf(b, r, "ByteSlice"))
	})
}

func BenchmarkFig14TPCH(b *testing.B) {
	runExperiment(b, "fig14", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0]
		return "BSspeedup@Q6", cellValue(b, r, rowOf(b, r, "Q6"), colOf(b, r, "ByteSlice"))
	})
}

func BenchmarkFig15BankWidth(b *testing.B) {
	runExperiment(b, "fig15", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[1] // scan report
		row := rowOf(b, r, "24")
		return "16bit/8bit-scan-ratio", cellValue(b, r, row, colOf(b, r, "16-Bit-Slice")) /
			cellValue(b, r, row, colOf(b, r, "ByteSlice"))
	})
}

func BenchmarkFig16OtherOps(b *testing.B) {
	runExperiment(b, "fig16", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0] // cycles, OP >
		return "BScycles/code@k12", cellValue(b, r, rowOf(b, r, "12"), colOf(b, r, "ByteSlice"))
	})
}

func BenchmarkFig17Sel90(b *testing.B) {
	runExperiment(b, "fig17", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0]
		return "BScycles/code@k12", cellValue(b, r, rowOf(b, r, "12"), colOf(b, r, "ByteSlice"))
	})
}

func BenchmarkFig18Sel1(b *testing.B) {
	runExperiment(b, "fig18", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0]
		return "BScycles/code@k12", cellValue(b, r, rowOf(b, r, "12"), colOf(b, r, "ByteSlice"))
	})
}

func BenchmarkFig19Disjunction(b *testing.B) {
	runExperiment(b, "fig19", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0]
		return "CFcycles/tuple@10%", cellValue(b, r, len(r.Rows)-1, colOf(b, r, "BS(Column-First)"))
	})
}

func BenchmarkFig20Breakdown(b *testing.B) {
	runExperiment(b, "fig20", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0]
		// Q1's ByteSlice lookup share (the lookup-dominant query).
		for i, row := range r.Rows {
			if row[0] == "Q1" && row[1] == "ByteSlice" {
				return "Q1-BS-lookupcyc/tuple", cellValue(b, r, i, 3)
			}
		}
		b.Fatal("Q1/ByteSlice row missing")
		return "", 0
	})
}

func BenchmarkFig21SkewedTPCH(b *testing.B) {
	runExperiment(b, "fig21", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0] // zipf = 1
		return "BSspeedup@Q6-zipf1", cellValue(b, r, rowOf(b, r, "Q6"), colOf(b, r, "ByteSlice"))
	})
}

func BenchmarkFig22RealData(b *testing.B) {
	runExperiment(b, "fig22", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0] // ADULT speed-ups
		return "BSspeedup@A1", cellValue(b, r, rowOf(b, r, "A1"), colOf(b, r, "ByteSlice"))
	})
}

func BenchmarkHeadline(b *testing.B) {
	runExperiment(b, "headline", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0]
		return "BScycles/code@k12", cellValue(b, r, rowOf(b, r, "12"), 1)
	})
}

func BenchmarkAblationTailOption(b *testing.B) {
	runExperiment(b, "ablation-tail", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0]
		row := rowOf(b, r, "20")
		return "Opt2/Opt1-lookup-ratio", cellValue(b, r, row, 4) / cellValue(b, r, row, 3)
	})
}

func BenchmarkAblationTau(b *testing.B) {
	runExperiment(b, "ablation-tau", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0]
		return "VBPcycles/code@tau4", cellValue(b, r, rowOf(b, r, "4"), 1)
	})
}

func BenchmarkAblationInverseMovemask(b *testing.B) {
	runExperiment(b, "ablation-inverse-movemask", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		r := rs[0]
		last := len(r.Rows) - 1
		return "expand/condense-ratio", cellValue(b, r, last, 2) / cellValue(b, r, last, 1)
	})
}

// --- Raw wall-clock throughput of the emulated kernels ---

// BenchmarkScanWall measures real Go throughput of each layout's scan over
// 1M 12-bit codes (the emulated engine is itself SWAR-optimised).
func BenchmarkScanWall(b *testing.B) {
	const n, k = 1 << 20, 12
	codes := datagen.Uniform(datagen.NewRand(1), n, k)
	p := layout.Predicate{Op: layout.Lt, C1: datagen.SelectivityConstant(codes, 0.1)}
	for _, name := range layouts.Names {
		l := layouts.Builders[name](codes, k, cache.NewArena(64))
		b.Run(name, func(b *testing.B) {
			prof := perf.NewProfileNoCache()
			e := simd.New(prof)
			out := bitvec.New(n)
			b.SetBytes(int64(n * k / 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Scan(e, p, out)
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds()/1e6, "Mcodes/s")
		})
	}
}

// BenchmarkLookupWall measures real Go throughput of random lookups.
func BenchmarkLookupWall(b *testing.B) {
	const n, k = 1 << 20, 20
	codes := datagen.Uniform(datagen.NewRand(2), n, k)
	rng := datagen.NewRand(3)
	idx := make([]int, 4096)
	for i := range idx {
		idx[i] = rng.IntN(n)
	}
	for _, name := range layouts.Names {
		l := layouts.Builders[name](codes, k, cache.NewArena(64))
		b.Run(name, func(b *testing.B) {
			e := simd.New(perf.NewProfileNoCache())
			b.ResetTimer()
			var sink uint32
			for i := 0; i < b.N; i++ {
				sink ^= l.Lookup(e, idx[i&4095])
			}
			_ = sink
		})
	}
}

// BenchmarkPublicAPIFilter measures the end-to-end public API path.
func BenchmarkPublicAPIFilter(b *testing.B) {
	const n = 1 << 20
	rng := datagen.NewRand(4)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.IntN(100000))
	}
	col, err := byteslice.NewIntColumn("v", vals, 0, 99999)
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := byteslice.NewTable(col)
	if err != nil {
		b.Fatal(err)
	}
	filters := []byteslice.Filter{byteslice.IntFilter("v", byteslice.Between, 1000, 2000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Filter(filters); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
}

func BenchmarkAVX512Projection(b *testing.B) {
	runExperiment(b, "avx512", benchCfg(), func(rs []*experiments.Report) (string, float64) {
		gap := rs[1]
		return "VBP/BS-instr@S512", cellValue(b, gap, 1, 1)
	})
}

// BenchmarkAggregateSum measures the masked SIMD sum over a filtered
// ByteSlice column (modelled cycles/row via the profile, wall ns/op).
func BenchmarkAggregateSum(b *testing.B) {
	const n, k = 1 << 20, 20
	codes := datagen.Uniform(datagen.NewRand(7), n, k)
	col := layouts.Builders["ByteSlice"](codes, k, cache.NewArena(64))
	bs := col.(interface {
		Sum(*simd.Engine, *bitvec.Vector) (uint64, int)
		Scan(*simd.Engine, layout.Predicate, *bitvec.Vector)
	})
	prof := perf.NewProfile()
	e := simd.New(prof)
	mask := bitvec.New(n)
	bs.Scan(e, layout.Predicate{Op: layout.Gt, C1: 1 << 19}, mask)
	prof.Reset()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		s, _ := bs.Sum(e, mask)
		sink ^= s
	}
	_ = sink
	b.ReportMetric(prof.Cycles()/float64(n)/float64(b.N), "cycles/row")
}

// --- Native SWAR kernels vs the modelled engine ---
//
// The Engine/Native benchmark pairs below share data and predicate so
// their ratio is the real speed-up of the unprofiled fast path (the
// acceptance bar is >=10x at k=12, single-threaded).

// nativeBenchColumn builds the shared 1M-row column the native-vs-engine
// scan benchmarks run over, with a ~10%-selectivity Lt predicate.
func nativeBenchColumn(k int) (*core.ByteSlice, layout.Predicate) {
	const n = 1 << 20
	codes := datagen.Uniform(datagen.NewRand(9), n, k)
	col := core.New(codes, k, nil)
	return col, layout.Predicate{Op: layout.Lt, C1: datagen.SelectivityConstant(codes, 0.1)}
}

// BenchmarkEngineScan is the modelled-engine (profiled-path) scan per
// width — the baseline the native kernels are measured against.
func BenchmarkEngineScan(b *testing.B) {
	for _, k := range []int{8, 12, 16, 24, 32} {
		b.Run("k="+strconv.Itoa(k), func(b *testing.B) {
			col, p := nativeBenchColumn(k)
			e := simd.New(perf.NewProfileNoCache())
			out := bitvec.New(col.Len())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				col.Scan(e, p, out)
			}
			b.ReportMetric(float64(col.Len()*b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
		})
	}
}

// BenchmarkNativeScan is the unprofiled SWAR fast-path scan per width.
func BenchmarkNativeScan(b *testing.B) {
	for _, k := range []int{8, 12, 16, 24, 32} {
		b.Run("k="+strconv.Itoa(k), func(b *testing.B) {
			col, p := nativeBenchColumn(k)
			out := bitvec.New(col.Len())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernel.Scan(col, p, out)
			}
			b.ReportMetric(float64(col.Len()*b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
		})
	}
}

// BenchmarkNativeScanParallel sweeps the worker pool at k=12 to show the
// scaling curve of the native path.
func BenchmarkNativeScanParallel(b *testing.B) {
	col, p := nativeBenchColumn(12)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(strconv.Itoa(workers), func(b *testing.B) {
			out := bitvec.New(col.Len())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernel.ParallelScan(col, p, workers, out)
			}
			b.ReportMetric(float64(col.Len()*b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
		})
	}
}

// BenchmarkParallelScanWall measures real goroutine-parallel scan
// throughput over one shared ByteSlice column.
func BenchmarkParallelScanWall(b *testing.B) {
	const n, k = 1 << 21, 16
	codes := datagen.Uniform(datagen.NewRand(8), n, k)
	col := core.New(codes, k, cache.NewArena(64))
	p := layout.Predicate{Op: layout.Lt, C1: datagen.SelectivityConstant(codes, 0.1)}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(strconv.Itoa(workers), func(b *testing.B) {
			out := bitvec.New(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				col.ParallelScan(p, workers, out)
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds()/1e6, "Mcodes/s")
		})
	}
}
