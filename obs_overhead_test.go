package byteslice_test

import (
	"fmt"
	"testing"

	"byteslice"
)

// BenchmarkFilterObservability pairs the same zoned Between scan with
// observability on (the default) and off, so `go test -bench
// Observability` shows the per-query cost of the depth/zone accounting
// side by side. The design target is <2% on a full-column scan: the hot
// loops only carry a nil-checked depth-histogram pointer, and counters
// flush to atomics once per 256-segment batch.
func BenchmarkFilterObservability(b *testing.B) {
	const n = 1 << 20
	tbl := overheadTable(b, n)
	f := []byteslice.Filter{byteslice.IntFilter("a", byteslice.Between, 1000, 2000)}
	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("obs=%v", on), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				res, err := tbl.Filter(f, byteslice.WithObservability(on))
				if err != nil {
					b.Fatal(err)
				}
				_ = res.Count()
			}
		})
	}
}

// TestObservabilityOverhead guards the "<2% when disabled" contract: a
// scan with observability explicitly disabled must run within a generous
// envelope of the default-on path. The hard sub-2% number comes from the
// benchmark above on quiet hardware; this test only catches the failure
// mode that matters in CI — the disabled path accidentally picking up the
// instrumented loops (or the instrumented path growing per-segment atomic
// traffic), either of which shows up as a gross, not marginal, gap.
func TestObservabilityOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	const n = 1 << 20
	tbl := overheadTable(t, n)
	f := []byteslice.Filter{byteslice.IntFilter("a", byteslice.Between, 1000, 2000)}

	measure := func(on bool) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := tbl.Filter(f, byteslice.WithObservability(on))
				if err != nil {
					b.Fatal(err)
				}
				_ = res.Count()
			}
		})
		return float64(r.NsPerOp())
	}

	// Interleave and keep the best of three per mode: shared CI runners
	// make single timings useless, minima are stable.
	off, on := measure(false), measure(true)
	for i := 0; i < 2; i++ {
		if v := measure(false); v < off {
			off = v
		}
		if v := measure(true); v < on {
			on = v
		}
	}
	ratio := on / off
	t.Logf("scan ns/op: obs off %.0f, obs on %.0f, ratio %.3f", off, on, ratio)
	// 1.5x is deliberately far looser than the 2% design target — loop
	// shapes regressions arrive as integer factors, not percentages, and
	// anything tighter flakes on loaded runners.
	if ratio > 1.5 {
		t.Fatalf("observability overhead ratio %.2f exceeds 1.5x (off %.0fns, on %.0fns)", ratio, off, on)
	}
}

// overheadTable builds a 17-bit sorted zone-mapped column large enough
// that the scan dominates query setup.
func overheadTable(tb testing.TB, n int) *byteslice.Table {
	tb.Helper()
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 100000)
	}
	c, err := byteslice.NewIntColumn("a", vals, 0, 100000, byteslice.WithZoneMaps())
	if err != nil {
		tb.Fatal(err)
	}
	tbl, err := byteslice.NewTable(c)
	if err != nil {
		tb.Fatal(err)
	}
	return tbl
}
