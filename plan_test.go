package byteslice_test

import (
	"math/rand/v2"
	"strings"
	"testing"

	"byteslice"
)

// planTable builds a three-column table over the given distributions:
// "a" sorted with zone maps, "b" clustered with zone maps, "c" uniform
// without. All columns share the [0, 9999] domain.
func planTable(t *testing.T, n int) (*byteslice.Table, []int64, []int64, []int64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(7, 7)) //nolint:gosec
	a := make([]int64, n)
	b := make([]int64, n)
	c := make([]int64, n)
	for i := range a {
		a[i] = int64(i * 10000 / n) // sorted
		if i%512 == 0 {
			// New cluster band every 512 rows.
			b[i] = int64(rng.IntN(9000))
		} else {
			b[i] = b[i-1] + int64(rng.IntN(3))
			if b[i] > 9999 {
				b[i] = 9999
			}
		}
		c[i] = int64(rng.IntN(10000))
	}
	tbl, err := byteslice.NewTable(
		intColumn(t, "a", a, 0, 9999, byteslice.WithZoneMaps()),
		intColumn(t, "b", b, 0, 9999, byteslice.WithZoneMaps()),
		intColumn(t, "c", c, 0, 9999),
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, a, b, c
}

// TestNativeZoneMapPruning is the regression test for the dispatch bug
// where the zone-map arm was unreachable on the native path: a native scan
// over a sorted zone-mapped column must actually skip segments.
func TestNativeZoneMapPruning(t *testing.T) {
	tbl, a, _, _ := planTable(t, 1<<16)
	res, err := tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("a", byteslice.Between, 1000, 2000),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range a {
		if v >= 1000 && v <= 2000 {
			want++
		}
	}
	if res.Count() != want {
		t.Fatalf("count = %d, want %d", res.Count(), want)
	}
	segs := (1 << 16) / 32
	if res.ZoneSkipped() < segs/2 {
		t.Fatalf("ZoneSkipped = %d, want most of %d segments pruned on sorted data", res.ZoneSkipped(), segs)
	}
	if !strings.Contains(res.Explain(), "zone=") {
		t.Fatalf("Explain should report the zone prune rate:\n%s", res.Explain())
	}

	// Zone maps must also prune when the zoned column is a non-driving
	// conjunct (the pipelined-zoned kernel).
	res2, err := tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("c", byteslice.Lt, 5000),
		byteslice.IntFilter("a", byteslice.Lt, 500),
	}, byteslice.WithFilterOrder(byteslice.OrderAsWritten))
	if err != nil {
		t.Fatal(err)
	}
	if res2.ZoneSkipped() == 0 {
		t.Fatal("pipelined scan over a zoned column should prune segments")
	}
}

// TestExplain pins the Result.Explain surface on both execution paths.
func TestExplain(t *testing.T) {
	tbl, _, _, _ := planTable(t, 1<<14)
	filters := []byteslice.Filter{
		byteslice.IntFilter("a", byteslice.Lt, 2000),
		byteslice.IntFilter("c", byteslice.Ge, 5000),
	}
	res, err := tbl.Filter(filters)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan: 2 predicate(s)", "order:", "strategy:", "workers:"} {
		if !strings.Contains(res.Explain(), want) {
			t.Fatalf("Explain missing %q:\n%s", want, res.Explain())
		}
	}
	prof, err := tbl.Filter(filters, byteslice.WithProfile(byteslice.NewProfile()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prof.Explain(), "modelled") {
		t.Fatalf("profiled Explain should note the modelled path:\n%s", prof.Explain())
	}
	if prof.ZoneSkipped() != 0 {
		t.Fatalf("modelled path reports pruning via the profile, not ZoneSkipped (= %d)", prof.ZoneSkipped())
	}

	// Query joins one plan block per homogeneous group.
	qres, err := tbl.Query(byteslice.Any(
		byteslice.Leaf(byteslice.IntFilter("a", byteslice.Lt, 100)),
		byteslice.All(
			byteslice.Leaf(byteslice.IntFilter("b", byteslice.Lt, 5000)),
			byteslice.Leaf(byteslice.IntFilter("c", byteslice.Lt, 5000)),
		),
	))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(qres.Explain(), "plan:") < 2 {
		t.Fatalf("Query Explain should join the groups' plans:\n%s", qres.Explain())
	}
}

// TestPlannerMatchesBaseline is the differential test for the cost-based
// planner: whatever order, strategy and worker count it chooses, the result
// must be bit-identical to the unplanned baseline (StrategyBaseline with
// OrderAsWritten) and to the modelled engine path.
func TestPlannerMatchesBaseline(t *testing.T) {
	tbl, _, _, _ := planTable(t, 1<<15+13) // odd length exercises padding
	queries := [][]byteslice.Filter{
		{byteslice.IntFilter("a", byteslice.Lt, 700)},
		{
			byteslice.IntFilter("a", byteslice.Between, 2000, 6000),
			byteslice.IntFilter("c", byteslice.Lt, 9000),
		},
		{
			byteslice.IntFilter("c", byteslice.Ge, 100),
			byteslice.IntFilter("b", byteslice.Lt, 4000),
			byteslice.IntFilter("a", byteslice.Ne, 5000),
		},
	}
	strategies := []byteslice.Strategy{
		byteslice.StrategyColumnFirst, byteslice.StrategyPredicateFirst, byteslice.StrategyBaseline,
	}
	for qi, filters := range queries {
		for _, disjunct := range []bool{false, true} {
			eval := func(opts ...byteslice.QueryOption) *byteslice.Result {
				var res *byteslice.Result
				var err error
				if disjunct {
					res, err = tbl.FilterAny(filters, opts...)
				} else {
					res, err = tbl.Filter(filters, opts...)
				}
				if err != nil {
					t.Fatalf("query %d disjunct=%v: %v", qi, disjunct, err)
				}
				return res
			}
			want := eval(byteslice.WithStrategy(byteslice.StrategyBaseline),
				byteslice.WithFilterOrder(byteslice.OrderAsWritten),
				byteslice.WithParallelism(1))
			got := eval() // planner decides everything
			if got.Count() != want.Count() {
				t.Fatalf("query %d disjunct=%v: planned count %d, baseline %d\n%s",
					qi, disjunct, got.Count(), want.Count(), got.Explain())
			}
			for _, s := range strategies {
				if res := eval(byteslice.WithStrategy(s)); res.Count() != want.Count() {
					t.Fatalf("query %d disjunct=%v strategy=%v: count %d, baseline %d",
						qi, disjunct, s, res.Count(), want.Count())
				}
			}
			engine := eval(byteslice.WithProfile(byteslice.NewProfile()))
			if engine.Count() != want.Count() {
				t.Fatalf("query %d disjunct=%v: engine count %d, baseline %d",
					qi, disjunct, engine.Count(), want.Count())
			}
		}
	}
}

// TestFusedAggregatesMatchTwoPass checks every fused *Where entry point
// against the explicit Filter + aggregate composition, including the
// fallback cases (profiled run, nullable column, trivial filter).
func TestFusedAggregatesMatchTwoPass(t *testing.T) {
	n := 1<<14 + 5
	rng := rand.New(rand.NewPCG(11, 11)) //nolint:gosec
	fv := make([]int64, n)
	iv := make([]int64, n)
	dv := make([]float64, n)
	for i := range fv {
		fv[i] = int64(rng.IntN(1000))
		iv[i] = int64(rng.IntN(100000)) - 50000
		dv[i] = float64(rng.IntN(10000)) / 100
	}
	fcol := intColumn(t, "f", fv, 0, 999, byteslice.WithZoneMaps())
	icol := intColumn(t, "v", iv, -50000, 50000)
	dcol, err := byteslice.NewDecimalColumn("d", dv, 0, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	nullable, err := byteslice.NewIntColumn("nv", iv, -50000, 50000, byteslice.WithNulls([]int{0, 7, 4097}))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := byteslice.NewTable(fcol, icol, dcol, nullable)
	if err != nil {
		t.Fatal(err)
	}

	filters := []byteslice.Filter{
		byteslice.IntFilter("f", byteslice.Lt, 100),
		byteslice.IntFilter("f", byteslice.Between, 400, 600),
		byteslice.IntFilter("f", byteslice.Eq, 512),
		byteslice.IntFilter("f", byteslice.Lt, -3),    // trivially false
		byteslice.IntFilter("f", byteslice.Ge, -1000), // trivially true
	}
	profile := byteslice.WithProfile(byteslice.NewProfile())
	for fi, f := range filters {
		res, err := tbl.Filter([]byteslice.Filter{f})
		if err != nil {
			t.Fatalf("filter %d: %v", fi, err)
		}
		for _, col := range []string{"v", "nv"} {
			wantSum, wantN, err := tbl.SumInt(col, res)
			if err != nil {
				t.Fatal(err)
			}
			gotSum, gotN, err := tbl.SumIntWhere(col, f)
			if err != nil {
				t.Fatal(err)
			}
			if gotSum != wantSum || gotN != wantN {
				t.Fatalf("filter %d col %s: SumIntWhere = %d/%d, two-pass %d/%d", fi, col, gotSum, gotN, wantSum, wantN)
			}
			// The profiled run must fall back and still agree.
			gotSum, gotN, err = tbl.SumIntWhere(col, f, profile)
			if err != nil {
				t.Fatal(err)
			}
			if gotSum != wantSum || gotN != wantN {
				t.Fatalf("filter %d col %s: profiled SumIntWhere = %d/%d, want %d/%d", fi, col, gotSum, gotN, wantSum, wantN)
			}
		}

		wantMin, wantOK, _ := tbl.MinInt("v", res)
		gotMin, gotOK, err := tbl.MinIntWhere("v", f)
		if err != nil {
			t.Fatal(err)
		}
		if gotOK != wantOK || gotMin != wantMin {
			t.Fatalf("filter %d: MinIntWhere = %d/%v, want %d/%v", fi, gotMin, gotOK, wantMin, wantOK)
		}
		wantMax, wantOK, _ := tbl.MaxInt("v", res)
		gotMax, gotOK, err := tbl.MaxIntWhere("v", f)
		if err != nil {
			t.Fatal(err)
		}
		if gotOK != wantOK || gotMax != wantMax {
			t.Fatalf("filter %d: MaxIntWhere = %d/%v, want %d/%v", fi, gotMax, gotOK, wantMax, wantOK)
		}

		wantDSum, wantDN, _ := tbl.SumDecimal("d", res)
		gotDSum, gotDN, err := tbl.SumDecimalWhere("d", f)
		if err != nil {
			t.Fatal(err)
		}
		if gotDSum != wantDSum || gotDN != wantDN {
			t.Fatalf("filter %d: SumDecimalWhere = %v/%d, want %v/%d", fi, gotDSum, gotDN, wantDSum, wantDN)
		}
		wantDMin, wantDOK, _ := tbl.MinDecimal("d", res)
		gotDMin, gotDOK, err := tbl.MinDecimalWhere("d", f)
		if err != nil {
			t.Fatal(err)
		}
		if gotDOK != wantDOK || gotDMin != wantDMin {
			t.Fatalf("filter %d: MinDecimalWhere = %v/%v, want %v/%v", fi, gotDMin, gotDOK, wantDMin, wantDOK)
		}
		wantDMax, wantDOK, _ := tbl.MaxDecimal("d", res)
		gotDMax, gotDOK, err := tbl.MaxDecimalWhere("d", f)
		if err != nil {
			t.Fatal(err)
		}
		if gotDOK != wantDOK || gotDMax != wantDMax {
			t.Fatalf("filter %d: MaxDecimalWhere = %v/%v, want %v/%v", fi, gotDMax, gotDOK, wantDMax, wantDOK)
		}
	}

	if _, _, err := tbl.SumIntWhere("zzz", filters[0]); err == nil {
		t.Fatal("unknown value column should error")
	}
	if _, _, err := tbl.SumIntWhere("v", byteslice.IntFilter("zzz", byteslice.Lt, 1)); err == nil {
		t.Fatal("unknown filter column should error")
	}
}
