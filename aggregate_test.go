package byteslice_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"byteslice"
)

func TestSumIntAllFormats(t *testing.T) {
	rng := rand.New(rand.NewPCG(30, 30)) //nolint:gosec
	n := 5000
	vals := make([]int64, n)
	var total int64
	for i := range vals {
		vals[i] = int64(rng.IntN(2000)) - 1000
		total += vals[i]
	}
	for _, f := range byteslice.Formats() {
		col := intColumn(t, "v", vals, -1000, 1000, byteslice.WithFormat(f))
		tbl, _ := byteslice.NewTable(col)
		sum, count, err := tbl.SumInt("v", nil)
		if err != nil {
			t.Fatal(err)
		}
		if sum != total || count != n {
			t.Fatalf("%s: SumInt = %d (%d rows), want %d (%d)", f, sum, count, total, n)
		}

		// Filtered sum.
		res, err := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Gt, 0)})
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		wc := 0
		for _, v := range vals {
			if v > 0 {
				want += v
				wc++
			}
		}
		sum, count, err = tbl.SumInt("v", res)
		if err != nil || sum != want || count != wc {
			t.Fatalf("%s: filtered SumInt = %d/%d, want %d/%d (%v)", f, sum, count, want, wc, err)
		}
	}
}

func TestMinMaxIntAndDecimal(t *testing.T) {
	vals := []int64{-3, 17, 0, 42, -9, 8}
	col := intColumn(t, "v", vals, -100, 100)
	prices := []float64{1.25, 0.10, 9.99, 5.00, 3.33, 2.50}
	price, err := byteslice.NewDecimalColumn("p", prices, 0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := byteslice.NewTable(col, price)

	if mn, ok, _ := tbl.MinInt("v", nil); !ok || mn != -9 {
		t.Fatalf("MinInt = %d (%v)", mn, ok)
	}
	if mx, ok, _ := tbl.MaxInt("v", nil); !ok || mx != 42 {
		t.Fatalf("MaxInt = %d (%v)", mx, ok)
	}
	res, _ := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Ge, 0)})
	if mn, ok, _ := tbl.MinInt("v", res); !ok || mn != 0 {
		t.Fatalf("filtered MinInt = %d (%v)", mn, ok)
	}
	// Rows with v ≥ 0 are 1,2,3,5 → prices 0.10, 9.99, 5.00, 2.50.
	if mn, ok, _ := tbl.MinDecimal("p", res); !ok || mn != 0.10 {
		t.Fatalf("filtered MinDecimal = %v (%v)", mn, ok)
	}
	if mx, ok, _ := tbl.MaxDecimal("p", nil); !ok || mx != 9.99 {
		t.Fatalf("MaxDecimal = %v (%v)", mx, ok)
	}
	sum, count, err := tbl.SumDecimal("p", nil)
	if err != nil || count != 6 || math.Abs(sum-22.17) > 1e-9 {
		t.Fatalf("SumDecimal = %v/%d (%v)", sum, count, err)
	}

	// Empty selection.
	empty, _ := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Gt, 99)})
	if _, ok, _ := tbl.MinInt("v", empty); ok {
		t.Fatal("empty selection should report not-ok")
	}
	if sum, count, _ := tbl.SumInt("v", empty); sum != 0 || count != 0 {
		t.Fatalf("empty SumInt = %d/%d", sum, count)
	}
}

func TestMinMaxString(t *testing.T) {
	vals := []string{"pear", "apple", "mango", "fig", "apple"}
	col, err := byteslice.NewStringColumn("s", vals)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := byteslice.NewTable(col)
	if mn, ok, _ := tbl.MinString("s", nil); !ok || mn != "apple" {
		t.Fatalf("MinString = %q", mn)
	}
	if mx, ok, _ := tbl.MaxString("s", nil); !ok || mx != "pear" {
		t.Fatalf("MaxString = %q", mx)
	}
	res, _ := tbl.Filter([]byteslice.Filter{byteslice.StringFilter("s", byteslice.Ne, "apple")})
	if mn, ok, _ := tbl.MinString("s", res); !ok || mn != "fig" {
		t.Fatalf("filtered MinString = %q", mn)
	}
}

func TestAggregatesExcludeNulls(t *testing.T) {
	vals := []int64{10, 999, 30, 999, 50} // 999 at the NULL positions
	col := intColumn(t, "v", vals, 0, 1000, byteslice.WithNulls([]int{1, 3}))
	tbl, _ := byteslice.NewTable(col)
	sum, count, err := tbl.SumInt("v", nil)
	if err != nil || sum != 90 || count != 3 {
		t.Fatalf("SumInt over nullable = %d/%d (%v)", sum, count, err)
	}
	if mx, ok, _ := tbl.MaxInt("v", nil); !ok || mx != 50 {
		t.Fatalf("MaxInt over nullable = %d", mx)
	}
}

func TestAggregateErrors(t *testing.T) {
	col := intColumn(t, "v", []int64{1}, 0, 10)
	tbl, _ := byteslice.NewTable(col)
	if _, _, err := tbl.SumInt("zzz", nil); err == nil {
		t.Fatal("unknown column should error")
	}
	if _, _, err := tbl.SumDecimal("v", nil); err == nil {
		t.Fatal("kind mismatch should error")
	}
	if _, _, err := tbl.MinString("v", nil); err == nil {
		t.Fatal("kind mismatch should error")
	}
	if _, _, err := tbl.MaxDecimal("v", nil); err == nil {
		t.Fatal("kind mismatch should error")
	}
}

// TestSIMDAggregationCheaperThanLookups verifies the point of the SIMD
// path: summing via byte slices costs far fewer instructions than
// looking up every row.
func TestSIMDAggregationCheaperThanLookups(t *testing.T) {
	n := 100000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 4096)
	}
	bs := intColumn(t, "v", vals, 0, 4095)
	bp := intColumn(t, "v", vals, 0, 4095, byteslice.WithFormat(byteslice.FormatBitPacked))
	tbs, _ := byteslice.NewTable(bs)
	tbp, _ := byteslice.NewTable(bp)

	p1 := byteslice.NewProfile()
	s1, _, _ := tbs.SumInt("v", nil, byteslice.WithProfile(p1))
	p2 := byteslice.NewProfile()
	s2, _, _ := tbp.SumInt("v", nil, byteslice.WithProfile(p2))
	if s1 != s2 {
		t.Fatalf("sums differ: %d vs %d", s1, s2)
	}
	if float64(p1.Instructions())*3 > float64(p2.Instructions()) {
		t.Fatalf("SIMD aggregation should be ≥3× cheaper: %d vs %d instructions",
			p1.Instructions(), p2.Instructions())
	}
}

func TestSumByGroups(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 31)) //nolint:gosec
	n := 20000
	vals := make([]int64, n)
	small := make([]string, n) // low cardinality: scan-per-group path
	big := make([]int64, n)    // high cardinality: per-row fallback
	words := []string{"A", "N", "R"}
	for i := 0; i < n; i++ {
		vals[i] = int64(rng.IntN(1000))
		small[i] = words[rng.IntN(3)]
		big[i] = int64(rng.IntN(100000))
	}
	sc, err := byteslice.NewStringColumn("flag", small)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := byteslice.NewTable(
		intColumn(t, "v", vals, 0, 999),
		sc,
		intColumn(t, "wide", big, 0, 99999),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Ge, 500)})
	if err != nil {
		t.Fatal(err)
	}

	groups, err := tbl.SumIntBy("v", "flag", res)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	wantSum := map[string]float64{}
	wantCount := map[string]int{}
	for i := 0; i < n; i++ {
		if vals[i] >= 500 {
			wantSum[small[i]] += float64(vals[i])
			wantCount[small[i]]++
		}
	}
	prev := ""
	for _, g := range groups {
		key := g.Key.(string)
		if key <= prev {
			t.Fatalf("groups not in ascending key order: %v", groups)
		}
		prev = key
		if g.Sum != wantSum[key] || g.Count != wantCount[key] {
			t.Fatalf("group %q: %v/%d, want %v/%d", key, g.Sum, g.Count, wantSum[key], wantCount[key])
		}
	}

	// High-cardinality group column takes the fallback path; spot check.
	wide, err := tbl.SumIntBy("v", "wide", res)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	rows := 0
	for _, g := range wide {
		total += g.Sum
		rows += g.Count
	}
	if rows != res.Count() {
		t.Fatalf("fallback group rows = %d, want %d", rows, res.Count())
	}
	sum, _, _ := tbl.SumInt("v", res)
	if math.Abs(total-float64(sum)) > 1e-6 {
		t.Fatalf("fallback group total = %v, want %d", total, sum)
	}
}

func TestSumDecimalByAndNulls(t *testing.T) {
	price, err := byteslice.NewDecimalColumn("p", []float64{1.5, 2.5, 3.5, 4.5}, 0, 10, 1,
		byteslice.WithNulls([]int{1}))
	if err != nil {
		t.Fatal(err)
	}
	grp := intColumn(t, "g", []int64{0, 0, 1, 1}, 0, 1, byteslice.WithNulls([]int{3}))
	tbl, _ := byteslice.NewTable(price, grp)
	groups, err := tbl.SumDecimalBy("p", "g", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Row 1 (price NULL) and row 3 (group NULL) excluded:
	// group 0 → {1.5}, group 1 → {3.5}.
	if len(groups) != 2 || groups[0].Sum != 1.5 || groups[1].Sum != 3.5 {
		t.Fatalf("groups = %+v", groups)
	}
	if groups[0].Key.(int64) != 0 || groups[1].Key.(int64) != 1 {
		t.Fatalf("keys = %+v", groups)
	}

	if _, err := tbl.SumIntBy("p", "g", nil); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if _, err := tbl.SumDecimalBy("p", "zzz", nil); err == nil {
		t.Fatal("unknown group column accepted")
	}
}
