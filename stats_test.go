package byteslice_test

import (
	"strings"
	"sync"
	"testing"

	"byteslice"
)

// TestStatsZonedScanPartition pins the headline accounting invariant: on
// a zoned scan, segments scanned plus zone-skipped equals the column's
// segment count, and the zone-skipped segments appear as depth 0 in the
// early-stop histogram.
func TestStatsZonedScanPartition(t *testing.T) {
	const n = 1 << 16
	tbl, _, _, _ := planTable(t, n)
	res, err := tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("a", byteslice.Between, 1000, 2000),
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := res.Stats()
	if qs == nil {
		t.Fatal("Stats() must be non-nil on a default native query")
	}
	segs := int64(n / 32)
	if got := qs.SegmentsScanned() + qs.ZoneSkipped(); got != segs {
		t.Fatalf("segments %d + zone-skipped %d = %d, want %d",
			qs.SegmentsScanned(), qs.ZoneSkipped(), got, segs)
	}
	if qs.ZoneSkipped() == 0 {
		t.Fatal("sorted zone-mapped column should zone-skip segments")
	}
	d := qs.EarlyStopDepths()
	if d[0] != qs.ZoneSkipped() {
		t.Fatalf("depth[0] = %d, want zone-skipped %d", d[0], qs.ZoneSkipped())
	}
	if qs.BytesTouched() == 0 {
		t.Fatal("bytes touched must be recorded")
	}
	if qs.Plan == "" || qs.Strategy == "" || qs.Workers == 0 {
		t.Fatalf("planner decision missing from stats: %+v", qs)
	}
	if qs.WallNs <= 0 {
		t.Fatal("wall time must be recorded")
	}
}

// TestStatsEarlyStopHistogram pins the paper's byte-level early stop as
// observable evidence: a low-selectivity scan over a multi-byte column
// must resolve the overwhelming majority of segments at depth 1, with the
// depth histogram non-empty and summing to the segment count.
func TestStatsEarlyStopHistogram(t *testing.T) {
	const n = 1 << 16
	tbl, _, _, c := planTable(t, n)
	_ = c
	// Column "c" is uniform on [0, 9999] (14-bit codes, 2 byte slices) with
	// no zone maps; Eq against one value is ~0.01% selective, so nearly
	// every segment early-stops after its first byte slice.
	res, err := tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("c", byteslice.Eq, 1234),
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := res.Stats()
	if qs == nil {
		t.Fatal("Stats() must be non-nil")
	}
	d := qs.EarlyStopDepths()
	segs := int64(n / 32)
	var sum int64
	for depth := 1; depth < len(d); depth++ {
		sum += d[depth]
	}
	if sum != segs {
		t.Fatalf("depth histogram sums to %d, want %d (hist %v)", sum, segs, d)
	}
	if d[1] == 0 {
		t.Fatalf("low-selectivity multi-byte scan must early-stop at depth 1: %v", d)
	}
	if d[1] < segs/2 {
		t.Fatalf("expected most segments to stop at depth 1, got %d of %d: %v", d[1], segs, d)
	}
}

// TestExplainAnalyze pins the enriched Explain: the planner's block is
// followed by the executed-stage analyze section.
func TestExplainAnalyze(t *testing.T) {
	tbl, _, _, _ := planTable(t, 1<<14)
	res, err := tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("a", byteslice.Lt, 5000),
		byteslice.IntFilter("b", byteslice.Gt, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Explain()
	for _, want := range []string{"plan:", "analyze:", "segments", "wall"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
}

// TestWithObservabilityDisabled pins the off switch: Stats() is nil and
// the query still answers correctly.
func TestWithObservabilityDisabled(t *testing.T) {
	tbl, a, _, _ := planTable(t, 1<<14)
	res, err := tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("a", byteslice.Lt, 5000),
	}, byteslice.WithObservability(false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats() != nil {
		t.Fatal("Stats() must be nil with observability disabled")
	}
	want := 0
	for _, v := range a {
		if v < 5000 {
			want++
		}
	}
	if res.Count() != want {
		t.Fatalf("count = %d, want %d", res.Count(), want)
	}
	if strings.Contains(res.Explain(), "analyze:") {
		t.Fatal("Explain must not contain an analyze section when disabled")
	}
}

// TestTracerSpans pins the pluggable tracer hooks: one span per executed
// plan stage, opened and closed in order.
func TestTracerSpans(t *testing.T) {
	tbl, _, _, _ := planTable(t, 1<<14)
	var mu sync.Mutex
	var started, ended []string
	tr := byteslice.TracerFunc(func(name string) func() {
		mu.Lock()
		started = append(started, name)
		mu.Unlock()
		return func() {
			mu.Lock()
			ended = append(ended, name)
			mu.Unlock()
		}
	})
	res, err := tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("a", byteslice.Lt, 5000),
		byteslice.IntFilter("b", byteslice.Gt, 100),
	}, byteslice.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	qs := res.Stats()
	if qs == nil {
		t.Fatal("stats expected")
	}
	if len(started) != len(qs.Stages) || len(ended) != len(started) {
		t.Fatalf("spans started %d / ended %d, want %d (one per stage)",
			len(started), len(ended), len(qs.Stages))
	}
	for i, st := range qs.Stages {
		if started[i] != st.Name {
			t.Fatalf("span %d = %q, want stage %q", i, started[i], st.Name)
		}
	}
}

// TestStatsExprAbsorb pins stats flowing through expression evaluation:
// the combined result carries every group's stages.
func TestStatsExprAbsorb(t *testing.T) {
	tbl, _, _, _ := planTable(t, 1<<14)
	res, err := tbl.Query(byteslice.Any(
		byteslice.AllFilters(
			byteslice.IntFilter("a", byteslice.Lt, 2000),
			byteslice.IntFilter("b", byteslice.Gt, 8000),
		),
		byteslice.Leaf(byteslice.IntFilter("c", byteslice.Gt, 9900)),
	))
	if err != nil {
		t.Fatal(err)
	}
	qs := res.Stats()
	if qs == nil {
		t.Fatal("expression result must carry stats")
	}
	if len(qs.Stages) < 2 {
		t.Fatalf("expected stages from both groups, got %d: %+v", len(qs.Stages), qs.Stages)
	}
	if strings.Count(qs.Plan, "plan:") < 2 {
		t.Fatalf("expected both groups' plans joined:\n%s", qs.Plan)
	}
}

// TestStatsProjectionStage pins the scan-to-lookup stage landing in the
// same result's stats.
func TestStatsProjectionStage(t *testing.T) {
	tbl, _, _, _ := planTable(t, 1<<14)
	res, err := tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("a", byteslice.Lt, 500),
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := tbl.ProjectInt("c", res)
	if err != nil {
		t.Fatal(err)
	}
	qs := res.Stats()
	var proj *byteslice.StageStats
	for i := range qs.Stages {
		if qs.Stages[i].Kind == "project" {
			proj = &qs.Stages[i]
		}
	}
	if proj == nil {
		t.Fatalf("projection stage missing: %+v", qs.Stages)
	}
	if proj.Rows != int64(len(rows)) {
		t.Fatalf("projection rows = %d, want %d", proj.Rows, len(rows))
	}
}

// TestRegistryAggregation pins the process-wide fold: query counts and
// segment counters advance across evaluations, and aggregates register
// their own stages.
func TestRegistryAggregation(t *testing.T) {
	before := byteslice.StatsSnapshot()
	tbl, _, _, _ := planTable(t, 1<<14)
	res, err := tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("a", byteslice.Lt, 5000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tbl.SumInt("c", res); err != nil {
		t.Fatal(err)
	}
	after := byteslice.StatsSnapshot()
	if after.Queries < before.Queries+2 {
		t.Fatalf("queries %d -> %d, want at least +2 (filter + aggregate)", before.Queries, after.Queries)
	}
	if after.Segments+after.ZoneSkipped <= before.Segments+before.ZoneSkipped {
		t.Fatal("segment counters must advance")
	}
	if after.Bytes <= before.Bytes {
		t.Fatal("byte counter must advance")
	}
	if after.QueryNs.Count <= before.QueryNs.Count {
		t.Fatal("query wall-time histogram must advance")
	}
}
