package byteslice_test

import (
	"bytes"
	"testing"

	"byteslice"
	"byteslice/internal/layouts"
)

// TestDispatchRegistryLinkage asserts the three registries stay linked:
// every format with a native kernel dispatch entry is a registered layout
// (so it can be built), and its format tag survives a snapshot round trip
// (so a re-laid-out table loads back onto the same kernels).
func TestDispatchRegistryLinkage(t *testing.T) {
	registered := make(map[string]bool, len(layouts.All))
	for _, n := range layouts.All {
		registered[n] = true
	}
	native := byteslice.NativeKernelFormats()
	if len(native) == 0 {
		t.Fatal("no native kernel entries registered")
	}

	// Sorted low-entropy codes, so the decision-based ByteSliceC builder
	// keeps the compressed layout rather than falling back to ByteSlice.
	codes := make([]uint32, 2048)
	for i := range codes {
		codes[i] = uint32(i / 4)
	}
	for _, f := range native {
		if !registered[string(f)] {
			t.Fatalf("dispatch table format %q has no registered builder", f)
		}
		c, err := byteslice.NewCodeColumn("c", codes, 10, byteslice.WithFormat(f))
		if err != nil {
			t.Fatalf("format %q: build failed: %v", f, err)
		}
		if c.Format() != f {
			t.Fatalf("format %q: column reports %q", f, c.Format())
		}
		tbl, err := byteslice.NewTable(c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := tbl.WriteTo(&buf); err != nil {
			t.Fatalf("format %q: snapshot failed: %v", f, err)
		}
		got, err := byteslice.ReadTable(&buf)
		if err != nil {
			t.Fatalf("format %q: load failed: %v", f, err)
		}
		gc, err := got.Column("c")
		if err != nil {
			t.Fatal(err)
		}
		if gc.Format() != f {
			t.Fatalf("format %q: persistence tag came back as %q", f, gc.Format())
		}
		for _, i := range []int{0, 1, 999, 2047} {
			if v := gc.LookupCode(nil, i); v != codes[i] {
				t.Fatalf("format %q: loaded row %d = %d, want %d", f, i, v, codes[i])
			}
		}
	}

	// Every paper layout is constructible through the public Formats list.
	for _, f := range byteslice.Formats() {
		if _, err := byteslice.NewCodeColumn("c", codes, 10, byteslice.WithFormat(f)); err != nil {
			t.Fatalf("public format %q: build failed: %v", f, err)
		}
	}
}
