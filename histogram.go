package byteslice

import "byteslice/internal/layout"

// Per-column equi-width histograms, collected once at build time, drive
// the filter reordering of multi-predicate queries: evaluating the most
// selective predicate first maximises the segments the pipelined scans of
// §3.1.2 can skip in every later column (a conjunction skips a segment
// when no row in it is still live; a disjunction when every row already
// matched — so disjunctions want the *least* selective predicate first).

// histBuckets is the histogram resolution.
const histBuckets = 64

// histogram counts codes per equi-width bucket over [0, maxCode].
type histogram struct {
	counts      [histBuckets]int
	total       int
	bucketWidth uint64 // codes per bucket
}

func buildHistogram(codes []uint32, maxCode uint32) *histogram {
	h := &histogram{
		total:       len(codes),
		bucketWidth: (uint64(maxCode) + histBuckets) / histBuckets,
	}
	for _, c := range codes {
		h.counts[uint64(c)/h.bucketWidth]++
	}
	return h
}

// cumulative estimates the number of codes strictly below c.
func (h *histogram) cumulative(c uint32) float64 {
	b := uint64(c) / h.bucketWidth
	var below float64
	for i := uint64(0); i < b; i++ {
		below += float64(h.counts[i])
	}
	// Fractional share of the containing bucket.
	frac := float64(uint64(c)-b*h.bucketWidth) / float64(h.bucketWidth)
	below += frac * float64(h.counts[b])
	return below
}

// estimate returns the predicate's approximate selectivity in [0, 1].
func (h *histogram) estimate(p layout.Predicate) float64 {
	if h == nil || h.total == 0 {
		return 0.5
	}
	n := float64(h.total)
	switch p.Op {
	case Lt:
		return h.cumulative(p.C1) / n
	case Le:
		return clamp01((h.cumulative(p.C1) + h.pointMass(p.C1)) / n)
	case Gt:
		return clamp01(1 - (h.cumulative(p.C1)+h.pointMass(p.C1))/n)
	case Ge:
		return clamp01(1 - h.cumulative(p.C1)/n)
	case Eq:
		return clamp01(h.pointMass(p.C1) / n)
	case Ne:
		return clamp01(1 - h.pointMass(p.C1)/n)
	case Between:
		lo := h.cumulative(p.C1)
		hi := h.cumulative(p.C2) + h.pointMass(p.C2)
		return clamp01((hi - lo) / n)
	}
	return 0.5
}

// pointMass estimates the number of rows holding exactly code c, assuming
// uniformity within its bucket.
func (h *histogram) pointMass(c uint32) float64 {
	b := uint64(c) / h.bucketWidth
	return float64(h.counts[b]) / float64(h.bucketWidth)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// EstimateSelectivity returns the histogram-based selectivity estimate of
// the filter on this table, in [0, 1] (0.5 when nothing is known).
func (t *Table) EstimateSelectivity(f Filter) (float64, error) {
	c, err := t.Column(f.Col)
	if err != nil {
		return 0, err
	}
	pred, trivial, err := c.predicate(f)
	if err != nil {
		return 0, err
	}
	if trivial != nil {
		if *trivial {
			return 1, nil
		}
		return 0, nil
	}
	return c.hist.estimate(pred), nil
}

// FilterOrder controls whether multi-predicate queries are reordered by
// estimated selectivity.
type FilterOrder int

const (
	// OrderBySelectivity (the default) evaluates the predicate expected to
	// settle the most rows first — ascending selectivity for conjunctions,
	// descending for disjunctions.
	OrderBySelectivity FilterOrder = iota
	// OrderAsWritten evaluates predicates in the order given.
	OrderAsWritten
)

// WithFilterOrder overrides the reordering policy.
func WithFilterOrder(o FilterOrder) QueryOption {
	return func(c *queryConfig) { c.order = o }
}
