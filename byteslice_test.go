package byteslice_test

import (
	"math/rand/v2"
	"strings"
	"testing"

	"byteslice"
)

func intColumn(t *testing.T, name string, vals []int64, min, max int64, opts ...byteslice.ColumnOption) *byteslice.Column {
	t.Helper()
	c, err := byteslice.NewIntColumn(name, vals, min, max, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestQuickstartFlow(t *testing.T) {
	temps := []int64{12, 35, 28, 41, 7, 33, 35}
	cities := []string{"Melbourne", "Melbourne", "Sydney", "Perth", "Hobart", "Melbourne", "Sydney"}
	temp := intColumn(t, "temp_c", temps, -40, 60)
	city, err := byteslice.NewStringColumn("city", cities)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := byteslice.NewTable(temp, city)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("temp_c", byteslice.Gt, 30),
		byteslice.StringFilter("city", byteslice.Eq, "Melbourne"),
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 || rows[0] != 1 || rows[1] != 5 {
		t.Fatalf("rows = %v, want [1 5]", rows)
	}
	v, err := temp.LookupInt(nil, int(rows[0]))
	if err != nil || v != 35 {
		t.Fatalf("LookupInt = %d, %v", v, err)
	}
	s, err := city.LookupString(nil, 3)
	if err != nil || s != "Perth" {
		t.Fatalf("LookupString = %q, %v", s, err)
	}
}

// TestAllFormatsAgree runs the same query on every format.
func TestAllFormatsAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5)) //nolint:gosec
	n := 3000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.IntN(10000)) - 5000
	}
	var want []int32
	for _, f := range byteslice.Formats() {
		col := intColumn(t, "v", vals, -5000, 5000, byteslice.WithFormat(f))
		if col.Format() != f {
			t.Fatalf("Format = %s, want %s", col.Format(), f)
		}
		tbl, _ := byteslice.NewTable(col)
		res, err := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Between, -100, 250)})
		if err != nil {
			t.Fatal(err)
		}
		rows := res.Rows()
		if want == nil {
			want = rows
			// Verify against the data directly.
			cnt := 0
			for _, v := range vals {
				if v >= -100 && v <= 250 {
					cnt++
				}
			}
			if len(rows) != cnt {
				t.Fatalf("%s: %d rows, want %d", f, len(rows), cnt)
			}
			continue
		}
		if len(rows) != len(want) {
			t.Fatalf("%s disagrees: %d vs %d rows", f, len(rows), len(want))
		}
		for i := range rows {
			if rows[i] != want[i] {
				t.Fatalf("%s disagrees at %d", f, i)
			}
		}
	}
}

func TestOutOfDomainConstants(t *testing.T) {
	col := intColumn(t, "v", []int64{10, 20, 30}, 10, 30)
	tbl, _ := byteslice.NewTable(col)
	cases := []struct {
		f    byteslice.Filter
		want int
	}{
		{byteslice.IntFilter("v", byteslice.Lt, 5), 0},
		{byteslice.IntFilter("v", byteslice.Lt, 100), 3},
		{byteslice.IntFilter("v", byteslice.Ge, 100), 0},
		{byteslice.IntFilter("v", byteslice.Le, 5), 0},
		{byteslice.IntFilter("v", byteslice.Gt, 5), 3},
		{byteslice.IntFilter("v", byteslice.Eq, 99), 0},
		{byteslice.IntFilter("v", byteslice.Ne, 99), 3},
		{byteslice.IntFilter("v", byteslice.Between, -5, 15), 1},
		{byteslice.IntFilter("v", byteslice.Between, 15, 99), 2},
		{byteslice.IntFilter("v", byteslice.Between, 40, 50), 0},
		{byteslice.IntFilter("v", byteslice.Between, -9, 99), 3},
	}
	for i, c := range cases {
		res, err := tbl.Filter([]byteslice.Filter{c.f})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if res.Count() != c.want {
			t.Fatalf("case %d: count %d, want %d", i, res.Count(), c.want)
		}
	}
}

func TestTrivialFilterCombination(t *testing.T) {
	col := intColumn(t, "v", []int64{1, 2, 3, 4}, 0, 10)
	tbl, _ := byteslice.NewTable(col)

	// Neutral trivial filter in a conjunction: v < 100 AND v > 2.
	res, err := tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("v", byteslice.Lt, 100),
		byteslice.IntFilter("v", byteslice.Gt, 2),
	})
	if err != nil || res.Count() != 2 {
		t.Fatalf("count = %d, %v", res.Count(), err)
	}
	// Absorbing trivial filter: v < -5 AND anything = nothing.
	res, _ = tbl.Filter([]byteslice.Filter{
		byteslice.IntFilter("v", byteslice.Lt, -5),
		byteslice.IntFilter("v", byteslice.Gt, 2),
	})
	if res.Count() != 0 {
		t.Fatalf("absorbing false: count = %d", res.Count())
	}
	// Disjunction with an absorbing true: v > 100 OR v ≥ -7 = everything.
	res, _ = tbl.FilterAny([]byteslice.Filter{
		byteslice.IntFilter("v", byteslice.Gt, 100),
		byteslice.IntFilter("v", byteslice.Ge, -7),
	})
	if res.Count() != 4 {
		t.Fatalf("absorbing true: count = %d", res.Count())
	}
	// Disjunction of only-neutral filters = nothing.
	res, _ = tbl.FilterAny([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Gt, 100)})
	if res.Count() != 0 {
		t.Fatalf("neutral disjunction: count = %d", res.Count())
	}
	// Conjunction of only-neutral filters = everything.
	res, _ = tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Lt, 100)})
	if res.Count() != 4 {
		t.Fatalf("neutral conjunction: count = %d", res.Count())
	}
}

func TestStringRangeSemantics(t *testing.T) {
	vals := []string{"apple", "banana", "cherry", "banana", "fig"}
	col, err := byteslice.NewStringColumn("fruit", vals)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := byteslice.NewTable(col)
	cases := []struct {
		f    byteslice.Filter
		want int
	}{
		{byteslice.StringFilter("fruit", byteslice.Eq, "banana"), 2},
		{byteslice.StringFilter("fruit", byteslice.Eq, "durian"), 0},
		{byteslice.StringFilter("fruit", byteslice.Ne, "durian"), 5},
		{byteslice.StringFilter("fruit", byteslice.Lt, "banana"), 1},
		{byteslice.StringFilter("fruit", byteslice.Lt, "blueberry"), 3}, // apple + 2×banana
		{byteslice.StringFilter("fruit", byteslice.Le, "banana"), 3},
		{byteslice.StringFilter("fruit", byteslice.Gt, "banana"), 2}, // cherry, fig
		{byteslice.StringFilter("fruit", byteslice.Gt, "blueberry"), 2},
		{byteslice.StringFilter("fruit", byteslice.Ge, "cherry"), 2},
		{byteslice.StringFilter("fruit", byteslice.Ge, "zzz"), 0},
		{byteslice.StringFilter("fruit", byteslice.Lt, "aaa"), 0},
		{byteslice.StringFilter("fruit", byteslice.Lt, "zzz"), 5},
		{byteslice.StringFilter("fruit", byteslice.Between, "b", "c"), 2},
		{byteslice.StringFilter("fruit", byteslice.Between, "banana", "cherry"), 3},
		{byteslice.StringFilter("fruit", byteslice.Between, "x", "z"), 0},
	}
	for i, c := range cases {
		res, err := tbl.Filter([]byteslice.Filter{c.f})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if res.Count() != c.want {
			t.Fatalf("case %d: count = %d, want %d", i, res.Count(), c.want)
		}
	}
}

func TestDecimalColumn(t *testing.T) {
	prices := []float64{9.99, 10.00, 10.01, 99.95}
	col, err := byteslice.NewDecimalColumn("price", prices, 0, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := byteslice.NewTable(col)
	res, err := tbl.Filter([]byteslice.Filter{byteslice.DecimalFilter("price", byteslice.Le, 10.00)})
	if err != nil || res.Count() != 2 {
		t.Fatalf("count = %d, %v", res.Count(), err)
	}
	v, err := col.LookupDecimal(nil, 3)
	if err != nil || v != 99.95 {
		t.Fatalf("LookupDecimal = %v, %v", v, err)
	}
}

func TestStrategiesAgreePublic(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6)) //nolint:gosec
	n := 2000
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i], b[i] = int64(rng.IntN(1000)), int64(rng.IntN(1000))
	}
	tbl, _ := byteslice.NewTable(
		intColumn(t, "a", a, 0, 999),
		intColumn(t, "b", b, 0, 999),
	)
	filters := []byteslice.Filter{
		byteslice.IntFilter("a", byteslice.Lt, 100),
		byteslice.IntFilter("b", byteslice.Ge, 500),
	}
	var baseAnd, baseOr int
	for i, s := range []byteslice.Strategy{byteslice.StrategyBaseline, byteslice.StrategyColumnFirst, byteslice.StrategyPredicateFirst, byteslice.StrategyAuto} {
		and, err := tbl.Filter(filters, byteslice.WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		or, err := tbl.FilterAny(filters, byteslice.WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			baseAnd, baseOr = and.Count(), or.Count()
			continue
		}
		if and.Count() != baseAnd || or.Count() != baseOr {
			t.Fatalf("strategy %d disagrees: %d/%d vs %d/%d", s, and.Count(), or.Count(), baseAnd, baseOr)
		}
	}
}

func TestProfileRecords(t *testing.T) {
	vals := make([]int64, 100000)
	for i := range vals {
		vals[i] = int64(i % 4096)
	}
	tbl, _ := byteslice.NewTable(intColumn(t, "v", vals, 0, 4095))
	p := byteslice.NewProfile()
	if _, err := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Lt, 100)}, byteslice.WithProfile(p)); err != nil {
		t.Fatal(err)
	}
	if p.Instructions() == 0 || p.Cycles() == 0 {
		t.Fatal("profile recorded nothing")
	}
	perCode := p.Cycles() / float64(len(vals))
	if perCode > 2 {
		t.Fatalf("implausible scan cost: %.2f cycles/code", perCode)
	}
	if !strings.Contains(p.String(), "instr=") {
		t.Fatalf("String() = %q", p.String())
	}
	p.Reset()
	if p.Instructions() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestResultCombinators(t *testing.T) {
	vals := []int64{1, 2, 3, 4, 5}
	tbl, _ := byteslice.NewTable(intColumn(t, "v", vals, 0, 10))
	lt4, _ := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Lt, 4)})
	gt2, _ := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Gt, 2)})
	if got := lt4.And(gt2).Count(); got != 1 { // {3}
		t.Fatalf("And count = %d", got)
	}
	lt2, _ := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Lt, 2)})
	if got := lt2.Or(gt2).Count(); got != 4 { // {1,3,4,5}
		t.Fatalf("Or count = %d", got)
	}
	if !gt2.Contains(4) || gt2.Contains(0) {
		t.Fatal("Contains wrong")
	}
}

func TestErrors(t *testing.T) {
	col := intColumn(t, "v", []int64{1}, 0, 10)
	if _, err := byteslice.NewTable(); err == nil {
		t.Fatal("empty table should error")
	}
	other := intColumn(t, "w", []int64{1, 2}, 0, 10)
	if _, err := byteslice.NewTable(col, other); err == nil {
		t.Fatal("ragged table should error")
	}
	dup := intColumn(t, "v", []int64{2}, 0, 10)
	if _, err := byteslice.NewTable(col, dup); err == nil {
		t.Fatal("duplicate names should error")
	}
	tbl, _ := byteslice.NewTable(col)
	if _, err := tbl.Filter(nil); err == nil {
		t.Fatal("no filters should error")
	}
	if _, err := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("zzz", byteslice.Lt, 1)}); err == nil {
		t.Fatal("unknown column should error")
	}
	if _, err := tbl.Filter([]byteslice.Filter{byteslice.StringFilter("v", byteslice.Eq, "x")}); err == nil {
		t.Fatal("kind mismatch should error")
	}
	if _, err := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Between, 1)}); err == nil {
		t.Fatal("arity mismatch should error")
	}
	if _, err := byteslice.NewIntColumn("v", []int64{100}, 0, 10); err == nil {
		t.Fatal("out-of-domain value should error")
	}
	if _, err := byteslice.NewIntColumn("v", []int64{1}, 0, 10, byteslice.WithFormat("Nope")); err == nil {
		t.Fatal("unknown format should error")
	}
	if _, err := byteslice.NewCodeColumn("c", []uint32{8}, 3); err == nil {
		t.Fatal("code exceeding width should error")
	}
	if _, err := byteslice.NewCodeColumn("c", []uint32{1}, 0); err == nil {
		t.Fatal("zero width should error")
	}
	if _, err := col.LookupString(nil, 0); err == nil {
		t.Fatal("LookupString on int column should error")
	}
	if _, err := col.LookupDecimal(nil, 0); err == nil {
		t.Fatal("LookupDecimal on int column should error")
	}
}

func TestCodeColumn(t *testing.T) {
	codes := []uint32{0, 7, 3, 7}
	col, err := byteslice.NewCodeColumn("c", codes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if col.Width() != 3 || col.Kind() != byteslice.KindCode {
		t.Fatalf("width=%d kind=%v", col.Width(), col.Kind())
	}
	tbl, _ := byteslice.NewTable(col)
	res, err := tbl.Filter([]byteslice.Filter{byteslice.CodeFilter("c", byteslice.Eq, 7)})
	if err != nil || res.Count() != 2 {
		t.Fatalf("count = %d, %v", res.Count(), err)
	}
	res, _ = tbl.Filter([]byteslice.Filter{byteslice.CodeFilter("c", byteslice.Le, 100)})
	if res.Count() != 4 {
		t.Fatalf("above-domain Le: count = %d", res.Count())
	}
	for i, want := range codes {
		if got := col.LookupCode(nil, i); got != want {
			t.Fatalf("LookupCode(%d) = %d", i, got)
		}
	}
}

func TestWithParallelism(t *testing.T) {
	rng := rand.New(rand.NewPCG(50, 50)) //nolint:gosec
	n := 200000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.IntN(1 << 16))
	}
	tbl, _ := byteslice.NewTable(intColumn(t, "v", vals, 0, 1<<16-1))
	filters := []byteslice.Filter{byteslice.IntFilter("v", byteslice.Between, 1000, 5000)}
	serial, err := tbl.Filter(filters)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		p := byteslice.NewProfile()
		par, err := tbl.Filter(filters, byteslice.WithParallelism(workers), byteslice.WithProfile(p))
		if err != nil {
			t.Fatal(err)
		}
		if par.Count() != serial.Count() {
			t.Fatalf("workers=%d: %d matches, want %d", workers, par.Count(), serial.Count())
		}
		if p.Instructions() == 0 {
			t.Fatal("worker profiles not merged")
		}
	}
	// Multi-filter query: the driving scan parallelises, the rest pipeline.
	twoCol, _ := byteslice.NewTable(
		intColumn(t, "a", vals, 0, 1<<16-1),
		intColumn(t, "b", vals, 0, 1<<16-1),
	)
	two := []byteslice.Filter{
		byteslice.IntFilter("a", byteslice.Lt, 30000),
		byteslice.IntFilter("b", byteslice.Ge, 10000),
	}
	ser, _ := twoCol.Filter(two)
	par, err := twoCol.Filter(two, byteslice.WithParallelism(4))
	if err != nil || par.Count() != ser.Count() {
		t.Fatalf("multi-filter parallel: %d vs %d (%v)", par.Count(), ser.Count(), err)
	}
}

func TestProjectTyped(t *testing.T) {
	qty := intColumn(t, "qty", []int64{5, 50, 7, 90}, 0, 100, byteslice.WithNulls([]int{2}))
	price, err := byteslice.NewDecimalColumn("price", []float64{1.5, 2.5, 3.5, 4.5}, 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	mode, err := byteslice.NewStringColumn("mode", []string{"a", "b", "a", "c"})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := byteslice.NewTable(qty, price, mode)
	res, err := tbl.Filter([]byteslice.Filter{byteslice.DecimalFilter("price", byteslice.Ge, 2.5)})
	if err != nil {
		t.Fatal(err)
	}

	rows, vals, err := tbl.ProjectInt("qty", res)
	if err != nil {
		t.Fatal(err)
	}
	// Matching rows are 1,2,3 but row 2 is NULL in qty.
	if len(rows) != 2 || rows[0] != 1 || rows[1] != 3 || vals[0] != 50 || vals[1] != 90 {
		t.Fatalf("ProjectInt = %v %v", rows, vals)
	}
	_, dvals, err := tbl.ProjectDecimal("price", res)
	if err != nil || len(dvals) != 3 || dvals[0] != 2.5 || dvals[2] != 4.5 {
		t.Fatalf("ProjectDecimal = %v (%v)", dvals, err)
	}
	_, svals, err := tbl.ProjectString("mode", res)
	if err != nil || len(svals) != 3 || svals[0] != "b" || svals[2] != "c" {
		t.Fatalf("ProjectString = %v (%v)", svals, err)
	}

	if _, _, err := tbl.ProjectInt("qty", nil); err == nil {
		t.Fatal("nil result should error")
	}
	if _, _, err := tbl.ProjectInt("mode", res); err == nil {
		t.Fatal("kind mismatch should error")
	}
}

func TestOrderBy(t *testing.T) {
	vals := []int64{50, 10, 40, 10, 30, 99}
	for _, f := range byteslice.Formats() {
		col := intColumn(t, "v", vals, 0, 100, byteslice.WithFormat(f))
		tbl, _ := byteslice.NewTable(col)
		res, err := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Lt, 60)})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := tbl.OrderBy("v", res)
		if err != nil {
			t.Fatal(err)
		}
		// Values < 60 sorted ascending with stable ties: 10(row1), 10(row3), 30, 40, 50.
		want := []int32{1, 3, 4, 2, 0}
		if len(rows) != len(want) {
			t.Fatalf("%s: rows = %v", f, rows)
		}
		for i := range want {
			if rows[i] != want[i] {
				t.Fatalf("%s: rows = %v, want %v", f, rows, want)
			}
		}
	}

	// NULLs in the sort column are excluded.
	col := intColumn(t, "v", vals, 0, 100, byteslice.WithNulls([]int{4}))
	tbl, _ := byteslice.NewTable(col)
	all, _ := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Ge, 0)})
	rows, err := tbl.OrderBy("v", all)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r == 4 {
			t.Fatal("NULL row in OrderBy output")
		}
	}
	if _, err := tbl.OrderBy("v", nil); err == nil {
		t.Fatal("nil result accepted")
	}
	if _, err := tbl.OrderBy("zzz", all); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestWithZoneMaps(t *testing.T) {
	n := 1 << 16
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i) // sorted
	}
	zoned := intColumn(t, "v", vals, 0, int64(n-1), byteslice.WithZoneMaps())
	plain := intColumn(t, "v", vals, 0, int64(n-1))
	tz, _ := byteslice.NewTable(zoned)
	tp, _ := byteslice.NewTable(plain)
	f := []byteslice.Filter{byteslice.IntFilter("v", byteslice.Between, 1000, 2000)}

	pz := byteslice.NewProfile()
	rz, err := tz.Filter(f, byteslice.WithProfile(pz))
	if err != nil {
		t.Fatal(err)
	}
	pp := byteslice.NewProfile()
	rp, err := tp.Filter(f, byteslice.WithProfile(pp))
	if err != nil {
		t.Fatal(err)
	}
	if rz.Count() != rp.Count() || rz.Count() != 1001 {
		t.Fatalf("zone-mapped result differs: %d vs %d", rz.Count(), rp.Count())
	}
	if pz.Instructions()*2 > pp.Instructions() {
		t.Fatalf("zone maps should cut instructions on sorted data: %d vs %d",
			pz.Instructions(), pp.Instructions())
	}
	// Option is a no-op on other formats.
	hbpCol := intColumn(t, "v", vals, 0, int64(n-1), byteslice.WithZoneMaps(), byteslice.WithFormat(byteslice.FormatHBP))
	th, _ := byteslice.NewTable(hbpCol)
	rh, err := th.Filter(f)
	if err != nil || rh.Count() != 1001 {
		t.Fatalf("HBP with zone-map option: %d (%v)", rh.Count(), err)
	}
}

// TestFacadeOddsAndEnds exercises the remaining small surfaces: fallback
// aggregation paths on non-ByteSlice formats, AnyFilters, DeltaTable.Base.
func TestFacadeOddsAndEnds(t *testing.T) {
	vals := []int64{5, 1, 9, 3}
	col := intColumn(t, "v", vals, 0, 10, byteslice.WithFormat(byteslice.FormatHBP))
	tbl, _ := byteslice.NewTable(col)

	// extremeCode fallback (HBP has no SIMD min/max).
	if mn, ok, _ := tbl.MinInt("v", nil); !ok || mn != 1 {
		t.Fatalf("HBP MinInt = %d", mn)
	}
	if mx, ok, _ := tbl.MaxInt("v", nil); !ok || mx != 9 {
		t.Fatalf("HBP MaxInt = %d", mx)
	}
	res, _ := tbl.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Gt, 2)})
	if mn, ok, _ := tbl.MinInt("v", res); !ok || mn != 3 {
		t.Fatalf("HBP filtered MinInt = %d", mn)
	}

	// AnyFilters.
	r2, err := tbl.Query(byteslice.AnyFilters(
		byteslice.IntFilter("v", byteslice.Eq, 1),
		byteslice.IntFilter("v", byteslice.Eq, 9),
	))
	if err != nil || r2.Count() != 2 {
		t.Fatalf("AnyFilters count = %d (%v)", r2.Count(), err)
	}

	// DeltaTable.Base and NullCount on a non-nullable column.
	d := byteslice.NewDeltaTable(tbl)
	if d.Base() != tbl {
		t.Fatal("Base() lost the table")
	}
	if col.NullCount() != 0 || col.Nullable() {
		t.Fatal("non-nullable column reports nulls")
	}

	// Kind strings.
	for k, want := range map[byteslice.Kind]string{
		byteslice.KindInt: "int", byteslice.KindDecimal: "decimal",
		byteslice.KindString: "string", byteslice.KindCode: "code",
	} {
		if k.String() != want {
			t.Fatalf("Kind.String = %q", k.String())
		}
	}

	// LookupInt error path on a mismatched kind is covered elsewhere; the
	// happy path across formats:
	for _, f := range byteslice.Formats() {
		c := intColumn(t, "x", vals, 0, 10, byteslice.WithFormat(f))
		if v, err := c.LookupInt(nil, 2); err != nil || v != 9 {
			t.Fatalf("%s LookupInt = %d (%v)", f, v, err)
		}
	}
}

// TestPersistDeltaInterplay merges a delta and round-trips the result.
func TestPersistDeltaInterplay(t *testing.T) {
	col := intColumn(t, "v", []int64{1, 2}, 0, 100)
	tbl, _ := byteslice.NewTable(col)
	d := byteslice.NewDeltaTable(tbl)
	if err := d.AppendRow(map[string]any{"v": int64(42)}); err != nil {
		t.Fatal(err)
	}
	merged, err := d.Merge()
	if err != nil {
		t.Fatal(err)
	}
	got := roundTripTable(t, merged)
	c, _ := got.Column("v")
	if v, _ := c.LookupInt(nil, 2); v != 42 {
		t.Fatalf("round-tripped merged value = %d", v)
	}
	res, _ := got.Filter([]byteslice.Filter{byteslice.IntFilter("v", byteslice.Gt, 10)})
	if res.Count() != 1 {
		t.Fatalf("count = %d", res.Count())
	}
}
