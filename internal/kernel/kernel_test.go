package kernel

import (
	"math/rand/v2"
	"testing"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/layout"
	"byteslice/internal/layout/layouttest"
)

// --- SWAR primitive properties ---

func packBytes(b [8]byte) uint64 {
	var w uint64
	for i, v := range b {
		w |= uint64(v) << uint(8*i)
	}
	return w
}

func TestSWARPrimitives(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2)) //nolint:gosec // deterministic test
	for trial := 0; trial < 20000; trial++ {
		var xb, yb [8]byte
		for i := range xb {
			// Mix uniform bytes with boundary values to hit lane edges.
			switch rng.IntN(5) {
			case 0:
				xb[i], yb[i] = 0, 0
			case 1:
				xb[i], yb[i] = 0xFF, 0xFF
			case 2:
				v := byte(rng.UintN(256))
				xb[i], yb[i] = v, v
			default:
				xb[i], yb[i] = byte(rng.UintN(256)), byte(rng.UintN(256))
			}
		}
		x, y := packBytes(xb), packBytes(yb)
		eq, ge, lt, gt := eq8(x, y), ge8(x, y), lt8(x, y), gt8(x, y)
		for l := 0; l < 8; l++ {
			bit := uint64(0x80) << uint(8*l)
			check := func(name string, m uint64, want bool) {
				if m&^(msb) != 0 {
					t.Fatalf("%s(%#x,%#x) has non-mask bits %#x", name, x, y, m)
				}
				if (m&bit != 0) != want {
					t.Fatalf("%s lane %d: x=%#x y=%#x got %v want %v", name, l, xb[l], yb[l], m&bit != 0, want)
				}
			}
			check("eq8", eq, xb[l] == yb[l])
			check("ge8", ge, xb[l] >= yb[l])
			check("lt8", lt, xb[l] < yb[l])
			check("gt8", gt, xb[l] > yb[l])
		}
	}
}

// TestConstantCompare checks the constant-specialised ltc8/gtc8 against
// scalar comparison for every constant byte and random lane data.
func TestConstantCompare(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6)) //nolint:gosec
	for c := 0; c < 256; c++ {
		cb := uint64(c) * lsb
		cLo, cOr, cHi := cb&^uint64(msb), cb|uint64(msb), c >= 0x80
		for trial := 0; trial < 200; trial++ {
			var wb [8]byte
			for i := range wb {
				switch rng.IntN(4) {
				case 0:
					wb[i] = byte(c) // equal lanes exercise the boundary
				case 1:
					wb[i] = byte(c) ^ 0x80
				default:
					wb[i] = byte(rng.UintN(256))
				}
			}
			w := packBytes(wb)
			lt, gt := ltc8(w, cLo, cHi), gtc8(w, cOr, cHi)
			if lt&^uint64(msb) != 0 || gt&^uint64(msb) != 0 {
				t.Fatalf("c=%#x w=%#x: non-mask bits lt=%#x gt=%#x", c, w, lt, gt)
			}
			for l := 0; l < 8; l++ {
				bit := uint64(0x80) << uint(8*l)
				if (lt&bit != 0) != (wb[l] < byte(c)) {
					t.Fatalf("ltc8 lane %d: w=%#x c=%#x got %v", l, wb[l], c, lt&bit != 0)
				}
				if (gt&bit != 0) != (wb[l] > byte(c)) {
					t.Fatalf("gtc8 lane %d: w=%#x c=%#x got %v", l, wb[l], c, gt&bit != 0)
				}
			}
		}
	}
}

func TestMovemask(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4)) //nolint:gosec
	for trial := 0; trial < 20000; trial++ {
		bits := uint32(rng.Uint64N(256))
		var m uint64
		for l := 0; l < 8; l++ {
			if bits&(1<<uint(l)) != 0 {
				m |= 0x80 << uint(8*l)
			}
		}
		if got := movemask(m); got != bits {
			t.Fatalf("movemask(%#x) = %#x, want %#x", m, got, bits)
		}
	}
}

func TestExpand8(t *testing.T) {
	for v := 0; v < 256; v++ {
		got := expand8(byte(v))
		var want uint64
		for l := 0; l < 8; l++ {
			if v&(1<<uint(l)) != 0 {
				want |= 0xFF << uint(8*l)
			}
		}
		if got != want {
			t.Fatalf("expand8(%#x) = %#x, want %#x", v, got, want)
		}
	}
}

// --- Scan kernels against the scalar oracle ---

func testPredicates(rng *rand.Rand, k int) []layout.Predicate {
	max := uint32(uint64(1)<<uint(k) - 1)
	cs := []uint32{0, max, max / 2}
	if max > 0 {
		cs = append(cs, 1, max-1)
	}
	for i := 0; i < 3; i++ {
		cs = append(cs, uint32(rng.Uint64N(uint64(max)+1)))
	}
	var ps []layout.Predicate
	for _, op := range layout.Ops {
		for _, c := range cs {
			p := layout.Predicate{Op: op, C1: c, C2: c}
			if op == layout.Between {
				hi := c + uint32(rng.Uint64N(8))
				if hi > max {
					hi = max
				}
				p.C2 = hi
			}
			ps = append(ps, p)
		}
	}
	return ps
}

func TestScanMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(0x5EED, 7)) //nolint:gosec
	for _, k := range layouttest.Widths {
		for _, dist := range []string{"uniform", "low", "edges", "runs"} {
			codes := layouttest.RandomCodes(rng, 1337, k, dist)
			b := core.New(codes, k, nil)
			for _, p := range testPredicates(rng, k) {
				out := bitvec.New(len(codes))
				Scan(b, p, out)
				for i, v := range codes {
					if out.Get(i) != p.Eval(v) {
						t.Fatalf("k=%d dist=%s %v: row %d (code %d) got %v", k, dist, p, i, v, out.Get(i))
					}
				}
			}
		}
	}
}

func TestScanTinyAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9)) //nolint:gosec
	for _, n := range []int{0, 1, 2, 31, 32, 33, 63, 64, 65, 255, 256, 257} {
		codes := layouttest.RandomCodes(rng, n, 13, "uniform")
		b := core.New(codes, 13, nil)
		for _, p := range []layout.Predicate{
			{Op: layout.Lt, C1: 4096},
			{Op: layout.Ne, C1: 0},
			{Op: layout.Between, C1: 100, C2: 5000},
		} {
			out := bitvec.New(n)
			ParallelScan(b, p, 4, out)
			for i, v := range codes {
				if out.Get(i) != p.Eval(v) {
					t.Fatalf("n=%d %v: row %d (code %d) got %v", n, p, i, v, out.Get(i))
				}
			}
		}
	}
}

// TestParallelScanMatchesSerial checks worker counts beyond CPU count and
// stale bits in a reused output vector.
func TestParallelScanMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13)) //nolint:gosec
	codes := layouttest.RandomCodes(rng, 100_003, 17, "uniform")
	b := core.New(codes, 17, nil)
	p := layout.Predicate{Op: layout.Ge, C1: 40_000}
	want := bitvec.New(len(codes))
	Scan(b, p, want)
	got := bitvec.New(len(codes))
	got.Fill() // stale bits must be overwritten
	for _, workers := range []int{1, 2, 3, 4, 7, 16, 100} {
		ParallelScan(b, p, workers, got)
		if !got.Equal(want) {
			t.Fatalf("workers=%d: parallel scan differs from serial", workers)
		}
	}
}

func TestScanPipelinedMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19)) //nolint:gosec
	for _, k := range []int{5, 8, 12, 17, 24, 32} {
		codes := layouttest.RandomCodes(rng, 2029, k, "uniform")
		b := core.New(codes, k, nil)
		max := uint32(uint64(1)<<uint(k) - 1)
		for _, density := range []float64{0, 0.001, 0.1, 0.5, 0.99, 1} {
			prev := bitvec.New(len(codes))
			for i := range codes {
				if rng.Float64() < density {
					prev.Set(i, true)
				}
			}
			for _, op := range []layout.Op{layout.Lt, layout.Eq, layout.Ne, layout.Ge, layout.Between} {
				p := layout.Predicate{Op: op, C1: max / 3, C2: max / 2}
				for _, negate := range []bool{false, true} {
					want := bitvec.New(len(codes))
					b.ScanPipelined(layouttest.Engine(), p, prev, negate, want)
					got := bitvec.New(len(codes))
					ParallelScanPipelined(b, p, prev, negate, 4, got)
					if !got.Equal(want) {
						t.Fatalf("k=%d %v negate=%v density=%.3f: pipelined kernel differs", k, p, negate, density)
					}
				}
			}
		}
	}
}

// --- Aggregates and lookups ---

func TestAggregatesMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29)) //nolint:gosec
	for _, k := range []int{1, 7, 8, 12, 16, 24, 31, 32} {
		for _, n := range []int{1, 31, 32, 1000, 4096, 9999} {
			codes := layouttest.RandomCodes(rng, n, k, "uniform")
			b := core.New(codes, k, nil)
			for _, density := range []float64{-1, 0, 0.3, 1} {
				var mask *bitvec.Vector
				if density >= 0 {
					mask = bitvec.New(n)
					for i := 0; i < n; i++ {
						if rng.Float64() < density {
							mask.Set(i, true)
						}
					}
				}
				var wantSum uint64
				wantCount := 0
				var wantMin, wantMax uint32
				found := false
				for i, v := range codes {
					if mask != nil && !mask.Get(i) {
						continue
					}
					wantSum += uint64(v)
					wantCount++
					if !found || v < wantMin {
						wantMin = v
					}
					if !found || v > wantMax {
						wantMax = v
					}
					found = true
				}
				for _, workers := range []int{1, 4} {
					sum, count := ParallelSum(b, mask, workers)
					if sum != wantSum || count != wantCount {
						t.Fatalf("k=%d n=%d workers=%d: Sum = %d/%d, want %d/%d", k, n, workers, sum, count, wantSum, wantCount)
					}
					mn, okMin := ParallelExtreme(b, mask, true, workers)
					mx, okMax := ParallelExtreme(b, mask, false, workers)
					if okMin != found || okMax != found {
						t.Fatalf("k=%d n=%d workers=%d: extreme ok = %v/%v, want %v", k, n, workers, okMin, okMax, found)
					}
					if found && (mn != wantMin || mx != wantMax) {
						t.Fatalf("k=%d n=%d workers=%d: min/max = %d/%d, want %d/%d", k, n, workers, mn, mx, wantMin, wantMax)
					}
				}
			}
		}
	}
}

func TestLookup(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 37)) //nolint:gosec
	for _, k := range layouttest.Widths {
		codes := layouttest.RandomCodes(rng, 500, k, "edges")
		b := core.New(codes, k, nil)
		rows := make([]int32, len(codes))
		for i := range rows {
			rows[i] = int32(i)
		}
		out := make([]uint32, len(rows))
		LookupMany(b, rows, out)
		for i, v := range codes {
			if got := Lookup(b, i); got != v {
				t.Fatalf("k=%d: Lookup(%d) = %d, want %d", k, i, got, v)
			}
			if out[i] != v {
				t.Fatalf("k=%d: LookupMany[%d] = %d, want %d", k, i, out[i], v)
			}
		}
	}
}

// TestSumLongColumn exercises the 16-bit accumulator fold boundary (124
// words) with all-0xFF bytes, the worst case for lane overflow.
func TestSumLongColumn(t *testing.T) {
	const n = 100_000
	codes := make([]uint32, n)
	for i := range codes {
		codes[i] = 0xFF
	}
	b := core.New(codes, 8, nil)
	sum, count := Sum(b, nil)
	if sum != uint64(n)*0xFF || count != n {
		t.Fatalf("Sum = %d/%d, want %d/%d", sum, count, uint64(n)*0xFF, n)
	}
}
