package kernel

import (
	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/layout"
)

// Native predicate-first evaluation (§3.1.2 strategy 2, on the SWAR path):
// all predicates of a conjunction or disjunction are evaluated per 32-code
// segment before moving to the next segment, short-circuiting inside the
// segment as soon as its result word is decided. Compared with the
// column-first pipeline this never materialises an intermediate bit
// vector and keeps one segment of every column hot in cache, at the cost
// of running the generic (per-segment dispatched) kernels instead of the
// monolithic single-column loops. The cost-based planner in internal/plan
// chooses between the two.
//
// Zone maps compose per predicate: a column with BuildZoneMaps run
// resolves its conjunct from the segment's first-byte bounds whenever they
// decide it, without loading the column's data.

// ScanMultiRange evaluates the conjunction (disjunct=false) or disjunction
// (disjunct=true) of preds over segments [segLo, segHi), writing each
// segment's combined result bits into out. All columns must have the same
// length. It returns the number of per-predicate segment evaluations the
// zone maps resolved.
func ScanMultiRange(cols []*core.ByteSlice, preds []layout.Predicate, disjunct bool, segLo, segHi int, out *bitvec.Vector) int {
	if len(cols) == 0 || len(cols) != len(preds) {
		panic("kernel: ScanMultiRange needs matching columns and predicates")
	}
	scs := make([]scanner, len(cols))
	zs := make([]zoneInfo, len(cols))
	for i, b := range cols {
		if b.Len() != cols[0].Len() {
			panic("kernel: ScanMultiRange columns have different lengths")
		}
		scs[i] = prepare(b, preds[i])
		zs[i] = zoneFor(b, preds[i])
	}
	pruned := 0
	for seg := segLo; seg < segHi; seg++ {
		off := seg * core.SegmentSize
		var m uint32
		if !disjunct {
			m = ^uint32(0)
		}
		for i := range scs {
			d := zs[i].decide(scs[i].op, seg)
			if d != 0 {
				pruned++
			}
			if disjunct {
				// d > 0: every row matches, the segment is all-ones.
				// d < 0: the conjunct contributes nothing.
				if d > 0 {
					m = ^uint32(0)
					break
				}
				if d < 0 {
					continue
				}
				m |= scs[i].segment(seg)
				if m == ^uint32(0) {
					break
				}
			} else {
				if d > 0 {
					continue
				}
				if d < 0 {
					m = 0
					break
				}
				m &= scs[i].segment(seg)
				if m == 0 {
					break
				}
			}
		}
		out.SetWord32(off, m)
	}
	return pruned
}

// ScanMulti runs ScanMultiRange over the whole column set.
func ScanMulti(cols []*core.ByteSlice, preds []layout.Predicate, disjunct bool, out *bitvec.Vector) int {
	return ParallelScanMulti(cols, preds, disjunct, 1, out)
}

// ParallelScanMulti is ScanMulti fanned out across workers with
// word-aligned segment chunks. workers <= 1 scans serially.
func ParallelScanMulti(cols []*core.ByteSlice, preds []layout.Predicate, disjunct bool, workers int, out *bitvec.Vector) int {
	pruned, err := ParallelScanMultiCtx(nil, cols, preds, disjunct, workers, out)
	mustCtx(err)
	return pruned
}
