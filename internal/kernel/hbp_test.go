package kernel

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/layout"
	"byteslice/internal/layout/hbp"
	"byteslice/internal/layout/layouttest"
	"byteslice/internal/obs"
)

// TestLookupHBPParity pins the native HBP lookup kernels bit-identical to
// the source codes and to the modelled hbp.HBP.Lookup across all widths.
func TestLookupHBPParity(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11)) //nolint:gosec // deterministic test
	e := layouttest.Engine()
	for _, k := range layouttest.Widths {
		for _, n := range []int{1, 3, 31, 32, 33, 1000} {
			codes := layouttest.RandomCodes(rng, n, k, "uniform")
			h := hbp.New(codes, k, nil)
			rows := make([]int32, n)
			for i := range rows {
				rows[i] = int32(rng.IntN(n))
			}
			out := make([]uint32, n)
			LookupManyHBP(h, rows, out)
			for x, r := range rows {
				if out[x] != codes[r] {
					t.Fatalf("k=%d n=%d LookupManyHBP row %d: got %d want %d", k, n, r, out[x], codes[r])
				}
			}
			for i := 0; i < n; i++ {
				if got := LookupHBP(h, i); got != codes[i] {
					t.Fatalf("k=%d n=%d LookupHBP(%d) = %d want %d", k, n, i, got, codes[i])
				}
				if got, want := LookupHBP(h, i), h.Lookup(e, i); got != want {
					t.Fatalf("k=%d n=%d LookupHBP(%d) = %d, modelled %d", k, n, i, got, want)
				}
			}
		}
	}
}

// TestParallelScanHBPParity pins the native HBP scan bit-identical to the
// modelled engine scan for every operator, width, and distribution.
func TestParallelScanHBPParity(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17)) //nolint:gosec
	e := layouttest.Engine()
	for _, k := range layouttest.Widths {
		maxC := uint32(uint64(1)<<uint(k) - 1)
		for _, dist := range []string{"uniform", "edges", "runs"} {
			for _, n := range []int{1, 33, 1023, 4096} {
				codes := layouttest.RandomCodes(rng, n, k, dist)
				h := hbp.New(codes, k, nil)
				for _, op := range layout.Ops {
					c1 := uint32(rng.Uint64N(uint64(maxC) + 1))
					c2 := c1
					if op == layout.Between && maxC > c1 {
						c2 = c1 + uint32(rng.Uint64N(uint64(maxC-c1)+1))
					}
					p := layout.Predicate{Op: op, C1: c1, C2: c2}
					want := bitvec.New(n)
					h.Scan(e, p, want)
					got := bitvec.New(n)
					ParallelScanHBP(h, p, 3, got)
					if !got.Equal(want) {
						t.Fatalf("k=%d n=%d dist=%s op=%v c1=%d c2=%d: native scan != modelled", k, n, dist, op, c1, c2)
					}
				}
			}
		}
	}
}

// TestParallelScanHBPObsStats checks that the Obs variant records workers,
// segment counts, and bytes touched.
func TestParallelScanHBPObsStats(t *testing.T) {
	codes := make([]uint32, 10_000)
	for i := range codes {
		codes[i] = uint32(i % 251)
	}
	h := hbp.New(codes, 16, nil)
	q := obs.NewQuery()
	st := q.NewStage("scan", "scan")
	out := bitvec.New(len(codes))
	if err := ParallelScanHBPObs(context.Background(), h, layout.Predicate{Op: layout.Lt, C1: 100}, 2, out, st); err != nil {
		t.Fatal(err)
	}
	s := st.Snapshot()
	if s.Workers != 2 {
		t.Fatalf("workers = %d want 2", s.Workers)
	}
	if s.Segments == 0 || s.BytesTouched == 0 {
		t.Fatalf("segments=%d bytes=%d: want both > 0", s.Segments, s.BytesTouched)
	}
	want := bitvec.New(len(codes))
	layout.NewReference(codes, 16, nil).Scan(nil, layout.Predicate{Op: layout.Lt, C1: 100}, want)
	if !out.Equal(want) {
		t.Fatal("scan result != oracle")
	}
}

// TestLookupManyHBPObsCancel checks context cancellation stops the batched
// lookup loop with ctx.Err.
func TestLookupManyHBPObsCancel(t *testing.T) {
	codes := make([]uint32, 100_000)
	h := hbp.New(codes, 16, nil)
	rows := make([]int32, len(codes))
	out := make([]uint32, len(codes))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := LookupManyHBPCtx(ctx, h, rows, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v want context.Canceled", err)
	}
}

func TestLookupManyHBPLengthMismatch(t *testing.T) {
	h := hbp.New([]uint32{1, 2, 3}, 8, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	LookupManyHBP(h, make([]int32, 2), make([]uint32, 3))
}

// --- benchmarks: the lookup-heavy case the HBP layout exists for ---

func benchRows(n, lookups int) []int32 {
	rng := rand.New(rand.NewPCG(0xB17E, 42)) //nolint:gosec
	rows := make([]int32, lookups)
	for i := range rows {
		rows[i] = int32(rng.IntN(n))
	}
	return rows
}

func BenchmarkLookupMany(b *testing.B) {
	const n, lookups, k = 1 << 20, 1 << 16, 16
	rng := rand.New(rand.NewPCG(1, 2)) //nolint:gosec
	codes := layouttest.RandomCodes(rng, n, k, "uniform")
	rows := benchRows(n, lookups)
	out := make([]uint32, lookups)

	b.Run("ByteSlice", func(b *testing.B) {
		bs := core.New(codes, k, nil)
		b.SetBytes(int64(lookups))
		for i := 0; i < b.N; i++ {
			LookupMany(bs, rows, out)
		}
	})
	b.Run("HBP", func(b *testing.B) {
		h := hbp.New(codes, k, nil)
		b.SetBytes(int64(lookups))
		for i := 0; i < b.N; i++ {
			LookupManyHBP(h, rows, out)
		}
	})
}

func BenchmarkScanHBP(b *testing.B) {
	const n, k = 1 << 20, 16
	rng := rand.New(rand.NewPCG(3, 4)) //nolint:gosec
	codes := layouttest.RandomCodes(rng, n, k, "uniform")
	p := layout.Predicate{Op: layout.Lt, C1: 1 << 15}
	out := bitvec.New(n)

	b.Run("ByteSlice", func(b *testing.B) {
		bs := core.New(codes, k, nil)
		b.SetBytes(int64(n))
		for i := 0; i < b.N; i++ {
			ParallelScan(bs, p, 1, out)
		}
	})
	b.Run("HBP", func(b *testing.B) {
		h := hbp.New(codes, k, nil)
		b.SetBytes(int64(n))
		for i := 0; i < b.N; i++ {
			ParallelScanHBP(h, p, 1, out)
		}
	})
}
