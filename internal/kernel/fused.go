package kernel

import (
	"encoding/binary"
	"math/bits"

	"byteslice/internal/core"
	"byteslice/internal/layout"
)

// Fused filter→aggregate kernels: evaluate a single-column predicate and
// accumulate an aggregate over another column in the same pass over the
// segments. The two-pass shape (Scan into a full-table bit vector, then a
// masked aggregate re-reading that vector) costs one bitvec write + read
// per segment and evicts the predicate column between passes; when the
// caller only wants the aggregate, the fused form keeps the segment's
// 32-bit mask in a register and feeds it straight into the masked SWAR
// sum / extreme stitch. Zone maps on the filter column compose: a
// zone-decided segment contributes its aggregate with no predicate loads
// at all.
//
// f (the filter column) and v (the value column) must have the same
// number of rows; the caller guarantees neither has NULLs (the facade
// falls back to the two-pass path otherwise).

// segMask evaluates one segment's predicate mask with zone shortcuts and
// truncates the final segment's padding bits.
//
//bsvet:hotloop
func segMask(sc *scanner, z *zoneInfo, seg int) uint32 {
	var r uint32
	switch z.decide(sc.op, seg) {
	case 1:
		r = ^uint32(0)
	case -1:
		return 0
	default:
		r = sc.segment(seg)
	}
	if rem := sc.n - seg*core.SegmentSize; rem < 32 {
		r &= 1<<uint(rem) - 1
	}
	return r
}

// scanSumRange fuses predicate evaluation on f with the slice-wise SWAR
// sum over v for segments [segLo, segHi), returning the padded
// byte-weighted partial sum (as sumRange) and the matching row count.
//
//bsvet:hotloop
func scanSumRange(f *core.ByteSlice, sc *scanner, z *zoneInfo, v *core.ByteSlice, segLo, segHi int) (uint64, int) {
	nbv := v.NumSlices()
	var vslices [4][]byte
	for j := 0; j < nbv; j++ {
		vslices[j] = v.Slice(j)
	}
	var acc, tot [4]uint64
	cnt, count := 0, 0
	for seg := segLo; seg < segHi; seg++ {
		r := segMask(sc, z, seg)
		if r == 0 {
			continue
		}
		count += bits.OnesCount32(r)
		off := seg * core.SegmentSize
		if r == ^uint32(0) {
			// Whole segment selected (common when the zone map decides
			// all-match): sum unmasked, no lane expansion. segMask's tail
			// truncation guarantees all 32 rows are real here.
			for j := 0; j < nbv; j++ {
				s := vslices[j][off : off+32 : off+32]
				acc[j] += pairSum(binary.LittleEndian.Uint64(s[0:8])) +
					pairSum(binary.LittleEndian.Uint64(s[8:16])) +
					pairSum(binary.LittleEndian.Uint64(s[16:24])) +
					pairSum(binary.LittleEndian.Uint64(s[24:32]))
			}
		} else {
			// Widen the mask once per segment; the four lane masks serve
			// every value slice.
			e0 := expand8(byte(r))
			e1 := expand8(byte(r >> 8))
			e2 := expand8(byte(r >> 16))
			e3 := expand8(byte(r >> 24))
			for j := 0; j < nbv; j++ {
				s := vslices[j][off : off+32 : off+32]
				acc[j] += pairSum(binary.LittleEndian.Uint64(s[0:8])&e0) +
					pairSum(binary.LittleEndian.Uint64(s[8:16])&e1) +
					pairSum(binary.LittleEndian.Uint64(s[16:24])&e2) +
					pairSum(binary.LittleEndian.Uint64(s[24:32])&e3)
			}
		}
		if cnt += 4; cnt >= foldEvery {
			for j := 0; j < nbv; j++ {
				tot[j] += fold16(acc[j])
				acc[j] = 0
			}
			cnt = 0
		}
	}
	var padded uint64
	for j := 0; j < nbv; j++ {
		padded += (tot[j] + fold16(acc[j])) << uint(8*(nbv-1-j))
	}
	return padded, count
}

// ScanSum evaluates p on f and sums v's codes over the matching rows in
// one pass, returning (Σ codes, match count). It is the fused counterpart
// of Scan + Sum and never materialises the full-table bit vector. Zone
// maps on f are used when built.
func ScanSum(f *core.ByteSlice, p layout.Predicate, v *core.ByteSlice, workers int) (sum uint64, count int) {
	sum, count, err := ScanSumCtx(nil, f, p, v, workers)
	mustCtx(err)
	return sum, count
}

// scanExtremeRange fuses predicate evaluation on f with the extreme stitch
// over v for segments [segLo, segHi).
//
//bsvet:hotloop
func scanExtremeRange(f *core.ByteSlice, sc *scanner, z *zoneInfo, v *core.ByteSlice, isMin bool, segLo, segHi int) (uint32, bool) {
	nbv := v.NumSlices()
	padv := uint(8*nbv - v.Width())
	var vslices [4][]byte
	for j := 0; j < nbv; j++ {
		vslices[j] = v.Slice(j)
	}
	var best uint32
	found := false
	for seg := segLo; seg < segHi; seg++ {
		r := segMask(sc, z, seg)
		off := seg * core.SegmentSize
		for r != 0 {
			i := off + bits.TrailingZeros32(r)
			r &= r - 1
			var val uint32
			for j := 0; j < nbv; j++ {
				val = val<<8 | uint32(vslices[j][i])
			}
			val >>= padv
			if !found || (isMin && val < best) || (!isMin && val > best) {
				best = val
				found = true
			}
		}
	}
	return best, found
}

// ScanExtreme evaluates p on f and returns the extreme (min when isMin,
// else max) of v's codes over the matching rows in one pass; ok is false
// when no row matches. Zone maps on f are used when built.
func ScanExtreme(f *core.ByteSlice, p layout.Predicate, v *core.ByteSlice, isMin bool, workers int) (uint32, bool) {
	v2, ok, err := ScanExtremeCtx(nil, f, p, v, isMin, workers)
	mustCtx(err)
	return v2, ok
}
