// Native SWAR kernels for the HBP (Horizontal Bit-Parallel) layout. HBP is
// the lookup-optimised layout of the paper's comparison (§2.3): all bits of
// a code sit in one 64-bit bank, so a point lookup is a single 8-byte load
// plus shift-and-mask where the ByteSlice stitch (Lookup, LookupMany)
// touches one cache line per byte slice. The scan runs the word-parallel
// XOR/ADD/NOT/AND guard arithmetic of BitWeaving Figure 4 on plain uint64
// banks — no early stopping exists in this format, which is exactly why
// the planner's LayoutWins term only moves lookup-dominated columns here.
package kernel

import (
	"context"
	"encoding/binary"
	"math/bits"
	"time"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/layout"
	"byteslice/internal/layout/hbp"
	"byteslice/internal/obs"
)

// hbpBankBytes is the column data one HBP lookup touches: a single 64-bit
// bank, regardless of code width.
const hbpBankBytes = 8

// hbpSuperBanks is the bank count of one scan work unit. 32 banks hold
// exactly 32·perBank codes — a whole number of 32-code result words for
// every width — so worker partitions and batch boundaries stay aligned
// with the bit vector's SetWord32 stores.
const hbpSuperBanks = 32

// hbpMask returns the k-bit extraction mask (all ones at k = 32).
func hbpMask(k int) uint32 {
	return uint32(uint64(1)<<uint(k) - 1)
}

// hbpRecip returns the round-up 64-bit reciprocal ⌈2^64/perBank⌉ used to
// strength-reduce the bank-index division i/perBank to one multiply-high:
// ⌊i·recip/2^64⌋ = ⌊i/perBank⌋ exactly for every i·(perBank−(2^64 mod
// perBank)) < 2^64, which all int32 row numbers satisfy by a wide margin.
// perBank must be ≥ 2 (the perBank == 1 widths take hbpLookupRange1).
func hbpRecip(perBank int) uint64 {
	return ^uint64(0)/uint64(perBank) + 1
}

// hbpLookupRange gathers the codes of rows out of the packed banks: bank
// i/perBank starts at byte offset 8·(i/perBank) because banks are laid out
// consecutively, so each lookup is one load, one multiply-high and a
// shift-and-mask.
//
//bsvet:hotloop
func hbpLookupRange(data []byte, w int, recip, perBank uint64, mask uint32, rows []int32, out []uint32) {
	for x, r := range rows {
		i := uint64(uint32(r))
		bank, _ := bits.Mul64(i, recip)
		slot := i - bank*perBank
		lane := binary.LittleEndian.Uint64(data[bank*hbpBankBytes:])
		out[x] = uint32(lane>>(slot*uint64(w))) & mask
	}
}

// hbpLookupRange1 is the one-code-per-bank specialisation (k = 32, where
// k+1 > 32 leaves room for a single field): bank i is row i and the slot
// shift is always zero.
//
//bsvet:hotloop
func hbpLookupRange1(data []byte, mask uint32, rows []int32, out []uint32) {
	for x, r := range rows {
		lane := binary.LittleEndian.Uint64(data[uint64(uint32(r))*hbpBankBytes:])
		out[x] = uint32(lane) & mask
	}
}

// LookupHBP extracts code i from an HBP column — the native counterpart of
// the modelled hbp.HBP.Lookup and the HBP peer of Lookup: one 8-byte load
// against the ⌈k/8⌉ cache lines of the ByteSlice stitch.
func LookupHBP(h *hbp.HBP, i int) uint32 {
	pb := h.PerBank()
	mask := hbpMask(h.Width())
	lane := binary.LittleEndian.Uint64(h.Data()[(i/pb)*hbpBankBytes:])
	return uint32(lane>>uint((i-(i/pb)*pb)*(h.Width()+1))) & mask
}

// LookupManyHBP gathers the codes of rows into out (len(out) must equal
// len(rows)); the projection fast path for HBP columns. Disjoint row
// ranges may be filled concurrently.
func LookupManyHBP(h *hbp.HBP, rows []int32, out []uint32) {
	if len(out) != len(rows) {
		panic("kernel: LookupMany output length mismatch")
	}
	pb := h.PerBank()
	mask := hbpMask(h.Width())
	if pb == 1 {
		hbpLookupRange1(h.Data(), mask, rows, out)
		return
	}
	hbpLookupRange(h.Data(), h.Width()+1, hbpRecip(pb), uint64(pb), mask, rows, out)
}

// LookupManyHBPCtx is LookupManyHBP chunked under ctx with panic
// isolation; rows are processed in row batches of
// batchSegments·SegmentSize.
func LookupManyHBPCtx(ctx context.Context, h *hbp.HBP, rows []int32, out []uint32) error {
	return LookupManyHBPObs(ctx, h, rows, out, nil)
}

// LookupManyHBPObs is LookupManyHBPCtx with per-stage statistics: each
// looked-up row reads one 8-byte bank.
func LookupManyHBPObs(ctx context.Context, h *hbp.HBP, rows []int32, out []uint32, st *obs.Stage) error {
	if len(out) != len(rows) {
		panic("kernel: LookupMany output length mismatch")
	}
	x := &exec{ctx: ctx}
	if st != nil {
		st.SetWorkers(1)
	}
	step := batchSegments * core.SegmentSize
	for lo := 0; lo < len(rows); lo += step {
		if x.stop() {
			break
		}
		hi := lo + step
		if hi > len(rows) {
			hi = len(rows)
		}
		var t0 time.Time
		if st != nil {
			t0 = time.Now()
		}
		if _, err := protect(lo, hi, func(lo, hi int) struct{} {
			if hook := BatchHook; hook != nil {
				hook(lo, hi)
			}
			LookupManyHBP(h, rows[lo:hi], out[lo:hi])
			return struct{}{}
		}); err != nil {
			x.fail(err)
			break
		}
		if st != nil {
			st.ObserveBatch(time.Since(t0).Nanoseconds())
			st.AddRows(int64(hi-lo), int64(hi-lo)*hbpBankBytes)
		}
	}
	return x.finish()
}

// hbpScanner carries the predicate constants of one HBP scan: the guard
// mask (delimiter bit positions), the zero-detect addend, the replicated
// comparison constants, and the geometry needed to extract result bits.
type hbpScanner struct {
	op         layout.Op
	guard      uint64
	addend     uint64
	wc1, wc1h  uint64
	wc2h       uint64
	w, perBank int
	data       []byte
	n          int
}

// prepareHBP builds the scan constants outside the hot loop.
func prepareHBP(h *hbp.HBP, p layout.Predicate) hbpScanner {
	layout.CheckPredicate(p, h.Width())
	guard, addend, wc1 := h.Patterns(p.C1)
	sc := hbpScanner{
		op: p.Op, guard: guard, addend: addend,
		wc1: wc1, wc1h: wc1 | guard,
		w: h.Width() + 1, perBank: h.PerBank(),
		data: h.Data(), n: h.Len(),
	}
	if p.Op == layout.Between {
		_, _, wc2 := h.Patterns(p.C2)
		sc.wc2h = wc2 | guard
	}
	return sc
}

// scanSuperBanks evaluates the predicate over super-banks [lo, hi) — 32
// banks each, i.e. rows [lo·32·perBank, hi·32·perBank) — with the
// XOR/ADD/NOT/AND guard arithmetic of BitWeaving Figure 4 on plain uint64
// banks, gathering the delimiter result bits into 32-code words of the
// result vector. Padding lanes past the column length evaluate to garbage
// bits that SetWord32 truncates.
//
//bsvet:hotloop
func (sc *hbpScanner) scanSuperBanks(lo, hi int, out *bitvec.Vector) {
	H, ADD := sc.guard, sc.addend
	WC1, WC1H, WC2H := sc.wc1, sc.wc1h, sc.wc2h
	w, perBank := sc.w, sc.perBank
	data := sc.data
	totalBanks := len(data) / hbpBankBytes
	k := uint(w - 1)
	for sb := lo; sb < hi; sb++ {
		b0 := sb * hbpSuperBanks
		bEnd := b0 + hbpSuperBanks
		if bEnd > totalBanks {
			bEnd = totalBanks
		}
		row := b0 * perBank
		var acc uint64
		filled := 0
		for b := b0; b < bEnd; b++ {
			lane := binary.LittleEndian.Uint64(data[b*hbpBankBytes:])
			var res uint64
			switch sc.op {
			case layout.Eq:
				res = ^((lane ^ WC1) + ADD) & H
			case layout.Ne:
				res = ((lane ^ WC1) + ADD) & H
			case layout.Lt:
				res = ^((lane | H) - WC1) & H
			case layout.Ge:
				res = ((lane | H) - WC1) & H
			case layout.Gt:
				res = ^(WC1H - lane) & H
			case layout.Le:
				res = (WC1H - lane) & H
			case layout.Between:
				res = ((lane | H) - WC1) & (WC2H - lane) & H
			}
			// Gather the per-field guard bits into record order.
			var got uint64
			for s := 0; s < perBank; s++ {
				got |= res >> (uint(s*w) + k) & 1 << uint(s)
			}
			acc |= got << uint(filled)
			filled += perBank
			if filled >= 32 {
				out.SetWord32(row, uint32(acc))
				acc >>= 32
				filled -= 32
				row += 32
			}
		}
		if filled > 0 {
			out.SetWord32(row, uint32(acc))
		}
	}
}

// hbpSupers returns the number of 32-bank scan work units of the column.
func hbpSupers(h *hbp.HBP) int {
	banks := len(h.Data()) / hbpBankBytes
	return (banks + hbpSuperBanks - 1) / hbpSuperBanks
}

// ParallelScanHBP evaluates the predicate over an HBP column with the bank
// range chunked across workers — the native counterpart of the modelled
// hbp.HBP.Scan. HBP has no early stopping or zone maps: every bit of every
// code is examined by construction, which is why the layout planner only
// chooses HBP for lookup-dominated columns.
func ParallelScanHBP(h *hbp.HBP, p layout.Predicate, workers int, out *bitvec.Vector) {
	mustCtx(ParallelScanHBPCtx(nil, h, p, workers, out))
}

// ParallelScanHBPCtx is ParallelScanHBP under ctx.
func ParallelScanHBPCtx(ctx context.Context, h *hbp.HBP, p layout.Predicate, workers int, out *bitvec.Vector) error {
	return ParallelScanHBPObs(ctx, h, p, workers, out, nil)
}

// ParallelScanHBPObs is ParallelScanHBPCtx with per-stage statistics: a
// super-bank is perBank 32-code segments and reads 32 banks of 8 bytes.
func ParallelScanHBPObs(ctx context.Context, h *hbp.HBP, p layout.Predicate, workers int, out *bitvec.Vector, st *obs.Stage) error {
	if out.Len() != h.Len() {
		panic("kernel: result vector length mismatch")
	}
	sc := prepareHBP(h, p)
	perSuper := int64(hbpSuperBanks * hbpBankBytes)
	_, err := parallelRanges(ctx, hbpSupers(h), workers, st, func(lo, hi int) struct{} {
		sc.scanSuperBanks(lo, hi, out)
		if st != nil {
			st.AddSegments(int64(hi-lo)*int64(sc.perBank), int64(hi-lo)*perSuper)
		}
		return struct{}{}
	}, dropUnit)
	return err
}
