package kernel

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/layout"
)

// execColumn builds a native column large enough that every worker has
// many cancellation batches to run.
func execColumn(t *testing.T, n int) *core.ByteSlice {
	t.Helper()
	codes := make([]uint32, n)
	for i := range codes {
		codes[i] = uint32(i % 1000)
	}
	return core.New(codes, 10, nil)
}

func execPred(t *testing.T, b *core.ByteSlice) layout.Predicate {
	t.Helper()
	return layout.Predicate{Op: layout.Lt, C1: 500}
}

func TestCtxScanMatchesSerial(t *testing.T) {
	b := execColumn(t, 10_000)
	p := execPred(t, b)
	want := bitvec.New(b.Len())
	Scan(b, p, want)
	got := bitvec.New(b.Len())
	if err := ParallelScanCtx(context.Background(), b, p, 4, got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Len(); i++ {
		if got.Get(i) != want.Get(i) {
			t.Fatalf("row %d: ctx scan %v, serial %v", i, got.Get(i), want.Get(i))
		}
	}
}

// TestCancelStopsEarly blocks every worker batch on a fake segment source
// that never delivers until the context is cancelled, then asserts the scan
// returns the context error after only the in-flight batches ran —
// cancellation at batch granularity, not after the full column.
func TestCancelStopsEarly(t *testing.T) {
	b := execColumn(t, 64*batchSegments*core.SegmentSize) // 64 batches minimum
	p := execPred(t, b)
	out := bitvec.New(b.Len())

	ctx, cancel := context.WithCancel(context.Background())
	var batches atomic.Int32
	started := make(chan struct{}, 1)
	BatchHook = func(segLo, segHi int) {
		batches.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done() // the stuck segment source: blocks until cancel
	}
	defer func() { BatchHook = nil }()

	done := make(chan error, 1)
	workers := 4
	go func() { done <- ParallelScanCtx(ctx, b, p, workers, out) }()
	<-started
	cancel()
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Only the batches already in flight when cancel hit may have run: at
	// most one per worker, far below the total.
	if n := int(batches.Load()); n > workers {
		t.Fatalf("%d batches ran after cancellation, want <= %d", n, workers)
	}
}

func TestCancelledBeforeStart(t *testing.T) {
	b := execColumn(t, 10_000)
	p := execPred(t, b)
	out := bitvec.New(b.Len())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var batches atomic.Int32
	BatchHook = func(int, int) { batches.Add(1) }
	defer func() { BatchHook = nil }()
	if err := ParallelScanCtx(ctx, b, p, 4, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := batches.Load(); n != 0 {
		t.Fatalf("%d batches ran under a pre-cancelled context", n)
	}
}

// TestWorkerPanicBecomesError injects a panic into one worker batch and
// asserts it surfaces as a *PanicError naming the failing segment range,
// from the calling goroutine — not a process crash.
func TestWorkerPanicBecomesError(t *testing.T) {
	b := execColumn(t, 8*batchSegments*core.SegmentSize)
	p := execPred(t, b)
	out := bitvec.New(b.Len())
	BatchHook = func(segLo, segHi int) {
		if segLo == batchSegments { // second batch of the first worker
			panic("injected kernel bug")
		}
	}
	defer func() { BatchHook = nil }()
	err := ParallelScanCtx(context.Background(), b, p, 2, out)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.SegLo != batchSegments || pe.SegHi != 2*batchSegments {
		t.Fatalf("failing range [%d,%d), want [%d,%d)", pe.SegLo, pe.SegHi, batchSegments, 2*batchSegments)
	}
	if !strings.Contains(pe.Error(), "injected kernel bug") {
		t.Fatalf("error %q does not name the panic value", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack trace")
	}
}

// TestLegacyWrapperRepanics: the context-free API re-raises worker panics
// on the caller's goroutine, where a defer can catch them.
func TestLegacyWrapperRepanics(t *testing.T) {
	b := execColumn(t, 4*batchSegments*core.SegmentSize)
	p := execPred(t, b)
	out := bitvec.New(b.Len())
	BatchHook = func(int, int) { panic("boom") }
	defer func() { BatchHook = nil }()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("legacy ParallelScan swallowed the worker panic")
		}
		if _, ok := v.(*PanicError); !ok {
			t.Fatalf("recovered %T, want *PanicError", v)
		}
	}()
	ParallelScan(b, p, 2, out)
}

// TestCtxAggregates: cancellation and panic isolation hold for every Ctx
// kernel, not just the plain scan.
func TestCtxAggregates(t *testing.T) {
	b := execColumn(t, 10_000)
	p := execPred(t, b)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, _, err := ParallelSumCtx(ctx, b, nil, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelSumCtx: %v", err)
	}
	if _, _, err := ParallelExtremeCtx(ctx, b, nil, true, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelExtremeCtx: %v", err)
	}
	if _, _, err := ScanSumCtx(ctx, b, p, b, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScanSumCtx: %v", err)
	}
	if _, _, err := ScanExtremeCtx(ctx, b, p, b, false, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScanExtremeCtx: %v", err)
	}
	out := bitvec.New(b.Len())
	if _, err := ParallelScanMultiCtx(ctx, []*core.ByteSlice{b}, []layout.Predicate{p}, false, 4, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelScanMultiCtx: %v", err)
	}
	rows := []int32{0, 1, 2}
	codes := make([]uint32, len(rows))
	if err := LookupManyCtx(ctx, b, rows, codes); !errors.Is(err, context.Canceled) {
		t.Fatalf("LookupManyCtx: %v", err)
	}

	// And with a live context they agree with the legacy kernels.
	sum, n, err := ParallelSumCtx(context.Background(), b, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantSum, wantN := Sum(b, nil)
	if sum != wantSum || n != wantN {
		t.Fatalf("ParallelSumCtx = (%d, %d), want (%d, %d)", sum, n, wantSum, wantN)
	}
	v, ok, err := ScanExtremeCtx(context.Background(), b, p, b, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantV, wantOK := ScanExtreme(b, p, b, false, 1)
	if v != wantV || ok != wantOK {
		t.Fatalf("ScanExtremeCtx = (%d, %v), want (%d, %v)", v, ok, wantV, wantOK)
	}
}

// TestCtxZonedScans: the zoned variants propagate cancellation and still
// report prune counts when live.
func TestCtxZonedScans(t *testing.T) {
	b := execColumn(t, 10_000)
	b.BuildZoneMaps()
	p := execPred(t, b)
	out := bitvec.New(b.Len())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ParallelScanZonedCtx(ctx, b, p, 4, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelScanZonedCtx: %v", err)
	}
	prev := bitvec.New(b.Len())
	prev.Fill()
	if _, err := ParallelScanPipelinedZonedCtx(ctx, b, p, prev, false, 4, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelScanPipelinedZonedCtx: %v", err)
	}
	if err := ParallelScanPipelinedCtx(ctx, b, p, prev, false, 4, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelScanPipelinedCtx: %v", err)
	}

	got, err := ParallelScanZonedCtx(context.Background(), b, p, 4, out)
	if err != nil {
		t.Fatal(err)
	}
	want := ScanZoned(b, p, bitvec.New(b.Len()))
	if got != want {
		t.Fatalf("zoned prune count %d, want %d", got, want)
	}
}
