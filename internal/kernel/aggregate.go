package kernel

import (
	"encoding/binary"
	"math/bits"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
)

// Native aggregation over ByteSlice columns, mirroring the modelled
// kernels in internal/core/aggregate.go:
//
//   - Sum works slice-wise: Σ codes = (Σⱼ 256^(nb−1−j) · sliceSumⱼ) >> pad,
//     and a slice's bytes are summed 8 at a time by splitting each word
//     into even/odd bytes and accumulating four 16-bit SWAR lanes.
//   - Min/Max stitch the codes of the selected rows directly from the
//     byte slices (the selection is usually sparse after a filter).
//
// All kernels honour an optional selection mask and ignore the padding
// rows of the final segment (their bytes are zero and their mask bits are
// never set).

// evenB selects the even byte lanes of a word, widened to 16 bits.
const evenB = 0x00FF00FF00FF00FF

// expand8 widens 8 mask bits into 8 byte lanes of 0xFF/0x00 — the inverse
// movemask the masked kernels use to apply a result bit vector.
//
//bsvet:hotloop
func expand8(v byte) uint64 {
	x := uint64(v) * lsb & 0x8040201008040201 // lane l holds 1<<l iff bit l set
	t := (x & lo7) + lo7                      // bit 7 of t set iff lane's low 7 bits nonzero
	return (((t | x) & msb) >> 7) * 0xFF
}

// fold16 sums the four 16-bit lanes of a SWAR accumulator.
//
//bsvet:hotloop
func fold16(acc uint64) uint64 {
	return acc&0xFFFF + acc>>16&0xFFFF + acc>>32&0xFFFF + acc>>48
}

// pairSum widens a word's bytes into four 16-bit lane pair-sums
// (byte 2i + byte 2i+1), each at most 510.
//
//bsvet:hotloop
func pairSum(w uint64) uint64 {
	return (w & evenB) + (w >> 8 & evenB)
}

// foldEvery bounds the 16-bit lane accumulation: 124 words × 510 per lane
// stays below 65536, so partial sums are folded out every 124 words.
const foldEvery = 124

// SumRange returns the padded byte-weighted sum over segments
// [segLo, segHi): Σ (code << pad) for the selected rows. Range partials
// add, and the caller removes the shared pad shift once at the end.
//
//bsvet:hotloop
func sumRange(b *core.ByteSlice, mask *bitvec.Vector, segLo, segHi int) uint64 {
	nb, n := b.NumSlices(), b.Len()
	var padded uint64
	for j := 0; j < nb; j++ {
		s := b.Slice(j)
		var total, acc uint64
		cnt := 0
		for seg := segLo; seg < segHi; seg++ {
			off := seg * core.SegmentSize
			if mask != nil {
				var r uint32
				if off < n {
					r = mask.Word32(off)
				}
				if r == 0 {
					continue
				}
				for u := 0; u < 4; u++ {
					w := binary.LittleEndian.Uint64(s[off+8*u:]) & expand8(byte(r>>(8*u)))
					acc += pairSum(w)
				}
			} else {
				for u := 0; u < 4; u++ {
					acc += pairSum(binary.LittleEndian.Uint64(s[off+8*u:]))
				}
			}
			if cnt += 4; cnt >= foldEvery {
				total += fold16(acc)
				acc, cnt = 0, 0
			}
		}
		total += fold16(acc)
		padded += total << uint(8*(nb-1-j))
	}
	return padded
}

// Sum returns the sum of the codes of the rows set in mask (every row when
// mask is nil) and the number of rows aggregated.
func Sum(b *core.ByteSlice, mask *bitvec.Vector) (sum uint64, count int) {
	return ParallelSum(b, mask, 1)
}

// ParallelSum is Sum with the segment range fanned out across workers,
// merging the per-chunk partial sums. workers <= 1 runs serially.
func ParallelSum(b *core.ByteSlice, mask *bitvec.Vector, workers int) (sum uint64, count int) {
	sum, count, err := ParallelSumCtx(nil, b, mask, workers)
	mustCtx(err)
	return sum, count
}

// extremeRange scans segments [segLo, segHi) for the extreme code among
// the selected rows, stitching candidate codes straight from the slices.
//
//bsvet:hotloop
func extremeRange(b *core.ByteSlice, mask *bitvec.Vector, isMin bool, segLo, segHi int) (uint32, bool) {
	nb, n := b.NumSlices(), b.Len()
	pad := uint(8*nb - b.Width())
	var slices [4][]byte
	for j := 0; j < nb; j++ {
		slices[j] = b.Slice(j)
	}
	var best uint32
	found := false
	for seg := segLo; seg < segHi; seg++ {
		off := seg * core.SegmentSize
		if off >= n {
			break
		}
		r := ^uint32(0)
		if mask != nil {
			r = mask.Word32(off)
		} else if rem := n - off; rem < 32 {
			r = 1<<uint(rem) - 1
		}
		for r != 0 {
			i := off + bits.TrailingZeros32(r)
			r &= r - 1
			var v uint32
			for j := 0; j < nb; j++ {
				v = v<<8 | uint32(slices[j][i])
			}
			v >>= pad
			if !found || (isMin && v < best) || (!isMin && v > best) {
				best = v
				found = true
			}
		}
	}
	return best, found
}

// Min returns the smallest code among the rows set in mask (all rows when
// nil); ok is false when no row is selected.
func Min(b *core.ByteSlice, mask *bitvec.Vector) (uint32, bool) {
	return ParallelExtreme(b, mask, true, 1)
}

// Max returns the largest code among the rows set in mask (all rows when
// nil); ok is false when no row is selected.
func Max(b *core.ByteSlice, mask *bitvec.Vector) (uint32, bool) {
	return ParallelExtreme(b, mask, false, 1)
}

// ParallelExtreme computes Min (isMin) or Max with the segment range
// chunked across workers and the per-chunk extremes merged.
func ParallelExtreme(b *core.ByteSlice, mask *bitvec.Vector, isMin bool, workers int) (uint32, bool) {
	v, ok, err := ParallelExtremeCtx(nil, b, mask, isMin, workers)
	mustCtx(err)
	return v, ok
}

// Lookup stitches code i back together from its byte slices — the native
// counterpart of the modelled ByteSlice.Lookup.
//
//bsvet:hotloop
func Lookup(b *core.ByteSlice, i int) uint32 {
	nb := b.NumSlices()
	var v uint32
	for j := 0; j < nb; j++ {
		v = v<<8 | uint32(b.SliceByte(j, i))
	}
	return v >> uint(8*nb-b.Width())
}

// LookupMany stitches the codes of rows into out (len(out) must equal
// len(rows)); the projection fast path. Disjoint row ranges may be filled
// concurrently.
//
//bsvet:hotloop
func LookupMany(b *core.ByteSlice, rows []int32, out []uint32) {
	nb := b.NumSlices()
	pad := uint(8*nb - b.Width())
	var slices [4][]byte
	for j := 0; j < nb; j++ {
		slices[j] = b.Slice(j)
	}
	for x, r := range rows {
		i := int(r)
		var v uint32
		for j := 0; j < nb; j++ {
			v = v<<8 | uint32(slices[j][i])
		}
		out[x] = v >> pad
	}
}
