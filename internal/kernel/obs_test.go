package kernel

import (
	"context"
	"testing"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/layout"
	"byteslice/internal/obs"
)

// obsColumn builds a 16-bit column whose values cluster per segment, so
// zone maps resolve many segments and deep early stops still occur.
func obsColumn(t *testing.T, n int) *core.ByteSlice {
	t.Helper()
	codes := make([]uint32, n)
	for i := range codes {
		codes[i] = uint32((i / core.SegmentSize * 97) % 50_000)
	}
	b := core.New(codes, 16, nil)
	b.BuildZoneMaps()
	return b
}

// TestScanObsMatchesPlain asserts the instrumented scan produces
// bit-identical results to the uninstrumented one for every operator, and
// that the depth histogram covers exactly the scanned segments.
func TestScanObsMatchesPlain(t *testing.T) {
	b := obsColumn(t, 10_000)
	preds := []layout.Predicate{
		{Op: layout.Eq, C1: 97},
		{Op: layout.Ne, C1: 97},
		{Op: layout.Lt, C1: 25_000},
		{Op: layout.Le, C1: 25_000},
		{Op: layout.Gt, C1: 25_000},
		{Op: layout.Ge, C1: 25_000},
		{Op: layout.Between, C1: 10_000, C2: 30_000},
	}
	for _, p := range preds {
		want := bitvec.New(b.Len())
		Scan(b, p, want)
		got := bitvec.New(b.Len())
		q := obs.NewQuery()
		st := q.NewStage("scan", "scan")
		if err := ParallelScanObs(context.Background(), b, p, 4, got, st); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b.Len(); i++ {
			if got.Get(i) != want.Get(i) {
				t.Fatalf("op %v row %d: obs %v, plain %v", p.Op, i, got.Get(i), want.Get(i))
			}
		}
		s := st.Snapshot()
		if s.Segments != int64(b.Segments()) {
			t.Fatalf("op %v: segments = %d, want %d", p.Op, s.Segments, b.Segments())
		}
		var depthSum int64
		for d := 1; d <= obs.MaxDepth; d++ {
			depthSum += s.EarlyStop[d]
		}
		if depthSum != int64(b.Segments()) {
			t.Fatalf("op %v: depth histogram sums to %d, want %d", p.Op, depthSum, b.Segments())
		}
		if s.BytesTouched < int64(b.Segments())*core.SegmentSize {
			t.Fatalf("op %v: bytes = %d, below one slice per segment", p.Op, s.BytesTouched)
		}
		if s.Workers != 4 {
			t.Fatalf("op %v: workers = %d, want 4", p.Op, s.Workers)
		}
		if s.Batches == 0 || s.BatchNs.Count != s.Batches {
			t.Fatalf("op %v: batches = %d, hist count %d", p.Op, s.Batches, s.BatchNs.Count)
		}
	}
}

// TestZonedObsAccounting asserts zone-resolved plus scanned segments cover
// the column and that zone-resolved segments count as depth 0.
func TestZonedObsAccounting(t *testing.T) {
	b := obsColumn(t, 10_000)
	p := layout.Predicate{Op: layout.Lt, C1: 25_000}
	plain := bitvec.New(b.Len())
	wantPruned := ScanZoned(b, p, plain)
	if wantPruned == 0 {
		t.Fatal("test column should have zone-resolvable segments")
	}

	got := bitvec.New(b.Len())
	q := obs.NewQuery()
	st := q.NewStage("scan(zoned)", "scan_zoned")
	pruned, err := ParallelScanZonedObs(context.Background(), b, p, 4, got, st)
	if err != nil {
		t.Fatal(err)
	}
	if pruned != wantPruned {
		t.Fatalf("pruned = %d, want %d", pruned, wantPruned)
	}
	for i := 0; i < b.Len(); i++ {
		if got.Get(i) != plain.Get(i) {
			t.Fatalf("row %d: obs %v, plain %v", i, got.Get(i), plain.Get(i))
		}
	}
	s := st.Snapshot()
	if s.ZoneSkipped != int64(pruned) || s.EarlyStop[0] != int64(pruned) {
		t.Fatalf("zoneSkipped = %d, depth[0] = %d, want %d", s.ZoneSkipped, s.EarlyStop[0], pruned)
	}
	if s.Segments+s.ZoneSkipped != int64(b.Segments()) {
		t.Fatalf("segments %d + zoneSkipped %d != %d", s.Segments, s.ZoneSkipped, b.Segments())
	}
}

// TestPipelinedObsAccounting asserts the gate-skip counter and that the
// instrumented pipelined scans stay bit-identical.
func TestPipelinedObsAccounting(t *testing.T) {
	b := obsColumn(t, 10_000)
	p1 := layout.Predicate{Op: layout.Lt, C1: 20_000}
	p2 := layout.Predicate{Op: layout.Gt, C1: 5_000}
	prev := bitvec.New(b.Len())
	Scan(b, p1, prev)

	want := bitvec.New(b.Len())
	ScanPipelined(b, p2, prev, false, want)

	got := bitvec.New(b.Len())
	q := obs.NewQuery()
	st := q.NewStage("scan(pipelined)", "pipelined")
	if err := ParallelScanPipelinedObs(context.Background(), b, p2, prev, false, 2, got, st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Len(); i++ {
		if got.Get(i) != want.Get(i) {
			t.Fatalf("row %d: obs %v, plain %v", i, got.Get(i), want.Get(i))
		}
	}
	s := st.Snapshot()
	if s.Segments+s.MaskSkipped != int64(b.Segments()) {
		t.Fatalf("segments %d + maskSkipped %d != %d", s.Segments, s.MaskSkipped, b.Segments())
	}
	if s.MaskSkipped == 0 {
		t.Fatal("gate should skip some segments for this predicate pair")
	}

	// Zoned + pipelined: all three counters partition the column.
	want2 := bitvec.New(b.Len())
	ScanPipelinedZonedRange(b, p2, prev, false, 0, b.Segments(), want2)
	got2 := bitvec.New(b.Len())
	st2 := q.NewStage("scan(pipelined+zoned)", "pipelined")
	if _, err := ParallelScanPipelinedZonedObs(context.Background(), b, p2, prev, false, 2, got2, st2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Len(); i++ {
		if got2.Get(i) != want2.Get(i) {
			t.Fatalf("row %d: zoned obs %v, plain %v", i, got2.Get(i), want2.Get(i))
		}
	}
	s2 := st2.Snapshot()
	if s2.Segments+s2.ZoneSkipped+s2.MaskSkipped != int64(b.Segments()) {
		t.Fatalf("segments %d + zone %d + mask %d != %d",
			s2.Segments, s2.ZoneSkipped, s2.MaskSkipped, b.Segments())
	}
}

// TestMultiObsMatchesPlain asserts the instrumented predicate-first scan
// matches the plain one and counts per-predicate evaluations.
func TestMultiObsMatchesPlain(t *testing.T) {
	a := obsColumn(t, 10_000)
	b := obsColumn(t, 10_000)
	cols := []*core.ByteSlice{a, b}
	preds := []layout.Predicate{
		{Op: layout.Lt, C1: 30_000},
		{Op: layout.Gt, C1: 10_000},
	}
	for _, disjunct := range []bool{false, true} {
		want := bitvec.New(a.Len())
		wantPruned := ScanMulti(cols, preds, disjunct, want)
		got := bitvec.New(a.Len())
		q := obs.NewQuery()
		st := q.NewStage("scan(multi)", "scan_multi")
		pruned, err := ParallelScanMultiObs(context.Background(), cols, preds, disjunct, 2, got, st)
		if err != nil {
			t.Fatal(err)
		}
		if pruned != wantPruned {
			t.Fatalf("disjunct=%v: pruned = %d, want %d", disjunct, pruned, wantPruned)
		}
		for i := 0; i < a.Len(); i++ {
			if got.Get(i) != want.Get(i) {
				t.Fatalf("disjunct=%v row %d: obs %v, plain %v", disjunct, i, got.Get(i), want.Get(i))
			}
		}
		s := st.Snapshot()
		if s.ZoneSkipped != int64(pruned) {
			t.Fatalf("disjunct=%v: zoneSkipped = %d, want %d", disjunct, s.ZoneSkipped, pruned)
		}
		// Short-circuiting bounds: between 1 and len(preds) evaluations per
		// segment, counting both zone-resolved and scanned conjuncts.
		total := s.Segments + s.ZoneSkipped
		if total < int64(a.Segments()) || total > int64(a.Segments()*len(preds)) {
			t.Fatalf("disjunct=%v: %d evaluations outside [%d,%d]",
				disjunct, total, a.Segments(), a.Segments()*len(preds))
		}
	}
}

// TestAggregateLookupObs sanity-checks the aggregate and lookup stage
// accounting: results unchanged, rows/segments recorded.
func TestAggregateLookupObs(t *testing.T) {
	b := obsColumn(t, 5_000)
	wantSum, wantCount, err := ParallelSumCtx(context.Background(), b, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := obs.NewQuery()
	st := q.NewStage("sum", "sum")
	sum, count, err := ParallelSumObs(context.Background(), b, nil, 2, st)
	if err != nil {
		t.Fatal(err)
	}
	if sum != wantSum || count != wantCount {
		t.Fatalf("sum = %d/%d, want %d/%d", sum, count, wantSum, wantCount)
	}
	if s := st.Snapshot(); s.Segments != int64(b.Segments()) || s.BytesTouched == 0 {
		t.Fatalf("sum stage: %+v", s)
	}

	rows := []int32{0, 31, 63, 4_000}
	out := make([]uint32, len(rows))
	stl := q.NewStage("lookup", "lookup")
	if err := LookupManyObs(context.Background(), b, rows, out, stl); err != nil {
		t.Fatal(err)
	}
	if s := stl.Snapshot(); s.Rows != int64(len(rows)) || s.Batches == 0 {
		t.Fatalf("lookup stage: %+v", s)
	}
}
