package kernel

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/layout"
	"byteslice/internal/obs"
)

// Fault-isolated kernel execution. Every *Ctx entry point in this file runs
// the corresponding kernel under two guarantees the bare fan-out loops do
// not give:
//
//   - Cancellation: the segment range is processed in batches of
//     batchSegments; between batches every worker observes the context, so
//     a cancelled query stops within one batch (~8K rows per worker)
//     instead of running the column to completion.
//   - Panic isolation: each batch runs under recover. A panic inside a
//     kernel — a latent bug, a corrupt layout — becomes a *PanicError
//     naming the failing segment range and is returned as an error from
//     the calling goroutine, instead of killing the process from a worker
//     goroutine no caller can defend.
//
// The first failure wins; the other workers drain at their next batch
// boundary. A nil context means "never cancelled" — the legacy exported
// kernels (ParallelScan, ...) route through this file with a nil context,
// so they too isolate worker panics (re-panicking on the caller's
// goroutine, where a defer can catch them).

// batchSegments is the cancellation granularity: 256 segments = 8192 codes
// per check, coarse enough to stay invisible in scan throughput and fine
// enough to stop a multi-million-row scan in microseconds. It is even, so
// batches preserve the word-aligned segment partitioning the bit-vector
// stores rely on.
const batchSegments = 256

// PanicError reports a panic recovered inside a kernel worker, with the
// segment range it was processing.
type PanicError struct {
	SegLo, SegHi int
	Value        any
	Stack        []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("kernel: worker panic in segments [%d,%d): %v", e.SegLo, e.SegHi, e.Value)
}

// exec coordinates one fan-out: the first error (cancellation or panic)
// stops every worker at its next batch boundary.
type exec struct {
	ctx     context.Context
	st      *obs.Stage // nil = observability disabled
	stopped atomic.Bool
	mu      sync.Mutex
	err     error
}

func (x *exec) fail(err error) {
	x.mu.Lock()
	if x.err == nil {
		x.err = err
	}
	x.mu.Unlock()
	x.stopped.Store(true)
}

// stop reports whether workers should cease scheduling new batches,
// folding a freshly-cancelled context into the recorded error.
func (x *exec) stop() bool {
	if x.stopped.Load() {
		return true
	}
	if x.ctx != nil && x.ctx.Err() != nil {
		x.fail(x.ctx.Err())
		return true
	}
	return false
}

func (x *exec) finish() error {
	x.stop() // fold in a cancellation that raced the last batch
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.err
}

// protect runs fn over one batch under recover.
func protect[T any](lo, hi int, fn func(segLo, segHi int) T) (out T, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{SegLo: lo, SegHi: hi, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(lo, hi), nil
}

// BatchHook, when non-nil, runs inside every worker batch (under the same
// panic isolation as the kernel itself). It exists purely as a test seam:
// fault-injection tests block in it to model a stuck segment source, or
// panic in it to model a kernel bug, without corrupting real column data.
// Never set outside tests.
var BatchHook func(segLo, segHi int)

// runRange executes fn over [lo, hi) in cancellation batches with panic
// isolation, merging per-batch results via combine.
func runRange[T any](x *exec, lo, hi int, fn func(segLo, segHi int) T, combine func(T, T) T) T {
	run := fn
	if hook := BatchHook; hook != nil {
		run = func(segLo, segHi int) T {
			hook(segLo, segHi)
			return fn(segLo, segHi)
		}
	}
	if st := x.st; st != nil {
		inner := run
		run = func(segLo, segHi int) T {
			t0 := time.Now()
			v := inner(segLo, segHi)
			st.ObserveBatch(time.Since(t0).Nanoseconds())
			return v
		}
	}
	var acc T
	for b := lo; b < hi; b += batchSegments {
		if x.stop() {
			return acc
		}
		bhi := b + batchSegments
		if bhi > hi {
			bhi = hi
		}
		v, err := protect(b, bhi, run)
		if err != nil {
			x.fail(err)
			return acc
		}
		acc = combine(acc, v)
	}
	return acc
}

// parallelRanges partitions [0, segs) into even-aligned chunks across
// workers (inline when one suffices), running fn batch-wise under the
// context with panic isolation and merging results via combine. On error
// the zero T is returned: partial results of a failed fan-out are
// meaningless because an arbitrary suffix of the work never ran.
func parallelRanges[T any](ctx context.Context, segs, workers int, st *obs.Stage, fn func(segLo, segHi int) T, combine func(T, T) T) (T, error) {
	x := &exec{ctx: ctx, st: st}
	var zero T
	if workers > segs {
		workers = segs
	}
	if st != nil {
		if workers <= 1 {
			st.SetWorkers(1)
		} else {
			st.SetWorkers(workers)
		}
	}
	if workers <= 1 {
		v := runRange(x, 0, segs, fn, combine)
		if err := x.finish(); err != nil {
			return zero, err
		}
		return v, nil
	}
	chunk := core.ChunkEven(segs, workers)
	partials := make([]T, (segs+chunk-1)/chunk)
	var wg sync.WaitGroup
	for i, lo := 0, 0; lo < segs; i, lo = i+1, lo+chunk {
		hi := lo + chunk
		if hi > segs {
			hi = segs
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			partials[i] = runRange(x, lo, hi, fn, combine)
		}(i, lo, hi)
	}
	wg.Wait()
	if err := x.finish(); err != nil {
		return zero, err
	}
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = combine(acc, p)
	}
	return acc, nil
}

func addInt(a, b int) int { return a + b }

// mustCtx adapts a Ctx kernel for the legacy context-free API: with a nil
// context the only possible error is a recovered worker panic, which is
// re-raised — on the caller's goroutine, where a defer can still catch it,
// instead of an unrecoverable worker-goroutine crash.
func mustCtx(err error) {
	if err != nil {
		panic(err)
	}
}

func dropUnit(a, _ struct{}) struct{} { return a }

// ParallelScanCtx is ParallelScan under ctx: cancellation is observed at
// segment-batch granularity and worker panics return as *PanicError. A nil
// ctx disables cancellation but keeps panic isolation.
func ParallelScanCtx(ctx context.Context, b *core.ByteSlice, p layout.Predicate, workers int, out *bitvec.Vector) error {
	return ParallelScanObs(ctx, b, p, workers, out, nil)
}

// ParallelScanZonedCtx is ParallelScanZoned under ctx.
func ParallelScanZonedCtx(ctx context.Context, b *core.ByteSlice, p layout.Predicate, workers int, out *bitvec.Vector) (int, error) {
	return ParallelScanZonedObs(ctx, b, p, workers, out, nil)
}

// ParallelScanPipelinedCtx is ParallelScanPipelined under ctx.
func ParallelScanPipelinedCtx(ctx context.Context, b *core.ByteSlice, p layout.Predicate, prev *bitvec.Vector, negate bool, workers int, out *bitvec.Vector) error {
	return ParallelScanPipelinedObs(ctx, b, p, prev, negate, workers, out, nil)
}

// ParallelScanPipelinedZonedCtx is ParallelScanPipelinedZoned under ctx.
func ParallelScanPipelinedZonedCtx(ctx context.Context, b *core.ByteSlice, p layout.Predicate, prev *bitvec.Vector, negate bool, workers int, out *bitvec.Vector) (int, error) {
	return ParallelScanPipelinedZonedObs(ctx, b, p, prev, negate, workers, out, nil)
}

// ParallelScanMultiCtx is ParallelScanMulti under ctx.
func ParallelScanMultiCtx(ctx context.Context, cols []*core.ByteSlice, preds []layout.Predicate, disjunct bool, workers int, out *bitvec.Vector) (int, error) {
	return ParallelScanMultiObs(ctx, cols, preds, disjunct, workers, out, nil)
}

// ParallelSumCtx is ParallelSum under ctx.
func ParallelSumCtx(ctx context.Context, b *core.ByteSlice, mask *bitvec.Vector, workers int) (sum uint64, count int, err error) {
	return ParallelSumObs(ctx, b, mask, workers, nil)
}

// extPartial carries one range's extreme candidate through the merge.
type extPartial struct {
	v  uint32
	ok bool
}

func mergeExtreme(isMin bool) func(a, b extPartial) extPartial {
	return func(a, b extPartial) extPartial {
		switch {
		case !a.ok:
			return b
		case !b.ok:
			return a
		case isMin == (b.v < a.v):
			return b
		default:
			return a
		}
	}
}

// ParallelExtremeCtx is ParallelExtreme under ctx.
func ParallelExtremeCtx(ctx context.Context, b *core.ByteSlice, mask *bitvec.Vector, isMin bool, workers int) (uint32, bool, error) {
	return ParallelExtremeObs(ctx, b, mask, isMin, workers, nil)
}

// ScanSumCtx is ScanSum under ctx. Each batch prepares its own scanner —
// a few broadcasts per 8K rows, invisible next to the scan itself.
func ScanSumCtx(ctx context.Context, f *core.ByteSlice, p layout.Predicate, v *core.ByteSlice, workers int) (sum uint64, count int, err error) {
	return ScanSumObs(ctx, f, p, v, workers, nil)
}

// ScanExtremeCtx is ScanExtreme under ctx.
func ScanExtremeCtx(ctx context.Context, f *core.ByteSlice, p layout.Predicate, v *core.ByteSlice, isMin bool, workers int) (uint32, bool, error) {
	return ScanExtremeObs(ctx, f, p, v, isMin, workers, nil)
}

// LookupManyCtx is LookupMany chunked under ctx with panic isolation; rows
// are processed in row batches of batchSegments·SegmentSize.
func LookupManyCtx(ctx context.Context, b *core.ByteSlice, rows []int32, out []uint32) error {
	return LookupManyObs(ctx, b, rows, out, nil)
}
