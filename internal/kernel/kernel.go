// Package kernel implements native, unprofiled SWAR scan kernels over the
// ByteSlice storage layout — the wall-clock fast path of the engine.
//
// The modelled path (internal/simd + internal/core) executes one Go method
// call and updates instruction/branch/cache counters per emulated AVX2
// instruction; that is what reproduces the paper's cycle counts, but it is
// orders of magnitude slower than the hardware. ByteSlice's byte-per-slice
// layout admits very fast portable word-at-a-time kernels without
// intrinsics (the same observation Stream VByte makes for byte-oriented
// codecs): a uint64 holds byte j of 8 consecutive codes, so per-byte
// comparisons run 8 lanes at a time with carry-free SWAR arithmetic, and a
// 32-code ByteSlice segment is covered by a 4×-unrolled word loop. The
// paper's byte-level early stop is preserved at segment granularity: as
// soon as no code in the segment can still match, the remaining byte
// slices are not loaded.
//
// Every kernel in this package is semantically identical to its modelled
// counterpart in internal/core — the differential fuzz test in
// fuzz_test.go asserts bit-for-bit equality — and operates directly on the
// ByteSlice byte buffers with no engine and no profiling. The query layer
// (package byteslice) dispatches here automatically when an operation is
// invoked without a Profile.
package kernel

import (
	"encoding/binary"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/layout"
	"byteslice/internal/obs"
)

// SWAR masks, repeated per byte of a 64-bit word.
const (
	lo7 = 0x7F7F7F7F7F7F7F7F // low 7 bits of every byte
	msb = 0x8080808080808080 // bit 7 of every byte
	lsb = 0x0101010101010101 // bit 0 of every byte

	// mmMul gathers the 8 lane bits (at positions 8l, l = 0..7) into the
	// top byte of the product: bit 8l lands at 56+l via the 2^(56-7l) term.
	mmMul = 0x0102040810204080
)

// eq8 returns a mask with bit 7 of lane l set iff x's byte l equals y's.
//
//bsvet:hotloop
func eq8(x, y uint64) uint64 {
	z := x ^ y
	return ^(((z & lo7) + lo7) | z) & msb
}

// ge8 returns a mask with bit 7 of lane l set iff x's byte l >= y's,
// unsigned. Setting bit 7 of x and clearing it in y keeps every lane's
// difference in [1, 255], so the subtraction cannot borrow across lanes;
// bit 7 of d is then the lane's low-7-bit carry, and the top bits resolve
// the comparison directly.
//
//bsvet:hotloop
func ge8(x, y uint64) uint64 {
	d := (x | msb) - (y &^ msb)
	return ((x &^ y) | (^(x ^ y) & d)) & msb
}

// lt8 is the per-byte unsigned x < y mask.
//
//bsvet:hotloop
func lt8(x, y uint64) uint64 { return ^ge8(x, y) & msb }

// gt8 is the per-byte unsigned x > y mask.
//
//bsvet:hotloop
func gt8(x, y uint64) uint64 { return ^ge8(y, x) & msb }

// ltc8 is lt8(w, c) for a broadcast constant whose low-7-bit lanes (cLo =
// (c &^ msb) · lsb) and high bit (hi) are precomputed per byte slice.
// d's lane bit 7 reads "w's low 7 bits >= c's"; with c's high bit known,
// the full unsigned ge collapses to one extra op: hi lanes of w win
// outright when c < 0x80 (ge = w|d) and are required when c >= 0x80
// (ge = w&d).
//
//bsvet:hotloop
func ltc8(w, cLo uint64, hi bool) uint64 {
	if hi {
		return ltc8hi(w, cLo)
	}
	return ltc8lo(w, cLo)
}

// ltc8lo and ltc8hi are ltc8 with the constant's high bit resolved at the
// call site, so loops that know it can hoist the branch out entirely.
//
//bsvet:hotloop
func ltc8lo(w, cLo uint64) uint64 { return ^(w | ((w | msb) - cLo)) & msb }

//bsvet:hotloop
func ltc8hi(w, cLo uint64) uint64 { return ^(w & ((w | msb) - cLo)) & msb }

// gtc8 is gt8(w, c) with cOr = (c | msb)-per-lane precomputed: d's lane
// bit 7 reads "c's low 7 bits >= w's", so gt needs the complement plus
// the known high bit of c.
//
//bsvet:hotloop
func gtc8(w, cOr uint64, hi bool) uint64 {
	if hi {
		return gtc8hi(w, cOr)
	}
	return gtc8lo(w, cOr)
}

// gtc8lo and gtc8hi are gtc8 with the constant's high bit resolved at the
// call site.
//
//bsvet:hotloop
func gtc8lo(w, cOr uint64) uint64 { return (w | ^(cOr - (w &^ msb))) & msb }

//bsvet:hotloop
func gtc8hi(w, cOr uint64) uint64 { return w &^ (cOr - (w &^ msb)) & msb }

// movemask condenses a lane mask (bit 7 per byte) into 8 result bits,
// lane l -> bit l — the SWAR equivalent of vpmovmskb.
//
//bsvet:hotloop
func movemask(m uint64) uint32 {
	return uint32(((m >> 7) * mmMul) >> 56)
}

// movemask4 condenses a segment's 4 lane-mask words into its 32 result
// bits. The masks are kept in 4 scalar uint64s rather than a [4]uint64:
// the compiler does not register-allocate arrays, and the scan loops below
// are hot enough that the difference is ~3x wall clock.
//
//bsvet:hotloop
func movemask4(m0, m1, m2, m3 uint64) uint32 {
	return movemask(m0) | movemask(m1)<<8 | movemask(m2)<<16 | movemask(m3)<<24
}

// scanner holds a prepared predicate: the broadcast constant bytes and the
// byte-slice buffers. Preparing once per scan mirrors Algorithm 1 lines
// 1–3 (the broadcast registers stay "register-resident" for the scan).
type scanner struct {
	op     layout.Op
	nb     int
	n      int
	slices [4][]byte
	c1     [4]uint64 // byte j of the padded C1, broadcast to all lanes
	c2     [4]uint64 // byte j of the padded C2 (Between only)
}

// prepare validates p against b and broadcasts its constant bytes.
func prepare(b *core.ByteSlice, p layout.Predicate) scanner {
	layout.CheckPredicate(p, b.Width())
	nb := b.NumSlices()
	pad := uint(8*nb - b.Width())
	sc := scanner{op: p.Op, nb: nb, n: b.Len()}
	pc1, pc2 := p.C1<<pad, p.C2<<pad
	for j := 0; j < nb; j++ {
		sh := uint(8 * (nb - 1 - j))
		sc.slices[j] = b.Slice(j)
		sc.c1[j] = uint64(byte(pc1>>sh)) * lsb
		sc.c2[j] = uint64(byte(pc2>>sh)) * lsb
	}
	return sc
}

// seg32 gives bounds-check-free access to the 32 bytes of one segment in
// one byte slice.
//
//bsvet:hotloop
func seg32(s []byte, off int) []byte {
	return s[off : off+32 : off+32]
}

// segment evaluates the prepared predicate over one 32-code segment and
// returns its 32 result bits (bit i = code 32*seg+i matches). The byte
// loop early-stops as soon as no code in the segment can still match,
// exactly like the modelled scanSegment; padding rows in the final segment
// may produce garbage bits, which the bitvec truncates on write.
//
// The per-op bodies are manually 4x-unrolled over scalar mask words (see
// movemask4) — a 32-code segment is 4 uint64s of 8 byte lanes each.
//
//bsvet:hotloop
func (sc *scanner) segment(seg int) uint32 {
	r, _ := sc.segmentDepth(seg)
	return r
}

// segmentDepth is segment plus the early-stop depth: the number of byte
// slices the evaluation loaded before the segment's outcome was decided
// (1 <= depth <= nb). The observability layer's depth histograms are
// built from it; tracking costs one register, so segment() shares the
// same bodies.
//
//bsvet:hotloop
func (sc *scanner) segmentDepth(seg int) (uint32, int) {
	off := seg * core.SegmentSize
	switch sc.op {
	case layout.Eq:
		return sc.segEq(off)
	case layout.Ne:
		r, d := sc.segEq(off)
		return ^r, d
	case layout.Lt:
		return sc.segCmp(off, true, false)
	case layout.Le:
		return sc.segCmp(off, true, true)
	case layout.Gt:
		return sc.segCmp(off, false, false)
	case layout.Ge:
		return sc.segCmp(off, false, true)
	case layout.Between:
		return sc.segBetween(off)
	}
	panic("kernel: unknown operator")
}

//bsvet:hotloop
func (sc *scanner) segEq(off int) (uint32, int) {
	m0, m1, m2, m3 := uint64(msb), uint64(msb), uint64(msb), uint64(msb)
	d := 0
	for j := 0; j < sc.nb; j++ {
		s := seg32(sc.slices[j], off)
		c := sc.c1[j]
		m0 &= eq8(binary.LittleEndian.Uint64(s[0:8]), c)
		m1 &= eq8(binary.LittleEndian.Uint64(s[8:16]), c)
		m2 &= eq8(binary.LittleEndian.Uint64(s[16:24]), c)
		m3 &= eq8(binary.LittleEndian.Uint64(s[24:32]), c)
		d = j + 1
		if m0|m1|m2|m3 == 0 {
			break
		}
	}
	return movemask4(m0, m1, m2, m3), d
}

//bsvet:hotloop
func (sc *scanner) segCmp(off int, lt, orEq bool) (uint32, int) {
	meq0, meq1, meq2, meq3 := uint64(msb), uint64(msb), uint64(msb), uint64(msb)
	var r0, r1, r2, r3 uint64
	d := 0
	for j := 0; j < sc.nb; j++ {
		s := seg32(sc.slices[j], off)
		c := sc.c1[j]
		w0 := binary.LittleEndian.Uint64(s[0:8])
		w1 := binary.LittleEndian.Uint64(s[8:16])
		w2 := binary.LittleEndian.Uint64(s[16:24])
		w3 := binary.LittleEndian.Uint64(s[24:32])
		if lt {
			r0 |= meq0 & lt8(w0, c)
			r1 |= meq1 & lt8(w1, c)
			r2 |= meq2 & lt8(w2, c)
			r3 |= meq3 & lt8(w3, c)
		} else {
			r0 |= meq0 & gt8(w0, c)
			r1 |= meq1 & gt8(w1, c)
			r2 |= meq2 & gt8(w2, c)
			r3 |= meq3 & gt8(w3, c)
		}
		meq0 &= eq8(w0, c)
		meq1 &= eq8(w1, c)
		meq2 &= eq8(w2, c)
		meq3 &= eq8(w3, c)
		d = j + 1
		if meq0|meq1|meq2|meq3 == 0 {
			break
		}
	}
	if orEq {
		r0 |= meq0
		r1 |= meq1
		r2 |= meq2
		r3 |= meq3
	}
	return movemask4(r0, r1, r2, r3), d
}

//bsvet:hotloop
func (sc *scanner) segBetween(off int) (uint32, int) {
	// Fused single-pass BETWEEN, one load per byte for both bounds.
	e10, e11, e12, e13 := uint64(msb), uint64(msb), uint64(msb), uint64(msb)
	e20, e21, e22, e23 := uint64(msb), uint64(msb), uint64(msb), uint64(msb)
	var g0, g1, g2, g3, l0, l1, l2, l3 uint64
	d := 0
	for j := 0; j < sc.nb; j++ {
		s := seg32(sc.slices[j], off)
		c1, c2 := sc.c1[j], sc.c2[j]
		w0 := binary.LittleEndian.Uint64(s[0:8])
		w1 := binary.LittleEndian.Uint64(s[8:16])
		w2 := binary.LittleEndian.Uint64(s[16:24])
		w3 := binary.LittleEndian.Uint64(s[24:32])
		g0 |= e10 & gt8(w0, c1)
		g1 |= e11 & gt8(w1, c1)
		g2 |= e12 & gt8(w2, c1)
		g3 |= e13 & gt8(w3, c1)
		e10 &= eq8(w0, c1)
		e11 &= eq8(w1, c1)
		e12 &= eq8(w2, c1)
		e13 &= eq8(w3, c1)
		l0 |= e20 & lt8(w0, c2)
		l1 |= e21 & lt8(w1, c2)
		l2 |= e22 & lt8(w2, c2)
		l3 |= e23 & lt8(w3, c2)
		e20 &= eq8(w0, c2)
		e21 &= eq8(w1, c2)
		e22 &= eq8(w2, c2)
		e23 &= eq8(w3, c2)
		d = j + 1
		if (e10|e20)|(e11|e21)|(e12|e22)|(e13|e23) == 0 {
			break
		}
	}
	return movemask4((g0|e10)&(l0|e20), (g1|e11)&(l1|e21),
		(g2|e12)&(l2|e22), (g3|e13)&(l3|e23)), d
}

// ScanRange evaluates p over segments [segLo, segHi), writing each
// segment's 32 result bits into the aligned block of out via SetWord32.
// Ranges must not overlap across concurrent callers.
//
// Full-range scans run op-specialised monolithic loops rather than calling
// segment() per segment: hoisting the op dispatch, slice headers and
// broadcast constants out of the segment loop is worth ~2x wall clock.
func ScanRange(b *core.ByteSlice, p layout.Predicate, segLo, segHi int, out *bitvec.Vector) {
	sc := prepare(b, p)
	sc.scanRange(segLo, segHi, out, nil)
}

// scanRange dispatches the monolithic range loops. dh, when non-nil,
// accumulates the early-stop depth histogram (observability path); a nil
// dh costs one predicted branch per segment, keeping the uninstrumented
// scan at its original throughput.
//
//bsvet:hotloop
func (sc *scanner) scanRange(segLo, segHi int, out *bitvec.Vector, dh *obs.DepthCounts) {
	switch sc.op {
	case layout.Eq:
		sc.rangeEq(segLo, segHi, false, out, dh)
	case layout.Ne:
		sc.rangeEq(segLo, segHi, true, out, dh)
	case layout.Lt:
		sc.rangeCmpStrict(segLo, segHi, true, out, dh)
	case layout.Le:
		sc.rangeCmp(segLo, segHi, true, true, out, dh)
	case layout.Gt:
		sc.rangeCmpStrict(segLo, segHi, false, out, dh)
	case layout.Ge:
		sc.rangeCmp(segLo, segHi, false, true, out, dh)
	case layout.Between:
		for seg := segLo; seg < segHi; seg++ {
			r, d := sc.segBetween(seg * core.SegmentSize)
			out.SetWord32(seg*core.SegmentSize, r)
			if dh != nil {
				dh[d]++
			}
		}
	default:
		panic("kernel: unknown operator")
	}
}

// The range loops batch segment results into aligned 64-bit stores: even
// segments stash their 32 bits in acc, odd segments combine and store the
// full word with one plain write. The boundary cases (odd segLo,
// odd-length tail) fall back to SetWord32; the hot-path branch alternates
// perfectly and predicts for free.

// rangeEq is the monolithic Eq/Ne scan loop. The first byte slice is
// evaluated unconditionally with the initial all-ones mask folded away;
// deeper slices run only while some lane is still undecided.
//
//bsvet:hotloop
func (sc *scanner) rangeEq(segLo, segHi int, ne bool, out *bitvec.Vector, dh *obs.DepthCounts) {
	s0, c0, nb := sc.slices[0], sc.c1[0], sc.nb
	var acc uint64
	for seg := segLo; seg < segHi; seg++ {
		off := seg * core.SegmentSize
		s := s0[off : off+32 : off+32]
		m0 := eq8(binary.LittleEndian.Uint64(s[0:8]), c0)
		m1 := eq8(binary.LittleEndian.Uint64(s[8:16]), c0)
		m2 := eq8(binary.LittleEndian.Uint64(s[16:24]), c0)
		m3 := eq8(binary.LittleEndian.Uint64(s[24:32]), c0)
		d := 1
		for j := 1; j < nb && m0|m1|m2|m3 != 0; j++ {
			s := sc.slices[j][off : off+32 : off+32]
			c := sc.c1[j]
			m0 &= eq8(binary.LittleEndian.Uint64(s[0:8]), c)
			m1 &= eq8(binary.LittleEndian.Uint64(s[8:16]), c)
			m2 &= eq8(binary.LittleEndian.Uint64(s[16:24]), c)
			m3 &= eq8(binary.LittleEndian.Uint64(s[24:32]), c)
			d = j + 1
		}
		if dh != nil {
			dh[d]++
		}
		r := movemask4(m0, m1, m2, m3)
		if ne {
			r = ^r
		}
		if seg&1 == 0 {
			acc = uint64(r)
			if seg+1 >= segHi {
				out.SetWord32(off, r)
			}
		} else if seg == segLo {
			out.SetWord32(off, r)
		} else {
			out.SetWord64(off-core.SegmentSize, acc|uint64(r)<<32)
		}
	}
}

// anyEq4 reports whether any lane of any word equals the constant the
// z_i = w_i ^ c differences were built from. It is Mycroft's zero-byte
// predicate: exact as a yes/no answer (bit positions are unreliable, which
// is fine — callers recompute exact masks when it fires), and two ops per
// word cheaper than eq8.
//
//bsvet:hotloop
func anyEq4(z0, z1, z2, z3 uint64) bool {
	return ((z0-lsb)&^z0|(z1-lsb)&^z1|(z2-lsb)&^z2|(z3-lsb)&^z3)&msb != 0
}

// cmpDeep finishes one segment whose first-slice equality gate fired:
// it recomputes the exact still-equal masks and folds in the deeper byte
// slices. Only the rare gated segments pay the (non-inlined) call; the
// first slice's words are reloaded from cache rather than passed so the
// caller's hot loop doesn't have to keep eight words live across the
// call, which would spill its registers.
//
//bsvet:hotloop
func (sc *scanner) cmpDeep(off int, lt bool, r0, r1, r2, r3 uint64) (uint64, uint64, uint64, uint64, int) {
	c0 := sc.c1[0]
	s0 := sc.slices[0][off : off+32 : off+32]
	m0 := eq8(binary.LittleEndian.Uint64(s0[0:8]), c0)
	m1 := eq8(binary.LittleEndian.Uint64(s0[8:16]), c0)
	m2 := eq8(binary.LittleEndian.Uint64(s0[16:24]), c0)
	m3 := eq8(binary.LittleEndian.Uint64(s0[24:32]), c0)
	d := 1
	for j := 1; j < sc.nb; j++ {
		s := sc.slices[j][off : off+32 : off+32]
		c := sc.c1[j]
		cLo, cOr, cHi := c&^uint64(msb), c|uint64(msb), c&msb != 0
		w0 := binary.LittleEndian.Uint64(s[0:8])
		w1 := binary.LittleEndian.Uint64(s[8:16])
		w2 := binary.LittleEndian.Uint64(s[16:24])
		w3 := binary.LittleEndian.Uint64(s[24:32])
		d = j + 1
		if lt {
			r0 |= m0 & ltc8(w0, cLo, cHi)
			r1 |= m1 & ltc8(w1, cLo, cHi)
			r2 |= m2 & ltc8(w2, cLo, cHi)
			r3 |= m3 & ltc8(w3, cLo, cHi)
		} else {
			r0 |= m0 & gtc8(w0, cOr, cHi)
			r1 |= m1 & gtc8(w1, cOr, cHi)
			r2 |= m2 & gtc8(w2, cOr, cHi)
			r3 |= m3 & gtc8(w3, cOr, cHi)
		}
		if j+1 == sc.nb {
			break // the last slice's still-equal mask is dead
		}
		m0 &= eq8(w0, c)
		m1 &= eq8(w1, c)
		m2 &= eq8(w2, c)
		m3 &= eq8(w3, c)
		if m0|m1|m2|m3 == 0 {
			break
		}
	}
	return r0, r1, r2, r3, d
}

// rangeCmpStrict is the monolithic Lt/Gt scan loop. Without the or-equal
// fold the exact per-lane still-equal masks are pure early-stop plumbing,
// so the hot first-slice path replaces them with anyEq4 and only the rare
// segments whose gate fires pay for exact masks and deeper slices
// (cmpDeep). The main loop runs two segments — 64 codes, one aligned
// result word — per iteration: eight independent dependency chains keep
// the ALUs fed, and the loop and store overhead is paid half as often.
//
// Gated segments resolve through deep32 after the result word is packed:
// only the packed accumulator (never the eight words or eight lane masks)
// is live across the rare deep-path calls, which keeps the register
// spilling around the branch merges off the hot path.
//
//bsvet:hotloop
func (sc *scanner) rangeCmpStrict(segLo, segHi int, lt bool, out *bitvec.Vector, dh *obs.DepthCounts) {
	s0, c0, nb := sc.slices[0], sc.c1[0], sc.nb
	c0lo, c0or, c0hi := c0&^uint64(msb), c0|uint64(msb), c0&msb != 0
	seg := segLo
	if seg < segHi && seg&1 == 1 {
		sc.cmpStrictSeg(seg, lt, out, dh)
		seg++
	}
	for ; seg+2 <= segHi; seg += 2 {
		off := seg * core.SegmentSize
		s := s0[off : off+64 : off+64]
		w0 := binary.LittleEndian.Uint64(s[0:8])
		w1 := binary.LittleEndian.Uint64(s[8:16])
		w2 := binary.LittleEndian.Uint64(s[16:24])
		w3 := binary.LittleEndian.Uint64(s[24:32])
		w4 := binary.LittleEndian.Uint64(s[32:40])
		w5 := binary.LittleEndian.Uint64(s[40:48])
		w6 := binary.LittleEndian.Uint64(s[48:56])
		w7 := binary.LittleEndian.Uint64(s[56:64])
		// Resolve the equality gates to two booleans up front so the words
		// die before the deep-path calls below.
		var g0, g1 bool
		if nb > 1 {
			g0 = anyEq4(w0^c0, w1^c0, w2^c0, w3^c0)
			g1 = anyEq4(w4^c0, w5^c0, w6^c0, w7^c0)
		}
		var r0, r1, r2, r3, r4, r5, r6, r7 uint64
		switch {
		case lt && !c0hi:
			r0 = ltc8lo(w0, c0lo)
			r1 = ltc8lo(w1, c0lo)
			r2 = ltc8lo(w2, c0lo)
			r3 = ltc8lo(w3, c0lo)
			r4 = ltc8lo(w4, c0lo)
			r5 = ltc8lo(w5, c0lo)
			r6 = ltc8lo(w6, c0lo)
			r7 = ltc8lo(w7, c0lo)
		case lt:
			r0 = ltc8hi(w0, c0lo)
			r1 = ltc8hi(w1, c0lo)
			r2 = ltc8hi(w2, c0lo)
			r3 = ltc8hi(w3, c0lo)
			r4 = ltc8hi(w4, c0lo)
			r5 = ltc8hi(w5, c0lo)
			r6 = ltc8hi(w6, c0lo)
			r7 = ltc8hi(w7, c0lo)
		case !c0hi:
			r0 = gtc8lo(w0, c0or)
			r1 = gtc8lo(w1, c0or)
			r2 = gtc8lo(w2, c0or)
			r3 = gtc8lo(w3, c0or)
			r4 = gtc8lo(w4, c0or)
			r5 = gtc8lo(w5, c0or)
			r6 = gtc8lo(w6, c0or)
			r7 = gtc8lo(w7, c0or)
		default:
			r0 = gtc8hi(w0, c0or)
			r1 = gtc8hi(w1, c0or)
			r2 = gtc8hi(w2, c0or)
			r3 = gtc8hi(w3, c0or)
			r4 = gtc8hi(w4, c0or)
			r5 = gtc8hi(w5, c0or)
			r6 = gtc8hi(w6, c0or)
			r7 = gtc8hi(w7, c0or)
		}
		// Condense the eight lane masks (msb bits only) into the result
		// word without the eight movemask multiplies: packing r_u>>(7-u)
		// puts word u's lane-l bit at position 8l+u, and an 8x8 bit-matrix
		// transpose (three delta swaps) moves it to the required 8u+l.
		x := r0>>7 | r1>>6 | r2>>5 | r3>>4 | r4>>3 | r5>>2 | r6>>1 | r7
		t := (x ^ x>>7) & 0x00AA00AA00AA00AA
		x = x ^ t ^ t<<7
		t = (x ^ x>>14) & 0x0000CCCC0000CCCC
		x = x ^ t ^ t<<14
		t = (x ^ x>>28) & 0x00000000F0F0F0F0
		x = x ^ t ^ t<<28
		d0, d1 := 1, 1
		if g0 {
			r, dd := sc.deep32(off, lt)
			x |= uint64(r)
			d0 = dd
		}
		if g1 {
			r, dd := sc.deep32(off+core.SegmentSize, lt)
			x |= uint64(r) << 32
			d1 = dd
		}
		out.SetWord64(off, x)
		if dh != nil {
			dh[d0]++
			dh[d1]++
		}
	}
	if seg < segHi {
		sc.cmpStrictSeg(seg, lt, out, dh)
	}
}

// deep32 resolves one gated segment's deeper byte slices and returns the
// additional match bits (rows equal on the first slice that the deeper
// slices decide) as a segment-local movemask for the caller to OR in,
// plus the segment's early-stop depth.
//
//bsvet:hotloop
func (sc *scanner) deep32(off int, lt bool) (uint32, int) {
	r0, r1, r2, r3, d := sc.cmpDeep(off, lt, 0, 0, 0, 0)
	return movemask4(r0, r1, r2, r3), d
}

// cmpStrictSeg handles the odd-aligned prologue and tail segments of
// rangeCmpStrict one segment at a time.
//
//bsvet:hotloop
func (sc *scanner) cmpStrictSeg(seg int, lt bool, out *bitvec.Vector, dh *obs.DepthCounts) {
	c0 := sc.c1[0]
	c0lo, c0or, c0hi := c0&^uint64(msb), c0|uint64(msb), c0&msb != 0
	off := seg * core.SegmentSize
	s := sc.slices[0][off : off+32 : off+32]
	w0 := binary.LittleEndian.Uint64(s[0:8])
	w1 := binary.LittleEndian.Uint64(s[8:16])
	w2 := binary.LittleEndian.Uint64(s[16:24])
	w3 := binary.LittleEndian.Uint64(s[24:32])
	var r0, r1, r2, r3 uint64
	if lt {
		r0 = ltc8(w0, c0lo, c0hi)
		r1 = ltc8(w1, c0lo, c0hi)
		r2 = ltc8(w2, c0lo, c0hi)
		r3 = ltc8(w3, c0lo, c0hi)
	} else {
		r0 = gtc8(w0, c0or, c0hi)
		r1 = gtc8(w1, c0or, c0hi)
		r2 = gtc8(w2, c0or, c0hi)
		r3 = gtc8(w3, c0or, c0hi)
	}
	d := 1
	if sc.nb > 1 && anyEq4(w0^c0, w1^c0, w2^c0, w3^c0) {
		r0, r1, r2, r3, d = sc.cmpDeep(off, lt, r0, r1, r2, r3)
	}
	if dh != nil {
		dh[d]++
	}
	out.SetWord32(off, movemask4(r0, r1, r2, r3))
}

// rangeCmp is the monolithic Lt/Le/Gt/Ge scan loop (lt picks the
// direction, orEq folds the still-equal lanes in at the end). The first
// byte slice — by far the hottest, since early stopping rarely lets a
// segment past it — uses the constant-specialised ltc8/gtc8 compares; its
// direction and high-bit branches run the same way every iteration.
//
//bsvet:hotloop
func (sc *scanner) rangeCmp(segLo, segHi int, lt, orEq bool, out *bitvec.Vector, dh *obs.DepthCounts) {
	s0, c0, nb := sc.slices[0], sc.c1[0], sc.nb
	c0lo, c0or, c0hi := c0&^uint64(msb), c0|uint64(msb), c0&msb != 0
	var acc uint64
	for seg := segLo; seg < segHi; seg++ {
		off := seg * core.SegmentSize
		s := s0[off : off+32 : off+32]
		w0 := binary.LittleEndian.Uint64(s[0:8])
		w1 := binary.LittleEndian.Uint64(s[8:16])
		w2 := binary.LittleEndian.Uint64(s[16:24])
		w3 := binary.LittleEndian.Uint64(s[24:32])
		var r0, r1, r2, r3 uint64
		if lt {
			r0 = ltc8(w0, c0lo, c0hi)
			r1 = ltc8(w1, c0lo, c0hi)
			r2 = ltc8(w2, c0lo, c0hi)
			r3 = ltc8(w3, c0lo, c0hi)
		} else {
			r0 = gtc8(w0, c0or, c0hi)
			r1 = gtc8(w1, c0or, c0hi)
			r2 = gtc8(w2, c0or, c0hi)
			r3 = gtc8(w3, c0or, c0hi)
		}
		m0 := eq8(w0, c0)
		m1 := eq8(w1, c0)
		m2 := eq8(w2, c0)
		m3 := eq8(w3, c0)
		d := 1
		for j := 1; j < nb && m0|m1|m2|m3 != 0; j++ {
			s := sc.slices[j][off : off+32 : off+32]
			c := sc.c1[j]
			cLo, cOr, cHi := c&^uint64(msb), c|uint64(msb), c&msb != 0
			w0 := binary.LittleEndian.Uint64(s[0:8])
			w1 := binary.LittleEndian.Uint64(s[8:16])
			w2 := binary.LittleEndian.Uint64(s[16:24])
			w3 := binary.LittleEndian.Uint64(s[24:32])
			d = j + 1
			if lt {
				r0 |= m0 & ltc8(w0, cLo, cHi)
				r1 |= m1 & ltc8(w1, cLo, cHi)
				r2 |= m2 & ltc8(w2, cLo, cHi)
				r3 |= m3 & ltc8(w3, cLo, cHi)
			} else {
				r0 |= m0 & gtc8(w0, cOr, cHi)
				r1 |= m1 & gtc8(w1, cOr, cHi)
				r2 |= m2 & gtc8(w2, cOr, cHi)
				r3 |= m3 & gtc8(w3, cOr, cHi)
			}
			if j+1 < nb || orEq {
				// The last slice's still-equal mask is only needed when
				// Le/Ge folds it into the result.
				m0 &= eq8(w0, c)
				m1 &= eq8(w1, c)
				m2 &= eq8(w2, c)
				m3 &= eq8(w3, c)
			} else {
				break
			}
		}
		if dh != nil {
			dh[d]++
		}
		if orEq {
			r0 |= m0
			r1 |= m1
			r2 |= m2
			r3 |= m3
		}
		r := movemask4(r0, r1, r2, r3)
		if seg&1 == 0 {
			acc = uint64(r)
			if seg+1 >= segHi {
				out.SetWord32(off, r)
			}
		} else if seg == segLo {
			out.SetWord32(off, r)
		} else {
			out.SetWord64(off-core.SegmentSize, acc|uint64(r)<<32)
		}
	}
}

// Scan evaluates p over the whole column into out, which must have length
// b.Len() and is overwritten.
func Scan(b *core.ByteSlice, p layout.Predicate, out *bitvec.Vector) {
	if out.Len() != b.Len() {
		panic("kernel: result vector length mismatch")
	}
	ScanRange(b, p, 0, b.Segments(), out)
}

// ParallelScan evaluates p over the whole column with the given number of
// worker goroutines, partitioning the segment range with the same
// even-segment chunk alignment as core.ParallelScan so no two workers
// share a result word. workers <= 1 scans serially. out must have length
// b.Len() and is overwritten.
func ParallelScan(b *core.ByteSlice, p layout.Predicate, workers int, out *bitvec.Vector) {
	mustCtx(ParallelScanCtx(nil, b, p, workers, out))
}

// ScanPipelinedRange is the native column-first pipelined scan (Algorithm
// 2) over segments [segLo, segHi): the previous predicate's condensed
// result gates each segment — a segment with no live rows is skipped
// without touching the data. With negate=false the output is prev AND
// result; with negate=true the scan considers rows where prev is unset and
// outputs prev OR result.
func ScanPipelinedRange(b *core.ByteSlice, p layout.Predicate, prev *bitvec.Vector, negate bool, segLo, segHi int, out *bitvec.Vector) {
	sc := prepare(b, p)
	for seg := segLo; seg < segHi; seg++ {
		off := seg * core.SegmentSize
		var rprev uint32
		if off < sc.n {
			rprev = prev.Word32(off)
		}
		gate := rprev
		if negate {
			gate = ^rprev
		}
		if gate == 0 {
			if negate {
				out.SetWord32(off, rprev)
			} else {
				out.SetWord32(off, 0)
			}
			continue
		}
		r := sc.segment(seg)
		if negate {
			out.SetWord32(off, r|rprev)
		} else {
			out.SetWord32(off, r&rprev)
		}
	}
}

// ScanPipelined runs ScanPipelinedRange over the whole column.
func ScanPipelined(b *core.ByteSlice, p layout.Predicate, prev *bitvec.Vector, negate bool, out *bitvec.Vector) {
	ParallelScanPipelined(b, p, prev, negate, 1, out)
}

// ParallelScanPipelined is ScanPipelined fanned out across workers with
// word-aligned segment chunks. workers <= 1 scans serially.
func ParallelScanPipelined(b *core.ByteSlice, p layout.Predicate, prev *bitvec.Vector, negate bool, workers int, out *bitvec.Vector) {
	mustCtx(ParallelScanPipelinedCtx(nil, b, p, prev, negate, workers, out))
}
