package kernel

import (
	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/layout"
)

// Zone-map-aware native scans. A zone map (internal/core/zonemap.go) keeps
// the per-segment min/max of the first byte slice; when that pair already
// decides the predicate — every first byte below the constant's, say — the
// segment's 32 result bits are written without loading a single data byte.
// This is strictly stronger than early stopping, which still pays for the
// first slice: on sorted or clustered columns nearly every segment
// resolves from two metadata bytes, and the scan degenerates to a walk
// over the zone arrays (64 bytes of metadata per 2048 codes — one cache
// line per 64 segments).
//
// All zoned kernels return the number of segments the zone map resolved,
// so callers (tests, Result.ZoneSkipped, the planner's feedback) can
// observe that pruning actually happened.

// zoneInfo snapshots a column's zone arrays and the predicate's first
// constant bytes for the per-segment decision test.
type zoneInfo struct {
	mn, mx []byte
	c1, c2 byte
	ok     bool
}

func zoneFor(b *core.ByteSlice, p layout.Predicate) zoneInfo {
	mn, mx := b.ZoneBounds()
	if mn == nil {
		return zoneInfo{}
	}
	c1, c2 := b.ZoneFirstBytes(p)
	return zoneInfo{mn: mn, mx: mx, c1: c1, c2: c2, ok: true}
}

// decide classifies one segment: -1 no row matches, +1 all rows match,
// 0 undecided (or no zone map).
//
//bsvet:hotloop
func (z *zoneInfo) decide(op layout.Op, seg int) int {
	if !z.ok {
		return 0
	}
	return core.ZoneDecisionBytes(op, z.mn[seg], z.mx[seg], z.c1, z.c2)
}

// ScanZonedRange evaluates p over segments [segLo, segHi) with zone-map
// pruning, writing each segment's result bits like ScanRange, and returns
// the number of segments the zone map decided. BuildZoneMaps must have
// run on b.
func ScanZonedRange(b *core.ByteSlice, p layout.Predicate, segLo, segHi int, out *bitvec.Vector) int {
	sc := prepare(b, p)
	z := zoneFor(b, p)
	if !z.ok {
		panic("kernel: ScanZonedRange without BuildZoneMaps")
	}
	// Hoisting the zone arrays and constants lets ZoneDecisionBytes inline
	// into the loop: the decided case is then two byte loads and a couple of
	// compares per segment, with no call.
	mn, mx := z.mn, z.mx
	op, c1, c2 := sc.op, z.c1, z.c2
	pruned := 0
	for seg := segLo; seg < segHi; seg++ {
		off := seg * core.SegmentSize
		switch core.ZoneDecisionBytes(op, mn[seg], mx[seg], c1, c2) {
		case 1:
			out.SetWord32(off, ^uint32(0))
			pruned++
		case -1:
			out.SetWord32(off, 0)
			pruned++
		default:
			out.SetWord32(off, sc.segment(seg))
		}
	}
	return pruned
}

// ScanZoned evaluates p over the whole column with zone-map pruning and
// returns the number of zone-resolved segments. out must have length
// b.Len() and is overwritten.
func ScanZoned(b *core.ByteSlice, p layout.Predicate, out *bitvec.Vector) int {
	return ParallelScanZoned(b, p, 1, out)
}

// ParallelScanZoned is ScanZoned fanned out across workers with the same
// even-segment chunk alignment as ParallelScan; the per-chunk prune counts
// are summed. workers <= 1 scans serially.
func ParallelScanZoned(b *core.ByteSlice, p layout.Predicate, workers int, out *bitvec.Vector) int {
	pruned, err := ParallelScanZonedCtx(nil, b, p, workers, out)
	mustCtx(err)
	return pruned
}

// ScanPipelinedZonedRange is the pipelined scan with both gates: the
// previous predicate's condensed result (a segment with no live rows is
// skipped) and the zone verdict (a segment whose zone decides the
// predicate completes without loads). Semantics match
// ScanPipelinedRange; the return value counts zone-resolved segments
// among those the mask left live.
func ScanPipelinedZonedRange(b *core.ByteSlice, p layout.Predicate, prev *bitvec.Vector, negate bool, segLo, segHi int, out *bitvec.Vector) int {
	sc := prepare(b, p)
	z := zoneFor(b, p)
	if !z.ok {
		panic("kernel: ScanPipelinedZonedRange without BuildZoneMaps")
	}
	mn, mx := z.mn, z.mx
	op, c1, c2 := sc.op, z.c1, z.c2
	pruned := 0
	for seg := segLo; seg < segHi; seg++ {
		off := seg * core.SegmentSize
		var rprev uint32
		if off < sc.n {
			rprev = prev.Word32(off)
		}
		gate := rprev
		if negate {
			gate = ^rprev
		}
		if gate == 0 {
			if negate {
				out.SetWord32(off, rprev)
			} else {
				out.SetWord32(off, 0)
			}
			continue
		}
		var r uint32
		switch core.ZoneDecisionBytes(op, mn[seg], mx[seg], c1, c2) {
		case 1:
			r = ^uint32(0)
			pruned++
		case -1:
			r = 0
			pruned++
		default:
			r = sc.segment(seg)
		}
		if negate {
			out.SetWord32(off, r|rprev)
		} else {
			out.SetWord32(off, r&rprev)
		}
	}
	return pruned
}

// ParallelScanPipelinedZoned is ScanPipelinedZonedRange over the whole
// column, fanned out across workers. workers <= 1 scans serially.
func ParallelScanPipelinedZoned(b *core.ByteSlice, p layout.Predicate, prev *bitvec.Vector, negate bool, workers int, out *bitvec.Vector) int {
	pruned, err := ParallelScanPipelinedZonedCtx(nil, b, p, prev, negate, workers, out)
	mustCtx(err)
	return pruned
}
