package kernel

import (
	"context"
	"time"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/layout"
	"byteslice/internal/obs"
)

// Instrumented kernel entry points. Every *Obs function is the *Ctx
// kernel plus an optional *obs.Stage: with st == nil the body runs the
// exact uninstrumented path (the *Ctx functions delegate here with nil),
// and with st != nil each worker batch accumulates a local early-stop
// depth histogram (one plain increment per 32-code segment) and flushes
// it into the shared Stage with a handful of atomic adds per 256-segment
// batch. Byte accounting follows the layout: 32 column bytes per byte
// slice examined, 2 zone-metadata bytes per zone-consulted segment, and
// 4 gate-mask bytes per segment a pipelined scan inspects.

// zoneMetaBytes is the zone-map metadata cost per consulted segment: one
// min and one max byte.
const zoneMetaBytes = 2

// gateMaskBytes is the previous-result word a pipelined scan reads per
// segment.
const gateMaskBytes = 4

// ParallelScanObs is ParallelScanCtx with per-stage statistics.
func ParallelScanObs(ctx context.Context, b *core.ByteSlice, p layout.Predicate, workers int, out *bitvec.Vector, st *obs.Stage) error {
	if out.Len() != b.Len() {
		panic("kernel: result vector length mismatch")
	}
	_, err := parallelRanges(ctx, b.Segments(), workers, st, func(lo, hi int) struct{} {
		if st == nil {
			ScanRange(b, p, lo, hi, out)
			return struct{}{}
		}
		sc := prepare(b, p)
		var dh obs.DepthCounts
		sc.scanRange(lo, hi, out, &dh)
		st.AddDepths(&dh)
		return struct{}{}
	}, dropUnit)
	return err
}

// ParallelScanZonedObs is ParallelScanZonedCtx with per-stage statistics.
func ParallelScanZonedObs(ctx context.Context, b *core.ByteSlice, p layout.Predicate, workers int, out *bitvec.Vector, st *obs.Stage) (int, error) {
	if out.Len() != b.Len() {
		panic("kernel: result vector length mismatch")
	}
	return parallelRanges(ctx, b.Segments(), workers, st, func(lo, hi int) int {
		if st == nil {
			return ScanZonedRange(b, p, lo, hi, out)
		}
		var dh obs.DepthCounts
		pruned := scanZonedRangeObs(b, p, lo, hi, out, &dh)
		st.AddDepths(&dh)
		st.AddBytes(int64(hi-lo) * zoneMetaBytes)
		return pruned
	}, addInt)
}

// scanZonedRangeObs is ScanZonedRange with early-stop depth tracking;
// zone-resolved segments count as depth 0.
func scanZonedRangeObs(b *core.ByteSlice, p layout.Predicate, segLo, segHi int, out *bitvec.Vector, dh *obs.DepthCounts) int {
	sc := prepare(b, p)
	z := zoneFor(b, p)
	if !z.ok {
		panic("kernel: ScanZonedRange without BuildZoneMaps")
	}
	mn, mx := z.mn, z.mx
	op, c1, c2 := sc.op, z.c1, z.c2
	pruned := 0
	for seg := segLo; seg < segHi; seg++ {
		off := seg * core.SegmentSize
		switch core.ZoneDecisionBytes(op, mn[seg], mx[seg], c1, c2) {
		case 1:
			out.SetWord32(off, ^uint32(0))
			pruned++
			dh[0]++
		case -1:
			out.SetWord32(off, 0)
			pruned++
			dh[0]++
		default:
			r, d := sc.segmentDepth(seg)
			out.SetWord32(off, r)
			dh[d]++
		}
	}
	return pruned
}

// ParallelScanPipelinedObs is ParallelScanPipelinedCtx with per-stage
// statistics.
func ParallelScanPipelinedObs(ctx context.Context, b *core.ByteSlice, p layout.Predicate, prev *bitvec.Vector, negate bool, workers int, out *bitvec.Vector, st *obs.Stage) error {
	if prev.Len() != b.Len() {
		panic("kernel: pipelined scan with mismatched previous result length")
	}
	if out.Len() != b.Len() {
		panic("kernel: result vector length mismatch")
	}
	_, err := parallelRanges(ctx, b.Segments(), workers, st, func(lo, hi int) struct{} {
		if st == nil {
			ScanPipelinedRange(b, p, prev, negate, lo, hi, out)
			return struct{}{}
		}
		var dh obs.DepthCounts
		masked := scanPipelinedRangeObs(b, p, prev, negate, lo, hi, out, &dh)
		st.AddDepths(&dh)
		st.AddMaskSkipped(int64(masked))
		st.AddBytes(int64(hi-lo) * gateMaskBytes)
		return struct{}{}
	}, dropUnit)
	return err
}

// scanPipelinedRangeObs is ScanPipelinedRange with depth tracking; it
// returns the number of segments the gate skipped outright.
func scanPipelinedRangeObs(b *core.ByteSlice, p layout.Predicate, prev *bitvec.Vector, negate bool, segLo, segHi int, out *bitvec.Vector, dh *obs.DepthCounts) int {
	sc := prepare(b, p)
	masked := 0
	for seg := segLo; seg < segHi; seg++ {
		off := seg * core.SegmentSize
		var rprev uint32
		if off < sc.n {
			rprev = prev.Word32(off)
		}
		gate := rprev
		if negate {
			gate = ^rprev
		}
		if gate == 0 {
			if negate {
				out.SetWord32(off, rprev)
			} else {
				out.SetWord32(off, 0)
			}
			masked++
			continue
		}
		r, d := sc.segmentDepth(seg)
		dh[d]++
		if negate {
			out.SetWord32(off, r|rprev)
		} else {
			out.SetWord32(off, r&rprev)
		}
	}
	return masked
}

// ParallelScanPipelinedZonedObs is ParallelScanPipelinedZonedCtx with
// per-stage statistics.
func ParallelScanPipelinedZonedObs(ctx context.Context, b *core.ByteSlice, p layout.Predicate, prev *bitvec.Vector, negate bool, workers int, out *bitvec.Vector, st *obs.Stage) (int, error) {
	if prev.Len() != b.Len() {
		panic("kernel: pipelined scan with mismatched previous result length")
	}
	if out.Len() != b.Len() {
		panic("kernel: result vector length mismatch")
	}
	return parallelRanges(ctx, b.Segments(), workers, st, func(lo, hi int) int {
		if st == nil {
			return ScanPipelinedZonedRange(b, p, prev, negate, lo, hi, out)
		}
		var dh obs.DepthCounts
		pruned, masked := scanPipelinedZonedRangeObs(b, p, prev, negate, lo, hi, out, &dh)
		st.AddDepths(&dh)
		st.AddMaskSkipped(int64(masked))
		st.AddBytes(int64(hi-lo) * (gateMaskBytes + zoneMetaBytes))
		return pruned
	}, addInt)
}

// scanPipelinedZonedRangeObs is ScanPipelinedZonedRange with depth
// tracking; it returns (zone-resolved, gate-skipped) segment counts.
func scanPipelinedZonedRangeObs(b *core.ByteSlice, p layout.Predicate, prev *bitvec.Vector, negate bool, segLo, segHi int, out *bitvec.Vector, dh *obs.DepthCounts) (int, int) {
	sc := prepare(b, p)
	z := zoneFor(b, p)
	if !z.ok {
		panic("kernel: ScanPipelinedZonedRange without BuildZoneMaps")
	}
	mn, mx := z.mn, z.mx
	op, c1, c2 := sc.op, z.c1, z.c2
	pruned, masked := 0, 0
	for seg := segLo; seg < segHi; seg++ {
		off := seg * core.SegmentSize
		var rprev uint32
		if off < sc.n {
			rprev = prev.Word32(off)
		}
		gate := rprev
		if negate {
			gate = ^rprev
		}
		if gate == 0 {
			if negate {
				out.SetWord32(off, rprev)
			} else {
				out.SetWord32(off, 0)
			}
			masked++
			continue
		}
		var r uint32
		switch core.ZoneDecisionBytes(op, mn[seg], mx[seg], c1, c2) {
		case 1:
			r = ^uint32(0)
			pruned++
			dh[0]++
		case -1:
			r = 0
			pruned++
			dh[0]++
		default:
			var d int
			r, d = sc.segmentDepth(seg)
			dh[d]++
		}
		if negate {
			out.SetWord32(off, r|rprev)
		} else {
			out.SetWord32(off, r&rprev)
		}
	}
	return pruned, masked
}

// ParallelScanMultiObs is ParallelScanMultiCtx with per-stage statistics.
// Segment and depth counts are per predicate evaluation: a conjunction
// over k columns contributes up to k entries per 32-code segment.
func ParallelScanMultiObs(ctx context.Context, cols []*core.ByteSlice, preds []layout.Predicate, disjunct bool, workers int, out *bitvec.Vector, st *obs.Stage) (int, error) {
	if len(cols) == 0 {
		panic("kernel: ParallelScanMulti needs at least one column")
	}
	if out.Len() != cols[0].Len() {
		panic("kernel: result vector length mismatch")
	}
	return parallelRanges(ctx, cols[0].Segments(), workers, st, func(lo, hi int) int {
		if st == nil {
			return ScanMultiRange(cols, preds, disjunct, lo, hi, out)
		}
		var dh obs.DepthCounts
		pruned := scanMultiRangeObs(cols, preds, disjunct, lo, hi, out, &dh)
		st.AddDepths(&dh)
		return pruned
	}, addInt)
}

// scanMultiRangeObs is ScanMultiRange with per-predicate-evaluation depth
// tracking (zone-resolved conjuncts count as depth 0).
func scanMultiRangeObs(cols []*core.ByteSlice, preds []layout.Predicate, disjunct bool, segLo, segHi int, out *bitvec.Vector, dh *obs.DepthCounts) int {
	if len(cols) == 0 || len(cols) != len(preds) {
		panic("kernel: ScanMultiRange needs matching columns and predicates")
	}
	scs := make([]scanner, len(cols))
	zs := make([]zoneInfo, len(cols))
	for i, b := range cols {
		if b.Len() != cols[0].Len() {
			panic("kernel: ScanMultiRange columns have different lengths")
		}
		scs[i] = prepare(b, preds[i])
		zs[i] = zoneFor(b, preds[i])
	}
	pruned := 0
	for seg := segLo; seg < segHi; seg++ {
		off := seg * core.SegmentSize
		var m uint32
		if !disjunct {
			m = ^uint32(0)
		}
		for i := range scs {
			d := zs[i].decide(scs[i].op, seg)
			if d != 0 {
				pruned++
				dh[0]++
			}
			if disjunct {
				if d > 0 {
					m = ^uint32(0)
					break
				}
				if d < 0 {
					continue
				}
				r, dep := scs[i].segmentDepth(seg)
				dh[dep]++
				m |= r
				if m == ^uint32(0) {
					break
				}
			} else {
				if d > 0 {
					continue
				}
				if d < 0 {
					m = 0
					break
				}
				r, dep := scs[i].segmentDepth(seg)
				dh[dep]++
				m &= r
				if m == 0 {
					break
				}
			}
		}
		out.SetWord32(off, m)
	}
	return pruned
}

// ParallelSumObs is ParallelSumCtx with per-stage statistics. Aggregate
// kernels have no early stop, so bytes are accounted as every byte slice
// of every segment in the range.
func ParallelSumObs(ctx context.Context, b *core.ByteSlice, mask *bitvec.Vector, workers int, st *obs.Stage) (sum uint64, count int, err error) {
	if mask != nil && mask.Len() != b.Len() {
		panic("kernel: aggregate mask length mismatch")
	}
	count = b.Len()
	if mask != nil {
		count = mask.Count()
	}
	pad := uint(8*b.NumSlices() - b.Width())
	segBytes := int64(core.SegmentSize * b.NumSlices())
	padded, err := parallelRanges(ctx, b.Segments(), workers, st, func(lo, hi int) uint64 {
		if st != nil {
			st.AddSegments(int64(hi-lo), int64(hi-lo)*segBytes)
		}
		return sumRange(b, mask, lo, hi)
	}, func(a, b uint64) uint64 { return a + b })
	if err != nil {
		return 0, 0, err
	}
	return padded >> pad, count, nil
}

// ParallelExtremeObs is ParallelExtremeCtx with per-stage statistics.
func ParallelExtremeObs(ctx context.Context, b *core.ByteSlice, mask *bitvec.Vector, isMin bool, workers int, st *obs.Stage) (uint32, bool, error) {
	if mask != nil && mask.Len() != b.Len() {
		panic("kernel: aggregate mask length mismatch")
	}
	segBytes := int64(core.SegmentSize * b.NumSlices())
	best, err := parallelRanges(ctx, b.Segments(), workers, st, func(lo, hi int) extPartial {
		if st != nil {
			st.AddSegments(int64(hi-lo), int64(hi-lo)*segBytes)
		}
		v, ok := extremeRange(b, mask, isMin, lo, hi)
		return extPartial{v, ok}
	}, mergeExtreme(isMin))
	if err != nil {
		return 0, false, err
	}
	return best.v, best.ok, nil
}

// ScanSumObs is ScanSumCtx with per-stage statistics: filter-column
// segments plus value-column bytes for the fused aggregate.
func ScanSumObs(ctx context.Context, f *core.ByteSlice, p layout.Predicate, v *core.ByteSlice, workers int, st *obs.Stage) (sum uint64, count int, err error) {
	if f.Len() != v.Len() {
		panic("kernel: ScanSum columns have different lengths")
	}
	type part struct {
		padded uint64
		count  int
	}
	padv := uint(8*v.NumSlices() - v.Width())
	segBytes := int64(core.SegmentSize * (f.NumSlices() + v.NumSlices()))
	res, err := parallelRanges(ctx, f.Segments(), workers, st, func(lo, hi int) part {
		if st != nil {
			st.AddSegments(int64(hi-lo), int64(hi-lo)*segBytes)
		}
		sc := prepare(f, p)
		z := zoneFor(f, p)
		padded, n := scanSumRange(f, &sc, &z, v, lo, hi)
		return part{padded, n}
	}, func(a, b part) part { return part{a.padded + b.padded, a.count + b.count} })
	if err != nil {
		return 0, 0, err
	}
	return res.padded >> padv, res.count, nil
}

// ScanExtremeObs is ScanExtremeCtx with per-stage statistics.
func ScanExtremeObs(ctx context.Context, f *core.ByteSlice, p layout.Predicate, v *core.ByteSlice, isMin bool, workers int, st *obs.Stage) (uint32, bool, error) {
	if f.Len() != v.Len() {
		panic("kernel: ScanExtreme columns have different lengths")
	}
	segBytes := int64(core.SegmentSize * (f.NumSlices() + v.NumSlices()))
	best, err := parallelRanges(ctx, f.Segments(), workers, st, func(lo, hi int) extPartial {
		if st != nil {
			st.AddSegments(int64(hi-lo), int64(hi-lo)*segBytes)
		}
		sc := prepare(f, p)
		z := zoneFor(f, p)
		val, ok := scanExtremeRange(f, &sc, &z, v, isMin, lo, hi)
		return extPartial{val, ok}
	}, mergeExtreme(isMin))
	if err != nil {
		return 0, false, err
	}
	return best.v, best.ok, nil
}

// LookupManyObs is LookupManyCtx with per-stage statistics: each looked-up
// row reads one byte per byte slice.
func LookupManyObs(ctx context.Context, b *core.ByteSlice, rows []int32, out []uint32, st *obs.Stage) error {
	if len(out) != len(rows) {
		panic("kernel: LookupMany output length mismatch")
	}
	x := &exec{ctx: ctx}
	if st != nil {
		st.SetWorkers(1)
	}
	nb := int64(b.NumSlices())
	step := batchSegments * core.SegmentSize
	for lo := 0; lo < len(rows); lo += step {
		if x.stop() {
			break
		}
		hi := lo + step
		if hi > len(rows) {
			hi = len(rows)
		}
		var t0 time.Time
		if st != nil {
			t0 = time.Now()
		}
		if _, err := protect(lo, hi, func(lo, hi int) struct{} {
			if hook := BatchHook; hook != nil {
				hook(lo, hi)
			}
			LookupMany(b, rows[lo:hi], out[lo:hi])
			return struct{}{}
		}); err != nil {
			x.fail(err)
			break
		}
		if st != nil {
			st.ObserveBatch(time.Since(t0).Nanoseconds())
			st.AddRows(int64(hi-lo), int64(hi-lo)*nb)
		}
	}
	return x.finish()
}
