package kernel

import (
	"fmt"
	"testing"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/datagen"
	"byteslice/internal/layout"
	"byteslice/internal/layout/layouttest"
)

// TestZonedKernelsOnShapedData runs the zoned, multi and fused kernels over
// the three distributions the planner is built for — sorted, clustered and
// uniform — and checks both bit-identical results against the engine path
// and that pruning actually happens where the data shape promises it.
func TestZonedKernelsOnShapedData(t *testing.T) {
	const n = 1<<14 + 9 // partial final segment
	rng := datagen.NewRand(42)
	shapes := []struct {
		name      string
		codes     []uint32
		wantPrune bool // most segments should resolve from the zone map
	}{
		{"sorted", datagen.Sorted(rng, n, 12), true},
		{"clustered", datagen.Clustered(rng, n, 12, 2048), true},
		{"uniform", datagen.Uniform(rng, n, 12), false},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			b := core.New(shape.codes, 12, nil)
			b.BuildZoneMaps()
			c := datagen.SelectivityConstant(shape.codes, 0.01)
			preds := []layout.Predicate{
				{Op: layout.Lt, C1: c},
				{Op: layout.Between, C1: c, C2: c + 40},
				{Op: layout.Eq, C1: c},
			}
			for pi, p := range preds {
				t.Run(fmt.Sprint(pi), func(t *testing.T) {
					want := bitvec.New(n)
					b.Scan(layouttest.Engine(), p, want)

					for _, workers := range []int{1, 4} {
						got := bitvec.New(n)
						got.Fill()
						pruned := ParallelScanZoned(b, p, workers, got)
						if !got.Equal(want) {
							t.Fatalf("workers=%d: zoned scan differs", workers)
						}
						segs := b.Segments()
						if shape.wantPrune && pruned < segs/2 {
							t.Fatalf("workers=%d: pruned %d of %d segments, want most", workers, pruned, segs)
						}

						// Fused sum against the two-pass composition.
						wantSum, wantN := b.Sum(layouttest.Engine(), want)
						gotSum, gotN := ScanSum(b, p, b, workers)
						if gotSum != wantSum || gotN != wantN {
							t.Fatalf("workers=%d: fused sum %d/%d, two-pass %d/%d", workers, gotSum, gotN, wantSum, wantN)
						}
					}

					// Zoned pipelined against the engine pipelined, gated by
					// the Lt predicate's own result.
					for _, negate := range []bool{false, true} {
						wantP := bitvec.New(n)
						b.ScanPipelined(layouttest.Engine(), p, want, negate, wantP)
						gotP := bitvec.New(n)
						gotP.Fill()
						ParallelScanPipelinedZoned(b, p, want, negate, 4, gotP)
						if !gotP.Equal(wantP) {
							t.Fatalf("negate=%v: zoned pipelined scan differs", negate)
						}
					}
				})
			}

			// Multi-predicate conjunction/disjunction over all three
			// predicates on the zoned column.
			for _, disjunct := range []bool{false, true} {
				wantM := bitvec.New(n)
				b.Scan(layouttest.Engine(), preds[0], wantM)
				tmp := bitvec.New(n)
				for _, p := range preds[1:] {
					b.Scan(layouttest.Engine(), p, tmp)
					if disjunct {
						wantM.Or(tmp)
					} else {
						wantM.And(tmp)
					}
				}
				gotM := bitvec.New(n)
				gotM.Fill()
				pruned := ParallelScanMulti([]*core.ByteSlice{b, b, b}, preds, disjunct, 4, gotM)
				if !gotM.Equal(wantM) {
					t.Fatalf("disjunct=%v: multi scan differs", disjunct)
				}
				if shape.wantPrune && pruned == 0 {
					t.Fatalf("disjunct=%v: multi scan pruned nothing on %s data", disjunct, shape.name)
				}
			}
		})
	}
}
