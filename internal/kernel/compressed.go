package kernel

import (
	"context"
	"encoding/binary"
	"math/bits"

	"byteslice/internal/bitvec"
	"byteslice/internal/compress"
	"byteslice/internal/core"
	"byteslice/internal/layout"
	"byteslice/internal/obs"
)

// Fused kernels over the compressed column layout (internal/compress).
// The raw column is never materialised: a worker walks 512-code blocks,
// and for each block either
//
//   - resolves it from the 8 bytes of exact min/max metadata (writing 16
//     segment words without touching the streams),
//   - compares the block's FOR bytes directly in SWAR registers when every
//     value fits one byte (the predicate constant is translated by the
//     block reference, which the exact zone bounds guarantee stays in
//     [0,255] for undecided blocks), or
//   - decodes the block through the Stream-VByte control walk into a
//     stack-resident byte-plane scratch buffer and runs the ordinary SWAR
//     segment bodies over it.
//
// Blocks are 16 segments = 8 aligned result words, so any block partition
// across workers is word-aligned and the SetWord32 stores never race.

// blockMetaBytes is the zone metadata consulted per block: the exact
// uint32 min and max.
const blockMetaBytes = 8

// prepareCompressed broadcasts a predicate's constant bytes for the
// decoded-plane scanner: prepare() without a backing ByteSlice, using the
// same padded big-endian byte split as the raw layout.
func prepareCompressed(op layout.Op, k int, c1, c2 uint32) scanner {
	nb := (k + 7) / 8
	pad := uint(8*nb - k)
	sc := scanner{op: op, nb: nb, n: compress.BlockCodes}
	pc1, pc2 := c1<<pad, c2<<pad
	for j := 0; j < nb; j++ {
		sh := uint(8 * (nb - 1 - j))
		sc.c1[j] = uint64(byte(pc1>>sh)) * lsb
		sc.c2[j] = uint64(byte(pc2>>sh)) * lsb
	}
	return sc
}

// uniformConsts translates the predicate constants into the 1-byte FOR
// domain of a uniform block and broadcasts them. Callers only invoke this
// for zone-undecided blocks, where the exact bounds pin every translated
// constant into [0, mx-ref] ⊆ [0,255] (Between additionally clamps both
// ends to the block range, which preserves membership for every code in
// it).
//
//bsvet:hotloop
func uniformConsts(op layout.Op, c1, c2, ref, mn, mx uint32) (uint64, uint64) {
	if op == layout.Between {
		lo, hi := c1, c2
		if lo < mn {
			lo = mn
		}
		if hi > mx {
			hi = mx
		}
		return uint64(byte(lo-ref)) * lsb, uint64(byte(hi-ref)) * lsb
	}
	return uint64(byte(c1-ref)) * lsb, 0
}

// decodePlanes decodes one block's values through the Stream-VByte
// control walk and scatters the padded codes into byte planes — the same
// slice-per-byte shape the SWAR segment kernels consume. The data stream's
// slack bytes make the unconditional 4-byte load safe at the block tail.
//
//bsvet:hotloop
func decodePlanes(ctl, data []byte, ref uint32, delta bool, nb int, pad uint, planes *[4][compress.BlockCodes]byte) {
	ctl = ctl[:compress.CtlBlockBytes:compress.CtlBlockBytes]
	p := 0
	running := ref
	for i := 0; i < compress.BlockCodes; i++ {
		l := int(ctl[i>>2]>>uint((i&3)*2))&3 + 1
		v := binary.LittleEndian.Uint32(data[p:]) & compress.LenMask[l]
		p += l
		code := ref + v
		if delta {
			running += v
			code = running
		}
		padded := code << pad
		switch nb {
		case 1:
			planes[0][i] = byte(padded)
		case 2:
			planes[0][i] = byte(padded >> 8)
			planes[1][i] = byte(padded)
		case 3:
			planes[0][i] = byte(padded >> 16)
			planes[1][i] = byte(padded >> 8)
			planes[2][i] = byte(padded)
		default:
			planes[0][i] = byte(padded >> 24)
			planes[1][i] = byte(padded >> 16)
			planes[2][i] = byte(padded >> 8)
			planes[3][i] = byte(padded)
		}
	}
}

// scanCompressedRange evaluates p over blocks [blo, bhi), writing segment
// result words at their global offsets. It returns the number of segments
// the exact block bounds resolved without decode, plus the bytes touched
// (metadata, control and data streams, or raw FOR bytes, per the path
// each block took). dh, when non-nil, accumulates the early-stop depth
// histogram; zone-resolved segments count as depth 0 and the no-decode
// uniform path as depth 1, mirroring the raw zoned scan's accounting.
//
// Like ScanRange, the prepare work (scanner construction, stream headers)
// happens here, outside the annotated block loop.
func scanCompressedRange(c *compress.Column, p layout.Predicate, blo, bhi int, out *bitvec.Vector, dh *obs.DepthCounts) (pruned int, bytes int64) {
	nb := c.NumSlices()
	sc := prepareCompressed(p.Op, c.Width(), p.C1, p.C2)
	var planes [4][compress.BlockCodes]byte
	for j := 0; j < nb; j++ {
		sc.slices[j] = planes[j][:]
	}
	usc := scanner{op: p.Op, nb: 1, n: compress.BlockCodes}
	return sc.scanCompressedBlocks(p, c.Ctl(), c.Data(), c.DataOffs(), c.Refs(),
		c.Mins(), c.Maxs(), c.Modes(), c.Segments(), uint(8*nb-c.Width()),
		&usc, &planes, blo, bhi, out, dh)
}

// scanCompressedBlocks is the fused decode→compare block loop; sc holds
// the prepared constants with its plane slices already pointed at the
// caller's scratch buffer.
//
//bsvet:hotloop
func (sc *scanner) scanCompressedBlocks(p layout.Predicate, ctl, data []byte, offs, refs, mins, maxs []uint32, modes []byte, nseg int, pad uint, usc *scanner, planes *[4][compress.BlockCodes]byte, blo, bhi int, out *bitvec.Vector, dh *obs.DepthCounts) (pruned int, bytes int64) {
	for b := blo; b < bhi; b++ {
		segBase := b * compress.BlockSegments
		segCount := nseg - segBase
		if segCount > compress.BlockSegments {
			segCount = compress.BlockSegments
		}
		base := segBase * core.SegmentSize
		mn, mx := mins[b], maxs[b]
		if d := compress.ZoneDecide(p.Op, mn, mx, p.C1, p.C2); d != 0 {
			w := uint32(0)
			if d > 0 {
				w = ^uint32(0)
			}
			for s := 0; s < segCount; s++ {
				out.SetWord32(base+s*core.SegmentSize, w)
			}
			pruned += segCount
			if dh != nil {
				dh[0] += int64(segCount)
			}
			bytes += blockMetaBytes
			continue
		}
		mode := modes[b]
		bdata := data[offs[b]:]
		if !compress.ModeDelta(mode) && compress.ModeUniformLen(mode) == 1 {
			usc.slices[0] = bdata[:compress.BlockCodes]
			usc.c1[0], usc.c2[0] = uniformConsts(p.Op, p.C1, p.C2, refs[b], mn, mx)
			for s := 0; s < segCount; s++ {
				r, _ := usc.segmentDepth(s)
				out.SetWord32(base+s*core.SegmentSize, r)
			}
			if dh != nil {
				dh[1] += int64(segCount)
			}
			bytes += blockMetaBytes + compress.BlockCodes
			continue
		}
		decodePlanes(ctl[b*compress.CtlBlockBytes:(b+1)*compress.CtlBlockBytes],
			bdata, refs[b], compress.ModeDelta(mode), sc.nb, pad, planes)
		for s := 0; s < segCount; s++ {
			r, d := sc.segmentDepth(s)
			out.SetWord32(base+s*core.SegmentSize, r)
			if dh != nil {
				dh[d]++
			}
		}
		bytes += blockMetaBytes + compress.CtlBlockBytes + int64(offs[b+1]-offs[b])
	}
	return pruned, bytes
}

// ParallelScanCompressed evaluates p over a compressed column with the
// given number of workers, fusing decompression into the scan: pruned and
// uniform blocks never decode, and decoded blocks live only in a worker's
// scratch buffer. It returns the number of segments resolved from block
// metadata alone. out must have length c.Len() and is overwritten.
func ParallelScanCompressed(c *compress.Column, p layout.Predicate, workers int, out *bitvec.Vector) int {
	pruned, err := ParallelScanCompressedCtx(nil, c, p, workers, out)
	mustCtx(err)
	return pruned
}

// ParallelScanCompressedCtx is ParallelScanCompressed under ctx:
// cancellation is observed at block-batch granularity and worker panics
// return as *PanicError.
func ParallelScanCompressedCtx(ctx context.Context, c *compress.Column, p layout.Predicate, workers int, out *bitvec.Vector) (int, error) {
	return ParallelScanCompressedObs(ctx, c, p, workers, out, nil)
}

// ParallelScanCompressedObs is ParallelScanCompressedCtx with per-stage
// statistics.
func ParallelScanCompressedObs(ctx context.Context, c *compress.Column, p layout.Predicate, workers int, out *bitvec.Vector, st *obs.Stage) (int, error) {
	layout.CheckPredicate(p, c.Width())
	if out.Len() != c.Len() {
		panic("kernel: result vector length mismatch")
	}
	return parallelRanges(ctx, c.Blocks(), workers, st, func(lo, hi int) int {
		if st == nil {
			pruned, _ := scanCompressedRange(c, p, lo, hi, out, nil)
			return pruned
		}
		var dh obs.DepthCounts
		pruned, bytes := scanCompressedRange(c, p, lo, hi, out, &dh)
		st.AddDepths(&dh)
		st.AddBytes(bytes)
		return pruned
	}, addInt)
}

// sumCompressedRange sums the decoded codes of blocks [blo, bhi),
// restricted to mask when non-nil. Blocks with no live mask bit skip
// decode entirely. Returns the segment count decoded and bytes touched
// for the observability layer.
func sumCompressedRange(c *compress.Column, mask *bitvec.Vector, blo, bhi int) (sum uint64, segs, bytes int64) {
	var buf [compress.BlockCodes]uint32
	offs := c.DataOffs()
	for b := blo; b < bhi; b++ {
		base := b * compress.BlockCodes
		rows := c.BlockRows(b)
		nw := (rows + core.SegmentSize - 1) / core.SegmentSize
		if mask != nil {
			bytes += int64(nw) * gateMaskBytes
			live := false
			for s := 0; s < nw; s++ {
				if mask.Word32(base+s*core.SegmentSize) != 0 {
					live = true
					break
				}
			}
			if !live {
				continue
			}
		}
		c.DecodeBlock(b, &buf)
		segs += int64(nw)
		bytes += compress.CtlBlockBytes + int64(offs[b+1]-offs[b])
		if mask == nil {
			for i := 0; i < rows; i++ {
				sum += uint64(buf[i])
			}
			continue
		}
		for s := 0; s < nw; s++ {
			w := mask.Word32(base + s*core.SegmentSize)
			for w != 0 {
				i := s*core.SegmentSize + bits.TrailingZeros32(w)
				w &= w - 1
				sum += uint64(buf[i])
			}
		}
	}
	return sum, segs, bytes
}

// ParallelSumCompressed sums a compressed column's codes (restricted to
// mask when non-nil) and returns the contributing row count, decoding
// only blocks with live rows.
func ParallelSumCompressed(c *compress.Column, mask *bitvec.Vector, workers int) (uint64, int) {
	sum, count, err := ParallelSumCompressedCtx(nil, c, mask, workers)
	mustCtx(err)
	return sum, count
}

// ParallelSumCompressedCtx is ParallelSumCompressed under ctx.
func ParallelSumCompressedCtx(ctx context.Context, c *compress.Column, mask *bitvec.Vector, workers int) (sum uint64, count int, err error) {
	return ParallelSumCompressedObs(ctx, c, mask, workers, nil)
}

// ParallelSumCompressedObs is ParallelSumCompressedCtx with per-stage
// statistics.
func ParallelSumCompressedObs(ctx context.Context, c *compress.Column, mask *bitvec.Vector, workers int, st *obs.Stage) (sum uint64, count int, err error) {
	if mask != nil && mask.Len() != c.Len() {
		panic("kernel: aggregate mask length mismatch")
	}
	count = c.Len()
	if mask != nil {
		count = mask.Count()
	}
	sum, err = parallelRanges(ctx, c.Blocks(), workers, st, func(lo, hi int) uint64 {
		s, segs, bytes := sumCompressedRange(c, mask, lo, hi)
		if st != nil {
			st.AddSegments(segs, bytes)
		}
		return s
	}, func(a, b uint64) uint64 { return a + b })
	if err != nil {
		return 0, 0, err
	}
	return sum, count, nil
}

// extremeCompressedRange finds the min/max decoded code among mask's live
// rows in blocks [blo, bhi). A block whose exact bounds cannot improve
// the running extreme is skipped without reading its mask words or
// streams.
func extremeCompressedRange(c *compress.Column, mask *bitvec.Vector, isMin bool, blo, bhi int) (best uint32, ok bool, segs, bytes int64) {
	var buf [compress.BlockCodes]uint32
	mins, maxs := c.Mins(), c.Maxs()
	offs := c.DataOffs()
	for b := blo; b < bhi; b++ {
		bytes += blockMetaBytes
		if ok && ((isMin && mins[b] >= best) || (!isMin && maxs[b] <= best)) {
			continue
		}
		base := b * compress.BlockCodes
		rows := c.BlockRows(b)
		nw := (rows + core.SegmentSize - 1) / core.SegmentSize
		bytes += int64(nw) * gateMaskBytes
		live := false
		for s := 0; s < nw; s++ {
			if mask.Word32(base+s*core.SegmentSize) != 0 {
				live = true
				break
			}
		}
		if !live {
			continue
		}
		c.DecodeBlock(b, &buf)
		segs += int64(nw)
		bytes += compress.CtlBlockBytes + int64(offs[b+1]-offs[b])
		for s := 0; s < nw; s++ {
			w := mask.Word32(base + s*core.SegmentSize)
			for w != 0 {
				i := s*core.SegmentSize + bits.TrailingZeros32(w)
				w &= w - 1
				if v := buf[i]; !ok || isMin == (v < best) {
					best, ok = v, true
				}
			}
		}
	}
	return best, ok, segs, bytes
}

// ParallelExtremeCompressed returns the min (isMin) or max code of a
// compressed column restricted to mask. A nil mask answers from the exact
// per-block bounds without decoding anything; ok is false when no row
// qualifies.
func ParallelExtremeCompressed(c *compress.Column, mask *bitvec.Vector, isMin bool, workers int) (uint32, bool) {
	v, ok, err := ParallelExtremeCompressedCtx(nil, c, mask, isMin, workers)
	mustCtx(err)
	return v, ok
}

// ParallelExtremeCompressedCtx is ParallelExtremeCompressed under ctx.
func ParallelExtremeCompressedCtx(ctx context.Context, c *compress.Column, mask *bitvec.Vector, isMin bool, workers int) (uint32, bool, error) {
	return ParallelExtremeCompressedObs(ctx, c, mask, isMin, workers, nil)
}

// ParallelExtremeCompressedObs is ParallelExtremeCompressedCtx with
// per-stage statistics.
func ParallelExtremeCompressedObs(ctx context.Context, c *compress.Column, mask *bitvec.Vector, isMin bool, workers int, st *obs.Stage) (uint32, bool, error) {
	if mask != nil && mask.Len() != c.Len() {
		panic("kernel: aggregate mask length mismatch")
	}
	if mask == nil {
		if st != nil {
			st.SetWorkers(1)
			st.AddBytes(int64(c.Blocks()) * blockMetaBytes)
		}
		bounds := c.Maxs()
		if isMin {
			bounds = c.Mins()
		}
		best, ok := uint32(0), false
		for _, v := range bounds {
			if !ok || isMin == (v < best) {
				best, ok = v, true
			}
		}
		return best, ok, nil
	}
	best, err := parallelRanges(ctx, c.Blocks(), workers, st, func(lo, hi int) extPartial {
		v, ok, segs, bytes := extremeCompressedRange(c, mask, isMin, lo, hi)
		if st != nil {
			st.AddSegments(segs, bytes)
		}
		return extPartial{v, ok}
	}, mergeExtreme(isMin))
	if err != nil {
		return 0, false, err
	}
	return best.v, best.ok, nil
}

// LookupManyCompressed stitches the codes of the given rows out of a
// compressed column, decoding each 512-code block at most once per visit
// into a stack buffer (rows in ascending order decode every block exactly
// once). It returns the number of compressed bytes touched — the facade
// feeds this to the projection stage's byte counter.
func LookupManyCompressed(c *compress.Column, rows []int32, out []uint32) int64 {
	if len(rows) != len(out) {
		panic("kernel: LookupManyCompressed rows/out length mismatch")
	}
	var buf [compress.BlockCodes]uint32
	offs := c.DataOffs()
	last := -1
	var bytes int64
	for i, r := range rows {
		b := int(r) / compress.BlockCodes
		if b != last {
			c.DecodeBlock(b, &buf)
			last = b
			bytes += int64(compress.CtlBlockBytes) + int64(offs[b+1]-offs[b])
		}
		out[i] = buf[int(r)%compress.BlockCodes]
	}
	return bytes
}
