package kernel

import (
	"context"
	"testing"

	"byteslice/internal/bitvec"
	"byteslice/internal/compress"
	"byteslice/internal/core"
	"byteslice/internal/datagen"
	"byteslice/internal/layout"
	"byteslice/internal/obs"
)

// compressedShapes covers every per-block path: uniform random (mixed
// lengths, nothing prunes), sorted (delta blocks, nearly everything
// prunes), clustered (FOR, partial pruning), low-entropy (every block on
// the uniform 1-byte no-decode path), and tail sizes around the block
// boundary.
func compressedShapes(k int) map[string][]uint32 {
	rng := datagen.NewRand(0xBEEF)
	shapes := map[string][]uint32{
		"uniform":   datagen.Uniform(rng, 3000, k),
		"sorted":    datagen.Sorted(rng, 2500, k),
		"clustered": datagen.Clustered(rng, 4096, k, 256),
		"block":     datagen.Uniform(rng, compress.BlockCodes, k),
		"block+1":   datagen.Uniform(rng, compress.BlockCodes+1, k),
		"block-1":   datagen.Uniform(rng, compress.BlockCodes-1, k),
	}
	// Narrow-span values around a fixed base: frame-of-reference offsets
	// all fit one byte, so every block takes the direct-compare path.
	base := uint32(1)<<uint(k-1) - 100
	if k == 1 {
		base = 0
	}
	low := make([]uint32, 2000)
	span := uint32(200)
	if uint64(span) >= 1<<uint(k) {
		span = 1<<uint(k) - 1
	}
	for i := range low {
		low[i] = base + rng.Uint32N(span+1)
	}
	shapes["lowent"] = low
	return shapes
}

// predConstants picks constants that exercise pruned-all, pruned-none and
// straddling blocks for each shape.
func predConstants(codes []uint32, k int) [][2]uint32 {
	dom := uint64(1) << uint(k)
	mn, mx := codes[0], codes[0]
	for _, v := range codes {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	mid := mn + (mx-mn)/2
	return [][2]uint32{
		{mid, mid + (mx-mid)/2},
		{mn, mid},
		{mx, uint32(dom - 1)},
		{0, 0},
		{uint32(dom - 1), uint32(dom - 1)},
	}
}

func TestScanCompressedMatchesRaw(t *testing.T) {
	for _, k := range []int{1, 8, 13, 16, 21, 32} {
		for name, codes := range compressedShapes(k) {
			cc := compress.New(codes, k, nil)
			raw := core.New(codes, k, nil)
			want := bitvec.New(len(codes))
			got := bitvec.New(len(codes))
			for _, op := range layout.Ops {
				for _, cs := range predConstants(codes, k) {
					c1, c2 := cs[0], cs[1]
					if op != layout.Between {
						c2 = c1
					}
					p := layout.Predicate{Op: op, C1: c1, C2: c2}
					ParallelScan(raw, p, 1, want)
					for _, workers := range []int{1, 3} {
						got.Fill()
						ParallelScanCompressed(cc, p, workers, got)
						if !got.Equal(want) {
							t.Fatalf("k=%d %s %v workers=%d: compressed scan diverged", k, name, p, workers)
						}
					}
				}
			}
		}
	}
}

func TestScanCompressedObsAccounting(t *testing.T) {
	rng := datagen.NewRand(11)
	codes := datagen.Clustered(rng, 1<<14, 16, 512)
	cc := compress.New(codes, 16, nil)
	raw := core.New(codes, 16, nil)
	p := layout.Predicate{Op: layout.Le, C1: datagen.SelectivityConstant(codes, 0.1)}
	want := bitvec.New(len(codes))
	ParallelScan(raw, p, 1, want)

	got := bitvec.New(len(codes))
	st := &obs.Stage{}
	pruned, err := ParallelScanCompressedObs(context.Background(), cc, p, 2, got, st)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("instrumented compressed scan diverged from raw")
	}
	plain := bitvec.New(len(codes))
	prunedPlain := ParallelScanCompressed(cc, p, 2, plain)
	if !plain.Equal(want) {
		t.Fatal("plain compressed scan diverged from raw")
	}
	if pruned != prunedPlain {
		t.Fatalf("pruned counts diverge: obs=%d plain=%d", pruned, prunedPlain)
	}
	s := st.Snapshot()
	if s.BytesTouched == 0 {
		t.Fatal("instrumented compressed scan recorded no bytes")
	}
	if s.BytesTouched >= int64(cc.RawBytes()) {
		t.Fatalf("compressed scan touched %d bytes, raw column is %d", s.BytesTouched, cc.RawBytes())
	}
	var depths int64
	for _, d := range s.EarlyStop {
		depths += d
	}
	if want := int64(cc.Segments()); depths != want {
		t.Fatalf("depth histogram covers %d segments, want %d", depths, want)
	}
}

func TestSumCompressed(t *testing.T) {
	for _, k := range []int{8, 16, 24, 32} {
		for name, codes := range compressedShapes(k) {
			cc := compress.New(codes, k, nil)
			var wantAll uint64
			for _, v := range codes {
				wantAll += uint64(v)
			}
			for _, workers := range []int{1, 3} {
				sum, count := ParallelSumCompressed(cc, nil, workers)
				if sum != wantAll || count != len(codes) {
					t.Fatalf("k=%d %s workers=%d: sum=%d count=%d, want %d/%d",
						k, name, workers, sum, count, wantAll, len(codes))
				}
			}
			mask := bitvec.New(len(codes))
			var wantMasked uint64
			wantCount := 0
			for i, v := range codes {
				if i%3 == 0 {
					mask.Set(i, true)
					wantMasked += uint64(v)
					wantCount++
				}
			}
			sum, count := ParallelSumCompressed(cc, mask, 2)
			if sum != wantMasked || count != wantCount {
				t.Fatalf("k=%d %s masked: sum=%d count=%d, want %d/%d",
					k, name, sum, count, wantMasked, wantCount)
			}
			empty := bitvec.New(len(codes))
			if sum, count := ParallelSumCompressed(cc, empty, 2); sum != 0 || count != 0 {
				t.Fatalf("k=%d %s empty mask: sum=%d count=%d", k, name, sum, count)
			}
		}
	}
}

func TestExtremeCompressed(t *testing.T) {
	for _, k := range []int{8, 16, 32} {
		for name, codes := range compressedShapes(k) {
			cc := compress.New(codes, k, nil)
			mn, mx := codes[0], codes[0]
			for _, v := range codes {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			if v, ok := ParallelExtremeCompressed(cc, nil, true, 2); !ok || v != mn {
				t.Fatalf("k=%d %s: min=%d ok=%v, want %d", k, name, v, ok, mn)
			}
			if v, ok := ParallelExtremeCompressed(cc, nil, false, 2); !ok || v != mx {
				t.Fatalf("k=%d %s: max=%d ok=%v, want %d", k, name, v, ok, mx)
			}
			mask := bitvec.New(len(codes))
			mmn, mmx := uint32(0), uint32(0)
			seen := false
			for i, v := range codes {
				if i%7 == 2 {
					mask.Set(i, true)
					if !seen || v < mmn {
						mmn = v
					}
					if !seen || v > mmx {
						mmx = v
					}
					seen = true
				}
			}
			if !seen {
				continue
			}
			for _, workers := range []int{1, 3} {
				if v, ok := ParallelExtremeCompressed(cc, mask, true, workers); !ok || v != mmn {
					t.Fatalf("k=%d %s masked min=%d ok=%v, want %d", k, name, v, ok, mmn)
				}
				if v, ok := ParallelExtremeCompressed(cc, mask, false, workers); !ok || v != mmx {
					t.Fatalf("k=%d %s masked max=%d ok=%v, want %d", k, name, v, ok, mmx)
				}
			}
			empty := bitvec.New(len(codes))
			if _, ok := ParallelExtremeCompressed(cc, empty, true, 2); ok {
				t.Fatalf("k=%d %s: empty mask reported an extreme", k, name)
			}
		}
	}
}

func TestCompressedKernelsCancelAndIsolate(t *testing.T) {
	rng := datagen.NewRand(5)
	codes := datagen.Uniform(rng, 1<<15, 16)
	cc := compress.New(codes, 16, nil)
	out := bitvec.New(len(codes))
	p := layout.Predicate{Op: layout.Ge, C1: 1 << 12}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ParallelScanCompressedCtx(ctx, cc, p, 2, out); err == nil {
		t.Fatal("cancelled compressed scan returned nil error")
	}
	if _, _, err := ParallelSumCompressedCtx(ctx, cc, nil, 2); err == nil {
		t.Fatal("cancelled compressed sum returned nil error")
	}
	mask := bitvec.New(len(codes))
	mask.Fill()
	if _, _, err := ParallelExtremeCompressedCtx(ctx, cc, mask, true, 2); err == nil {
		t.Fatal("cancelled compressed extreme returned nil error")
	}

	BatchHook = func(segLo, segHi int) { panic("injected kernel fault") }
	defer func() { BatchHook = nil }()
	if _, err := ParallelScanCompressedCtx(context.Background(), cc, p, 2, out); err == nil {
		t.Fatal("worker panic did not surface as an error")
	} else if _, isPanic := err.(*PanicError); !isPanic {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
}
