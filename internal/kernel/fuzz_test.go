package kernel

import (
	"encoding/binary"
	"testing"

	"byteslice/internal/bitvec"
	"byteslice/internal/compress"
	"byteslice/internal/core"
	"byteslice/internal/layout"
	"byteslice/internal/layout/hbp"
	"byteslice/internal/layout/layouttest"
)

// FuzzNativeVsEngine decodes arbitrary bytes into (width, operator,
// constants, worker count, previous-result mask, codes) and asserts that
// every native kernel produces results bit-identical to its modelled
// engine counterpart in internal/core: Scan vs Scan, the pipelined scans
// for both polarities, worker-pool scans vs serial, and the aggregates.
// Run with `go test -fuzz FuzzNativeVsEngine ./internal/kernel` for
// continuous fuzzing; the seed corpus runs in ordinary `go test`.
func FuzzNativeVsEngine(f *testing.F) {
	f.Add([]byte{11, 0, 0x80, 0x02, 0x00, 0x04, 3, 0xAA, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{32, 4, 0xFF, 0xFF, 0xFF, 0xFF, 1, 0x00, 0xAA, 0xBB, 0xCC, 0xDD})
	f.Add([]byte{1, 6, 0, 0, 0, 1, 9, 0xFF, 0xF0})
	f.Add([]byte{8, 2, 42, 0, 99, 0, 2, 0x55, 42, 41, 43, 42})
	f.Add([]byte{16, 5, 7, 1, 9, 2, 0, 0x0F, 8, 7, 6, 5, 4, 3, 2, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 9 {
			return
		}
		k := int(data[0])%32 + 1
		op := layout.Ops[int(data[1])%len(layout.Ops)]
		max := uint32(uint64(1)<<uint(k) - 1)
		dom := uint64(max) + 1
		p := layout.Predicate{
			Op: op,
			C1: uint32(uint64(binary.LittleEndian.Uint16(data[2:])) % dom),
			C2: uint32(uint64(binary.LittleEndian.Uint16(data[4:])) % dom),
		}
		if p.Op == layout.Between && p.C1 > p.C2 {
			p.C1, p.C2 = p.C2, p.C1
		}
		workers := int(data[6]) % 9
		// prevSeed patterns the pipelined scan's previous result (and the
		// aggregate mask): each row's bit comes from a rotating byte.
		prevSeed := data[7]

		body := data[8:]
		codes := make([]uint32, 0, len(body))
		for i := range body {
			var w [4]byte
			copy(w[:], body[i:])
			codes = append(codes, uint32(uint64(binary.LittleEndian.Uint32(w[:]))%dom))
		}
		if len(codes) == 0 {
			return
		}
		n := len(codes)
		b := core.New(codes, k, nil)

		prev := bitvec.New(n)
		for i := 0; i < n; i++ {
			if prevSeed>>(uint(i)%8)&1 == 1 || (prevSeed == 0xAA && i%3 == 0) {
				prev.Set(i, true)
			}
		}

		// Plain scan: native (serial and worker-pool) vs engine.
		want := bitvec.New(n)
		b.Scan(layouttest.Engine(), p, want)
		got := bitvec.New(n)
		got.Fill()
		Scan(b, p, got)
		if !got.Equal(want) {
			t.Fatalf("k=%d %v n=%d: native Scan differs from engine", k, p, n)
		}
		got.Fill()
		ParallelScan(b, p, workers, got)
		if !got.Equal(want) {
			t.Fatalf("k=%d %v n=%d workers=%d: native ParallelScan differs", k, p, n, workers)
		}

		// Pipelined scans, both polarities.
		for _, negate := range []bool{false, true} {
			wantP := bitvec.New(n)
			b.ScanPipelined(layouttest.Engine(), p, prev, negate, wantP)
			gotP := bitvec.New(n)
			gotP.Fill()
			ParallelScanPipelined(b, p, prev, negate, workers, gotP)
			if !gotP.Equal(wantP) {
				t.Fatalf("k=%d %v n=%d negate=%v workers=%d: native pipelined scan differs", k, p, n, negate, workers)
			}
		}

		// Aggregates under a NULL-style mask (and unmasked) vs the engine.
		for _, mask := range []*bitvec.Vector{nil, prev} {
			wantSum, wantN := b.Sum(layouttest.Engine(), mask)
			gotSum, gotN := ParallelSum(b, mask, workers)
			if gotSum != wantSum || gotN != wantN {
				t.Fatalf("k=%d n=%d: native Sum = %d/%d, engine %d/%d", k, n, gotSum, gotN, wantSum, wantN)
			}
			wantMin, wantOK := b.Min(layouttest.Engine(), mask)
			gotMin, gotOK := ParallelExtreme(b, mask, true, workers)
			if gotOK != wantOK || (wantOK && gotMin != wantMin) {
				t.Fatalf("k=%d n=%d: native Min = %d/%v, engine %d/%v", k, n, gotMin, gotOK, wantMin, wantOK)
			}
			wantMax, wantOK2 := b.Max(layouttest.Engine(), mask)
			gotMax, gotOK2 := ParallelExtreme(b, mask, false, workers)
			if gotOK2 != wantOK2 || (wantOK2 && gotMax != wantMax) {
				t.Fatalf("k=%d n=%d: native Max = %d/%v, engine %d/%v", k, n, gotMax, gotOK2, wantMax, wantOK2)
			}
		}

		// Zoned kernels: bit-identical results with zone maps built. The
		// zone map lives on a copy so the kernels above stay unzoned.
		bz := core.New(codes, k, nil)
		bz.BuildZoneMaps()
		got.Fill()
		ParallelScanZoned(bz, p, workers, got)
		if !got.Equal(want) {
			t.Fatalf("k=%d %v n=%d workers=%d: zoned scan differs from engine", k, p, n, workers)
		}
		for _, negate := range []bool{false, true} {
			wantP := bitvec.New(n)
			b.ScanPipelined(layouttest.Engine(), p, prev, negate, wantP)
			gotP := bitvec.New(n)
			gotP.Fill()
			ParallelScanPipelinedZoned(bz, p, prev, negate, workers, gotP)
			if !gotP.Equal(wantP) {
				t.Fatalf("k=%d %v n=%d negate=%v workers=%d: zoned pipelined scan differs", k, p, n, negate, workers)
			}
		}

		// Multi-predicate kernel (the planner's predicate-first shape) vs
		// independent engine scans, mixing a zoned and an unzoned column.
		p2 := layout.Predicate{
			Op: layout.Ops[(int(data[1])+3)%len(layout.Ops)],
			C1: p.C2, C2: p.C1,
		}
		if p2.Op == layout.Between && p2.C1 > p2.C2 {
			p2.C1, p2.C2 = p2.C2, p2.C1
		}
		cols := []*core.ByteSlice{b, bz}
		preds := []layout.Predicate{p, p2}
		for _, disjunct := range []bool{false, true} {
			wantM := bitvec.New(n)
			b.Scan(layouttest.Engine(), p, wantM)
			other := bitvec.New(n)
			b.Scan(layouttest.Engine(), p2, other)
			if disjunct {
				wantM.Or(other)
			} else {
				wantM.And(other)
			}
			gotM := bitvec.New(n)
			gotM.Fill()
			ParallelScanMulti(cols, preds, disjunct, workers, gotM)
			if !gotM.Equal(wantM) {
				t.Fatalf("k=%d %v/%v n=%d disjunct=%v workers=%d: multi scan differs", k, p, p2, n, disjunct, workers)
			}
		}

		// Fused filter→aggregate vs the two-pass engine path (scan to a
		// mask, then masked aggregates), with the zone-mapped filter column.
		wantSumF, wantNF := b.Sum(layouttest.Engine(), want)
		gotSumF, gotNF := ScanSum(bz, p, b, workers)
		if gotSumF != wantSumF || gotNF != wantNF {
			t.Fatalf("k=%d %v n=%d: fused ScanSum = %d/%d, two-pass %d/%d", k, p, n, gotSumF, gotNF, wantSumF, wantNF)
		}
		for _, isMin := range []bool{true, false} {
			var wantX uint32
			var wantOK bool
			if isMin {
				wantX, wantOK = b.Min(layouttest.Engine(), want)
			} else {
				wantX, wantOK = b.Max(layouttest.Engine(), want)
			}
			gotX, gotOK := ScanExtreme(bz, p, b, isMin, workers)
			if gotOK != wantOK || (wantOK && gotX != wantX) {
				t.Fatalf("k=%d %v n=%d isMin=%v: fused extreme = %d/%v, two-pass %d/%v", k, p, n, isMin, gotX, gotOK, wantX, wantOK)
			}
		}

		// Compressed column: the fused decode→compare scan and aggregates
		// must be bit-identical to the engine on the raw layout, whatever
		// mix of FOR, delta and uniform-1 blocks the codes produce.
		cc := compress.New(codes, k, nil)
		got.Fill()
		ParallelScanCompressed(cc, p, workers, got)
		if !got.Equal(want) {
			t.Fatalf("k=%d %v n=%d workers=%d: compressed scan differs from engine", k, p, n, workers)
		}
		for _, mask := range []*bitvec.Vector{nil, prev} {
			wantSum, wantN := b.Sum(layouttest.Engine(), mask)
			gotSum, gotN := ParallelSumCompressed(cc, mask, workers)
			if gotSum != wantSum || gotN != wantN {
				t.Fatalf("k=%d n=%d: compressed Sum = %d/%d, engine %d/%d", k, n, gotSum, gotN, wantSum, wantN)
			}
			for _, isMin := range []bool{true, false} {
				var wantX uint32
				var wantOK bool
				if isMin {
					wantX, wantOK = b.Min(layouttest.Engine(), mask)
				} else {
					wantX, wantOK = b.Max(layouttest.Engine(), mask)
				}
				gotX, gotOK := ParallelExtremeCompressed(cc, mask, isMin, workers)
				if gotOK != wantOK || (wantOK && gotX != wantX) {
					t.Fatalf("k=%d n=%d isMin=%v: compressed extreme = %d/%v, engine %d/%v", k, n, isMin, gotX, gotOK, wantX, wantOK)
				}
			}
		}

		// HBP column: the native bank scan and bank-extract lookups must be
		// bit-identical to the engine results on the same codes.
		hb := hbp.New(codes, k, nil)
		got.Fill()
		ParallelScanHBP(hb, p, workers, got)
		if !got.Equal(want) {
			t.Fatalf("k=%d %v n=%d workers=%d: HBP scan differs from engine", k, p, n, workers)
		}
		hbRows := make([]int32, n)
		for i := range hbRows {
			hbRows[i] = int32(n - 1 - i)
		}
		hbOut := make([]uint32, n)
		LookupManyHBP(hb, hbRows, hbOut)
		for x, r := range hbRows {
			if hbOut[x] != codes[r] {
				t.Fatalf("k=%d: LookupManyHBP row %d = %d, want %d", k, r, hbOut[x], codes[r])
			}
		}

		// Lookups stitch the original codes back, on all layouts.
		for i, v := range codes {
			if got := Lookup(b, i); got != v {
				t.Fatalf("k=%d: Lookup(%d) = %d, want %d", k, i, got, v)
			}
			if got := cc.Lookup(nil, i); got != v {
				t.Fatalf("k=%d: compressed Lookup(%d) = %d, want %d", k, i, got, v)
			}
			if got := LookupHBP(hb, i); got != v {
				t.Fatalf("k=%d: LookupHBP(%d) = %d, want %d", k, i, got, v)
			}
		}
	})
}
