package analysis

import (
	"go/ast"
	"go/types"
)

// EpochSafeAnalyzer enforces the RCU-style publication invariant the
// scan path's wait-freedom rests on: once a value is published through
// an atomic.Pointer epoch swap, readers traverse it without locks, so
// it must never be written again.
//
// A type is sealed when its declaration carries //bsvet:sealed or when
// it appears as the element of an atomic.Pointer[T] anywhere in the
// loaded packages (the implicit case — those are exactly the values a
// Store publishes). Outside functions annotated //bsvet:builder, any
// store whose destination is reached through a sealed type's field —
// plain assignment, compound assignment, ++/--, an element store
// through a field slice or map, or the destination of builtin copy — is
// a diagnostic. Construction by composite literal is fine: a fresh
// value is unpublished until the Store. Sealed and builder facts cross
// packages, so internal/serve cannot mutate a view it pinned from the
// facade.
//
// Test files are exempt: tests build and tear down sealed values
// directly.
var EpochSafeAnalyzer = &Analyzer{
	Name: "epochsafe",
	Doc: "check that sealed (epoch-published) types are only written inside " +
		"//bsvet:builder functions",
	Run: runEpochSafe,
}

func runEpochSafe(p *Pass) {
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if p.Facts.Builder[astFuncKey(p.Pkg.Path(), fd)] {
				continue // builders construct not-yet-published values
			}
			checkSealedStores(p, fd)
		}
	}
}

// checkSealedStores walks one non-builder body. Closures inherit the
// enclosing function's non-builder status: a goroutine or callback
// defined inside ordinary code is still post-publication code.
func checkSealedStores(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportSealedStore(p, lhs)
			}
		case *ast.IncDecStmt:
			reportSealedStore(p, n.X)
		case *ast.CallExpr:
			// copy(dst, ...) and delete(m, k) mutate their first argument.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) > 0 {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && (b.Name() == "copy" || b.Name() == "delete") {
					reportSealedStore(p, n.Args[0])
				}
			}
		}
		return true
	})
}

// reportSealedStore reports when the store destination is reached
// through a field of a sealed type. The chain unwraps indexing,
// dereference and parens, and checks every field selection on the way:
// `v.tailCodes[i][r] = x` and `resp.Data[name] = d` both resolve to a
// field owned by the sealed value.
func reportSealedStore(p *Pass, e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if key, field := sealedField(p.Info, x); key != "" && p.Facts.Sealed[key] {
				p.Reportf(x.Pos(), "store to field %s of sealed type %s outside a //bsvet:builder function (published epochs are read-only)", field, key)
				return
			}
			e = x.X
		default:
			return
		}
	}
}

// sealedField resolves a selector to (owner type key, field name) when
// it selects a struct field whose owner type is sealed.
func sealedField(info *types.Info, sel *ast.SelectorExpr) (key, field string) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", ""
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name(), sel.Sel.Name
}
