package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrSentinelAnalyzer enforces typed-error hygiene in packages that
// declare error sentinels (package-level Err* variables of type error).
// Sentinels exist so callers classify failures with errors.Is; both
// rules below catch the ways a formatting call silently severs that
// chain. Packages without sentinels — internal tooling, the analyzers
// themselves — are out of scope, and test files are exempt.
//
//   - Identity loss: an error-typed argument formatted by fmt.Errorf
//     through any verb but %w, by fmt.Sprintf at all, or through a
//     package-local printf-style wrapper (format string, args ...any)
//     flattens the cause to text; errors.Is on the result finds
//     nothing.
//   - Mixed exported path: an exported function that wraps with %w (or
//     returns a sentinel) on some returns must not return a raw
//     fmt.Errorf on others — callers that can classify the first
//     failure mode deserve to classify them all.
var ErrSentinelAnalyzer = &Analyzer{
	Name: "errsentinel",
	Doc: "check that errors crossing package boundaries wrap declared sentinels " +
		"with %w instead of flattening them to text",
	Run: runErrSentinel,
}

func runErrSentinel(p *Pass) {
	if p.Pkg.Name() == "main" || !declaresSentinels(p.Pkg) {
		return
	}
	wrappers := printfWrappers(p)
	reported := map[ast.Node]bool{}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkIdentityLoss(p, fd, wrappers, reported)
			checkMixedPath(p, fd, reported)
		}
	}
}

// declaresSentinels reports whether the package declares at least one
// package-level Err* variable of an error type (including aliases of
// another package's sentinels).
func declaresSentinels(pkg *types.Package) bool {
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Err") {
			continue
		}
		if v, ok := scope.Lookup(name).(*types.Var); ok && implementsError(v.Type()) {
			return true
		}
	}
	return false
}

func implementsError(t types.Type) bool {
	iface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return iface != nil && types.Implements(t, iface)
}

// printfWrappers collects this package's printf-style helpers: funcs
// whose signature is exactly (format string, args ...any). Passing an
// error through one flattens it with %s/%v no matter the verb.
func printfWrappers(p *Pass) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || !sig.Variadic() || sig.Params().Len() != 2 {
				continue
			}
			first, _ := sig.Params().At(0).Type().Underlying().(*types.Basic)
			if first == nil || first.Info()&types.IsString == 0 {
				continue
			}
			variadic, _ := sig.Params().At(1).Type().(*types.Slice)
			if variadic == nil {
				continue
			}
			if iface, ok := variadic.Elem().Underlying().(*types.Interface); !ok || !iface.Empty() {
				continue
			}
			out[fn] = true
		}
	}
	return out
}

// checkIdentityLoss flags formatting calls that flatten an error-typed
// argument: fmt.Errorf with a non-%w verb, fmt.Sprintf, and the
// package's own printf wrappers.
func checkIdentityLoss(p *Pass, fd *ast.FuncDecl, wrappers map[*types.Func]bool, reported map[ast.Node]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, _ := typeutilCallee(p.Info, call).(*types.Func)
		if fn == nil {
			return true
		}
		switch {
		case isFmtCall(fn, "Errorf"):
			verbs, ok := formatVerbs(p, call, 0)
			if !ok {
				return true
			}
			for i, verb := range verbs {
				argIdx := i + 1
				if argIdx >= len(call.Args) || verb == 'w' {
					continue
				}
				if implementsError(p.Info.TypeOf(call.Args[argIdx])) {
					reported[call] = true
					p.Reportf(call.Args[argIdx].Pos(), "error formatted with %%%c loses its identity; wrap it with %%w so errors.Is still matches", verb)
				}
			}
		case isFmtCall(fn, "Sprintf"):
			for _, arg := range call.Args[1:] {
				if implementsError(p.Info.TypeOf(arg)) {
					p.Reportf(arg.Pos(), "error flattened through fmt.Sprintf loses its identity; wrap it with %%w in an Errorf instead")
				}
			}
		case wrappers[fn]:
			for _, arg := range call.Args[1:] {
				if implementsError(p.Info.TypeOf(arg)) {
					p.Reportf(arg.Pos(), "error passed through printf-style %s loses its identity; use a %%w-wrapping helper so errors.Is still matches", fn.Name())
				}
			}
		}
		return true
	})
}

func isFmtCall(fn *types.Func, name string) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() == name
}

// checkMixedPath flags raw fmt.Errorf returns inside exported functions
// that wrap elsewhere. The per-function scope keeps the rule
// principled: a consistently raw helper is untouched, but a path whose
// callers already classify one failure mode must let them classify all.
func checkMixedPath(p *Pass, fd *ast.FuncDecl, reported map[ast.Node]bool) {
	if !exportedEntry(fd) {
		return
	}
	wraps := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn, _ := typeutilCallee(p.Info, n).(*types.Func); fn != nil && isFmtCall(fn, "Errorf") {
				if format, ok := formatLiteral(p, n, 0); ok && strings.Contains(format, "%w") {
					wraps = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isSentinelRef(p, res) {
					wraps = true
				}
			}
		}
		return !wraps
	})
	if !wraps {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok || reported[call] {
				continue
			}
			fn, _ := typeutilCallee(p.Info, call).(*types.Func)
			if fn == nil || !isFmtCall(fn, "Errorf") {
				continue
			}
			format, ok := formatLiteral(p, call, 0)
			if !ok || strings.Contains(format, "%w") {
				continue
			}
			p.Reportf(call.Pos(), "exported %s mixes wrapped and raw errors: this return has no %%w; wrap a sentinel so callers can classify it", fd.Name.Name)
		}
		return true
	})
}

// isSentinelRef reports whether the expression is a bare reference to a
// package-level Err* variable.
func isSentinelRef(p *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := p.Info.Uses[id].(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() && strings.HasPrefix(v.Name(), "Err")
}

// formatLiteral extracts the call's format string when it is a constant
// string literal at argIdx (concatenations and variables are skipped —
// the analyzer refuses to guess).
func formatLiteral(p *Pass, call *ast.CallExpr, argIdx int) (string, bool) {
	if argIdx >= len(call.Args) {
		return "", false
	}
	tv, ok := p.Info.Types[call.Args[argIdx]]
	if !ok || tv.Value == nil {
		return "", false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return "", false
	}
	return s, true
}

// formatVerbs parses the format string into the verb consuming each
// subsequent argument. Width/precision stars consume an argument slot
// (recorded as '*'); explicit argument indexes (%[n]d) abort the parse.
func formatVerbs(p *Pass, call *ast.CallExpr, argIdx int) ([]rune, bool) {
	format, ok := formatLiteral(p, call, argIdx)
	if !ok {
		return nil, false
	}
	var verbs []rune
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i < len(runes) && runes[i] == '%' {
			continue
		}
		// Flags, width, precision; a star consumes an argument.
		for i < len(runes) {
			r := runes[i]
			if r == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if r == '[' {
				return nil, false // explicit index: don't guess
			}
			if strings.ContainsRune("+-# 0.", r) || (r >= '0' && r <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(runes) {
			verbs = append(verbs, runes[i])
		}
	}
	return verbs, true
}
