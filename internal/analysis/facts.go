package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Facts is the cross-package annotation table the analyzers share. All
// four maps key objects the ObjKey way: "pkgpath.Func" or
// "pkgpath.Recv.Method" for functions, "pkgpath.TypeName" for types.
// Every map is scanned syntactically (no type information needed), so
// fact-only dependency units in vettool mode can produce the full table
// from a bare parse.
type Facts struct {
	// Hotloop: functions annotated //bsvet:hotloop.
	Hotloop map[string]bool
	// Sealed: types annotated //bsvet:sealed, plus every element type of
	// an atomic.Pointer[T] — the values an epoch swap publishes.
	Sealed map[string]bool
	// Builder: functions annotated //bsvet:builder, allowed to store
	// through sealed types (they construct not-yet-published values).
	Builder map[string]bool
	// Stopper: functions whose bodies carry a syntactic termination
	// signal (select, channel receive/send/close, a Done() call, or a
	// context.Context parameter); `go pkg.F()` is accepted when F is one.
	Stopper map[string]bool
}

// NewFacts returns an empty fact table.
func NewFacts() *Facts {
	return &Facts{
		Hotloop: map[string]bool{},
		Sealed:  map[string]bool{},
		Builder: map[string]bool{},
		Stopper: map[string]bool{},
	}
}

// Merge folds g's facts into f. A nil g is a no-op.
func (f *Facts) Merge(g *Facts) {
	if g == nil {
		return
	}
	for k := range g.Hotloop {
		f.Hotloop[k] = true
	}
	for k := range g.Sealed {
		f.Sealed[k] = true
	}
	for k := range g.Builder {
		f.Builder[k] = true
	}
	for k := range g.Stopper {
		f.Stopper[k] = true
	}
}

// ScanAnnotations collects the fact table of one parsed package: pragma
// annotations on functions and types, implicit sealing of atomic.Pointer
// element types, and the stop-signal scan behind goroutinelife.
func ScanAnnotations(pkgPath string, files []*ast.File) *Facts {
	facts := NewFacts()
	for _, f := range files {
		scanAtomicElems(pkgPath, f, facts.Sealed)
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				key := astFuncKey(pkgPath, d)
				if hasPragma(d.Doc, pragmaHotloop) {
					facts.Hotloop[key] = true
				}
				if hasPragma(d.Doc, pragmaBuilder) {
					facts.Builder[key] = true
				}
				if funcHasStopSignal(d) {
					facts.Stopper[key] = true
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					// The pragma sits on the grouped decl's doc for a single
					// `type X ...` and on the spec's own doc inside a block.
					if hasPragma(d.Doc, pragmaSealed) || hasPragma(ts.Doc, pragmaSealed) {
						facts.Sealed[pkgPath+"."+ts.Name.Name] = true
					}
				}
			}
		}
	}
	return facts
}

// scanAtomicElems records T as sealed for every atomic.Pointer[T] type
// expression in the file: Store on such a pointer is the epoch-swap
// publication site, so the element type must never be mutated after
// construction. Both local (atomic.Pointer[view]) and imported
// (atomic.Pointer[pkg.View]) element types resolve syntactically through
// the file's import table.
func scanAtomicElems(pkgPath string, f *ast.File, sealed map[string]bool) {
	atomicName := ""               // file-local name of sync/atomic
	imports := map[string]string{} // local name -> import path
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndexByte(path, '/')+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		imports[name] = path
		if path == "sync/atomic" {
			atomicName = name
		}
	}
	if atomicName == "" || atomicName == "_" || atomicName == "." {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		idx, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		sel, ok := idx.X.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Pointer" {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || base.Name != atomicName {
			return true
		}
		switch e := idx.Index.(type) {
		case *ast.Ident:
			sealed[pkgPath+"."+e.Name] = true
		case *ast.SelectorExpr:
			if p, ok := e.X.(*ast.Ident); ok {
				if ipath, ok := imports[p.Name]; ok {
					sealed[ipath+"."+e.Sel.Name] = true
				}
			}
		}
		return true
	})
}

// funcHasStopSignal reports whether fd's body (or parameter list) shows
// a way for the function to observe shutdown when run as a goroutine.
func funcHasStopSignal(fd *ast.FuncDecl) bool {
	if fd.Body == nil {
		return false
	}
	if fd.Type.Params != nil {
		for _, p := range fd.Type.Params.List {
			if isContextTypeExpr(p.Type) {
				return true
			}
		}
	}
	return bodyHasStopSignal(fd.Body)
}

// bodyHasStopSignal is the syntactic termination-evidence scan shared by
// the stopper fact producer and goroutinelife's closure check: a select
// statement, a channel receive or send, a close call, or a Done() call
// (sync.WaitGroup registration or a ctx.Done probe).
func bodyHasStopSignal(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isContextTypeExpr matches the syntactic spelling context.Context.
func isContextTypeExpr(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context"
}

// isTestFile reports whether the file is a _test.go file; the lifecycle
// analyzers (epochsafe, goroutinelife, ctxflow, errsentinel) skip them —
// tests legitimately build sealed values, leak short-lived goroutines
// into t.Cleanup, and return ad-hoc errors.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
