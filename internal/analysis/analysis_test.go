package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// runFixture loads one testdata package and checks the analyzer's
// diagnostics against its // want comments.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	pkgs, err := Load(LoadConfig{}, "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	for _, p := range pkgs {
		if p.Analyze && p.TypeErr != nil {
			t.Fatalf("fixture %s does not type-check: %v", name, p.TypeErr)
		}
	}
	diags := RunAnalyzers(pkgs, analyzers)
	for _, e := range CheckExpectations(pkgs, diags) {
		t.Error(e)
	}
}

func TestHotloop(t *testing.T)       { runFixture(t, "hotloop", HotloopAnalyzer) }
func TestKernelParity(t *testing.T)  { runFixture(t, "kernelparity", KernelParityAnalyzer) }
func TestAtomicField(t *testing.T)   { runFixture(t, "atomicfield", AtomicFieldAnalyzer) }
func TestBoundedAlloc(t *testing.T)  { runFixture(t, "boundedalloc", BoundedAllocAnalyzer) }
func TestEpochSafe(t *testing.T)     { runFixture(t, "epochsafe", EpochSafeAnalyzer) }
func TestGoroutineLife(t *testing.T) { runFixture(t, "goroutinelife", GoroutineLifeAnalyzer) }
func TestCtxFlow(t *testing.T)       { runFixture(t, "ctxflow", CtxFlowAnalyzer) }
func TestErrSentinel(t *testing.T)   { runFixture(t, "errsentinel", ErrSentinelAnalyzer) }

// TestSuiteOnOwnTree is the dogfood check: the full suite must be clean
// on the module itself, matching the CI gate.
func TestSuiteOnOwnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load(LoadConfig{Dir: "../.."}, "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, p := range pkgs {
		if p.Analyze && p.TypeErr != nil {
			t.Fatalf("%s does not type-check: %v", p.ImportPath, p.TypeErr)
		}
	}
	for _, d := range RunAnalyzers(pkgs, All()) {
		t.Errorf("suite not clean on own tree: %s", d)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 8 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 8, nil", len(all), err)
	}
	two, err := ByName("hotloop, atomicfield")
	if err != nil || len(two) != 2 || two[0].Name != "hotloop" || two[1].Name != "atomicfield" {
		t.Fatalf("ByName(hotloop, atomicfield) = %v, %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) succeeded; want error")
	}
}

func TestMalformedIgnore(t *testing.T) {
	src := `package p

func f() {
	//bsvet:ignore hotloop
	_ = 1
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	igs := parseIgnores(fset, []*ast.File{f}, &diags)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "malformed //bsvet:ignore") {
		t.Fatalf("diags = %v; want one malformed-ignore diagnostic", diags)
	}
	if len(igs) != 0 {
		t.Fatalf("malformed pragma still produced a directive: %v", igs)
	}
}
