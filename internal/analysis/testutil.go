package analysis

import (
	"fmt"
	"regexp"
	"strings"
)

// CheckExpectations compares a run's diagnostics against the fixture's
// `// want "regex"` comments, analysistest-style: every want comment
// must be matched by a diagnostic on its line, and every diagnostic must
// be anticipated by a want. It returns one error string per mismatch.
//
// Want comments carry one or more double-quoted regexps:
//
//	x := make([]byte, n) // want `make sized by n`
//	y := foo()           // want "first" "second"
//
// Both backquoted and double-quoted forms are accepted.
func CheckExpectations(pkgs []*Package, diags []Diagnostic) []string {
	wants := collectWants(pkgs)
	var errs []string

	matched := map[*want]bool{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		ok := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				matched[w] = true
				ok = true
			}
		}
		if !ok {
			errs = append(errs, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !matched[w] {
				errs = append(errs, fmt.Sprintf("%s: no diagnostic matched want %q", key, w.re))
			}
		}
	}
	return errs
}

type want struct{ re *regexp.Regexp }

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(pkgs []*Package) map[string][]*want {
	wants := map[string][]*want{}
	for _, p := range pkgs {
		if !p.Analyze {
			continue
		}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, m := range wantRE.FindAllString(text[len("want "):], -1) {
						pat := m[1 : len(m)-1]
						if m[0] == '"' {
							pat = strings.ReplaceAll(pat, `\"`, `"`)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							// Surface as a mismatch later rather than panic.
							re = regexp.MustCompile(regexp.QuoteMeta(m))
						}
						wants[key] = append(wants[key], &want{re})
					}
				}
			}
		}
	}
	return wants
}
