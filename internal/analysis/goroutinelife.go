package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineLifeAnalyzer enforces goroutine lifecycle discipline in
// non-test library code (package main owns its process lifetime and is
// exempt):
//
//   - Every go statement must show a stop path. A launched closure
//     passes when its body carries termination evidence — a select
//     statement, a channel receive or send, a close call, or a Done()
//     call (sync.WaitGroup registration, ctx.Done probe). A launched
//     named function passes when its declaration carries the same
//     evidence or takes a context.Context; the evidence travels across
//     packages as a stopper fact, so `go merger.loop()` resolves even
//     when loop lives elsewhere.
//   - A launched closure must not capture an enclosing for/range
//     iteration variable by reference: pass it as an argument so the
//     per-goroutine value is explicit in the data flow.
//   - go through a function value is flagged outright: nothing can be
//     verified about its lifetime.
var GoroutineLifeAnalyzer = &Analyzer{
	Name: "goroutinelife",
	Doc: "check that every go statement in library code has a visible stop path " +
		"and captures no loop variables",
	Run: runGoroutineLife,
}

func runGoroutineLife(p *Pass) {
	if p.Pkg.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoStmts(p, fd.Body)
		}
	}
}

// checkGoStmts walks one body tracking the enclosing loop iteration
// variables (ast.Inspect signals subtree exit with a nil node, so a
// plain stack recovers the path).
func checkGoStmts(p *Pass, body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if g, ok := n.(*ast.GoStmt); ok {
			checkGoStmt(p, g, loopVarsOf(p, stack))
		}
		return true
	})
}

// loopVarsOf collects the iteration-variable objects of every for/range
// statement on the current traversal path.
func loopVarsOf(p *Pass, stack []ast.Node) map[types.Object]bool {
	vars := map[types.Object]bool{}
	addIdent := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := p.Info.Defs[id]; obj != nil {
			vars[obj] = true
		}
	}
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Key != nil {
				addIdent(n.Key)
			}
			if n.Value != nil {
				addIdent(n.Value)
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					addIdent(lhs)
				}
			}
		}
	}
	return vars
}

func checkGoStmt(p *Pass, g *ast.GoStmt, loopVars map[types.Object]bool) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		reportLoopCaptures(p, g, lit, loopVars)
		if !bodyHasStopSignal(lit.Body) && !litTakesContext(lit) {
			p.Reportf(g.Pos(), "goroutine has no visible stop path (no select, channel op, Done call, or context); tie it to a WaitGroup, done channel, or lifecycle owner")
		}
		return
	}
	callee, _ := typeutilCallee(p.Info, g.Call).(*types.Func)
	if callee == nil {
		p.Reportf(g.Pos(), "goroutine launches through a function value; its stop path cannot be verified — launch a named function or closure with a visible stop signal")
		return
	}
	if !p.Facts.Stopper[ObjKey(callee)] {
		p.Reportf(g.Pos(), "goroutine %s has no visible stop path (no select, channel op, Done call, or context parameter); tie it to a lifecycle owner", ObjKey(callee))
	}
}

// litTakesContext reports a closure that receives its own ctx argument.
func litTakesContext(lit *ast.FuncLit) bool {
	if lit.Type.Params == nil {
		return false
	}
	for _, f := range lit.Type.Params.List {
		if isContextTypeExpr(f.Type) {
			return true
		}
	}
	return false
}

// reportLoopCaptures flags enclosing iteration variables the closure
// body references; call arguments evaluate at launch and are fine.
func reportLoopCaptures(p *Pass, g *ast.GoStmt, lit *ast.FuncLit, loopVars map[types.Object]bool) {
	if len(loopVars) == 0 {
		return
	}
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil || !loopVars[obj] || seen[obj] {
			return true
		}
		seen[obj] = true
		p.Reportf(g.Pos(), "goroutine closure captures loop variable %s by reference; pass it as an argument", obj.Name())
		return true
	})
}
