// Package atomicfield is a bsvet test fixture for the atomic-field
// access, alignment, and copy rules.
package atomicfield

import "sync/atomic"

// counters mixes a 32-bit field before a 64-bit atomic one: misaligned
// under 32-bit layout.
type counters struct {
	flag uint32
	hits int64 // want `64-bit atomic field hits sits at offset 4 under 32-bit layout`
}

// NewCounters is a constructor: plain writes here are pre-publication.
func NewCounters() *counters {
	c := &counters{}
	c.hits = 0
	return c
}

func (c *counters) inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) load() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) racyRead() int64 {
	return c.hits // want `plain access outside a constructor races`
}

func (c *counters) racyWrite() {
	c.hits = 42 // want `plain access outside a constructor races`
}

// aligned keeps its 64-bit atomic field first: no alignment finding.
type aligned struct {
	n    uint64
	flag uint32
}

func (a *aligned) inc() { atomic.AddUint64(&a.n, 1) }

// gauges uses the new-style wrappers, which must never be copied.
type gauges struct {
	vals [4]atomic.Int64
}

func sum(g *gauges) int64 {
	var s int64
	for _, v := range g.vals { // want `range copies atomic.Int64 elements by value`
		s += v.Load()
	}
	for i := range g.vals { // good: index form
		s += g.vals[i].Load()
	}
	return s
}

func snapshot(g *gauges) int64 {
	c := g.vals[0] // want `copies atomic.Int64 by value`
	return c.Load()
}

func report(v atomic.Int64) int64 { return v.Load() }

func passesByValue(g *gauges) int64 {
	return report(g.vals[1]) // want `passes atomic.Int64 by value`
}

func pointerIsFine(g *gauges) *atomic.Int64 {
	p := &g.vals[2]
	p.Add(1)
	return p
}
