// Package ctxflow is a bsvet test fixture; // want comments mark the
// diagnostics the ctxflow analyzer must produce.
package ctxflow

import "context"

// Process forwards its ctx — the clean path.
func Process(ctx context.Context) error {
	return work(ctx)
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// Detached mints a root with a declared reason — clean.
//
//bsvet:rootctx fixture: detached maintenance loop owns its own lifetime
func Detached() {
	ctx := context.Background()
	_ = work(ctx)
}

// badBackground mints an unannotated root.
func badBackground() {
	_ = work(context.Background()) // want `context.Background\(\) in library code needs a //bsvet:rootctx annotation`
}

// badTODO: TODO is a root too.
func badTODO() {
	_ = work(context.TODO()) // want `context.TODO\(\) in library code needs a //bsvet:rootctx annotation`
}

// badSever receives a ctx but mints a fresh root anyway — the sharper
// message.
func badSever(ctx context.Context) {
	_ = work(ctx)
	_ = work(context.Background()) // want `context.Background\(\) severs cancellation while badSever already receives a ctx parameter`
}

// badPragma has a reason-less annotation: the pragma itself is the
// diagnostic, and it still roots the function (no Background cascade).
//
//bsvet:rootctx
func badPragma() { // want `malformed //bsvet:rootctx`
	_ = work(context.Background())
}

// Ignores accepts ctx on an exported signature but never forwards it.
func Ignores(ctx context.Context, n int) int { // want `exported Ignores accepts ctx but never forwards it`
	return n * 2
}

// Blank is the sanctioned spelling for a fixed signature.
func Blank(_ context.Context, n int) int {
	return n * 2
}

// inner is unexported, so its method is not an exported entry point even
// though the method name is.
type inner struct{}

func (inner) Handle(ctx context.Context) {}

// Conn is exported; its exported method must use its ctx.
type Conn struct{}

func (Conn) Query(ctx context.Context) error { // want `exported Query accepts ctx but never forwards it`
	return nil
}

func (Conn) Exec(ctx context.Context) error {
	return work(ctx)
}
