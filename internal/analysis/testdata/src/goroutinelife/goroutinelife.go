// Package goroutinelife is a bsvet test fixture; // want comments mark
// the diagnostics the goroutinelife analyzer must produce.
package goroutinelife

import (
	"context"
	"sync"

	"byteslice/internal/analysis/testdata/src/goroutinelife/lifedep"
)

// okSelect: the closure's select is its stop path.
func okSelect(stop chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}

// okWaitGroup: a Done() call is registration evidence.
func okWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// okCtxClosure: a closure that receives its own ctx argument passes.
func okCtxClosure(ctx context.Context) {
	go func(ctx context.Context) {
		<-ctx.Done()
	}(ctx)
}

// okClose: closing a channel is termination evidence too.
func okClose(done chan struct{}) {
	go func() {
		close(done)
	}()
}

// orphanClosure has no stop path at all.
func orphanClosure() {
	go func() { // want `goroutine has no visible stop path`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// rangeCapture launches per-item goroutines that close over the
// iteration variables instead of taking them as arguments.
func rangeCapture(items []int, stop chan struct{}) {
	for i, v := range items {
		go func() { // want `captures loop variable i by reference` `captures loop variable v by reference`
			_ = i + v
			<-stop
		}()
	}
}

// forCapture: three-clause loops count too.
func forCapture(n int, stop chan struct{}) {
	for j := 0; j < n; j++ {
		go func() { // want `captures loop variable j by reference`
			_ = j
			<-stop
		}()
	}
}

// argNotCapture: passing the loop variable as an argument is the fix.
func argNotCapture(items []int, stop chan struct{}) {
	for _, v := range items {
		go func(v int) {
			_ = v
			<-stop
		}(v)
	}
}

// loop is a local named stopper: its select travels as a fact.
func loop(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		}
	}
}

// spin is a local named orphan.
func spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

func okNamed(done chan struct{}) {
	go loop(done)
}

func badNamed() {
	go spin() // want `goroutine .*goroutinelife\.spin has no visible stop path`
}

// badFuncValue: nothing can be verified about a function value.
func badFuncValue(f func()) {
	go f() // want `goroutine launches through a function value`
}

// okImported / badImported exercise the cross-package stopper fact.
func okImported(done chan struct{}) {
	go lifedep.Run(done)
}

func badImported() {
	go lifedep.Orphan() // want `goroutine .*lifedep\.Orphan has no visible stop path`
}
