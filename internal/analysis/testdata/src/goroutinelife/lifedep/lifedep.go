// Package lifedep supplies named goroutine targets for the
// cross-package half of the goroutinelife fixture: stopper evidence
// must travel with the function, not with the call site.
package lifedep

// Run loops until its done channel closes — a stopper.
func Run(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		}
	}
}

// Orphan spins with no stop path.
func Orphan() {
	for i := 0; ; i++ {
		_ = i
	}
}
