// Package errsentinel is a bsvet test fixture; // want comments mark
// the diagnostics the errsentinel analyzer must produce. The package
// declares a sentinel, which opts it into the analyzer.
package errsentinel

import (
	"errors"
	"fmt"
)

// ErrBad is the fixture sentinel.
var ErrBad = errors.New("errsentinel: bad")

// wrapf is a printf-style wrapper: exactly (format string, args ...any),
// so an error passed through it flattens no matter the verb.
func wrapf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

// Wrap is the good path: %w preserves the chain.
func Wrap(err error) error {
	return fmt.Errorf("%w: while wrapping: %w", ErrBad, err)
}

// flattenVerb loses the cause through %v.
func flattenVerb(err error) error {
	return fmt.Errorf("oops: %v", err) // want `error formatted with %v loses its identity`
}

// flattenS loses the cause through %s.
func flattenS(err error) error {
	return fmt.Errorf("oops: %s", err) // want `error formatted with %s loses its identity`
}

// flattenSprintf flattens through Sprintf — no verb is safe there.
func flattenSprintf(err error) string {
	return fmt.Sprintf("oops: %v", err) // want `error flattened through fmt.Sprintf`
}

// flattenWrapper flattens through the package's own printf helper.
func flattenWrapper(err error) error {
	return wrapf("oops: %v", err) // want `error passed through printf-style wrapf`
}

// starWidth: width stars consume argument slots; the error is still
// found at its shifted position.
func starWidth(err error) error {
	return fmt.Errorf("pad %*d: %v", 8, 42, err) // want `error formatted with %v loses its identity`
}

// Mixed wraps on one return and hands back a raw Errorf on another:
// callers that can classify the first failure deserve the second.
func Mixed(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: negative %d", ErrBad, n)
	}
	return fmt.Errorf("unclassified: %d", n) // want `exported Mixed mixes wrapped and raw errors`
}

// SentinelReturn returns the bare sentinel on one path, so its raw
// Errorf on the other is a mixed path too.
func SentinelReturn(n int) error {
	if n < 0 {
		return ErrBad
	}
	return fmt.Errorf("unclassified: %d", n) // want `exported SentinelReturn mixes wrapped and raw errors`
}

// ConsistentRaw never wraps anywhere; a uniformly raw exported helper is
// out of the mixed-path rule's scope.
func ConsistentRaw(n int) error {
	return fmt.Errorf("plain: %d", n)
}

// mixed is unexported: the mixed-path rule applies to exported entry
// points only.
func mixed(n int) error {
	if n < 0 {
		return ErrBad
	}
	return fmt.Errorf("plain: %d", n)
}

// dynamicFormat: non-constant format strings are skipped, not guessed
// at.
func dynamicFormat(format string, err error) error {
	return fmt.Errorf(format, err)
}
