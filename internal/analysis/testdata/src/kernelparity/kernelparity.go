// Package kernelparity is a bsvet test fixture for the Ctx/Obs variant
// parity rules.
package kernelparity

import "context"

// Stage stands in for obs.Stage; the analyzer only counts the trailing
// extra, it does not pin its type.
type Stage struct{}

// Good has both variants with agreeing cores.
func Good(a int, b string) int { return a }

func GoodCtx(ctx context.Context, a int, b string) (int, error) { return a, nil }

func GoodObs(ctx context.Context, a int, b string, st *Stage) (int, error) { return a, nil }

// Plain has no variants, so no rule applies.
func Plain(a int) int { return a }

// Partial has only a Ctx twin.
func Partial(a int) {} // want `has a Ctx variant but no PartialObs`

func PartialCtx(ctx context.Context, a int) error { return nil }

// Solo has only an Obs twin.
func Solo(a int) {} // want `has an Obs variant but no SoloCtx`

func SoloObs(ctx context.Context, a int, st *Stage) error { return nil }

// Drift's Ctx variant changed a parameter type without the base keeping up.
func Drift(a int) {}

func DriftCtx(ctx context.Context, a int64) error { return nil } // want `variant core drifted from base`

func DriftObs(ctx context.Context, a int, st *Stage) error { return nil }

// NoCtxFirst forgot the context parameter.
func NoCtxFirst(a string) {}

func NoCtxFirstCtx(b string, a string) error { return nil } // want `first parameter must be context.Context`

func NoCtxFirstObs(ctx context.Context, a string, st *Stage) error { return nil }

// ResultDrift's Ctx variant dropped the base result.
func ResultDrift(a int) int { return a }

func ResultDriftCtx(ctx context.Context, a int) error { return nil } // want `must return ResultDrift's 1 results plus a final error`

func ResultDriftObs(ctx context.Context, a int, st *Stage) (int, error) { return a, nil }

// NoError's variant forgot the trailing error.
func NoError(a int) int { return a }

func NoErrorCtx(ctx context.Context, a int) (int, int) { return a, a } // want `final result must be error`

func NoErrorObs(ctx context.Context, a int, st *Stage) (int, error) { return a, nil }

// WrongArity's Obs variant lost a base parameter.
func WrongArity(a int, b int) {}

func WrongArityCtx(ctx context.Context, a int, b int) error { return nil }

func WrongArityObs(ctx context.Context, a int, st *Stage) error { return nil } // want `must take \(ctx, 2 base params, stage\)`
