// Package bcegate is a bsvet gate fixture: sumFirst carries a bounds
// check the compiler cannot eliminate, so `bsvet -gcflags` must fail on
// it (the gate test asserts the function name and line are reported).
package bcegate

//bsvet:hotloop
func sumFirst(p []byte, idx []int) int {
	s := 0
	for _, i := range idx {
		s += int(p[i]) // deliberate: i is unconstrained, BCE impossible
	}
	return s
}
