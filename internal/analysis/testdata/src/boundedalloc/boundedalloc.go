// Package boundedalloc is a bsvet test fixture for the decoded-size
// bound-check rule.
package boundedalloc

import (
	"encoding/binary"
	"errors"
	"io"
)

const maxLen = 1 << 20

func badRead(r io.Reader, hdr []byte) ([]byte, error) {
	n := binary.LittleEndian.Uint32(hdr)
	buf := make([]byte, n) // want `make sized by n, which was decoded from input and never bound-checked`
	_, err := io.ReadFull(r, buf)
	return buf, err
}

func badPropagate(hdr []byte) []byte {
	n := binary.LittleEndian.Uint64(hdr)
	count := int(n) * 8
	return make([]byte, count) // want `make sized by count, which was decoded from input and never bound-checked`
}

func badBinaryRead(r io.Reader) ([]uint32, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	return make([]uint32, n), nil // want `make sized by n, which was decoded from input and never bound-checked`
}

func goodChecked(r io.Reader, hdr []byte) ([]byte, error) {
	n := binary.LittleEndian.Uint32(hdr)
	if n > maxLen {
		return nil, errors.New("length exceeds limit")
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

func goodMin(hdr []byte) []byte {
	n := int(binary.LittleEndian.Uint16(hdr))
	return make([]byte, min(n, maxLen))
}

func goodConstant() []byte {
	return make([]byte, 64)
}

func goodUntainted(sizes []int) []byte {
	return make([]byte, sizes[0])
}
