// Package epochsafe is a bsvet test fixture; // want comments mark the
// diagnostics the epochsafe analyzer must produce.
package epochsafe

import (
	"sync/atomic"

	"byteslice/internal/analysis/testdata/src/epochsafe/epochdep"
)

// snap is implicitly sealed: it is the element type of an
// atomic.Pointer, so a Store publishes it to lock-free readers.
type snap struct {
	codes []uint32
	byKey map[string]int
	n     int
}

var current atomic.Pointer[snap]

// scratch is not sealed; writes to it are nobody's business.
type scratch struct {
	n     int
	codes []uint32
}

// publish is the legal pattern: composite-literal construction of a
// fresh value, then the atomic Store.
func publish(codes []uint32) {
	s := &snap{codes: codes, n: len(codes), byKey: map[string]int{}}
	current.Store(s)
}

// rebuild constructs a replacement snapshot; the annotation marks it as
// pre-publication code.
//
//bsvet:builder
func rebuild(codes []uint32) *snap {
	s := &snap{}
	s.codes = codes // ok: builder
	s.n = len(codes)
	return s
}

func mutateAfterPublish(other []uint32) {
	s := current.Load()
	s.n = 0                 // want `store to field n of sealed type .*epochsafe\.snap outside a //bsvet:builder function`
	s.codes[0] = 1          // want `store to field codes of sealed type .*epochsafe\.snap`
	s.n++                   // want `store to field n of sealed type .*epochsafe\.snap`
	copy(s.codes, other)    // want `store to field codes of sealed type .*epochsafe\.snap`
	delete(s.byKey, "gone") // want `store to field byKey of sealed type .*epochsafe\.snap`
	(*s).n = 2              // want `store to field n of sealed type .*epochsafe\.snap`
	s.codes[1], s.n = 3, 4  // want `store to field codes of sealed type .*epochsafe\.snap` `store to field n of sealed type .*epochsafe\.snap`
}

// mutateImported exercises the cross-package fact: View's seal is
// declared in epochdep, not here.
func mutateImported(v *epochdep.View) {
	v.Count = 0          // want `store to field Count of sealed type .*epochdep\.View`
	v.Rows[0] = 9        // want `store to field Rows of sealed type .*epochdep\.View`
	delete(v.ByKey, "k") // want `store to field ByKey of sealed type .*epochdep\.View`
}

// mutateScratch is the control: same shapes, unsealed type, no
// diagnostics.
func mutateScratch(s *scratch, other []uint32) {
	s.n = 0
	s.codes[0] = 1
	copy(s.codes, other)
}

// readsAreFine: loads and field reads of sealed values never report.
func readsAreFine() int {
	s := current.Load()
	total := s.n
	for _, c := range s.codes {
		total += int(c)
	}
	return total
}
