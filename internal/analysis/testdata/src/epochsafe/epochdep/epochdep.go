// Package epochdep exports a sealed type for the cross-package half of
// the epochsafe fixture: the importing package must not be able to
// mutate a View even though the annotation lives here.
package epochdep

// View is an epoch-published snapshot; fields are read-only after
// publication.
//
//bsvet:sealed
type View struct {
	Rows  []uint32
	Count int
	ByKey map[string]int
}

// NewView is the construction path.
//
//bsvet:builder
func NewView(rows []uint32) *View {
	v := &View{ByKey: map[string]int{}}
	v.Rows = rows // ok: builder function, value not yet published
	v.Count = len(rows)
	return v
}
