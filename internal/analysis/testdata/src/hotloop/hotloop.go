// Package hotloop is a bsvet test fixture; // want comments mark the
// diagnostics the hotloop analyzer must produce.
package hotloop

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

type pair struct{ a, b int }

// popcountWords is the good case: SWAR-shaped, intrinsics only.
//
//bsvet:hotloop
func popcountWords(p []byte) int {
	n := 0
	for len(p) >= 8 {
		n += bits.OnesCount64(binary.LittleEndian.Uint64(p))
		p = p[8:]
	}
	return n
}

//bsvet:hotloop
func helper(x uint64) uint64 { return x &^ (x >> 1) }

// callsHelper may call helper because helper is annotated too.
//
//bsvet:hotloop
func callsHelper(x uint64) uint64 { return helper(x) }

// coldPanic is fine: panic arguments are off the fast path.
//
//bsvet:hotloop
func coldPanic(op int) int {
	if op < 0 {
		panic(describe(op))
	}
	return op
}

func describe(op int) string { return fmt.Sprintf("bad op %d", op) }

//bsvet:hotloop
func badAlloc(n int) []byte {
	return make([]byte, n) // want `builtin make allocates on the heap`
}

//bsvet:hotloop
func badAppend(s []int, v int) []int {
	return append(s, v) // want `builtin append allocates on the heap`
}

//bsvet:hotloop
func badDefer() {
	defer helper(1) // want `defer is not allowed in a hot loop`
}

//bsvet:hotloop
func badGo() {
	go helper(1) // want `goroutine launch is not allowed in a hot loop`
}

//bsvet:hotloop
func badClosure(n int) int {
	f := func() int { return n } // want `closure allocates and defeats inlining`
	return f()                   // want `indirect call cannot be inlined or verified`
}

//bsvet:hotloop
func badComposite() int {
	p := pair{1, 2} // want `composite literal may allocate`
	return p.a
}

//bsvet:hotloop
func badAssert(v any) int {
	x, _ := v.(int) // want `type assertion requires an interface value`
	return x
}

//bsvet:hotloop
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//bsvet:hotloop
func badIfaceConv(x int) any {
	return any(x) // want `conversion to interface type`
}

//bsvet:hotloop
func badStringConv(b []byte) string {
	return string(b) // want `conversion string allocates`
}

//bsvet:hotloop
func badCall(op int) string {
	return describe(op) // want `call to .*hotloop.describe, which is not //bsvet:hotloop or intrinsic`
}

// suppressed shows the escape hatch: the pragma covers the line below.
//
//bsvet:hotloop
func suppressed(n int) []byte {
	//bsvet:ignore hotloop fixture exercises the suppression pragma
	return make([]byte, n)
}

// notAnnotated may do anything.
func notAnnotated(n int) []byte {
	defer helper(1)
	return make([]byte, n)
}
