package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicFieldAnalyzer guards the two ways atomic counters rot:
//
//  1. Old-style fields (plain int64/uint64 passed by address to
//     sync/atomic functions) that are also read or written without
//     atomic outside their constructor — a data race the race detector
//     only catches when the interleaving happens to fire.
//  2. Old-style 64-bit fields whose struct offset is not 8-byte aligned:
//     on 32-bit platforms atomic 64-bit ops on them fault at runtime.
//  3. New-style atomic.Int64-family values copied by value (assignment,
//     range value, argument) — the copy silently forks the counter.
var AtomicFieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc: "check that atomically-updated struct fields are never accessed " +
		"plainly outside constructors, are alignment-safe, and are never copied",
	Run: runAtomicField,
}

// atomicValueTypes are the sync/atomic wrapper types that must not be
// copied after first use.
var atomicValueTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

func runAtomicField(p *Pass) {
	if p.Info == nil {
		return
	}
	// Pass 1: collect old-style atomic fields — struct fields whose
	// address is taken as the pointer argument of a sync/atomic call.
	atomicFields := map[*types.Var]bool{}
	// sanctioned marks the SelectorExprs that ARE those atomic call
	// arguments, so pass 2 does not report them.
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(p.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := fieldOf(p.Info, sel); fld != nil {
					atomicFields[fld] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2: any other selector of those fields outside a constructor
	// is a plain racy access.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isConstructor(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				fld := fieldOf(p.Info, sel)
				if fld != nil && atomicFields[fld] {
					p.Reportf(sel.Pos(), "field %s is updated with sync/atomic elsewhere; plain access outside a constructor races — use atomic.Load/Store or an atomic.%s field",
						fld.Name(), atomicName(fld.Type()))
				}
				return true
			})
		}
	}

	// Pass 3: alignment of old-style 64-bit fields under 32-bit layout.
	sizes := types.SizesFor("gc", "386")
	checked := map[*types.Struct]bool{}
	for fld := range atomicFields {
		if !is64Bit(fld.Type()) {
			continue
		}
		st, fields := owningStruct(p, fld)
		if st == nil || checked[st] {
			continue
		}
		checked[st] = true
		offsets := sizes.Offsetsof(fields)
		for i, f2 := range fields {
			if atomicFields[f2] && is64Bit(f2.Type()) && offsets[i]%8 != 0 {
				p.Reportf(f2.Pos(), "64-bit atomic field %s sits at offset %d under 32-bit layout; move it to the front of the struct or use atomic.%s",
					f2.Name(), offsets[i], atomicName(f2.Type()))
			}
		}
	}

	// Pass 4: copies of new-style atomic values.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if name := atomicValueTypeName(p.Info.TypeOf(rhs)); name != "" && !isZeroValueExpr(rhs) {
						p.Reportf(rhs.Pos(), "copies atomic.%s by value; the copy forks the counter — keep a pointer or index into the original", name)
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if name := atomicValueTypeName(p.Info.TypeOf(n.Value)); name != "" {
						p.Reportf(n.Value.Pos(), "range copies atomic.%s elements by value; range over indices instead", name)
					}
				}
			case *ast.CallExpr:
				if tv, ok := p.Info.Types[n.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				for _, arg := range n.Args {
					if name := atomicValueTypeName(p.Info.TypeOf(arg)); name != "" {
						p.Reportf(arg.Pos(), "passes atomic.%s by value; pass a pointer instead", name)
					}
				}
			}
			return true
		})
	}
}

// isSyncAtomicCall reports calls to package sync/atomic's functions
// (not methods of its wrapper types — those are the safe new style).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn, _ := typeutilCallee(info, call).(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil
}

// fieldOf resolves a selector to the struct field it names, if any.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// isConstructor: New*-named functions and init set fields before the
// value is shared, so plain writes there are fine.
func isConstructor(fd *ast.FuncDecl) bool {
	return strings.HasPrefix(fd.Name.Name, "New") || fd.Name.Name == "init"
}

func is64Bit(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Int64 || b.Kind() == types.Uint64)
}

func atomicName(t types.Type) string {
	b, _ := t.Underlying().(*types.Basic)
	if b != nil && b.Kind() == types.Uint64 {
		return "Uint64"
	}
	return "Int64"
}

// owningStruct finds the struct type declaring fld within the package.
func owningStruct(p *Pass, fld *types.Var) (*types.Struct, []*types.Var) {
	if p.Pkg == nil {
		return nil, nil
	}
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var fields []*types.Var
		found := false
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			fields = append(fields, f)
			if f == fld {
				found = true
			}
		}
		if found {
			return st, fields
		}
	}
	return nil, nil
}

// atomicValueTypeName returns "Int64" etc. when t is one of sync/atomic's
// non-copyable wrapper types (by value, not pointer), else "".
func atomicValueTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || !atomicValueTypes[obj.Name()] {
		return ""
	}
	return obj.Name()
}

// isZeroValueExpr reports expressions that construct a fresh value
// rather than copy an existing one (composite literals).
func isZeroValueExpr(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.CompositeLit)
	return ok
}
