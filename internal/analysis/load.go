package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and (for analysis targets) type-checked
// package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Analyze marks packages the analyzers run on; module-local
	// dependencies are loaded parse-only for annotation facts.
	Analyze bool
	// Facts is the annotation table declared here (see ScanAnnotations).
	Facts *Facts
	// TypeErr records a type-check failure (the package is then skipped
	// by the analyzers but still contributes annotation facts).
	TypeErr error
}

// listPackage mirrors the `go list -json` fields the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	ForTest    string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// LoadConfig controls Load.
type LoadConfig struct {
	// Dir is the module directory `go list` runs in ("" = cwd).
	Dir string
	// Tests includes *_test.go files via `go list -test`: internal test
	// variants and external _test packages become analysis targets.
	Tests bool
}

// Load resolves patterns with the go tool and returns the matched
// packages type-checked from source, with module-local dependencies
// loaded parse-only so cross-package //bsvet:hotloop facts resolve.
// Dependency type information comes from the build cache's export data
// (`go list -export`), so loading needs no network and no third-party
// importer.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-e", "-export", "-deps", "-json"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	listed, err := decodeList(out)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// The -deps closure lists dependencies first, targets last; `go list`
	// echoes the named patterns at the end, so targets are the packages
	// matched by the patterns — everything whose ImportPath is not only a
	// dependency. Rebuilding that split exactly requires a second plain
	// `go list` of the same patterns.
	targets, err := listTargets(cfg, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard || strings.HasSuffix(lp.ImportPath, ".test") {
			continue // stdlib and generated test mains carry no pragmas of ours
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			continue // no cgo in this module; skip rather than mis-parse
		}
		// A test variant ("p [p.test]" or "p_test [p.test]") is a target
		// when the package it tests is one.
		isTarget := targets[strip(lp.ImportPath)] || (lp.ForTest != "" && targets[lp.ForTest])
		var files []*ast.File
		for _, name := range lp.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(lp.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
			}
			files = append(files, f)
		}
		pkg := &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Analyze:    isTarget,
			Facts:      ScanAnnotations(strip(lp.ImportPath), files),
		}
		if isTarget {
			pkg.Types, pkg.Info, pkg.TypeErr = typeCheck(fset, lp, files, exports)
		}
		pkgs = append(pkgs, pkg)
	}

	// When tests are loaded, the plain package and its test-augmented
	// variant ("p" and "p [p.test]") are both targets; analyzing both
	// only duplicates work that dedupe() would throw away. Prefer the
	// augmented variant, which is a superset.
	augmented := map[string]bool{}
	for _, p := range pkgs {
		if p.Analyze && p.ImportPath != strip(p.ImportPath) {
			augmented[strip(p.ImportPath)] = true
		}
	}
	for _, p := range pkgs {
		if p.Analyze && augmented[p.ImportPath] {
			p.Analyze = false
		}
	}
	return pkgs, nil
}

// strip removes the " [p.test]" suffix of a test-variant import path.
func strip(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// listTargets resolves which import paths the patterns name directly.
func listTargets(cfg LoadConfig, patterns []string) (map[string]bool, error) {
	args := []string{"list", "-e"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	targets := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			targets[line] = true
		}
	}
	return targets, nil
}

// typeCheck checks one package from source, resolving imports through the
// build cache export data go list handed us. ImportMap redirects matter
// for test variants: an external test package importing "p" must see
// "p [p.test]" so symbols from p's internal _test.go files resolve.
func typeCheck(fset *token.FileSet, lp *listPackage, files []*ast.File, exports map[string]string) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // collect the first error via Check's return
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(strip(lp.ImportPath), fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: typecheck: %v", lp.ImportPath, err)
	}
	return pkg, info, nil
}
