package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotloopAnalyzer enforces that //bsvet:hotloop functions stay tight.
//
// Annotated bodies may not contain heap allocations (make, new, append,
// composite literals, string<->[]byte conversions, string concatenation),
// interface conversions or type assertions, defer, go, closures, or calls
// to functions that are neither intrinsic nor themselves annotated.
// Arguments of panic calls are exempt: a panicking hot loop is already
// off the fast path.
var HotloopAnalyzer = &Analyzer{
	Name: "hotloop",
	Doc: "check that //bsvet:hotloop functions contain no allocations, " +
		"interface conversions, defers, closures, or calls to non-hotloop functions",
	Run: runHotloop,
}

// intrinsicPkgs are packages whose functions compile to branch-free
// register code (or are compiler intrinsics) and are therefore callable
// from hot loops without annotation.
var intrinsicPkgs = map[string]bool{
	"math/bits":       true,
	"unsafe":          true,
	"encoding/binary": true, // ByteOrder loads/stores are intrinsified
}

// allowedBuiltins never allocate; panic is allowed because its entire
// call is cold.
var allowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true,
	"min": true, "max": true, "panic": true,
}

// allocatingBuiltins always (or may) allocate on the heap.
var allocatingBuiltins = map[string]bool{
	"make": true, "new": true, "append": true,
}

func runHotloop(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasPragma(fd.Doc, pragmaHotloop) {
				continue
			}
			w := &hotloopWalker{p: p, fn: fd.Name.Name}
			w.walk(fd.Body)
		}
	}
}

type hotloopWalker struct {
	p  *Pass
	fn string
}

// walk descends the annotated body; subtrees under a panic call's
// arguments are skipped entirely (cold path).
func (w *hotloopWalker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			w.p.Reportf(n.Pos(), "hotloop %s: defer is not allowed in a hot loop", w.fn)
		case *ast.GoStmt:
			w.p.Reportf(n.Pos(), "hotloop %s: goroutine launch is not allowed in a hot loop", w.fn)
		case *ast.FuncLit:
			w.p.Reportf(n.Pos(), "hotloop %s: closure allocates and defeats inlining", w.fn)
			return false // don't double-report the closure's own body
		case *ast.CompositeLit:
			w.p.Reportf(n.Pos(), "hotloop %s: composite literal may allocate", w.fn)
		case *ast.TypeAssertExpr:
			w.p.Reportf(n.Pos(), "hotloop %s: type assertion requires an interface value", w.fn)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(w.p.Info.TypeOf(n)) {
				w.p.Reportf(n.Pos(), "hotloop %s: string concatenation allocates", w.fn)
			}
		case *ast.CallExpr:
			return w.call(n)
		}
		return true
	})
}

// call classifies one call expression; returns false to stop descent.
func (w *hotloopWalker) call(call *ast.CallExpr) bool {
	// Conversion, not a call.
	if tv, ok := w.p.Info.Types[call.Fun]; ok && tv.IsType() {
		dst := tv.Type
		if types.IsInterface(dst.Underlying()) {
			w.p.Reportf(call.Pos(), "hotloop %s: conversion to interface type %s", w.fn, dst)
		}
		if isAllocConversion(dst, w.p.Info.TypeOf(call.Args[0])) {
			w.p.Reportf(call.Pos(), "hotloop %s: conversion %s allocates", w.fn, types.ExprString(call.Fun))
		}
		return true
	}
	switch callee := typeutilCallee(w.p.Info, call).(type) {
	case *types.Builtin:
		name := callee.Name()
		switch {
		case allocatingBuiltins[name]:
			w.p.Reportf(call.Pos(), "hotloop %s: builtin %s allocates on the heap", w.fn, name)
		case name == "panic":
			return false // cold path: don't analyze panic arguments
		case !allowedBuiltins[name]:
			w.p.Reportf(call.Pos(), "hotloop %s: builtin %s is not allowed in a hot loop", w.fn, name)
		}
	case *types.Func:
		if callee.Pkg() == nil || intrinsicPkgs[callee.Pkg().Path()] {
			return true
		}
		if !w.p.Facts.Hotloop[ObjKey(callee)] {
			w.p.Reportf(call.Pos(), "hotloop %s: call to %s, which is not //bsvet:hotloop or intrinsic", w.fn, ObjKey(callee))
		}
	default:
		w.p.Reportf(call.Pos(), "hotloop %s: indirect call cannot be inlined or verified", w.fn)
	}
	return true
}

// typeutilCallee resolves a call's callee object: a *types.Func for
// static calls and method calls, a *types.Builtin for builtins, nil for
// indirect calls through function values.
func typeutilCallee(info *types.Info, call *ast.CallExpr) types.Object {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // package-qualified call
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isAllocConversion reports conversions that copy memory: string <->
// []byte / []rune in either direction.
func isAllocConversion(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
