package analysis

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The compiler-output gate. The AST analyzers prove a hot loop contains
// no allocation *syntax*; only the compiler knows whether the generated
// code kept its promises — whether bounds checks were eliminated and
// whether anything escaped to the heap. Gate recompiles every package
// that declares //bsvet:hotloop functions with
//
//	go tool compile -d=ssa/check_bce/debug=1 -m
//
// and fails on any "Found IsInBounds"/"Found IsSliceInBounds" or
// "escapes to heap"/"moved to heap" diagnostic positioned inside an
// annotated function. `go build -gcflags` is deliberately NOT used: the
// build cache suppresses compiler diagnostics on cache hits, which
// would make the gate silently pass. Invoking the compiler directly
// (with an importcfg generated from `go list -export -deps`) always
// compiles and always reports.
//
// Known-irreducible cases live in an allowlist file with lines of the
// form
//
//	<import path> <func> <bounds|escape> <max count>  # reason
//
// where <func> is the function name, receiver-qualified for methods
// ("scanner.rangeEq"). An entry caps the diagnostics of that kind in
// that function; exceeding the cap, or any unlisted diagnostic, fails
// the gate.

// GateFinding is one compiler diagnostic inside an annotated function.
type GateFinding struct {
	Pkg     string // import path
	Func    string // receiver-qualified function name
	Kind    string // "bounds" or "escape"
	File    string
	Line    int
	Message string // raw compiler message
}

func (g GateFinding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s in //bsvet:hotloop func %s (%s)",
		g.File, g.Line, g.Kind, g.Message, g.Func, g.Pkg)
}

// allowEntry is one parsed allowlist line.
type allowEntry struct {
	pkg, fn, kind string
	max           int
}

// Gate compiles every pattern-matched package that declares hotloop
// functions and returns the findings that exceed the allowlist. The
// returned stale strings describe allowlist entries that no longer match
// anything (they must be pruned, or the list only grows); slack strings
// describe entries whose cap sits above the observed count (the ratchet:
// a cap that is never tightened lets regressions hide under old
// headroom). Both are advisory by default and hard errors under
// `bsvet -gcflags -ratchet`.
func Gate(cfg LoadConfig, allowPath string, patterns ...string) (findings []GateFinding, stale, slack []string, err error) {
	allow, err := readAllowlist(allowPath)
	if err != nil {
		return nil, nil, nil, err
	}

	args := []string{"list", "-e", "-export", "-deps", "-json"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	listed, err := decodeList(out)
	if err != nil {
		return nil, nil, nil, err
	}
	targets, err := listTargets(cfg, patterns)
	if err != nil {
		return nil, nil, nil, err
	}

	// One importcfg covering the whole dependency closure serves every
	// compile; extra entries are harmless.
	tmp, err := os.MkdirTemp("", "bsvet-gate-*")
	if err != nil {
		return nil, nil, nil, err
	}
	defer os.RemoveAll(tmp)
	var cfgBuf bytes.Buffer
	for _, lp := range listed {
		if lp.Export != "" {
			fmt.Fprintf(&cfgBuf, "packagefile %s=%s\n", lp.ImportPath, lp.Export)
		}
	}
	importcfg := filepath.Join(tmp, "importcfg")
	if err := os.WriteFile(importcfg, cfgBuf.Bytes(), 0o644); err != nil {
		return nil, nil, nil, err
	}

	counts := map[allowEntry]int{} // keyed with max=0: observed totals
	for _, lp := range listed {
		if !targets[lp.ImportPath] || lp.Standard || len(lp.CgoFiles) > 0 {
			continue
		}
		fns, files, perr := annotatedRanges(lp)
		if perr != nil {
			return nil, nil, nil, perr
		}
		if len(fns) == 0 {
			continue // nothing to gate in this package
		}
		diags, cerr := compileForDiagnostics(tmp, importcfg, lp, files)
		if cerr != nil {
			return nil, nil, nil, cerr
		}
		for _, d := range diags {
			fn := enclosing(fns, d.file, d.line)
			if fn == "" {
				continue // diagnostic outside any annotated function
			}
			f := GateFinding{Pkg: lp.ImportPath, Func: fn, Kind: d.kind,
				File: d.file, Line: d.line, Message: d.msg}
			key := allowEntry{pkg: lp.ImportPath, fn: fn, kind: d.kind}
			counts[key]++
			if counts[key] > allow[key] {
				findings = append(findings, f)
			}
		}
	}

	for key, max := range allow {
		switch observed := counts[key]; {
		case observed == 0 && max > 0:
			stale = append(stale, fmt.Sprintf("%s %s %s %d", key.pkg, key.fn, key.kind, max))
		case observed > 0 && observed < max:
			slack = append(slack, fmt.Sprintf("%s %s %s %d (observed %d)", key.pkg, key.fn, key.kind, max, observed))
		}
	}
	sort.Strings(stale)
	sort.Strings(slack)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return findings, stale, slack, nil
}

func decodeList(out []byte) ([]*listPackage, error) {
	var listed []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			return listed, nil
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		listed = append(listed, &p)
	}
}

// parsePkgFiles parses a listed package's Go files with comments.
func parsePkgFiles(lp *listPackage) (*token.FileSet, []*ast.File, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	return fset, files, nil
}

// funcRange is one annotated function's span within a file.
type funcRange struct {
	file       string
	start, end int
	name       string
}

// annotatedRanges parses the package's files and returns the line spans
// of its //bsvet:hotloop functions plus the absolute file list.
func annotatedRanges(lp *listPackage) ([]funcRange, []string, error) {
	var ranges []funcRange
	var files []string
	fset, parsed, err := parsePkgFiles(lp)
	if err != nil {
		return nil, nil, err
	}
	for _, f := range parsed {
		path := fset.Position(f.Pos()).Filename
		files = append(files, path)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasPragma(fd.Doc, pragmaHotloop) {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				t := fd.Recv.List[0].Type
				if star, ok := t.(*ast.StarExpr); ok {
					t = star.X
				}
				if id, ok := t.(*ast.Ident); ok {
					name = id.Name + "." + name
				}
			}
			ranges = append(ranges, funcRange{
				file:  path,
				start: fset.Position(fd.Pos()).Line,
				end:   fset.Position(fd.End()).Line,
				name:  name,
			})
		}
	}
	return ranges, files, nil
}

func enclosing(fns []funcRange, file string, line int) string {
	for _, fr := range fns {
		if fr.file == file && fr.start <= line && line <= fr.end {
			return fr.name
		}
	}
	return ""
}

// compilerDiag is one parsed bounds/escape line of compiler output.
type compilerDiag struct {
	file string
	line int
	kind string
	msg  string
}

var (
	diagRE              = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*)$`)
	constStringEscapeRE = regexp.MustCompile(`^".*" escapes to heap$`)
)

// compileForDiagnostics invokes the compiler directly so diagnostics are
// produced unconditionally (no build cache in the way).
func compileForDiagnostics(tmp, importcfg string, lp *listPackage, files []string) ([]compilerDiag, error) {
	obj := filepath.Join(tmp, strings.ReplaceAll(lp.ImportPath, "/", "_")+".o")
	args := []string{"tool", "compile",
		"-p", lp.ImportPath,
		"-importcfg", importcfg,
		"-d=ssa/check_bce/debug=1",
		"-m",
		"-o", obj,
	}
	args = append(args, files...)
	cmd := exec.Command("go", args...)
	cmd.Dir = lp.Dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go tool compile %s: %v\n%s", lp.ImportPath, err, out.String())
	}
	var diags []compilerDiag
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := diagRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[3]
		var kind string
		switch {
		case strings.Contains(msg, "Found IsInBounds") || strings.Contains(msg, "Found IsSliceInBounds"):
			kind = "bounds"
		case strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap"):
			// A quoted string constant "escaping" is a panic argument
			// inlined into the caller: the hotloop analyzer bans every
			// other interface conversion, and the panic path is cold.
			if constStringEscapeRE.MatchString(msg) {
				continue
			}
			kind = "escape"
		default:
			continue
		}
		line, _ := strconv.Atoi(m[2])
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(lp.Dir, file)
		}
		diags = append(diags, compilerDiag{file: file, line: line, kind: kind, msg: msg})
	}
	return diags, nil
}

// readAllowlist parses the committed allowlist; a missing file is an
// empty list.
func readAllowlist(path string) (map[allowEntry]int, error) {
	allow := map[allowEntry]int{}
	if path == "" {
		return allow, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return allow, nil
	}
	if err != nil {
		return nil, err
	}
	for i, line := range strings.Split(string(data), "\n") {
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 4 {
			return nil, fmt.Errorf("%s:%d: want \"<import path> <func> <bounds|escape> <max>\", got %q", path, i+1, line)
		}
		max, err := strconv.Atoi(fields[3])
		if err != nil || max < 1 {
			return nil, fmt.Errorf("%s:%d: bad max count %q", path, i+1, fields[3])
		}
		if fields[2] != "bounds" && fields[2] != "escape" {
			return nil, fmt.Errorf("%s:%d: kind must be bounds or escape, got %q", path, i+1, fields[2])
		}
		allow[allowEntry{pkg: fields[0], fn: fields[1], kind: fields[2]}] = max
	}
	return allow, nil
}
