package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
)

// Support for the go vet unit-checker protocol: cmd/go hands the tool
// one compilation unit at a time (explicit file list, import map, and
// export-data paths), and facts flow between units through .vetx files.
// bsvet's cross-package facts are the four annotation tables of Facts
// (hotloop/sealed/builder/stopper), serialized as a JSON object whose
// values are sorted key arrays. The pre-epochsafe format — a bare JSON
// array of hotloop keys — still reads, so a stale .vetx from an older
// tool build cannot wedge the cache.

// CheckFiles parses and type-checks one explicitly described
// compilation unit. importMap translates source import paths to
// canonical ones (test variants); packageFile maps canonical paths to
// export-data files. The returned package has Analyze set and its own
// annotation facts scanned; merge dependency facts into Facts before
// running analyzers.
func CheckFiles(importPath string, goFiles []string, importMap, packageFile map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	lp := &listPackage{ImportPath: importPath, ImportMap: importMap}
	parsed, err := parseFiles(fset, goFiles)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      parsed,
		Analyze:    true,
		Facts:      ScanAnnotations(strip(importPath), parsed),
	}
	pkg.Types, pkg.Info, pkg.TypeErr = typeCheck(fset, lp, parsed, packageFile)
	return pkg, nil
}

// ScanFilesForFacts is the parse-only path for fact-gathering units
// (VetxOnly): no type information, just the annotation table.
func ScanFilesForFacts(importPath string, goFiles []string) (*Facts, error) {
	fset := token.NewFileSet()
	parsed, err := parseFiles(fset, goFiles)
	if err != nil {
		return nil, err
	}
	return ScanAnnotations(strip(importPath), parsed), nil
}

func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// factsFile is the on-disk .vetx shape.
type factsFile struct {
	Hotloop []string `json:"hotloop"`
	Sealed  []string `json:"sealed"`
	Builder []string `json:"builder"`
	Stopper []string `json:"stopper"`
}

// ReadFactsFile loads one .vetx annotation table; empty or missing
// content yields an empty table. A legacy bare-array file is read as a
// hotloop-only table.
func ReadFactsFile(path string) (*Facts, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	facts := NewFacts()
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return facts, nil
	}
	if trimmed[0] == '[' {
		var keys []string
		if err := json.Unmarshal(trimmed, &keys); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		for _, k := range keys {
			facts.Hotloop[k] = true
		}
		return facts, nil
	}
	var ff factsFile
	if err := json.Unmarshal(trimmed, &ff); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	for _, k := range ff.Hotloop {
		facts.Hotloop[k] = true
	}
	for _, k := range ff.Sealed {
		facts.Sealed[k] = true
	}
	for _, k := range ff.Builder {
		facts.Builder[k] = true
	}
	for _, k := range ff.Stopper {
		facts.Stopper[k] = true
	}
	return facts, nil
}

// WriteFactsFile persists an annotation table as its .vetx form.
func WriteFactsFile(path string, facts *Facts) error {
	ff := factsFile{
		Hotloop: sortedKeys(facts.Hotloop),
		Sealed:  sortedKeys(facts.Sealed),
		Builder: sortedKeys(facts.Builder),
		Stopper: sortedKeys(facts.Stopper),
	}
	data, err := json.Marshal(ff)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
