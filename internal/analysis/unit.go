package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
)

// Support for the go vet unit-checker protocol: cmd/go hands the tool
// one compilation unit at a time (explicit file list, import map, and
// export-data paths), and facts flow between units through .vetx files.
// bsvet's only cross-package fact is the //bsvet:hotloop annotation
// table, serialized as a sorted JSON array of object keys.

// CheckFiles parses and type-checks one explicitly described
// compilation unit. importMap translates source import paths to
// canonical ones (test variants); packageFile maps canonical paths to
// export-data files. The returned package has Analyze set and its own
// annotation facts scanned; merge dependency facts into HotloopFacts
// before running analyzers.
func CheckFiles(importPath string, goFiles []string, importMap, packageFile map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	lp := &listPackage{ImportPath: importPath, ImportMap: importMap}
	parsed, err := parseFiles(fset, goFiles)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		ImportPath:   importPath,
		Fset:         fset,
		Files:        parsed,
		Analyze:      true,
		HotloopFacts: ScanAnnotations(strip(importPath), parsed),
	}
	pkg.Types, pkg.Info, pkg.TypeErr = typeCheck(fset, lp, parsed, packageFile)
	return pkg, nil
}

// ScanFilesForFacts is the parse-only path for fact-gathering units
// (VetxOnly): no type information, just the annotation table.
func ScanFilesForFacts(importPath string, goFiles []string) (map[string]bool, error) {
	fset := token.NewFileSet()
	parsed, err := parseFiles(fset, goFiles)
	if err != nil {
		return nil, err
	}
	return ScanAnnotations(strip(importPath), parsed), nil
}

func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// ReadFactsFile loads one .vetx annotation table; empty or missing
// content yields an empty table.
func ReadFactsFile(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	facts := map[string]bool{}
	if len(data) == 0 {
		return facts, nil
	}
	var keys []string
	if err := json.Unmarshal(data, &keys); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	for _, k := range keys {
		facts[k] = true
	}
	return facts, nil
}

// WriteFactsFile persists an annotation table as its .vetx form.
func WriteFactsFile(path string, facts map[string]bool) error {
	keys := make([]string, 0, len(facts))
	for k := range facts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	data, err := json.Marshal(keys)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}
