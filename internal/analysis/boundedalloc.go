package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// BoundedAllocAnalyzer preserves the corrupt-input defense of the
// persistence readers: a length decoded from untrusted bytes must pass
// through a bound check before it sizes an allocation.
//
// The analysis is per-function and flow-ordered: values produced by
// binary.LittleEndian/BigEndian.UintNN or binary.Read are tainted;
// taint propagates through assignments and arithmetic; any comparison
// of a tainted variable (or a min/max call over it) sanitizes it; a
// make whose length or capacity mentions a still-unsanitized tainted
// variable is reported. Straight-line decode code — the only shape the
// readers use — is handled exactly; the ordering approximation errs
// toward silence for exotic control flow rather than false alarms.
var BoundedAllocAnalyzer = &Analyzer{
	Name: "boundedalloc",
	Doc: "check that allocation sizes decoded from input flow through a " +
		"bound check before make",
	Run: runBoundedAlloc,
}

func runBoundedAlloc(p *Pass) {
	if p.Info == nil {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkBoundedAlloc(p, fd)
			}
		}
	}
}

// event is one taint-relevant site, replayed in source order.
type event struct {
	pos  token.Pos
	kind int // evAssign | evSanitize | evSink
	node ast.Node
}

const (
	evAssign = iota
	evSanitize
	evSink
)

func checkBoundedAlloc(p *Pass, fd *ast.FuncDecl) {
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			events = append(events, event{n.Pos(), evAssign, n})
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				events = append(events, event{n.Pos(), evSanitize, n})
			}
		case *ast.CallExpr:
			if fn, ok := typeutilCallee(p.Info, n).(*types.Builtin); ok {
				switch fn.Name() {
				case "make":
					events = append(events, event{n.Pos(), evSink, n})
				case "min", "max":
					events = append(events, event{n.Pos(), evSanitize, n})
				}
			}
			// binary.Read(r, order, &x) taints x through its pointer arg.
			if isBinaryRead(p.Info, n) && len(n.Args) == 3 {
				events = append(events, event{n.Pos(), evAssign, n})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	tainted := map[types.Object]bool{}
	sanitized := map[types.Object]bool{}
	// hot finds a tainted, unsanitized variable mentioned by e. Subtrees
	// under min/max calls are skipped: min(n, limit) bounds n in place.
	hot := func(e ast.Expr) types.Object {
		var found types.Object
		ast.Inspect(e, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn, ok := typeutilCallee(p.Info, call).(*types.Builtin); ok {
					if fn.Name() == "min" || fn.Name() == "max" {
						return false
					}
				}
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil && tainted[obj] && !sanitized[obj] {
					found = obj
					return false
				}
			}
			return true
		})
		return found
	}

	for _, ev := range events {
		switch ev.kind {
		case evAssign:
			switch n := ev.node.(type) {
			case *ast.AssignStmt:
				dirty := false
				for _, rhs := range n.Rhs {
					if exprDecodesInput(p.Info, rhs) || hot(rhs) != nil {
						dirty = true
					}
				}
				if !dirty {
					continue
				}
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if obj := lhsObj(p.Info, id); obj != nil {
							tainted[obj] = true
							delete(sanitized, obj)
						}
					}
				}
			case *ast.CallExpr: // binary.Read
				if un, ok := ast.Unparen(n.Args[2]).(*ast.UnaryExpr); ok && un.Op == token.AND {
					if id, ok := ast.Unparen(un.X).(*ast.Ident); ok {
						if obj := p.Info.Uses[id]; obj != nil {
							tainted[obj] = true
							delete(sanitized, obj)
						}
					}
				}
			}
		case evSanitize:
			ast.Inspect(ev.node, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil && tainted[obj] {
						sanitized[obj] = true
					}
				}
				return true
			})
		case evSink:
			call := ev.node.(*ast.CallExpr)
			for _, sizeArg := range call.Args[1:] { // args after the type
				if obj := hot(sizeArg); obj != nil {
					p.Reportf(call.Pos(), "make sized by %s, which was decoded from input and never bound-checked — compare it against a limit first", obj.Name())
					break
				}
			}
		}
	}
}

func lhsObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// exprDecodesInput reports whether e contains a call that decodes
// untrusted bytes: a ByteOrder UintNN method or binary.Read.
func exprDecodesInput(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isByteOrderDecode(info, call) || isBinaryRead(info, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isByteOrderDecode matches binary.LittleEndian.Uint16/32/64 and the
// BigEndian forms (method calls on encoding/binary's ByteOrder types).
func isByteOrderDecode(info *types.Info, call *ast.CallExpr) bool {
	fn, _ := typeutilCallee(info, call).(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return false
	}
	switch fn.Name() {
	case "Uint16", "Uint32", "Uint64":
		return true
	}
	return false
}

func isBinaryRead(info *types.Info, call *ast.CallExpr) bool {
	fn, _ := typeutilCallee(info, call).(*types.Func)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" && fn.Name() == "Read"
}
