package analysis

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// The bcegate fixture's deliberate bounds check: p[i] with an
// unconstrained index inside a //bsvet:hotloop function.
const bceFixture = "./testdata/src/bcegate"

func fixtureBoundsLine(t *testing.T) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata/src/bcegate", "bcegate.go"))
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "p[i]") {
			return i + 1
		}
	}
	t.Fatal("fixture lost its p[i] line")
	return 0
}

func TestGateFindsSeededBoundsCheck(t *testing.T) {
	findings, stale, slack, err := Gate(LoadConfig{}, "", bceFixture)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Errorf("stale = %v; want none", stale)
	}
	if len(slack) != 0 {
		t.Errorf("slack = %v; want none", slack)
	}
	if len(findings) == 0 {
		t.Fatal("gate reported no findings on the seeded bounds check")
	}
	wantLine := fixtureBoundsLine(t)
	for _, f := range findings {
		if f.Func != "sumFirst" || f.Kind != "bounds" {
			t.Errorf("finding %v; want func sumFirst kind bounds", f)
		}
		if f.Line != wantLine {
			t.Errorf("finding at line %d; want %d", f.Line, wantLine)
		}
		if !strings.Contains(f.String(), "sumFirst") || !strings.Contains(f.String(), "bcegate.go") {
			t.Errorf("finding text %q does not name function and file", f.String())
		}
	}
}

func TestGateAllowlistCapsAndStaleness(t *testing.T) {
	dir := t.TempDir()
	allow := filepath.Join(dir, "allow")
	content := "# test allowlist\n" +
		"byteslice/internal/analysis/testdata/src/bcegate sumFirst bounds 8\n" +
		"byteslice/internal/analysis/testdata/src/bcegate gone bounds 1\n"
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, stale, slack, err := Gate(LoadConfig{}, allow, bceFixture)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("allowlisted run still reported %v", findings)
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "gone") {
		t.Errorf("stale = %v; want the unused 'gone' entry", stale)
	}
	// The sumFirst cap of 8 sits above the single observed bounds check:
	// the ratchet must surface it with both numbers.
	if len(slack) != 1 || !strings.Contains(slack[0], "sumFirst") || !strings.Contains(slack[0], "8 (observed") {
		t.Errorf("slack = %v; want the over-capped sumFirst entry with cap and observed count", slack)
	}
}

// TestGateTightCapHasNoSlack pins the ratchet's fixed point: a cap equal
// to the observed count is neither a finding nor slack.
func TestGateTightCapHasNoSlack(t *testing.T) {
	// Learn the observed count from an uncapped run first.
	findings, _, _, err := Gate(LoadConfig{}, "", bceFixture)
	if err != nil {
		t.Fatal(err)
	}
	observed := 0
	for _, f := range findings {
		if f.Func == "sumFirst" && f.Kind == "bounds" {
			observed++
		}
	}
	if observed == 0 {
		t.Fatal("fixture produced no sumFirst bounds findings")
	}

	dir := t.TempDir()
	allow := filepath.Join(dir, "allow")
	content := "byteslice/internal/analysis/testdata/src/bcegate sumFirst bounds " +
		strconv.Itoa(observed) + "\n"
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, stale, slack, err := Gate(LoadConfig{}, allow, bceFixture)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 || len(stale) != 0 || len(slack) != 0 {
		t.Errorf("tight cap: findings=%v stale=%v slack=%v; want all empty", findings, stale, slack)
	}
}

func TestGateRejectsMalformedAllowlist(t *testing.T) {
	dir := t.TempDir()
	for _, bad := range []string{
		"pkg fn bounds\n",        // missing count
		"pkg fn bounds zero\n",   // non-numeric count
		"pkg fn bounds 0\n",      // count below 1
		"pkg fn offbyone 3\n",    // unknown kind
		"pkg fn bounds 1 junk\n", // trailing field
	} {
		allow := filepath.Join(dir, "allow")
		if err := os.WriteFile(allow, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readAllowlist(allow); err == nil {
			t.Errorf("readAllowlist accepted %q", bad)
		}
	}
}

func TestGateCleanOnAnnotatedTree(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles the kernel packages")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings, _, _, err := Gate(LoadConfig{Dir: root}, filepath.Join(root, "bsvet.allow"),
		"./internal/kernel", "./internal/core", "./internal/bitvec")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("gate not clean against committed allowlist: %s", f)
	}
}
