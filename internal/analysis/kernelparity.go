package analysis

import (
	"go/types"
	"sort"
	"strings"
)

// KernelParityAnalyzer keeps kernel entry points in lockstep with their
// instrumented twins.
//
// An exported function F that has either an FCtx or an FObs variant must
// have both, and the variants' signatures must be mechanical extensions
// of F's:
//
//	FCtx(ctx context.Context, <F params>) (<F results>, error)
//	FObs(ctx context.Context, <F params>, st *obs.Stage) (<F results>, error)
//
// This is the drift PR 4 caught by hand: an entry point gaining a
// parameter in one variant but not the others, or a new entry point
// shipping without its cancellable/observable forms.
var KernelParityAnalyzer = &Analyzer{
	Name: "kernelparity",
	Doc: "check that kernel entry points with Ctx/Obs variants have both, " +
		"with parameter cores that agree with the base function",
	Run: runKernelParity,
}

func runKernelParity(p *Pass) {
	if p.Pkg == nil {
		return
	}
	scope := p.Pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		fn, ok := scope.Lookup(name).(*types.Func)
		if !ok || !fn.Exported() {
			continue
		}
		if strings.HasSuffix(name, "Ctx") || strings.HasSuffix(name, "Obs") {
			continue // variants are checked from their base
		}
		ctxFn := lookupFunc(scope, name+"Ctx")
		obsFn := lookupFunc(scope, name+"Obs")
		if ctxFn == nil && obsFn == nil {
			continue // plain entry point with no instrumented family
		}
		if ctxFn == nil {
			p.Reportf(fn.Pos(), "kernel entry point %s has an Obs variant but no %sCtx", name, name)
		} else {
			checkVariant(p, fn, ctxFn, "Ctx", 0)
		}
		if obsFn == nil {
			p.Reportf(fn.Pos(), "kernel entry point %s has a Ctx variant but no %sObs", name, name)
		} else {
			checkVariant(p, fn, obsFn, "Obs", 1)
		}
	}
}

func lookupFunc(scope *types.Scope, name string) *types.Func {
	fn, _ := scope.Lookup(name).(*types.Func)
	return fn
}

// checkVariant verifies one variant against the base: first parameter
// context.Context, then the base's parameters verbatim, plus (for Obs)
// trailing extras — and the base's results followed by a final error.
func checkVariant(p *Pass, base, variant *types.Func, kind string, trailingExtras int) {
	bSig := base.Type().(*types.Signature)
	vSig := variant.Type().(*types.Signature)
	vName := variant.Name()

	wantParams := bSig.Params().Len() + 1 + trailingExtras
	if vSig.Params().Len() != wantParams {
		p.Reportf(variant.Pos(), "%s: %s variant of %s must take (ctx, %d base params%s), got %d params",
			vName, kind, base.Name(), bSig.Params().Len(), extraDesc(trailingExtras), vSig.Params().Len())
		return
	}
	if !isContext(vSig.Params().At(0).Type()) {
		p.Reportf(variant.Pos(), "%s: first parameter must be context.Context, got %s",
			vName, vSig.Params().At(0).Type())
	}
	for i := 0; i < bSig.Params().Len(); i++ {
		want := bSig.Params().At(i).Type()
		got := vSig.Params().At(i + 1).Type()
		if !types.Identical(want, got) {
			p.Reportf(variant.Pos(), "%s: parameter %d is %s, but %s declares %s — variant core drifted from base",
				vName, i+1, got, base.Name(), want)
		}
	}

	wantResults := bSig.Results().Len() + 1
	if vSig.Results().Len() != wantResults {
		p.Reportf(variant.Pos(), "%s: must return %s's %d results plus a final error, got %d results",
			vName, base.Name(), bSig.Results().Len(), vSig.Results().Len())
		return
	}
	for i := 0; i < bSig.Results().Len(); i++ {
		want := bSig.Results().At(i).Type()
		got := vSig.Results().At(i).Type()
		if !types.Identical(want, got) {
			p.Reportf(variant.Pos(), "%s: result %d is %s, but %s declares %s — variant core drifted from base",
				vName, i, got, base.Name(), want)
		}
	}
	last := vSig.Results().At(vSig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		p.Reportf(variant.Pos(), "%s: final result must be error, got %s", vName, last)
	}
}

func extraDesc(n int) string {
	if n > 0 {
		return ", stage"
	}
	return ""
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
