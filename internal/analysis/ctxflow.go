package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlowAnalyzer enforces context plumbing in non-test library code
// (package main legitimately mints the process root context and is
// exempt):
//
//   - context.Background() and context.TODO() sever cancellation: a
//     caller's deadline or disconnect can no longer reach the work
//     below. Library functions that genuinely need a root context
//     (compatibility wrappers, build-time code, detached maintenance
//     tasks) declare it with //bsvet:rootctx <reason> in their doc
//     comment; everything else is a diagnostic. Minting a fresh root
//     while a ctx parameter is in scope gets a sharper message — the
//     fix is almost always to forward it.
//   - An exported function that accepts a context.Context must use it.
//     An ignored ctx parameter advertises cancellation the function
//     does not deliver; name it _ if it exists only to satisfy an
//     interface.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc: "check that library code forwards context.Context instead of minting " +
		"unannotated roots via context.Background/TODO",
	Run: runCtxFlow,
}

func runCtxFlow(p *Pass) {
	if p.Pkg.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFlow(p, fd)
		}
	}
}

func checkCtxFlow(p *Pass, fd *ast.FuncDecl) {
	rooted, malformed := rootctxState(fd)
	if malformed {
		p.Reportf(fd.Pos(), "malformed //bsvet:rootctx: want \"//bsvet:rootctx <reason>\"")
	}
	ctxParams := contextParams(p, fd)

	if !rooted {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, _ := typeutilCallee(p.Info, call).(*types.Func)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() != "Background" && fn.Name() != "TODO" {
				return true
			}
			if len(ctxParams) > 0 {
				p.Reportf(call.Pos(), "context.%s() severs cancellation while %s already receives a ctx parameter; forward it (or annotate //bsvet:rootctx with a reason)", fn.Name(), fd.Name.Name)
			} else {
				p.Reportf(call.Pos(), "context.%s() in library code needs a //bsvet:rootctx annotation (callers cannot cancel work below this point)", fn.Name())
			}
			return true
		})
	}

	// Unused-ctx check: exported entry points only (methods count when
	// the receiver type is exported too).
	if !exportedEntry(fd) {
		return
	}
	for _, obj := range ctxParams {
		if paramUsed(p, fd.Body, obj) {
			continue
		}
		p.Reportf(obj.Pos(), "exported %s accepts ctx but never forwards it; plumb it through (or name it _ if the signature is fixed)", fd.Name.Name)
	}
}

// rootctxState parses the //bsvet:rootctx pragma off fd's doc comment:
// has reports its presence, malformed a pragma with no reason. A
// malformed pragma still roots the function — its own diagnostic is the
// signal, not a cascade of Background findings below it.
func rootctxState(fd *ast.FuncDecl) (has, malformed bool) {
	if fd.Doc == nil {
		return false, false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text != pragmaRootctx && !strings.HasPrefix(text, pragmaRootctx+" ") {
			continue
		}
		if len(strings.Fields(strings.TrimPrefix(text, pragmaRootctx))) == 0 {
			return true, true
		}
		return true, false
	}
	return false, false
}

// contextParams returns the named, non-blank context.Context parameter
// objects of fd.
func contextParams(p *Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if !isContextType(p.Info.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := p.Info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// exportedEntry reports whether fd is an exported entry point: an
// exported function, or an exported method on an exported type.
func exportedEntry(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return true
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

func paramUsed(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
