// Package analysis is bsvet's static-analysis suite: a small, stdlib-only
// re-implementation of the golang.org/x/tools/go/analysis driver model
// (this module is dependency-free by policy, so the framework is grown
// here rather than imported) plus the eight analyzers that mechanise the
// kernel's hand-checked performance, safety and lifecycle invariants:
//
//   - hotloop: functions annotated //bsvet:hotloop must stay tight — no
//     heap allocations, interface conversions, defers, closures, or calls
//     to non-annotated/non-intrinsic functions.
//   - kernelparity: an exported kernel entry point with a *Ctx or *Obs
//     variant must have both, and their parameter cores must agree.
//   - atomicfield: a struct field updated through sync/atomic must never
//     be read or written plainly outside its constructor, and 64-bit
//     fields must be alignment-safe on 32-bit platforms.
//   - boundedalloc: allocation sizes decoded from untrusted input must
//     flow through a bound check before make/io.ReadFull.
//   - epochsafe: sealed types (annotated //bsvet:sealed, or published
//     through an atomic.Pointer epoch swap) may only be written inside
//     //bsvet:builder functions — published epochs are read-only.
//   - goroutinelife: every go statement in non-test library code must
//     have a visible stop path, and goroutine closures must not capture
//     loop variables by reference.
//   - ctxflow: context.Background()/TODO() in library code needs a
//     //bsvet:rootctx annotation, and an exported function that accepts
//     a context.Context must forward it.
//   - errsentinel: in packages that declare Err* sentinels, errors on
//     exported paths must wrap with %w, and formatting an error through
//     %v/%s/Sprintf (dropping its identity) is flagged.
//
// The compiler-output gate (gate.go) complements the AST analyzers by
// compiling //bsvet:hotloop packages with -d=ssa/check_bce and -m and
// failing on bounds checks or heap escapes inside annotated functions.
//
// # Annotation grammar
//
// Five pragmas, all ordinary line comments:
//
//	//bsvet:hotloop
//	    In the doc comment of a function or method declaration. Marks the
//	    function as a hot loop: the hotloop analyzer enforces its body and
//	    the BCE gate watches its compiled form. Annotated functions may
//	    call each other across packages.
//
//	//bsvet:sealed
//	    In the doc comment of a type declaration. Marks the type as
//	    publication-immutable: epochsafe reports any store through its
//	    fields (or elements reached through its fields) outside a
//	    //bsvet:builder function. Element types of atomic.Pointer[T]
//	    fields are sealed implicitly — they are exactly the values an
//	    epoch swap publishes.
//
//	//bsvet:builder
//	    In the doc comment of a function or method declaration. Marks the
//	    function as a constructor of not-yet-published sealed values;
//	    epochsafe permits its stores. The fact crosses packages.
//
//	//bsvet:rootctx <reason>
//	    In the doc comment of a function declaration. Declares that the
//	    function legitimately mints a root context (program entry point,
//	    compatibility wrapper, detached background task); ctxflow then
//	    accepts its context.Background()/TODO() calls. The reason is
//	    mandatory.
//
//	//bsvet:ignore <analyzer> <reason>
//	    Suppresses every diagnostic the named analyzer would report on
//	    the pragma's own source line or the line directly below it (so it
//	    works both as a trailing comment and on a line of its own). The
//	    reason is mandatory; bare suppressions are themselves reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore pragmas.
	Name string
	// Doc is the one-paragraph description shown by bsvet -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		HotloopAnalyzer, KernelParityAnalyzer, AtomicFieldAnalyzer, BoundedAllocAnalyzer,
		EpochSafeAnalyzer, GoroutineLifeAnalyzer, CtxFlowAnalyzer, ErrSentinelAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list ("hotloop,atomicfield").
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Facts holds the cross-package annotation facts visible to this pass
	// — the analyzed package, its module-local dependencies, and in
	// vettool mode the facts recovered from dependency .vetx files.
	Facts *Facts

	ignores []ignoreDirective
	diags   *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an ignore pragma covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, ig := range p.ignores {
		if ig.analyzer != p.Analyzer.Name {
			continue
		}
		if ig.file == position.Filename && (ig.line == position.Line || ig.line+1 == position.Line) {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //bsvet:ignore comment; it suppresses
// the named analyzer on its own line and the line below.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
}

const (
	pragmaHotloop = "//bsvet:hotloop"
	pragmaIgnore  = "//bsvet:ignore"
	pragmaSealed  = "//bsvet:sealed"
	pragmaBuilder = "//bsvet:builder"
	pragmaRootctx = "//bsvet:rootctx"
)

// parseIgnores collects the ignore pragmas of a file set. Malformed
// pragmas (missing analyzer or reason) are reported as diagnostics under
// the pseudo-analyzer "bsvet" so they cannot silently suppress nothing.
func parseIgnores(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, pragmaIgnore) {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, pragmaIgnore))
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "bsvet",
						Message:  "malformed //bsvet:ignore: want \"//bsvet:ignore <analyzer> <reason>\"",
					})
					continue
				}
				out = append(out, ignoreDirective{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
				})
			}
		}
	}
	return out
}

// hasPragma reports whether the declaration's doc group carries pragma.
func hasPragma(doc *ast.CommentGroup, pragma string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == pragma || strings.HasPrefix(text, pragma+" ") {
			return true
		}
	}
	return false
}

// ObjKey names a function object the way the hotloop fact tables key it:
// "pkgpath.Func" for package functions, "pkgpath.Recv.Method" for methods
// (pointer receivers stripped).
func ObjKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name() // builtins/universe — never annotated
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// astFuncKey is ObjKey computed syntactically from a FuncDecl, for
// annotation scans that run without type information.
func astFuncKey(pkgPath string, d *ast.FuncDecl) string {
	if d.Recv != nil && len(d.Recv.List) == 1 {
		t := d.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		// Strip type parameter instantiations (generic receivers).
		if idx, ok := t.(*ast.IndexExpr); ok {
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return pkgPath + "." + id.Name + "." + d.Name.Name
		}
	}
	return pkgPath + "." + d.Name.Name
}

// RunAnalyzers applies the analyzers to every target package and returns
// the deduplicated, position-sorted diagnostics.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	// Build the cross-package fact table from every loaded module-local
	// package (targets and dependencies alike), then merge any externally
	// supplied facts (vettool mode).
	facts := NewFacts()
	for _, p := range pkgs {
		facts.Merge(p.Facts)
	}
	var diags []Diagnostic
	for _, p := range pkgs {
		if !p.Analyze {
			continue
		}
		ignores := parseIgnores(p.Fset, p.Files, &diags)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     p.Fset,
				Files:    p.Files,
				Pkg:      p.Types,
				Info:     p.Info,
				Facts:    facts,
				ignores:  ignores,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	return dedupe(diags)
}

// dedupe removes duplicate findings (a package analyzed both plain and
// test-augmented reports its non-test files twice) and sorts by position.
func dedupe(diags []Diagnostic) []Diagnostic {
	seen := map[string]bool{}
	out := diags[:0]
	for _, d := range diags {
		k := d.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out
}
