package plan

import (
	"math"
	"strings"
	"testing"
)

func q(segments int) Query {
	return Query{Rows: segments * 32, Segments: segments, PredicateFirstOK: true, MaxWorkers: 8}
}

func TestOrderBySelectivity(t *testing.T) {
	preds := []Pred{
		{Col: "a", Slices: 2, Sel: 0.5},
		{Col: "b", Slices: 2, Sel: 0.01},
		{Col: "c", Slices: 2, Sel: 0.9},
	}
	d := Plan(q(1024), preds)
	if got := []int{d.Order[0], d.Order[1], d.Order[2]}; got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("conjunction order = %v, want most selective first [1 0 2]", d.Order)
	}

	dis := q(1024)
	dis.Disjunct = true
	d = Plan(dis, preds)
	if d.Order[0] != 2 || d.Order[2] != 1 {
		t.Fatalf("disjunction order = %v, want least selective first [2 0 1]", d.Order)
	}
}

func TestOrderTieBrokenByZonePrune(t *testing.T) {
	preds := []Pred{
		{Col: "plain", Slices: 2, Sel: 0.10},
		{Col: "zoned", Slices: 2, Sel: 0.11, HasZoneMap: true, ZonePrune: 0.95},
	}
	d := Plan(q(1024), preds)
	if d.Order[0] != 1 {
		t.Fatalf("order = %v: equal selectivities should prefer the zone-pruned column", d.Order)
	}
}

func TestSinglePredicateIsColumnFirst(t *testing.T) {
	d := Plan(q(1024), []Pred{{Col: "a", Slices: 2, Sel: 0.5}})
	if d.Strategy != ColumnFirst {
		t.Fatalf("single predicate chose %v", d.Strategy)
	}
	if math.IsNaN(d.Cost) || d.Cost <= 0 {
		t.Fatalf("cost = %v", d.Cost)
	}
}

func TestPredicateFirstRequiresEligibility(t *testing.T) {
	preds := []Pred{
		{Col: "a", Slices: 2, Sel: 0.5},
		{Col: "b", Slices: 2, Sel: 0.5},
	}
	ineligible := q(1024)
	ineligible.PredicateFirstOK = false
	d := Plan(ineligible, preds)
	if !math.IsNaN(d.CostPredicateFirst) {
		t.Fatalf("ineligible predicate-first should cost NaN, got %v", d.CostPredicateFirst)
	}
	if d.Strategy == PredicateFirst {
		t.Fatal("ineligible query must not choose predicate-first")
	}
}

func TestSelectiveDriverFavoursPipelining(t *testing.T) {
	// A 0.1% driver predicate settles nearly every segment; the pipeline
	// should beat independent baseline scans over wide trailing columns.
	preds := []Pred{
		{Col: "sel", Slices: 1, Sel: 0.001},
		{Col: "wide1", Slices: 4, Sel: 0.9},
		{Col: "wide2", Slices: 4, Sel: 0.9},
	}
	d := Plan(q(32768), preds)
	if d.CostColumnFirst >= d.CostBaseline {
		t.Fatalf("column-first %v should beat baseline %v with a highly selective driver",
			d.CostColumnFirst, d.CostBaseline)
	}
}

func TestZonePruneCutsCost(t *testing.T) {
	unzoned := Plan(q(4096), []Pred{{Col: "a", Slices: 2, Sel: 0.01}})
	zoned := Plan(q(4096), []Pred{{Col: "a", Slices: 2, Sel: 0.01, HasZoneMap: true, ZonePrune: 0.98}})
	if zoned.Cost >= unzoned.Cost {
		t.Fatalf("zoned cost %v should be below unzoned %v", zoned.Cost, unzoned.Cost)
	}
}

func TestChooseWorkers(t *testing.T) {
	pinned := q(1 << 15)
	pinned.Workers = 3
	if d := Plan(pinned, []Pred{{Col: "a", Slices: 4, Sel: 0.5}}); d.Workers != 3 {
		t.Fatalf("pinned workers = %d, want 3", d.Workers)
	}
	if d := Plan(q(4), []Pred{{Col: "a", Slices: 4, Sel: 0.5}}); d.Workers != 1 {
		t.Fatalf("tiny scan workers = %d, want 1 (not worth a goroutine)", d.Workers)
	}
	big := Plan(q(1<<20), []Pred{{Col: "a", Slices: 4, Sel: 0.5}})
	if big.Workers < 2 {
		t.Fatalf("1M-segment scan workers = %d, want a pool", big.Workers)
	}
	if big.Workers > 8 {
		t.Fatalf("workers = %d exceed MaxWorkers", big.Workers)
	}
}

func TestMatchAllPredicateIsFree(t *testing.T) {
	with := Plan(q(4096), []Pred{
		{Col: "a", Slices: 2, Sel: 0.3},
		{Col: "null-only", Slices: 0, Sel: 1},
	})
	alone := Plan(q(4096), []Pred{{Col: "a", Slices: 2, Sel: 0.3}})
	// The pseudo predicate adds bookkeeping (a gate/combine) but no scan.
	if with.Cost > alone.Cost*1.5 {
		t.Fatalf("match-all pseudo predicate should be nearly free: %v vs %v", with.Cost, alone.Cost)
	}
}

func TestExplainDeterministicAndComplete(t *testing.T) {
	preds := []Pred{
		{Col: "price", Slices: 2, Sel: 0.05, HasZoneMap: true, ZonePrune: 0.9},
		{Col: "qty", Slices: 1, Sel: 0.4},
	}
	d1 := Plan(q(2048), preds)
	d2 := Plan(q(2048), preds)
	if d1.Explain() != d2.Explain() {
		t.Fatal("Explain must be deterministic")
	}
	out := d1.Explain()
	for _, want := range []string{
		"plan: 2 predicate(s)", "conjunction",
		"price(sel=0.050, zone=0.90)", "qty(sel=0.400)",
		"strategy:", "column-first", "baseline", "workers:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
}
