package plan

import (
	"math"
	"strings"
	"testing"
)

func q(segments int) Query {
	return Query{Rows: segments * 32, Segments: segments, PredicateFirstOK: true, MaxWorkers: 8}
}

func TestOrderBySelectivity(t *testing.T) {
	preds := []Pred{
		{Col: "a", Slices: 2, Sel: 0.5},
		{Col: "b", Slices: 2, Sel: 0.01},
		{Col: "c", Slices: 2, Sel: 0.9},
	}
	d := Plan(q(1024), preds)
	if got := []int{d.Order[0], d.Order[1], d.Order[2]}; got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("conjunction order = %v, want most selective first [1 0 2]", d.Order)
	}

	dis := q(1024)
	dis.Disjunct = true
	d = Plan(dis, preds)
	if d.Order[0] != 2 || d.Order[2] != 1 {
		t.Fatalf("disjunction order = %v, want least selective first [2 0 1]", d.Order)
	}
}

func TestOrderTieBrokenByZonePrune(t *testing.T) {
	preds := []Pred{
		{Col: "plain", Slices: 2, Sel: 0.10},
		{Col: "zoned", Slices: 2, Sel: 0.11, HasZoneMap: true, ZonePrune: 0.95},
	}
	d := Plan(q(1024), preds)
	if d.Order[0] != 1 {
		t.Fatalf("order = %v: equal selectivities should prefer the zone-pruned column", d.Order)
	}
}

func TestSinglePredicateIsColumnFirst(t *testing.T) {
	d := Plan(q(1024), []Pred{{Col: "a", Slices: 2, Sel: 0.5}})
	if d.Strategy != ColumnFirst {
		t.Fatalf("single predicate chose %v", d.Strategy)
	}
	if math.IsNaN(d.Cost) || d.Cost <= 0 {
		t.Fatalf("cost = %v", d.Cost)
	}
}

func TestPredicateFirstRequiresEligibility(t *testing.T) {
	preds := []Pred{
		{Col: "a", Slices: 2, Sel: 0.5},
		{Col: "b", Slices: 2, Sel: 0.5},
	}
	ineligible := q(1024)
	ineligible.PredicateFirstOK = false
	d := Plan(ineligible, preds)
	if !math.IsNaN(d.CostPredicateFirst) {
		t.Fatalf("ineligible predicate-first should cost NaN, got %v", d.CostPredicateFirst)
	}
	if d.Strategy == PredicateFirst {
		t.Fatal("ineligible query must not choose predicate-first")
	}
}

func TestSelectiveDriverFavoursPipelining(t *testing.T) {
	// A 0.1% driver predicate settles nearly every segment; the pipeline
	// should beat independent baseline scans over wide trailing columns.
	preds := []Pred{
		{Col: "sel", Slices: 1, Sel: 0.001},
		{Col: "wide1", Slices: 4, Sel: 0.9},
		{Col: "wide2", Slices: 4, Sel: 0.9},
	}
	d := Plan(q(32768), preds)
	if d.CostColumnFirst >= d.CostBaseline {
		t.Fatalf("column-first %v should beat baseline %v with a highly selective driver",
			d.CostColumnFirst, d.CostBaseline)
	}
}

func TestZonePruneCutsCost(t *testing.T) {
	unzoned := Plan(q(4096), []Pred{{Col: "a", Slices: 2, Sel: 0.01}})
	zoned := Plan(q(4096), []Pred{{Col: "a", Slices: 2, Sel: 0.01, HasZoneMap: true, ZonePrune: 0.98}})
	if zoned.Cost >= unzoned.Cost {
		t.Fatalf("zoned cost %v should be below unzoned %v", zoned.Cost, unzoned.Cost)
	}
}

func TestChooseWorkers(t *testing.T) {
	pinned := q(1 << 15)
	pinned.Workers = 3
	if d := Plan(pinned, []Pred{{Col: "a", Slices: 4, Sel: 0.5}}); d.Workers != 3 {
		t.Fatalf("pinned workers = %d, want 3", d.Workers)
	}
	if d := Plan(q(4), []Pred{{Col: "a", Slices: 4, Sel: 0.5}}); d.Workers != 1 {
		t.Fatalf("tiny scan workers = %d, want 1 (not worth a goroutine)", d.Workers)
	}
	big := Plan(q(1<<20), []Pred{{Col: "a", Slices: 4, Sel: 0.5}})
	if big.Workers < 2 {
		t.Fatalf("1M-segment scan workers = %d, want a pool", big.Workers)
	}
	if big.Workers > 8 {
		t.Fatalf("workers = %d exceed MaxWorkers", big.Workers)
	}
}

func TestMatchAllPredicateIsFree(t *testing.T) {
	with := Plan(q(4096), []Pred{
		{Col: "a", Slices: 2, Sel: 0.3},
		{Col: "null-only", Slices: 0, Sel: 1},
	})
	alone := Plan(q(4096), []Pred{{Col: "a", Slices: 2, Sel: 0.3}})
	// The pseudo predicate adds bookkeeping (a gate/combine) but no scan.
	if with.Cost > alone.Cost*1.5 {
		t.Fatalf("match-all pseudo predicate should be nearly free: %v vs %v", with.Cost, alone.Cost)
	}
}

// TestExplainRendersNaNAsNA pins the NaN sentinel's rendering: an
// ineligible predicate-first cost must print as "n/a", never "NaN".
func TestExplainRendersNaNAsNA(t *testing.T) {
	ineligible := q(1024)
	ineligible.PredicateFirstOK = false
	d := Plan(ineligible, []Pred{
		{Col: "a", Slices: 2, Sel: 0.5},
		{Col: "b", Slices: 2, Sel: 0.5},
	})
	if !math.IsNaN(d.CostPredicateFirst) {
		t.Fatalf("setup: expected NaN predicate-first cost, got %v", d.CostPredicateFirst)
	}
	out := d.Explain()
	if !strings.Contains(out, "predicate-first n/a") {
		t.Fatalf("Explain should render the NaN sentinel as n/a:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("Explain leaked a raw NaN:\n%s", out)
	}
}

func TestCompressedWins(t *testing.T) {
	// Uniform random data: no block pruning, no uniform blocks, ~k/8+0.25
	// bytes per row — compression moves as many bytes as raw and adds
	// decode work, so it must lose at every width.
	for _, slices := range []int{1, 2, 3, 4} {
		if CompressedWins(slices, float64(slices)+0.25, 0, 0) {
			t.Fatalf("incompressible %d-slice column should stay raw", slices)
		}
	}
	// Clustered data: tiny per-block spans prune nearly every block.
	if !CompressedWins(2, 2.25, 0.98, 0) {
		t.Fatal("block-prunable column should compress")
	}
	// Low-entropy wide column: every block on the 1-byte direct path
	// moves ~1.25 bytes per row instead of 3 — wins on bytes alone.
	if !CompressedWins(3, 1.25, 0, 1) {
		t.Fatal("uniform-1-byte wide column should compress")
	}
	if CompressedWins(0, 1, 1, 1) {
		t.Fatal("match-all pseudo predicate cannot compress")
	}
}

func TestCompressedCostAndExplain(t *testing.T) {
	comp := Pred{Col: "c", Slices: 2, Sel: 0.1, Compressed: true,
		CompBytesPerRow: 1.5, BlockPrune: 0.95, Uniform1: 0.5}
	raw := Pred{Col: "c", Slices: 2, Sel: 0.1}
	dc := Plan(q(4096), []Pred{comp})
	dr := Plan(q(4096), []Pred{raw})
	if dc.Cost >= dr.Cost {
		t.Fatalf("pruned compressed scan %v should cost below raw %v", dc.Cost, dr.Cost)
	}
	if out := dc.Explain(); !strings.Contains(out, "compressed 1.50B/row") {
		t.Fatalf("Explain missing the compression annotation:\n%s", out)
	}
	if out := dr.Explain(); strings.Contains(out, "compressed") {
		t.Fatalf("raw Explain must not mention compression:\n%s", out)
	}
}

func TestExplainDeterministicAndComplete(t *testing.T) {
	preds := []Pred{
		{Col: "price", Slices: 2, Sel: 0.05, HasZoneMap: true, ZonePrune: 0.9},
		{Col: "qty", Slices: 1, Sel: 0.4},
	}
	d1 := Plan(q(2048), preds)
	d2 := Plan(q(2048), preds)
	if d1.Explain() != d2.Explain() {
		t.Fatal("Explain must be deterministic")
	}
	out := d1.Explain()
	for _, want := range []string{
		"plan: 2 predicate(s)", "conjunction",
		"price(sel=0.050, zone=0.90)", "qty(sel=0.400)",
		"strategy:", "column-first", "baseline", "workers:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
}
