// Package plan is the cost-based planner for the native (unprofiled)
// execution path. Given per-predicate statistics — histogram selectivity
// estimates, zone-map prune rates, code widths — it chooses the physical
// shape of a multi-predicate query: the conjunct order (subsuming the
// facade's OrderBySelectivity sort), the evaluation strategy (column-first
// pipelining, native predicate-first, or independent baseline scans), and
// the worker-pool size. The cost model is calibrated against the measured
// per-kernel throughput of the SWAR kernels (BENCH_scan.json; see the
// constants below), not the paper's modelled cycle counts: the planner
// optimises wall clock, the profile engine reproduces the paper.
//
// Decisions carry an Explain rendering so tests, bsinspect and callers of
// Result.Explain can assert on what the planner chose and why.
package plan

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Strategy is the planner's choice of physical evaluation shape.
type Strategy int

// Strategies, mirroring the facade's (the facade maps them back).
const (
	// ColumnFirst pipelines each predicate's condensed result into the
	// next column's scan (Algorithm 2, the paper's recommendation).
	ColumnFirst Strategy = iota
	// PredicateFirst evaluates all predicates per 32-code segment with the
	// native multi-scan kernel, materialising no intermediate vectors.
	PredicateFirst
	// Baseline scans every predicate independently and combines bit
	// vectors; it is also the fallback when pipelining cannot apply.
	Baseline
)

// String names the strategy as Explain prints it.
func (s Strategy) String() string {
	switch s {
	case ColumnFirst:
		return "column-first"
	case PredicateFirst:
		return "predicate-first"
	case Baseline:
		return "baseline"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Pred is one conjunct's planning statistics.
type Pred struct {
	// Col is the column name, used only for Explain.
	Col string
	// Slices is the column's byte-slice count ⌈k/8⌉ (0 for a match-all
	// pseudo predicate, which costs nothing to evaluate).
	Slices int
	// Sel is the histogram estimate of the predicate's selectivity in
	// [0, 1].
	Sel float64
	// ZonePrune is the estimated fraction of segments the column's zone
	// map decides outright for this predicate (0 without a zone map).
	ZonePrune float64
	// HasZoneMap reports whether the column carries a zone map at all.
	HasZoneMap bool
	// Compressed marks a column stored in the compressed ByteSlice layout
	// (internal/compress); its scans decode 512-code blocks on the fly.
	Compressed bool
	// CompBytesPerRow is the compressed column's bytes moved per row
	// (control + data streams).
	CompBytesPerRow float64
	// BlockPrune is the estimated fraction of 512-code blocks the exact
	// block bounds decide outright.
	BlockPrune float64
	// Uniform1 is the fraction of blocks on the no-decode direct-compare
	// path (frame of reference, all values one byte).
	Uniform1 float64
}

// Query describes the whole conjunction or disjunction being planned.
type Query struct {
	// Rows and Segments size the table.
	Rows, Segments int
	// Disjunct is true for OR queries.
	Disjunct bool
	// PredicateFirstOK reports whether the native predicate-first kernel
	// can run: every column is ByteSlice, none is nullable, and no
	// conjunct is a match-all pseudo predicate.
	PredicateFirstOK bool
	// Workers pins the worker count when > 0 (WithParallelism); 0 lets the
	// planner size the pool.
	Workers int
	// MaxWorkers bounds the auto-sized pool (runtime.NumCPU at the call
	// site).
	MaxWorkers int
}

// Cost-model constants, in nanoseconds, calibrated from BENCH_scan.json on
// the development machine (1M-row serial native scans: 5.6 ns/segment at
// one byte slice, ~2.8 ns per additional slice amortised over early
// stopping on uniform data). Absolute accuracy is unnecessary — only the
// ratios steer the choices — but keeping real units makes Explain legible.
const (
	nsSegFirst    = 5.6  // first byte slice of a monolithic scan, per segment
	nsSegSlice    = 2.8  // each additional byte slice, amortised
	nsSegDispatch = 4.0  // per-segment dispatch penalty of the generic kernels
	nsZoneTest    = 0.6  // zone-map min/max test, per segment
	nsGate        = 0.5  // pipelined mask-word read + combine, per segment
	nsCombine     = 0.3  // bit-vector AND/OR word ops, per segment per pass
	nsWorkerSpawn = 8000 // goroutine spawn/join, per worker

	// Bytes-moved model for compressed columns. A memory-bandwidth-bound
	// scan's floor is the bytes it streams: nsPerByte prices one column
	// byte at the measured DRAM bandwidth (~9 GB/s effective per core on
	// the calibration machine), and nsSegDecode prices unpacking one
	// 32-code segment from the control-byte walk into the SWAR scratch
	// planes.
	nsPerByte   = 0.11
	nsSegDecode = 7.0
	// blockSegments is the 512-code compressed block in segments.
	blockSegments = 16
)

// Decision is the planner's output.
type Decision struct {
	Strategy Strategy
	// Order is the chosen permutation of the input predicates (indices
	// into the Plan call's preds slice).
	Order []int
	// Workers is the chosen worker-pool size (the pinned count when the
	// query pinned one).
	Workers int
	// Cost is the estimated serial cost in ns of the chosen strategy;
	// CostColumnFirst/CostPredicateFirst/CostBaseline record the
	// candidates (NaN when a strategy was ineligible).
	Cost               float64
	CostColumnFirst    float64
	CostPredicateFirst float64
	CostBaseline       float64

	q     Query
	preds []Pred // in chosen order
}

// rawSegScanCost is the raw monolithic per-segment scan formula for a
// column of the given byte-slice count.
func rawSegScanCost(slices int) float64 {
	return nsSegFirst + nsSegSlice*float64(slices-1)
}

// segScanCost is the per-segment cost of scanning one predicate with the
// monolithic single-column kernel.
func segScanCost(p Pred) float64 {
	if p.Slices == 0 {
		return 0 // match-all pseudo predicate: no scan at all
	}
	if p.Compressed {
		return compressedSegCost(p)
	}
	return rawSegScanCost(p.Slices)
}

// compressedSegCost is the per-segment cost of the fused decode→compare
// scan over a compressed column: the amortised exact-bounds test per
// block, and for undecided blocks either the direct one-byte SWAR compare
// (uniform blocks, no decode) or the control-byte decode into scratch
// planes plus the raw compare body — in both cases paying the bytes-moved
// bandwidth term for the compressed streams instead of the raw slices.
func compressedSegCost(p Pred) float64 {
	if p.Slices == 0 {
		return 0
	}
	decode := p.Uniform1*(nsSegFirst+nsSegDispatch) +
		(1-p.Uniform1)*(nsSegDecode+rawSegScanCost(p.Slices)+nsSegDispatch) +
		nsPerByte*p.CompBytesPerRow*32
	return nsZoneTest/blockSegments + (1-p.BlockPrune)*decode
}

// CompressedWins is the build-time compression decision: true when the
// compressed fused scan prices below the raw monolithic scan with its
// bytes-moved floor. internal/compress consults it per column.
func CompressedWins(slices int, compBytesPerRow, blockPrune, uniform1 float64) bool {
	if slices <= 0 {
		return false
	}
	comp := compressedSegCost(Pred{
		Slices:          slices,
		Compressed:      true,
		CompBytesPerRow: compBytesPerRow,
		BlockPrune:      blockPrune,
		Uniform1:        uniform1,
	})
	raw := rawSegScanCost(slices) + nsPerByte*float64(slices)*32
	return comp < raw
}

// Per-row layout constants for the workload-driven ByteSlice-vs-HBP
// choice, measured on the calibration machine (internal/kernel
// BenchmarkLookupMany / BenchmarkScanHBP, 1M rows, random row lists):
// a ByteSlice point lookup stitches one byte — one cache line — per byte
// slice, an HBP lookup is a single 8-byte bank load whatever the width,
// and the HBP scan pays word-at-a-time guard arithmetic with no early
// stopping or zone pruning.
const (
	nsLookupSlice = 2.9 // ByteSlice lookup: per byte slice, per row
	nsLookupBank  = 4.0 // HBP lookup: one bank load + extract, per row
	nsHBPScanRow  = 3.3 // HBP scan, per row (≈10 ns per 64-bit bank)
)

// LayoutDecision prices a column's observed workload under both storage
// layouts. The rows counters come from the column's obs.ColumnWorkload;
// the costs are the modelled nanoseconds to replay that workload in each
// layout.
type LayoutDecision struct {
	// ScanRows and LookupRows are the observed workload.
	ScanRows, LookupRows int64
	// ByteSliceNs and HBPNs are the modelled replay costs.
	ByteSliceNs, HBPNs float64
	// HBP is true when the horizontal layout prices below ByteSlice.
	HBP bool
}

// LayoutFor prices a column's observed scan/lookup workload under the
// ByteSlice and HBP layouts: scans cost the monolithic SWAR scan
// (ByteSlice, with early-stop amortisation folded into the slice
// constants) versus the bank-arithmetic HBP scan, lookups cost the
// slices-deep stitch versus a single bank load. A column with no observed
// lookups never flips (the build default is ByteSlice).
func LayoutFor(slices int, scanRows, lookupRows int64) LayoutDecision {
	d := LayoutDecision{ScanRows: scanRows, LookupRows: lookupRows}
	if slices <= 0 {
		return d
	}
	scan, look := float64(scanRows), float64(lookupRows)
	d.ByteSliceNs = scan*rawSegScanCost(slices)/32 + look*nsLookupSlice*float64(slices)
	d.HBPNs = scan*nsHBPScanRow + look*nsLookupBank
	d.HBP = lookupRows > 0 && d.HBPNs < d.ByteSliceNs
	return d
}

// LayoutWins is the workload-driven layout decision: true when the
// observed scan:lookup mix prices the HBP layout below ByteSlice for a
// column of the given byte-slice count. The facade consults it in
// Table.AutoLayout.
func LayoutWins(slices int, scanRows, lookupRows int64) bool {
	return LayoutFor(slices, scanRows, lookupRows).HBP
}

// Delta-merge constants (the write path's sibling of the layout choice,
// after Krueger et al.'s merge cost model, cited in the paper's §2):
// unmerged delta rows are evaluated row-at-a-time through interpreted
// predicates, merged rows through the SWAR scan, and a merge rewrites
// every row of base plus delta once.
const (
	nsDeltaRow = 15.0 // row-at-a-time delta predicate eval, per row
	nsMergeRow = 60.0 // materialise + rebuild during a merge, per row
	// mergeAmortQueries is the number of scans a merge is amortised over:
	// the advisory assumes roughly this many queries arrive before the
	// next merge would be due anyway.
	mergeAmortQueries = 16
	// minMergeDelta keeps tiny deltas unmerged — below this the fixed
	// costs of an epoch switch (snapshot write, WAL rotation) dominate
	// any scan saving.
	minMergeDelta = 1024
)

// ShouldMerge is the cost-based merge advisory: true when the scan
// penalty of keeping deltaRows in the row-at-a-time delta, accumulated
// over the queries expected before the next merge, exceeds the one-time
// cost of rewriting base plus delta into a fresh read-optimised epoch.
// The ingest facade consults it after each append to trigger its
// background merger; callers with their own cadence can ignore it.
func ShouldMerge(baseRows, deltaRows int) bool {
	if deltaRows < minMergeDelta {
		return false
	}
	penalty := mergeAmortQueries * float64(deltaRows) * (nsDeltaRow - nsSegFirst/32)
	rebuild := float64(baseRows+deltaRows) * nsMergeRow
	return penalty > rebuild
}

// perSegCost is the per-segment cost of one predicate inside a generic
// (per-segment dispatched) kernel — the zoned, pipelined and multi scans —
// with the zone map resolving its share of segments for free. Compressed
// columns always run their own block-gated kernel, whose cost already
// amortises the bounds test.
func perSegCost(p Pred) float64 {
	if p.Slices == 0 {
		return 0
	}
	if p.Compressed {
		return compressedSegCost(p)
	}
	c := rawSegScanCost(p.Slices) + nsSegDispatch
	if p.HasZoneMap {
		return nsZoneTest + (1-p.ZonePrune)*c
	}
	return c
}

// fullScanCost is the per-segment cost of predicate p scanned alone:
// monolithic when unzoned, zone-gated generic when zoned.
func fullScanCost(p Pred) float64 {
	if p.HasZoneMap {
		return perSegCost(p)
	}
	return segScanCost(p)
}

// liveSegProb is the probability that a 32-code segment still needs work
// after predicates with combined match fraction `matched` (conjunction:
// fraction still live; disjunction: fraction still unmatched) have run,
// assuming row independence.
func liveSegProb(frac float64) float64 {
	// 1 - (1-frac)^32: the segment is skippable only when all 32 rows are
	// settled.
	return 1 - math.Pow(1-frac, 32)
}

// Plan chooses order, strategy and workers for the query.
func Plan(q Query, preds []Pred) Decision {
	d := Decision{q: q}
	d.Order = order(q, preds)
	d.preds = make([]Pred, len(preds))
	for i, idx := range d.Order {
		d.preds[i] = preds[idx]
	}

	S := float64(q.Segments)
	d.CostColumnFirst = S * columnFirstCost(q, d.preds)
	d.CostBaseline = S * baselineCost(d.preds)
	d.CostPredicateFirst = math.NaN()
	if q.PredicateFirstOK && len(preds) > 1 {
		d.CostPredicateFirst = S * predicateFirstCost(q, d.preds)
	}

	d.Strategy, d.Cost = ColumnFirst, d.CostColumnFirst
	if d.CostBaseline < d.Cost {
		d.Strategy, d.Cost = Baseline, d.CostBaseline
	}
	if !math.IsNaN(d.CostPredicateFirst) && d.CostPredicateFirst < d.Cost {
		d.Strategy, d.Cost = PredicateFirst, d.CostPredicateFirst
	}
	if len(preds) == 1 {
		// A single predicate has one physical shape; call it column-first
		// so the facade's dispatch stays on the plain scan.
		d.Strategy, d.Cost = ColumnFirst, d.CostColumnFirst
	}

	d.Workers = chooseWorkers(q, d.Cost)
	return d
}

// order returns the evaluation order: ascending selectivity for
// conjunctions (most selective predicate settles the most rows first),
// descending for disjunctions, with zone-map prune rate breaking ties —
// a zone-pruned predicate is nearly free to evaluate, so among equally
// selective conjuncts the pruned one should lead.
func order(q Query, preds []Pred) []int {
	idx := make([]int, len(preds))
	for i := range idx {
		idx[i] = i
	}
	const eps = 0.02
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := preds[idx[a]].Sel, preds[idx[b]].Sel
		if math.Abs(sa-sb) <= eps {
			return preds[idx[a]].ZonePrune > preds[idx[b]].ZonePrune
		}
		if q.Disjunct {
			return sa > sb
		}
		return sa < sb
	})
	return idx
}

// columnFirstCost estimates the per-segment cost of the column-first
// pipeline over the ordered predicates.
func columnFirstCost(q Query, preds []Pred) float64 {
	if len(preds) == 0 {
		return 0
	}
	cost := fullScanCost(preds[0])
	frac := settledFrac(q, 0, preds[0].Sel)
	for _, p := range preds[1:] {
		live := liveSegProb(frac)
		cost += nsGate + live*(perSegCost(p))
		frac = settledFrac(q, frac, p.Sel)
	}
	return cost
}

// settledFrac folds predicate selectivity s into the running fraction of
// rows still requiring work: the live fraction of a conjunction, the
// unmatched fraction of a disjunction.
func settledFrac(q Query, acc, s float64) float64 {
	if acc == 0 {
		acc = 1
	}
	if q.Disjunct {
		return acc * (1 - s)
	}
	return acc * s
}

// predicateFirstCost estimates the per-segment cost of the native
// multi-scan: every predicate pays the generic dispatch, later predicates
// only on segments their predecessors left undecided.
func predicateFirstCost(q Query, preds []Pred) float64 {
	cost := perSegCost(preds[0])
	frac := settledFrac(q, 0, preds[0].Sel)
	for _, p := range preds[1:] {
		cost += liveSegProb(frac) * perSegCost(p)
		frac = settledFrac(q, frac, p.Sel)
	}
	return cost
}

// baselineCost estimates the per-segment cost of independent scans plus
// the bit-vector combines.
func baselineCost(preds []Pred) float64 {
	var cost float64
	for _, p := range preds {
		cost += fullScanCost(p)
	}
	cost += nsCombine * float64(len(preds)-1)
	return cost
}

// chooseWorkers sizes the worker pool: the pinned count when one was
// given, otherwise the w minimising cost/w + spawn·w (i.e. √(cost/spawn)),
// clamped to the CPU count and to at least 64 segments per worker so tiny
// scans stay serial.
func chooseWorkers(q Query, cost float64) int {
	if q.Workers > 0 {
		return q.Workers
	}
	w := int(math.Sqrt(cost / nsWorkerSpawn))
	if max := q.MaxWorkers; w > max {
		w = max
	}
	if max := q.Segments / 64; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ms renders a ns cost for Explain.
func ms(ns float64) string {
	switch {
	case math.IsNaN(ns):
		return "n/a"
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	}
	return fmt.Sprintf("%.0fns", ns)
}

// Explain renders the decision for humans and golden tests. The output is
// deterministic given the same Query and predicates.
func (d Decision) Explain() string {
	var b strings.Builder
	kind := "conjunction"
	if d.q.Disjunct {
		kind = "disjunction"
	}
	fmt.Fprintf(&b, "plan: %d predicate(s) over %d rows (%d segments), %s\n",
		len(d.preds), d.q.Rows, d.q.Segments, kind)
	b.WriteString("  order:")
	for i, p := range d.preds {
		if i > 0 {
			b.WriteString(" →")
		}
		fmt.Fprintf(&b, " %s(sel=%.3f", p.Col, p.Sel)
		if p.HasZoneMap {
			fmt.Fprintf(&b, ", zone=%.2f", p.ZonePrune)
		}
		if p.Compressed {
			fmt.Fprintf(&b, ", compressed %.2fB/row", p.CompBytesPerRow)
		}
		b.WriteString(")")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  strategy: %s (est %s; column-first %s, predicate-first %s, baseline %s)\n",
		d.Strategy, ms(d.Cost), ms(d.CostColumnFirst), ms(d.CostPredicateFirst), ms(d.CostBaseline))
	pin := "auto"
	if d.q.Workers > 0 {
		pin = "pinned"
	}
	fmt.Fprintf(&b, "  workers: %d (%s)", d.Workers, pin)
	return b.String()
}
