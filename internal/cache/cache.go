// Package cache implements a set-associative, multi-level, inclusive cache
// hierarchy simulator with LRU replacement and a next-line stream prefetcher.
//
// The simulator models the memory subsystem of the paper's evaluation
// machine (an Intel i7-4770 "Haswell": 32 KB 8-way L1d, 256 KB 8-way L2,
// 8 MB 16-way shared L3, 64-byte lines). Storage layouts register the
// simulated addresses they touch during scans and lookups, and the
// hierarchy records at which level each line was served. The perf package
// turns those counts into modelled stall cycles.
//
// Addresses are purely logical: an Arena hands out disjoint address ranges
// so that distinct columns live in distinct memory regions, which is what
// makes cache conflict behaviour between columns observable (Figure 12b and
// Figure 19b of the paper measure exactly that).
package cache

import "fmt"

// Level is the outcome of a single line access: the component of the
// hierarchy that served the line.
type Level int

const (
	// L1 means the line was already resident in the first-level cache
	// (or was streamed in by the prefetcher ahead of the access).
	L1 Level = iota
	// L2 means the line was served by the second-level cache.
	L2
	// L3 means the line was served by the last-level cache.
	L3
	// Memory means the line had to be fetched from DRAM.
	Memory
)

// String returns the conventional name of the serving level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case Memory:
		return "Memory"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// LevelConfig describes one cache level.
type LevelConfig struct {
	// Size is the total capacity in bytes.
	Size uint64
	// Ways is the set associativity.
	Ways int
}

// Config describes a hierarchy. The zero value is not usable; use
// DefaultConfig for the paper's machine.
type Config struct {
	// LineSize is the cache line size in bytes and must be a power of two.
	LineSize uint64
	// Levels are ordered from the innermost (L1) outwards.
	Levels []LevelConfig
	// PrefetchStreams is the number of concurrent sequential streams the
	// next-line prefetcher tracks. Zero disables prefetching.
	PrefetchStreams int
}

// DefaultConfig models the Intel i7-4770 used in the paper's experiments.
func DefaultConfig() Config {
	return Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{Size: 32 << 10, Ways: 8},
			{Size: 256 << 10, Ways: 8},
			{Size: 8 << 20, Ways: 16},
		},
		PrefetchStreams: 16,
	}
}

// Stats aggregates access outcomes. Hits[L1] counts lines served by L1
// (including prefetched lines), Hits[Memory] counts DRAM fetches.
type Stats struct {
	Accesses     uint64
	Hits         [4]uint64
	PrefetchHits uint64
	// MemFetches counts lines brought in from DRAM — demand misses plus
	// prefetches — i.e. the memory-bandwidth consumption in lines.
	MemFetches uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	for i := range s.Hits {
		s.Hits[i] += o.Hits[i]
	}
	s.PrefetchHits += o.PrefetchHits
	s.MemFetches += o.MemFetches
}

// MissesBelow returns the number of accesses not served at or before the
// given level, e.g. MissesBelow(L2) is the paper's "L2 cache misses".
func (s *Stats) MissesBelow(l Level) uint64 {
	var served uint64
	for i := Level(0); i <= l; i++ {
		served += s.Hits[i]
	}
	return s.Accesses - served
}

// level is one set-associative cache level with LRU replacement. Lines are
// identified by line number (addr / lineSize); each set is a small slice
// ordered most-recently-used first.
type level struct {
	setMask uint64
	ways    int
	sets    [][]uint64
}

func newLevel(cfg LevelConfig, lineSize uint64) *level {
	nsets := cfg.Size / (lineSize * uint64(cfg.Ways))
	if nsets == 0 {
		nsets = 1
	}
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: level size %d / (line %d * ways %d) is not a power-of-two set count", cfg.Size, lineSize, cfg.Ways))
	}
	return &level{
		setMask: nsets - 1,
		ways:    cfg.Ways,
		sets:    make([][]uint64, nsets),
	}
}

// touch looks the line up and, on hit, promotes it to MRU.
func (lv *level) touch(line uint64) bool {
	set := lv.sets[line&lv.setMask]
	for i, l := range set {
		if l == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	return false
}

// peek reports whether the line is resident, without recency side effects.
func (lv *level) peek(line uint64) bool {
	for _, l := range lv.sets[line&lv.setMask] {
		if l == line {
			return true
		}
	}
	return false
}

// fill inserts the line at MRU, evicting the LRU line if the set is full.
func (lv *level) fill(line uint64) {
	idx := line & lv.setMask
	set := lv.sets[idx]
	if len(set) < lv.ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	lv.sets[idx] = set
}

// stream is one tracked forward access stream. A stream activates on its
// second nearby forward access and then keeps streamDepth lines prefetched
// ahead; forward gaps up to streamReach lines continue the stream, which is
// what lets the prefetcher cover both dense sequential scans and the gappy
// deeper-slice accesses an early-stopping scan produces (hardware
// streamers behave this way, and the paper additionally uses software
// prefetching in all implementations).
type stream struct {
	last  uint64 // last line accessed by the stream
	depth uint64 // highest line prefetched so far
	hits  int
	age   uint64
}

const (
	// streamReach is the maximum forward gap (in lines) that continues a
	// stream.
	streamReach = 8
	// streamDepth is how many lines the streamer keeps prefetched ahead.
	streamDepth = 4
)

// Hierarchy is a simulated cache hierarchy. It is not safe for concurrent
// use; parallel scans use one Hierarchy per worker and merge Stats.
type Hierarchy struct {
	cfg       Config
	lineShift uint
	levels    []*level
	streams   []stream
	clock     uint64
	stats     Stats
}

// New builds a hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	if cfg.LineSize == 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic("cache: line size must be a non-zero power of two")
	}
	if len(cfg.Levels) == 0 || len(cfg.Levels) > 3 {
		panic("cache: between one and three levels are supported")
	}
	shift := uint(0)
	for 1<<shift != cfg.LineSize {
		shift++
	}
	h := &Hierarchy{cfg: cfg, lineShift: shift}
	for _, lc := range cfg.Levels {
		h.levels = append(h.levels, newLevel(lc, cfg.LineSize))
	}
	if cfg.PrefetchStreams > 0 {
		h.streams = make([]stream, cfg.PrefetchStreams)
	}
	return h
}

// Stats returns the accumulated access statistics.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats clears the statistics but keeps cache contents warm.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// Access simulates a read of size bytes at the given simulated address,
// touching every cache line the range covers. It returns the outermost
// (slowest) level that served any of the touched lines, which the cost
// model converts into stall cycles.
func (h *Hierarchy) Access(addr, size uint64) Level {
	if size == 0 {
		return L1
	}
	first := addr >> h.lineShift
	last := (addr + size - 1) >> h.lineShift
	worst := L1
	for line := first; line <= last; line++ {
		if l := h.accessLine(line); l > worst {
			worst = l
		}
	}
	return worst
}

// Peek returns the level that would serve the access right now, without
// changing any cache, prefetcher or statistics state. Grouped lookups are
// charged from Peek before their accesses are applied: the loads of one
// lookup issue together, so a prefetch triggered by the first load cannot
// arrive in time for the others (the simulator has no notion of time, so
// without this a multi-line VBP lookup would be rescued by prefetches real
// hardware could not issue early enough).
func (h *Hierarchy) Peek(addr, size uint64) Level {
	if size == 0 {
		return L1
	}
	first := addr >> h.lineShift
	last := (addr + size - 1) >> h.lineShift
	worst := L1
	for line := first; line <= last; line++ {
		level := Memory
		for i, lv := range h.levels {
			if lv.peek(line) {
				level = Level(i)
				break
			}
		}
		if level > worst {
			worst = level
		}
	}
	return worst
}

func (h *Hierarchy) accessLine(line uint64) Level {
	h.stats.Accesses++
	h.clock++

	prefetched := h.notifyStreams(line)

	for i, lv := range h.levels {
		if lv.touch(line) {
			h.stats.Hits[Level(i)]++
			if i == 0 && prefetched {
				h.stats.PrefetchHits++
			}
			// Refresh recency in inner levels.
			for j := 0; j < i; j++ {
				h.levels[j].fill(line)
			}
			return Level(i)
		}
	}
	h.stats.Hits[Memory]++
	h.stats.MemFetches++
	for _, lv := range h.levels {
		lv.fill(line)
	}
	return Memory
}

// notifyStreams advances the prefetcher. It returns true when the line was
// inside an active stream's prefetched window. A forward access within
// streamReach of a tracked stream continues (and on the second hit,
// activates) it; anything else recycles the oldest stream slot.
func (h *Hierarchy) notifyStreams(line uint64) bool {
	if len(h.streams) == 0 {
		return false
	}
	oldest := 0
	for i := range h.streams {
		s := &h.streams[i]
		if s.hits > 0 && line == s.last {
			// Re-access of the stream's current line.
			s.age = h.clock
			return s.hits > 1 && line <= s.depth
		}
		if line > s.last && line-s.last <= streamReach {
			s.hits++
			s.age = h.clock
			covered := s.hits > 2 && line <= s.depth
			if s.hits > 1 {
				start := line + 1
				if s.depth+1 > start {
					start = s.depth + 1
				}
				target := line + streamDepth
				for l := start; l <= target; l++ {
					h.prefill(l)
				}
				if target > s.depth {
					s.depth = target
				}
			}
			s.last = line
			return covered
		}
		if s.age < h.streams[oldest].age {
			oldest = i
		}
	}
	h.streams[oldest] = stream{last: line, age: h.clock, hits: 1}
	return false
}

func (h *Hierarchy) prefill(line uint64) {
	resident := false
	for _, lv := range h.levels {
		if lv.touch(line) {
			resident = true
			break
		}
	}
	if !resident {
		h.stats.MemFetches++
	}
	for _, lv := range h.levels {
		if !lv.touch(line) {
			lv.fill(line)
		}
	}
}

// Arena hands out disjoint simulated address ranges. Regions are aligned
// to cache lines and separated by one guard line so that accesses to
// different regions never share a line.
type Arena struct {
	lineSize uint64
	next     uint64
}

// NewArena returns an arena whose regions are aligned to lineSize.
func NewArena(lineSize uint64) *Arena {
	if lineSize == 0 {
		lineSize = 64
	}
	return &Arena{lineSize: lineSize, next: lineSize}
}

// Alloc reserves size bytes and returns the region's base address.
func (a *Arena) Alloc(size uint64) uint64 {
	base := a.next
	a.next += (size + 2*a.lineSize - 1) / a.lineSize * a.lineSize
	return base
}
