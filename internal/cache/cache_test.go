package cache

import (
	"math/rand/v2"
	"testing"
)

// tiny returns a small two-level hierarchy with prefetching disabled:
// L1 = 4 sets × 2 ways × 64B = 512B, L2 = 8 sets × 4 ways × 64B = 2KB.
func tiny() *Hierarchy {
	return New(Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{Size: 512, Ways: 2},
			{Size: 2048, Ways: 4},
		},
	})
}

func TestColdMissThenHit(t *testing.T) {
	h := tiny()
	h.Access(0, 8)
	s := h.Stats()
	if s.Accesses != 1 || s.Hits[Memory] != 1 {
		t.Fatalf("cold access: %+v", s)
	}
	h.Access(32, 8) // same line
	s = h.Stats()
	if s.Hits[L1] != 1 {
		t.Fatalf("warm access should hit L1: %+v", s)
	}
}

func TestAccessSpanningLines(t *testing.T) {
	h := tiny()
	h.Access(60, 8) // crosses the 64-byte boundary
	if s := h.Stats(); s.Accesses != 2 {
		t.Fatalf("spanning access should touch 2 lines: %+v", s)
	}
	h2 := tiny()
	h2.Access(0, 64)
	if s := h2.Stats(); s.Accesses != 1 {
		t.Fatalf("aligned full-line access should touch 1 line: %+v", s)
	}
	h3 := tiny()
	h3.Access(0, 0)
	if s := h3.Stats(); s.Accesses != 0 {
		t.Fatalf("zero-size access should not count: %+v", s)
	}
}

// TestLRUEviction fills one L1 set beyond its ways and checks the victim
// falls back to L2.
func TestLRUEviction(t *testing.T) {
	h := tiny()
	// L1 has 4 sets; lines mapping to set 0 are multiples of 4 lines.
	setStride := uint64(4 * 64)
	h.Access(0*setStride, 1)
	h.Access(1*setStride, 1)
	h.Access(2*setStride, 1) // evicts line 0 from L1 (2 ways)
	h.ResetStats()
	h.Access(0, 1) // should be gone from L1, still in L2
	s := h.Stats()
	if s.Hits[L2] != 1 {
		t.Fatalf("expected L2 hit after L1 eviction: %+v", s)
	}

	// Touching line 1 keeps it MRU; line 2 becomes the LRU victim.
	h = tiny()
	h.Access(1*setStride, 1)
	h.Access(2*setStride, 1)
	h.Access(1*setStride, 1) // promote line 1
	h.Access(3*setStride, 1) // evicts line 2, not line 1
	h.ResetStats()
	h.Access(1*setStride, 1)
	if s := h.Stats(); s.Hits[L1] != 1 {
		t.Fatalf("MRU line should have survived: %+v", s)
	}
}

func TestCapacityMissAtAllLevels(t *testing.T) {
	h := tiny()
	// Stream far past L2 capacity (2KB = 32 lines): 256 distinct lines.
	for i := uint64(0); i < 256; i++ {
		h.Access(i*64, 1)
	}
	h.ResetStats()
	// Re-walk the first lines: they must have been evicted everywhere.
	for i := uint64(0); i < 8; i++ {
		h.Access(i*64, 1)
	}
	if s := h.Stats(); s.Hits[Memory] != 8 {
		t.Fatalf("expected full misses after capacity eviction: %+v", s)
	}
}

func TestMissesBelow(t *testing.T) {
	s := Stats{Accesses: 100, Hits: [4]uint64{50, 30, 15, 5}}
	if got := s.MissesBelow(L1); got != 50 {
		t.Fatalf("MissesBelow(L1) = %d", got)
	}
	if got := s.MissesBelow(L2); got != 20 {
		t.Fatalf("MissesBelow(L2) = %d", got)
	}
	if got := s.MissesBelow(L3); got != 5 {
		t.Fatalf("MissesBelow(L3) = %d", got)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accesses: 1, Hits: [4]uint64{1, 0, 0, 0}, PrefetchHits: 1}
	b := Stats{Accesses: 2, Hits: [4]uint64{0, 1, 1, 0}}
	a.Add(b)
	if a.Accesses != 3 || a.Hits[L1] != 1 || a.Hits[L2] != 1 || a.Hits[L3] != 1 || a.PrefetchHits != 1 {
		t.Fatalf("Add result wrong: %+v", a)
	}
}

// TestPrefetcherSequentialStream checks that a forward sequential walk is
// served from L1 after the stream is established.
func TestPrefetcherSequentialStream(t *testing.T) {
	// Uses the real cache geometry: a miniature L1 would conflict with the
	// prefetch-ahead window itself.
	h := New(DefaultConfig())
	for i := uint64(0); i < 64; i++ {
		h.Access(i*64, 64)
	}
	s := h.Stats()
	// The first two accesses train the stream; everything after is served
	// from the prefetched window in L1.
	if s.Hits[Memory] > 2 {
		t.Fatalf("sequential stream should be prefetched: %+v", s)
	}
	if s.Hits[L1] < 60 || s.PrefetchHits < 55 {
		t.Fatalf("expected most hits to be prefetched L1 hits: %+v", s)
	}
	// Bandwidth accounting covers both demand misses and prefetched lines.
	if s.MemFetches < 64 {
		t.Fatalf("every line must be fetched from memory exactly once-ish: %+v", s)
	}
}

// TestPrefetcherGappyStream checks the streamer covers strided access with
// small forward gaps — the pattern an early-stopping scan's deeper byte
// slices produce.
func TestPrefetcherGappyStream(t *testing.T) {
	h := New(DefaultConfig())
	line := uint64(0)
	misses := func() uint64 { return h.Stats().Hits[Memory] }
	for i := 0; i < 200; i++ {
		h.Access(line*64, 32)
		line += uint64(1 + i%3) // gaps of 1..3 lines
	}
	if float64(misses()) > 0.2*float64(h.Stats().Accesses) {
		t.Fatalf("gappy forward stream should be mostly prefetched: %+v", h.Stats())
	}
}

// TestPrefetcherRandomDoesNotHelp checks random access over a large range
// mostly misses.
func TestPrefetcherRandomDoesNotHelp(t *testing.T) {
	h := New(DefaultConfig())
	r := rand.New(rand.NewPCG(8, 8)) //nolint:gosec
	span := uint64(64 << 20)         // 64 MB, far beyond L3
	for i := 0; i < 20000; i++ {
		h.Access(r.Uint64N(span), 4)
	}
	s := h.Stats()
	if float64(s.Hits[Memory]) < 0.8*float64(s.Accesses) {
		t.Fatalf("random far accesses should mostly miss: %+v", s)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	h := tiny()
	h.Access(0, 1)
	h.ResetStats()
	h.Access(0, 1)
	if s := h.Stats(); s.Hits[L1] != 1 || s.Accesses != 1 {
		t.Fatalf("contents should stay warm across ResetStats: %+v", s)
	}
}

func TestArenaDisjointRegions(t *testing.T) {
	a := NewArena(64)
	r1 := a.Alloc(100)
	r2 := a.Alloc(1)
	r3 := a.Alloc(64)
	if r1%64 != 0 || r2%64 != 0 || r3%64 != 0 {
		t.Fatalf("regions not line aligned: %d %d %d", r1, r2, r3)
	}
	if r2 < r1+100 || r3 < r2+1 {
		t.Fatalf("regions overlap: %d %d %d", r1, r2, r3)
	}
	if (r1+99)/64 == r2/64 || (r2)/64 == r3/64 {
		t.Fatal("adjacent regions share a cache line")
	}
	if r1 == 0 {
		t.Fatal("address zero should not be handed out")
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{L1: "L1", L2: "L2", L3: "L3", Memory: "Memory"} {
		if l.String() != want {
			t.Fatalf("String(%d) = %s", int(l), l.String())
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{LineSize: 0, Levels: []LevelConfig{{Size: 512, Ways: 2}}},
		{LineSize: 63, Levels: []LevelConfig{{Size: 512, Ways: 2}}},
		{LineSize: 64},
		{LineSize: 64, Levels: make([]LevelConfig, 4)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestPeekIsSideEffectFree(t *testing.T) {
	h := tiny()
	if h.Peek(0, 8) != Memory {
		t.Fatal("cold peek should report Memory")
	}
	if s := h.Stats(); s.Accesses != 0 {
		t.Fatalf("peek must not count accesses: %+v", s)
	}
	h.Access(0, 8)
	if h.Peek(0, 8) != L1 {
		t.Fatal("warm peek should report L1")
	}
	// Peek must not refresh recency: line 0 stays LRU and gets evicted.
	setStride := uint64(4 * 64)
	h2 := tiny()
	h2.Access(0, 1)
	h2.Access(setStride, 1)
	for i := 0; i < 5; i++ {
		h2.Peek(0, 1) // would promote if peek touched recency
	}
	h2.Access(2*setStride, 1) // evicts the true LRU
	if h2.Peek(0, 1) == L1 {
		t.Fatal("peek refreshed recency")
	}
	// Spanning peek reports the worst level; zero size is free.
	if h.Peek(32, 64) == L1 {
		t.Fatal("spanning peek should see the cold second line")
	}
	if h.Peek(123, 0) != L1 {
		t.Fatal("zero-size peek should be L1")
	}
}
