package bitvec

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSetGetCount(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		v.Set(i, true)
		if !v.Get(i) {
			t.Fatalf("Get(%d) after Set", i)
		}
	}
	if v.Count() != 8 {
		t.Fatalf("Count = %d", v.Count())
	}
	v.Set(63, false)
	if v.Get(63) || v.Count() != 7 {
		t.Fatal("clear failed")
	}
}

func TestAppend32Ordering(t *testing.T) {
	v := New(64)
	v.Append32(0x00000001) // bit 0
	v.Append32(0x80000000) // bit 63
	if !v.Get(0) || !v.Get(63) || v.Count() != 2 {
		t.Fatalf("append ordering wrong: count=%d", v.Count())
	}
}

func TestAppendTruncatesPastLen(t *testing.T) {
	v := New(40) // 40 bits: one full word32 + 8 valid bits of the next
	v.Append32(^uint32(0))
	v.Append32(^uint32(0)) // only 8 of these 32 bits are in range
	if v.Count() != 40 {
		t.Fatalf("Count = %d, want 40", v.Count())
	}
	// Further appends past the end must be ignored entirely.
	v.Append32(^uint32(0))
	if v.Count() != 40 {
		t.Fatalf("Count after overflow append = %d", v.Count())
	}
}

func TestAppend64Widths(t *testing.T) {
	v := New(100)
	v.Append64(0b1011, 4)
	v.Append64(^uint64(0), 64)
	v.Append64(1, 1)
	if !v.Get(0) || v.Get(2) == false || v.Get(1) != true {
		// 0b1011: bits 0,1,3
	}
	want := map[int]bool{0: true, 1: true, 2: false, 3: true}
	for i, w := range want {
		if v.Get(i) != w {
			t.Fatalf("bit %d = %v, want %v", i, v.Get(i), w)
		}
	}
	for i := 4; i < 68; i++ {
		if !v.Get(i) {
			t.Fatalf("bit %d should be set", i)
		}
	}
	if !v.Get(68) || v.Get(69) {
		t.Fatal("single-bit append misplaced")
	}
	if v.Count() != 3+64+1 {
		t.Fatalf("Count = %d", v.Count())
	}
}

func TestAppend256(t *testing.T) {
	v := New(300)
	v.Append256([4]uint64{1, 0, 0, 1 << 63})
	if !v.Get(0) || !v.Get(255) || v.Count() != 2 {
		t.Fatal("Append256 misplaced bits")
	}
	v.Append256([4]uint64{^uint64(0), 0, 0, 0}) // bits 256..319, only 256..299 valid
	if v.Count() != 2+44 {
		t.Fatalf("Count = %d, want 46", v.Count())
	}
}

func TestWord32(t *testing.T) {
	v := New(96)
	v.Append32(0xDEADBEEF)
	v.Append32(0x12345678)
	v.Append32(0x0F0F0F0F)
	for i, want := range []uint32{0xDEADBEEF, 0x12345678, 0x0F0F0F0F} {
		if got := v.Word32(32 * i); got != want {
			t.Fatalf("Word32(%d) = %#x, want %#x", 32*i, got, want)
		}
	}
	big := New(40)
	big.Append32(0xFFFFFFFF)
	big.Append32(0xFFFFFFFF)
	if got := big.Word32(32); got != 0xFF {
		t.Fatalf("truncated Word32 = %#x, want 0xFF", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned Word32 should panic")
		}
	}()
	v.Word32(7)
}

func TestLogicalOps(t *testing.T) {
	n := 200
	prop := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1)) //nolint:gosec
		a, b := New(n), New(n)
		av, bv := make([]bool, n), make([]bool, n)
		for i := 0; i < n; i++ {
			av[i], bv[i] = r.IntN(2) == 0, r.IntN(2) == 0
			a.Set(i, av[i])
			b.Set(i, bv[i])
		}
		and, or, andnot, not := a.Clone(), a.Clone(), a.Clone(), a.Clone()
		and.And(b)
		or.Or(b)
		andnot.AndNot(b)
		not.Not()
		for i := 0; i < n; i++ {
			if and.Get(i) != (av[i] && bv[i]) || or.Get(i) != (av[i] || bv[i]) ||
				andnot.Get(i) != (av[i] && !bv[i]) || not.Get(i) != !av[i] {
				return false
			}
		}
		return not.Count()+a.Count() == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNotKeepsTailClear(t *testing.T) {
	v := New(70)
	v.Not()
	if v.Count() != 70 {
		t.Fatalf("Not set tail bits: count=%d", v.Count())
	}
	v.Not()
	if v.Count() != 0 {
		t.Fatalf("double Not: count=%d", v.Count())
	}
}

func TestFillAndReset(t *testing.T) {
	v := New(33)
	v.Fill()
	if v.Count() != 33 {
		t.Fatalf("Fill count=%d", v.Count())
	}
	v.Reset()
	if v.Count() != 0 {
		t.Fatal("Reset failed")
	}
	// Reset rewinds the append cursor.
	v.Append32(1)
	if !v.Get(0) {
		t.Fatal("append after Reset should start at bit 0")
	}
}

func TestPositions(t *testing.T) {
	v := New(300)
	want := []int32{0, 1, 63, 64, 130, 299}
	for _, i := range want {
		v.Set(int(i), true)
	}
	got := v.Positions(nil)
	if len(got) != len(want) {
		t.Fatalf("Positions = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Positions[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Appending to an existing buffer.
	buf := []int32{-1}
	got = v.Positions(buf)
	if got[0] != -1 || len(got) != 7 {
		t.Fatal("Positions must append to dst")
	}
}

func TestEqualAndClone(t *testing.T) {
	a := New(100)
	a.Set(42, true)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Set(43, true)
	if a.Equal(b) {
		t.Fatal("diverged vectors equal")
	}
	if a.Equal(New(101)) {
		t.Fatal("different lengths equal")
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths should panic")
		}
	}()
	New(10).And(New(11))
}

func TestZeroLength(t *testing.T) {
	v := New(0)
	if v.Count() != 0 || v.Len() != 0 {
		t.Fatal("zero-length vector misbehaves")
	}
	v.Append32(0xFFFF) // must not panic
	if v.Count() != 0 {
		t.Fatal("append to zero-length vector stored bits")
	}
}

func TestSetWord32(t *testing.T) {
	v := New(70)
	v.SetWord32(0, 0xF0F0F0F0)
	v.SetWord32(32, 0x0F0F0F0F)
	if v.Word32(0) != 0xF0F0F0F0 || v.Word32(32) != 0x0F0F0F0F {
		t.Fatal("SetWord32 round trip failed")
	}
	v.SetWord32(0, 1) // overwrite, not OR
	if v.Word32(0) != 1 {
		t.Fatalf("SetWord32 should overwrite: %#x", v.Word32(0))
	}
	v.SetWord32(64, ^uint32(0)) // only 6 bits in range
	if v.Count() != 1+16+6 {    // block0: 1 bit, block1: 0x0F0F0F0F = 16 bits, block2: 6
		t.Fatalf("Count = %d", v.Count())
	}
	v.SetWord32(96, ^uint32(0)) // fully out of range: ignored
	if v.Count() != 23 {
		t.Fatalf("out-of-range SetWord32 changed the vector: %d", v.Count())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned SetWord32 should panic")
		}
	}()
	v.SetWord32(5, 0)
}

func TestCopyBits(t *testing.T) {
	src := New(100)
	for _, i := range []int{0, 63, 64, 99} {
		src.Set(i, true)
	}
	dst := New(130)
	dst.Set(120, true)
	dst.Set(5, true) // must be overwritten
	dst.CopyBits(src)
	for i := 0; i < 100; i++ {
		if dst.Get(i) != src.Get(i) {
			t.Fatalf("bit %d not copied", i)
		}
	}
	if !dst.Get(120) {
		t.Fatal("bits past the source must be preserved")
	}
	// Shorter destination truncates.
	small := New(10)
	small.CopyBits(src)
	if small.Count() != 1 { // only bit 0 in range
		t.Fatalf("truncated copy count = %d", small.Count())
	}
}
