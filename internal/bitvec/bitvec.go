// Package bitvec implements the result bit vectors that column scans
// produce: fixed-length vectors of one bit per record, with the logical
// operations needed to combine predicates and convert matches into record
// numbers.
package bitvec

import (
	"fmt"
	"math/bits"
)

// Vector is a fixed-length bit vector. Bit i corresponds to record i; the
// scan kernels append results in record order. Bits at positions ≥ Len()
// are always zero (operations maintain this invariant), so Count and
// Positions are exact even though scans emit whole 32- or 256-bit blocks.
type Vector struct {
	words []uint64
	n     int
	// pos is the append cursor in bits.
	pos int
}

// New returns a zeroed vector of n bits positioned for appending at bit 0.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of record bits.
func (v *Vector) Len() int { return v.n }

// Reset zeroes the vector and rewinds the append cursor.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
	v.pos = 0
}

// Append32 appends the low 32 bits of r (bit j of r becomes record pos+j).
// Bits spilling past Len are discarded, which is how scans emit their final
// partial segment.
func (v *Vector) Append32(r uint32) {
	v.appendBits(uint64(r), 32)
}

// Append64 appends the low width bits of r (width ≤ 64).
func (v *Vector) Append64(r uint64, width int) {
	if width < 0 || width > 64 {
		panic("bitvec: bad append width")
	}
	v.appendBits(r, width)
}

func (v *Vector) appendBits(r uint64, width int) {
	if width == 0 {
		return
	}
	if rem := v.n - v.pos; rem <= 0 {
		v.pos += width
		return
	} else if rem < width {
		r &= (1 << uint(rem)) - 1
		if rem < 64 && width > rem {
			// keep only in-range bits
			r &= 1<<uint(rem) - 1
		}
	} else if width < 64 {
		r &= 1<<uint(width) - 1
	}
	w, off := v.pos>>6, uint(v.pos&63)
	v.words[w] |= r << off
	if off != 0 && w+1 < len(v.words) {
		v.words[w+1] |= r >> (64 - off)
	}
	v.pos += width
}

// Append256 appends 256 bits given as four little-endian 64-bit lanes (bit
// j of the block is lane j/64, bit j%64), as the VBP scan emits per segment.
func (v *Vector) Append256(lanes [4]uint64) {
	for _, l := range lanes {
		v.appendBits(l, 64)
	}
}

// Get returns bit i.
func (v *Vector) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	return v.words[i>>6]>>(uint(i)&63)&1 == 1
}

// Set sets bit i to b.
func (v *Vector) Set(i int, b bool) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	if b {
		v.words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		v.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Word32 returns the 32-bit block starting at bit i (i must be a multiple
// of 32). The column-first pipelined scan reads the previous predicate's
// result segment-by-segment through this.
//
//bsvet:hotloop
func (v *Vector) Word32(i int) uint32 {
	if i&31 != 0 {
		panic("bitvec: Word32 index not 32-bit aligned")
	}
	if i >= v.n {
		return 0
	}
	return uint32(v.words[i>>6] >> (uint(i) & 63))
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And replaces v with v AND o. The vectors must have equal length.
func (v *Vector) And(o *Vector) {
	v.sameLen(o)
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// Or replaces v with v OR o. The vectors must have equal length.
func (v *Vector) Or(o *Vector) {
	v.sameLen(o)
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// AndNot replaces v with v AND NOT o. The vectors must have equal length.
func (v *Vector) AndNot(o *Vector) {
	v.sameLen(o)
	for i := range v.words {
		v.words[i] &^= o.words[i]
	}
}

// Not complements every record bit in place (tail bits stay zero).
func (v *Vector) Not() {
	for i := range v.words {
		v.words[i] = ^v.words[i]
	}
	v.clearTail()
}

// Fill sets every record bit.
func (v *Vector) Fill() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.clearTail()
}

// Clone returns an independent copy of v (append cursor included).
func (v *Vector) Clone() *Vector {
	w := New(v.n)
	copy(w.words, v.words)
	w.pos = v.pos
	return w
}

// Equal reports whether v and o have identical length and bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Positions appends the record numbers of all set bits to dst and returns
// it. This is the scan-to-lookup conversion step: the result bit vector
// becomes a list of record numbers.
func (v *Vector) Positions(dst []int32) []int32 {
	for wi, w := range v.words {
		base := int32(wi * 64)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

func (v *Vector) sameLen(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, o.n))
	}
}

func (v *Vector) clearTail() {
	if tail := uint(v.n & 63); tail != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= 1<<tail - 1
	}
}

// SetWord32 overwrites the 32-bit block starting at bit i (i must be a
// multiple of 32), truncating bits past Len. It writes without the append
// cursor, so disjoint blocks can be filled concurrently — parallel scans
// give each worker an aligned range of segments.
//
//bsvet:hotloop
func (v *Vector) SetWord32(i int, w uint32) {
	if i&31 != 0 {
		panic("bitvec: SetWord32 index not 32-bit aligned")
	}
	if i >= v.n {
		return
	}
	if rem := v.n - i; rem < 32 {
		w &= 1<<uint(rem) - 1
	}
	word, off := i>>6, uint(i&63)
	v.words[word] = v.words[word]&^(uint64(0xFFFFFFFF)<<off) | uint64(w)<<off
}

// SetWord64 overwrites the aligned 64-bit word holding bits [i, i+64) (i
// must be a multiple of 64), truncating bits past Len. Like SetWord32 it
// bypasses the append cursor; the native scan kernels use it to store two
// 32-bit segment results with one plain write instead of two
// read-modify-writes.
//
//bsvet:hotloop
func (v *Vector) SetWord64(i int, w uint64) {
	if i&63 != 0 {
		panic("bitvec: SetWord64 index not 64-bit aligned")
	}
	if i >= v.n {
		return
	}
	if rem := v.n - i; rem < 64 {
		w &= 1<<uint(rem) - 1
	}
	v.words[i>>6] = w
}

// OrWord32 ORs w into the 32-bit block starting at bit i (i must be a
// multiple of 32), truncating bits past Len. Like SetWord32 it bypasses
// the append cursor; the native strict-compare scan uses it to patch
// deferred deep-slice results into already-stored segments.
//
//bsvet:hotloop
func (v *Vector) OrWord32(i int, w uint32) {
	if i&31 != 0 {
		panic("bitvec: OrWord32 index not 32-bit aligned")
	}
	if i >= v.n {
		return
	}
	if rem := v.n - i; rem < 32 {
		w &= 1<<uint(rem) - 1
	}
	v.words[i>>6] |= uint64(w) << (uint(i) & 63)
}

// CopyBits overwrites v's first min(v.Len, o.Len) bits with o's. Used when
// a shorter result (e.g. over a table's sealed base rows) is embedded into
// a longer one (base + delta rows).
func (v *Vector) CopyBits(o *Vector) {
	n := v.n
	if o.n < n {
		n = o.n
	}
	words := n / 64
	copy(v.words[:words], o.words[:words])
	for i := words * 64; i < n; i++ {
		v.Set(i, o.Get(i))
	}
}
