package ingest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// WAL framing reuses the snapshot-v2 conventions: every frame is
//
//	tag u8 | len u32 | payload | crc32c(payload) u32
//
// with all integers little-endian and the CRC32-C polynomial shared with
// the snapshot format. The file opens with a magic + version preamble and
// a header frame binding the WAL to one epoch of one base snapshot:
//
//	magic "BSWL" | version u16 = 1
//	frame 'H': epoch u64 | baseRows u64
//	frame 'R': one appended row (opaque payload owned by the facade)
//
// A reader never trusts a declared length for allocation beyond
// maxFramePayload, so a corrupt length cannot trigger an outsized
// allocation; and because every acknowledged append is a complete frame,
// recovery can always classify the tail: complete frames replay, a
// partial frame at EOF is a torn write and truncates, and a complete
// frame with a bad checksum is corruption that must surface.

const (
	walMagic   = "BSWL"
	walVersion = 1

	frameHeader = 'H'
	frameRow    = 'R'

	// maxFramePayload bounds one frame: a row is a few bytes per column,
	// so 16 MiB is far beyond any legitimate frame while cheap to reject
	// when a corrupt length claims more.
	maxFramePayload = 1 << 24
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// WriterHook interposes on the byte stream between the WAL and its file,
// letting the fault-injection tests fail appends at exact byte offsets.
// It is nil outside tests (the facade re-exports a setter).
var WriterHook func(io.Writer) io.Writer

// WAL is an append-only, CRC-framed log of rows appended since the
// current epoch's base snapshot. A WAL has a single writer (the ingest
// pipeline's append path); it is not safe for concurrent use.
type WAL struct {
	f        *os.File
	w        io.Writer
	path     string
	epoch    uint64
	baseRows uint64
	rows     int64
	size     int64
	syncEach bool
	dirty    bool
	failed   bool
	closed   bool
}

// Recovery reports what Open found and replayed.
type Recovery struct {
	// Rows holds the payload of every intact row frame, in append order.
	Rows [][]byte
	// Truncated is the number of torn-tail bytes cut from the file (0
	// when the WAL ended on a frame boundary).
	Truncated int64
}

// Create initialises a new WAL at path for the given epoch over a base
// snapshot of baseRows rows. The file must not already exist; the header
// is durable (fsynced, directory entry included) before Create returns.
func Create(path string, epoch, baseRows uint64, syncEach bool) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: create WAL %s: %w", path, err)
	}
	w := &WAL{f: f, w: io.Writer(f), path: path, epoch: epoch, baseRows: baseRows, syncEach: syncEach}
	if WriterHook != nil {
		w.w = WriterHook(f)
	}
	var pre [6]byte
	copy(pre[:], walMagic)
	binary.LittleEndian.PutUint16(pre[4:], walVersion)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], epoch)
	binary.LittleEndian.PutUint64(hdr[8:], baseRows)
	err = func() error {
		if _, err := w.w.Write(pre[:]); err != nil {
			return err
		}
		w.size = int64(len(pre))
		return w.writeFrame(frameHeader, hdr[:])
	}()
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()       //nolint:errcheck // already failing
		os.Remove(path) //nolint:errcheck // best-effort cleanup
		return nil, fmt.Errorf("ingest: create WAL %s: %w", path, err)
	}
	syncDir(filepath.Dir(path))
	return w, nil
}

// Open reads the WAL at path, verifying every frame, truncating a torn
// tail to the last intact frame, and returning the log positioned for
// appending together with the recovered rows. A complete frame with a
// bad checksum (or any structurally impossible byte) aborts with
// ErrCorrupt: those bytes were acknowledged durable and are now wrong,
// which replay must not skip silently.
func Open(path string, syncEach bool) (*WAL, *Recovery, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: open WAL %s: %w", path, err)
	}
	epoch, baseRows, rows, good, err := parseWAL(data)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: open WAL %s: %w", path, err)
	}
	rec := &Recovery{Rows: rows, Truncated: int64(len(data)) - good}
	if rec.Truncated > 0 {
		if err := os.Truncate(path, good); err != nil {
			return nil, nil, fmt.Errorf("ingest: truncate torn WAL tail %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: reopen WAL %s: %w", path, err)
	}
	w := &WAL{f: f, w: io.Writer(f), path: path, epoch: epoch, baseRows: baseRows,
		rows: int64(len(rows)), size: good, syncEach: syncEach}
	if WriterHook != nil {
		w.w = WriterHook(f)
	}
	return w, rec, nil
}

// parseWAL walks the full byte image of a WAL: it returns the header
// fields, the intact row payloads and the byte offset of the last intact
// frame. A short preamble or a frame cut by EOF is a torn tail (not an
// error); everything else structurally wrong is ErrCorrupt.
func parseWAL(data []byte) (epoch, baseRows uint64, rows [][]byte, good int64, err error) {
	if len(data) < 6 {
		return 0, 0, nil, 0, fmt.Errorf("%w: WAL preamble truncated (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:4]) != walMagic {
		return 0, 0, nil, 0, fmt.Errorf("%w: bad WAL magic %q", ErrCorrupt, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != walVersion {
		return 0, 0, nil, 0, fmt.Errorf("%w: WAL version %d", ErrVersion, v)
	}
	off := int64(6)
	payload, n, ferr := parseFrame(data[off:], frameHeader)
	if ferr != nil {
		// The header frame was written and synced by Create before any
		// append was acknowledged; a missing or damaged header means the
		// WAL itself is corrupt, torn tail or not.
		return 0, 0, nil, 0, fmt.Errorf("WAL header at offset %d: %w", off, ferr.or(ErrCorrupt))
	}
	if len(payload) != 16 {
		return 0, 0, nil, 0, fmt.Errorf("%w: WAL header payload %d bytes, want 16", ErrCorrupt, len(payload))
	}
	epoch = binary.LittleEndian.Uint64(payload[0:])
	baseRows = binary.LittleEndian.Uint64(payload[8:])
	off += n
	good = off

	for int64(len(data)) > off {
		payload, n, ferr := parseFrame(data[off:], frameRow)
		if ferr != nil {
			if ferr.torn {
				// Torn tail: the crash cut an append mid-frame. The rows
				// before it are intact and durable; the partial frame was
				// never acknowledged.
				return epoch, baseRows, rows, good, nil
			}
			return 0, 0, nil, 0, fmt.Errorf("WAL frame at offset %d: %w", off, ferr.err)
		}
		rows = append(rows, payload)
		off += n
		good = off
	}
	return epoch, baseRows, rows, good, nil
}

// frameErr classifies a frame parse failure: torn (ran out of bytes) or
// structurally corrupt.
type frameErr struct {
	torn bool
	err  error
}

func (e *frameErr) or(sentinel error) error {
	if e.err != nil {
		return e.err
	}
	return sentinel
}

// parseFrame reads one frame of the wanted tag from the front of b,
// returning the payload and the total frame length.
func parseFrame(b []byte, tag byte) ([]byte, int64, *frameErr) {
	if len(b) < 5 {
		return nil, 0, &frameErr{torn: true}
	}
	if b[0] != tag {
		return nil, 0, &frameErr{err: fmt.Errorf("%w: frame tag %q, want %q", ErrCorrupt, b[0], tag)}
	}
	ln := binary.LittleEndian.Uint32(b[1:5])
	if ln > maxFramePayload {
		return nil, 0, &frameErr{err: fmt.Errorf("%w: frame length %d exceeds limit %d", ErrCorrupt, ln, maxFramePayload)}
	}
	total := int64(5) + int64(ln) + 4
	if int64(len(b)) < total {
		return nil, 0, &frameErr{torn: true}
	}
	payload := b[5 : 5+ln]
	want := binary.LittleEndian.Uint32(b[5+ln:])
	if crc32.Checksum(payload, walCRC) != want {
		return nil, 0, &frameErr{err: fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)}
	}
	return payload, total, nil
}

// writeFrame appends one frame to the file through the (possibly
// fault-wrapped) writer.
func (w *WAL) writeFrame(tag byte, payload []byte) error {
	var buf bytes.Buffer
	buf.Grow(9 + len(payload))
	buf.WriteByte(tag)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(payload)))
	buf.Write(b4[:])
	buf.Write(payload)
	binary.LittleEndian.PutUint32(b4[:], crc32.Checksum(payload, walCRC))
	buf.Write(b4[:])
	n, err := w.w.Write(buf.Bytes())
	w.size += int64(n)
	if err != nil {
		return err
	}
	return nil
}

// Append makes one row durable: the payload is framed, written, and —
// under the sync-each policy — fsynced before Append returns. After a
// write error the WAL refuses further appends (the file position is no
// longer trustworthy); recovery via Open is the only way back.
func (w *WAL) Append(payload []byte) error {
	switch {
	case w.closed:
		return ErrClosed
	case w.failed:
		return fmt.Errorf("%w: WAL failed a previous write; reopen to recover", ErrClosed)
	case len(payload) > maxFramePayload:
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	if err := w.writeFrame(frameRow, payload); err != nil {
		w.failed = true
		return fmt.Errorf("ingest: WAL append: %w", err)
	}
	w.dirty = true
	if w.syncEach {
		if err := w.Sync(); err != nil {
			w.failed = true
			return err
		}
	}
	w.rows++
	return nil
}

// Sync flushes appended frames to stable storage (no-op when clean).
func (w *WAL) Sync() error {
	if w.closed {
		return ErrClosed
	}
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("ingest: WAL sync: %w", err)
	}
	w.dirty = false
	return nil
}

// Epoch returns the epoch this WAL extends.
func (w *WAL) Epoch() uint64 { return w.epoch }

// BaseRows returns the row count of the base snapshot this WAL extends.
func (w *WAL) BaseRows() uint64 { return w.baseRows }

// Rows returns the number of durable row frames (replayed + appended).
func (w *WAL) Rows() int64 { return w.rows }

// Size returns the WAL's byte size including framing overhead.
func (w *WAL) Size() int64 { return w.size }

// Path returns the WAL's file path.
func (w *WAL) Path() string { return w.path }

// Close syncs and closes the file. Further appends return ErrClosed.
func (w *WAL) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var err error
	if w.dirty && !w.failed {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("ingest: close WAL %s: %w", w.path, err)
	}
	return nil
}

// Info describes a WAL file for inspection tooling without mutating it:
// Open truncates torn tails, Inspect only reports them.
type Info struct {
	Epoch     uint64
	BaseRows  uint64
	Rows      int
	GoodBytes int64
	FileBytes int64
	// Tail is "clean", "torn" (partial frame at EOF) or absent when Err
	// is set (structural corruption at GoodBytes).
	Tail string
	Err  error
}

// Inspect reads a WAL file and classifies its tail without truncating.
func Inspect(path string) (Info, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Info{}, err
	}
	info := Info{FileBytes: int64(len(data)), Tail: "clean"}
	epoch, baseRows, rows, good, perr := parseWAL(data)
	info.Epoch, info.BaseRows, info.Rows, info.GoodBytes = epoch, baseRows, len(rows), good
	if perr != nil {
		info.Tail = ""
		info.Err = perr
		return info, nil
	}
	if good < info.FileBytes {
		info.Tail = "torn"
	}
	return info, nil
}

// syncDir fsyncs a directory entry change, degrading gracefully on
// filesystems that refuse to fsync directories.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()  //nolint:errcheck // best-effort, mirrors persist_file.go
	d.Close() //nolint:errcheck // read-only
}
