// Package ingest is the durability and publication machinery behind
// writable tables: a CRC-framed append-only write-ahead log (WAL) that
// makes unsealed rows durable before they are queryable, a crash-atomic
// manifest that names the current epoch's base snapshot and WAL, and a
// panic-isolated background merger loop with bounded retry/backoff.
//
// The paper's setting (§2, after Krueger et al.) keeps base data
// read-optimised and funnels writes through a small write-optimised delta
// that merges periodically. This package supplies the robustness half of
// that design — everything that must survive a crash or a fault — while
// the facade (byteslice.IngestTable) owns the in-memory epoch views and
// the ByteSlice segments themselves. The split keeps the I/O protocol
// testable byte-by-byte without a table in sight: the fault sweeps in
// wal_test.go drive every offset of a WAL through truncation, bit flips
// and failed writes exactly like the snapshot sweeps in the root package.
//
// Failure vocabulary (mirroring the snapshot reader's ErrCorrupt /
// ErrVersion split):
//
//   - a torn tail — frames cut short by a crash mid-append — is truncated
//     to the last intact frame and replay succeeds with the durable
//     prefix;
//   - a frame whose bytes are all present but whose checksum fails (bit
//     flip, corrupt page) is reported as ErrCorrupt: the data was
//     acknowledged durable and is now wrong, which recovery must not
//     paper over silently;
//   - an unknown WAL version is ErrVersion; a WAL whose header disagrees
//     with the base snapshot it claims to extend is ErrMismatch.
package ingest

import "errors"

// Typed errors. The facade wraps these into its own vocabulary where
// appropriate; tests classify recovery outcomes with errors.Is.
var (
	// ErrCorrupt marks a WAL or manifest whose durable bytes fail
	// verification: a full frame with a bad checksum, an implausible
	// length, a manifest that does not parse.
	ErrCorrupt = errors.New("ingest: corrupt")
	// ErrVersion marks an unknown WAL or manifest format version.
	ErrVersion = errors.New("ingest: unsupported version")
	// ErrMismatch marks a WAL that does not belong to the base snapshot
	// it is being replayed against (wrong epoch or base row count).
	ErrMismatch = errors.New("ingest: WAL does not match base snapshot")
	// ErrClosed is returned by operations on a closed WAL or merger.
	ErrClosed = errors.New("ingest: closed")
	// ErrBackpressure is returned by appends once the unmerged delta has
	// hit its configured bound and merging cannot keep up: the caller
	// must retry later (or force a merge) instead of growing the delta
	// without limit.
	ErrBackpressure = errors.New("ingest: delta bound reached, backpressure")
	// ErrTooLarge is returned by WAL.Append for a row payload that
	// exceeds the frame limit; the row can never be made durable.
	ErrTooLarge = errors.New("ingest: row payload exceeds frame limit")
)
