package ingest

import (
	"fmt"
	"sync"
	"time"
)

// Merger runs the background compaction loop with the failure posture
// the facade's merge needs: a panicking merge is recovered (never allowed
// to kill the process from a goroutine no caller can defend), failures
// retry with bounded exponential backoff, and after the retry budget the
// merger degrades to a slow steady cadence instead of giving up — the
// ingest pipeline keeps accepting rows until its delta bound applies
// backpressure, and a later retry may still succeed (disk freed, fault
// cleared).
type Merger struct {
	run     func() error
	backoff time.Duration
	max     time.Duration

	mu       sync.Mutex
	failures int   // consecutive failures since the last success
	panics   int64 // lifetime recovered panics
	merges   int64 // lifetime successful merges
	lastErr  error

	trigger chan struct{}
	done    chan struct{}
	stopped chan struct{}
	closed  bool
}

// MergerConfig bounds the retry behaviour.
type MergerConfig struct {
	// Backoff is the first retry delay after a failure (default 10ms).
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 5s).
	MaxBackoff time.Duration
}

// NewMerger starts the background loop around run. The loop sleeps until
// Trigger (or a retry deadline) wakes it; Close stops it.
func NewMerger(cfg MergerConfig, run func() error) *Merger {
	if cfg.Backoff <= 0 {
		cfg.Backoff = 10 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	m := &Merger{
		run:     run,
		backoff: cfg.Backoff,
		max:     cfg.MaxBackoff,
		trigger: make(chan struct{}, 1),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	go m.loop()
	return m
}

// Trigger wakes the merger; coalesced if one is already pending.
func (m *Merger) Trigger() {
	select {
	case m.trigger <- struct{}{}:
	default:
	}
}

// Failures returns the consecutive-failure count since the last success.
func (m *Merger) Failures() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failures
}

// Stats returns lifetime successful merges and recovered panics, and the
// last failure (nil after a success).
func (m *Merger) Stats() (merges, panics int64, lastErr error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.merges, m.panics, m.lastErr
}

// Close stops the loop and waits for an in-flight merge to finish.
func (m *Merger) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		<-m.stopped
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.done)
	<-m.stopped
}

// loop serialises merge attempts: one at a time, retried with backoff
// after failures, woken immediately by Trigger when healthy.
func (m *Merger) loop() {
	defer close(m.stopped)
	var retry *time.Timer
	var retryC <-chan time.Time
	stopRetry := func() {
		if retry != nil {
			retry.Stop()
			retry, retryC = nil, nil
		}
	}
	defer stopRetry()
	for {
		select {
		case <-m.done:
			return
		case <-m.trigger:
		case <-retryC:
			stopRetry()
		}
		err := m.attempt()
		m.mu.Lock()
		if err == nil {
			m.failures = 0
			m.merges++
			m.lastErr = nil
			m.mu.Unlock()
			continue
		}
		m.failures++
		m.lastErr = err
		shift := m.failures - 1
		if shift > 30 {
			shift = 30
		}
		d := m.backoff << uint(shift)
		if d > m.max || d <= 0 {
			d = m.max
		}
		m.mu.Unlock()
		stopRetry()
		retry = time.NewTimer(d)
		retryC = retry.C
	}
}

// attempt runs one merge with panic isolation.
func (m *Merger) attempt() (err error) {
	defer func() {
		if v := recover(); v != nil {
			m.mu.Lock()
			m.panics++
			m.mu.Unlock()
			err = fmt.Errorf("ingest: merge panicked: %v", v)
		}
	}()
	return m.run()
}
