package ingest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// The manifest is the one mutable cell of an ingest directory: a tiny
// CRC-framed file naming the current epoch and its two artifacts (base
// snapshot, WAL). It is replaced with the classic temp-file + fsync +
// rename + directory-fsync protocol, so a crash at any point during an
// epoch switch leaves either the old complete epoch or the new complete
// epoch — never a mix. Everything else in the directory is immutable or
// append-only; recovery starts here.
//
//	magic "BSMF" | version u16 = 1
//	frame 'M': epoch u64 | base string | wal string   (strings u32-length-prefixed)
//	framed exactly like the WAL: tag u8 | len u32 | payload | crc32c u32

const (
	manifestMagic   = "BSMF"
	manifestVersion = 1
	frameManifest   = 'M'

	// ManifestName is the manifest's filename within an ingest directory.
	ManifestName = "MANIFEST"
)

// ManifestWriterHook interposes on the manifest's byte stream, letting
// fault tests crash an epoch switch at exact offsets. Nil outside tests.
var ManifestWriterHook func(io.Writer) io.Writer

// Manifest names the current epoch's artifacts, as paths relative to the
// ingest directory.
type Manifest struct {
	Epoch uint64
	Base  string
	WAL   string
}

// WriteManifest atomically publishes m as dir's manifest.
func WriteManifest(dir string, m Manifest) (err error) {
	var payload bytes.Buffer
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], m.Epoch)
	payload.Write(b8[:])
	putStr := func(s string) {
		var b4 [4]byte
		binary.LittleEndian.PutUint32(b4[:], uint32(len(s)))
		payload.Write(b4[:])
		payload.WriteString(s)
	}
	putStr(m.Base)
	putStr(m.WAL)

	var stream bytes.Buffer
	stream.WriteString(manifestMagic)
	var b2 [2]byte
	binary.LittleEndian.PutUint16(b2[:], manifestVersion)
	stream.Write(b2[:])
	stream.WriteByte(frameManifest)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(payload.Len()))
	stream.Write(b4[:])
	stream.Write(payload.Bytes())
	binary.LittleEndian.PutUint32(b4[:], crc32.Checksum(payload.Bytes(), walCRC))
	stream.Write(b4[:])

	tmp, err := os.CreateTemp(dir, ".manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("ingest: write manifest: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()        //nolint:errcheck // already failing
			os.Remove(tmpName) //nolint:errcheck // best-effort cleanup
		}
	}()
	w := io.Writer(tmp)
	if ManifestWriterHook != nil {
		w = ManifestWriterHook(tmp)
	}
	if _, err = w.Write(stream.Bytes()); err != nil {
		return fmt.Errorf("ingest: write manifest: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ingest: write manifest: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ingest: write manifest: %w", err)
	}
	if err = os.Rename(tmpName, filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("ingest: publish manifest: %w", err)
	}
	syncDir(dir)
	return nil
}

// ReadManifest loads dir's manifest. Structural defects wrap ErrCorrupt;
// an unknown version wraps ErrVersion; a missing manifest surfaces the
// underlying os error (so callers can distinguish "not an ingest dir").
func ReadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, err
	}
	if len(data) < 6 {
		return Manifest{}, fmt.Errorf("%w: manifest truncated (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:4]) != manifestMagic {
		return Manifest{}, fmt.Errorf("%w: bad manifest magic %q", ErrCorrupt, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != manifestVersion {
		return Manifest{}, fmt.Errorf("%w: manifest version %d", ErrVersion, v)
	}
	payload, n, ferr := parseFrame(data[6:], frameManifest)
	if ferr != nil {
		return Manifest{}, fmt.Errorf("manifest frame: %w", ferr.or(ErrCorrupt))
	}
	if int64(len(data)) != 6+n {
		return Manifest{}, fmt.Errorf("%w: %d trailing manifest bytes", ErrCorrupt, int64(len(data))-6-n)
	}
	var m Manifest
	if len(payload) < 8 {
		return Manifest{}, fmt.Errorf("%w: manifest payload truncated", ErrCorrupt)
	}
	m.Epoch = binary.LittleEndian.Uint64(payload[:8])
	rest := payload[8:]
	getStr := func() (string, error) {
		if len(rest) < 4 {
			return "", fmt.Errorf("%w: manifest payload truncated", ErrCorrupt)
		}
		ln := binary.LittleEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint64(ln) > uint64(len(rest)) {
			return "", fmt.Errorf("%w: manifest string overruns payload", ErrCorrupt)
		}
		s := string(rest[:ln])
		rest = rest[ln:]
		return s, nil
	}
	if m.Base, err = getStr(); err != nil {
		return Manifest{}, err
	}
	if m.WAL, err = getStr(); err != nil {
		return Manifest{}, err
	}
	if len(rest) != 0 {
		return Manifest{}, fmt.Errorf("%w: %d trailing bytes in manifest payload", ErrCorrupt, len(rest))
	}
	// Artifact names are bare filenames inside the ingest directory; a
	// path separator smuggled into the manifest must not escape it.
	for _, name := range []string{m.Base, m.WAL} {
		if name == "" || name != filepath.Base(name) {
			return Manifest{}, fmt.Errorf("%w: implausible artifact name %q", ErrCorrupt, name)
		}
	}
	return m, nil
}
