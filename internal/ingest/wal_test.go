package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"byteslice/internal/faultio"
)

// walFixture creates a WAL with nrows deterministic row payloads and
// returns its path plus the payloads.
func walFixture(t testing.TB, nrows int) (string, [][]byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path, 3, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]byte
	for i := 0; i < nrows; i++ {
		p := []byte(fmt.Sprintf("row-%03d", i))
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, rows
}

func TestWALRoundTrip(t *testing.T) {
	path, rows := walFixture(t, 10)
	w, rec, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Epoch() != 3 || w.BaseRows() != 100 {
		t.Fatalf("header = epoch %d baseRows %d", w.Epoch(), w.BaseRows())
	}
	if rec.Truncated != 0 || len(rec.Rows) != len(rows) {
		t.Fatalf("recovery: %d rows, %d truncated", len(rec.Rows), rec.Truncated)
	}
	for i, r := range rec.Rows {
		if !bytes.Equal(r, rows[i]) {
			t.Fatalf("row %d = %q, want %q", i, r, rows[i])
		}
	}
	// Appends after recovery continue the log.
	if err := w.Append([]byte("row-new")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err = Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Rows) != len(rows)+1 || string(rec.Rows[len(rows)]) != "row-new" {
		t.Fatalf("after reopen-append: %d rows", len(rec.Rows))
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path, _ := walFixture(t, 1)
	if _, err := Create(path, 0, 0, true); err == nil {
		t.Fatal("Create over an existing WAL succeeded")
	}
}

// TestWALFaultSweepTruncate cuts the WAL at every byte offset: recovery
// must either succeed with a strict prefix of the appended rows (torn
// tail) or fail with a typed error — never a panic, never invented rows.
func TestWALFaultSweepTruncate(t *testing.T) {
	path, rows := walFixture(t, 8)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for off := 0; off <= len(full); off++ {
		cut := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(cut, full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if v := recover(); v != nil {
					t.Fatalf("truncate at %d: Open panicked: %v", off, v)
				}
			}()
			w, rec, err := Open(cut, true)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
					t.Fatalf("truncate at %d: error %v is not typed", off, err)
				}
				return
			}
			defer w.Close()
			if len(rec.Rows) > len(rows) {
				t.Fatalf("truncate at %d: %d rows recovered from %d appended", off, len(rec.Rows), len(rows))
			}
			for i, r := range rec.Rows {
				if !bytes.Equal(r, rows[i]) {
					t.Fatalf("truncate at %d: recovered row %d = %q, want %q", off, i, r, rows[i])
				}
			}
			// The torn tail must actually have been cut: a second open
			// sees a clean file with the same rows.
			if fi, err := os.Stat(cut); err != nil || fi.Size() != w.Size() {
				t.Fatalf("truncate at %d: file not trimmed to %d", off, w.Size())
			}
		}()
		os.Remove(cut) //nolint:errcheck // recreated next iteration
	}
}

// TestWALFaultSweepBitFlip flips one bit at every byte offset: recovery
// must fail typed (the durable bytes are wrong) or — when the flip lands
// in a frame length and masquerades as a torn tail — replay a clean
// prefix. Silently wrong rows are the only forbidden outcome.
func TestWALFaultSweepBitFlip(t *testing.T) {
	path, rows := walFixture(t, 8)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, mask := range []byte{0x01, 0x80} {
		for off := 0; off < len(full); off++ {
			flipped := faultio.Flip(full, off, mask)
			cut := filepath.Join(dir, "flip.log")
			if err := os.WriteFile(cut, flipped, 0o644); err != nil {
				t.Fatal(err)
			}
			func() {
				defer func() {
					if v := recover(); v != nil {
						t.Fatalf("flip %#x at %d: Open panicked: %v", mask, off, v)
					}
				}()
				w, rec, err := Open(cut, true)
				if err != nil {
					if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
						t.Fatalf("flip %#x at %d: error %v is not typed", mask, off, err)
					}
					return
				}
				defer w.Close()
				// A flip that still replays must have produced a clean
				// prefix of the real rows (e.g. a length flip that turned
				// the tail into a torn frame).
				if len(rec.Rows) >= len(rows) {
					t.Fatalf("flip %#x at %d: %d rows accepted from corrupt log", mask, off, len(rec.Rows))
				}
				for i, r := range rec.Rows {
					if !bytes.Equal(r, rows[i]) {
						t.Fatalf("flip %#x at %d: recovered row %d = %q, want %q", mask, off, i, r, rows[i])
					}
				}
			}()
			os.Remove(cut) //nolint:errcheck // recreated next iteration
		}
	}
}

// TestWALFaultSweepFailedWrite fails the append stream (hard and short)
// at every byte offset: the append must report the injected error, and a
// reopen must recover exactly the rows whose frames became durable.
func TestWALFaultSweepFailedWrite(t *testing.T) {
	refPath, rows := walFixture(t, 8)
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { WriterHook = nil }()
	for _, short := range []bool{false, true} {
		for off := 0; off <= len(ref); off++ {
			var fw *faultio.Writer
			WriterHook = func(w io.Writer) io.Writer {
				fw = &faultio.Writer{W: w, FailAt: int64(off), Short: short}
				return fw
			}
			dir := t.TempDir()
			path := filepath.Join(dir, "wal.log")
			func() {
				defer func() {
					if v := recover(); v != nil {
						t.Fatalf("write fault (short=%v) at %d: panicked: %v", short, off, v)
					}
				}()
				w, err := Create(path, 3, 100, true)
				appended := 0
				if err == nil {
					for i := 0; i < len(rows); i++ {
						if err = w.Append(rows[i]); err != nil {
							break
						}
						appended++
					}
					w.Close() //nolint:errcheck // stream may be failed
				}
				if off < len(ref) && err == nil {
					t.Fatalf("write fault (short=%v) at %d/%d not reported", short, off, len(ref))
				}
				if err != nil && !errors.Is(err, faultio.ErrInjected) {
					t.Fatalf("write fault at %d: error %v does not wrap the injected fault", off, err)
				}
				if _, err := os.Stat(path); err != nil {
					return // Create failed and cleaned up — nothing to recover
				}
				WriterHook = nil
				w2, rec, err := Open(path, true)
				if err != nil {
					if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
						t.Fatalf("recovery after write fault at %d: error %v is not typed", off, err)
					}
					return
				}
				defer w2.Close()
				// Every acknowledged append must be durable; unacknowledged
				// rows may or may not have made it (the failing frame), but
				// recovered rows are always a clean prefix.
				if len(rec.Rows) < appended || len(rec.Rows) > appended+1 {
					t.Fatalf("write fault at %d: %d acknowledged, %d recovered", off, appended, len(rec.Rows))
				}
				for i, r := range rec.Rows {
					if !bytes.Equal(r, rows[i]) {
						t.Fatalf("write fault at %d: recovered row %d = %q, want %q", off, i, r, rows[i])
					}
				}
			}()
		}
	}
}

// TestWALAppendAfterFailureRefused: a WAL that failed a write refuses
// further appends instead of writing at an unknown offset.
func TestWALAppendAfterFailureRefused(t *testing.T) {
	defer func() { WriterHook = nil }()
	WriterHook = func(w io.Writer) io.Writer {
		return &faultio.Writer{W: w, FailAt: 1 << 10, Short: true}
	}
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	payload := bytes.Repeat([]byte("x"), 200)
	var firstErr error
	for i := 0; i < 20 && firstErr == nil; i++ {
		firstErr = w.Append(payload)
	}
	if firstErr == nil {
		t.Fatal("fault never fired")
	}
	if err := w.Append(payload); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after failure = %v, want ErrClosed", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := Manifest{Epoch: 7, Base: "base-7.bslc", WAL: "wal-7.log"}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("manifest round trip: %+v != %+v", got, m)
	}
	// Overwrite publishes the new epoch atomically.
	m2 := Manifest{Epoch: 8, Base: "base-8.bslc", WAL: "wal-8.log"}
	if err := WriteManifest(dir, m2); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadManifest(dir); got != m2 {
		t.Fatalf("manifest overwrite: %+v != %+v", got, m2)
	}
}

// TestManifestFaultSweep: truncations and bit flips of the manifest are
// always detected as typed errors (it is small enough to sweep fully).
func TestManifestFaultSweep(t *testing.T) {
	dir := t.TempDir()
	if err := WriteManifest(dir, Manifest{Epoch: 7, Base: "b.bslc", WAL: "w.log"}); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	check := func(what string, data []byte) {
		t.Helper()
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, ManifestName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(dir2); err == nil {
			t.Fatalf("%s: corrupt manifest accepted", what)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("%s: error %v is not typed", what, err)
		}
	}
	for off := 0; off < len(full); off++ {
		check(fmt.Sprintf("truncate@%d", off), full[:off])
	}
	for off := 0; off < len(full); off++ {
		check(fmt.Sprintf("flip@%d", off), faultio.Flip(full, off, 0x40))
	}
}

func TestManifestRejectsPathEscapes(t *testing.T) {
	dir := t.TempDir()
	if err := WriteManifest(dir, Manifest{Epoch: 1, Base: "../evil.bslc", WAL: "w.log"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("path-escaping artifact name accepted: %v", err)
	}
}

func TestInspect(t *testing.T) {
	path, _ := walFixture(t, 4)
	info, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 4 || info.Tail != "clean" || info.Epoch != 3 || info.GoodBytes != info.FileBytes {
		t.Fatalf("info = %+v", info)
	}
	// A torn tail is reported, not truncated.
	full, _ := os.ReadFile(path)
	torn := filepath.Join(t.TempDir(), "torn.log")
	if err := os.WriteFile(torn, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	info, err = Inspect(torn)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 3 || info.Tail != "torn" {
		t.Fatalf("torn info = %+v", info)
	}
	if fi, _ := os.Stat(torn); fi.Size() != int64(len(full)-3) {
		t.Fatal("Inspect mutated the file")
	}
}

// FuzzWALReplay throws arbitrary byte images at the WAL parser: it must
// never panic, and whatever it accepts must re-parse identically after
// the torn tail is cut.
func FuzzWALReplay(f *testing.F) {
	path, _ := walFixture(f, 3)
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-2])
	f.Add([]byte(walMagic))
	f.Add(faultio.Flip(seed, len(seed)/2, 0x10))
	f.Fuzz(func(t *testing.T, data []byte) {
		epoch, baseRows, rows, good, err := parseWAL(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		if good > int64(len(data)) {
			t.Fatalf("good offset %d beyond %d input bytes", good, len(data))
		}
		// Re-parsing the durable prefix must reproduce the same result.
		e2, b2, rows2, good2, err := parseWAL(data[:good])
		if err != nil || e2 != epoch || b2 != baseRows || good2 != good || len(rows2) != len(rows) {
			t.Fatalf("re-parse of durable prefix diverged: %v (%d/%d rows)", err, len(rows2), len(rows))
		}
	})
}
