package ingest

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMergerRunsOnTrigger(t *testing.T) {
	var runs atomic.Int64
	m := NewMerger(MergerConfig{}, func() error {
		runs.Add(1)
		return nil
	})
	defer m.Close()
	m.Trigger()
	waitFor(t, "first merge", func() bool { return runs.Load() >= 1 })
	merges, panics, lastErr := m.Stats()
	if merges < 1 || panics != 0 || lastErr != nil {
		t.Fatalf("stats = %d merges, %d panics, err %v", merges, panics, lastErr)
	}
}

// TestMergerRetriesWithBackoff: a failing merge is retried without
// further triggers, and once the fault clears the merger recovers and
// resets its failure count.
func TestMergerRetriesWithBackoff(t *testing.T) {
	boom := errors.New("disk full")
	var runs atomic.Int64
	var healthy atomic.Bool
	m := NewMerger(MergerConfig{Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}, func() error {
		runs.Add(1)
		if healthy.Load() {
			return nil
		}
		return boom
	})
	defer m.Close()
	m.Trigger()
	waitFor(t, "three retries", func() bool { return runs.Load() >= 3 })
	if f := m.Failures(); f < 3 {
		t.Fatalf("failures = %d after %d runs", f, runs.Load())
	}
	if _, _, lastErr := m.Stats(); !errors.Is(lastErr, boom) {
		t.Fatalf("lastErr = %v", lastErr)
	}
	healthy.Store(true)
	waitFor(t, "recovery", func() bool { return m.Failures() == 0 })
	if _, _, lastErr := m.Stats(); lastErr != nil {
		t.Fatalf("lastErr after recovery = %v", lastErr)
	}
}

// TestMergerPanicIsolation: a panicking merge neither kills the process
// nor the loop; it is counted and surfaced as an error.
func TestMergerPanicIsolation(t *testing.T) {
	var runs atomic.Int64
	m := NewMerger(MergerConfig{Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}, func() error {
		if runs.Add(1) == 1 {
			panic("index out of range in merge")
		}
		return nil
	})
	defer m.Close()
	m.Trigger()
	waitFor(t, "recovery after panic", func() bool {
		merges, panics, _ := m.Stats()
		return panics == 1 && merges >= 1
	})
	_, _, lastErr := m.Stats()
	if lastErr != nil {
		t.Fatalf("lastErr after recovery = %v", lastErr)
	}
	// The panic text was preserved while it was the last error: re-run a
	// failing cycle to check the message shape.
	m2 := NewMerger(MergerConfig{Backoff: time.Hour}, func() error { panic("boom") })
	defer m2.Close()
	m2.Trigger()
	waitFor(t, "panic error recorded", func() bool {
		_, panics, _ := m2.Stats()
		return panics >= 1
	})
	if _, _, err := m2.Stats(); err == nil || !strings.Contains(err.Error(), "merge panicked: boom") {
		t.Fatalf("panic error = %v", err)
	}
}

func TestMergerCloseIdempotent(t *testing.T) {
	m := NewMerger(MergerConfig{}, func() error { return nil })
	m.Trigger()
	m.Close()
	m.Close() // must not deadlock or panic
}
