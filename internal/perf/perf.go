// Package perf models the processor-side costs the paper reports: retired
// instructions, branch mispredictions, and memory stall cycles.
//
// The paper evaluates storage layouts with hardware performance counters
// (Intel PCM on a Haswell i7-4770). Go exposes no such counters for an
// emulated instruction stream, so this package provides the synthetic
// equivalent: every emulated SIMD or scalar operation increments an
// instruction counter, conditional branches run through a simulated 2-bit
// saturating branch predictor, and memory accesses run through the cache
// simulator (internal/cache). A Model converts the counts into modelled
// cycles:
//
//	cycles = instructions·CPI + mispredicts·penalty + Σ level-hits·latency
//
// Absolute constants are calibration only; the figures reproduced in this
// repository depend on the counts, which are exact for the emulated
// instruction streams.
package perf

import (
	"fmt"

	"byteslice/internal/cache"
)

// Model holds the cost calibration constants.
type Model struct {
	// CPI is the base cycles-per-instruction of the modelled core for the
	// mostly-dependent SIMD streams the layouts execute. Haswell sustains
	// an IPC well above 1 on these kernels, hence CPI < 1.
	CPI float64
	// MispredictPenalty is the cycle cost of one branch misprediction.
	MispredictPenalty float64
	// L2HitLatency, L3HitLatency and MemoryLatency are the additional
	// stall cycles charged for a line served by L2, L3 or DRAM. L1 hits
	// (including prefetched lines) are covered by the pipeline and cost
	// nothing extra.
	L2HitLatency  float64
	L3HitLatency  float64
	MemoryLatency float64
	// BandwidthBytesPerCycle is the peak DRAM bandwidth of the socket in
	// bytes per core-cycle, shared by all threads. It caps multi-threaded
	// scan throughput (Figure 13).
	BandwidthBytesPerCycle float64
	// MLP is the memory-level parallelism of the core: how many
	// independent outstanding loads overlap (line-fill buffers). Grouped
	// loads — e.g. the ⌈k/8⌉ slice reads of one ByteSlice lookup, whose
	// addresses are all known upfront — divide their stall time by up to
	// this factor. This models the paper's observation that ByteSlice
	// code reconstruction overlaps in the instruction pipeline (§3.2).
	MLP int
}

// latency returns the stall charge for a line served at the given level.
func (m Model) latency(l cache.Level) float64 {
	switch l {
	case cache.L2:
		return m.L2HitLatency
	case cache.L3:
		return m.L3HitLatency
	case cache.Memory:
		return m.MemoryLatency
	}
	return 0
}

// DefaultModel approximates the paper's 3.4 GHz Haswell with dual-channel
// DDR3-1600 (~25.6 GB/s ≈ 7.5 B/cycle).
func DefaultModel() Model {
	return Model{
		CPI:                    0.55,
		MispredictPenalty:      15,
		L2HitLatency:           8,
		L3HitLatency:           26,
		MemoryLatency:          90,
		BandwidthBytesPerCycle: 7.5,
		MLP:                    8,
	}
}

// Counters is the raw event record of one profiled run.
type Counters struct {
	// SIMD counts emulated vector instructions, Scalar counts modelled
	// scalar ALU/shift/mask instructions, and Branches counts executed
	// conditional branches (each branch is also one instruction).
	SIMD     uint64
	Scalar   uint64
	Branches uint64
	// Mispredicts counts branches the simulated predictor got wrong.
	Mispredicts uint64
}

// Instructions is the total modelled instruction count.
func (c Counters) Instructions() uint64 { return c.SIMD + c.Scalar + c.Branches }

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.SIMD += o.SIMD
	c.Scalar += o.Scalar
	c.Branches += o.Branches
	c.Mispredicts += o.Mispredicts
}

// predictorState is a 2-bit saturating counter: 0,1 predict not-taken;
// 2,3 predict taken.
type predictorState uint8

// Predictor simulates a per-site branch predictor with 2-bit saturating
// counters, the textbook model for the "highly predictable branch" argument
// the paper makes for ByteSlice's early-stopping check (§3.1.1).
type Predictor struct {
	states []predictorState
}

// Site allocates a new branch site and returns its id. Each static branch
// in a scan kernel owns one site.
func (p *Predictor) Site() int {
	p.states = append(p.states, 1)
	return len(p.states) - 1
}

// Observe records the outcome of one execution of the branch at site and
// reports whether the predictor mispredicted it.
func (p *Predictor) Observe(site int, taken bool) bool {
	s := p.states[site]
	predicted := s >= 2
	if taken {
		if s < 3 {
			p.states[site] = s + 1
		}
	} else {
		if s > 0 {
			p.states[site] = s - 1
		}
	}
	return predicted != taken
}

// Reset returns every site to its initial weakly-not-taken state.
func (p *Predictor) Reset() {
	for i := range p.states {
		p.states[i] = 1
	}
}

// Profile bundles everything one profiled execution records: instruction
// counters, the branch predictor, the optional cache hierarchy, and the
// cost model used to convert counts to cycles.
type Profile struct {
	C     Counters
	Pred  Predictor
	Cache *cache.Hierarchy
	Model Model

	// stalls accrues memory stall cycles as accesses happen, so grouped
	// (overlapped) accesses can be charged less than serial ones.
	stalls float64
}

// Span is one memory access of a grouped load.
type Span struct {
	Addr, Size uint64
}

// NewProfile returns a profile with the default cost model and a cache
// hierarchy modelling the paper's machine.
func NewProfile() *Profile {
	return &Profile{Model: DefaultModel(), Cache: cache.New(cache.DefaultConfig())}
}

// NewProfileNoCache returns a profile that counts instructions and branches
// but does not simulate the memory hierarchy (memory stalls are zero).
func NewProfileNoCache() *Profile {
	return &Profile{Model: DefaultModel()}
}

// Branch executes a conditional branch at the given predictor site: it
// counts the instruction, consults the predictor, and returns cond so call
// sites read naturally as `if p.Branch(site, cond) { ... }`.
func (p *Profile) Branch(site int, cond bool) bool {
	p.C.Branches++
	if p.Pred.Observe(site, cond) {
		p.C.Mispredicts++
	}
	return cond
}

// Touch records a serial memory access of size bytes at the simulated
// address and charges its full stall latency.
func (p *Profile) Touch(addr, size uint64) {
	if p.Cache != nil {
		p.stalls += p.Model.latency(p.Cache.Access(addr, size))
	}
}

// TouchGroup records a group of independent memory accesses whose
// addresses are all known before any of them issues, so the core overlaps
// them: the group's stall charge is the sum of the individual latencies
// divided by the effective parallelism min(len, MLP), floored at the
// slowest single access. Latencies are taken against the cache state
// before the group issues (a prefetch triggered inside the group cannot
// arrive in time for the group itself); the accesses are then applied
// normally so later groups see warmed, trained state.
func (p *Profile) TouchGroup(spans []Span) {
	p.touchGroup(spans, p.Model.MLP)
}

// TouchGroupWindowed is TouchGroup for a long series of grouped loads whose
// overlap is additionally limited to window consecutive accesses — e.g. a
// VBP lookup, whose k loads are independent but whose merging loop only
// exposes a few iterations to the out-of-order window at a time.
func (p *Profile) TouchGroupWindowed(spans []Span, window int) {
	if window < 1 {
		window = 1
	}
	p.touchGroup(spans, window)
}

func (p *Profile) touchGroup(spans []Span, window int) {
	if p.Cache == nil || len(spans) == 0 {
		return
	}
	// Latencies are peeked for the whole group before any access is
	// applied: nothing the group itself triggers (fills, prefetches) can
	// arrive in time for the group.
	var latBuf [48]float64
	lat := latBuf[:0]
	for _, s := range spans {
		lat = append(lat, p.Model.latency(p.Cache.Peek(s.Addr, s.Size)))
	}
	for _, s := range spans {
		p.Cache.Access(s.Addr, s.Size)
	}
	if p.Model.MLP > 0 && window > p.Model.MLP {
		window = p.Model.MLP
	}
	for lo := 0; lo < len(lat); lo += window {
		hi := lo + window
		if hi > len(lat) {
			hi = len(lat)
		}
		var sum, worst float64
		for _, l := range lat[lo:hi] {
			sum += l
			if l > worst {
				worst = l
			}
		}
		charge := sum / float64(hi-lo)
		if charge < worst {
			charge = worst
		}
		p.stalls += charge
	}
}

// MemStalls is the modelled memory stall component in cycles.
func (p *Profile) MemStalls() float64 { return p.stalls }

// Cycles is the modelled cycle count for everything recorded so far.
func (p *Profile) Cycles() float64 {
	return float64(p.C.Instructions())*p.Model.CPI +
		float64(p.C.Mispredicts)*p.Model.MispredictPenalty +
		p.MemStalls()
}

// Instructions is the modelled instruction count recorded so far.
func (p *Profile) Instructions() uint64 { return p.C.Instructions() }

// Reset clears counters, predictor state and cache statistics (cache
// contents stay warm, mirroring repeated-measurement methodology).
func (p *Profile) Reset() {
	p.C = Counters{}
	p.Pred.Reset()
	p.stalls = 0
	if p.Cache != nil {
		p.Cache.ResetStats()
	}
}

// String summarises the profile.
func (p *Profile) String() string {
	return fmt.Sprintf("instr=%d (simd=%d scalar=%d br=%d misp=%d) cycles=%.0f",
		p.C.Instructions(), p.C.SIMD, p.C.Scalar, p.C.Branches, p.C.Mispredicts, p.Cycles())
}

// Merge folds another profile's counters and stall cycles into p (used to
// aggregate per-worker profiles of a parallel scan). Cache contents are
// per-worker (per-core on hardware) and are not merged.
func (p *Profile) Merge(o *Profile) {
	p.C.Add(o.C)
	p.stalls += o.stalls
}
