package perf

import (
	"testing"

	"byteslice/internal/cache"
)

func TestCountersAdd(t *testing.T) {
	a := Counters{SIMD: 1, Scalar: 2, Branches: 3, Mispredicts: 1}
	b := Counters{SIMD: 10, Scalar: 20, Branches: 30, Mispredicts: 2}
	a.Add(b)
	if a.SIMD != 11 || a.Scalar != 22 || a.Branches != 33 || a.Mispredicts != 3 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.Instructions() != 11+22+33 {
		t.Fatalf("Instructions = %d", a.Instructions())
	}
}

// TestPredictorSaturation drives one site through the 2-bit state machine.
func TestPredictorSaturation(t *testing.T) {
	var p Predictor
	s := p.Site()
	// Initial state is weakly-not-taken: first taken branch mispredicts,
	// second (now weakly-taken) predicts correctly.
	if !p.Observe(s, true) {
		t.Fatal("first taken branch should mispredict")
	}
	if p.Observe(s, true) {
		t.Fatal("second taken branch should be predicted")
	}
	for i := 0; i < 10; i++ {
		p.Observe(s, true) // saturate
	}
	// One not-taken blip mispredicts but does not flip the prediction.
	if !p.Observe(s, false) {
		t.Fatal("blip should mispredict")
	}
	if p.Observe(s, true) {
		t.Fatal("prediction should still be taken after one blip")
	}
}

func TestPredictorAlternatingWorstCase(t *testing.T) {
	var p Predictor
	s := p.Site()
	misses := 0
	for i := 0; i < 100; i++ {
		if p.Observe(s, i%2 == 0) {
			misses++
		}
	}
	if misses < 50 {
		t.Fatalf("alternating pattern should mispredict at least half: %d", misses)
	}
}

func TestPredictorIndependentSites(t *testing.T) {
	var p Predictor
	a, b := p.Site(), p.Site()
	for i := 0; i < 5; i++ {
		p.Observe(a, true)
		p.Observe(b, false)
	}
	if p.Observe(a, true) || p.Observe(b, false) {
		t.Fatal("sites should have trained independently")
	}
	p.Reset()
	if !p.Observe(a, true) {
		t.Fatal("Reset should restore weakly-not-taken")
	}
}

func TestProfileBranchCounts(t *testing.T) {
	p := NewProfileNoCache()
	s := p.Pred.Site()
	if p.Branch(s, false) {
		t.Fatal("Branch must return its condition")
	}
	if !p.Branch(s, true) {
		t.Fatal("Branch must return its condition")
	}
	if p.C.Branches != 2 {
		t.Fatalf("branches = %d", p.C.Branches)
	}
	if p.C.Mispredicts != 1 {
		t.Fatalf("mispredicts = %d (one flip expected)", p.C.Mispredicts)
	}
}

func TestCycleModel(t *testing.T) {
	p := NewProfileNoCache()
	p.Model = Model{CPI: 1, MispredictPenalty: 10}
	p.C = Counters{SIMD: 100, Scalar: 50, Branches: 10, Mispredicts: 2}
	if got, want := p.Cycles(), float64(160+20); got != want {
		t.Fatalf("Cycles = %v, want %v", got, want)
	}
	if p.MemStalls() != 0 {
		t.Fatal("no cache ⇒ no stalls")
	}
}

func TestMemStalls(t *testing.T) {
	p := NewProfile()
	p.Model = Model{CPI: 0, MemoryLatency: 100, L2HitLatency: 10, L3HitLatency: 30}
	p.Touch(0, 1) // cold: memory
	p.Touch(0, 1) // L1 hit: free
	if got := p.MemStalls(); got != 100 {
		t.Fatalf("MemStalls = %v, want 100", got)
	}
	if got := p.Cycles(); got != 100 {
		t.Fatalf("Cycles = %v, want 100", got)
	}
}

func TestProfileReset(t *testing.T) {
	p := NewProfile()
	s := p.Pred.Site()
	p.Branch(s, true)
	p.Touch(4096, 8)
	p.C.SIMD = 7
	p.Reset()
	if p.C != (Counters{}) {
		t.Fatalf("counters not reset: %+v", p.C)
	}
	if p.Cache.Stats() != (cache.Stats{}) {
		t.Fatalf("cache stats not reset")
	}
	if p.Instructions() != 0 || p.Cycles() != 0 {
		t.Fatal("derived metrics not zero after reset")
	}
}

func TestProfileString(t *testing.T) {
	p := NewProfileNoCache()
	p.C.SIMD = 3
	if s := p.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
}

func TestDefaultModelSane(t *testing.T) {
	m := DefaultModel()
	if m.CPI <= 0 || m.MispredictPenalty <= 0 || m.MemoryLatency <= m.L3HitLatency ||
		m.L3HitLatency <= m.L2HitLatency || m.BandwidthBytesPerCycle <= 0 {
		t.Fatalf("implausible default model: %+v", m)
	}
}

func TestTouchGroupOverlap(t *testing.T) {
	p := NewProfile()
	p.Model = Model{MemoryLatency: 100, L2HitLatency: 10, L3HitLatency: 30, MLP: 8}
	// Four cold lines in distinct regions: overlapped charge is the max,
	// not the sum (4×100/4 = 100, floored at 100).
	spans := []Span{{Addr: 0, Size: 1}, {Addr: 4096, Size: 1}, {Addr: 8192, Size: 1}, {Addr: 12288, Size: 1}}
	p.TouchGroup(spans)
	if got := p.MemStalls(); got != 100 {
		t.Fatalf("overlapped stall = %v, want 100", got)
	}
	// The accesses were applied: repeating the group is free.
	p.TouchGroup(spans)
	if got := p.MemStalls(); got != 100 {
		t.Fatalf("warm group should add nothing: %v", got)
	}
}

func TestTouchGroupMLPCap(t *testing.T) {
	p := NewProfile()
	p.Model = Model{MemoryLatency: 100, MLP: 4}
	spans := make([]Span, 16)
	for i := range spans {
		spans[i] = Span{Addr: uint64(i) * 4096, Size: 1}
	}
	p.TouchGroup(spans)
	// 16 misses with MLP 4: sum 1600 / 4 = 400.
	if got := p.MemStalls(); got != 400 {
		t.Fatalf("MLP-capped stall = %v, want 400", got)
	}
}

func TestTouchGroupWindowed(t *testing.T) {
	p := NewProfile()
	p.Model = Model{MemoryLatency: 100, MLP: 8}
	spans := make([]Span, 16)
	for i := range spans {
		spans[i] = Span{Addr: uint64(i) * 4096, Size: 1}
	}
	p.TouchGroupWindowed(spans, 2)
	// Windows of 2: per window 200/2 = 100 floored at 100 → 8×100.
	if got := p.MemStalls(); got != 800 {
		t.Fatalf("windowed stall = %v, want 800", got)
	}
	q := NewProfile()
	q.Model = Model{MemoryLatency: 100, MLP: 8}
	q.TouchGroupWindowed(spans[:1], 0) // degenerate window clamps to 1
	if got := q.MemStalls(); got != 100 {
		t.Fatalf("degenerate window stall = %v", got)
	}
}

func TestTouchGroupPeeksBeforeAccess(t *testing.T) {
	// A group touching the same cold line twice is charged twice from the
	// pre-state (the loads issue together), not once.
	p := NewProfile()
	p.Model = Model{MemoryLatency: 100, MLP: 8}
	spans := []Span{{Addr: 0, Size: 1}, {Addr: 8, Size: 1}, {Addr: 4096, Size: 1}}
	p.TouchGroup(spans)
	// latencies 100,100,100 → 300/3 = 100 floored at 100.
	if got := p.MemStalls(); got != 100 {
		t.Fatalf("stall = %v, want 100", got)
	}
}

func TestTouchGroupNilCache(t *testing.T) {
	p := NewProfileNoCache()
	p.TouchGroup([]Span{{Addr: 0, Size: 8}})
	p.TouchGroupWindowed(nil, 4)
	if p.MemStalls() != 0 {
		t.Fatal("no cache ⇒ no stalls")
	}
}

func TestModelLatencyLevels(t *testing.T) {
	m := Model{L2HitLatency: 2, L3HitLatency: 3, MemoryLatency: 4}
	if m.latency(cache.L1) != 0 || m.latency(cache.L2) != 2 ||
		m.latency(cache.L3) != 3 || m.latency(cache.Memory) != 4 {
		t.Fatal("latency mapping wrong")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewProfileNoCache(), NewProfile()
	a.C.SIMD = 5
	b.C.SIMD = 7
	b.Touch(0, 1) // cold miss → stalls in b
	a.Merge(b)
	if a.C.SIMD != 12 {
		t.Fatalf("merged SIMD = %d", a.C.SIMD)
	}
	if a.MemStalls() != b.MemStalls() || a.MemStalls() == 0 {
		t.Fatalf("merged stalls = %v", a.MemStalls())
	}
}
