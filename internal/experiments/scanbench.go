package experiments

import (
	"time"

	"byteslice/internal/bitvec"
	"byteslice/internal/compress"
	"byteslice/internal/core"
	"byteslice/internal/datagen"
	"byteslice/internal/kernel"
	"byteslice/internal/layout"
	"byteslice/internal/perf"
	"byteslice/internal/simd"
)

// ScanBenchEntry is one wall-clock measurement: a full-column scan (or a
// scan-shaped composite — zoned scan, fused aggregate, multi-predicate
// pipeline) on one execution path at one width and worker count.
type ScanBenchEntry struct {
	Width      int     `json:"width"`
	Path       string  `json:"path"` // "native" or "engine"
	Workers    int     `json:"workers"`
	NsPerScan  float64 `json:"ns_per_scan"`
	RowsPerSec float64 `json:"rows_per_sec"`
	// Data names the code distribution ("uniform" when empty; "sorted",
	// "clustered" for the zone-map benchmarks).
	Data string `json:"data,omitempty"`
	// Mode distinguishes the composite benchmarks: "" is a plain scan;
	// "scan_zoned" a zone-map-pruned scan; "agg_two_pass"/"agg_fused" the
	// filter→sum shapes; "multi_column_first"/"multi_pred_first" the
	// multi-predicate conjunction shapes.
	Mode string `json:"mode,omitempty"`
	// Preds is the conjunct count of the multi-predicate benchmarks.
	Preds int `json:"preds,omitempty"`
	// Compression distinguishes the compressed-versus-raw benchmarks:
	// "raw" scans the plain ByteSlice layout, "compressed" the fused
	// FOR/delta decode kernel over the same codes ("" elsewhere).
	Compression string `json:"compression,omitempty"`
	// Layout names the storage layout of the lookup benchmarks
	// ("ByteSlice", "HBP", "ByteSliceC"; "" elsewhere — the scan
	// benchmarks predate the axis and imply ByteSlice).
	Layout string `json:"layout,omitempty"`
	// P50Ns / P99Ns are request-latency percentiles, set only by the
	// serving-layer benchmarks ("serve_cN" modes), whose NsPerScan is the
	// mean request latency and RowsPerSec the sustained queries/sec.
	P50Ns float64 `json:"p50_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
}

// ScanBenchResult is the payload bsbench -json writes: rows-per-second for
// the native kernels (serial and per worker count) against the modelled
// engine path, per code width.
type ScanBenchResult struct {
	Rows        int              `json:"rows"`
	Op          string           `json:"op"`
	Selectivity float64          `json:"selectivity"`
	Results     []ScanBenchEntry `json:"results"`
}

// ScanBench wall-clock-benchmarks the two execution paths. Unlike the rest
// of this package, which reports the cost model's cycle counts, these are
// real elapsed-time measurements of the native SWAR kernels versus the
// emulated engine interpreting the same layout.
func ScanBench(cfg Config, workerCounts []int) *ScanBenchResult {
	const sel = 0.10
	res := &ScanBenchResult{Rows: cfg.N, Op: "lt", Selectivity: sel}
	for _, k := range cfg.Widths {
		codes := datagen.Uniform(datagen.NewRand(cfg.Seed), cfg.N, k)
		b := core.New(codes, k, nil)
		p := constFor(codes, k, layout.Lt, sel)
		out := bitvec.New(cfg.N)

		e := simd.New(perf.NewProfileNoCache())
		ns := measureScan(func() { b.Scan(e, p, out) })
		res.Results = append(res.Results, entry(k, "engine", 1, ns, cfg.N))

		ns = measureScan(func() { kernel.Scan(b, p, out) })
		res.Results = append(res.Results, entry(k, "native", 1, ns, cfg.N))

		for _, w := range workerCounts {
			if w < 2 {
				continue
			}
			w := w
			ns = measureScan(func() { kernel.ParallelScan(b, p, w, out) })
			res.Results = append(res.Results, entry(k, "native", w, ns, cfg.N))
		}
	}
	return res
}

func entry(k int, path string, workers int, ns float64, n int) ScanBenchEntry {
	return ScanBenchEntry{
		Width:      k,
		Path:       path,
		Workers:    workers,
		NsPerScan:  ns,
		RowsPerSec: float64(n) / (ns / 1e9),
	}
}

// ZonedScanBench measures zone-map pruning on the acceptance scenario: a
// 12-bit column at 1% selectivity, sorted and clustered distributions,
// plain ParallelScan versus ParallelScanZoned at each worker count (plus
// serial). Both paths scan the same zone-mapped column, so the delta is
// purely the pruning.
func ZonedScanBench(cfg Config, workerCounts []int) []ScanBenchEntry {
	const (
		k   = 12
		sel = 0.01
	)
	rng := datagen.NewRand(cfg.Seed)
	sets := []struct {
		name  string
		codes []uint32
	}{
		{"sorted", datagen.Sorted(rng, cfg.N, k)},
		{"clustered", datagen.Clustered(rng, cfg.N, k, 4096)},
	}
	var out []ScanBenchEntry
	for _, s := range sets {
		b := core.New(s.codes, k, nil)
		b.BuildZoneMaps()
		p := constFor(s.codes, k, layout.Lt, sel)
		res := bitvec.New(cfg.N)
		for _, w := range append([]int{1}, workerCounts...) {
			w := w
			ns := measureScan(func() { kernel.ParallelScan(b, p, w, res) })
			e := entry(k, "native", w, ns, cfg.N)
			e.Data, e.Mode = s.name, "scan"
			out = append(out, e)

			ns = measureScan(func() { kernel.ParallelScanZoned(b, p, w, res) })
			e = entry(k, "native", w, ns, cfg.N)
			e.Data, e.Mode = s.name, "scan_zoned"
			out = append(out, e)
		}
	}
	return out
}

// AggBench measures the fused filter→sum kernel against the two-pass shape
// it replaces (scan to a bit vector, then a masked SWAR sum re-reading it):
// a 12-bit filter column at 10% selectivity and a uniform 16-bit value
// column. Two filter shapes run: uniform without zone maps, and the sorted
// zone-mapped date-range shape the fused path is built for. On the zoned
// column the two-pass arm uses the zoned scan — the same kernel the facade
// picks — so the delta is purely the fusion, not the pruning.
func AggBench(cfg Config, workerCounts []int) []ScanBenchEntry {
	const (
		kf  = 12
		kv  = 16
		sel = 0.10
	)
	rng := datagen.NewRand(cfg.Seed)
	v := core.New(datagen.Uniform(rng, cfg.N, kv), kv, nil)
	shapes := []struct {
		name  string
		codes []uint32
		zoned bool
	}{
		{"uniform", datagen.Uniform(rng, cfg.N, kf), false},
		{"sorted", datagen.Sorted(rng, cfg.N, kf), true},
	}
	mask := bitvec.New(cfg.N)
	var out []ScanBenchEntry
	for _, s := range shapes {
		f := core.New(s.codes, kf, nil)
		if s.zoned {
			f.BuildZoneMaps()
		}
		p := constFor(s.codes, kf, layout.Lt, sel)
		for _, w := range append([]int{1}, workerCounts...) {
			w := w
			ns := measureScan(func() {
				if s.zoned {
					kernel.ParallelScanZoned(f, p, w, mask)
				} else {
					kernel.ParallelScan(f, p, w, mask)
				}
				kernel.ParallelSum(v, mask, w)
			})
			e := entry(kv, "native", w, ns, cfg.N)
			e.Data, e.Mode = s.name, "agg_two_pass"
			out = append(out, e)

			ns = measureScan(func() { kernel.ScanSum(f, p, v, w) })
			e = entry(kv, "native", w, ns, cfg.N)
			e.Data, e.Mode = s.name, "agg_fused"
			out = append(out, e)
		}
	}
	return out
}

// CompressedScanBench measures the fused compressed-scan kernel against
// the raw SWAR scan on the same codes: a memory-bound 16-bit column (two
// byte slices per row) at 10% selectivity, sorted and clustered
// distributions, per worker count. The raw arm scans core.ByteSlice, the
// compressed arm decodes FOR/delta blocks inside the scan loop with exact
// block-bounds pruning — the delta is the bytes the compressed layout
// never moves.
func CompressedScanBench(cfg Config, workerCounts []int) []ScanBenchEntry {
	const (
		k   = 16
		sel = 0.10
	)
	rng := datagen.NewRand(cfg.Seed)
	sets := []struct {
		name  string
		codes []uint32
	}{
		{"sorted", datagen.Sorted(rng, cfg.N, k)},
		{"clustered", datagen.Clustered(rng, cfg.N, k, 4096)},
	}
	var out []ScanBenchEntry
	for _, s := range sets {
		raw := core.New(s.codes, k, nil)
		cc := compress.New(s.codes, k, nil)
		p := constFor(s.codes, k, layout.Lt, sel)
		res := bitvec.New(cfg.N)
		for _, w := range append([]int{1}, workerCounts...) {
			w := w
			ns := measureScan(func() { kernel.ParallelScan(raw, p, w, res) })
			e := entry(k, "native", w, ns, cfg.N)
			e.Data, e.Mode, e.Compression = s.name, "scan", "raw"
			out = append(out, e)

			ns = measureScan(func() { kernel.ParallelScanCompressed(cc, p, w, res) })
			e = entry(k, "native", w, ns, cfg.N)
			e.Data, e.Mode, e.Compression = s.name, "scan", "compressed"
			out = append(out, e)
		}
	}
	return out
}

// MultiPredBench measures an npreds-way conjunction (12-bit uniform
// columns, 30% selectivity each) in the two native shapes the planner
// chooses between: the column-first pipeline and the predicate-first
// multi-scan.
func MultiPredBench(cfg Config, npreds int, workerCounts []int) []ScanBenchEntry {
	const (
		k   = 12
		sel = 0.30
	)
	rng := datagen.NewRand(cfg.Seed)
	cols := make([]*core.ByteSlice, npreds)
	preds := make([]layout.Predicate, npreds)
	for i := range cols {
		codes := datagen.Uniform(rng, cfg.N, k)
		cols[i] = core.New(codes, k, nil)
		preds[i] = constFor(codes, k, layout.Lt, sel)
	}
	acc, cur := bitvec.New(cfg.N), bitvec.New(cfg.N)
	var out []ScanBenchEntry
	for _, w := range append([]int{1}, workerCounts...) {
		w := w
		ns := measureScan(func() {
			kernel.ParallelScan(cols[0], preds[0], w, acc)
			for i := 1; i < npreds; i++ {
				kernel.ParallelScanPipelined(cols[i], preds[i], acc, false, w, cur)
				acc, cur = cur, acc
			}
		})
		e := entry(k, "native", w, ns, cfg.N)
		e.Mode, e.Preds = "multi_column_first", npreds
		out = append(out, e)

		ns = measureScan(func() { kernel.ParallelScanMulti(cols, preds, false, w, acc) })
		e = entry(k, "native", w, ns, cfg.N)
		e.Mode, e.Preds = "multi_pred_first", npreds
		out = append(out, e)
	}
	return out
}

// measureScan times f with benchmark-style adaptive repetition: doubling
// rounds until one round runs at least 50ms, then the minimum ns per call
// over three such rounds. The minimum, not the mean, is what characterises
// the kernel — scheduling noise and interrupts only ever add time. The
// first call warms the cache and is discarded.
func measureScan(f func()) float64 {
	f()
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			f()
		}
		if el := time.Since(start); el >= 50*time.Millisecond || reps >= 1<<16 {
			best := float64(el.Nanoseconds()) / float64(reps)
			for round := 0; round < 2; round++ {
				start = time.Now()
				for i := 0; i < reps; i++ {
					f()
				}
				if ns := float64(time.Since(start).Nanoseconds()) / float64(reps); ns < best {
					best = ns
				}
			}
			return best
		}
		reps *= 2
	}
}
