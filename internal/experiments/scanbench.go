package experiments

import (
	"time"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/datagen"
	"byteslice/internal/kernel"
	"byteslice/internal/layout"
	"byteslice/internal/perf"
	"byteslice/internal/simd"
)

// ScanBenchEntry is one wall-clock measurement: a full-column scan on one
// execution path at one width and worker count.
type ScanBenchEntry struct {
	Width      int     `json:"width"`
	Path       string  `json:"path"` // "native" or "engine"
	Workers    int     `json:"workers"`
	NsPerScan  float64 `json:"ns_per_scan"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

// ScanBenchResult is the payload bsbench -json writes: rows-per-second for
// the native kernels (serial and per worker count) against the modelled
// engine path, per code width.
type ScanBenchResult struct {
	Rows        int              `json:"rows"`
	Op          string           `json:"op"`
	Selectivity float64          `json:"selectivity"`
	Results     []ScanBenchEntry `json:"results"`
}

// ScanBench wall-clock-benchmarks the two execution paths. Unlike the rest
// of this package, which reports the cost model's cycle counts, these are
// real elapsed-time measurements of the native SWAR kernels versus the
// emulated engine interpreting the same layout.
func ScanBench(cfg Config, workerCounts []int) *ScanBenchResult {
	const sel = 0.10
	res := &ScanBenchResult{Rows: cfg.N, Op: "lt", Selectivity: sel}
	for _, k := range cfg.Widths {
		codes := datagen.Uniform(datagen.NewRand(cfg.Seed), cfg.N, k)
		b := core.New(codes, k, nil)
		p := constFor(codes, k, layout.Lt, sel)
		out := bitvec.New(cfg.N)

		e := simd.New(perf.NewProfileNoCache())
		ns := measureScan(func() { b.Scan(e, p, out) })
		res.Results = append(res.Results, entry(k, "engine", 1, ns, cfg.N))

		ns = measureScan(func() { kernel.Scan(b, p, out) })
		res.Results = append(res.Results, entry(k, "native", 1, ns, cfg.N))

		for _, w := range workerCounts {
			if w < 2 {
				continue
			}
			w := w
			ns = measureScan(func() { kernel.ParallelScan(b, p, w, out) })
			res.Results = append(res.Results, entry(k, "native", w, ns, cfg.N))
		}
	}
	return res
}

func entry(k int, path string, workers int, ns float64, n int) ScanBenchEntry {
	return ScanBenchEntry{
		Width:      k,
		Path:       path,
		Workers:    workers,
		NsPerScan:  ns,
		RowsPerSec: float64(n) / (ns / 1e9),
	}
}

// measureScan times f with benchmark-style adaptive repetition: doubling
// rounds until one round runs at least 100ms, then ns per call of the last
// round. The first call warms the cache and is discarded.
func measureScan(f func()) float64 {
	f()
	for reps := 1; ; reps *= 2 {
		start := time.Now()
		for i := 0; i < reps; i++ {
			f()
		}
		if el := time.Since(start); el >= 100*time.Millisecond || reps >= 1<<16 {
			return float64(el.Nanoseconds()) / float64(reps)
		}
	}
}
