package experiments

import (
	"fmt"

	"byteslice/internal/bitvec"
	"byteslice/internal/cache"
	"byteslice/internal/core"
	"byteslice/internal/datagen"
	"byteslice/internal/layout"
	"byteslice/internal/layout/vbp"
	"byteslice/internal/layouts"
	"byteslice/internal/perf"
	"byteslice/internal/simd"
)

func init() {
	register("fig8", fig8)
	register("fig9", func(c Config) []*Report {
		return scanSweep(c, "Fig9", "Scan performance, selectivity 10%", []layout.Op{layout.Lt, layout.Eq, layout.Ne}, 0.10)
	})
	register("fig16", func(c Config) []*Report {
		return scanSweep(c, "Fig16", "Scan performance, other predicates", []layout.Op{layout.Gt, layout.Ge, layout.Le}, 0.10)
	})
	register("fig17", func(c Config) []*Report {
		return scanSweep(c, "Fig17", "Scan performance, selectivity 90%", []layout.Op{layout.Lt, layout.Eq, layout.Ne}, 0.90)
	})
	register("fig18", func(c Config) []*Report {
		return scanSweep(c, "Fig18", "Scan performance, selectivity 1%", []layout.Op{layout.Lt, layout.Eq, layout.Ne}, 0.01)
	})
	register("fig10", fig10)
	register("fig11", fig11)
	register("fig15", fig15)
	register("headline", headline)
	register("ablation-tail", ablationTail)
	register("ablation-tau", ablationTau)
	register("ablation-inverse-movemask", ablationInverseMovemask)
}

// profiledScan runs one full-column scan under a fresh profile with the
// cache hierarchy modelled, returning (cycles, instructions) per code.
func profiledScan(l layout.Layout, p layout.Predicate, n int) (float64, float64) {
	prof := perf.NewProfile()
	e := simd.New(prof)
	out := bitvec.New(l.Len())
	// One warm-up pass trains the branch predictor and warms the cache the
	// way a steady-state measurement loop would.
	l.Scan(e, p, out)
	prof.Reset()
	l.Scan(e, p, out)
	return prof.Cycles() / float64(n), float64(prof.Instructions()) / float64(n)
}

// constFor picks a comparison constant achieving the requested selectivity
// for the operator.
func constFor(codes []uint32, k int, op layout.Op, sel float64) layout.Predicate {
	max := uint32(uint64(1)<<uint(k) - 1)
	switch op {
	case layout.Lt, layout.Le:
		return layout.Predicate{Op: op, C1: datagen.SelectivityConstant(codes, sel)}
	case layout.Gt, layout.Ge:
		return layout.Predicate{Op: op, C1: datagen.SelectivityConstant(codes, 1-sel)}
	case layout.Eq:
		// Equality on uniform data has selectivity 2^-k; the paper's
		// equality scans measure the code path, not the match count.
		return layout.Predicate{Op: op, C1: max / 2}
	case layout.Ne:
		return layout.Predicate{Op: op, C1: max / 2}
	case layout.Between:
		lo := datagen.SelectivityConstant(codes, 0.5-sel/2)
		hi := datagen.SelectivityConstant(codes, 0.5+sel/2)
		return layout.Predicate{Op: op, C1: lo, C2: hi}
	}
	panic("unknown op")
}

// scanSweep is the common shape of Figures 9, 16, 17 and 18: per operator,
// cycles/code and instructions/code for each layout across code widths.
func scanSweep(cfg Config, id, title string, ops []layout.Op, sel float64) []*Report {
	rng := datagen.NewRand(cfg.Seed)
	var reports []*Report
	for _, op := range ops {
		rc := &Report{ID: id, Title: fmt.Sprintf("%s — cycles/code, OP %s", title, op),
			Columns: append([]string{"k"}, layouts.Names...)}
		ri := &Report{ID: id, Title: fmt.Sprintf("%s — instructions/code, OP %s", title, op),
			Columns: append([]string{"k"}, layouts.Names...)}
		for _, k := range cfg.Widths {
			codes := datagen.Uniform(rng, cfg.N, k)
			p := constFor(codes, k, op, sel)
			cyc := []string{fi(uint64(k))}
			ins := []string{fi(uint64(k))}
			for _, name := range layouts.Names {
				l := layouts.Builders[name](codes, k, cache.NewArena(64))
				c, i := profiledScan(l, p, cfg.N)
				cyc = append(cyc, ff(c))
				ins = append(ins, ff(i))
			}
			rc.AddRow(cyc...)
			ri.AddRow(ins...)
		}
		reports = append(reports, rc, ri)
	}
	return reports
}

// fig8 reproduces the lookup experiment: random lookups over each layout,
// reporting cycles/code and instructions/code as the width grows. VBP's
// linear growth (up to ~1800 cycles) against the flat Bit-Packed/HBP/
// ByteSlice lines is the figure's point.
func fig8(cfg Config) []*Report {
	rng := datagen.NewRand(cfg.Seed + 8)
	rc := &Report{ID: "Fig8", Title: "Lookup — cycles/code",
		Columns: append([]string{"k"}, layouts.Names...)}
	ri := &Report{ID: "Fig8", Title: "Lookup — instructions/code",
		Columns: append([]string{"k"}, layouts.Names...)}
	// Random lookups only show the memory-hierarchy trade-off when the
	// column dwarfs the last-level cache (the paper uses a billion rows);
	// enforce a floor on the column size regardless of the micro-benchmark
	// scale.
	n := cfg.N
	if n < 1<<22 {
		n = 1 << 22
	}
	idx := make([]int, cfg.Lookups)
	for i := range idx {
		idx[i] = rng.IntN(n)
	}
	for _, k := range cfg.Widths {
		codes := datagen.Uniform(rng, n, k)
		cyc := []string{fi(uint64(k))}
		ins := []string{fi(uint64(k))}
		for _, name := range layouts.Names {
			l := layouts.Builders[name](codes, k, cache.NewArena(64))
			prof := perf.NewProfile()
			e := simd.New(prof)
			for _, i := range idx {
				if got := l.Lookup(e, i); got != codes[i] {
					panic(fmt.Sprintf("fig8: %s lookup mismatch", name))
				}
			}
			cyc = append(cyc, f2(prof.Cycles()/float64(len(idx))))
			ins = append(ins, f2(float64(prof.Instructions())/float64(len(idx))))
		}
		rc.AddRow(cyc...)
		ri.AddRow(ins...)
	}
	return []*Report{rc, ri}
}

// fig10 isolates the effect of early stopping on VBP and ByteSlice scans.
func fig10(cfg Config) []*Report {
	rng := datagen.NewRand(cfg.Seed + 10)
	cols := []string{"k", "ByteSlice", "VBP", "ByteSlice w/o ES", "VBP w/o ES"}
	rc := &Report{ID: "Fig10", Title: "Effect of early stopping — cycles/code (v < c)", Columns: cols}
	ri := &Report{ID: "Fig10", Title: "Effect of early stopping — instructions/code (v < c)", Columns: cols}
	for _, k := range cfg.Widths {
		codes := datagen.Uniform(rng, cfg.N, k)
		p := constFor(codes, k, layout.Lt, 0.10)
		cyc := []string{fi(uint64(k))}
		ins := []string{fi(uint64(k))}
		for _, es := range []bool{true, false} {
			bs := core.New(codes, k, cache.NewArena(64))
			bs.SetEarlyStop(es)
			c, i := profiledScan(bs, p, cfg.N)
			v := vbp.New(codes, k, cache.NewArena(64))
			v.SetEarlyStop(es)
			cv, iv := profiledScan(v, p, cfg.N)
			cyc = append(cyc, ff(c), ff(cv))
			ins = append(ins, ff(i), ff(iv))
		}
		rc.AddRow(cyc...)
		ri.AddRow(ins...)
	}
	return []*Report{rc, ri}
}

// fig11 studies data skew: (a) varying the Zipf factor with c = 0.1·2^k,
// (b) varying selectivity under zipf = 1, (c) under uniform data.
func fig11(cfg Config) []*Report {
	const k = 12
	rng := datagen.NewRand(cfg.Seed + 11)

	ra := &Report{ID: "Fig11a", Title: "Scan v < c under varying skew (k=12, c = 0.1·2^k) — cycles/code",
		Columns: append([]string{"zipf"}, layouts.Names...)}
	for _, z := range []float64{0, 1, 2} {
		codes := datagen.Zipf(rng, cfg.N, k, z)
		p := layout.Predicate{Op: layout.Lt, C1: uint32(1) << k / 10}
		row := []string{f2(z)}
		for _, name := range layouts.Names {
			l := layouts.Builders[name](codes, k, cache.NewArena(64))
			c, _ := profiledScan(l, p, cfg.N)
			row = append(row, ff(c))
		}
		ra.AddRow(row...)
	}

	sweep := func(id, title string, z float64) *Report {
		r := &Report{ID: id, Title: title, Columns: append([]string{"selectivity"}, layouts.Names...)}
		codes := datagen.Zipf(rng, cfg.N, k, z)
		for _, sel := range []float64{0.2, 0.4, 0.6, 0.8} {
			p := layout.Predicate{Op: layout.Lt, C1: datagen.SelectivityConstant(codes, sel)}
			row := []string{fpct(sel)}
			for _, name := range layouts.Names {
				l := layouts.Builders[name](codes, k, cache.NewArena(64))
				c, _ := profiledScan(l, p, cfg.N)
				row = append(row, ff(c))
			}
			r.AddRow(row...)
		}
		return r
	}
	rb := sweep("Fig11b", "Scan v < c, varying selectivity (zipf=1) — cycles/code", 1)
	rc := sweep("Fig11c", "Scan v < c, varying selectivity (uniform) — cycles/code", 0)
	return []*Report{ra, rb, rc}
}

// fig15 compares the 8-bit ByteSlice against the 16-bit-slice variant
// (Appendix A), with VBP as the reference line.
func fig15(cfg Config) []*Report {
	rng := datagen.NewRand(cfg.Seed + 15)
	cols := []string{"k", "VBP", "ByteSlice", "16-Bit-Slice"}
	rl := &Report{ID: "Fig15a", Title: "Bank width: lookup — cycles/code", Columns: cols}
	rs := &Report{ID: "Fig15b", Title: "Bank width: scan v < c — cycles/code", Columns: cols}
	idx := make([]int, cfg.Lookups)
	for i := range idx {
		idx[i] = rng.IntN(cfg.N)
	}
	build := map[string]layout.Builder{
		"VBP": vbp.NewBuilder, "ByteSlice": core.NewBuilder, "16-Bit-Slice": core.New16Builder,
	}
	for _, k := range cfg.Widths {
		codes := datagen.Uniform(rng, cfg.N, k)
		p := constFor(codes, k, layout.Lt, 0.10)
		lrow := []string{fi(uint64(k))}
		srow := []string{fi(uint64(k))}
		for _, name := range cols[1:] {
			l := build[name](codes, k, cache.NewArena(64))
			prof := perf.NewProfile()
			e := simd.New(prof)
			for _, i := range idx {
				l.Lookup(e, i)
			}
			lrow = append(lrow, f2(prof.Cycles()/float64(len(idx))))
			c, _ := profiledScan(l, p, cfg.N)
			srow = append(srow, ff(c))
		}
		rl.AddRow(lrow...)
		rs.AddRow(srow...)
	}
	return []*Report{rl, rs}
}

// headline measures the paper's headline claim: ByteSlice scans at under
// half a processor cycle per column value.
func headline(cfg Config) []*Report {
	rng := datagen.NewRand(cfg.Seed + 99)
	r := &Report{ID: "Headline", Title: "ByteSlice scan cost (v < c, selectivity 10%)",
		Columns: []string{"k", "cycles/code", "instructions/code", "< 0.5 cycles?"}}
	for _, k := range []int{8, 12, 16, 20, 24, 32} {
		codes := datagen.Uniform(rng, cfg.N, k)
		l := core.New(codes, k, cache.NewArena(64))
		p := constFor(codes, k, layout.Lt, 0.10)
		c, i := profiledScan(l, p, cfg.N)
		ok := "yes"
		if c >= 0.5 {
			ok = "no"
		}
		r.AddRow(fi(uint64(k)), ff(c), ff(i), ok)
	}
	return []*Report{r}
}

// ablationTail compares Option 1 (padded tail byte) against Option 2 (VBP
// tail) for widths with tail bits (§3.1.1).
func ablationTail(cfg Config) []*Report {
	rng := datagen.NewRand(cfg.Seed + 31)
	cols := []string{"k", "Option1 scan", "Option2 scan", "Option1 lookup", "Option2 lookup"}
	r := &Report{ID: "Ablation-Tail", Title: "ByteSlice tail handling (cycles/code, v < c)", Columns: cols}
	idx := make([]int, cfg.Lookups)
	for i := range idx {
		idx[i] = rng.IntN(cfg.N)
	}
	for _, k := range []int{9, 11, 12, 15, 17, 20, 23, 27, 31} {
		codes := datagen.Uniform(rng, cfg.N, k)
		p := constFor(codes, k, layout.Lt, 0.10)
		o1 := core.New(codes, k, cache.NewArena(64))
		o2 := core.NewOption2(codes, k, cache.NewArena(64))
		c1, _ := profiledScan(o1, p, cfg.N)
		c2, _ := profiledScan(o2, p, cfg.N)
		lu := func(l layout.Layout) float64 {
			prof := perf.NewProfile()
			e := simd.New(prof)
			for _, i := range idx {
				l.Lookup(e, i)
			}
			return prof.Cycles() / float64(len(idx))
		}
		r.AddRow(fi(uint64(k)), ff(c1), ff(c2), f2(lu(o1)), f2(lu(o2)))
	}
	return []*Report{r}
}

// ablationTau sweeps VBP's early-stop check interval around the τ = 4 the
// BitWeaving paper established.
func ablationTau(cfg Config) []*Report {
	rng := datagen.NewRand(cfg.Seed + 32)
	r := &Report{ID: "Ablation-Tau", Title: "VBP early-stop interval τ (cycles/code, v < c, k=16)",
		Columns: []string{"tau", "cycles/code", "instructions/code"}}
	const k = 16
	codes := datagen.Uniform(rng, cfg.N, k)
	p := constFor(codes, k, layout.Lt, 0.10)
	for _, tau := range []int{1, 2, 4, 8, 16} {
		v := vbp.New(codes, k, cache.NewArena(64))
		v.SetTau(tau)
		c, i := profiledScan(v, p, cfg.N)
		r.AddRow(fi(uint64(tau)), ff(c), ff(i))
	}
	return []*Report{r}
}

// ablationInverseMovemask quantifies the Figure 7 discussion: pipelining by
// expanding the previous result with the simulated inverse movemask versus
// condensing Meq (Algorithm 2).
func ablationInverseMovemask(cfg Config) []*Report {
	rng := datagen.NewRand(cfg.Seed + 33)
	r := &Report{ID: "Ablation-InvMovemask",
		Title:   "Column-first pipelining: condense (Alg. 2) vs expand (Fig. 7) — cycles/tuple",
		Columns: []string{"sel(P1)", "condense", "expand"}}
	const k = 12
	codes1 := datagen.Uniform(rng, cfg.N, k)
	codes2 := datagen.Uniform(rng, cfg.N, k)
	col1 := core.New(codes1, k, cache.NewArena(64))
	col2 := core.New(codes2, k, cache.NewArena(64))
	for _, sel := range []float64{0.5, 0.1, 0.01} {
		p1 := layout.Predicate{Op: layout.Lt, C1: datagen.SelectivityConstant(codes1, sel)}
		p2 := layout.Predicate{Op: layout.Gt, C1: datagen.SelectivityConstant(codes2, 0.5)}
		prev := bitvec.New(cfg.N)
		out := bitvec.New(cfg.N)

		measure := func(expand bool) float64 {
			prof := perf.NewProfile()
			e := simd.New(prof)
			col1.Scan(e, p1, prev)
			if expand {
				col2.ScanPipelinedExpand(e, p2, prev, out)
			} else {
				col2.ScanPipelined(e, p2, prev, false, out)
			}
			return prof.Cycles() / float64(cfg.N)
		}
		r.AddRow(fpct(sel), ff(measure(false)), ff(measure(true)))
	}
	return []*Report{r}
}
