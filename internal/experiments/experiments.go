// Package experiments regenerates every table and figure of the paper's
// evaluation section (§4 and the appendices). Each experiment is a named
// function that runs the relevant workload through the storage layouts and
// formats the same rows or series the paper plots. The cmd/bsbench binary
// and the repository's bench_test.go both drive this package.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Config scales the suite. The paper's micro-benchmarks use a one-
// billion-row table on real hardware; the emulated default is scaled down
// so the full suite runs on a laptop in minutes while preserving every
// ratio the figures report.
type Config struct {
	// N is the micro-benchmark column length.
	N int
	// Lookups is the number of random lookups for the lookup experiments.
	Lookups int
	// Widths are the code widths swept in the per-k figures.
	Widths []int
	// TPCHRows is the wide-table size for the query experiments.
	TPCHRows int
	// Seed drives all data generation.
	Seed uint64
}

// Default returns the standard laptop-scale configuration.
func Default() Config {
	return Config{
		N:        1 << 20,
		Lookups:  100_000,
		Widths:   []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32},
		TPCHRows: 200_000,
		Seed:     0xB17E,
	}
}

// Quick returns a fast smoke-test configuration used by integration tests.
func Quick() Config {
	return Config{
		N:        1 << 16,
		Lookups:  5_000,
		Widths:   []int{4, 8, 12, 17, 24, 32},
		TPCHRows: 20_000,
		Seed:     0xB17E,
	}
}

// Report is one regenerated table or figure as labelled rows.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// CSV renders the report as comma-separated rows (header first), with a
// leading comment line carrying the id and title — the format plotting
// scripts consume.
func (r *Report) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", r.ID, r.Title)
	esc := func(cell string) string {
		if strings.ContainsAny(cell, ",\"\n") {
			return `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
		}
		return cell
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	for _, row := range r.Rows {
		line(row)
	}
	return b.String()
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner produces the reports of one experiment.
type Runner func(Config) []*Report

// registry maps experiment ids to runners. Populated by the per-area files.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs lists the registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) ([]*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(cfg), nil
}

func ff(v float64) string   { return fmt.Sprintf("%.4f", v) }
func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func fi(v uint64) string    { return fmt.Sprintf("%d", v) }
func fpct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
