package experiments

import (
	"math/rand/v2"
	"sort"

	"byteslice/internal/compress"
	"byteslice/internal/core"
	"byteslice/internal/datagen"
	"byteslice/internal/kernel"
	"byteslice/internal/layout/hbp"
	"byteslice/internal/perf"
	"byteslice/internal/simd"
	"byteslice/internal/sortpart"
)

// LookupBench wall-clock-benchmarks the lookup-side kernels across
// storage layouts, cfg.Lookups random rows out of a cfg.N-row column per
// measurement. Two shapes run:
//
//   - mode "lookup": the point-lookup/join-probe gather, rows in random
//     order — the access pattern HBP's one-bank-load lookup is built for.
//     The block-decoding ByteSliceC arm gets the same rows ascending,
//     which is the only shape the facade ever hands it (each visited
//     512-code block then decodes exactly once).
//   - mode "order_by": the ORDER-BY materialisation — an ascending row
//     list gathered and fed through the partitioned sort, as
//     Table.OrderBy runs it.
//
// Rows/sec counts looked-up rows, so the Layout axis is directly
// comparable per width.
func LookupBench(cfg Config) []ScanBenchEntry {
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xA5A5)) //nolint:gosec // benchmark sampling
	var out []ScanBenchEntry
	for _, k := range cfg.Widths {
		codes := datagen.Uniform(datagen.NewRand(cfg.Seed), cfg.N, k)
		random := make([]int32, cfg.Lookups)
		for i := range random {
			random[i] = int32(rng.IntN(cfg.N))
		}
		asc := append([]int32(nil), random...)
		sort.Slice(asc, func(i, j int) bool { return asc[i] < asc[j] })
		got := make([]uint32, cfg.Lookups)

		bs := core.New(codes, k, nil)
		h := hbp.New(codes, k, nil)
		cc := compress.New(codes, k, nil)
		arms := []struct {
			layout       string
			gatherRandom func()
			gatherAsc    func()
		}{
			{"ByteSlice",
				func() { kernel.LookupMany(bs, random, got) },
				func() { kernel.LookupMany(bs, asc, got) }},
			{"HBP",
				func() { kernel.LookupManyHBP(h, random, got) },
				func() { kernel.LookupManyHBP(h, asc, got) }},
			{"ByteSliceC",
				func() { kernel.LookupManyCompressed(cc, asc, got) },
				func() { kernel.LookupManyCompressed(cc, asc, got) }},
		}
		e := simd.New(perf.NewProfileNoCache())
		for _, arm := range arms {
			ns := measureScan(arm.gatherRandom)
			en := entry(k, "native", 1, ns, cfg.Lookups)
			en.Mode, en.Layout = "lookup", arm.layout
			out = append(out, en)

			gather := arm.gatherAsc
			ns = measureScan(func() {
				gather()
				sortpart.Sort(e, core.New(got, k, nil))
			})
			en = entry(k, "native", 1, ns, cfg.Lookups)
			en.Mode, en.Layout = "order_by", arm.layout
			out = append(out, en)
		}
	}
	return out
}
