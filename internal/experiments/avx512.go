package experiments

import (
	"byteslice/internal/cache"
	"byteslice/internal/core"
	"byteslice/internal/datagen"
	"byteslice/internal/layout"
	"byteslice/internal/layout/vbp"
)

func init() {
	register("avx512", avx512)
}

// avx512 tests the paper's §3.1.1 projection onto 512-bit registers: with
// S = 512, VBP's early-stopping probability (Equation 1) worsens — a
// segment only stops once all 512 codes settle — while ByteSlice's
// per-byte stopping (Equation 2, S/8 = 64 codes per segment) barely
// degrades, so the ByteSlice-over-VBP scan advantage should widen. The
// experiment runs the implemented 512-bit variants of both layouts next to
// the 256-bit ones and reports cycles, instructions, and the gap.
func avx512(cfg Config) []*Report {
	rng := datagen.NewRand(cfg.Seed + 512)
	const k = 32
	codes := datagen.Uniform(rng, cfg.N, k)
	p := constFor(codes, k, layout.Lt, 0.10)

	builders := []struct {
		name  string
		s     int
		build layout.Builder
	}{
		{"ByteSlice", 256, core.NewBuilder},
		{"VBP", 256, vbp.NewBuilder},
		{"ByteSlice-512", 512, core.New512Builder},
		{"VBP-512", 512, vbp.New512Builder},
	}

	r := &Report{
		ID:      "AVX512",
		Title:   "512-bit registers (§3.1.1 projection): scan v < c, k = 32",
		Columns: []string{"layout", "S", "cycles/code", "instructions/code", "analytic bits/code"},
	}
	cyc := map[string]float64{}
	ins := map[string]float64{}
	for _, b := range builders {
		l := b.build(codes, k, cache.NewArena(64))
		c, i := profiledScan(l, p, cfg.N)
		var analytic float64
		switch {
		case b.name[:3] == "VBP":
			analytic = ExpectedBits(k, 4, func(t int) float64 { return PVBP(t, b.s) })
		default:
			analytic = ExpectedBits(k, 8, func(t int) float64 { return PBS(t, b.s) })
		}
		r.AddRow(b.name, fi(uint64(b.s)), ff(c), ff(i), f2(analytic))
		cyc[b.name], ins[b.name] = c, i
	}

	gap := &Report{
		ID:      "AVX512-gap",
		Title:   "ByteSlice-over-VBP scan advantage by register width",
		Columns: []string{"S", "VBP/BS instructions", "VBP/BS cycles"},
		Notes: []string{
			"the instruction (work) gap widens with S, the paper's §3.1.1 prediction;",
			"cycles also fold in branch behaviour: wider segments bias the two layouts' early-stop branches differently",
		},
	}
	gap.AddRow("256", f2(ins["VBP"]/ins["ByteSlice"]), f2(cyc["VBP"]/cyc["ByteSlice"]))
	gap.AddRow("512", f2(ins["VBP-512"]/ins["ByteSlice-512"]), f2(cyc["VBP-512"]/cyc["ByteSlice-512"]))
	return []*Report{r, gap}
}
