package experiments

import (
	"fmt"

	"byteslice/internal/cache"
	"byteslice/internal/exec"
	"byteslice/internal/layouts"
	"byteslice/internal/perf"
	"byteslice/internal/realdata"
	"byteslice/internal/table"
	"byteslice/internal/tpch"
)

func init() {
	register("fig14", fig14)
	register("fig20", fig20)
	register("fig21", fig21)
	register("fig22", fig22)
}

// strategyFor matches the paper's setup: ByteSlice uses the column-first
// pipelined evaluation it recommends; the other layouts evaluate complex
// predicates conventionally.
func strategyFor(layoutName string) exec.Strategy {
	if layoutName == "ByteSlice" {
		return exec.ColumnFirst
	}
	return exec.Baseline
}

// runSuite executes queries on the table under every layout and returns
// results[layout][query].
func runSuite(tables map[string]*table.Table, queries []tpch.Query) map[string]map[string]tpch.Result {
	out := make(map[string]map[string]tpch.Result, len(tables))
	for name, tb := range tables {
		out[name] = make(map[string]tpch.Result, len(queries))
		for _, q := range queries {
			prof := perf.NewProfile()
			res, err := tpch.Run(tb, q, strategyFor(name), prof)
			if err != nil {
				panic(fmt.Sprintf("%s/%s: %v", name, q.Name, err))
			}
			out[name][q.Name] = res
		}
	}
	return out
}

func buildAll(specs func(name string) *table.Table) map[string]*table.Table {
	tables := make(map[string]*table.Table, len(layouts.Names))
	for _, name := range layouts.Names {
		tables[name] = specs(name)
	}
	return tables
}

// speedupReport renders per-query speedups over the Bit-Packed layout —
// the presentation of Figures 14, 21 and 22a.
func speedupReport(id, title string, queries []tpch.Query, results map[string]map[string]tpch.Result) *Report {
	r := &Report{ID: id, Title: title,
		Columns: append([]string{"query"}, layouts.Names...)}
	for _, q := range queries {
		base := results["BitPacked"][q.Name].TotalCycles()
		row := []string{q.Name}
		for _, name := range layouts.Names {
			c := results[name][q.Name].TotalCycles()
			if c == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, f2(base/c)+"x")
		}
		r.AddRow(row...)
	}
	return r
}

// breakdownReport renders the scan/lookup time split per query and layout
// (cycles per tuple) — the presentation of Figures 20 and 22b.
func breakdownReport(id, title string, n int, queries []tpch.Query, results map[string]map[string]tpch.Result) *Report {
	r := &Report{ID: id, Title: title,
		Columns: []string{"query", "layout", "scan cyc/tuple", "lookup cyc/tuple", "total", "matches"}}
	for _, q := range queries {
		for _, name := range layouts.Names {
			res := results[name][q.Name]
			r.AddRow(q.Name, name,
				ff(res.ScanCycles/float64(n)),
				ff(res.LookupCycles/float64(n)),
				ff(res.TotalCycles()/float64(n)),
				fi(uint64(res.Matches)))
		}
	}
	return r
}

func tpchTables(cfg Config, skew float64) (*tpch.Dataset, map[string]*table.Table, []tpch.Query) {
	d := tpch.Generate(tpch.Config{Rows: cfg.TPCHRows, Seed: cfg.Seed, Skew: skew})
	tables := buildAll(func(name string) *table.Table {
		return d.Build(layouts.Builders[name], cache.NewArena(64))
	})
	return d, tables, tpch.Queries(d)
}

func fig14(cfg Config) []*Report {
	_, tables, queries := tpchTables(cfg, 0)
	results := runSuite(tables, queries)
	return []*Report{speedupReport("Fig14", "TPC-H speed-up over Bit-Packed", queries, results)}
}

func fig20(cfg Config) []*Report {
	_, tables, queries := tpchTables(cfg, 0)
	results := runSuite(tables, queries)
	return []*Report{breakdownReport("Fig20", "TPC-H execution time breakdown", cfg.TPCHRows, queries, results)}
}

func fig21(cfg Config) []*Report {
	var out []*Report
	for _, z := range []float64{1, 2} {
		_, tables, queries := tpchTables(cfg, z)
		results := runSuite(tables, queries)
		out = append(out, speedupReport("Fig21",
			fmt.Sprintf("TPC-H speed-up over Bit-Packed, zipf = %.0f", z), queries, results))
	}
	return out
}

func fig22(cfg Config) []*Report {
	var out []*Report
	for _, d := range []*realdata.Dataset{realdata.Adult(cfg.Seed), realdata.Baseball(cfg.Seed)} {
		tables := buildAll(func(name string) *table.Table {
			return d.Build(layouts.Builders[name], cache.NewArena(64))
		})
		results := runSuite(tables, d.Queries)
		n := len(d.Raw[d.Specs[0].Name])
		out = append(out,
			speedupReport("Fig22", d.Name+" speed-up over Bit-Packed", d.Queries, results),
			breakdownReport("Fig22", d.Name+" execution time breakdown", n, d.Queries, results))
	}
	return out
}
