package experiments

import (
	"fmt"
	"math"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/datagen"
	"byteslice/internal/layout"
	"byteslice/internal/layout/vbp"
	"byteslice/internal/perf"
	"byteslice/internal/simd"
)

func init() {
	register("table1", table1)
	register("table1-empirical", table1Empirical)
}

// PVBP is Equation 1: the probability that a VBP segment of S codes early
// stops after the t most significant bits, under uniform random codes and
// constant.
func PVBP(t, s int) float64 {
	return math.Pow(1-math.Pow(0.5, float64(t)), float64(s))
}

// PBS is Equation 2: the ByteSlice counterpart with S/8 codes per segment.
func PBS(t, s int) float64 {
	return math.Pow(1-math.Pow(0.5, float64(t)), float64(s)/8)
}

// ExpectedBits returns the expected number of bits examined per code before
// a segment early stops, for a layout whose stopping opportunities come
// every step bits and a code width of k bits. prob(t) is the cumulative
// probability the segment has stopped by bit t (Equations 1 and 2 are
// cumulative: "no code matches the constant in its t most significant
// bits" is monotone in t), so block i executes with probability
// 1 − prob(t_{i−1}).
func ExpectedBits(k, step int, prob func(t int) float64) float64 {
	expected := 0.0
	prev := 0.0
	for t := step; t <= k; t += step {
		expected += float64(step) * (1 - prev)
		prev = prob(t)
	}
	return expected
}

// table1 reproduces Table 1 analytically: early-stopping probabilities for
// VBP (checked every τ=4 bits) and ByteSlice (every 8 bits) at S=256, plus
// the expected bits scanned per code, and the §3.1.1 S=512 projection.
func table1(Config) []*Report {
	r := &Report{
		ID:      "Table1",
		Title:   "Early stopping probability under S = 256",
		Columns: []string{"Bits examined (t)", "P_VBP(t)", "P_BS(t)"},
	}
	for t := 4; t <= 32; t += 4 {
		pv := fmt.Sprintf("%.10f", PVBP(t, 256))
		pb := "-"
		if t%8 == 0 {
			pb = fmt.Sprintf("%.10f", PBS(t, 256))
		}
		r.AddRow(fi(uint64(t)), pv, pb)
	}
	ev := ExpectedBits(32, 4, func(t int) float64 { return PVBP(t, 256) })
	eb := ExpectedBits(32, 8, func(t int) float64 { return PBS(t, 256) })
	r.AddRow("Expected value", f2(ev)+" bits/code", f2(eb)+" bits/code")

	r512 := &Report{
		ID:      "Table1-S512",
		Title:   "Expected bits scanned per code with 512-bit registers (§3.1.1)",
		Columns: []string{"Layout", "S=256", "S=512"},
	}
	r512.AddRow("VBP",
		f2(ExpectedBits(32, 4, func(t int) float64 { return PVBP(t, 256) })),
		f2(ExpectedBits(32, 4, func(t int) float64 { return PVBP(t, 512) })))
	r512.AddRow("ByteSlice",
		f2(ExpectedBits(32, 8, func(t int) float64 { return PBS(t, 256) })),
		f2(ExpectedBits(32, 8, func(t int) float64 { return PBS(t, 512) })))
	return []*Report{r, r512}
}

// table1Empirical validates the Table 1 model against the implemented
// scans: it instruments real VBP and ByteSlice scans over uniform data and
// reports the measured average bits examined per code.
func table1Empirical(cfg Config) []*Report {
	rng := datagen.NewRand(cfg.Seed)
	n := cfg.N
	if n > 1<<20 {
		n = 1 << 20
	}
	k := 32
	codes := datagen.Uniform(rng, n, k)
	c := uint32(rng.Uint64N(1 << 32))
	p := layout.Predicate{Op: layout.Eq, C1: c}
	out := bitvec.New(n)

	r := &Report{
		ID:      "Table1-empirical",
		Title:   "Measured bits examined per code (k=32, uniform, v = c)",
		Columns: []string{"Layout", "Analytic", "Measured"},
		Notes: []string{
			"measured from load instruction counts of the instrumented scans",
		},
	}

	// ByteSlice: loads per segment = bytes examined; 32 codes per segment.
	{
		b := core.New(codes, k, nil)
		prof := perf.NewProfileNoCache()
		e := simd.New(prof)
		before := prof.C.SIMD
		b.Scan(e, p, out)
		// Eq path: the first iteration (no early-stop test) costs 3 SIMD,
		// every further one 4 (vptest + load + cmpeq + and), the stopping
		// vptest costs 1, and the segment's movemask 1 — so with E
		// executed iterations, SIMD/segment = 4E + 1; prepare adds 4
		// broadcasts.
		segs := float64(b.Segments())
		perSeg := (float64(prof.C.SIMD-before) - 4) / segs
		iters := (perSeg - 1) / 4
		measured := iters * 8
		analytic := ExpectedBits(32, 8, func(t int) float64 { return PBS(t, 256) })
		r.AddRow("ByteSlice", f2(analytic), f2(measured))
	}
	// VBP: each executed iteration examines one bit and issues 2 loads
	// (data + constant), xor+andnot = 2 ops, plus τ-checks.
	{
		v := vbp.New(codes, k, nil)
		prof := perf.NewProfileNoCache()
		e := simd.New(prof)
		v.Scan(e, p, out)
		segs := float64(v.Segments())
		// Per iteration: 2 loads + 2 logic = 4 SIMD; per τ-check 1 vptest.
		// Solve approximately ignoring the vptest (≤ 1/4 per iteration).
		iters := float64(prof.C.SIMD) / (4.25 * segs)
		analytic := ExpectedBits(32, 4, func(t int) float64 { return PVBP(t, 256) })
		r.AddRow("VBP", f2(analytic), f2(iters))
	}
	return []*Report{r}
}
