package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// TestRegistryComplete pins the experiment inventory: every table/figure
// of the paper's evaluation has a registered regenerator.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table1-empirical",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
		"headline", "ablation-tail", "ablation-tau", "ablation-inverse-movemask", "avx512",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if _, err := Run("nope", Quick()); err == nil {
		t.Fatal("unknown id should error")
	}
}

func cell(t *testing.T, r *Report, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(r.Rows[row][col], "x")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %d,%d of %s (%q): %v", row, col, r.ID, r.Rows[row][col], err)
	}
	return v
}

func colIndex(t *testing.T, r *Report, name string) int {
	t.Helper()
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("%s has no column %q (have %v)", r.ID, name, r.Columns)
	return -1
}

// TestTable1MatchesPaper checks the analytic probabilities against the
// values printed in the paper.
func TestTable1MatchesPaper(t *testing.T) {
	within := func(got, want, tol float64) bool { return math.Abs(got-want) <= tol }
	if !within(PVBP(8, 256), 0.3671597549, 1e-9) {
		t.Fatalf("PVBP(8) = %v", PVBP(8, 256))
	}
	if !within(PBS(8, 256), 0.8822809129, 1e-9) {
		t.Fatalf("PBS(8) = %v", PBS(8, 256))
	}
	if !within(PVBP(12, 256), 0.9394058945, 1e-9) {
		t.Fatalf("PVBP(12) = %v", PVBP(12, 256))
	}
	if !within(PBS(16, 256), 0.9995118342, 1e-9) {
		t.Fatalf("PBS(16) = %v", PBS(16, 256))
	}
	ev := ExpectedBits(32, 4, func(tt int) float64 { return PVBP(tt, 256) })
	eb := ExpectedBits(32, 8, func(tt int) float64 { return PBS(tt, 256) })
	if !within(ev, 10.79, 0.02) || !within(eb, 8.94, 0.02) {
		t.Fatalf("expected bits: VBP %.3f (want 10.79), BS %.3f (want 8.94)", ev, eb)
	}
	// §3.1.1's S=512 projection: 11.96 and 9.78.
	ev512 := ExpectedBits(32, 4, func(tt int) float64 { return PVBP(tt, 512) })
	eb512 := ExpectedBits(32, 8, func(tt int) float64 { return PBS(tt, 512) })
	if !within(ev512, 11.96, 0.03) || !within(eb512, 9.78, 0.03) {
		t.Fatalf("S=512 expected bits: VBP %.3f (want 11.96), BS %.3f (want 9.78)", ev512, eb512)
	}
}

// TestTable1Empirical checks the instrumented scans agree with the model.
func TestTable1Empirical(t *testing.T) {
	reports, err := Run("table1-empirical", Quick())
	if err != nil {
		t.Fatal(err)
	}
	r := reports[0]
	for i := range r.Rows {
		analytic, measured := cell(t, r, i, 1), cell(t, r, i, 2)
		if math.Abs(analytic-measured) > 0.8 {
			t.Fatalf("%s: analytic %.2f vs measured %.2f bits/code", r.Rows[i][0], analytic, measured)
		}
	}
}

// TestFig8Shape pins the lookup figure's qualitative content: VBP lookup
// cost grows with k and dwarfs the others, which stay within a small
// constant factor of each other.
func TestFig8Shape(t *testing.T) {
	cfg := Quick()
	cfg.Widths = []int{8, 16, 32} // the lookup columns have a 4M-row floor; keep the sweep small
	cfg.Lookups = 3000
	reports, err := Run("fig8", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cyc := reports[0]
	vbpCol := colIndex(t, cyc, "VBP")
	bsCol := colIndex(t, cyc, "ByteSlice")
	last := len(cyc.Rows) - 1
	if cell(t, cyc, last, vbpCol) < 4*cell(t, cyc, last, bsCol) {
		t.Fatalf("VBP lookups at k=32 should be far slower than ByteSlice: %v", cyc.Rows[last])
	}
	if cell(t, cyc, last, vbpCol) < 2*cell(t, cyc, 1, vbpCol) {
		t.Fatalf("VBP lookup cost should grow with k: %v vs %v", cyc.Rows[1], cyc.Rows[last])
	}
	// ByteSlice stays within ~3x of HBP (the paper: "comparable").
	hbpCol := colIndex(t, cyc, "HBP")
	for i := range cyc.Rows {
		if cell(t, cyc, i, bsCol) > 3.5*cell(t, cyc, i, hbpCol)+1 {
			t.Fatalf("ByteSlice lookup should be comparable to HBP: row %v", cyc.Rows[i])
		}
	}
}

// TestFig9Shape pins the scan figure: ByteSlice is the fastest (or ties
// within 5%) at every width, and the early-stopping layouts beat the
// non-stopping ones for wide codes.
func TestFig9Shape(t *testing.T) {
	reports, err := Run("fig9", Quick())
	if err != nil {
		t.Fatal(err)
	}
	for ri := 0; ri < 2; ri++ { // cycles + instructions for OP <
		r := reports[ri]
		bs := colIndex(t, r, "ByteSlice")
		for i := range r.Rows {
			if k := cell(t, r, i, 0); k < 8 {
				// Sub-byte widths are outside the paper's focus ("our
				// focus is actually more on columns with k > 8", §3.1.1);
				// there a single VBP pass over 256 codes can win.
				continue
			}
			bsv := cell(t, r, i, bs)
			for _, other := range []string{"BitPacked", "HBP", "VBP"} {
				ov := cell(t, r, i, colIndex(t, r, other))
				if bsv > 1.05*ov {
					t.Fatalf("%s row %v: ByteSlice (%v) slower than %s (%v)", r.Title, r.Rows[i][0], bsv, other, ov)
				}
			}
		}
	}
}

// TestHeadline asserts the paper's headline number holds in the model.
func TestHeadline(t *testing.T) {
	reports, err := Run("headline", Quick())
	if err != nil {
		t.Fatal(err)
	}
	r := reports[0]
	for i := range r.Rows {
		if c := cell(t, r, i, 1); c >= 0.5 {
			t.Fatalf("ByteSlice scan at k=%s costs %.3f cycles/code (headline claims < 0.5)", r.Rows[i][0], c)
		}
	}
}

// TestFig12Shape pins the complex-predicate experiment: column-first is
// the best ByteSlice strategy at high selectivity, and predicate-first has
// more L2 misses than column-first.
func TestFig12Shape(t *testing.T) {
	reports, err := Run("fig12", Quick())
	if err != nil {
		t.Fatal(err)
	}
	cyc, mis := reports[0], reports[1]
	cf := colIndex(t, cyc, "BS(Column-First)")
	pf := colIndex(t, cyc, "BS(Predicate-First)")
	base := colIndex(t, cyc, "BS(Baseline)")
	last := len(cyc.Rows) - 1 // most selective P1
	if cell(t, cyc, last, cf) > cell(t, cyc, last, base) {
		t.Fatalf("column-first should beat baseline at 0.1%% selectivity: %v", cyc.Rows[last])
	}
	var pfMiss, cfMiss float64
	for i := range mis.Rows {
		pfMiss += cell(t, mis, i, pf)
		cfMiss += cell(t, mis, i, cf)
	}
	if pfMiss < cfMiss {
		t.Fatalf("predicate-first should incur more L2 misses (%.4f vs %.4f)", pfMiss, cfMiss)
	}
}

// TestFig13Shape pins multithreaded scaling: throughput grows with thread
// count for every layout, and ByteSlice has the highest throughput.
func TestFig13Shape(t *testing.T) {
	cfg := Quick()
	cfg.Widths = []int{8, 16, 24} // keep the goroutine sweep fast
	reports, err := Run("fig13", cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := reports[0]
	bs := colIndex(t, r, "ByteSlice")
	for col := 1; col < len(r.Columns); col++ {
		if cell(t, r, len(r.Rows)-1, col) < cell(t, r, 0, col) {
			t.Fatalf("%s throughput should scale with threads: %v vs %v", r.Columns[col], r.Rows[0], r.Rows[len(r.Rows)-1])
		}
	}
	for col := 1; col < len(r.Columns); col++ {
		if col == bs {
			continue
		}
		if cell(t, r, len(r.Rows)-1, bs) < cell(t, r, len(r.Rows)-1, col) {
			t.Fatalf("ByteSlice should have the top throughput at 8 threads: %v", r.Rows[len(r.Rows)-1])
		}
	}
}

// TestFig14Shape pins the TPC-H result: ByteSlice is at least as fast as
// every other layout on every query, and meaningfully faster than
// Bit-Packed overall.
func TestFig14Shape(t *testing.T) {
	reports, err := Run("fig14", Quick())
	if err != nil {
		t.Fatal(err)
	}
	r := reports[0]
	bs := colIndex(t, r, "ByteSlice")
	product := 1.0
	for i := range r.Rows {
		bsv := cell(t, r, i, bs)
		product *= bsv
		for col := 1; col < len(r.Columns); col++ {
			if cell(t, r, i, col) > 1.1*bsv {
				t.Fatalf("query %s: %s (%vx) beats ByteSlice (%vx)", r.Rows[i][0], r.Columns[col], r.Rows[i][col], bsv)
			}
		}
	}
	gmean := math.Pow(product, 1/float64(len(r.Rows)))
	if gmean < 1.5 {
		t.Fatalf("ByteSlice geometric-mean speed-up over Bit-Packed is only %.2fx", gmean)
	}
}

// TestFig22Shape pins the real-data result: ByteSlice wins on both
// datasets.
func TestFig22Shape(t *testing.T) {
	reports, err := Run("fig22", Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !strings.Contains(r.Title, "speed-up") {
			continue
		}
		bs := colIndex(t, r, "ByteSlice")
		for i := range r.Rows {
			bsv := cell(t, r, i, bs)
			for col := 1; col < len(r.Columns); col++ {
				if cell(t, r, i, col) > 1.1*bsv {
					t.Fatalf("%s %s: %s beats ByteSlice: %v", r.Title, r.Rows[i][0], r.Columns[col], r.Rows[i])
				}
			}
		}
	}
}

// TestReportString smoke-tests the renderer.
func TestReportString(t *testing.T) {
	r := &Report{ID: "X", Title: "demo", Columns: []string{"a", "bbbb"}}
	r.AddRow("1", "2")
	r.Notes = append(r.Notes, "n")
	s := r.String()
	for _, want := range []string{"X", "demo", "bbbb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

// TestFig10Shape pins the early-stopping ablation: disabling ES hurts VBP
// grossly at wide codes, and ES keeps both layouts' cost nearly flat in k.
func TestFig10Shape(t *testing.T) {
	reports, err := Run("fig10", Quick())
	if err != nil {
		t.Fatal(err)
	}
	cyc := reports[0]
	vbpES := colIndex(t, cyc, "VBP")
	vbpNo := colIndex(t, cyc, "VBP w/o ES")
	bsES := colIndex(t, cyc, "ByteSlice")
	last := len(cyc.Rows) - 1 // k = 32
	if cell(t, cyc, last, vbpNo) < 1.5*cell(t, cyc, last, vbpES) {
		t.Fatalf("VBP w/o ES at k=32 should be ≫ with ES: %v", cyc.Rows[last])
	}
	// With ES, ByteSlice's cost at k=32 stays within 2.5x of k=8.
	k8 := -1
	for i := range cyc.Rows {
		if cyc.Rows[i][0] == "8" {
			k8 = i
		}
	}
	if k8 < 0 {
		t.Fatal("no k=8 row")
	}
	if cell(t, cyc, last, bsES) > 2.5*cell(t, cyc, k8, bsES) {
		t.Fatalf("ByteSlice cost should be nearly flat in k: %v vs %v", cyc.Rows[k8], cyc.Rows[last])
	}
}

// TestFig11Shape pins the skew experiment: higher skew with a fixed small
// constant makes early-stopping layouts faster, and under uniform data the
// cost is selectivity independent.
func TestFig11Shape(t *testing.T) {
	reports, err := Run("fig11", Quick())
	if err != nil {
		t.Fatal(err)
	}
	ra := reports[0]
	bs := colIndex(t, ra, "ByteSlice")
	if cell(t, ra, 2, bs) > cell(t, ra, 0, bs) {
		t.Fatalf("zipf=2 should not be slower than uniform for ByteSlice: %v vs %v", ra.Rows[0], ra.Rows[2])
	}
	rc := reports[2] // uniform selectivity sweep
	first, last := cell(t, rc, 0, bs), cell(t, rc, len(rc.Rows)-1, bs)
	if first == 0 || last/first > 1.3 || first/last > 1.3 {
		t.Fatalf("uniform-data scan cost should not vary with selectivity: %v", rc.Rows)
	}
}

// TestFig15Shape pins Appendix A: the 8-bit bank width scans at least as
// fast as the 16-bit variant for k > 8, with comparable lookups.
func TestFig15Shape(t *testing.T) {
	reports, err := Run("fig15", Quick())
	if err != nil {
		t.Fatal(err)
	}
	scan := reports[1]
	b8 := colIndex(t, scan, "ByteSlice")
	b16 := colIndex(t, scan, "16-Bit-Slice")
	for i := range scan.Rows {
		if k := cell(t, scan, i, 0); k <= 8 {
			continue
		}
		if cell(t, scan, i, b8) > 1.1*cell(t, scan, i, b16) {
			t.Fatalf("8-bit banks should scan at least as fast: %v", scan.Rows[i])
		}
	}
	lu := reports[0]
	for i := range lu.Rows {
		r8, r16 := cell(t, lu, i, colIndex(t, lu, "ByteSlice")), cell(t, lu, i, colIndex(t, lu, "16-Bit-Slice"))
		if r8 > 2.5*r16+1 {
			t.Fatalf("8-bit lookup should stay comparable to 16-bit: %v", lu.Rows[i])
		}
	}
}

// TestFig16to18RunAndKeepOrdering smoke-runs the remaining scan sweeps.
func TestFig16to18RunAndKeepOrdering(t *testing.T) {
	cfg := Quick()
	cfg.Widths = []int{12, 24}
	for _, id := range []string{"fig16", "fig17", "fig18"} {
		reports, err := Run(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := reports[0]
		bs := colIndex(t, r, "ByteSlice")
		for i := range r.Rows {
			bsv := cell(t, r, i, bs)
			for col := 1; col < len(r.Columns); col++ {
				if cell(t, r, i, col) > 0 && bsv > 1.1*cell(t, r, i, col) {
					t.Fatalf("%s row %v: ByteSlice not fastest", id, r.Rows[i])
				}
			}
		}
	}
}

// TestAblationShapes pins the design-choice ablations qualitatively.
func TestAblationShapes(t *testing.T) {
	cfg := Quick()
	// Inverse-movemask expansion must not beat the condense trick.
	reports, err := Run("ablation-inverse-movemask", cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := reports[0]
	for i := range r.Rows {
		if cell(t, r, i, 2) < 0.95*cell(t, r, i, 1) {
			t.Fatalf("Figure-7 expansion should not win: %v", r.Rows[i])
		}
	}
	// Option 2 lookups must not beat Option 1 (the reason the paper
	// recommends Option 1).
	reports, err = Run("ablation-tail", cfg)
	if err != nil {
		t.Fatal(err)
	}
	r = reports[0]
	var o1, o2 float64
	for i := range r.Rows {
		o1 += cell(t, r, i, 3)
		o2 += cell(t, r, i, 4)
	}
	if o2 < o1 {
		t.Fatalf("Option 2 lookups should cost more on aggregate: %.1f vs %.1f", o2, o1)
	}
	// τ sweep: τ=4 should be within 10%% of the best measured τ.
	reports, err = Run("ablation-tau", cfg)
	if err != nil {
		t.Fatal(err)
	}
	r = reports[0]
	best := cell(t, r, 0, 1)
	var tau4 float64
	for i := range r.Rows {
		v := cell(t, r, i, 1)
		if v < best {
			best = v
		}
		if r.Rows[i][0] == "4" {
			tau4 = v
		}
	}
	if tau4 > 1.1*best {
		t.Fatalf("τ=4 should be near-optimal: τ4=%.4f best=%.4f", tau4, best)
	}
}

// TestFig19Shape pins the disjunction experiment: column-first remains the
// best ByteSlice strategy, and a highly selective first predicate (which
// satisfies almost nothing) leaves more work than one that satisfies almost
// everything.
func TestFig19Shape(t *testing.T) {
	reports, err := Run("fig19", Quick())
	if err != nil {
		t.Fatal(err)
	}
	cyc := reports[0]
	cf := colIndex(t, cyc, "BS(Column-First)")
	base := colIndex(t, cyc, "BS(Baseline)")
	for i := range cyc.Rows {
		// A disjunction can only skip a segment once every row in it is
		// already satisfied, which needs first-predicate selectivity near
		// one (0.5³² ≈ 0 at 50%). Below that, pipelining adds only its
		// per-segment gate overhead; require clear wins where skipping is
		// actually possible.
		tol := 1.15
		if cell(t, cyc, i, 0) >= 95 {
			tol = 1.0
		}
		if cell(t, cyc, i, cf) > tol*cell(t, cyc, i, base) {
			t.Fatalf("column-first should not lose to baseline: %v", cyc.Rows[i])
		}
	}
	// At 99.9% first-predicate selectivity nearly every row is already
	// satisfied, so the second scan is nearly free.
	if cell(t, cyc, 0, cf) > cell(t, cyc, len(cyc.Rows)-1, cf) {
		t.Fatalf("high first-predicate selectivity should cheapen the disjunction: %v vs %v",
			cyc.Rows[0], cyc.Rows[len(cyc.Rows)-1])
	}
}

// TestAVX512Projection pins §3.1.1's wide-register prediction: the
// instruction gap between VBP and ByteSlice widens from S=256 to S=512.
func TestAVX512Projection(t *testing.T) {
	reports, err := Run("avx512", Quick())
	if err != nil {
		t.Fatal(err)
	}
	gap := reports[1]
	if cell(t, gap, 1, 1) <= cell(t, gap, 0, 1) {
		t.Fatalf("instruction gap should widen with S: %v vs %v", gap.Rows[0], gap.Rows[1])
	}
	// And the absolute per-code cost halves-ish with double-width words.
	r := reports[0]
	if cell(t, r, 2, 3) > 0.7*cell(t, r, 0, 3) {
		t.Fatalf("ByteSlice-512 should need far fewer instructions/code: %v vs %v", r.Rows[0], r.Rows[2])
	}
}

func TestReportCSV(t *testing.T) {
	r := &Report{ID: "X", Title: "demo, with comma", Columns: []string{"a", "b"}}
	r.AddRow("1", `va"l,ue`)
	got := r.CSV()
	want := "# X: demo, with comma\na,b\n1,\"va\"\"l,ue\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

// TestLookupBenchShape pins the lookup axis payload: every layout arm
// appears for both the projection-gather and ORDER-BY shapes, with
// positive finite throughput and the lookup count as the row base.
func TestLookupBenchShape(t *testing.T) {
	cfg := Quick()
	cfg.Widths = []int{16}
	entries := LookupBench(cfg)
	seen := map[string]int{}
	for _, e := range entries {
		if e.Layout == "" || (e.Mode != "lookup" && e.Mode != "order_by") {
			t.Fatalf("entry missing layout/mode: %+v", e)
		}
		if e.NsPerScan <= 0 || e.RowsPerSec <= 0 {
			t.Fatalf("non-positive measurement: %+v", e)
		}
		seen[e.Mode+"/"+e.Layout]++
	}
	for _, want := range []string{
		"lookup/ByteSlice", "lookup/HBP", "lookup/ByteSliceC",
		"order_by/ByteSlice", "order_by/HBP", "order_by/ByteSliceC",
	} {
		if seen[want] != 1 {
			t.Fatalf("arm %s appeared %d times, want 1 (all: %v)", want, seen[want], seen)
		}
	}
}
