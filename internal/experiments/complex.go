package experiments

import (
	"byteslice/internal/bitvec"
	"byteslice/internal/cache"
	"byteslice/internal/core"
	"byteslice/internal/datagen"
	"byteslice/internal/exec"
	"byteslice/internal/layout"
	"byteslice/internal/layouts"
	"byteslice/internal/perf"
	"byteslice/internal/simd"
	"byteslice/internal/table"
)

func init() {
	register("fig12", func(c Config) []*Report { return complexPredicate(c, false) })
	register("fig19", func(c Config) []*Report { return complexPredicate(c, true) })
}

// complexPredicate reproduces Figures 12 (conjunction) and 19
// (disjunction): a two-column complex predicate evaluated with the
// baseline strategy on every layout and with the three ByteSlice
// strategies, reporting cycles/tuple and L2 misses/tuple as the first
// predicate's selectivity varies. The second predicate is fixed at 50%.
func complexPredicate(cfg Config, disjunct bool) []*Report {
	const k = 12
	rng := datagen.NewRand(cfg.Seed + 12)
	codes1 := datagen.Uniform(rng, cfg.N, k)
	codes2 := datagen.Uniform(rng, cfg.N, k)
	specs := []table.ColumnSpec{
		{Name: "col1", K: k, Codes: codes1},
		{Name: "col2", K: k, Codes: codes2},
	}

	id, title, op := "Fig12", "Conjunction", "AND"
	sels := []float64{0.5, 0.1, 0.05, 0.01, 0.005, 0.001}
	if disjunct {
		id, title, op = "Fig19", "Disjunction", "OR"
		sels = []float64{0.999, 0.99, 0.95, 0.90, 0.50, 0.10}
	}
	series := []string{"Bit-Packed", "HBP", "VBP", "BS(Baseline)", "BS(Predicate-First)", "BS(Column-First)"}
	rc := &Report{ID: id, Title: title + " col1 < c1 " + op + " col2 > c2 — cycles/tuple",
		Columns: append([]string{"sel(col1)"}, series...)}
	rm := &Report{ID: id, Title: title + " — L2 cache misses/tuple",
		Columns: append([]string{"sel(col1)"}, series...)}

	type combo struct {
		builder  layout.Builder
		strategy exec.Strategy
	}
	combos := []combo{
		{layouts.Builders["BitPacked"], exec.Baseline},
		{layouts.Builders["HBP"], exec.Baseline},
		{layouts.Builders["VBP"], exec.Baseline},
		{core.NewBuilder, exec.Baseline},
		{core.NewBuilder, exec.PredicateFirst},
		{core.NewBuilder, exec.ColumnFirst},
	}

	// Pre-build one table per distinct builder.
	tables := map[string]*table.Table{}
	for i, name := range []string{"BitPacked", "HBP", "VBP", "ByteSlice"} {
		_ = i
		tables[name] = table.MustBuild("t", specs, layouts.Builders[name], cache.NewArena(64))
	}
	tableFor := func(i int) *table.Table {
		switch i {
		case 0:
			return tables["BitPacked"]
		case 1:
			return tables["HBP"]
		case 2:
			return tables["VBP"]
		default:
			return tables["ByteSlice"]
		}
	}

	for _, sel := range sels {
		filters := []exec.Filter{
			{Col: "col1", Pred: layout.Predicate{Op: layout.Lt, C1: datagen.SelectivityConstant(codes1, sel)}},
			{Col: "col2", Pred: layout.Predicate{Op: layout.Gt, C1: datagen.SelectivityConstant(codes2, 0.5)}},
		}
		cyc := []string{fpct(sel)}
		mis := []string{fpct(sel)}
		for i, cb := range combos {
			tb := tableFor(i)
			run := func() (*bitvec.Vector, *perf.Profile) {
				prof := perf.NewProfile()
				e := simd.New(prof)
				var out *bitvec.Vector
				var err error
				if disjunct {
					out, err = exec.Disjunction(e, tb, filters, cb.strategy)
				} else {
					out, err = exec.Conjunction(e, tb, filters, cb.strategy)
				}
				if err != nil {
					panic(err)
				}
				return out, prof
			}
			run() // warm-up: trains predictor, warms cache
			out, prof := run()
			_ = out
			cyc = append(cyc, ff(prof.Cycles()/float64(cfg.N)))
			st := prof.Cache.Stats()
			l2 := st.MissesBelow(cache.L2)
			mis = append(mis, ff(float64(l2)/float64(cfg.N)))
		}
		rc.AddRow(cyc...)
		rm.AddRow(mis...)
	}
	return []*Report{rc, rm}
}
