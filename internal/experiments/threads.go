package experiments

import (
	"sync"

	"byteslice/internal/bitvec"
	"byteslice/internal/cache"
	"byteslice/internal/datagen"
	"byteslice/internal/layout"
	"byteslice/internal/layouts"
	"byteslice/internal/perf"
	"byteslice/internal/simd"
)

func init() {
	register("fig13", fig13)
}

// fig13 reproduces the multi-threading experiment: scan throughput in
// codes per cycle as worker threads are added on the paper's quad-core
// (plus SMT) machine.
//
// The scans genuinely run on parallel goroutines, one engine and profile
// per worker (data is partitioned into chunks, as the paper describes).
// Two aspects of the hardware must be modelled on top of the per-worker
// profiles:
//
//   - compute scaling: a four-core machine runs up to four workers at full
//     speed; the 5th-8th (SMT) workers share pipelines and contribute a
//     fraction of a core each;
//   - the shared memory-bandwidth ceiling: throughput cannot exceed
//     bandwidth divided by the bytes each layout actually moves per code —
//     this is where early stopping pays off (BS and VBP touch fewer bytes,
//     so they saturate at a higher code rate).
func fig13(cfg Config) []*Report {
	r := &Report{ID: "Fig13", Title: "Multi-threaded scan throughput (codes/cycle, avg over widths)",
		Columns: append([]string{"threads"}, layouts.Names...),
		Notes: []string{
			"workers are real goroutines; core counts and the DRAM bandwidth ceiling are modelled (see DESIGN.md)",
		}}
	model := perf.DefaultModel()
	// SMT effectiveness: threads beyond the four physical cores add ~25%
	// of a core each.
	effCores := func(threads int) float64 {
		if threads <= 4 {
			return float64(threads)
		}
		return 4 + 0.25*float64(threads-4)
	}

	widths := cfg.Widths
	for _, threads := range []int{1, 2, 3, 4, 8} {
		row := []string{fi(uint64(threads))}
		for _, name := range layouts.Names {
			var sumThroughput float64
			for _, k := range widths {
				rng := datagen.NewRand(cfg.Seed + uint64(k))
				codes := datagen.Uniform(rng, cfg.N, k)
				c := datagen.SelectivityConstant(codes, 0.10)
				p := layout.Predicate{Op: layout.Lt, C1: c}

				// Partition into per-worker chunks, each its own column
				// (the paper partitions the data across threads).
				chunk := (cfg.N + threads - 1) / threads
				profiles := make([]*perf.Profile, threads)
				var wg sync.WaitGroup
				for w := 0; w < threads; w++ {
					lo := w * chunk
					hi := min(lo+chunk, cfg.N)
					if lo >= hi {
						continue
					}
					prof := perf.NewProfile()
					profiles[w] = prof
					part := codes[lo:hi]
					wg.Add(1)
					go func(name string, k int) {
						defer wg.Done()
						l := layouts.Builders[name](part, k, cache.NewArena(64))
						e := simd.New(prof)
						out := bitvec.New(len(part))
						// Single cold-cache scan: the paper's table is far
						// larger than L3, so steady state is streaming.
						l.Scan(e, p, out)
					}(name, k)
				}
				wg.Wait()

				// The slowest worker determines wall-clock compute cycles;
				// SMT sharing stretches them when threads > cores. DRAM
				// traffic is what the simulated hierarchy actually fetched
				// (demand + prefetch lines).
				var maxCycles, totalBytes float64
				for _, prof := range profiles {
					if prof == nil {
						continue
					}
					if c := prof.Cycles(); c > maxCycles {
						maxCycles = c
					}
					totalBytes += 64 * float64(prof.Cache.Stats().MemFetches)
				}
				computeCycles := maxCycles * float64(threads) / effCores(threads)
				bandwidthCycles := totalBytes / model.BandwidthBytesPerCycle
				wall := computeCycles
				if bandwidthCycles > wall {
					wall = bandwidthCycles
				}
				sumThroughput += float64(cfg.N) / wall
			}
			row = append(row, f2(sumThroughput/float64(len(widths))))
		}
		r.AddRow(row...)
	}
	return []*Report{r}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
