package sortpart

import (
	"math/rand/v2"
	"sort"
	"testing"

	"byteslice/internal/core"
	"byteslice/internal/datagen"
	"byteslice/internal/perf"
	"byteslice/internal/simd"
)

func engine() *simd.Engine { return simd.New(perf.NewProfileNoCache()) }

func column(t *testing.T, n, k int, seed uint64) (*core.ByteSlice, []uint32) {
	t.Helper()
	codes := datagen.Uniform(datagen.NewRand(seed), n, k)
	return core.New(codes, k, nil), codes
}

func TestHashSegmentMatchesScalar(t *testing.T) {
	for _, k := range []int{4, 8, 12, 24, 32} {
		b, _ := column(t, 500, k, 1)
		e := engine()
		for seg := 0; seg < 500/core.SegmentSize; seg++ {
			hv := hashSegment(e, b, seg)
			for lane := 0; lane < core.SegmentSize; lane++ {
				i := seg*core.SegmentSize + lane
				if got, want := hv.Byte(lane), hashCode(b, i); got != want {
					t.Fatalf("k=%d row %d: SIMD hash %#x, scalar %#x", k, i, got, want)
				}
			}
		}
	}
}

func TestPartitionCoversAndAgrees(t *testing.T) {
	b, codes := column(t, 10000, 17, 2)
	for _, bits := range []int{1, 4, 8} {
		parts, err := Partition(engine(), b, bits)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != 1<<uint(bits) {
			t.Fatalf("partition count = %d", len(parts))
		}
		seen := make([]bool, len(codes))
		for p, rows := range parts {
			for _, r := range rows {
				if seen[r] {
					t.Fatalf("row %d assigned twice", r)
				}
				seen[r] = true
				// Same hash ⇒ same partition; equal codes must colocate.
				if int(hashCode(b, int(r)))&(len(parts)-1) != p {
					t.Fatalf("row %d in wrong partition %d", r, p)
				}
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("row %d not assigned", i)
			}
		}
	}
	// Equal codes land in the same partition (join correctness).
	parts, _ := Partition(engine(), b, 6)
	home := map[uint32]int{}
	for p, rows := range parts {
		for _, r := range rows {
			c := codes[r]
			if prev, ok := home[c]; ok && prev != p {
				t.Fatalf("code %d split across partitions %d and %d", c, prev, p)
			}
			home[c] = p
		}
	}
}

func TestPartitionBalanceUniform(t *testing.T) {
	b, _ := column(t, 64000, 20, 3)
	parts, err := Partition(engine(), b, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 64000 / 16
	for p, rows := range parts {
		if len(rows) < want/2 || len(rows) > want*2 {
			t.Fatalf("partition %d has %d rows, want ≈%d — hash is badly skewed", p, len(rows), want)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	b, _ := column(t, 10, 8, 4)
	for _, bits := range []int{0, 9, -1} {
		if _, err := Partition(engine(), b, bits); err == nil {
			t.Fatalf("radixBits=%d should error", bits)
		}
	}
}

func TestSortOrdersAndIsStable(t *testing.T) {
	for _, k := range []int{3, 8, 11, 19, 32} {
		n := 5000
		b, codes := column(t, n, k, uint64(k))
		order := Sort(engine(), b)
		if len(order) != n {
			t.Fatalf("k=%d: order length %d", k, len(order))
		}
		for i := 1; i < n; i++ {
			a, bb := codes[order[i-1]], codes[order[i]]
			if a > bb {
				t.Fatalf("k=%d: out of order at %d: %d > %d", k, i, a, bb)
			}
			if a == bb && order[i-1] > order[i] {
				t.Fatalf("k=%d: instability at %d", k, i)
			}
		}
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	b, codes := column(t, 3000, 13, 7)
	order := Sort(engine(), b)
	want := make([]uint32, len(codes))
	copy(want, codes)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, r := range order {
		if codes[r] != want[i] {
			t.Fatalf("position %d: %d, want %d", i, codes[r], want[i])
		}
	}
}

func TestSearch(t *testing.T) {
	b, codes := column(t, 8000, 10, 8)
	rng := rand.New(rand.NewPCG(9, 9)) //nolint:gosec
	for trial := 0; trial < 20; trial++ {
		key := codes[rng.IntN(len(codes))]
		got := Search(engine(), b, key)
		want := []int32{}
		for i, c := range codes {
			if c == key {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("key %d: %d hits, want %d", key, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("key %d: hit %d is row %d, want %d", key, i, got[i], want[i])
			}
		}
	}
	if hits := Search(engine(), b, 1023); len(hits) != countOf(codes, 1023) {
		t.Fatal("boundary key wrong")
	}
}

func countOf(codes []uint32, key uint32) int {
	n := 0
	for _, c := range codes {
		if c == key {
			n++
		}
	}
	return n
}

func TestHashJoin(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10)) //nolint:gosec
	nl, nr, k := 800, 1200, 7            // small domain forces plenty of matches
	lcodes := make([]uint32, nl)
	rcodes := make([]uint32, nr)
	for i := range lcodes {
		lcodes[i] = uint32(rng.IntN(128))
	}
	for i := range rcodes {
		rcodes[i] = uint32(rng.IntN(128))
	}
	left := core.New(lcodes, k, nil)
	right := core.New(rcodes, k, nil)

	got, err := HashJoin(engine(), left, right, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	var lhist [128]int
	for _, c := range lcodes {
		lhist[c]++
	}
	for _, c := range rcodes {
		want += lhist[c]
	}
	if len(got) != want {
		t.Fatalf("join produced %d pairs, want %d", len(got), want)
	}
	for _, pair := range got {
		if lcodes[pair[0]] != rcodes[pair[1]] {
			t.Fatalf("false match: rows %v join %d vs %d", pair, lcodes[pair[0]], rcodes[pair[1]])
		}
	}

	if _, err := HashJoin(engine(), left, core.New([]uint32{1}, 9, nil), 4); err == nil {
		t.Fatal("width mismatch should error")
	}
	if _, err := HashJoin(engine(), left, right, 0); err == nil {
		t.Fatal("bad radix bits should error")
	}
}

// TestPartitionSIMDParallelism verifies the §6 claim quantitatively: the
// SIMD instructions needed per hashed code shrink with 32-way parallelism
// (a handful of vector ops per 32 codes).
func TestPartitionSIMDParallelism(t *testing.T) {
	b, _ := column(t, 32000, 16, 11)
	prof := perf.NewProfileNoCache()
	if _, err := Partition(simd.New(prof), b, 8); err != nil {
		t.Fatal(err)
	}
	simdPerCode := float64(prof.C.SIMD) / 32000
	if simdPerCode > 1.5 {
		t.Fatalf("hashing used %.2f SIMD instructions/code; 32-way parallelism should keep it below 1.5", simdPerCode)
	}
}
