// Package sortpart implements the future-work directions sketched in §6 of
// the paper: using ByteSlice not just as a base-column format but as the
// representation operators work on directly.
//
//   - Partition: multi-pass radix hash partitioning whose hash values are
//     computed 32 codes at a time with byte-wide SIMD arithmetic over the
//     byte slices (the paper's "hash functions that take as input the
//     bytes of a code and return a byte-wide hash value").
//   - Sort: least-significant-byte radix sort that consumes one byte slice
//     per pass, so the working set shrinks as passes complete.
//   - Search: finding all occurrences of a key with the 32-way
//     early-stopping equality scan, as used by the probe side of joins.
package sortpart

import (
	"fmt"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/layout"
	"byteslice/internal/simd"
)

// hashSegment computes a byte-wide hash of the codes in one 32-code
// segment, entirely with byte-bank SIMD operations over the byte slices:
// h = b₁ rotl 3 ⊕ b₂ rotl 3 ⊕ … folding every slice in.
func hashSegment(e *simd.Engine, b *core.ByteSlice, seg int) simd.Vec {
	h := simd.Zero()
	// Per-byte rotate-left-3: (x << 3 | x >> 5) within each byte, built
	// from 64-bit shifts and byte masks (4 ops), then fold the slice in.
	maskHi := e.Broadcast8(0xF8)
	maskLo := e.Broadcast8(0x07)
	for j := 0; j < b.NumSlices(); j++ {
		off := seg * core.SegmentSize
		w := e.Load(b.Slice(j)[off:], b.SliceAddr(j)+uint64(off))
		rot := e.Or(
			e.And(e.ShlI64(h, 3), maskHi),
			e.And(e.ShrI64(h, 5), maskLo),
		)
		h = e.Xor(rot, w)
	}
	return h
}

// hashCode is the scalar reference of hashSegment's per-code hash.
func hashCode(b *core.ByteSlice, i int) byte {
	var h byte
	for j := 0; j < b.NumSlices(); j++ {
		h = h<<3 | h>>5
		h ^= b.SliceByte(j, i)
	}
	return h
}

// Partition splits the column's record numbers into 2^radixBits partitions
// by a byte-wide hash of each code, using the two-pass histogram scheme of
// [26]: the first pass builds the partition size histogram, the second
// scatters record numbers into exactly-sized outputs. Hash values are
// computed with 32-way SIMD parallelism (versus 8-way for 32-bit-integer
// layouts, the §6 argument). radixBits must be in [1, 8].
func Partition(e *simd.Engine, b *core.ByteSlice, radixBits int) ([][]int32, error) {
	if radixBits < 1 || radixBits > 8 {
		return nil, fmt.Errorf("sortpart: radixBits %d out of range [1,8]", radixBits)
	}
	n := b.Len()
	nparts := 1 << uint(radixBits)
	mask := byte(nparts - 1)

	// Both passes recompute the hashes, as the cited partitioning schemes
	// do; each segment's hash costs a handful of vector ops for 32 codes.
	hash := func(process func(i int, h byte)) {
		for seg := 0; seg*core.SegmentSize < n; seg++ {
			hv := hashSegment(e, b, seg)
			hv = e.And(hv, e.Broadcast8(mask))
			base := seg * core.SegmentSize
			for lane := 0; lane < core.SegmentSize && base+lane < n; lane++ {
				e.Scalar(1) // extract + bucket update
				process(base+lane, hv.Byte(lane))
			}
		}
	}

	hist := make([]int, nparts)
	hash(func(_ int, h byte) { hist[h]++ })

	out := make([][]int32, nparts)
	for p := range out {
		out[p] = make([]int32, 0, hist[p])
	}
	hash(func(i int, h byte) { out[h] = append(out[h], int32(i)) })
	return out, nil
}

// Sort returns the record numbers of the column in non-decreasing code
// order (a stable argsort), using least-significant-byte radix sort over
// the byte slices: pass p sorts on slice NumSlices()−1−p with a counting
// sort, and once a slice's pass completes that slice never has to be read
// again — the progressively-shrinking working set the paper describes.
func Sort(e *simd.Engine, b *core.ByteSlice) []int32 {
	n := b.Len()
	cur := make([]int32, n)
	next := make([]int32, n)
	for i := range cur {
		cur[i] = int32(i)
	}
	var count [256]int
	for j := b.NumSlices() - 1; j >= 0; j-- {
		for i := range count {
			count[i] = 0
		}
		slice := b.Slice(j)
		for _, r := range cur {
			e.ScalarLoad(b.SliceAddr(j)+uint64(r), 1)
			e.Scalar(1)
			count[slice[r]]++
		}
		pos := 0
		for v := 0; v < 256; v++ {
			c := count[v]
			count[v] = pos
			pos += c
		}
		for _, r := range cur {
			e.ScalarLoad(b.SliceAddr(j)+uint64(r), 1)
			e.Scalar(2)
			next[count[slice[r]]] = r
			count[slice[r]]++
		}
		cur, next = next, cur
	}
	return cur
}

// Search returns the record numbers holding exactly the given key, using
// the 32-way SIMD equality scan with early stopping — §6's accelerated
// search primitive (e.g. the probe side of a nested-loop or hash join).
func Search(e *simd.Engine, b *core.ByteSlice, key uint32) []int32 {
	out := bitvec.New(b.Len())
	b.Scan(e, layout.Predicate{Op: layout.Eq, C1: key}, out)
	return out.Positions(nil)
}

// HashJoin equi-joins two ByteSlice columns of equal code width using
// Partition on both sides followed by per-partition searches, returning
// matching (left row, right row) pairs. It exists to demonstrate §6's
// "ByteSlice as intermediate representation" pipeline end to end; the
// partitioning bounds each search to a fraction of the build side.
func HashJoin(e *simd.Engine, left, right *core.ByteSlice, radixBits int) ([][2]int32, error) {
	if left.Width() != right.Width() {
		return nil, fmt.Errorf("sortpart: join code widths differ (%d vs %d)", left.Width(), right.Width())
	}
	lp, err := Partition(e, left, radixBits)
	if err != nil {
		return nil, err
	}
	rp, err := Partition(e, right, radixBits)
	if err != nil {
		return nil, err
	}
	var out [][2]int32
	for p := range lp {
		if len(lp[p]) == 0 || len(rp[p]) == 0 {
			continue
		}
		// Build a small hash table on the smaller side's codes.
		build, probe := lp[p], rp[p]
		buildLeft := true
		if len(probe) < len(build) {
			build, probe = probe, build
			buildLeft = false
		}
		ht := make(map[uint32][]int32, len(build))
		for _, r := range build {
			c := lookupSide(e, left, right, buildLeft, r)
			ht[c] = append(ht[c], r)
		}
		for _, r := range probe {
			c := lookupSide(e, left, right, !buildLeft, r)
			for _, m := range ht[c] {
				if buildLeft {
					out = append(out, [2]int32{m, r})
				} else {
					out = append(out, [2]int32{r, m})
				}
			}
		}
	}
	return out, nil
}

func lookupSide(e *simd.Engine, left, right *core.ByteSlice, isLeft bool, r int32) uint32 {
	if isLeft {
		return left.Lookup(e, int(r))
	}
	return right.Lookup(e, int(r))
}
