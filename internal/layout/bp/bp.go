// Package bp implements the Bit-Packed storage layout of Willhalm et al.
// (SIMD-scan, VLDB 2009 / ADMS 2013), as described in §2.1 of the
// ByteSlice paper: codes are packed tightly in memory, ignoring byte
// boundaries, minimising bandwidth at the cost of an unpack step
// (shuffle, shift, mask) before every SIMD comparison.
package bp

import (
	"byteslice/internal/bitvec"
	"byteslice/internal/cache"
	"byteslice/internal/layout"
	"byteslice/internal/simd"
)

const (
	loopOverhead = 3
	// wideWidth is the first code width that no longer fits the 8-way
	// 32-bit-bank unpack: a code may then span five bytes, so the scan
	// falls back to 4-way 64-bit banks (§2.1, footnote 1).
	wideWidth = 26
)

// BP is a column of n k-bit codes in Bit-Packed format.
type BP struct {
	k    int
	n    int
	data []byte // bit i·k..(i+1)·k of the stream is code i, LSB-first
	addr uint64
}

var _ layout.Layout = (*BP)(nil)

// New builds a Bit-Packed column from codes of width k.
func New(codes []uint32, k int, arena *cache.Arena) *BP {
	layout.CheckArgs(codes, k)
	b := &BP{k: k, n: len(codes)}
	// 40 guard bytes let scans and lookups load full windows at the tail.
	b.data = make([]byte, (len(codes)*k+7)/8+40)
	if arena != nil {
		b.addr = arena.Alloc(uint64(len(b.data)))
	}
	for i, c := range codes {
		bit := i * k
		for p := 0; p < k; p++ {
			if c>>uint(p)&1 == 1 {
				b.data[(bit+p)>>3] |= 1 << (uint(bit+p) & 7)
			}
		}
	}
	return b
}

// NewBuilder adapts New to the layout.Builder signature.
func NewBuilder(codes []uint32, k int, arena *cache.Arena) layout.Layout {
	return New(codes, k, arena)
}

// Name implements layout.Layout.
func (b *BP) Name() string { return "BitPacked" }

// Width implements layout.Layout.
func (b *BP) Width() int { return b.k }

// Len implements layout.Layout.
func (b *BP) Len() int { return b.n }

// SizeBytes implements layout.Layout.
func (b *BP) SizeBytes() uint64 { return uint64(len(b.data)) }

// Scan implements layout.Layout: unpack-align-compare, 8 codes per
// iteration in 32-bit banks for k < 26, otherwise 4 codes per iteration
// in 64-bit banks.
func (b *BP) Scan(e *simd.Engine, p layout.Predicate, out *bitvec.Vector) {
	layout.CheckPredicate(p, b.k)
	out.Reset()
	if b.k < wideWidth {
		b.scan32(e, p, out)
	} else {
		b.scan64(e, p, out)
	}
}

// scan32 is the 8-way path. The shuffle index, per-bank shift counts and
// mask depend only on the bit phase of the group's first code, which
// cycles through at most 8 values, so all unpack constants are prepared
// once before the loop (as a real implementation would).
func (b *BP) scan32(e *simd.Engine, p layout.Predicate, out *bitvec.Vector) {
	type phaseConsts struct {
		idx, shift simd.Vec
	}
	phases := make([]phaseConsts, 8)
	for ph := 0; ph < 8; ph++ {
		var pc phaseConsts
		for j := 0; j < 8; j++ {
			startBit := ph + j*b.k
			sb := startBit >> 3
			for by := 0; by < 4; by++ {
				pc.idx = pc.idx.SetByte(4*j+by, byte(sb+by))
			}
			pc.shift = pc.shift.SetU32(j, uint32(startBit&7))
		}
		phases[ph] = pc
	}
	mask := e.Broadcast32(uint32(1)<<uint(b.k) - 1)
	wc1 := e.Broadcast32(p.C1)
	var wc2 simd.Vec
	if p.Op == layout.Between {
		wc2 = e.Broadcast32(p.C2)
	}

	var acc uint32
	groups := (b.n + 7) / 8
	for g := 0; g < groups; g++ {
		e.Scalar(loopOverhead)
		bit := g * 8 * b.k
		byteOff := bit >> 3
		pc := phases[bit&7]
		w := e.Load(b.data[byteOff:], b.addr+uint64(byteOff))
		// Unpack: (1) shuffle bytes to banks (2) shift to bank boundary
		// (3) mask leading bits of the next code (Figure 3a).
		w = e.Shuffle(w, pc.idx)
		w = e.ShrV32(w, pc.shift)
		w = e.And(w, mask)
		r := b.compare32(e, p, w, wc1, wc2)
		acc |= uint32(r) << uint((g&3)*8)
		e.Scalar(2) // shift + merge of the 8 result bits
		if g&3 == 3 {
			out.Append32(acc)
			e.Scalar(1)
			acc = 0
		}
	}
	if groups&3 != 0 {
		out.Append32(acc)
		e.Scalar(1)
	}
}

func (b *BP) compare32(e *simd.Engine, p layout.Predicate, w, wc1, wc2 simd.Vec) uint8 {
	switch p.Op {
	case layout.Lt:
		return e.Movemask32(e.CmpLtU32(w, wc1))
	case layout.Le:
		return e.Movemask32(e.Or(e.CmpLtU32(w, wc1), e.CmpEq32(w, wc1)))
	case layout.Gt:
		return e.Movemask32(e.CmpGtU32(w, wc1))
	case layout.Ge:
		return e.Movemask32(e.Or(e.CmpGtU32(w, wc1), e.CmpEq32(w, wc1)))
	case layout.Eq:
		return e.Movemask32(e.CmpEq32(w, wc1))
	case layout.Ne:
		e.Scalar(1) // complement of the mask
		return ^e.Movemask32(e.CmpEq32(w, wc1))
	case layout.Between:
		ge := e.Or(e.CmpGtU32(w, wc1), e.CmpEq32(w, wc1))
		le := e.Or(e.CmpLtU32(w, wc2), e.CmpEq32(w, wc2))
		return e.Movemask32(e.And(ge, le))
	}
	panic("bp: unknown operator")
}

// scan64 is the 4-way path for 26 ≤ k ≤ 32.
func (b *BP) scan64(e *simd.Engine, p layout.Predicate, out *bitvec.Vector) {
	type phaseConsts struct {
		idx, shift simd.Vec
	}
	phases := make([]phaseConsts, 8)
	for ph := 0; ph < 8; ph++ {
		var pc phaseConsts
		for j := 0; j < 4; j++ {
			startBit := ph + j*b.k
			sb := startBit >> 3
			for by := 0; by < 8; by++ {
				pc.idx = pc.idx.SetByte(8*j+by, byte(sb+by))
			}
			pc.shift = pc.shift.SetU64(j, uint64(startBit&7))
		}
		phases[ph] = pc
	}
	mask := e.Broadcast64(uint64(1)<<uint(b.k) - 1)
	wc1 := e.Broadcast64(uint64(p.C1))
	var wc2 simd.Vec
	if p.Op == layout.Between {
		wc2 = e.Broadcast64(uint64(p.C2))
	}

	var acc uint32
	groups := (b.n + 3) / 4
	for g := 0; g < groups; g++ {
		e.Scalar(loopOverhead)
		bit := g * 4 * b.k
		byteOff := bit >> 3
		pc := phases[bit&7]
		w := e.Load(b.data[byteOff:], b.addr+uint64(byteOff))
		w = e.Shuffle(w, pc.idx)
		w = e.ShrV64(w, pc.shift)
		w = e.And(w, mask)
		r := b.compare64(e, p, w, wc1, wc2)
		acc |= uint32(r) << uint((g&7)*4)
		e.Scalar(2)
		if g&7 == 7 {
			out.Append32(acc)
			e.Scalar(1)
			acc = 0
		}
	}
	if groups&7 != 0 {
		out.Append32(acc)
		e.Scalar(1)
	}
}

func (b *BP) compare64(e *simd.Engine, p layout.Predicate, w, wc1, wc2 simd.Vec) uint8 {
	switch p.Op {
	case layout.Lt:
		return e.Movemask64(e.CmpLtU64(w, wc1))
	case layout.Le:
		return e.Movemask64(e.Or(e.CmpLtU64(w, wc1), e.CmpEq64(w, wc1)))
	case layout.Gt:
		return e.Movemask64(e.CmpGtU64(w, wc1))
	case layout.Ge:
		return e.Movemask64(e.Or(e.CmpGtU64(w, wc1), e.CmpEq64(w, wc1)))
	case layout.Eq:
		return e.Movemask64(e.CmpEq64(w, wc1))
	case layout.Ne:
		e.Scalar(1)
		return ^e.Movemask64(e.CmpEq64(w, wc1)) & 0xF
	case layout.Between:
		ge := e.Or(e.CmpGtU64(w, wc1), e.CmpEq64(w, wc1))
		le := e.Or(e.CmpLtU64(w, wc2), e.CmpEq64(w, wc2))
		return e.Movemask64(e.And(ge, le))
	}
	panic("bp: unknown operator")
}

// Lookup implements layout.Layout (§2.1): compute the starting byte and
// bit offset, fetch the spanning bytes, stitch with shift/OR and mask.
func (b *BP) Lookup(e *simd.Engine, i int) uint32 {
	bit := i * b.k
	byteOff := bit >> 3
	span := uint64((b.k + int(bit&7) + 7) / 8)
	e.Scalar(2) // byte/offset computation (multiply, shift)
	e.ScalarLoad(b.addr+uint64(byteOff), span)
	e.Scalar(3) // stitch: shift, mask, and the cross-byte merge
	var v uint64
	for by := 0; by < int(span); by++ {
		v |= uint64(b.data[byteOff+by]) << uint(8*by)
	}
	return uint32(v >> uint(bit&7) & (1<<uint(b.k) - 1))
}
