package bp_test

import (
	"math/rand/v2"
	"testing"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/layout"
	"byteslice/internal/layout/bp"
	"byteslice/internal/layout/layouttest"
)

func TestConformance(t *testing.T) { layouttest.Run(t, bp.NewBuilder) }

// TestRoundTrip pins lookups back to the source codes for every width, at
// sizes straddling the 8-code (narrow) / 4-code (wide) group boundaries
// and the byte phases a bit-packed stream cycles through.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 21)) //nolint:gosec // deterministic test
	e := layouttest.Engine()
	for _, k := range layouttest.Widths {
		for _, n := range []int{1, 3, 7, 8, 9, 31, 32, 33, 63, 65, 1000} {
			codes := layouttest.RandomCodes(rng, n, k, "uniform")
			b := bp.New(codes, k, nil)
			if b.Len() != n || b.Width() != k {
				t.Fatalf("k=%d n=%d: Len/Width = %d/%d", k, n, b.Len(), b.Width())
			}
			for i, want := range codes {
				if got := b.Lookup(e, i); got != want {
					t.Fatalf("k=%d n=%d: Lookup(%d) = %d, want %d", k, n, i, got, want)
				}
			}
		}
	}
}

// TestWidePathBoundary covers the widths around the 8-way/4-way unpack
// switch (wideWidth = 26) with all-zero, all-max and alternating data —
// the patterns where a mask or shift off by one bit shows immediately.
func TestWidePathBoundary(t *testing.T) {
	e := layouttest.Engine()
	for _, k := range []int{1, 24, 25, 26, 27, 31, 32} {
		maxC := uint32(uint64(1)<<uint(k) - 1)
		const n = 259
		for _, fill := range []string{"zero", "max", "alt"} {
			codes := make([]uint32, n)
			for i := range codes {
				switch fill {
				case "max":
					codes[i] = maxC
				case "alt":
					if i%2 == 0 {
						codes[i] = maxC
					}
				}
			}
			b := bp.New(codes, k, nil)
			for i, want := range codes {
				if got := b.Lookup(e, i); got != want {
					t.Fatalf("k=%d fill=%s: Lookup(%d) = %d, want %d", k, fill, i, got, want)
				}
			}
			out := bitvec.New(n)
			b.Scan(e, layout.Predicate{Op: layout.Eq, C1: maxC}, out)
			for i := range codes {
				if out.Get(i) != (codes[i] == maxC) {
					t.Fatalf("k=%d fill=%s: Eq(max) row %d = %v", k, fill, i, out.Get(i))
				}
			}
		}
	}
}

// TestDifferentialVsByteSlice pins Bit-Packed scans and lookups
// bit-identical to the ByteSlice layout over random data, all widths and
// every operator.
func TestDifferentialVsByteSlice(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 8)) //nolint:gosec // deterministic test
	e := layouttest.Engine()
	for _, k := range layouttest.Widths {
		maxC := uint64(1)<<uint(k) - 1
		for _, dist := range []string{"uniform", "edges", "runs"} {
			n := 500 + rng.IntN(600)
			codes := layouttest.RandomCodes(rng, n, k, dist)
			b := bp.New(codes, k, nil)
			bs := core.New(codes, k, nil)
			for i := 0; i < n; i += 7 {
				if pv, bv := b.Lookup(e, i), bs.Lookup(e, i); pv != bv {
					t.Fatalf("k=%d dist=%s: Lookup(%d) BP=%d ByteSlice=%d", k, dist, i, pv, bv)
				}
			}
			for _, op := range layout.Ops {
				c1 := uint32(rng.Uint64N(maxC + 1))
				c2 := c1
				if op == layout.Between {
					c2 = c1 + uint32(rng.Uint64N(maxC-uint64(c1)+1))
				}
				p := layout.Predicate{Op: op, C1: c1, C2: c2}
				want := bitvec.New(n)
				bs.Scan(e, p, want)
				got := bitvec.New(n)
				b.Scan(e, p, got)
				if !got.Equal(want) {
					t.Fatalf("k=%d dist=%s %v: BP scan differs from ByteSlice", k, dist, p)
				}
			}
		}
	}
}
