package bp_test

import (
	"testing"

	"byteslice/internal/layout/bp"
	"byteslice/internal/layout/layouttest"
)

func TestConformance(t *testing.T) { layouttest.Run(t, bp.NewBuilder) }
