// Package vbp implements the Vertical Bit-Parallel storage layout of Li
// and Patel's BitWeaving (SIGMOD 2013), as described in §2.2 of the
// ByteSlice paper: the scan-optimised baseline with bit-level early
// stopping but expensive lookups.
//
// A column of k-bit codes is broken into segments of S = 256 codes. The S
// codes of a segment are transposed into k S-bit words W1..Wk such that
// bit j of Wi is the i-th most significant bit of code j. Scans evaluate a
// predicate with pure bitwise logic over these words, testing an
// early-stopping condition every τ iterations (τ = 4, the empirical choice
// of [31]). Lookups must gather one bit from each of k words.
package vbp

import (
	"byteslice/internal/bitvec"
	"byteslice/internal/cache"
	"byteslice/internal/layout"
	"byteslice/internal/perf"
	"byteslice/internal/simd"
)

// SegmentSize is the number of codes per VBP segment (S).
const SegmentSize = simd.Width

// DefaultTau is the early-stop check interval established empirically in
// the BitWeaving paper.
const DefaultTau = 4

const (
	wordBytes       = simd.Bytes
	loopOverhead    = 3
	segmentOverhead = 2
	// iterBookkeeping is the additional per-word scalar work of the
	// BitWeaving/V implementation the paper measures against: bit-position
	// bookkeeping, active-mask maintenance around the τ-granular check
	// structure, and the second (constant) stream's induction. Calibrated
	// so the reproduced Figure 9b/10b instruction counts match the
	// published curves (VBP ≈ 0.9 instructions/code at k = 12 with
	// early stopping, ≈ 2.4 at k = 32 without).
	iterBookkeeping = 12
)

// VBP is a column of n k-bit codes in Vertical Bit-Parallel format.
type VBP struct {
	k         int
	n         int
	data      []byte // segment-major: word i of segment s at (s·k+i)·32
	addr      uint64
	constAddr uint64 // region where transposed comparison constants live
	earlyStop bool
	tau       int
}

var _ layout.Layout = (*VBP)(nil)

// New builds a VBP column from codes of width k.
func New(codes []uint32, k int, arena *cache.Arena) *VBP {
	layout.CheckArgs(codes, k)
	n := len(codes)
	segs := (n + SegmentSize - 1) / SegmentSize
	if segs == 0 {
		segs = 1
	}
	v := &VBP{
		k:         k,
		n:         n,
		data:      make([]byte, segs*k*wordBytes),
		earlyStop: true,
		tau:       DefaultTau,
	}
	if arena != nil {
		v.addr = arena.Alloc(uint64(len(v.data)))
		// Two constant regions (second used by BETWEEN), k words each.
		v.constAddr = arena.Alloc(uint64(2 * k * wordBytes))
	}
	for idx, c := range codes {
		seg, j := idx/SegmentSize, idx%SegmentSize
		lane, bit := j>>6, uint(j&63)
		for i := 0; i < k; i++ {
			if c>>(uint(k-1-i))&1 == 1 {
				off := (seg*k+i)*wordBytes + lane*8
				v.data[off+int(bit>>3)] |= 1 << (bit & 7)
			}
		}
	}
	return v
}

// NewBuilder adapts New to the layout.Builder signature.
func NewBuilder(codes []uint32, k int, arena *cache.Arena) layout.Layout {
	return New(codes, k, arena)
}

// Name implements layout.Layout.
func (v *VBP) Name() string { return "VBP" }

// Width implements layout.Layout.
func (v *VBP) Width() int { return v.k }

// Len implements layout.Layout.
func (v *VBP) Len() int { return v.n }

// SizeBytes implements layout.Layout.
func (v *VBP) SizeBytes() uint64 { return uint64(len(v.data)) }

// SetEarlyStop toggles early stopping (Figure 10).
func (v *VBP) SetEarlyStop(on bool) { v.earlyStop = on }

// SetTau sets the early-stop check interval (ablation; default 4).
func (v *VBP) SetTau(tau int) {
	if tau < 1 {
		panic("vbp: tau must be positive")
	}
	v.tau = tau
}

// Segments returns the number of 256-code segments.
func (v *VBP) Segments() int { return len(v.data) / (v.k * wordBytes) }

// word returns data word i of segment seg and its simulated address.
func (v *VBP) word(seg, i int) ([]byte, uint64) {
	off := (seg*v.k + i) * wordBytes
	return v.data[off:], v.addr + uint64(off)
}

// constWords materialises the transposed comparison constant: word i is
// all-ones when the i-th most significant bit of c is one. The k words are
// a real in-memory array (for k beyond a handful they cannot all stay
// register-resident, unlike ByteSlice's ≤ 4 broadcast constants), so scans
// charge a load per iteration from the constant region.
func (v *VBP) constWords(c uint32) []simd.Vec {
	ws := make([]simd.Vec, v.k)
	for i := 0; i < v.k; i++ {
		if c>>(uint(v.k-1-i))&1 == 1 {
			ws[i] = simd.Ones()
		}
	}
	return ws
}

// Scan implements layout.Layout with the BitWeaving/V predicate logic.
func (v *VBP) Scan(e *simd.Engine, p layout.Predicate, out *bitvec.Vector) {
	layout.CheckPredicate(p, v.k)
	out.Reset()
	c1 := v.constWords(p.C1)
	var c2 []simd.Vec
	if p.Op == layout.Between {
		c2 = v.constWords(p.C2)
	}
	// One predictor site per early-stop checkpoint (a history-based
	// predictor distinguishes loop iterations).
	esSites := make([]int, v.k/v.tau+1)
	for i := range esSites {
		esSites[i] = e.P.Pred.Site()
	}
	var constBuf [wordBytes]byte // stand-in memory for constant loads

	for seg := 0; seg < v.Segments(); seg++ {
		e.Scalar(segmentOverhead)
		var res simd.Vec
		switch p.Op {
		case layout.Eq, layout.Ne:
			meq := simd.Ones()
			for i := 0; i < v.k; i++ {
				if v.checkStop(e, esSites, i, meq) {
					break
				}
				e.Scalar(loopOverhead + iterBookkeeping)
				w := v.loadWord(e, seg, i)
				c := v.loadConst(e, c1, i, 0, constBuf[:])
				meq = e.AndNot(e.Xor(w, c), meq)
			}
			res = meq
			if p.Op == layout.Ne {
				res = e.Not(meq)
			}
		case layout.Lt, layout.Le, layout.Gt, layout.Ge:
			meq := simd.Ones()
			mcmp := simd.Zero()
			lt := p.Op == layout.Lt || p.Op == layout.Le
			for i := 0; i < v.k; i++ {
				if v.checkStop(e, esSites, i, meq) {
					break
				}
				e.Scalar(loopOverhead + iterBookkeeping)
				w := v.loadWord(e, seg, i)
				c := v.loadConst(e, c1, i, 0, constBuf[:])
				var m simd.Vec
				if lt {
					m = e.AndNot(w, c) // this bit 0, constant bit 1 ⇒ v < c here
				} else {
					m = e.AndNot(c, w) // this bit 1, constant bit 0 ⇒ v > c here
				}
				mcmp = e.Or(mcmp, e.And(meq, m))
				meq = e.AndNot(e.Xor(w, c), meq)
			}
			res = mcmp
			if p.Op == layout.Le || p.Op == layout.Ge {
				res = e.Or(mcmp, meq)
			}
		case layout.Between:
			meq1, meq2 := simd.Ones(), simd.Ones()
			mgt1, mlt2 := simd.Zero(), simd.Zero()
			for i := 0; i < v.k; i++ {
				if v.earlyStop && i > 0 && i%v.tau == 0 &&
					e.P.Branch(esSites[i/v.tau], e.TestZero(e.Or(meq1, meq2))) {
					break
				}
				// BETWEEN maintains two mask states, doubling the
				// per-word bookkeeping.
				e.Scalar(loopOverhead + 2*iterBookkeeping)
				w := v.loadWord(e, seg, i)
				ca := v.loadConst(e, c1, i, 0, constBuf[:])
				cb := v.loadConst(e, c2, i, 1, constBuf[:])
				mgt1 = e.Or(mgt1, e.And(meq1, e.AndNot(ca, w)))
				meq1 = e.AndNot(e.Xor(w, ca), meq1)
				mlt2 = e.Or(mlt2, e.And(meq2, e.AndNot(w, cb)))
				meq2 = e.AndNot(e.Xor(w, cb), meq2)
			}
			res = e.And(e.Or(mgt1, meq1), e.Or(mlt2, meq2))
		}
		out.Append256([4]uint64{res[0], res[1], res[2], res[3]})
		e.Scalar(4) // four 64-bit stores of the segment result
	}
}

// checkStop runs the every-τ-iterations early-stopping test.
func (v *VBP) checkStop(e *simd.Engine, sites []int, i int, meq simd.Vec) bool {
	if !v.earlyStop || i == 0 || i%v.tau != 0 {
		return false
	}
	return e.P.Branch(sites[i/v.tau], e.TestZero(meq))
}

// loadWord loads data word i of the current segment through the engine.
func (v *VBP) loadWord(e *simd.Engine, seg, i int) simd.Vec {
	buf, addr := v.word(seg, i)
	return e.Load(buf, addr)
}

// loadConst models the load of transposed-constant word i (region sel 0 or
// 1) and returns its value. The constant array is small and stays cache
// resident, but the load and its address computation are real instructions
// the VBP inner loop retires on every iteration.
func (v *VBP) loadConst(e *simd.Engine, ws []simd.Vec, i, sel int, buf []byte) simd.Vec {
	addr := v.constAddr + uint64((sel*v.k+i)*wordBytes)
	e.Load(buf, addr)
	e.Scalar(1) // address computation for the second stream
	return ws[i]
}

// lookupWindow bounds how many of a VBP lookup's k loads overlap: the
// bit-merge accumulator chains the k iterations, so the out-of-order
// window only exposes a few iterations' loads at a time — unlike
// ByteSlice's ⌈k/8⌉ ≤ 4 loads, which all fit one window (§3.2).
const lookupWindow = 4

// Lookup implements layout.Layout: the k bits of code i live in k
// different words, so the gather costs Θ(k) instructions and touches up to
// k distinct cache lines — the expensive-lookup half of the paper's
// trade-off (Figure 8).
func (v *VBP) Lookup(e *simd.Engine, i int) uint32 {
	seg, j := i/SegmentSize, i%SegmentSize
	lane, bit := j>>6, uint(j&63)
	spans := make([]perf.Span, v.k)
	for w := 0; w < v.k; w++ {
		off := (seg*v.k+w)*wordBytes + lane*8
		spans[w] = perf.Span{Addr: v.addr + uint64(off), Size: 8}
	}
	e.ScalarLoadGroupWindowed(spans, lookupWindow)
	var code uint32
	for w := 0; w < v.k; w++ {
		off := (seg*v.k+w)*wordBytes + lane*8
		e.Scalar(3) // shift, mask, merge
		b := v.data[off+int(bit>>3)] >> (bit & 7) & 1
		code |= uint32(b) << uint(v.k-1-w)
	}
	return code
}
