package vbp_test

import (
	"testing"

	"byteslice/internal/layout/layouttest"
	"byteslice/internal/layout/vbp"
)

func TestConformance(t *testing.T) { layouttest.Run(t, vbp.NewBuilder) }

func TestConformance512(t *testing.T) { layouttest.Run(t, vbp.New512Builder) }
