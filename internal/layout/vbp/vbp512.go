package vbp

import (
	"byteslice/internal/bitvec"
	"byteslice/internal/cache"
	"byteslice/internal/layout"
	"byteslice/internal/perf"
	"byteslice/internal/simd"
)

// Segment512 is the number of codes per segment of the AVX-512 VBP
// variant (S = 512).
const Segment512 = simd.Width512

const wordBytes512 = simd.Bytes512

// VBP512 is Vertical Bit-Parallel on 512-bit registers — the §3.1.1
// projection: with S = 512, a segment early-stops only when all 512 codes
// have settled, so Equation 1 worsens (expected 11.96 bits/code at k = 32
// versus 10.79 at S = 256) while ByteSlice degrades much less.
type VBP512 struct {
	k         int
	n         int
	data      []byte
	addr      uint64
	constAddr uint64
	earlyStop bool
	tau       int
}

var _ layout.Layout = (*VBP512)(nil)

// New512 builds the wide-register VBP column.
func New512(codes []uint32, k int, arena *cache.Arena) *VBP512 {
	layout.CheckArgs(codes, k)
	n := len(codes)
	segs := (n + Segment512 - 1) / Segment512
	if segs == 0 {
		segs = 1
	}
	v := &VBP512{
		k:         k,
		n:         n,
		data:      make([]byte, segs*k*wordBytes512),
		earlyStop: true,
		tau:       DefaultTau,
	}
	if arena != nil {
		v.addr = arena.Alloc(uint64(len(v.data)))
		v.constAddr = arena.Alloc(uint64(2 * k * wordBytes512))
	}
	for idx, c := range codes {
		seg, j := idx/Segment512, idx%Segment512
		for i := 0; i < k; i++ {
			if c>>(uint(k-1-i))&1 == 1 {
				off := (seg*k+i)*wordBytes512 + j>>3
				v.data[off] |= 1 << (uint(j) & 7)
			}
		}
	}
	return v
}

// New512Builder adapts New512 to the layout.Builder signature.
func New512Builder(codes []uint32, k int, arena *cache.Arena) layout.Layout {
	return New512(codes, k, arena)
}

// Name implements layout.Layout.
func (v *VBP512) Name() string { return "VBP-512" }

// Width implements layout.Layout.
func (v *VBP512) Width() int { return v.k }

// Len implements layout.Layout.
func (v *VBP512) Len() int { return v.n }

// SizeBytes implements layout.Layout.
func (v *VBP512) SizeBytes() uint64 { return uint64(len(v.data)) }

// SetEarlyStop toggles early stopping.
func (v *VBP512) SetEarlyStop(on bool) { v.earlyStop = on }

// Segments returns the number of 512-code segments.
func (v *VBP512) Segments() int { return len(v.data) / (v.k * wordBytes512) }

func (v *VBP512) constWords(c uint32) []simd.Vec512 {
	ws := make([]simd.Vec512, v.k)
	for i := 0; i < v.k; i++ {
		if c>>(uint(v.k-1-i))&1 == 1 {
			ws[i] = simd.Ones512()
		}
	}
	return ws
}

func (v *VBP512) loadWord(e *simd.Engine, seg, i int) simd.Vec512 {
	off := (seg*v.k + i) * wordBytes512
	return e.Load512(v.data[off:], v.addr+uint64(off))
}

func (v *VBP512) loadConst(e *simd.Engine, ws []simd.Vec512, i, sel int, buf []byte) simd.Vec512 {
	addr := v.constAddr + uint64((sel*v.k+i)*wordBytes512)
	e.Load512(buf, addr)
	e.Scalar(1)
	return ws[i]
}

// Scan implements layout.Layout with the BitWeaving/V logic on 512-bit
// words; structure and cost accounting mirror the 256-bit implementation.
func (v *VBP512) Scan(e *simd.Engine, p layout.Predicate, out *bitvec.Vector) {
	layout.CheckPredicate(p, v.k)
	out.Reset()
	c1 := v.constWords(p.C1)
	var c2 []simd.Vec512
	if p.Op == layout.Between {
		c2 = v.constWords(p.C2)
	}
	esSites := make([]int, v.k/v.tau+1)
	for i := range esSites {
		esSites[i] = e.P.Pred.Site()
	}
	var constBuf [wordBytes512]byte

	checkStop := func(i int, meq simd.Vec512) bool {
		if !v.earlyStop || i == 0 || i%v.tau != 0 {
			return false
		}
		return e.P.Branch(esSites[i/v.tau], e.TestZero512(meq))
	}

	for seg := 0; seg < v.Segments(); seg++ {
		e.Scalar(segmentOverhead)
		var res simd.Vec512
		switch p.Op {
		case layout.Eq, layout.Ne:
			meq := simd.Ones512()
			for i := 0; i < v.k; i++ {
				if checkStop(i, meq) {
					break
				}
				e.Scalar(loopOverhead + iterBookkeeping)
				w := v.loadWord(e, seg, i)
				c := v.loadConst(e, c1, i, 0, constBuf[:])
				meq = e.AndNot512(e.Xor512(w, c), meq)
			}
			res = meq
			if p.Op == layout.Ne {
				res = e.Not512(meq)
			}
		case layout.Lt, layout.Le, layout.Gt, layout.Ge:
			meq := simd.Ones512()
			mcmp := simd.Zero512()
			lt := p.Op == layout.Lt || p.Op == layout.Le
			for i := 0; i < v.k; i++ {
				if checkStop(i, meq) {
					break
				}
				e.Scalar(loopOverhead + iterBookkeeping)
				w := v.loadWord(e, seg, i)
				c := v.loadConst(e, c1, i, 0, constBuf[:])
				var m simd.Vec512
				if lt {
					m = e.AndNot512(w, c)
				} else {
					m = e.AndNot512(c, w)
				}
				mcmp = e.Or512(mcmp, e.And512(meq, m))
				meq = e.AndNot512(e.Xor512(w, c), meq)
			}
			res = mcmp
			if p.Op == layout.Le || p.Op == layout.Ge {
				res = e.Or512(mcmp, meq)
			}
		case layout.Between:
			meq1, meq2 := simd.Ones512(), simd.Ones512()
			mgt1, mlt2 := simd.Zero512(), simd.Zero512()
			for i := 0; i < v.k; i++ {
				if v.earlyStop && i > 0 && i%v.tau == 0 &&
					e.P.Branch(esSites[i/v.tau], e.TestZero512(e.Or512(meq1, meq2))) {
					break
				}
				e.Scalar(loopOverhead + 2*iterBookkeeping)
				w := v.loadWord(e, seg, i)
				ca := v.loadConst(e, c1, i, 0, constBuf[:])
				cb := v.loadConst(e, c2, i, 1, constBuf[:])
				mgt1 = e.Or512(mgt1, e.And512(meq1, e.AndNot512(ca, w)))
				meq1 = e.AndNot512(e.Xor512(w, ca), meq1)
				mlt2 = e.Or512(mlt2, e.And512(meq2, e.AndNot512(w, cb)))
				meq2 = e.AndNot512(e.Xor512(w, cb), meq2)
			}
			res = e.And512(e.Or512(mgt1, meq1), e.Or512(mlt2, meq2))
		}
		for lane := 0; lane < 8; lane++ {
			out.Append64(res[lane], 64)
		}
		e.Scalar(8)
	}
}

// Lookup implements layout.Layout: k bit-gathers across k wide words.
func (v *VBP512) Lookup(e *simd.Engine, i int) uint32 {
	seg, j := i/Segment512, i%Segment512
	spans := make([]perf.Span, v.k)
	for w := 0; w < v.k; w++ {
		off := (seg*v.k+w)*wordBytes512 + j>>3&^7
		spans[w] = perf.Span{Addr: v.addr + uint64(off), Size: 8}
	}
	e.ScalarLoadGroupWindowed(spans, lookupWindow)
	var code uint32
	for w := 0; w < v.k; w++ {
		off := (seg*v.k+w)*wordBytes512 + j>>3
		e.Scalar(3)
		b := v.data[off] >> (uint(j) & 7) & 1
		code |= uint32(b) << uint(v.k-1-w)
	}
	return code
}
