// Package layouttest is the shared conformance battery every storage
// layout must pass: lookup round-trips, scan equivalence against the
// scalar oracle for every operator over systematic and randomised inputs,
// and property-based tests over random widths, constants and data
// distributions.
package layouttest

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"byteslice/internal/bitvec"
	"byteslice/internal/cache"
	"byteslice/internal/layout"
	"byteslice/internal/perf"
	"byteslice/internal/simd"
)

// Widths is the default set of code widths exercised: byte boundaries,
// their neighbours, and the extremes.
var Widths = []int{1, 2, 3, 7, 8, 9, 11, 12, 15, 16, 17, 20, 23, 24, 25, 26, 31, 32}

// Engine returns a fresh engine with cache modelling disabled (tests care
// about values, not stall cycles).
func Engine() *simd.Engine {
	return simd.New(perf.NewProfileNoCache())
}

// RandomCodes generates n codes of width k from the given distribution
// ("uniform", "low" — skewed towards small values, "edges" — mostly 0 and
// max, "runs" — long runs of equal values).
func RandomCodes(rng *rand.Rand, n, k int, dist string) []uint32 {
	max := uint64(1) << uint(k)
	out := make([]uint32, n)
	switch dist {
	case "low":
		for i := range out {
			v := rng.Uint64N(max)
			out[i] = uint32(v * v / max)
		}
	case "edges":
		for i := range out {
			switch rng.IntN(4) {
			case 0:
				out[i] = 0
			case 1:
				out[i] = uint32(max - 1)
			default:
				out[i] = uint32(rng.Uint64N(max))
			}
		}
	case "runs":
		var cur uint32
		for i := range out {
			if rng.IntN(17) == 0 || i == 0 {
				cur = uint32(rng.Uint64N(max))
			}
			out[i] = cur
		}
	default:
		for i := range out {
			out[i] = uint32(rng.Uint64N(max))
		}
	}
	return out
}

// interestingConstants returns comparison constants that hit boundaries:
// 0, 1, max, max-1, mid, and a few random points.
func interestingConstants(rng *rand.Rand, k int) []uint32 {
	max := uint32(uint64(1)<<uint(k) - 1)
	cs := []uint32{0, max, max / 2}
	if max > 0 {
		cs = append(cs, 1, max-1)
	}
	for i := 0; i < 3; i++ {
		cs = append(cs, uint32(rng.Uint64N(uint64(max)+1)))
	}
	return cs
}

// CheckScan verifies one scan against the oracle and reports differences.
func CheckScan(t *testing.T, l layout.Layout, codes []uint32, p layout.Predicate) {
	t.Helper()
	e := Engine()
	got := bitvec.New(l.Len())
	l.Scan(e, p, got)
	want := bitvec.New(len(codes))
	ref := layout.NewReference(codes, l.Width(), nil)
	ref.Scan(nil, p, want)
	if !got.Equal(want) {
		for i, v := range codes {
			if got.Get(i) != want.Get(i) {
				t.Fatalf("%s k=%d scan %v: row %d code %d: got %v want %v",
					l.Name(), l.Width(), p, i, v, got.Get(i), want.Get(i))
			}
		}
		t.Fatalf("%s k=%d scan %v: vectors differ beyond row range", l.Name(), l.Width(), p)
	}
}

// Run executes the full conformance battery for a layout builder.
func Run(t *testing.T, build layout.Builder) {
	t.Helper()
	rng := rand.New(rand.NewPCG(0xB17E, 0x51)) //nolint:gosec // deterministic tests

	t.Run("LookupRoundTrip", func(t *testing.T) {
		for _, k := range Widths {
			for _, dist := range []string{"uniform", "edges"} {
				codes := RandomCodes(rng, 1000, k, dist)
				l := build(codes, k, cache.NewArena(64))
				e := Engine()
				for i, want := range codes {
					if got := l.Lookup(e, i); got != want {
						t.Fatalf("k=%d dist=%s lookup(%d) = %d, want %d", k, dist, i, got, want)
					}
				}
			}
		}
	})

	t.Run("ScanAllOps", func(t *testing.T) {
		for _, k := range Widths {
			for _, dist := range []string{"uniform", "low", "edges", "runs"} {
				codes := RandomCodes(rng, 1337, k, dist) // non-multiple of every segment size
				l := build(codes, k, nil)
				for _, op := range layout.Ops {
					for _, c := range interestingConstants(rng, k) {
						p := layout.Predicate{Op: op, C1: c, C2: c}
						if op == layout.Between {
							hi := c + uint32(rng.Uint64N(8))
							if max := uint32(uint64(1)<<uint(k) - 1); hi > max {
								hi = max
							}
							p.C2 = hi
						}
						CheckScan(t, l, codes, p)
					}
				}
			}
		}
	})

	t.Run("TinyAndEmpty", func(t *testing.T) {
		for _, n := range []int{0, 1, 2, 31, 32, 33, 255, 256, 257} {
			codes := RandomCodes(rng, n, 13, "uniform")
			l := build(codes, 13, nil)
			if l.Len() != n {
				t.Fatalf("Len() = %d, want %d", l.Len(), n)
			}
			CheckScan(t, l, codes, layout.Predicate{Op: layout.Lt, C1: 4096})
			CheckScan(t, l, codes, layout.Predicate{Op: layout.Ne, C1: 0})
		}
	})

	t.Run("QuickProperty", func(t *testing.T) {
		cfg := &quick.Config{MaxCount: 60}
		prop := func(seed uint64, kRaw uint8, opRaw uint8, c1, c2 uint32, nRaw uint16) bool {
			k := int(kRaw)%32 + 1
			n := int(nRaw)%2000 + 1
			op := layout.Ops[int(opRaw)%len(layout.Ops)]
			max := uint32(uint64(1)<<uint(k) - 1)
			p := layout.Predicate{Op: op, C1: c1 & max, C2: c2 & max}
			if op == layout.Between && p.C1 > p.C2 {
				p.C1, p.C2 = p.C2, p.C1
			}
			r := rand.New(rand.NewPCG(seed, seed^0x9E3779B9)) //nolint:gosec
			codes := RandomCodes(r, n, k, "uniform")
			l := build(codes, k, nil)

			e := Engine()
			got := bitvec.New(n)
			l.Scan(e, p, got)
			for i, v := range codes {
				if got.Get(i) != p.Eval(v) {
					return false
				}
			}
			// Lookup a random sample.
			for j := 0; j < 32; j++ {
				i := r.IntN(n)
				if l.Lookup(e, i) != codes[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Fatal(err)
		}
	})
}

// RunPipelined executes the additional battery for layouts implementing
// layout.Pipelined: the column-first pipelined scan must agree with
// scan-then-combine for both conjunction and disjunction under previous
// results of varying density.
func RunPipelined(t *testing.T, build layout.Builder) {
	t.Helper()
	rng := rand.New(rand.NewPCG(0xF1, 0)) //nolint:gosec
	for _, k := range []int{5, 8, 12, 17, 24, 32} {
		codes := RandomCodes(rng, 2029, k, "uniform")
		l := build(codes, k, nil)
		pl, ok := l.(layout.Pipelined)
		if !ok {
			t.Fatalf("%s does not implement layout.Pipelined", l.Name())
		}
		max := uint32(uint64(1)<<uint(k) - 1)
		for _, density := range []float64{0, 0.001, 0.1, 0.5, 0.99, 1} {
			prev := bitvec.New(len(codes))
			for i := range codes {
				if rng.Float64() < density {
					prev.Set(i, true)
				}
			}
			for _, op := range []layout.Op{layout.Lt, layout.Eq, layout.Ne, layout.Ge, layout.Between} {
				p := layout.Predicate{Op: op, C1: max / 3, C2: max / 2}
				e := Engine()
				plain := bitvec.New(len(codes))
				l.Scan(e, p, plain)

				// Conjunction.
				got := bitvec.New(len(codes))
				pl.ScanPipelined(e, p, prev, false, got)
				want := plain.Clone()
				want.And(prev)
				if !got.Equal(want) {
					t.Fatalf("%s k=%d %v density=%.3f: conjunctive pipelined scan differs", l.Name(), k, p, density)
				}

				// Disjunction.
				got = bitvec.New(len(codes))
				pl.ScanPipelined(e, p, prev, true, got)
				want = plain.Clone()
				want.Or(prev)
				if !got.Equal(want) {
					t.Fatalf("%s k=%d %v density=%.3f: disjunctive pipelined scan differs", l.Name(), k, p, density)
				}
			}
		}
	}
}
