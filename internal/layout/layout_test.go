package layout_test

import (
	"strings"
	"testing"

	"byteslice/internal/cache"
	"byteslice/internal/layout"
	"byteslice/internal/layout/layouttest"
)

// TestReferenceConformance runs the scalar oracle itself through the
// conformance battery: the oracle must satisfy the Layout contract it
// defines for everyone else.
func TestReferenceConformance(t *testing.T) {
	layouttest.Run(t, func(codes []uint32, k int, arena *cache.Arena) layout.Layout {
		return layout.NewReference(codes, k, arena)
	})
}

func TestOpStrings(t *testing.T) {
	want := map[layout.Op]string{
		layout.Lt: "<", layout.Le: "<=", layout.Gt: ">", layout.Ge: ">=",
		layout.Eq: "=", layout.Ne: "<>", layout.Between: "BETWEEN",
	}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("Op %d String = %q", int(op), op.String())
		}
	}
	if !strings.Contains(layout.Op(99).String(), "99") {
		t.Fatal("unknown op should render its number")
	}
	if len(layout.Ops) != 7 {
		t.Fatalf("Ops has %d entries", len(layout.Ops))
	}
}

func TestPredicateString(t *testing.T) {
	p := layout.Predicate{Op: layout.Lt, C1: 42}
	if p.String() != "v < 42" {
		t.Fatalf("String = %q", p.String())
	}
	b := layout.Predicate{Op: layout.Between, C1: 1, C2: 9}
	if b.String() != "v BETWEEN 1 AND 9" {
		t.Fatalf("String = %q", b.String())
	}
}

func TestPredicateEvalDefinition(t *testing.T) {
	cases := []struct {
		p    layout.Predicate
		v    uint32
		want bool
	}{
		{layout.Predicate{Op: layout.Lt, C1: 5}, 4, true},
		{layout.Predicate{Op: layout.Lt, C1: 5}, 5, false},
		{layout.Predicate{Op: layout.Le, C1: 5}, 5, true},
		{layout.Predicate{Op: layout.Gt, C1: 5}, 5, false},
		{layout.Predicate{Op: layout.Gt, C1: 5}, 6, true},
		{layout.Predicate{Op: layout.Ge, C1: 5}, 5, true},
		{layout.Predicate{Op: layout.Eq, C1: 5}, 5, true},
		{layout.Predicate{Op: layout.Ne, C1: 5}, 5, false},
		{layout.Predicate{Op: layout.Between, C1: 2, C2: 4}, 2, true},
		{layout.Predicate{Op: layout.Between, C1: 2, C2: 4}, 4, true},
		{layout.Predicate{Op: layout.Between, C1: 2, C2: 4}, 5, false},
	}
	for _, c := range cases {
		if got := c.p.Eval(c.v); got != c.want {
			t.Fatalf("%v on %d = %v", c.p, c.v, got)
		}
	}
}

func TestCheckArgsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { layout.CheckArgs(nil, 0) },
		func() { layout.CheckArgs(nil, 33) },
		func() { layout.CheckArgs([]uint32{8}, 3) },
		func() { layout.CheckPredicate(layout.Predicate{Op: layout.Lt, C1: 16}, 4) },
		func() { layout.CheckPredicate(layout.Predicate{Op: layout.Between, C1: 0, C2: 99}, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
	// In-domain predicates must not panic, including full 32-bit.
	layout.CheckArgs([]uint32{^uint32(0)}, 32)
	layout.CheckPredicate(layout.Predicate{Op: layout.Eq, C1: ^uint32(0)}, 32)
	layout.CheckPredicate(layout.Predicate{Op: layout.Between, C1: 0, C2: 15}, 4)
}
