package hbp_test

import (
	"testing"

	"byteslice/internal/layout/hbp"
	"byteslice/internal/layout/layouttest"
)

func TestConformance(t *testing.T) { layouttest.Run(t, hbp.NewBuilder) }
