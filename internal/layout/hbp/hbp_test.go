package hbp_test

import (
	"math/rand/v2"
	"testing"

	"byteslice/internal/bitvec"
	"byteslice/internal/core"
	"byteslice/internal/layout"
	"byteslice/internal/layout/hbp"
	"byteslice/internal/layout/layouttest"
)

func TestConformance(t *testing.T) { layouttest.Run(t, hbp.NewBuilder) }

// TestRoundTrip pins lookups back to the source codes for every width, at
// sizes straddling bank and 256-bit-word boundaries.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9)) //nolint:gosec // deterministic test
	e := layouttest.Engine()
	for _, k := range layouttest.Widths {
		perBank := 64 / (k + 1)
		perWord := 4 * perBank
		for _, n := range []int{1, perBank, perBank + 1, perWord - 1, perWord, perWord + 1, 3*perWord + 2, 1000} {
			codes := layouttest.RandomCodes(rng, n, k, "uniform")
			h := hbp.New(codes, k, nil)
			if h.Len() != n || h.Width() != k {
				t.Fatalf("k=%d n=%d: Len/Width = %d/%d", k, n, h.Len(), h.Width())
			}
			for i, want := range codes {
				if got := h.Lookup(e, i); got != want {
					t.Fatalf("k=%d n=%d: Lookup(%d) = %d, want %d", k, n, i, got, want)
				}
			}
		}
	}
}

// TestGeometry checks the published bank geometry the native kernels in
// internal/kernel rely on: codes per bank and per word, the word-aligned
// footprint, and the per-bank constant patterns.
func TestGeometry(t *testing.T) {
	for _, k := range layouttest.Widths {
		h := hbp.New([]uint32{0}, k, nil)
		perBank := 64 / (k + 1)
		if h.PerBank() != perBank {
			t.Fatalf("k=%d: PerBank = %d, want %d", k, h.PerBank(), perBank)
		}
		if h.PerWord() != 4*perBank {
			t.Fatalf("k=%d: PerWord = %d, want %d", k, h.PerWord(), 4*perBank)
		}
		if h.SizeBytes()%hbp.WordBytes != 0 {
			t.Fatalf("k=%d: SizeBytes %d not word-aligned", k, h.SizeBytes())
		}
		if uint64(len(h.Data())) != h.SizeBytes() {
			t.Fatalf("k=%d: Data length %d != SizeBytes %d", k, len(h.Data()), h.SizeBytes())
		}

		maxC := uint32(uint64(1)<<uint(k) - 1)
		guard, addend, repl := h.Patterns(maxC)
		w := uint(k + 1)
		for s := 0; s < perBank; s++ {
			if guard>>(uint(s)*w+uint(k))&1 != 1 {
				t.Fatalf("k=%d: guard bit of slot %d missing", k, s)
			}
			if got := uint32(repl >> (uint(s) * w) & uint64(maxC)); got != maxC {
				t.Fatalf("k=%d: repl slot %d = %d, want %d", k, s, got, maxC)
			}
			if got := uint32(addend >> (uint(s) * w) & uint64(maxC)); got != maxC {
				t.Fatalf("k=%d: addend slot %d = %#x, want all-ones field", k, s, got)
			}
		}
		// No pattern bits may leak outside the perBank fields: a stray bit
		// would corrupt neighbouring slots in the SWAR arithmetic.
		var used uint64
		for s := 0; s < perBank; s++ {
			used |= ((1 << w) - 1) << (uint(s) * w)
		}
		if guard&^used != 0 || addend&^used != 0 || repl&^used != 0 {
			t.Fatalf("k=%d: pattern bits outside the %d packed fields", k, perBank)
		}
	}
}

// TestEdgeWidths exercises the extreme bank packings — 32 one-bit codes
// per bank down to a single 32-bit code — with all-zero, all-max and
// alternating data, where a carry leaking across a field boundary would
// flip a neighbour's result.
func TestEdgeWidths(t *testing.T) {
	e := layouttest.Engine()
	for _, k := range []int{1, 2, 15, 16, 21, 31, 32} {
		maxC := uint32(uint64(1)<<uint(k) - 1)
		const n = 131
		for _, fill := range []string{"zero", "max", "alt"} {
			codes := make([]uint32, n)
			for i := range codes {
				switch fill {
				case "max":
					codes[i] = maxC
				case "alt":
					if i%2 == 0 {
						codes[i] = maxC
					}
				}
			}
			h := hbp.New(codes, k, nil)
			for i, want := range codes {
				if got := h.Lookup(e, i); got != want {
					t.Fatalf("k=%d fill=%s: Lookup(%d) = %d, want %d", k, fill, i, got, want)
				}
			}
			out := bitvec.New(n)
			h.Scan(e, layout.Predicate{Op: layout.Eq, C1: maxC}, out)
			for i := range codes {
				if out.Get(i) != (codes[i] == maxC) {
					t.Fatalf("k=%d fill=%s: Eq(max) row %d = %v", k, fill, i, out.Get(i))
				}
			}
		}
	}
}

// TestDifferentialVsByteSlice pins HBP scans and lookups bit-identical to
// the ByteSlice layout over random data, all widths and every operator.
func TestDifferentialVsByteSlice(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 4)) //nolint:gosec // deterministic test
	e := layouttest.Engine()
	for _, k := range layouttest.Widths {
		maxC := uint64(1)<<uint(k) - 1
		for _, dist := range []string{"uniform", "edges", "runs"} {
			n := 500 + rng.IntN(600)
			codes := layouttest.RandomCodes(rng, n, k, dist)
			h := hbp.New(codes, k, nil)
			bs := core.New(codes, k, nil)
			for i := 0; i < n; i += 7 {
				if hv, bv := h.Lookup(e, i), bs.Lookup(e, i); hv != bv {
					t.Fatalf("k=%d dist=%s: Lookup(%d) HBP=%d ByteSlice=%d", k, dist, i, hv, bv)
				}
			}
			for _, op := range layout.Ops {
				c1 := uint32(rng.Uint64N(maxC + 1))
				c2 := c1
				if op == layout.Between {
					c2 = c1 + uint32(rng.Uint64N(maxC-uint64(c1)+1))
				}
				p := layout.Predicate{Op: op, C1: c1, C2: c2}
				want := bitvec.New(n)
				bs.Scan(e, p, want)
				got := bitvec.New(n)
				h.Scan(e, p, got)
				if !got.Equal(want) {
					t.Fatalf("k=%d dist=%s %v: HBP scan differs from ByteSlice", k, dist, p)
				}
			}
		}
	}
}
