// Package hbp implements the Horizontal Bit-Parallel storage layout of Li
// and Patel's BitWeaving (SIGMOD 2013), as described in §2.3 of the
// ByteSlice paper: the lookup-optimised baseline with no early stopping.
//
// Each k-bit code is stored in a (k+1)-bit field — a zero delimiter bit
// prepended to the code — inside a 64-bit bank; a bank holds ⌊64/(k+1)⌋
// codes and a 256-bit memory word holds four banks. Predicates are
// evaluated with word-parallel arithmetic (the XOR/ADD/NOT/AND sequence of
// Figure 4 and its subtraction-based variants): the delimiter bits act as
// per-field guard bits that absorb carries and receive the per-code
// comparison results.
package hbp

import (
	"byteslice/internal/bitvec"
	"byteslice/internal/cache"
	"byteslice/internal/layout"
	"byteslice/internal/simd"
)

// WordBytes is the byte size of one 256-bit HBP memory word (four 64-bit
// banks). The native lookup kernels in internal/kernel address banks as
// data[8*(i/perBank):], which is equivalent to the word/bank decomposition
// because banks are laid out consecutively.
const WordBytes = wordBytes

const (
	wordBytes       = simd.Bytes
	bankBits        = 64
	loopOverhead    = 3
	segmentOverhead = 2
	// extractOverhead models the shift/multiply/merge instructions that
	// gather one bank's delimiter bits into the result bit vector.
	extractOverhead = 3
)

// HBP is a column of n k-bit codes in Horizontal Bit-Parallel format.
type HBP struct {
	k       int
	n       int
	perBank int // codes per 64-bit bank, ⌊64/(k+1)⌋
	perWord int // codes per 256-bit word, 4·perBank
	data    []byte
	addr    uint64
}

var _ layout.Layout = (*HBP)(nil)

// New builds an HBP column from codes of width k.
func New(codes []uint32, k int, arena *cache.Arena) *HBP {
	layout.CheckArgs(codes, k)
	h := &HBP{
		k:       k,
		n:       len(codes),
		perBank: bankBits / (k + 1),
	}
	h.perWord = 4 * h.perBank
	words := (len(codes) + h.perWord - 1) / h.perWord
	if words == 0 {
		words = 1
	}
	h.data = make([]byte, words*wordBytes)
	if arena != nil {
		h.addr = arena.Alloc(uint64(len(h.data)))
	}
	w := k + 1
	for i, c := range codes {
		word := i / h.perWord
		r := i % h.perWord
		bank, slot := r/h.perBank, r%h.perBank
		off := word*wordBytes + bank*8
		lane := leU64(h.data[off:])
		lane |= uint64(c) << uint(slot*w)
		putLeU64(h.data[off:], lane)
	}
	return h
}

// NewBuilder adapts New to the layout.Builder signature.
func NewBuilder(codes []uint32, k int, arena *cache.Arena) layout.Layout {
	return New(codes, k, arena)
}

func leU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> uint(8*i))
	}
}

// Name implements layout.Layout.
func (h *HBP) Name() string { return "HBP" }

// Width implements layout.Layout.
func (h *HBP) Width() int { return h.k }

// Len implements layout.Layout.
func (h *HBP) Len() int { return h.n }

// SizeBytes implements layout.Layout.
func (h *HBP) SizeBytes() uint64 { return uint64(len(h.data)) }

// PerWord returns the number of codes per 256-bit word.
func (h *HBP) PerWord() int { return h.perWord }

// PerBank returns the number of codes per 64-bit bank, ⌊64/(k+1)⌋.
func (h *HBP) PerBank() int { return h.perBank }

// Data exposes the packed bank bytes for the native lookup kernels in
// internal/kernel: bank b (codes b·perBank … b·perBank+perBank−1) occupies
// the little-endian 8 bytes at offset 8·b.
func (h *HBP) Data() []byte { return h.data }

// Patterns exposes the per-bank constant patterns to the native kernels in
// internal/kernel: the guard mask H (delimiter positions), the zero-detect
// addend (k ones per field), and c replicated into every field. Every bank
// shares the same slot layout, so one 64-bit pattern serves all banks.
func (h *HBP) Patterns(c uint32) (guard, addend, repl uint64) {
	return h.bankPatterns(c)
}

// bankPatterns builds the per-bank constant patterns: the guard mask H
// (delimiter positions), the zero-detect addend H−L (k ones per field),
// and c replicated into every field.
func (h *HBP) bankPatterns(c uint32) (guard, addend, repl uint64) {
	w := h.k + 1
	for s := 0; s < h.perBank; s++ {
		guard |= 1 << uint(s*w+h.k)
		addend |= (1<<uint(h.k) - 1) << uint(s*w)
		repl |= uint64(c) << uint(s*w)
	}
	return guard, addend, repl
}

// Scan implements layout.Layout. No early stopping exists in this format:
// every bit of every code is examined by construction.
func (h *HBP) Scan(e *simd.Engine, p layout.Predicate, out *bitvec.Vector) {
	layout.CheckPredicate(p, h.k)
	out.Reset()
	guard, addend, repl1 := h.bankPatterns(p.C1)
	H := e.Broadcast64(guard)
	ADD := e.Broadcast64(addend)
	WC1 := e.Broadcast64(repl1)
	WC1H := e.Or(WC1, H) // precomputed (Wc | H) for the > / ≤ paths
	var WC2, WC2H simd.Vec
	if p.Op == layout.Between {
		_, _, repl2 := h.bankPatterns(p.C2)
		WC2 = e.Broadcast64(repl2)
		WC2H = e.Or(WC2, H)
	}
	_ = WC2H

	words := len(h.data) / wordBytes
	for wi := 0; wi < words; wi++ {
		e.Scalar(loopOverhead)
		off := wi * wordBytes
		w := e.Load(h.data[off:], h.addr+uint64(off))
		var res simd.Vec
		switch p.Op {
		case layout.Eq:
			// Figure 4: XOR, ADD, NOT, AND — guard clear iff field equal.
			y := e.Add64(e.Xor(w, WC1), ADD)
			res = e.AndNot(y, H)
		case layout.Ne:
			y := e.Add64(e.Xor(w, WC1), ADD)
			res = e.And(y, H)
		case layout.Lt:
			// guard of (W|H)−Wc is set iff v ≥ c.
			s := e.Sub64(e.Or(w, H), WC1)
			res = e.AndNot(s, H)
		case layout.Ge:
			s := e.Sub64(e.Or(w, H), WC1)
			res = e.And(s, H)
		case layout.Gt:
			// guard of (Wc|H)−W is set iff c ≥ v.
			s := e.Sub64(WC1H, w)
			res = e.AndNot(s, H)
		case layout.Le:
			s := e.Sub64(WC1H, w)
			res = e.And(s, H)
		case layout.Between:
			s1 := e.Sub64(e.Or(w, H), WC1) // guard: v ≥ c1
			s2 := e.Sub64(WC2H, w)         // guard: v ≤ c2
			res = e.And(e.And(s1, H), e.And(s2, H))
		}
		h.extract(e, res, out)
		e.Scalar(1) // store of the gathered result bits
	}
}

// extract gathers the delimiter bits of all four banks into record order
// and appends them to the result vector. Hardware implementations do this
// with a shift/multiply/merge sequence per bank, which is what the
// modelled instruction charge reflects.
func (h *HBP) extract(e *simd.Engine, res simd.Vec, out *bitvec.Vector) {
	w := h.k + 1
	for bank := 0; bank < 4; bank++ {
		e.Scalar(extractOverhead)
		lane := res.U64(bank)
		var bits uint64
		for s := 0; s < h.perBank; s++ {
			bit := lane >> uint(s*w+h.k) & 1
			bits |= bit << uint(s)
		}
		out.Append64(bits, h.perBank)
	}
}

// Lookup implements layout.Layout: all bits of a code sit in one memory
// word, so a lookup is one load plus shift-and-mask (§2.3), touching at
// most one cache line.
func (h *HBP) Lookup(e *simd.Engine, i int) uint32 {
	word := i / h.perWord
	r := i % h.perWord
	bank, slot := r/h.perBank, r%h.perBank
	off := word*wordBytes + bank*8
	e.ScalarLoad(h.addr+uint64(off), 8)
	// The word/bank/slot decomposition divides by the (generally non-
	// power-of-two) codes-per-word and codes-per-bank counts — strength-
	// reduced to multiply/shift sequences in real implementations — before
	// the final shift and mask.
	e.Scalar(6)
	lane := leU64(h.data[off:])
	return uint32(lane >> uint(slot*(h.k+1)) & (1<<uint(h.k) - 1))
}
