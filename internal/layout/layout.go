// Package layout defines the contract every main-memory storage layout in
// this repository implements, the comparison predicates scans evaluate, and
// a naive scalar reference implementation used as the correctness oracle in
// tests.
//
// A layout stores a column of n fixed-width k-bit unsigned integer codes
// (1 ≤ k ≤ 32) and supports the paper's two core operations:
//
//   - Scan: evaluate a range-based comparison against a constant over the
//     whole column, producing a result bit vector with bit i set iff code i
//     satisfies the predicate.
//   - Lookup: reconstruct the code at a given record number.
//
// Both operations execute against an emulated SIMD engine so that their
// instruction, branch and memory behaviour is recorded (see internal/simd
// and internal/perf).
package layout

import (
	"fmt"

	"byteslice/internal/bitvec"
	"byteslice/internal/cache"
	"byteslice/internal/simd"
)

// Op is a range-based comparison operator.
type Op int

// The comparison operators the paper's scans support (§2). Between is
// inclusive on both ends: C1 ≤ v ≤ C2.
const (
	Lt Op = iota
	Le
	Gt
	Ge
	Eq
	Ne
	Between
)

// String returns the SQL-ish spelling of the operator.
func (op Op) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Between:
		return "BETWEEN"
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// Ops lists all supported operators, for sweeps and property tests.
var Ops = []Op{Lt, Le, Gt, Ge, Eq, Ne, Between}

// Predicate is a column-scalar filter "v op C1" (or C1 ≤ v ≤ C2 for
// Between). Constants are codes in the column's encoded domain.
type Predicate struct {
	Op     Op
	C1, C2 uint32
}

// Eval evaluates the predicate on a single code; it is the semantic
// definition scans must agree with.
func (p Predicate) Eval(v uint32) bool {
	switch p.Op {
	case Lt:
		return v < p.C1
	case Le:
		return v <= p.C1
	case Gt:
		return v > p.C1
	case Ge:
		return v >= p.C1
	case Eq:
		return v == p.C1
	case Ne:
		return v != p.C1
	case Between:
		return p.C1 <= v && v <= p.C2
	}
	panic("layout: unknown operator")
}

// String renders the predicate.
func (p Predicate) String() string {
	if p.Op == Between {
		return fmt.Sprintf("v BETWEEN %d AND %d", p.C1, p.C2)
	}
	return fmt.Sprintf("v %s %d", p.Op, p.C1)
}

// Layout is a built, immutable column in one storage format.
type Layout interface {
	// Name identifies the format ("BitPacked", "VBP", "HBP", "ByteSlice", ...).
	Name() string
	// Width is the code width k in bits.
	Width() int
	// Len is the number of codes stored.
	Len() int
	// Scan evaluates p over the column into out, which must have length
	// Len(). out is overwritten.
	Scan(e *simd.Engine, p Predicate, out *bitvec.Vector)
	// Lookup reconstructs code i.
	Lookup(e *simd.Engine, i int) uint32
	// SizeBytes is the in-memory footprint of the formatted column.
	SizeBytes() uint64
}

// Pipelined is implemented by layouts that support the column-first
// pipelined scan (Algorithm 2): segments whose bits are all zero in prev
// are skipped, and the result is ANDed (conjunctive) with prev.
type Pipelined interface {
	Layout
	// ScanPipelined evaluates p only where prev has a set bit, writing
	// prev AND p into out. If negate is true the scan instead considers
	// rows where prev is zero and writes prev OR p into out (disjunctive
	// pipelining, §4.1.3 / Appendix E).
	ScanPipelined(e *simd.Engine, p Predicate, prev *bitvec.Vector, negate bool, out *bitvec.Vector)
}

// Builder constructs a layout from codes of width k, registering its
// memory regions with the arena (which determines simulated addresses for
// the cache model). Builders must copy what they need: callers may reuse
// the codes slice.
type Builder func(codes []uint32, k int, arena *cache.Arena) Layout

// CheckArgs validates common builder arguments; builders call it first.
func CheckArgs(codes []uint32, k int) {
	if k < 1 || k > 32 {
		panic(fmt.Sprintf("layout: code width %d out of range [1,32]", k))
	}
	if k < 32 {
		max := uint32(1)<<uint(k) - 1
		for i, c := range codes {
			if c > max {
				panic(fmt.Sprintf("layout: code %d at row %d exceeds width %d", c, i, k))
			}
		}
	}
}

// CheckPredicate validates that a predicate's constants lie in the k-bit
// code domain; scans require this (the padded-byte comparison math assumes
// it). Layouts call it at the top of Scan.
func CheckPredicate(p Predicate, k int) {
	max := uint32(1)<<uint(k) - 1
	if k == 32 {
		max = ^uint32(0)
	}
	if p.C1 > max || (p.Op == Between && p.C2 > max) {
		panic(fmt.Sprintf("layout: predicate %v outside %d-bit code domain", p, k))
	}
}

// Reference is the naive scalar oracle: codes stored in a plain []uint32.
// It is deliberately unoptimised and is used to validate every other
// layout's Scan and Lookup in tests, and as the "standard data array"
// baseline in a few ablations.
type Reference struct {
	codes []uint32
	k     int
	addr  uint64
}

// NewReference builds the oracle layout.
func NewReference(codes []uint32, k int, arena *cache.Arena) *Reference {
	CheckArgs(codes, k)
	c := make([]uint32, len(codes))
	copy(c, codes)
	var addr uint64
	if arena != nil {
		addr = arena.Alloc(uint64(4 * len(codes)))
	}
	return &Reference{codes: c, k: k, addr: addr}
}

// Name implements Layout.
func (r *Reference) Name() string { return "Reference" }

// Width implements Layout.
func (r *Reference) Width() int { return r.k }

// Len implements Layout.
func (r *Reference) Len() int { return len(r.codes) }

// SizeBytes implements Layout.
func (r *Reference) SizeBytes() uint64 { return uint64(4 * len(r.codes)) }

// Scan implements Layout by evaluating the predicate one code at a time.
func (r *Reference) Scan(e *simd.Engine, p Predicate, out *bitvec.Vector) {
	out.Reset()
	var w uint32
	for i, v := range r.codes {
		if e != nil {
			e.ScalarLoad(r.addr+uint64(4*i), 4)
			e.Scalar(2)
		}
		if p.Eval(v) {
			w |= 1 << uint(i&31)
		}
		if i&31 == 31 {
			out.Append32(w)
			w = 0
		}
	}
	if len(r.codes)&31 != 0 {
		out.Append32(w)
	}
}

// Lookup implements Layout.
func (r *Reference) Lookup(e *simd.Engine, i int) uint32 {
	if e != nil {
		e.ScalarLoad(r.addr+uint64(4*i), 4)
	}
	return r.codes[i]
}
