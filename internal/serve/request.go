package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"byteslice"
)

// Request is the JSON body of POST /query.
type Request struct {
	// Table names the mounted table; Tenant the accounting bucket
	// (defaults to "anon"; the X-Tenant header also sets it).
	Table  string `json:"table"`
	Tenant string `json:"tenant,omitempty"`
	// Op selects the operation over the matching rows: "count" (the
	// default), "rows" (row ids plus projected columns), "sum", "avg",
	// "min", "max" (aggregates over Col).
	Op  string `json:"op,omitempty"`
	Col string `json:"col,omitempty"`
	// Cols are the columns op "rows" projects values for.
	Cols []string `json:"cols,omitempty"`
	// Where is the predicate tree and is required — serving a full-table
	// materialisation by accident is an outage, not a query.
	Where *Node `json:"where"`
	// OrderBy sorts op "rows" output by the named column ascending;
	// Limit caps returned rows (0 → 100, negative → unlimited).
	OrderBy string `json:"order_by,omitempty"`
	Limit   int    `json:"limit,omitempty"`
	// TimeoutMs is the per-query deadline (0 → server default, capped at
	// the server max; negative → already expired, for cancellation
	// drills).
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Explain asks for the planner/analyze rendering (needs the server's
	// Explain flag). NoCache skips the result cache both ways.
	Explain bool `json:"explain,omitempty"`
	NoCache bool `json:"no_cache,omitempty"`
}

// Node is one node of the predicate tree: either a leaf comparison
// (Col/Op/Args) or exactly one of All/Any over child nodes.
type Node struct {
	All []Node `json:"all,omitempty"`
	Any []Node `json:"any,omitempty"`
	Col string `json:"col,omitempty"`
	Op  string `json:"op,omitempty"`
	// Args are the comparison constants: one for eq/ne/lt/le/gt/ge, two
	// for between. Numbers keep full precision (json.Number); strings
	// compare against dictionary columns.
	Args []any `json:"args,omitempty"`
}

// ops maps the wire operator names onto the facade's comparison ops.
var ops = map[string]byteslice.Op{
	"eq": byteslice.Eq, "ne": byteslice.Ne,
	"lt": byteslice.Lt, "le": byteslice.Le,
	"gt": byteslice.Gt, "ge": byteslice.Ge,
	"between": byteslice.Between,
}

// DecodeRequest parses a request body, keeping numeric constants as
// json.Number so integer domains are not round-tripped through float64.
func DecodeRequest(body []byte) (*Request, error) {
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, badQueryErr(err)
	}
	return &req, nil
}

// validate checks the request's operation shape (predicate validity is
// checked against the schema when the expression is built).
func (r *Request) validate() error {
	if r.Table == "" {
		return badQuery("request names no table")
	}
	if r.Where == nil {
		return badQuery("request has no where clause")
	}
	switch r.Op {
	case "", "count":
	case "rows":
	case "sum", "avg", "min", "max":
		if r.Col == "" {
			return badQuery("op %q needs a col", r.Op)
		}
	default:
		return badQuery("unknown op %q", r.Op)
	}
	if r.OrderBy != "" && r.Op != "rows" {
		return badQuery("order_by applies to op \"rows\" only")
	}
	return nil
}

// numArg renders one argument for the canonical key: integers as
// decimal, floats via the shortest round-trip form, strings quoted.
func argKey(a any) (string, error) {
	switch v := a.(type) {
	case json.Number:
		if i, err := v.Int64(); err == nil {
			return strconv.FormatInt(i, 10), nil
		}
		f, err := v.Float64()
		if err != nil {
			return "", badQuery("bad number %q", v.String())
		}
		return strconv.FormatFloat(f, 'g', -1, 64), nil
	case string:
		return strconv.Quote(v), nil
	case float64: // requests built in-process rather than decoded
		return strconv.FormatFloat(v, 'g', -1, 64), nil
	case int:
		return strconv.Itoa(v), nil
	case int64:
		return strconv.FormatInt(v, 10), nil
	}
	return "", badQuery("unsupported constant %T", a)
}

// normalize renders the node canonically: leaves as col␟op␟args, groups
// with their children sorted — AND and OR are commutative, so two
// requests differing only in conjunct order share one cache entry.
func (n *Node) normalize() (string, error) {
	leaf := n.Col != "" || n.Op != "" || len(n.Args) > 0
	switch {
	case leaf && (len(n.All) > 0 || len(n.Any) > 0):
		return "", badQuery("predicate node mixes a leaf with a group")
	case leaf:
		if n.Col == "" || n.Op == "" {
			return "", badQuery("leaf predicate needs col and op")
		}
		if _, ok := ops[n.Op]; !ok {
			return "", badQuery("unknown operator %q", n.Op)
		}
		parts := make([]string, 0, 2+len(n.Args))
		parts = append(parts, n.Col, n.Op)
		for _, a := range n.Args {
			s, err := argKey(a)
			if err != nil {
				return "", err
			}
			parts = append(parts, s)
		}
		return strings.Join(parts, "\x1f"), nil
	case len(n.All) > 0 && len(n.Any) > 0:
		return "", badQuery("predicate node has both all and any")
	case len(n.All) > 0:
		return normalizeGroup("all", n.All)
	case len(n.Any) > 0:
		return normalizeGroup("any", n.Any)
	}
	return "", badQuery("empty predicate node")
}

func normalizeGroup(kind string, children []Node) (string, error) {
	parts := make([]string, len(children))
	for i := range children {
		s, err := children[i].normalize()
		if err != nil {
			return "", err
		}
		parts[i] = s
	}
	sort.Strings(parts)
	return kind + "(" + strings.Join(parts, "\x1e") + ")", nil
}

// cacheKeyQuery renders the whole request canonically — everything that
// determines the response content except the table version (which is the
// other half of the cache key).
func (r *Request) cacheKeyQuery() (string, error) {
	where, err := r.Where.normalize()
	if err != nil {
		return "", err
	}
	op := r.Op
	if op == "" {
		op = "count"
	}
	return strings.Join([]string{
		op, r.Col, strings.Join(r.Cols, ","), r.OrderBy,
		strconv.Itoa(r.Limit), where,
	}, "\x1d"), nil
}

// buildExpr translates the predicate tree into the facade's Expr against
// the schema table, typing each constant by its column's kind.
func buildExpr(schema *byteslice.Table, n *Node) (byteslice.Expr, error) {
	leaf := n.Col != "" || n.Op != "" || len(n.Args) > 0
	switch {
	case leaf:
		f, err := buildFilter(schema, n)
		if err != nil {
			return byteslice.Expr{}, err
		}
		return byteslice.Leaf(f), nil
	case len(n.All) > 0:
		children, err := buildGroup(schema, n.All)
		if err != nil {
			return byteslice.Expr{}, err
		}
		return byteslice.All(children...), nil
	case len(n.Any) > 0:
		children, err := buildGroup(schema, n.Any)
		if err != nil {
			return byteslice.Expr{}, err
		}
		return byteslice.Any(children...), nil
	}
	return byteslice.Expr{}, badQuery("empty predicate node")
}

func buildGroup(schema *byteslice.Table, nodes []Node) ([]byteslice.Expr, error) {
	out := make([]byteslice.Expr, len(nodes))
	for i := range nodes {
		e, err := buildExpr(schema, &nodes[i])
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

func buildFilter(schema *byteslice.Table, n *Node) (byteslice.Filter, error) {
	col, err := schema.Column(n.Col)
	if err != nil {
		return byteslice.Filter{}, badQueryErr(err)
	}
	op, ok := ops[n.Op]
	if !ok {
		return byteslice.Filter{}, badQuery("unknown operator %q", n.Op)
	}
	want := 1
	if op == byteslice.Between {
		want = 2
	}
	if len(n.Args) != want {
		return byteslice.Filter{}, badQuery("%s on %s needs %d args, got %d", n.Op, n.Col, want, len(n.Args))
	}
	switch col.Kind() {
	case byteslice.KindInt:
		args, err := intArgs(n)
		if err != nil {
			return byteslice.Filter{}, err
		}
		return byteslice.IntFilter(n.Col, op, args...), nil
	case byteslice.KindDecimal:
		args, err := floatArgs(n)
		if err != nil {
			return byteslice.Filter{}, err
		}
		return byteslice.DecimalFilter(n.Col, op, args...), nil
	case byteslice.KindString:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			s, ok := a.(string)
			if !ok {
				return byteslice.Filter{}, badQuery("string column %s wants string constants, got %T", n.Col, a)
			}
			args[i] = s
		}
		return byteslice.StringFilter(n.Col, op, args...), nil
	case byteslice.KindCode:
		args, err := intArgs(n)
		if err != nil {
			return byteslice.Filter{}, err
		}
		codes := make([]uint32, len(args))
		for i, v := range args {
			if v < 0 || v > int64(^uint32(0)) {
				return byteslice.Filter{}, badQuery("code column %s: constant %d out of range", n.Col, v)
			}
			codes[i] = uint32(v)
		}
		return byteslice.CodeFilter(n.Col, op, codes...), nil
	}
	return byteslice.Filter{}, badQuery("column %s has unsupported kind", n.Col)
}

func intArgs(n *Node) ([]int64, error) {
	out := make([]int64, len(n.Args))
	for i, a := range n.Args {
		switch v := a.(type) {
		case json.Number:
			iv, err := v.Int64()
			if err != nil {
				return nil, badQuery("integer column %s wants integer constants, got %q", n.Col, v.String())
			}
			out[i] = iv
		case int:
			out[i] = int64(v)
		case int64:
			out[i] = v
		case float64:
			iv := int64(v)
			if float64(iv) != v {
				return nil, badQuery("integer column %s wants integer constants, got %v", n.Col, v)
			}
			out[i] = iv
		default:
			return nil, badQuery("integer column %s wants integer constants, got %T", n.Col, a)
		}
	}
	return out, nil
}

func floatArgs(n *Node) ([]float64, error) {
	out := make([]float64, len(n.Args))
	for i, a := range n.Args {
		switch v := a.(type) {
		case json.Number:
			fv, err := v.Float64()
			if err != nil {
				return nil, badQuery("decimal column %s: bad number %q", n.Col, v.String())
			}
			out[i] = fv
		case float64:
			out[i] = v
		case int:
			out[i] = float64(v)
		case int64:
			out[i] = float64(v)
		default:
			return nil, badQuery("decimal column %s wants numeric constants, got %T", n.Col, a)
		}
	}
	return out, nil
}

// ColumnData is one projected column of an op "rows" response: the row
// ids the values belong to (the projected column's NULL rows are
// omitted) and exactly one of the value slices, matching the column
// kind.
type ColumnData struct {
	Rows     []int32   `json:"rows"`
	Ints     []int64   `json:"ints,omitempty"`
	Decimals []float64 `json:"decimals,omitempty"`
	Strings  []string  `json:"strings,omitempty"`
}

// Response is the JSON body of a successful query. Responses are shared
// through the epoch-keyed result cache, so once exec returns one it is
// read-only: only the builder functions below (Do, exec, execRows,
// execAggregate) may set fields, and Do stamps per-request fields on a
// shallow copy, never on the cached value.
//
//bsvet:sealed
type Response struct {
	Table string `json:"table"`
	// Epoch is the table version the result was computed at (ingest
	// epoch, or the snapshot mount's reload generation) and Rows the
	// row count visible at that version — together the freshness proof
	// for cached results.
	Epoch uint64 `json:"epoch"`
	Rows  int    `json:"rows"`
	// Count is the number of matching rows.
	Count int `json:"count"`
	// Exactly one value field is set for aggregates: IntValue for
	// sum/min/max over integer columns, Value for decimal aggregates and
	// avg, StrValue for string min/max. Null aggregates (no qualifying
	// rows) set none.
	Value    *float64 `json:"value,omitempty"`
	IntValue *int64   `json:"int_value,omitempty"`
	StrValue *string  `json:"str_value,omitempty"`
	// RowIDs and Data carry op "rows" output.
	RowIDs []int32                `json:"row_ids,omitempty"`
	Data   map[string]*ColumnData `json:"data,omitempty"`
	// Checksum fingerprints the result content (count, values, rows):
	// FNV-1a 64 in hex. A cache hit returns the stored result bit for
	// bit, so repeated queries at one version must agree on it.
	Checksum string `json:"checksum"`
	// Cache reports the result-cache outcome: "hit", "miss", "bypass"
	// (request or operation not cacheable) or "off".
	Cache     string  `json:"cache"`
	Tenant    string  `json:"tenant"`
	ElapsedMs float64 `json:"elapsed_ms"`
	Explain   string  `json:"explain,omitempty"`
}

// ErrorResponse is the JSON body of a failed query.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// fingerprint computes the response's content checksum.
func (r *Response) fingerprint() string {
	h := fnv.New64a()
	w := func(s string) { h.Write([]byte(s)) } //nolint:errcheck // hash.Write never fails
	w(fmt.Sprintf("count=%d", r.Count))
	if r.Value != nil {
		w(fmt.Sprintf("|value=%g", *r.Value))
	}
	if r.IntValue != nil {
		w(fmt.Sprintf("|int=%d", *r.IntValue))
	}
	if r.StrValue != nil {
		w("|str=" + *r.StrValue)
	}
	for _, id := range r.RowIDs {
		w(fmt.Sprintf("|r%d", id))
	}
	cols := make([]string, 0, len(r.Data))
	for c := range r.Data {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	for _, c := range cols {
		d := r.Data[c]
		w("|col=" + c)
		for i, row := range d.Rows {
			switch {
			case d.Ints != nil:
				w(fmt.Sprintf(";%d=%d", row, d.Ints[i]))
			case d.Decimals != nil:
				w(fmt.Sprintf(";%d=%g", row, d.Decimals[i]))
			case d.Strings != nil:
				w(fmt.Sprintf(";%d=%s", row, d.Strings[i]))
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
