package serve

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"

	"byteslice"
)

// maxBodyBytes bounds request bodies — predicates and append batches are
// small; anything larger is a client error, not a memory obligation.
const maxBodyBytes = 4 << 20

// Handler returns the service's HTTP surface:
//
//	POST /query        run one query (Request → Response JSON)
//	GET  /tables       list mounted tables with schema and version
//	POST /append       append rows to a live ingest mount
//	POST /merge        force a merge on a live ingest mount (epoch bump)
//	POST /reload       re-stat snapshot mounts, remount changed files
//	GET  /stats        observability registry snapshot (indented JSON)
//	GET  /debug/vars   the standard expvar surface
//	GET  /healthz      liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/tables", s.handleTables)
	mux.HandleFunc("/append", s.handleAppend)
	mux.HandleFunc("/merge", s.handleMerge)
	mux.HandleFunc("/reload", s.handleReload)
	mux.Handle("/stats", s.cfg.Registry.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	return mux
}

// statusOf maps a request failure onto its HTTP status. 499 follows the
// de-facto convention for client-abandoned requests.
func statusOf(err error) int {
	switch errCode(err) {
	case "overloaded":
		return http.StatusTooManyRequests
	case "not_found":
		return http.StatusNotFound
	case "bad_query", "unsupported":
		return http.StatusBadRequest
	case "deadline":
		return http.StatusGatewayTimeout
	case "canceled":
		return 499
	}
	return http.StatusInternalServerError
}

func writeError(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(statusOf(err))
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error(), Code: errCode(err)}) //nolint:errcheck // best effort past the status line
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best effort past the status line
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		writeError(w, badQuery("%s needs POST, not %s", r.URL.Path, r.Method))
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, badQueryErr(fmt.Errorf("reading body: %w", err)))
		return nil, false
	}
	return body, true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeRequest(body)
	if err != nil {
		writeError(w, err)
		return
	}
	if req.Tenant == "" {
		req.Tenant = r.Header.Get("X-Tenant")
	}
	resp, err := s.Do(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, resp)
}

// TableInfo is one row of GET /tables.
type TableInfo struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Rows    int          `json:"rows"`
	Epoch   uint64       `json:"epoch"`
	Columns []ColumnInfo `json:"columns"`
}

// ColumnInfo describes one column of a mounted table.
type ColumnInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	infos := make([]TableInfo, 0)
	for _, name := range s.cat.Names() {
		b, err := s.cat.bind(name)
		if err != nil {
			continue // unmounted between Names and bind
		}
		info := TableInfo{Name: name, Kind: b.m.kind, Rows: b.rows, Epoch: b.epoch}
		for _, c := range b.schema().Columns() {
			info.Columns = append(info.Columns, ColumnInfo{Name: c.Name(), Kind: c.Kind().String()})
		}
		infos = append(infos, info)
	}
	writeJSON(w, infos)
}

// AppendRequest is the body of POST /append: rows of column-name →
// value maps, appended in order to a live ingest mount.
type AppendRequest struct {
	Table string           `json:"table"`
	Rows  []map[string]any `json:"rows"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	var req AppendRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, badQueryErr(err))
		return
	}
	m, err := s.cat.lookup(req.Table)
	if err != nil {
		writeError(w, err)
		return
	}
	if m.ing == nil {
		writeError(w, errUnsupported("table %q is not an ingest mount", req.Table))
		return
	}
	schema := m.ing.Base()
	appended := 0
	for _, row := range req.Rows {
		vals, err := convertRow(schema, row)
		if err != nil {
			writeError(w, err)
			return
		}
		if err := m.ing.Append(vals); err != nil {
			writeError(w, fmt.Errorf("row %d: %w", appended, err))
			return
		}
		appended++
	}
	writeJSON(w, map[string]any{"appended": appended, "epoch": m.ing.Epoch(), "rows": m.ing.Len()})
}

// convertRow types a decoded JSON row for IngestTable.Append, which wants
// exact native types per column kind.
func convertRow(schema *byteslice.Table, row map[string]any) (map[string]any, error) {
	vals := make(map[string]any, len(row))
	for name, v := range row {
		col, err := schema.Column(name)
		if err != nil {
			return nil, badQueryErr(err)
		}
		if v == nil {
			vals[name] = nil
			continue
		}
		switch col.Kind() {
		case byteslice.KindInt:
			num, ok := v.(json.Number)
			if !ok {
				return nil, badQuery("column %s wants an integer, got %T", name, v)
			}
			iv, err := num.Int64()
			if err != nil {
				return nil, badQuery("column %s wants an integer, got %q", name, num.String())
			}
			vals[name] = iv
		case byteslice.KindDecimal:
			num, ok := v.(json.Number)
			if !ok {
				return nil, badQuery("column %s wants a number, got %T", name, v)
			}
			fv, err := num.Float64()
			if err != nil {
				return nil, badQuery("column %s: bad number %q", name, num.String())
			}
			vals[name] = fv
		case byteslice.KindString:
			sv, ok := v.(string)
			if !ok {
				return nil, badQuery("column %s wants a string, got %T", name, v)
			}
			vals[name] = sv
		case byteslice.KindCode:
			num, ok := v.(json.Number)
			if !ok {
				return nil, badQuery("column %s wants a code, got %T", name, v)
			}
			iv, err := num.Int64()
			if err != nil || iv < 0 || iv > int64(^uint32(0)) {
				return nil, badQuery("column %s: bad code %q", name, num.String())
			}
			vals[name] = uint32(iv)
		default:
			return nil, badQuery("column %s has unsupported kind", name)
		}
	}
	return vals, nil
}

// MergeRequest is the body of POST /merge.
type MergeRequest struct {
	Table string `json:"table"`
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req MergeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, badQueryErr(err))
		return
	}
	m, err := s.cat.lookup(req.Table)
	if err != nil {
		writeError(w, err)
		return
	}
	if m.ing == nil {
		writeError(w, errUnsupported("table %q is not an ingest mount", req.Table))
		return
	}
	if err := m.ing.MergeNow(); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]any{"epoch": m.ing.Epoch(), "rows": m.ing.Len(), "delta_rows": m.ing.DeltaLen()})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, badQuery("/reload needs POST, not %s", r.Method))
		return
	}
	n, err := s.cat.Reload()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]any{"reloaded": n})
}
