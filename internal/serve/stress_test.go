package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"byteslice"
	"byteslice/internal/obs"
)

// TestServeRaceStress runs N concurrent HTTP clients with a mixed
// predicate workload against a live ingest mount while one writer
// appends rows and forces merges — the CI serve_race_stress entry,
// meant to run under -race. The correctness invariant: rows only ever
// append, so for any fixed predicate the matching count is monotonically
// non-decreasing across responses, and every response's (epoch, rows)
// version must be coherent (rows never shrinks within an epoch).
func TestServeRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	s := New(Config{MaxInflight: 32, CacheEntries: 256, Registry: &obs.Registry{}})
	defer s.Close() //nolint:errcheck // ingest close checked below
	dir := t.TempDir()
	it, err := byteslice.CreateIngest(dir, testTable(t), byteslice.WithAutoMerge(false), byteslice.WithSealRows(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.cat.add(&mount{name: "live", kind: "ingest", path: dir, ing: it}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	queries := []string{
		`{"table":"live","where":{"col":"qty","op":"ge","args":[50]}}`,
		`{"table":"live","where":{"col":"qty","op":"between","args":[10,60]}}`,
		`{"table":"live","where":{"col":"mode","op":"eq","args":["AIR"]}}`,
		`{"table":"live","where":{"all":[{"col":"qty","op":"ge","args":[20]},{"col":"mode","op":"ne","args":["RAIL"]}]}}`,
		`{"table":"live","where":{"any":[{"col":"qty","op":"lt","args":[10]},{"col":"price","op":"ge","args":[5.0]}]}}`,
	}

	const (
		clients          = 8
		queriesPerClient = 40
		writerRows       = 120
	)
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writer: appends rows continuously, merging every 30 rows so the
	// readers cross epoch bumps mid-flight.
	wg.Add(1)
	writerErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < writerRows; i++ {
			row := fmt.Sprintf(`{"table":"live","rows":[{"qty":%d,"price":%d.5,"mode":"%s"}]}`,
				i%100, i%9, []string{"AIR", "SHIP", "RAIL"}[i%3])
			resp, err := http.Post(ts.URL+"/append", "application/json", bytes.NewReader([]byte(row)))
			if err != nil {
				writerErr <- err
				return
			}
			resp.Body.Close() //nolint:errcheck // read side
			if resp.StatusCode != http.StatusOK {
				writerErr <- fmt.Errorf("append %d: status %d", i, resp.StatusCode)
				return
			}
			if i%30 == 29 {
				resp, err := http.Post(ts.URL+"/merge", "application/json", bytes.NewReader([]byte(`{"table":"live"}`)))
				if err != nil {
					writerErr <- err
					return
				}
				resp.Body.Close() //nolint:errcheck // read side
				if resp.StatusCode != http.StatusOK {
					writerErr <- fmt.Errorf("merge at %d: status %d", i, resp.StatusCode)
					return
				}
			}
		}
	}()

	clientErrs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lastCount := make([]int, len(queries))
			for i := 0; i < queriesPerClient || !stop.Load(); i++ {
				qi := (c + i) % len(queries)
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte(queries[qi])))
				if err != nil {
					clientErrs <- err
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					resp.Body.Close() //nolint:errcheck // read side
					continue          // overload is a legal answer under stress
				}
				var r Response
				err = json.NewDecoder(resp.Body).Decode(&r)
				resp.Body.Close() //nolint:errcheck // read side
				if err != nil {
					clientErrs <- fmt.Errorf("client %d decode: %w", c, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					clientErrs <- fmt.Errorf("client %d query %d: status %d", c, qi, resp.StatusCode)
					return
				}
				if r.Count < lastCount[qi] {
					clientErrs <- fmt.Errorf("client %d query %d: count went backwards %d → %d", c, qi, lastCount[qi], r.Count)
					return
				}
				lastCount[qi] = r.Count
				if i > 10*queriesPerClient {
					break // writer finished long ago; don't spin forever
				}
			}
			clientErrs <- nil
		}(c)
	}
	wg.Wait()
	select {
	case err := <-writerErr:
		t.Fatalf("writer: %v", err)
	default:
	}
	for c := 0; c < clients; c++ {
		if err := <-clientErrs; err != nil {
			t.Fatal(err)
		}
	}

	// The final count must agree with a fresh, uncontended query.
	final, err := s.Do(context.Background(), &Request{Table: "live", NoCache: true, Where: leaf("qty", "ge", 50)})
	if err != nil {
		t.Fatal(err)
	}
	if final.Rows != 6+writerRows {
		t.Fatalf("final rows = %d, want %d", final.Rows, 6+writerRows)
	}
	want := 3 // base rows with qty >= 50
	for i := 0; i < writerRows; i++ {
		if i%100 >= 50 {
			want++
		}
	}
	if final.Count != want {
		t.Fatalf("final count = %d, want %d", final.Count, want)
	}
	st := s.stats().Snapshot()
	if st.Inflight != 0 {
		t.Fatalf("inflight = %d after drain, want 0", st.Inflight)
	}
	t.Logf("admitted %d, overloads %d, cache %d hits / %d misses",
		st.Admitted, st.Overloads, st.CacheHits, st.CacheMisses)
}
