package serve

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"testing"
	"time"

	"byteslice"
	"byteslice/internal/obs"
)

// testTable builds a small table: qty (int), price (decimal), mode
// (string dictionary), with one NULL qty.
func testTable(t *testing.T) *byteslice.Table {
	t.Helper()
	qty, err := byteslice.NewIntColumn("qty", []int64{5, 50, 7, 80, 12, 50}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	price, err := byteslice.NewDecimalColumn("price", []float64{1.5, 2.5, 0.5, 9.0, 4.5, 2.5}, 0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	mode, err := byteslice.NewStringColumn("mode", []string{"AIR", "SHIP", "AIR", "RAIL", "SHIP", "AIR"})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := byteslice.NewTable(qty, price, mode)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// newTestServer builds a server over a fresh registry with the test
// table mounted as "t".
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = &obs.Registry{}
	}
	s := New(cfg)
	t.Cleanup(func() { s.Close() }) //nolint:errcheck // mem mounts hold nothing
	if err := s.cat.MountTable("t", testTable(t)); err != nil {
		t.Fatal(err)
	}
	return s
}

func leaf(col, op string, args ...any) *Node {
	return &Node{Col: col, Op: op, Args: args}
}

func countReq(table string, where *Node) *Request {
	return &Request{Table: table, Where: where}
}

func mustDo(t *testing.T, s *Server, req *Request) *Response {
	t.Helper()
	resp, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do(%+v): %v", req, err)
	}
	return resp
}

func TestNormalizeCommutes(t *testing.T) {
	a := &Node{All: []Node{*leaf("qty", "ge", 10), *leaf("mode", "eq", "AIR")}}
	b := &Node{All: []Node{*leaf("mode", "eq", "AIR"), *leaf("qty", "ge", 10)}}
	ka, err := a.normalize()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("reordered conjuncts got different keys:\n%q\n%q", ka, kb)
	}
	c := &Node{All: []Node{*leaf("qty", "ge", 11), *leaf("mode", "eq", "AIR")}}
	kc, err := c.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Fatalf("different constants share a key: %q", kc)
	}
	// any and all must not collide even over identical children.
	d := &Node{Any: []Node{*leaf("qty", "ge", 10), *leaf("mode", "eq", "AIR")}}
	kd, err := d.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if kd == ka {
		t.Fatalf("any/all share a key: %q", kd)
	}
}

func TestNormalizeRejectsMalformed(t *testing.T) {
	cases := []*Node{
		{},                // empty
		{All: []Node{{}}}, // empty child
		{Col: "qty"},      // leaf without op
		{Col: "qty", Op: "eq", Args: []any{1}, All: []Node{*leaf("qty", "eq", 1)}}, // leaf + group
		{All: []Node{*leaf("qty", "eq", 1)}, Any: []Node{*leaf("qty", "eq", 1)}},   // all + any
		{Col: "qty", Op: "like", Args: []any{1}},                                   // unknown op
	}
	for i, n := range cases {
		if _, err := n.normalize(); !errors.Is(err, ErrBadQuery) {
			t.Errorf("case %d: err = %v, want ErrBadQuery", i, err)
		}
	}
}

func TestQueryCountRowsAggregates(t *testing.T) {
	s := newTestServer(t, Config{})

	resp := mustDo(t, s, countReq("t", leaf("qty", "ge", 50)))
	if resp.Count != 3 {
		t.Fatalf("count = %d, want 3", resp.Count)
	}
	if resp.Epoch != 1 || resp.Rows != 6 {
		t.Fatalf("epoch/rows = %d/%d, want 1/6", resp.Epoch, resp.Rows)
	}

	// Nested predicate: qty >= 50 AND (mode = AIR OR mode = SHIP) → rows 1, 5.
	nested := &Node{All: []Node{
		*leaf("qty", "ge", 50),
		{Any: []Node{*leaf("mode", "eq", "AIR"), *leaf("mode", "eq", "SHIP")}},
	}}
	resp = mustDo(t, s, countReq("t", nested))
	if resp.Count != 2 {
		t.Fatalf("nested count = %d, want 2", resp.Count)
	}

	rows := mustDo(t, s, &Request{Table: "t", Op: "rows", Where: nested, Cols: []string{"price", "mode"}})
	if want := []int32{1, 5}; len(rows.RowIDs) != 2 || rows.RowIDs[0] != want[0] || rows.RowIDs[1] != want[1] {
		t.Fatalf("row ids = %v, want %v", rows.RowIDs, want)
	}
	if d := rows.Data["price"]; d == nil || len(d.Decimals) != 2 || d.Decimals[0] != 2.5 || d.Decimals[1] != 2.5 {
		t.Fatalf("price projection = %+v", rows.Data["price"])
	}
	if d := rows.Data["mode"]; d == nil || len(d.Strings) != 2 || d.Strings[0] != "SHIP" || d.Strings[1] != "AIR" {
		t.Fatalf("mode projection = %+v", rows.Data["mode"])
	}

	ordered := mustDo(t, s, &Request{Table: "t", Op: "rows", Where: leaf("qty", "ge", 7), OrderBy: "price", Limit: 2})
	// Matching rows 1,2,3,4,5; cheapest two by price: row 2 (0.5), then a 2.5.
	if len(ordered.RowIDs) != 2 || ordered.RowIDs[0] != 2 {
		t.Fatalf("ordered ids = %v, want [2 ...]", ordered.RowIDs)
	}

	sum := mustDo(t, s, &Request{Table: "t", Op: "sum", Col: "qty", Where: leaf("mode", "eq", "AIR")})
	if sum.IntValue == nil || *sum.IntValue != 62 {
		t.Fatalf("sum = %v, want 62", sum.IntValue)
	}
	avg := mustDo(t, s, &Request{Table: "t", Op: "avg", Col: "price", Where: leaf("mode", "eq", "SHIP")})
	if avg.Value == nil || *avg.Value != 3.5 {
		t.Fatalf("avg = %v, want 3.5", avg.Value)
	}
	minS := mustDo(t, s, &Request{Table: "t", Op: "min", Col: "mode", Where: leaf("qty", "ge", 50)})
	if minS.StrValue == nil || *minS.StrValue != "AIR" {
		t.Fatalf("min mode = %v, want AIR", minS.StrValue)
	}
	maxI := mustDo(t, s, &Request{Table: "t", Op: "max", Col: "qty", Where: leaf("mode", "ne", "RAIL")})
	if maxI.IntValue == nil || *maxI.IntValue != 50 {
		t.Fatalf("max qty = %v, want 50", maxI.IntValue)
	}
}

func TestBadQueries(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []*Request{
		{Table: "t"},                                                           // no where
		{Where: leaf("qty", "eq", 1)},                                          // no table
		countReq("t", leaf("nope", "eq", 1)),                                   // unknown column
		countReq("t", leaf("qty", "eq", "hello")),                              // type mismatch
		countReq("t", leaf("qty", "between", 1)),                               // arity
		countReq("t", leaf("qty", "like", 1)),                                  // unknown op
		{Table: "t", Op: "sum", Where: leaf("qty", "eq", 1)},                   // sum without col
		{Table: "t", Op: "sum", Col: "mode", Where: leaf("qty", "eq", 1)},      // sum over string
		{Table: "t", Op: "count", OrderBy: "qty", Where: leaf("qty", "eq", 1)}, // order_by on count
	}
	for i, req := range cases {
		if _, err := s.Do(context.Background(), req); !errors.Is(err, ErrBadQuery) {
			t.Errorf("case %d: err = %v, want ErrBadQuery", i, err)
		}
	}
	if _, err := s.Do(context.Background(), countReq("missing", leaf("qty", "eq", 1))); !errors.Is(err, ErrNoTable) {
		t.Errorf("unknown table: err = %v, want ErrNoTable", err)
	}
}

func TestDecodeRequestPrecision(t *testing.T) {
	req, err := DecodeRequest([]byte(`{"table":"t","where":{"col":"qty","op":"eq","args":[9007199254740993]}}`))
	if err != nil {
		t.Fatal(err)
	}
	num, ok := req.Where.Args[0].(json.Number)
	if !ok {
		t.Fatalf("arg decoded as %T, want json.Number", req.Where.Args[0])
	}
	if v, err := num.Int64(); err != nil || v != 9007199254740993 {
		t.Fatalf("arg = %v (%v), want 9007199254740993 exact", v, err)
	}
	if _, err := DecodeRequest([]byte(`{"table":"t","wherez":{}}`)); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("unknown field: err = %v, want ErrBadQuery", err)
	}
}

// TestAdmissionOverload holds MaxInflight queries in flight and asserts
// the next request fails with the typed overload error without touching
// the worker pool.
func TestAdmissionOverload(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 2, Workers: 4})
	inHook := make(chan struct{})
	releaseHook := make(chan struct{})
	s.testHook = func(ctx context.Context) {
		inHook <- struct{}{}
		<-releaseHook
	}

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := s.Do(context.Background(), countReq("t", leaf("qty", "ge", 50)))
			done <- err
		}()
	}
	<-inHook
	<-inHook

	// Both slots held before any worker lane is claimed: the pool must be
	// untouched both now and across the rejection.
	if free := s.pool.freeLanes(); free != 4 {
		t.Fatalf("freeLanes = %d before rejection, want 4", free)
	}
	_, err := s.Do(context.Background(), &Request{Table: "t", Tenant: "burst", Where: leaf("qty", "ge", 50)})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third query err = %v, want ErrOverloaded", err)
	}
	if free := s.pool.freeLanes(); free != 4 {
		t.Fatalf("freeLanes = %d after rejection, want 4", free)
	}

	st := s.stats().Snapshot()
	if st.Overloads != 1 || st.Admitted != 2 || st.Inflight != 2 {
		t.Fatalf("stats = %+v, want overloads 1, admitted 2, inflight 2", st)
	}
	ten := s.cfg.Registry.Tenants.Lookup("burst")
	if ten == nil || ten.Overloads.Load() != 1 || ten.Queries.Load() != 0 {
		t.Fatalf("tenant burst overload accounting wrong: %+v", ten)
	}

	close(releaseHook)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("held query failed: %v", err)
		}
	}
	if got := s.stats().Inflight.Load(); got != 0 {
		t.Fatalf("inflight = %d after drain, want 0", got)
	}
}

// TestDeadlineExpired drills both deadline paths: a pre-expired deadline
// (negative timeout) and a deadline that lapses mid-request. Both must
// surface context.DeadlineExceeded — never a partial result.
func TestDeadlineExpired(t *testing.T) {
	s := newTestServer(t, Config{})
	resp, err := s.Do(context.Background(), &Request{Table: "t", TimeoutMs: -1, Where: leaf("qty", "ge", 50)})
	if resp != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("pre-expired: resp = %v, err = %v, want nil + DeadlineExceeded", resp, err)
	}

	// Mid-request: the hook waits out the 5ms deadline, then the scan
	// starts with an already-cancelled context.
	s.testHook = func(ctx context.Context) { <-ctx.Done() }
	resp, err = s.Do(context.Background(), &Request{Table: "t", TimeoutMs: 5, Where: leaf("qty", "ge", 50)})
	if resp != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-request: resp = %v, err = %v, want nil + DeadlineExceeded", resp, err)
	}
	s.testHook = nil

	if got := s.stats().Deadlines.Load(); got != 2 {
		t.Fatalf("deadlines counter = %d, want 2", got)
	}
	// The deadline machinery must not poison later queries.
	if resp := mustDo(t, s, countReq("t", leaf("qty", "ge", 50))); resp.Count != 3 {
		t.Fatalf("post-deadline count = %d, want 3", resp.Count)
	}
}

// TestCacheEpochs drives the cache across an ingest table's lifecycle:
// hit on repeat, miss after an append (same epoch, more rows), miss
// after a merge (new epoch), hit again — with every response computed
// fresh agreeing with the cached one, i.e. zero stale hits.
func TestCacheEpochs(t *testing.T) {
	s := newTestServer(t, Config{})
	dir := t.TempDir()
	it, err := byteslice.CreateIngest(dir, testTable(t), byteslice.WithAutoMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.cat.add(&mount{name: "live", kind: "ingest", path: dir, ing: it}); err != nil {
		t.Fatal(err)
	}

	req := func() *Request { return countReq("live", leaf("qty", "ge", 50)) }
	r1 := mustDo(t, s, req())
	if r1.Cache != "miss" || r1.Count != 3 {
		t.Fatalf("first: cache %q count %d, want miss 3", r1.Cache, r1.Count)
	}
	r2 := mustDo(t, s, req())
	if r2.Cache != "hit" || r2.Count != 3 || r2.Checksum != r1.Checksum {
		t.Fatalf("repeat: cache %q count %d checksum %q, want hit 3 %q", r2.Cache, r2.Count, r2.Checksum, r1.Checksum)
	}

	// Append within the epoch: rows change, the cached entry must not
	// serve (epoch alone would be stale here — the rows half of the key
	// is what catches it).
	if err := it.Append(map[string]any{"qty": int64(90), "price": 5.0, "mode": "AIR"}); err != nil {
		t.Fatal(err)
	}
	r3 := mustDo(t, s, req())
	if r3.Cache != "miss" || r3.Count != 4 {
		t.Fatalf("post-append: cache %q count %d, want miss 4", r3.Cache, r3.Count)
	}
	if r3.Epoch != r1.Epoch || r3.Rows != r1.Rows+1 {
		t.Fatalf("post-append version = (%d,%d), want (%d,%d)", r3.Epoch, r3.Rows, r1.Epoch, r1.Rows+1)
	}

	// Merge publishes a new epoch: again a miss, then a hit at the new
	// version.
	if err := it.MergeNow(); err != nil {
		t.Fatal(err)
	}
	r4 := mustDo(t, s, req())
	if r4.Cache != "miss" || r4.Count != 4 || r4.Epoch <= r3.Epoch {
		t.Fatalf("post-merge: cache %q count %d epoch %d, want miss 4 > %d", r4.Cache, r4.Count, r4.Epoch, r3.Epoch)
	}
	r5 := mustDo(t, s, req())
	if r5.Cache != "hit" || r5.Count != 4 {
		t.Fatalf("post-merge repeat: cache %q count %d, want hit 4", r5.Cache, r5.Count)
	}

	st := s.stats().Snapshot()
	if st.CacheHits != 2 || st.CacheMisses != 3 {
		t.Fatalf("cache counters = %d hits / %d misses, want 2/3", st.CacheHits, st.CacheMisses)
	}

	// no_cache bypasses in both directions.
	bypass, err := s.Do(context.Background(), &Request{Table: "live", NoCache: true, Where: leaf("qty", "ge", 50)})
	if err != nil || bypass.Cache != "bypass" {
		t.Fatalf("no_cache: cache %q err %v, want bypass", bypass.Cache, err)
	}
}

func TestTenantCap(t *testing.T) {
	s := newTestServer(t, Config{MaxTenants: 2})
	for _, tenant := range []string{"a", "b", "c", "d"} {
		mustDo(t, s, &Request{Table: "t", Tenant: tenant, Where: leaf("qty", "ge", 50)})
	}
	set := &s.cfg.Registry.Tenants
	if set.Lookup("a") == nil || set.Lookup("b") == nil {
		t.Fatal("first two tenants should have their own buckets")
	}
	if set.Lookup("c") != nil || set.Lookup("d") != nil {
		t.Fatal("tenants past the cap must not get buckets")
	}
	other := set.Lookup("other")
	if other == nil || other.Queries.Load() != 2 {
		t.Fatalf("overflow bucket queries = %v, want 2", other)
	}
	if got := set.Lookup("a").Queries.Load(); got != 1 {
		t.Fatalf("tenant a queries = %d, want 1", got)
	}
}

func TestLiveMountUnsupportedOps(t *testing.T) {
	s := newTestServer(t, Config{})
	dir := t.TempDir()
	it, err := byteslice.CreateIngest(dir, testTable(t), byteslice.WithAutoMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.cat.add(&mount{name: "live", kind: "ingest", path: dir, ing: it}); err != nil {
		t.Fatal(err)
	}
	for _, req := range []*Request{
		{Table: "live", Op: "sum", Col: "qty", Where: leaf("qty", "ge", 0)},
		{Table: "live", Op: "rows", Cols: []string{"qty"}, Where: leaf("qty", "ge", 0)},
	} {
		if _, err := s.Do(context.Background(), req); !errors.Is(err, ErrUnsupported) {
			t.Errorf("op %q on live mount: err = %v, want ErrUnsupported", req.Op, err)
		}
	}
	// Plain row ids stay supported on live mounts.
	resp := mustDo(t, s, &Request{Table: "live", Op: "rows", Where: leaf("qty", "ge", 50)})
	if len(resp.RowIDs) != 3 {
		t.Fatalf("live row ids = %v, want 3 ids", resp.RowIDs)
	}
}

func TestSnapshotReloadBumpsVersion(t *testing.T) {
	s := newTestServer(t, Config{})
	dir := t.TempDir()
	path := dir + "/t.bslc"
	if err := testTable(t).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := s.cat.MountSnapshot("snap", path); err != nil {
		t.Fatal(err)
	}

	r1 := mustDo(t, s, countReq("snap", leaf("qty", "ge", 50)))
	if r1.Cache != "miss" || r1.Epoch != 1 {
		t.Fatalf("first: cache %q epoch %d, want miss 1", r1.Cache, r1.Epoch)
	}

	// Rewrite the file with different content; force a distinct mtime for
	// filesystems with coarse timestamps.
	qty, err := byteslice.NewIntColumn("qty", []int64{99, 99}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	price, err := byteslice.NewDecimalColumn("price", []float64{1, 2}, 0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	mode, err := byteslice.NewStringColumn("mode", []string{"AIR", "AIR"})
	if err != nil {
		t.Fatal(err)
	}
	tbl2, err := byteslice.NewTable(qty, price, mode)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	bumpMtime(t, path)

	n, err := s.cat.Reload()
	if err != nil || n != 1 {
		t.Fatalf("Reload = %d, %v, want 1, nil", n, err)
	}
	r2 := mustDo(t, s, countReq("snap", leaf("qty", "ge", 50)))
	if r2.Cache != "miss" || r2.Epoch != 2 || r2.Count != 2 {
		t.Fatalf("post-reload: cache %q epoch %d count %d, want miss 2 2", r2.Cache, r2.Epoch, r2.Count)
	}
	if got := s.stats().Reloads.Load(); got != 1 {
		t.Fatalf("reloads counter = %d, want 1", got)
	}
}

func bumpMtime(t *testing.T, path string) {
	t.Helper()
	now := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, now, now); err != nil {
		t.Fatal(err)
	}
}
