package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"byteslice"
)

// defaultRowLimit caps op "rows" output when the request names no limit.
const defaultRowLimit = 100

// Do runs one request end to end: admission, binding, deadline, cache,
// scheduling, execution, accounting. ctx is the transport's context
// (client disconnect); the per-query deadline is layered on top of it.
//
//bsvet:builder Do stamps per-request fields on a fresh shallow copy
func (s *Server) Do(ctx context.Context, req *Request) (*Response, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	tenant, ts := s.tenantStats(req.Tenant)

	// Admission first: a rejected request must cost nothing — no worker
	// lanes, no binding, no cache probe.
	if !s.adm.tryAcquire() {
		s.stats().Overloads.Add(1)
		ts.Overloads.Add(1)
		return nil, ErrOverloaded
	}
	defer s.adm.release()
	s.stats().Admitted.Add(1)
	ts.Queries.Add(1)
	s.stats().Inflight.Add(1)
	defer s.stats().Inflight.Add(-1)

	start := time.Now()
	resp, err := s.exec(ctx, req, tenant)
	elapsed := time.Since(start)
	ts.QueryNs.Observe(elapsed.Nanoseconds())
	if err != nil {
		ts.Errors.Add(1)
		if errors.Is(err, context.DeadlineExceeded) {
			s.stats().Deadlines.Add(1)
		}
		return nil, err
	}
	resp.Tenant = tenant
	resp.ElapsedMs = float64(elapsed.Nanoseconds()) / 1e6
	ts.RowsReturned.Add(int64(len(resp.RowIDs)))
	switch resp.Cache {
	case "hit":
		ts.CacheHits.Add(1)
	case "miss":
		ts.CacheMisses.Add(1)
	}
	return resp, nil
}

// exec runs the admitted request. The returned Response has every field
// set except Tenant and ElapsedMs (stamped per request by Do, including
// on cache hits).
//
//bsvet:builder exec constructs the Response it returns
func (s *Server) exec(ctx context.Context, req *Request, tenant string) (*Response, error) {
	b, err := s.cat.bind(req.Table)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithTimeout(ctx, s.deadline(req.TimeoutMs))
	defer cancel()
	if s.testHook != nil {
		s.testHook(ctx)
	}
	// A dead context fails here, before the cache or the pool: an expired
	// deadline must never produce a result, not even a cached one.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Cache probe. Explain output is per-execution (worker counts, stage
	// timings), so explain requests bypass; the canonical query string is
	// also the bad-predicate fast path — a malformed tree fails here
	// before any lanes are claimed.
	wantExplain := s.cfg.Explain && req.Explain
	mode := "off"
	var key cacheKey
	if s.cache != nil {
		query, err := req.cacheKeyQuery()
		if err != nil {
			return nil, err
		}
		if req.NoCache || wantExplain {
			mode = "bypass"
			s.stats().CacheBypass.Add(1)
		} else {
			key = cacheKey{table: req.Table, epoch: b.epoch, rows: b.rows, query: query}
			if cached, ok := s.cache.get(key); ok {
				s.stats().CacheHits.Add(1)
				hit := *cached
				hit.Cache = "hit"
				return &hit, nil
			}
			mode = "miss"
			s.stats().CacheMisses.Add(1)
		}
	}

	expr, err := buildExpr(b.schema(), req.Where)
	if err != nil {
		return nil, err
	}

	// One fair share of the pool for the whole request: the filter and
	// any aggregate after it run at the same width.
	granted, workers := s.pool.acquire(s.fairShare())
	defer s.pool.release(granted)
	opts := []byteslice.QueryOption{
		byteslice.WithContext(ctx),
		byteslice.WithParallelism(workers),
	}
	if wantExplain {
		opts = append(opts, byteslice.WithObservability(true))
	}

	res, err := b.query(expr, opts...)
	if err != nil {
		return nil, err
	}

	resp := &Response{Table: req.Table, Epoch: b.epoch, Rows: b.rows, Count: res.Count(), Cache: mode}
	switch req.Op {
	case "", "count":
	case "rows":
		if err := s.execRows(req, b, res, resp, opts); err != nil {
			return nil, err
		}
	default:
		if err := s.execAggregate(req, b, res, resp, opts); err != nil {
			return nil, err
		}
	}
	if wantExplain {
		resp.Explain = res.Explain()
	}
	resp.Checksum = resp.fingerprint()
	if mode == "miss" {
		// Store a copy: Do stamps per-request fields (tenant, elapsed) on
		// the returned response, and the cached object must stay frozen —
		// concurrent hits read it without locks. The slices and maps
		// inside are shared but never mutated after this point.
		stored := *resp
		s.cache.put(key, &stored)
	}
	return resp, nil
}

// execRows materialises op "rows": the matching row ids (ordered when
// asked, capped by the limit) plus the requested projected columns.
// Projections need the immutable facade table; live ingest bindings
// support ids only.
//
//bsvet:builder execRows fills the under-construction Response
func (s *Server) execRows(req *Request, b binding, res *byteslice.Result, resp *Response, opts []byteslice.QueryOption) error {
	limit := req.Limit
	if limit == 0 {
		limit = defaultRowLimit
	}
	needsTable := req.OrderBy != "" || len(req.Cols) > 0
	if b.live && needsTable {
		return errUnsupported("order_by and projections need a snapshot table, not a live ingest mount")
	}

	var ids []int32
	if req.OrderBy != "" {
		ordered, err := b.tbl.OrderBy(req.OrderBy, res, opts...)
		if err != nil {
			return wrapFacadeErr(err)
		}
		ids = ordered
	} else {
		ids = res.Rows()
	}
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	resp.RowIDs = ids

	if len(req.Cols) == 0 {
		return nil
	}
	// Projections return every matching row; intersect with the limited
	// id set so the response stays bounded by the limit.
	keep := make(map[int32]struct{}, len(ids))
	for _, id := range ids {
		keep[id] = struct{}{}
	}
	resp.Data = make(map[string]*ColumnData, len(req.Cols))
	for _, name := range req.Cols {
		col, err := b.tbl.Column(name)
		if err != nil {
			return badQueryErr(err)
		}
		d := &ColumnData{}
		switch col.Kind() {
		case byteslice.KindInt:
			rows, vals, err := b.tbl.ProjectInt(name, res, opts...)
			if err != nil {
				return wrapFacadeErr(err)
			}
			for i, r := range rows {
				if _, ok := keep[r]; ok {
					d.Rows = append(d.Rows, r)
					d.Ints = append(d.Ints, vals[i])
				}
			}
		case byteslice.KindDecimal:
			rows, vals, err := b.tbl.ProjectDecimal(name, res, opts...)
			if err != nil {
				return wrapFacadeErr(err)
			}
			for i, r := range rows {
				if _, ok := keep[r]; ok {
					d.Rows = append(d.Rows, r)
					d.Decimals = append(d.Decimals, vals[i])
				}
			}
		case byteslice.KindString:
			rows, vals, err := b.tbl.ProjectString(name, res, opts...)
			if err != nil {
				return wrapFacadeErr(err)
			}
			for i, r := range rows {
				if _, ok := keep[r]; ok {
					d.Rows = append(d.Rows, r)
					d.Strings = append(d.Strings, vals[i])
				}
			}
		default:
			return errUnsupported("column %s: kind has no projection", name)
		}
		resp.Data[name] = d
	}
	return nil
}

// execAggregate runs sum/avg/min/max over Col, restricted to the filter
// result. Aggregates run on the facade table; live ingest bindings are
// rejected (their tail rows live outside the sealed base table).
//
//bsvet:builder execAggregate fills the under-construction Response
func (s *Server) execAggregate(req *Request, b binding, res *byteslice.Result, resp *Response, opts []byteslice.QueryOption) error {
	if b.live {
		return errUnsupported("op %q needs a snapshot table, not a live ingest mount", req.Op)
	}
	col, err := b.tbl.Column(req.Col)
	if err != nil {
		return badQueryErr(err)
	}

	switch req.Op {
	case "sum", "avg":
		switch col.Kind() {
		case byteslice.KindInt:
			sum, count, err := b.tbl.SumInt(req.Col, res, opts...)
			if err != nil {
				return wrapFacadeErr(err)
			}
			if req.Op == "avg" {
				if count > 0 {
					v := float64(sum) / float64(count)
					resp.Value = &v
				}
			} else {
				resp.IntValue = &sum
			}
		case byteslice.KindDecimal:
			sum, count, err := b.tbl.SumDecimal(req.Col, res, opts...)
			if err != nil {
				return wrapFacadeErr(err)
			}
			if req.Op == "avg" {
				if count > 0 {
					v := sum / float64(count)
					resp.Value = &v
				}
			} else {
				resp.Value = &sum
			}
		default:
			return badQuery("op %q needs a numeric column, %s is not", req.Op, req.Col)
		}
	case "min", "max":
		isMin := req.Op == "min"
		switch col.Kind() {
		case byteslice.KindInt:
			v, ok, err := extremeInt(b.tbl, req.Col, res, isMin, opts)
			if err != nil {
				return wrapFacadeErr(err)
			}
			if ok {
				resp.IntValue = &v
			}
		case byteslice.KindDecimal:
			v, ok, err := extremeDecimal(b.tbl, req.Col, res, isMin, opts)
			if err != nil {
				return wrapFacadeErr(err)
			}
			if ok {
				resp.Value = &v
			}
		case byteslice.KindString:
			v, ok, err := extremeString(b.tbl, req.Col, res, isMin, opts)
			if err != nil {
				return wrapFacadeErr(err)
			}
			if ok {
				resp.StrValue = &v
			}
		default:
			return badQuery("op %q does not apply to column %s", req.Op, req.Col)
		}
	}
	return nil
}

func extremeInt(t *byteslice.Table, col string, res *byteslice.Result, isMin bool, opts []byteslice.QueryOption) (int64, bool, error) {
	if isMin {
		return t.MinInt(col, res, opts...)
	}
	return t.MaxInt(col, res, opts...)
}

func extremeDecimal(t *byteslice.Table, col string, res *byteslice.Result, isMin bool, opts []byteslice.QueryOption) (float64, bool, error) {
	if isMin {
		return t.MinDecimal(col, res, opts...)
	}
	return t.MaxDecimal(col, res, opts...)
}

func extremeString(t *byteslice.Table, col string, res *byteslice.Result, isMin bool, opts []byteslice.QueryOption) (string, bool, error) {
	if isMin {
		return t.MinString(col, res, opts...)
	}
	return t.MaxString(col, res, opts...)
}

// wrapFacadeErr passes context errors through untouched (they map to
// deadline/cancel codes) and tags everything else — unknown columns,
// kind mismatches — as a bad query.
func wrapFacadeErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return err
	}
	return badQueryErr(err)
}

// errUnsupported wraps an operation the binding cannot run.
func errUnsupported(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUnsupported, fmt.Sprintf(format, args...))
}
