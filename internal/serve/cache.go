package serve

import (
	"container/list"
	"sync"
)

// cacheKey identifies one cacheable result: the table name, the version
// the result was computed at, and the canonical query rendering. The
// version is the pair (epoch, rows) — for ingest mounts the epoch alone
// is not enough because appends grow the visible row set within an
// epoch, but rows grow monotonically within an epoch and merges bump the
// epoch, so the pair uniquely identifies a visible row set. For snapshot
// mounts epoch is the reload generation and rows is constant, which
// degenerates to the same guarantee.
type cacheKey struct {
	table string
	epoch uint64
	rows  int
	query string
}

// resultCache is a plain LRU over completed responses. Entries are
// immutable once inserted; hits hand back the stored *Response, and the
// exec layer shallow-copies before stamping per-request fields (tenant,
// elapsed, cache outcome) so cached content is never mutated.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent; values are *cacheEntry
	m   map[cacheKey]*list.Element
}

// cacheEntry pairs a key with its cached response. Entries are shared
// with every reader that hits the cache, so outside put (which swaps the
// response pointer under the mutex) they are read-only.
//
//bsvet:sealed
type cacheEntry struct {
	key cacheKey
	res *Response
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns the cached response for key, refreshing its recency.
func (c *resultCache) get(key cacheKey) (*Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores res under key, evicting the least recently used entry past
// capacity.
//
//bsvet:builder
func (c *resultCache) put(key cacheKey, res *Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the resident entry count (tests).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
