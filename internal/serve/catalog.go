package serve

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"byteslice"
	"byteslice/internal/obs"
)

// Catalog is the set of mounted tables a Server queries. Three mount
// kinds exist:
//
//   - snapshot: a .bslc file loaded via LoadFile. Immutable until Reload
//     notices the file changed and remounts it under the next version.
//   - ingest: a WAL-backed ingest directory resumed via OpenIngest. Live:
//     appends and merges flow through the mounted IngestTable, and every
//     request pins one consistent view.
//   - mem: an in-process *Table handed to MountTable (tests, bsbench).
//
// Mounting happens at startup or behind Reload; lookups on the query
// path are one RLock + map probe plus an atomic pointer load.
type Catalog struct {
	reg *obs.Registry

	mu sync.RWMutex
	m  map[string]*mount
}

func newCatalog(reg *obs.Registry) *Catalog {
	return &Catalog{reg: reg, m: make(map[string]*mount)}
}

// mount is one catalog entry. Exactly one of snap/ing is used: snap for
// snapshot and mem mounts (an atomic pointer so Reload swaps without
// blocking queries), ing for live ingest mounts.
type mount struct {
	name string
	kind string // "snapshot", "ingest", "mem"
	path string // source file or directory ("" for mem)

	snap atomic.Pointer[snapState]
	ing  *byteslice.IngestTable
}

// snapState is one loaded generation of a snapshot/mem mount. version
// starts at 1 and bumps on every remount, playing the role an ingest
// epoch plays for cache keying.
type snapState struct {
	tbl     *byteslice.Table
	version uint64
	mtime   time.Time
	size    int64
}

// MountSnapshot loads a .bslc snapshot file and mounts it under name.
func (c *Catalog) MountSnapshot(name, path string) error {
	st, err := loadSnapState(path, 1)
	if err != nil {
		return err
	}
	m := &mount{name: name, kind: "snapshot", path: path}
	m.snap.Store(st)
	return c.add(m)
}

// MountIngest resumes an ingest directory and mounts its live table
// under name. The table's background merger runs for the life of the
// mount; Close stops it.
func (c *Catalog) MountIngest(name, dir string, opts ...byteslice.IngestOption) error {
	it, err := byteslice.OpenIngest(dir, opts...)
	if err != nil {
		return err
	}
	return c.add(&mount{name: name, kind: "ingest", path: dir, ing: it})
}

// MountTable mounts an in-process table under name.
func (c *Catalog) MountTable(name string, t *byteslice.Table) error {
	m := &mount{name: name, kind: "mem"}
	m.snap.Store(&snapState{tbl: t, version: 1})
	return c.add(m)
}

func (c *Catalog) add(m *mount) error {
	if m.name == "" {
		return fmt.Errorf("serve: mount needs a table name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.m[m.name]; dup {
		return fmt.Errorf("serve: table %q already mounted", m.name)
	}
	c.m[m.name] = m
	return nil
}

func loadSnapState(path string, version uint64) (*snapState, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("serve: mount %s: %w", path, err)
	}
	tbl, err := byteslice.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &snapState{tbl: tbl, version: version, mtime: info.ModTime(), size: info.Size()}, nil
}

// lookup resolves a mount by name.
func (c *Catalog) lookup(name string) (*mount, error) {
	c.mu.RLock()
	m := c.m[name]
	c.mu.RUnlock()
	if m == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return m, nil
}

// Names returns the mounted table names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Reload re-examines every snapshot mount and remounts the ones whose
// backing file changed (mtime or size), bumping their version so cached
// results keyed on the old version can never serve the new data. Ingest
// and mem mounts are live already and reload nothing. It returns how
// many mounts were remounted; the first load failure aborts the sweep
// (already-swapped mounts stay swapped, the failed one keeps serving its
// old generation).
func (c *Catalog) Reload() (int, error) {
	c.mu.RLock()
	mounts := make([]*mount, 0, len(c.m))
	for _, m := range c.m {
		mounts = append(mounts, m)
	}
	c.mu.RUnlock()

	reloaded := 0
	for _, m := range mounts {
		if m.kind != "snapshot" {
			continue
		}
		cur := m.snap.Load()
		info, err := os.Stat(m.path)
		if err != nil {
			return reloaded, fmt.Errorf("serve: reload %s: %w", m.name, err)
		}
		if info.ModTime().Equal(cur.mtime) && info.Size() == cur.size {
			continue
		}
		st, err := loadSnapState(m.path, cur.version+1)
		if err != nil {
			return reloaded, fmt.Errorf("serve: reload %s: %w", m.name, err)
		}
		m.snap.Store(st)
		reloaded++
		c.reg.Serve.Reloads.Add(1)
	}
	return reloaded, nil
}

// Close closes every ingest mount (stopping mergers, closing WALs).
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, m := range c.m {
		if m.ing != nil {
			if err := m.ing.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// binding pins one consistent generation of a mount for the duration of
// a request: the immutable table (snapshot/mem) or the pinned ingest
// view, plus the (epoch, rows) version the result cache keys on. Within
// a binding the visible row set cannot change, so a result computed
// through it is exactly reproducible from its version.
type binding struct {
	m    *mount
	tbl  *byteslice.Table // snapshot/mem mounts
	pin  byteslice.Pinned // ingest mounts
	live bool

	epoch uint64
	rows  int
}

// bind pins the named table's current generation.
func (c *Catalog) bind(name string) (binding, error) {
	m, err := c.lookup(name)
	if err != nil {
		return binding{}, err
	}
	if m.ing != nil {
		p := m.ing.Pin()
		return binding{m: m, pin: p, live: true, epoch: p.Epoch(), rows: p.Len()}, nil
	}
	st := m.snap.Load()
	return binding{m: m, tbl: st.tbl, epoch: st.version, rows: st.tbl.Len()}, nil
}

// schema returns the table whose columns resolve this binding's filters:
// the table itself, or the pinned epoch's base for live mounts (sealed
// segments and tail share the base schema).
func (b binding) schema() *byteslice.Table {
	if b.live {
		return b.pin.Base()
	}
	return b.tbl
}

// query evaluates the expression over the pinned generation.
func (b binding) query(e byteslice.Expr, opts ...byteslice.QueryOption) (*byteslice.Result, error) {
	if b.live {
		return b.pin.Query(e, opts...)
	}
	return b.tbl.Query(e, opts...)
}
